// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V), one testing.B target per artefact, plus the ablation
// benches DESIGN.md calls out. They run on the fast testbeds so that
// `go test -bench=.` finishes on a laptop; `cmd/paperbench` runs the
// experiment-quality configuration and prints the full tables.
package repro_test

import (
	"sync"
	"testing"

	"repro/internal/experiments"
)

var benchMNIST = sync.OnceValue(func() *experiments.Setup {
	s, err := experiments.NewMNISTSetup(experiments.FastMNISTParams())
	if err != nil {
		panic(err)
	}
	return s
})

var benchCIFAR = sync.OnceValue(func() *experiments.Setup {
	s, err := experiments.NewCIFARSetup(experiments.FastCIFARParams())
	if err != nil {
		panic(err)
	}
	return s
})

// BenchmarkTable1_Architectures regenerates Table I: build and train
// both architectures, reporting their accuracy.
func BenchmarkTable1_Architectures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.NewMNISTSetup(experiments.FastMNISTParams())
		if err != nil {
			b.Fatal(err)
		}
		c := benchCIFAR()
		t := experiments.RunTable1(s, c)
		if len(t.Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig2_ImageSets regenerates Fig. 2: mean per-image validation
// coverage of noise / natural / training probes on both models.
func BenchmarkFig2_ImageSets(b *testing.B) {
	m, c := benchMNIST(), benchCIFAR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := experiments.RunFig2(m, 20); len(f.Rows) != 3 {
			b.Fatal("bad fig2")
		}
		if f := experiments.RunFig2(c, 20); len(f.Rows) != 3 {
			b.Fatal("bad fig2")
		}
	}
}

// BenchmarkFig3_Methods regenerates Fig. 3: coverage-vs-tests curves of
// Algorithm 1, Algorithm 2, the combined method and random selection.
func BenchmarkFig3_Methods(b *testing.B) {
	s := benchCIFAR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig3(s, 20)
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Combined) != 20 {
			b.Fatal("bad fig3")
		}
	}
}

// BenchmarkFig4_Synthetic regenerates Fig. 4: one real and one
// Algorithm 2 synthetic sample per class.
func BenchmarkFig4_Synthetic(b *testing.B) {
	s := benchMNIST()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := experiments.RunFig4(s, 25)
		if len(f.Synthetic) != s.Classes {
			b.Fatal("bad fig4")
		}
	}
}

func benchDetection(b *testing.B, s *experiments.Setup) {
	b.Helper()
	p := experiments.DefaultDetectionParams()
	p.Sizes = []int{5, 10}
	p.Trials = 40
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := experiments.RunDetection(s, p)
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Cells[0][0]) != 2 {
			b.Fatal("bad detection table")
		}
	}
}

// BenchmarkTable2_DetectionMNIST regenerates Table II: detection rates
// under SBA/GDA/random perturbations on the MNIST model.
func BenchmarkTable2_DetectionMNIST(b *testing.B) {
	benchDetection(b, benchMNIST())
}

// BenchmarkTable3_DetectionCIFAR regenerates Table III on the CIFAR
// model.
func BenchmarkTable3_DetectionCIFAR(b *testing.B) {
	benchDetection(b, benchCIFAR())
}

// BenchmarkAblation_SwitchPoint regenerates ablation A1: adaptive vs
// fixed vs pure switch policies.
func BenchmarkAblation_SwitchPoint(b *testing.B) {
	s := benchCIFAR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationSwitch(s, 15, []int{3, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Init regenerates ablation A2: Algorithm 2's zero vs
// Gaussian initialisation.
func BenchmarkAblation_Init(b *testing.B) {
	s := benchCIFAR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationInit(s, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Epsilon regenerates ablation A3: the ε threshold
// sweep on the Tanh model.
func BenchmarkAblation_Epsilon(b *testing.B) {
	s := benchMNIST()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := experiments.RunAblationEpsilon(s, []float64{1e-8, 1e-4, 1e-2, 1e-1}, 10)
		if len(a.MeanVC) != 4 {
			b.Fatal("bad ablation")
		}
	}
}

// BenchmarkAblation_Detection regenerates ablation A4: detection by
// exact, quantized and label comparison.
func BenchmarkAblation_Detection(b *testing.B) {
	s := benchCIFAR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationCompare(s, 10, 30); err != nil {
			b.Fatal(err)
		}
	}
}
