// detlint is the repo's determinism linter: the five analyzers in
// repro/internal/analysis behind the `go vet -vettool` unit-checker
// protocol, hand-implemented on the standard library because the
// module takes no dependencies (golang.org/x/tools is unavailable).
//
// Usage:
//
//	go build -o bin/detlint ./tools/detlint
//	go vet -vettool=bin/detlint ./...            # the real thing, test files included
//
//	go run ./tools/detlint ./...                 # convenience: builds itself and re-execs go vet
//	go vet -vettool=$(go run ./tools/detlint -print-path) ./...
//
//	go run ./tools/detlint -list                 # analyzer names and docs
//
// Protocol notes (mirroring x/tools/go/analysis/unitchecker): cmd/go
// invokes the tool once per package unit as `detlint <unit>.cfg`
// after probing `detlint -V=full` (cache key) and `detlint -flags`
// (supported flags, we declare none). The cfg file carries the file
// list, the import map and the export-data locations of every
// dependency; findings go to stderr as file:line:col lines and a
// non-zero exit fails the vet run. The facts output (.vetx) is
// written empty: the analyzers are package-local by design.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/analysis"
)

func main() {
	args := os.Args[1:]

	// cmd/go probes: -V=full must print a line starting with the
	// program name and stable across identical builds (it keys the
	// vet result cache), -flags must print the JSON flag schema.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			printVersion()
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case args[0] == "-list":
			for _, a := range analysis.Analyzers() {
				fmt.Printf("%-12s %s\n", a.Name, a.Doc)
			}
			return
		case args[0] == "-print-path":
			printPath()
			return
		case strings.HasSuffix(args[0], ".cfg"):
			diags, err := runUnit(args[0])
			if err != nil {
				fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
				os.Exit(1)
			}
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
			}
			if len(diags) > 0 {
				os.Exit(2)
			}
			return
		}
	}

	// Anything else is package patterns: re-exec go vet with this
	// binary as the vettool so test files and build tags are handled
	// by the real loader.
	if len(args) == 0 {
		args = []string{"./..."}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: cannot locate own binary: %v\n", err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if exit, ok := err.(*exec.ExitError); ok {
			os.Exit(exit.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		os.Exit(1)
	}
}

// printVersion emits the -V=full line. The content hash of the
// binary itself makes the vet cache invalidate whenever the analyzers
// change.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
}

// printPath builds the tool into the user cache and prints the binary
// path, for `go vet -vettool=$(go run ./tools/detlint -print-path)`.
// (A plain `go run` binary lives in a temp dir that is deleted when
// it exits, so its own path would be useless to vet.)
func printPath() {
	dir, err := os.UserCacheDir()
	if err != nil {
		dir = os.TempDir()
	}
	out := filepath.Join(dir, "repro-detlint", "detlint")
	cmd := exec.Command("go", "build", "-o", out, "repro/tools/detlint")
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "detlint: building vettool: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(out)
}

// unitConfig is the JSON schema cmd/go writes for vet tools — the
// same fields x/tools/go/analysis/unitchecker.Config decodes.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit checks one package unit described by a vet cfg file.
func runUnit(cfgFile string) ([]analysis.Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}
	// cmd/go expects the facts file regardless; the analyzers are
	// package-local, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	// Imports resolve through the unit's ImportMap (source import
	// path -> canonical package path, covering vendoring and test
	// variants) and then PackageFile (canonical path -> export data).
	compilerImporter := importer.ForCompiler(fset, gcCompiler(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	conf := types.Config{
		Importer: imp,
		// The tool is built for the same target as the code it vets.
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	diags := analysis.CheckDirectives(fset, files)
	for _, a := range analysis.Analyzers() {
		ds, err := analysis.RunAnalyzer(a, fset, files, pkg, info)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	return diags, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func gcCompiler(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}
