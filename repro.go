// Package repro is the public API of the reproduction of "On Functional
// Test Generation for Deep Neural Network IPs" (Luo, Li, Wei, Xu — DATE
// 2019).
//
// The library lets an IP vendor generate a small functional test suite
// that activates as many network parameters as possible (so parameter
// tampering propagates to the outputs), seal it, and ship it with a
// black-box DNN IP; the IP user replays the suite and compares outputs
// to detect fault-injection attacks.
//
// The heavy machinery lives in internal packages and is re-exported
// here through aliases, so downstream code only imports this package:
//
//	net, _ := repro.NewCIFARModel(20, 20, 0.25, 1)
//	train := repro.Objects(800, 20, 20, 2)
//	repro.Train(net, train, repro.TrainConfig{Epochs: 8})
//	suite, _ := repro.GenerateSuite(net, train, 30)
//	report, _ := suite.Validate(repro.LocalIP{Net: net})
package repro

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/sentinel"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/internal/validate"
)

// Re-exported core types. The aliases give external importers access to
// the internal implementations through this package's API.
type (
	// Tensor is a dense numeric array (images are [C,H,W] in [0,1]).
	Tensor = tensor.Tensor
	// Network is a feed-forward CNN with forward/backward passes and a
	// flat parameter registry.
	Network = nn.Network
	// Dataset is a labelled image collection.
	Dataset = data.Dataset
	// GenResult is a generated validation set with its coverage curve.
	GenResult = core.Result
	// GenOptions configures the test generators.
	GenOptions = core.Options
	// Suite is a vendor validation artefact (inputs + reference outputs).
	Suite = validate.Suite
	// Report is the outcome of replaying a suite against an IP.
	Report = validate.Report
	// IP is the black-box interface an IP user holds.
	IP = validate.IP
	// LocalIP adapts an in-process Network to IP.
	LocalIP = validate.LocalIP
	// RemoteIP is a TCP client for a served IP.
	RemoteIP = validate.RemoteIP
	// Server hosts a network as a black-box IP endpoint (Serve/ServeWith).
	Server = validate.Server
	// ShardedIP fans queries across a fleet of replicas with failover,
	// half-open probing, per-replica introspection and quarantine.
	ShardedIP = validate.ShardedIP
	// ReplicaStatus snapshots one fleet replica's routing state and
	// counters (ShardedIP.ReplicaStatuses).
	ReplicaStatus = validate.ReplicaStatus
	// ReplayConfig is the one replay configuration every validation
	// entry point feeds into Suite.Replay.
	ReplayConfig = validate.ReplayConfig
	// ValidateOptions tunes ValidateWith/DetectsWith (the legacy
	// spelling of ReplayConfig's batch/workers/tolerance fields).
	ValidateOptions = validate.ValidateOptions
	// Wire names a wire dialect of the served-IP protocol family.
	Wire = validate.Wire
	// DialOptions bounds and configures the client side of a served-IP
	// connection, including the requested Wire dialect.
	DialOptions = validate.DialOptions
	// ServerOptions configures a served IP endpoint, including the Wire
	// dialect it is provisioned for.
	ServerOptions = validate.ServerOptions
	// WireStats counts the bytes a client exchanged with its server.
	WireStats = validate.WireStats
	// FrameStore is the process-wide content-addressed store protocol-v5
	// sessions probe before uploading frame bodies (ServerOptions.FrameStore
	// injects one; Server.FrameStore returns the handle in use).
	FrameStore = validate.FrameStore
	// FrameStoreStats snapshots a FrameStore's occupancy and
	// hit/miss/insert/eviction/conflict counters.
	FrameStoreStats = validate.FrameStoreStats
	// Perturbation records an applied parameter attack.
	Perturbation = attack.Perturbation
	// CoverageConfig sets the parameter-activation threshold.
	CoverageConfig = coverage.Config
	// SentinelConfig configures the continuous fleet-validation daemon.
	SentinelConfig = sentinel.Config
	// Sentinel is the continuous fleet-validation daemon: scheduled
	// trickle replays under a query budget, replica attribution,
	// quarantine/readmission, and HTTP observability.
	Sentinel = sentinel.Sentinel
	// SentinelAlert is the structured incident record a sentinel raises
	// on a divergent round.
	SentinelAlert = sentinel.Alert
)

// Wire dialects, mirroring the CLI's -wire gob|f32|quant flag.
const (
	// WireAuto defers the dialect choice (DialOptions: the deprecated
	// F32/Quant aliases, then gob; ReplayConfig: the session-native
	// comparison).
	WireAuto = validate.WireAuto
	// WireGob is protocol v2: gob-framed float64 tensors, bit-exact.
	WireGob = validate.WireGob
	// WireF32 is protocol v3: float32 frames at half the bandwidth.
	WireF32 = validate.WireF32
	// WireQuant is the quantised dialect: delta-encoded replay frames,
	// negotiated at protocol v5 (v4 framing plus content-addressed frame
	// probes against the server's shared store) and downgrading to the
	// per-connection v4 path against older servers.
	WireQuant = validate.WireQuant
)

// ParseWire maps a -wire flag spelling onto the Wire enum.
var ParseWire = validate.ParseWire

// NewSentinel builds the continuous fleet-validation daemon; drive it
// with Run and observe it over Handler's /metrics and /status.
var NewSentinel = sentinel.New

// Dataset constructors (procedural substitutes for MNIST, CIFAR-10 and
// the Fig. 2 probe sets; see DESIGN.md for the substitution rationale).
var (
	// Digits generates MNIST-like grayscale digit images.
	Digits = data.Digits
	// Objects generates CIFAR-like colour object images.
	Objects = data.Objects
	// Noise generates Gaussian-noise probe images.
	Noise = data.Noise
	// Natural generates out-of-distribution image-like probes.
	Natural = data.Natural
)

// NewMNISTModel builds the paper's Table I MNIST architecture (Tanh)
// for h×w inputs at the given width scale (1 = paper widths).
func NewMNISTModel(h, w int, scale float64, seed int64) (*Network, error) {
	return models.MNIST(h, w, scale).Build(seed)
}

// NewCIFARModel builds the paper's Table I CIFAR-10 architecture (ReLU).
func NewCIFARModel(h, w int, scale float64, seed int64) (*Network, error) {
	return models.CIFAR(h, w, scale).Build(seed)
}

// TrainConfig controls Train.
type TrainConfig struct {
	Epochs    int     // default 8
	BatchSize int     // default 16
	LR        float64 // default 0.002 (Adam)
	Seed      int64
	// Parallelism fans each minibatch's gradient accumulation out
	// across this many workers; <= 1 is serial. Deterministic for a
	// fixed (Seed, Parallelism).
	Parallelism int
}

// Train fits the network on the dataset with Adam and softmax
// cross-entropy, returning the final training accuracy.
func Train(net *Network, ds *Dataset, cfg TrainConfig) (float64, error) {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 8
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.002
	}
	res, err := train.Fit(net, ds, train.Config{
		Epochs:      cfg.Epochs,
		BatchSize:   cfg.BatchSize,
		Optimizer:   train.NewAdam(cfg.LR),
		Seed:        cfg.Seed,
		Parallelism: cfg.Parallelism,
	})
	if err != nil {
		return 0, err
	}
	return res.TrainAccuracy, nil
}

// Accuracy returns the network's classification accuracy on ds.
func Accuracy(net *Network, ds *Dataset) float64 { return train.Accuracy(net, ds) }

// DefaultCoverage returns the activation threshold appropriate for the
// network's activation functions (exact-nonzero for ReLU, relative ε
// for Tanh/Sigmoid).
func DefaultCoverage(net *Network) CoverageConfig { return coverage.DefaultConfig(net) }

// ValidationCoverage returns the fraction of parameters activated by at
// least one of the test inputs (paper Eq. 4).
func ValidationCoverage(net *Network, tests []*Tensor) float64 {
	return coverage.VC(net, tests, coverage.DefaultConfig(net))
}

// GenerateTests runs the paper's combined method (§IV-D): greedy
// selection from the training set until its marginal coverage per test
// drops below gradient-based synthesis, then synthesis.
func GenerateTests(net *Network, trainSet *Dataset, n int) (*GenResult, error) {
	opts := core.DefaultOptions(n)
	opts.Coverage = coverage.DefaultConfig(net)
	return core.Combined(net, trainSet, opts)
}

// SelectTests runs Algorithm 1 only (greedy training-set selection).
func SelectTests(net *Network, trainSet *Dataset, n int) (*GenResult, error) {
	opts := core.DefaultOptions(n)
	opts.Coverage = coverage.DefaultConfig(net)
	return core.SelectFromTraining(net, trainSet, opts)
}

// SynthesizeTests runs Algorithm 2 only (gradient-based generation).
func SynthesizeTests(net *Network, inShape []int, classes, n int) (*GenResult, error) {
	opts := core.DefaultOptions(n)
	opts.Coverage = coverage.DefaultConfig(net)
	return core.GradientGenerate(net, inShape, classes, opts)
}

// GenerateSuite is the full vendor step: generate n tests with the
// combined method and package them with reference outputs.
func GenerateSuite(net *Network, trainSet *Dataset, n int) (*Suite, error) {
	res, err := GenerateTests(net, trainSet, n)
	if err != nil {
		return nil, fmt.Errorf("repro: generate suite: %w", err)
	}
	return validate.BuildSuite("repro", net, res.Tests, validate.ExactOutputs), nil
}

// BuildSuite packages arbitrary test inputs with reference outputs.
func BuildSuite(name string, net *Network, tests []*Tensor) *Suite {
	return validate.BuildSuite(name, net, tests, validate.ExactOutputs)
}

// Attack convenience wrappers; each returns the applied perturbation,
// which Revert undoes.

// AttackSBA applies the single bias attack of Liu et al. [5].
func AttackSBA(net *Network, magnitude float64, seed int64) (*Perturbation, error) {
	return attack.SBA(net, magnitude, rand.New(rand.NewSource(seed)))
}

// AttackGDA applies the gradient descent attack of Liu et al. [5]
// against a victim input.
func AttackGDA(net *Network, victim *Tensor, label int, seed int64) (*Perturbation, bool, error) {
	return attack.GDA(net, victim, label, attack.DefaultGDAConfig(), rand.New(rand.NewSource(seed)))
}

// AttackRandom perturbs count random parameters with Gaussian noise.
func AttackRandom(net *Network, count int, sigma float64, seed int64) (*Perturbation, error) {
	return attack.RandomNoise(net, count, sigma, rand.New(rand.NewSource(seed)))
}

// AttackBitFlip flips one random float32 bit in count random parameters.
func AttackBitFlip(net *Network, count int, seed int64) (*Perturbation, error) {
	return attack.BitFlip(net, count, rand.New(rand.NewSource(seed)))
}

// AttackTargetedBitFlip flips the given stored-float32 bit (31 sign,
// 30–23 exponent, 22–0 mantissa) in count random parameters —
// rowhammer-style targeted corruption.
func AttackTargetedBitFlip(net *Network, count int, bit uint, seed int64) (*Perturbation, error) {
	return attack.TargetedBitFlip(net, count, bit, rand.New(rand.NewSource(seed)))
}

// AttackTrojan implants a backdoor that steers trigger to the target
// class by a closed-form last-layer edit preserving predictions on
// every clean input; success reports whether the trigger reached the
// target.
func AttackTrojan(net *Network, trigger *Tensor, target int, cleans []*Tensor) (*Perturbation, bool, error) {
	return attack.Trojan(net, trigger, target, cleans, attack.DefaultTrojanConfig())
}

// AttackQuantEvade optimises an edit that moves raw output bits on
// the probes while every probed output stays in its rounding bucket
// at the given decimals — evading QuantizedOutputs replay while
// ExactOutputs replay still catches it.
func AttackQuantEvade(net *Network, probes []*Tensor, decimals int, seed int64) (*Perturbation, error) {
	return attack.QuantEvade(net, attack.QuantEvadeConfig{
		Decimals: decimals, InBucket: true, Probes: probes,
	}, rand.New(rand.NewSource(seed)))
}

// SetKernelParallelism bounds the worker goroutines the tensor matrix
// kernels may use (default: the whole machine). The kernels partition
// output rows, so results are bit-identical at any setting; values
// below 1 force fully serial kernels.
var SetKernelParallelism = tensor.SetParallelism

// Serve hosts the network as a black-box IP on the listener,
// evaluating queries concurrently on a pool of clones; see
// validate.Serve. ServeWith bounds the clone pool.
var (
	Serve     = validate.Serve
	ServeWith = validate.ServeWith
)

// NewFrameStore builds a bounded content-addressed frame store to
// share between fleets (or isolate per fleet) via
// ServerOptions.FrameStore; zero bounds take the package defaults.
var NewFrameStore = validate.NewFrameStore

// Dial connects to a served IP; DialWith adds connection and response
// deadlines, and DialShards fans a fleet of replicas into one sharded
// IP with failover.
var (
	Dial       = validate.Dial
	DialWith   = validate.DialWith
	DialShards = validate.DialShards
)

// OpenSuite opens a sealed suite, verifying integrity.
var OpenSuite = validate.OpenSuite

// EncodeNetwork / DecodeNetwork serialise models.
var (
	DecodeNetwork = nn.Decode
)

// EncodeNetwork writes the network in gob form.
func EncodeNetwork(net *Network, w io.Writer) error {
	return net.Encode(w)
}
