package repro_test

import (
	"bytes"
	"sync"
	"testing"

	"repro"
)

// facadeModel is a trained tiny CIFAR-style model shared across the
// facade tests.
var facadeModel = sync.OnceValue(func() *repro.Network {
	net, err := repro.NewCIFARModel(16, 16, 0.05, 1)
	if err != nil {
		panic(err)
	}
	ds := repro.Objects(150, 16, 16, 2)
	if _, err := repro.Train(net, ds, repro.TrainConfig{Epochs: 4, LR: 0.003, Seed: 3}); err != nil {
		panic(err)
	}
	return net
})

func TestFacadeEndToEnd(t *testing.T) {
	net := facadeModel()
	ds := repro.Objects(60, 16, 16, 4)

	suite, err := repro.GenerateSuite(net, ds, 8)
	if err != nil {
		t.Fatal(err)
	}
	if suite.Len() != 8 {
		t.Fatalf("suite has %d tests", suite.Len())
	}

	rep, err := suite.Validate(repro.LocalIP{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("intact IP failed: %v", rep)
	}

	p, err := repro.AttackSBA(net, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = suite.Validate(repro.LocalIP{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	p.Revert(net)
	if rep.Passed {
		t.Fatal("SBA not detected by facade flow")
	}
}

func TestFacadeGenerators(t *testing.T) {
	net := facadeModel()
	ds := repro.Objects(40, 16, 16, 6)

	sel, err := repro.SelectTests(net, ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := repro.SynthesizeTests(net, []int{3, 16, 16}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	comb, err := repro.GenerateTests(net, ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*repro.GenResult{"select": sel, "synth": syn, "combined": comb} {
		if len(r.Tests) != 5 {
			t.Fatalf("%s: %d tests", name, len(r.Tests))
		}
		if r.FinalCoverage() <= 0 || r.FinalCoverage() > 1 {
			t.Fatalf("%s: coverage %.4f", name, r.FinalCoverage())
		}
	}
	if vc := repro.ValidationCoverage(net, sel.Tests); vc <= 0 {
		t.Fatalf("ValidationCoverage = %v", vc)
	}
}

func TestFacadeAttacks(t *testing.T) {
	net := facadeModel()
	ds := repro.Objects(5, 16, 16, 7)
	if p, err := repro.AttackRandom(net, 3, 0.5, 8); err != nil {
		t.Fatal(err)
	} else {
		p.Revert(net)
	}
	if p, err := repro.AttackBitFlip(net, 2, 9); err != nil {
		t.Fatal(err)
	} else {
		p.Revert(net)
	}
	if p, _, err := repro.AttackGDA(net, ds.Samples[0].X, ds.Samples[0].Label, 10); err != nil {
		t.Fatal(err)
	} else {
		p.Revert(net)
	}
}

func TestFacadeModelSerialization(t *testing.T) {
	net := facadeModel()
	var buf bytes.Buffer
	if err := repro.EncodeNetwork(net, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := repro.DecodeNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumParams() != net.NumParams() {
		t.Fatal("round trip lost parameters")
	}
}

func TestFacadeSealFlow(t *testing.T) {
	net := facadeModel()
	ds := repro.Objects(30, 16, 16, 11)
	suite, err := repro.GenerateSuite(net, ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("vendor-user-shared-key")
	var buf bytes.Buffer
	if err := suite.Seal(&buf, key); err != nil {
		t.Fatal(err)
	}
	got, err := repro.OpenSuite(&buf, key)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := got.Validate(repro.LocalIP{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatal("sealed round trip broke the suite")
	}
}

func TestFacadeTrainDefaults(t *testing.T) {
	net, err := repro.NewMNISTModel(16, 16, 0.05, 20)
	if err != nil {
		t.Fatal(err)
	}
	ds := repro.Digits(40, 16, 16, 21)
	acc, err := repro.Train(net, ds, repro.TrainConfig{Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v", acc)
	}
	if repro.Accuracy(net, ds) != acc {
		t.Fatal("Accuracy disagrees with Train result")
	}
}
