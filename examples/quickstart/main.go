// Quickstart: the full vendor→user story in one file.
//
// A vendor trains a small CNN on the procedural colour-object dataset,
// generates a 15-test functional validation suite with the paper's
// combined method, and "ships" it. A fault-injection attack then flips
// one bias in the deployed model; replaying the suite exposes it.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	// Vendor: train the IP.
	net, err := repro.NewCIFARModel(20, 20, 0.15, 1)
	if err != nil {
		log.Fatal(err)
	}
	trainSet := repro.Objects(400, 20, 20, 2)
	acc, err := repro.Train(net, trainSet, repro.TrainConfig{Epochs: 8, LR: 0.003, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained IP: %.1f%% training accuracy, %d parameters\n", 100*acc, net.NumParams())

	// Vendor: generate the functional test suite.
	suite, err := repro.GenerateSuite(net, trainSet, 15)
	if err != nil {
		log.Fatal(err)
	}
	vc := repro.ValidationCoverage(net, suite.Inputs)
	fmt.Printf("generated %d functional tests, validation coverage %.1f%%\n", suite.Len(), 100*vc)

	// User: the pristine IP passes.
	report, err := suite.Validate(repro.LocalIP{Net: net})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pristine IP:  %v\n", report)

	// Attacker: single bias attack on the deployed model.
	pert, err := repro.AttackSBA(net, 5, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack applied: %v\n", pert)

	// User: the perturbed IP fails validation.
	report, err = suite.Validate(repro.LocalIP{Net: net})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attacked IP:  %v\n", report)
	if report.Passed {
		log.Fatal("attack went undetected — this should not happen")
	}
	fmt.Println("attack detected ✔")
}
