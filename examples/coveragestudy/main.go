// Coveragestudy: what does a single input actually activate?
//
// Reproduces Fig. 2 in miniature (training vs out-of-distribution vs
// noise probes), prints a per-layer coverage breakdown of a generated
// suite, and renders one of Algorithm 2's synthetic digits next to a
// real one (Fig. 4 style) as ASCII art.
//
// Run: go run ./examples/coveragestudy
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/render"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)

	net, err := repro.NewMNISTModel(16, 16, 0.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	trainSet := repro.Digits(300, 16, 16, 2)
	if _, err := repro.Train(net, trainSet, repro.TrainConfig{Epochs: 6, LR: 0.003, Seed: 3}); err != nil {
		log.Fatal(err)
	}
	cfg := repro.DefaultCoverage(net)

	// Fig. 2 in miniature: mean per-image coverage per probe set.
	probeSets := map[string]*repro.Dataset{
		"training": trainSet.Subset(25),
		"natural":  repro.Natural(25, 1, 16, 16, 4),
		"noise":    repro.Noise(25, 1, 16, 16, 5),
	}
	fmt.Println("mean single-image validation coverage:")
	for _, name := range []string{"training", "natural", "noise"} {
		ds := probeSets[name]
		sum := 0.0
		for _, s := range ds.Samples {
			sum += coverage.ParamActivation(net, s.X, cfg).Fraction()
		}
		fmt.Printf("  %-9s %5.1f%%\n", name, 100*sum/float64(ds.Len()))
	}

	// Per-layer breakdown of a 10-test combined suite.
	res, err := repro.GenerateTests(net, trainSet, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n10-test combined suite: %.1f%% total coverage; per layer:\n", 100*res.FinalCoverage())
	for _, lc := range coverage.PerParam(net, res.Covered) {
		fmt.Printf("  %v\n", lc)
	}

	// Fig. 4 style panel: a real 0 next to a synthetic 0.
	rng := rand.New(rand.NewSource(9))
	opts := core.DefaultOptions(1)
	opts.Steps = 40
	opts.Coverage = cfg
	synth := core.Synthesize(net, []int{1, 16, 16}, 0, opts, rng)
	real := trainSet.Samples[indexOfLabel(trainSet, 0)].X
	fmt.Println("\nreal vs synthetic class-0 sample:")
	fmt.Println(render.SideBySide([]string{"real 0", "synth 0"}, []*tensor.Tensor{real, synth}))
	fmt.Printf("model classifies the synthetic sample as: %d\n", net.Predict(synth))
}

func indexOfLabel(ds *repro.Dataset, label int) int {
	for i, s := range ds.Samples {
		if s.Label == label {
			return i
		}
	}
	return 0
}
