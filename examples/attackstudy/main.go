// Attackstudy: detection-rate campaign across attack families and suite
// sizes — a miniature of the paper's Tables II/III extended with the
// bit-flip fault model.
//
// For each suite size, the vendor's combined suite is replayed against
// many independently perturbed copies of the IP; the printed matrix
// shows how detection climbs with suite size and differs per attack.
//
// Run: go run ./examples/attackstudy
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/attack"
	"repro/internal/nn"
	"repro/internal/validate"
)

func main() {
	log.SetFlags(0)

	net, err := repro.NewCIFARModel(20, 20, 0.15, 1)
	if err != nil {
		log.Fatal(err)
	}
	trainSet := repro.Objects(400, 20, 20, 2)
	if _, err := repro.Train(net, trainSet, repro.TrainConfig{Epochs: 8, LR: 0.003, Seed: 3}); err != nil {
		log.Fatal(err)
	}

	// One generation run; prefixes give the smaller suites.
	full, err := repro.GenerateTests(net, trainSet, 25)
	if err != nil {
		log.Fatal(err)
	}

	attacks := []struct {
		name string
		fn   validate.AttackFn
	}{
		{"SBA", func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, error) {
			return attack.SBA(n, 5, rng)
		}},
		{"GDA", func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, error) {
			// Target a correctly classified victim; GDA is a no-op on an
			// input the IP already misclassifies.
			v := trainSet.Samples[rng.Intn(trainSet.Len())]
			for tries := 0; tries < 50 && n.Predict(v.X) != v.Label; tries++ {
				v = trainSet.Samples[rng.Intn(trainSet.Len())]
			}
			p, _, err := attack.GDA(n, v.X, v.Label, attack.GDAConfig{Steps: 10, LR: 0.05, TopK: 20}, rng)
			return p, err
		}},
		{"Random", func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, error) {
			return attack.RandomNoise(n, 1, 0.5, rng)
		}},
		{"BitFlip", func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, error) {
			return attack.BitFlip(n, 1, rng)
		}},
	}

	const trials = 120
	fmt.Printf("%-8s", "N")
	for _, a := range attacks {
		fmt.Printf("  %8s", a.name)
	}
	fmt.Println()
	for _, n := range []int{5, 10, 15, 25} {
		suite := repro.BuildSuite("study", net, full.Tests[:n])
		fmt.Printf("N=%-6d", n)
		for _, a := range attacks {
			res, err := validate.DetectionRate(net, suite, a.fn, trials, 42)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %7.1f%%", 100*res.Rate())
		}
		fmt.Println()
	}
	fmt.Printf("\nsuite coverage at N=25: %.1f%% of %d parameters\n",
		100*full.FinalCoverage(), net.NumParams())
}
