// Vendorflow: the complete Fig. 1 deployment over a real network
// boundary.
//
// The vendor process trains the IP, generates a suite, seals it with a
// shared key, and hosts the model as a black-box TCP service. The user
// side opens the sealed suite (integrity-checked), dials the service,
// and validates purely through Query calls — it never holds the model
// parameters. A second round shows the same user detecting a tampered
// deployment.
//
// Run: go run ./examples/vendorflow
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"

	"repro"
)

func main() {
	log.SetFlags(0)
	sharedKey := []byte("vendor-and-user-shared-secret")

	// ---------------- vendor side ----------------
	model, err := repro.NewMNISTModel(16, 16, 0.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	trainSet := repro.Digits(300, 16, 16, 2)
	acc, err := repro.Train(model, trainSet, repro.TrainConfig{Epochs: 6, LR: 0.003, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vendor: trained IP to %.1f%% accuracy\n", 100*acc)

	suite, err := repro.GenerateSuite(model, trainSet, 12)
	if err != nil {
		log.Fatal(err)
	}
	var sealed bytes.Buffer
	if err := suite.Seal(&sealed, sharedKey); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vendor: sealed %d tests into %d bytes\n", suite.Len(), sealed.Len())

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := repro.Serve(l, model)
	defer server.Close()
	fmt.Printf("vendor: IP served at %s\n", server.Addr())

	// ---------------- user side ----------------
	opened, err := repro.OpenSuite(bytes.NewReader(sealed.Bytes()), sharedKey)
	if err != nil {
		log.Fatal(err)
	}
	ip, err := repro.Dial(server.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer ip.Close()

	report, err := opened.Validate(ip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user: validation of shipped IP -> %v\n", report)

	// ---------------- supply-chain tampering ----------------
	// The attacker perturbs the vendor's master parameters; the served
	// endpoint picks them up at its next hot parameter sync (the server
	// evaluates on clones, so tampering the master alone is not yet
	// visible to queries).
	pert, err := repro.AttackRandom(model, 3, 0.5, 7)
	if err != nil {
		log.Fatal(err)
	}
	server.SyncParamsFrom(model)
	fmt.Printf("attacker: %v\n", pert)

	report, err = opened.Validate(ip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user: validation of tampered IP -> %v\n", report)
	if report.Passed {
		log.Fatal("tampering went undetected")
	}

	// A flipped byte in the sealed artefact is also caught.
	tampered := append([]byte(nil), sealed.Bytes()...)
	tampered[len(tampered)/3] ^= 0x01
	if _, err := repro.OpenSuite(bytes.NewReader(tampered), sharedKey); err != nil {
		fmt.Printf("user: tampered suite artefact rejected: %v\n", err)
	} else {
		log.Fatal("tampered artefact accepted")
	}
	fmt.Println("vendor flow complete ✔")
}
