// Sentinelwatch: continuous fleet validation with replica attribution.
//
// A vendor serves the same IP as a three-replica TCP fleet; the user
// runs a sentinel that keeps replaying randomised suite subsets against
// the fleet on a budget. Mid-run an attacker poisons one replica's
// parameters through its hot-sync path. The sentinel's next round
// diverges, its attribution sweep names the poisoned replica, the
// replica is quarantined (the survivors keep validating clean), and —
// after the operator repairs the deployment — a re-validation probe
// readmits it. The whole story is visible over the sentinel's
// /metrics and /status HTTP endpoints.
//
// Run: go run ./examples/sentinelwatch
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)

	// ---------------- vendor side ----------------
	model, err := repro.NewMNISTModel(16, 16, 0.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	trainSet := repro.Digits(300, 16, 16, 2)
	if _, err := repro.Train(model, trainSet, repro.TrainConfig{Epochs: 6, LR: 0.003, Seed: 3}); err != nil {
		log.Fatal(err)
	}
	suite, err := repro.GenerateSuite(model, trainSet, 16)
	if err != nil {
		log.Fatal(err)
	}

	var servers []*repro.Server
	var addrs []string
	for i := 0; i < 3; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := repro.Serve(l, model)
		defer srv.Close()
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	fmt.Printf("vendor: fleet of %d replicas at %s\n", len(servers), strings.Join(addrs, ", "))

	// ---------------- user side: the sentinel ----------------
	fleet, err := repro.DialShards(addrs, repro.DialOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()
	// Short probe backoff so the demo's readmission probe runs promptly.
	fleet.SetProbeBackoff(50*time.Millisecond, time.Second)

	sen, err := repro.NewSentinel(repro.SentinelConfig{
		Suite:  suite,
		Fleet:  fleet,
		Sample: 8,
		Batch:  4,
		QPS:    500, // the standing query budget
		Seed:   42,
		OnAlert: func(a repro.SentinelAlert) {
			fmt.Printf("sentinel: ALERT round %d seed %d — %s — quarantined %v\n",
				a.Round, a.Seed, a.Report, a.Quarantined)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Observability endpoints.
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hsrv := &http.Server{Handler: sen.Handler()}
	go hsrv.Serve(hl)
	defer hsrv.Close()
	fmt.Printf("sentinel: observability on http://%s\n", hl.Addr())

	ctx := context.Background()

	// Round 1: the clean fleet passes.
	res := sen.RunRound(ctx)
	fmt.Printf("sentinel: round %d -> %s\n", res.Round, res.Report)

	// ---------------- supply-chain tampering ----------------
	// The attacker poisons replica 2's parameters through its hot-sync
	// path; the other replicas keep serving the clean snapshot.
	pert, err := repro.AttackRandom(model, 3, 0.5, 7)
	if err != nil {
		log.Fatal(err)
	}
	servers[1].SyncParamsFrom(model)
	pert.Revert(model)
	fmt.Printf("attacker: %v -> synced into replica 2 only\n", pert)

	// The next rounds catch it: the fleet replay diverges as soon as
	// round-robin routes a sampled batch to the poisoned replica, the
	// attribution sweep names it, and it is quarantined.
	for i := 0; i < 4 && len(fleet.Quarantined()) == 0; i++ {
		res = sen.RunRound(ctx)
	}
	if len(fleet.Quarantined()) == 0 {
		log.Fatal("poisoned replica was not quarantined")
	}
	for _, st := range fleet.ReplicaStatuses() {
		fmt.Printf("fleet: %-21s %-11s %s\n", st.Addr, st.State, st.QuarantineReason)
	}

	// The survivors keep validating clean.
	res = sen.RunRound(ctx)
	fmt.Printf("sentinel: round %d on survivors -> %s\n", res.Round, res.Report)

	// ---------------- repair and readmission ----------------
	servers[1].SyncParamsFrom(model)
	fmt.Println("operator: repaired replica 2 from the clean master")
	deadline := time.Now().Add(5 * time.Second)
	for len(fleet.Quarantined()) > 0 && time.Now().Before(deadline) {
		time.Sleep(60 * time.Millisecond) // wait out the probe backoff
		sen.RunReadmissions(ctx)
	}
	if len(fleet.Quarantined()) > 0 {
		log.Fatal("repaired replica was not readmitted")
	}
	fmt.Println("sentinel: replica 2 passed revalidation and rejoined the rotation")

	// ---------------- observability ----------------
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", hl.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("metrics excerpt:")
	for _, line := range strings.Split(string(bytes.TrimSpace(body)), "\n") {
		if strings.HasPrefix(line, "dnnval_sentinel_") && !strings.HasPrefix(line, "#") {
			fmt.Printf("  %s\n", line)
		}
	}
	st := sen.Status()
	fmt.Printf("status: %d rounds, %d alerts, %d readmissions, %d queries spent\n",
		st.Rounds, st.AlertsTotal, st.Readmissions, st.Queries)
	fmt.Println("sentinel watch complete ✔")
}
