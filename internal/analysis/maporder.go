package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` over a map. Map iteration order is
// randomised per run, so any byte stream, report, metric exposition or
// selection decision downstream of such a loop silently loses the
// repo's byte-identity guarantees. The check is a conservative
// over-approximation of "reachable from sealing, wire encoding, report
// rendering and /metrics output": it fires in every package, because
// in this codebase those sinks are reachable from almost everywhere.
//
// Two loop shapes are provably order-insensitive and exempt:
//
//   - sort-after-collect: the body only appends to slices that are
//     sorted later in the same block (the canonical fix);
//   - commutative aggregation: the body only counts or sums integers
//     (exact arithmetic commutes), fills other maps, or deletes keys.
//
// Everything else needs a sorted key slice or a
// //detlint:allow maporder(reason) annotation.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags nondeterministic `for range` over maps in determinism-critical code",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				checkMapRange(pass, rs, list[i+1:])
			}
			return true
		})
	}
	return nil
}

// checkMapRange reports rs unless its body is order-insensitive.
// rest is the statement tail of the enclosing block, scanned for
// sort calls over collected slices.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	appended := map[types.Object]bool{}
	if orderInsensitiveStmts(pass, rs, rs.Body.List, appended) {
		unsorted := unsortedAfter(pass, appended, rest)
		if unsorted == nil {
			return
		}
		pass.Reportf(rs.For, "map iteration over %s collects into %s which is never sorted afterwards; sort it before use or annotate //detlint:allow maporder(reason)",
			exprString(pass.Fset, rs.X), unsorted.Name())
		return
	}
	pass.Reportf(rs.For, "iteration over map %s has nondeterministic order; iterate a sorted key slice or annotate //detlint:allow maporder(reason)",
		exprString(pass.Fset, rs.X))
}

// orderInsensitiveStmts reports whether every statement is one of the
// allowed order-insensitive forms, recording slice variables the loop
// appends to (those additionally need a later sort).
func orderInsensitiveStmts(pass *Pass, rs *ast.RangeStmt, stmts []ast.Stmt, appended map[types.Object]bool) bool {
	for _, s := range stmts {
		if !orderInsensitiveStmt(pass, rs, s, appended) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *Pass, rs *ast.RangeStmt, s ast.Stmt, appended map[types.Object]bool) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		// n++ / n-- on an integer: exact arithmetic commutes.
		return s.Tok == token.INC || s.Tok == token.DEC
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Integer accumulation commutes; float accumulation does not.
			t := pass.TypesInfo.TypeOf(s.Lhs[0])
			return t != nil && isIntegerType(t)
		case token.ASSIGN:
			// m2[k] = v: filling another map is order-insensitive
			// (keyed writes, no order observable).
			if ix, ok := s.Lhs[0].(*ast.IndexExpr); ok {
				if t := pass.TypesInfo.TypeOf(ix.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return true
					}
				}
			}
			// s = append(s, ...): order-insensitive iff sorted later.
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
					if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltin(pass, fn, "append") {
						if len(call.Args) > 0 {
							if arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && arg0.Name == id.Name {
								if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
									appended[obj] = true
									return true
								}
							}
						}
					}
				}
			}
			return false
		default:
			return false
		}
	case *ast.ExprStmt:
		// delete(m, k) on the ranged map (or any map) is order-free.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltin(pass, fn, "delete") {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil {
			return false
		}
		if !orderInsensitiveStmts(pass, rs, s.Body.List, appended) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return orderInsensitiveStmts(pass, rs, e.List, appended)
		case *ast.IfStmt:
			return orderInsensitiveStmt(pass, rs, e, appended)
		}
		return false
	case *ast.BlockStmt:
		return orderInsensitiveStmts(pass, rs, s.List, appended)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.EmptyStmt:
		return true
	}
	return false
}

// isBuiltin reports whether id refers to the named predeclared
// builtin (not a shadowing declaration).
func isBuiltin(pass *Pass, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok
}

// unsortedAfter returns a variable from appended that is not passed to
// a sort.* or slices.Sort* call in the statement tail, or nil if all
// collected slices are sorted.
func unsortedAfter(pass *Pass, appended map[types.Object]bool, rest []ast.Stmt) *types.Var {
	var missing *types.Var
	for obj := range appended { //detlint:allow maporder(order-insensitive: every entry is checked independently and any failure is reported by name)
		v, ok := obj.(*types.Var)
		if !ok {
			return nil
		}
		if sortedIn(pass, obj, rest) {
			continue
		}
		if missing == nil || v.Pos() < missing.Pos() {
			missing = v // report the earliest-declared offender, deterministically
		}
	}
	return missing
}

func sortedIn(pass *Pass, obj types.Object, rest []ast.Stmt) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := funcFor(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			// Look anywhere inside the arguments so conversions like
			// sort.Sort(byAddr(keys)) still count as sorting keys.
			for _, arg := range call.Args {
				ast.Inspect(arg, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
						found = true
					}
					return !found
				})
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
