package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatReduce flags ad-hoc scalar floating-point reductions — a loop
// folding values into a float variable with +=, -=, *= or x = x + e —
// outside internal/tensor. Floating-point addition does not
// associate, so the accumulation order of every reduction IS part of
// the bit-identity contract; scattering hand-written folds across
// packages is how two code paths silently disagree in the last ulp.
// Reductions belong in the approved serial kernels
// (tensor.Sum / tensor.SumSquares / tensor.Dot and the GEMM family),
// whose left-to-right order is pinned and tested.
//
// Indexed accumulation (out[i] += ...) is the kernel scatter idiom
// and stays in scope of the kernels' own equivalence tests, so only
// scalar folds are flagged. Loops that are genuinely not reductions
// over data (e.g. a sequential fold whose order is fixed by a
// schedule) carry //detlint:allow floatreduce(reason).
var FloatReduce = &Analyzer{
	Name: "floatreduce",
	Doc:  "flags ad-hoc scalar floating-point accumulation loops outside the tensor kernels",
	Run:  runFloatReduce,
}

func runFloatReduce(pass *Pass) error {
	path := pass.Pkg.Path()
	if isTensorKernel(path) || isDriver(path) {
		return nil
	}
	for _, f := range pass.sourceFiles() {
		// Bodies of all for/range loops; an accumulation is only a
		// reduction when it happens repeatedly.
		loops := rangesOf(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return true
			}
			return false
		})
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhs := as.Lhs[0]
			if !isScalarLvalue(lhs) {
				return true
			}
			t := pass.TypesInfo.TypeOf(lhs)
			if t == nil || !isFloatType(t) {
				return true
			}
			accum := false
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
				accum = true
			case token.ASSIGN:
				accum = selfReferential(pass, lhs, as.Rhs[0])
			}
			if !accum || !anyContains(loops, as.Pos()) {
				return true
			}
			pass.Reportf(as.Pos(), "ad-hoc floating-point accumulation into %s; route the reduction through an approved internal/tensor kernel (tensor.Sum, tensor.SumSquares, tensor.Dot) or annotate //detlint:allow floatreduce(reason)",
				exprString(pass.Fset, lhs))
			return true
		})
	}
	return nil
}

// isScalarLvalue reports whether e is a plain variable or field —
// not an element write like out[i], which is the kernels' scatter
// idiom.
func isScalarLvalue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return isScalarLvalue(e.X)
	case *ast.StarExpr:
		return isScalarLvalue(e.X)
	}
	return false
}

// selfReferential reports whether rhs mentions the lvalue, i.e.
// x = x + e spelled without a compound token.
func selfReferential(pass *Pass, lhs, rhs ast.Expr) bool {
	obj := lvalueObject(pass, lhs)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func lvalueObject(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.ObjectOf(e); obj != nil {
			return obj
		}
	case *ast.SelectorExpr:
		if obj := pass.TypesInfo.ObjectOf(e.Sel); obj != nil {
			return obj
		}
	}
	return nil
}
