// Package analysis is the repo's determinism static-analysis suite: a
// small analyzer framework in the style of golang.org/x/tools/go/analysis
// (which this module cannot depend on — it takes no dependencies) plus
// the five repo-specific analyzers that guard the bit-identity
// contract:
//
//   - maporder: `for range` over a map in determinism-critical code
//     (iteration order is randomised per run and corrupts any
//     byte-identity guarantee downstream of the loop).
//   - globalrand: math/rand package-level functions and time-seeded
//     sources (all randomness must thread an explicitly seeded
//     *rand.Rand, the splitmix round-seed discipline the sentinel
//     follows).
//   - walltime: wall-clock reads inside deterministic packages
//     (replays must be reproducible from seeds alone).
//   - floatreduce: ad-hoc scalar floating-point reduction loops
//     outside internal/tensor (accumulation order IS the bit-identity
//     contract; reductions go through the approved serial kernels).
//   - poolcontract: parallel.Pool region callbacks that mutate shared
//     state without the per-worker-id pinning pattern (racy, and even
//     when lock-guarded the fold order becomes schedule-dependent).
//
// A finding is suppressed by an allow comment on the same line or the
// line immediately above:
//
//	//detlint:allow <analyzer>(<one-line justification>)
//
// The justification is mandatory; an empty reason is itself reported.
// The suite runs under `go vet -vettool` via tools/detlint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. The API deliberately mirrors
// x/tools/go/analysis so the analyzers read idiomatically and could be
// ported to a real multichecker if the module ever takes the
// dependency.
type Analyzer struct {
	Name string // short lower-case identifier, used in allow comments
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass) error
}

// Pass holds one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	allows map[string][]*allowEntry // file name -> entries, built lazily
	diags  []Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an allow comment for this
// analyzer covers that line. Suppressed findings consume the allow
// entry so unused annotations stay detectable.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings recorded so far in file/line order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool {
		a, b := p.diags[i].Pos, p.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return p.diags
}

type allowEntry struct {
	line     int    // line the comment appears on
	analyzer string // analyzer name inside the comment
	reason   string // justification text; empty is invalid
	used     bool
}

const allowPrefix = "//detlint:allow "

// parseAllow parses one comment's text into (analyzer, reason, ok).
// The accepted form is exactly `//detlint:allow name(reason)`.
func parseAllow(text string) (string, string, bool) {
	if !strings.HasPrefix(text, allowPrefix) {
		return "", "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	open := strings.IndexByte(rest, '(')
	if open <= 0 || !strings.HasSuffix(rest, ")") {
		return "", "", false
	}
	name := strings.TrimSpace(rest[:open])
	reason := strings.TrimSpace(rest[open+1 : len(rest)-1])
	return name, reason, true
}

// allowIndex builds the per-file allow table on first use.
func (p *Pass) allowIndex() map[string][]*allowEntry {
	if p.allows != nil {
		return p.allows
	}
	p.allows = make(map[string][]*allowEntry)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseAllow(c.Text)
				if !ok {
					continue // malformed directives are reported by CheckDirectives
				}
				pos := p.Fset.Position(c.Pos())
				p.allows[pos.Filename] = append(p.allows[pos.Filename], &allowEntry{
					line:     pos.Line,
					analyzer: name,
					reason:   reason,
				})
			}
		}
	}
	return p.allows
}

// allowedAt reports whether a finding by this analyzer at position is
// covered by an allow comment on its line or the line above.
func (p *Pass) allowedAt(position token.Position) bool {
	for _, e := range p.allowIndex()[position.Filename] {
		if e.analyzer != p.Analyzer.Name {
			continue
		}
		if e.line != position.Line && e.line != position.Line-1 {
			continue
		}
		if e.reason == "" {
			p.diags = append(p.diags, Diagnostic{
				Pos:      position,
				Analyzer: p.Analyzer.Name,
				Message:  fmt.Sprintf("allow comment for %s has no justification; write //detlint:allow %s(reason)", p.Analyzer.Name, p.Analyzer.Name),
			})
			e.used = true
			return true // suppress the finding itself; the empty reason is the report
		}
		e.used = true
		return true
	}
	return false
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		GlobalRand,
		WallTime,
		FloatReduce,
		PoolContract,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzer runs one analyzer over a type-checked package and
// returns its findings. Allow comments naming this analyzer that do
// not suppress anything are reported as stale, so annotations cannot
// outlive the finding they justify.
func RunAnalyzer(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}
	pass.allowIndex()
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	//detlint:allow maporder(order-insensitive: Diagnostics() sorts all findings by position before returning)
	for file, entries := range pass.allows {
		if strings.HasSuffix(file, "_test.go") {
			continue // analyzers skip test files, so allows there never match
		}
		for _, e := range entries {
			if e.analyzer != a.Name || e.used {
				continue
			}
			pass.diags = append(pass.diags, Diagnostic{
				Pos:      token.Position{Filename: file, Line: e.line, Column: 1},
				Analyzer: a.Name,
				Message:  fmt.Sprintf("unused //detlint:allow %s comment: no %s finding on this or the next line; remove it", a.Name, a.Name),
			})
		}
	}
	return pass.Diagnostics(), nil
}

// CheckDirectives validates the detlint directives themselves, once
// per package: anything starting with //detlint: must be a
// well-formed allow comment naming a known analyzer.
func CheckDirectives(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//detlint:") {
					continue
				}
				name, _, ok := parseAllow(c.Text)
				if !ok {
					diags = append(diags, Diagnostic{
						Pos:      fset.Position(c.Pos()),
						Analyzer: "detlint",
						Message:  fmt.Sprintf("malformed detlint directive %q; want //detlint:allow name(reason)", c.Text),
					})
					continue
				}
				if ByName(name) == nil {
					diags = append(diags, Diagnostic{
						Pos:      fset.Position(c.Pos()),
						Analyzer: "detlint",
						Message:  fmt.Sprintf("allow comment names unknown analyzer %q", name),
					})
				}
			}
		}
	}
	return diags
}
