// Package analysistest runs repo analyzers over GOPATH-style fixture
// trees and checks their findings against // want comments, in the
// style of golang.org/x/tools/go/analysis/analysistest (which this
// module cannot depend on).
//
// A fixture package lives at <dir>/src/<importpath>/*.go. Imports of
// other fixture packages resolve by path under <dir>/src; all other
// imports (the standard library) resolve through export data obtained
// from `go list -export`, so fixtures type-check exactly like real
// code. Expected findings are written on the offending line:
//
//	s += v // want `ad-hoc floating-point accumulation`
//
// Every diagnostic must match a want on its line and every want must
// be matched by a diagnostic; regexps are matched against the message.
package analysistest

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each fixture package under dir/src and applies the
// analyzer, comparing findings to // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	l := newLoader(abs)
	for _, path := range pkgpaths {
		p, err := l.load(path)
		if err != nil {
			t.Fatalf("analysistest: loading %s: %v", path, err)
		}
		diags, err := analysis.RunAnalyzer(a, l.fset, p.files, p.pkg, p.info)
		if err != nil {
			t.Fatalf("analysistest: running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, l.fset, p.files, diags)
	}
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	root    string // testdata dir containing src/
	fset    *token.FileSet
	pkgs    map[string]*loadedPkg
	gc      types.Importer
	exports map[string]string // stdlib import path -> export data file
}

func newLoader(root string) *loader {
	l := &loader{
		root: root,
		fset: token.NewFileSet(),
		pkgs: map[string]*loadedPkg{},
	}
	l.gc = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := l.exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
	return l
}

// Import implements types.Importer over fixture-local packages first,
// falling back to export data for everything else.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.root, "src", path)); err == nil {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.gc.Import(path)
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle marker
	srcdir := filepath.Join(l.root, "src", path)
	entries, err := os.ReadDir(srcdir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(srcdir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", srcdir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}

// exportFile resolves a non-fixture import path to its export data,
// populating the cache with `go list -export -deps` on first use.
func (l *loader) exportFile(path string) (string, error) {
	if f, ok := l.exports[path]; ok {
		return f, nil
	}
	out, err := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export", path).Output()
	if err != nil {
		msg := err.Error()
		var exit *exec.ExitError
		if errors.As(err, &exit) {
			msg = string(exit.Stderr)
		}
		return "", fmt.Errorf("go list -export %s: %s", path, msg)
	}
	if l.exports == nil {
		l.exports = map[string]string{}
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err != nil {
			return "", err
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	f, ok := l.exports[path]
	if !ok {
		return "", fmt.Errorf("no export data for %s", path)
	}
	return f, nil
}

var (
	wantRe    = regexp.MustCompile(`//\s*want\s+(.*)$`)
	wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					text := arg[1]
					if text == "" {
						text = arg[2]
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, text, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}
