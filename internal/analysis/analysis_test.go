package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapOrder, "maporder")
}

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GlobalRand, "globalrand")
}

func TestWallTime(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WallTime, "walltime/core", "walltime/validate")
}

// TestWallTimeOutOfScope pins the driver/cmd exemption: the same
// wall-clock reads in an interactive driver package are not findings.
func TestWallTimeOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WallTime, "walltime/cmd/clock")
}

func TestFloatReduce(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.FloatReduce, "floatreduce/coverage", "floatreduce/tensor")
}

func TestPoolContract(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.PoolContract, "poolcontract")
}
