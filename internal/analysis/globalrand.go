package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalRand flags randomness that does not thread an explicitly
// seeded *rand.Rand:
//
//   - calls to math/rand (or math/rand/v2) package-level functions
//     (rand.Intn, rand.Perm, rand.Shuffle, ...), which draw from the
//     shared, unreproducible global source;
//   - sources seeded from the wall clock
//     (rand.New(rand.NewSource(time.Now().UnixNano()))), which are
//     seeded but not reproducible.
//
// The repo's discipline is rand.New(rand.NewSource(seed)) with the
// seed threaded from configuration — the splitmix round-seed pattern
// the sentinel follows — so every run is replayable from seeds alone.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "flags math/rand global-source calls and wall-clock-seeded rand.New",
	Run:  runGlobalRand,
}

// randConstructors are package-level math/rand functions that do not
// draw from the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runGlobalRand(pass *Pass) error {
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on an explicit *rand.Rand are the approved form
			}
			if !randConstructors[fn.Name()] {
				pass.Reportf(call.Pos(), "%s.%s draws from the process-global source and is not reproducible; thread an explicitly seeded *rand.Rand instead",
					fn.Pkg().Name(), fn.Name())
				return true
			}
			// Constructor: seeded, but reject wall-clock seeds.
			for _, arg := range call.Args {
				if containsCallTo(pass.TypesInfo, arg, "time", "Now") {
					pass.Reportf(call.Pos(), "%s.%s seeded from the wall clock is not reproducible; thread a configured seed instead",
						fn.Pkg().Name(), fn.Name())
					break
				}
			}
			return true
		})
	}
	return nil
}
