package analysis

import (
	"go/ast"
	"go/types"
)

// PoolContract enforces the parallel region discipline: a callback
// passed to parallel.Pool.For / Pool.Each or the package-level
// parallel.For may only write through per-worker slots. Worker w's
// chunks always run on pinned goroutine w, so writes indexed by the
// worker id (or by a region-local induction variable over the
// region's [start,end) chunk) are race-free AND fold in a fixed
// order; any other write to captured state is either a data race or —
// when lock-guarded — a schedule-dependent accumulation order, which
// breaks bit-identity just as surely.
//
// Concretely, inside such a callback the analyzer flags assignments
// and ++/-- whose left-hand side captures an outer variable without
// mentioning any variable declared inside the callback (parameters
// included). results[w] = ..., out[i] += ... (i region-local) and
// locals are fine; shared = ..., results[j] = ... (j captured) and
// s = append(s, ...) are not. Calls (including sync/atomic counters)
// are not writes and are left to the race detector. Intentional
// exceptions carry //detlint:allow poolcontract(reason).
var PoolContract = &Analyzer{
	Name: "poolcontract",
	Doc:  "flags parallel.Pool callbacks that mutate shared state without per-worker pinning",
	Run:  runPoolContract,
}

func runPoolContract(pass *Pass) error {
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			lit := poolCallback(pass, call)
			if lit == nil {
				return true
			}
			checkCallback(pass, lit)
			return true
		})
	}
	return nil
}

// poolCallback returns the func literal passed as the region callback
// of a parallel.For / Pool.For / Pool.Each call, or nil.
func poolCallback(pass *Pass, call *ast.CallExpr) *ast.FuncLit {
	fn := funcFor(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || pkgTail(fn.Pkg().Path()) != "parallel" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var argIdx int
	if recv := sig.Recv(); recv != nil {
		// Methods For(n, fn) / Each(fn) on parallel.Pool.
		base := recv.Type()
		if p, ok := base.(*types.Pointer); ok {
			base = p.Elem()
		}
		named, ok := base.(*types.Named)
		if !ok || named.Obj().Name() != "Pool" {
			return nil
		}
		switch fn.Name() {
		case "For":
			argIdx = 1
		case "Each":
			argIdx = 0
		default:
			return nil
		}
	} else if fn.Name() == "For" {
		argIdx = 1 // package-level parallel.For(n, fn)
	} else {
		return nil
	}
	if argIdx >= len(call.Args) {
		return nil
	}
	lit, _ := call.Args[argIdx].(*ast.FuncLit)
	return lit
}

func checkCallback(pass *Pass, lit *ast.FuncLit) {
	declaredInside := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			// A nested literal is a different (possibly deferred)
			// execution context; judge it against its own captures
			// only if it is itself a region callback.
			return false
		}
		var lhss []ast.Expr
		switch s := n.(type) {
		case *ast.AssignStmt:
			lhss = s.Lhs
		case *ast.IncDecStmt:
			lhss = []ast.Expr{s.X}
		default:
			return true
		}
		for _, lhs := range lhss {
			checkRegionWrite(pass, lit, lhs, declaredInside)
		}
		return true
	})
}

// checkRegionWrite flags a write whose target captures state from
// outside the callback without being pinned by any callback-local
// variable.
func checkRegionWrite(pass *Pass, lit *ast.FuncLit, lhs ast.Expr, declaredInside func(types.Object) bool) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || declaredInside(obj) {
			return // local, or a fresh := definition
		}
		pass.Reportf(lhs.Pos(), "parallel region callback assigns to captured variable %s; give each worker its own slot (indexed by the worker id) and fold the slots in order after the region, or annotate //detlint:allow poolcontract(reason)", id.Name)
		return
	}
	// Composite lvalue: a[i], x.f, *p, a[w].f, ... Allowed iff some
	// identifier inside it is declared inside the callback (the
	// worker id, a region-local induction variable, or a local base).
	base := lvalueBase(lhs)
	if base == nil {
		return
	}
	if obj := pass.TypesInfo.ObjectOf(base); obj == nil || declaredInside(obj) {
		return
	}
	pinned := false
	ast.Inspect(lhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && declaredInside(pass.TypesInfo.ObjectOf(id)) {
			pinned = true
		}
		return !pinned
	})
	if pinned {
		return
	}
	pass.Reportf(lhs.Pos(), "parallel region callback writes %s through captured state with no worker-local index; pin the write to the worker id (e.g. slots[worker]) or annotate //detlint:allow poolcontract(reason)",
		exprString(pass.Fset, lhs))
}

// lvalueBase returns the root identifier of a composite lvalue.
func lvalueBase(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
