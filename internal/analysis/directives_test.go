package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text         string
		name, reason string
		ok           bool
	}{
		{"//detlint:allow walltime(latency metric)", "walltime", "latency metric", true},
		{"//detlint:allow maporder(sorted after (twice))", "maporder", "sorted after (twice)", true},
		{"//detlint:allow walltime()", "walltime", "", true},
		{"//detlint:allow walltime", "", "", false},
		{"//detlint:allow (no name)", "", "", false},
		{"// detlint:allow walltime(spaced prefix is not a directive)", "", "", false},
		{"//detlint:allowwalltime(reason)", "", "", false},
		{"// plain comment", "", "", false},
	}
	for _, c := range cases {
		name, reason, ok := parseAllow(c.text)
		if name != c.name || reason != c.reason || ok != c.ok {
			t.Errorf("parseAllow(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, name, reason, ok, c.name, c.reason, c.ok)
		}
	}
}

// typecheck parses and type-checks one source string as a package
// with the given import path.
func typecheck(t *testing.T, path, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, []*ast.File{f}, pkg, info
}

func TestCheckDirectives(t *testing.T) {
	src := `package core

//detlint:allow walltime(fine)
var a int

//detlint:allow nosuchanalyzer(reason)
var b int

//detlint:allow walltime
var c int

//detlint:wrongverb walltime(reason)
var d int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags := CheckDirectives(fset, []*ast.File{f})
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	wants := []string{"unknown analyzer", "malformed detlint directive", "malformed detlint directive"}
	for i, w := range wants {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want containing %q", i, diags[i].Message, w)
		}
	}
}

// TestUnusedAllow pins the staleness check: an allow comment that no
// longer suppresses anything is itself a finding.
func TestUnusedAllow(t *testing.T) {
	src := `package core

//detlint:allow walltime(stale: nothing on the next line reads the clock)
var x = 1
`
	fset, files, pkg, info := typecheck(t, "repro/internal/core", src)
	diags, err := RunAnalyzer(WallTime, fset, files, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unused //detlint:allow walltime") {
		t.Fatalf("got %v, want one unused-allow finding", diags)
	}
}

// TestSuppressionCountsAsUse: the same comment is not stale when it
// does suppress a finding.
func TestSuppressionCountsAsUse(t *testing.T) {
	src := `package core

import "time"

func now() time.Time {
	//detlint:allow walltime(unit test)
	return time.Now()
}
`
	fset, files, pkg, info := typecheck(t, "repro/internal/core", src)
	diags, err := RunAnalyzer(WallTime, fset, files, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("got %v, want no findings", diags)
	}
}
