package analysis

import (
	"go/ast"
)

// WallTime flags wall-clock reads (time.Now, time.Since, timers and
// tickers) inside packages whose outputs must be reproducible from
// seeds alone: the numeric core (tensor, quant, nn), suite selection
// (core, coverage, bitset), data/model generation, training and
// rendering — plus the networking and sentinel layers, where
// legitimate wall-clock use (latency metrics, backoff schedules,
// pacing) carries a //detlint:allow walltime(reason) annotation so
// every exception is visible and justified.
//
// One use is exempted automatically: time.Now() flowing directly into
// a SetDeadline / SetReadDeadline / SetWriteDeadline call, which is
// inherently wall-clock I/O plumbing and can never reach a sealed
// artifact.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "flags wall-clock reads in deterministic packages",
	Run:  runWallTime,
}

var walltimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

var deadlineSetters = map[string]bool{
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

func runWallTime(pass *Pass) error {
	if !isWalltimeScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.sourceFiles() {
		// Source ranges of deadline-setter calls: wall-clock reads
		// inside their arguments are I/O plumbing, not determinism
		// hazards.
		deadlines := rangesOf(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return false
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			return ok && deadlineSetters[sel.Sel.Name]
		})
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !walltimeFuncs[fn.Name()] {
				return true
			}
			if anyContains(deadlines, call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(), "time.%s reads the wall clock in a deterministic package; derive the value from configuration/seeds or annotate //detlint:allow walltime(reason)", fn.Name())
			return true
		})
	}
	return nil
}
