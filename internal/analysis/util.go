package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// exprString renders an expression for a diagnostic message.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "?"
	}
	return b.String()
}

// funcFor resolves a call's callee to the *types.Func it invokes, or
// nil for indirect calls, conversions and builtins.
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (no receiver).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// containsCallTo reports whether the subtree rooted at n contains a
// call to the package-level function pkgPath.name.
func containsCallTo(info *types.Info, n ast.Node, pkgPath, name string) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isPkgFunc(funcFor(info, call), pkgPath, name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isIntegerType reports whether t's underlying type is an integer.
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isFloatType reports whether t's underlying type is a float.
func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// posRange is a half-open source interval used for "is this node
// lexically inside one of those nodes" checks.
type posRange struct{ lo, hi token.Pos }

func (r posRange) contains(p token.Pos) bool { return r.lo <= p && p < r.hi }

// rangesOf collects the source ranges of every node in the file for
// which pick returns true.
func rangesOf(f *ast.File, pick func(ast.Node) bool) []posRange {
	var out []posRange
	ast.Inspect(f, func(n ast.Node) bool {
		if n != nil && pick(n) {
			out = append(out, posRange{n.Pos(), n.End()})
		}
		return true
	})
	return out
}

func anyContains(rs []posRange, p token.Pos) bool {
	for _, r := range rs {
		if r.contains(p) {
			return true
		}
	}
	return false
}
