// No-false-positive fixture: this package's import path ends in
// /tensor, the approved kernel layer, so its reductions — mirroring
// the real GEMM/Dot kernels in internal/tensor — are not flagged.
package tensor

// Dot mirrors the approved serial dot-product kernel: strict
// left-to-right accumulation.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// gemmRow mirrors one row-panel of the real GEMM inner loop: a scalar
// accumulator per output element, k-ordered.
func gemmRow(dst, a []float64, b [][]float64) {
	for j := range dst {
		var acc float64
		for k := range a {
			acc += a[k] * b[k][j]
		}
		dst[j] = acc
	}
}

// Sum mirrors the approved serial reduction kernel.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
