// Fixture for the floatreduce analyzer in a non-kernel package (the
// import path ends in /coverage).
package coverage

// mean is the archetypal ad-hoc reduction: the accumulation order
// here is an accident of this loop, not a tested kernel contract.
func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x // want `ad-hoc floating-point accumulation into s`
	}
	return s / float64(len(xs))
}

// spelledOut hides the fold behind a plain assignment.
func spelledOut(xs []float32) float32 {
	var s float32
	for i := 0; i < len(xs); i++ {
		s = s + xs[i] // want `ad-hoc floating-point accumulation into s`
	}
	return s
}

// norm accumulates a product.
func norm(xs []float64) float64 {
	p := 1.0
	for _, x := range xs {
		p *= x // want `ad-hoc floating-point accumulation into p`
	}
	return p
}

type stats struct{ sum float64 }

// fieldFold accumulates into a struct field: still a scalar fold.
func fieldFold(st *stats, xs []float64) {
	for _, x := range xs {
		st.sum += x // want `ad-hoc floating-point accumulation into st.sum`
	}
}

// intSum is exact arithmetic; order cannot be observed.
func intSum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// scatter is the kernels' indexed-accumulation idiom: each element
// has its own accumulator, the loop structure pins the order.
func scatter(out, g []float64) {
	for i := range out {
		out[i] += g[i]
	}
}

// outsideLoop: a single accumulation is not a reduction.
func outsideLoop(s, x float64) float64 {
	s += x
	return s
}

// annotated: a sequential fold whose order is fixed by the schedule,
// justified in place.
func annotated(losses []float64) float64 {
	var epoch float64
	for _, l := range losses {
		epoch += l //detlint:allow floatreduce(fixture: sequential fold, order fixed by the schedule)
	}
	return epoch
}
