// Fixture for the maporder analyzer: firing, allowed, auto-exempt
// and annotated cases.
package maporder

import "sort"

// renderReport feeds map iteration order straight into a report
// string: the canonical determinism bug.
func renderReport(m map[string]int) string {
	out := ""
	for k, v := range m { // want `iteration over map m has nondeterministic order`
		out += k
		_ = v
	}
	return out
}

// sortedKeys is the canonical fix: collect, sort, iterate. The
// collect loop is auto-exempt.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortInterface exercises the conversion form sort.Sort(byLen(keys)).
type byLen []string

func (b byLen) Len() int           { return len(b) }
func (b byLen) Less(i, j int) bool { return len(b[i]) < len(b[j]) }
func (b byLen) Swap(i, j int)      { b[i], b[j] = b[j], b[i] }

func sortedViaInterface(m map[string]bool) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Sort(byLen(keys))
	return keys
}

// collectNoSort collects values without ever sorting them: order
// leaks.
func collectNoSort(m map[string]int) []int {
	var vals []int
	for _, v := range m { // want `collects into vals which is never sorted`
		vals = append(vals, v)
	}
	return vals
}

// aggregate only counts and sums integers — exact arithmetic
// commutes, so iteration order cannot be observed.
func aggregate(m map[string]int) (int, int) {
	n, total := 0, 0
	for _, v := range m {
		if v > 0 {
			n++
		}
		total += v
	}
	return n, total
}

// floatSum looks like aggregation but float addition does not
// commute under rounding.
func floatSum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `iteration over map m has nondeterministic order`
		s += v
	}
	return s
}

// invert fills another map: keyed writes are order-insensitive.
func invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// drain deletes while ranging — the documented order-free idiom.
func drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// annotated demonstrates the escape hatch.
func annotated(m map[string]func()) {
	//detlint:allow maporder(fixture: side effects are commutative by construction)
	for _, f := range m {
		f()
	}
}
