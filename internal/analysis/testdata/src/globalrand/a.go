// Fixture for the globalrand analyzer.
package globalrand

import (
	"math/rand"
	"time"
)

func globals() {
	_ = rand.Intn(10)      // want `rand.Intn draws from the process-global source`
	_ = rand.Float64()     // want `rand.Float64 draws from the process-global source`
	_ = rand.Perm(5)       // want `rand.Perm draws from the process-global source`
	rand.Shuffle(3, swap)  // want `rand.Shuffle draws from the process-global source`
	_ = rand.NormFloat64() // want `rand.NormFloat64 draws from the process-global source`
}

func swap(i, j int) {}

// wallClockSeed is seeded, but not reproducibly.
func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from the wall clock`
}

// seeded is the approved discipline: an explicit seed threaded from
// configuration, every draw through the local *rand.Rand.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(3, swap)
	_ = rng.Perm(5)
	return rng.Float64()
}

// annotated demonstrates the escape hatch.
func annotated() int {
	return rand.Intn(3) //detlint:allow globalrand(fixture: demonstrating the escape hatch)
}
