// Fixture for the poolcontract analyzer: per-worker pinning vs
// shared-state mutation inside parallel region callbacks.
package poolcontract

import "parallel"

// pinnedReduce is the approved pattern: per-worker slots indexed by
// the worker id, folded in order after the region.
func pinnedReduce(p *parallel.Pool, xs []float64) float64 {
	sums := make([]float64, p.Workers())
	p.For(len(xs), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			sums[w] += xs[i]
		}
	})
	var total float64
	for w := 0; w < len(sums); w++ {
		total += sums[w]
	}
	return total
}

// sharedScalar mutates a captured scalar from every worker: a data
// race, and even lock-guarded the fold order would be
// schedule-dependent.
func sharedScalar(p *parallel.Pool, xs []float64) float64 {
	var total float64
	p.For(len(xs), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i] // want `assigns to captured variable total`
		}
	})
	return total
}

// sharedAppend grows a captured slice from inside the region.
func sharedAppend(p *parallel.Pool, xs []int) []int {
	var out []int
	p.For(len(xs), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			out = append(out, xs[i]*2) // want `assigns to captured variable out`
		}
	})
	return out
}

// capturedIndex writes through an index that is independent of the
// region: every worker hits the same slot.
func capturedIndex(p *parallel.Pool, xs []float64) []float64 {
	out := make([]float64, len(xs))
	j := 0
	p.For(len(xs), func(w, lo, hi int) {
		out[j] = xs[0] // want `writes out\[j\] through captured state with no worker-local index`
	})
	return out
}

// elementWrites through region-local indices are the point of the
// exact partitioning contract: chunk w owns [lo,hi).
func elementWrites(p *parallel.Pool, xs, ys []float64) {
	p.For(len(xs), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			ys[i] = 2 * xs[i]
		}
	})
}

// eachInit refreshes per-worker pinned state on its own goroutine.
func eachInit(p *parallel.Pool, scratch [][]float64) {
	p.Each(func(w int) {
		scratch[w] = make([]float64, 16)
	})
}

// packageFor checks the package-level region with a captured counter.
func packageFor(n int) int {
	count := 0
	parallel.For(n, func(w, lo, hi int) {
		count++ // want `assigns to captured variable count`
	})
	return count
}

// structField mutation through captured state without a worker-local
// index is shared mutation too.
type tally struct{ hits int }

func structField(p *parallel.Pool, t *tally, n int) {
	p.For(n, func(w, lo, hi int) {
		t.hits = n // want `writes t.hits through captured state with no worker-local index`
	})
}

// pinnedField is fine: the path to the field goes through the worker
// id.
func pinnedField(p *parallel.Pool, ts []tally, n int) {
	p.For(n, func(w, lo, hi int) {
		ts[w].hits = n
	})
}

// locals inside the callback are no one's business.
func localsOnly(p *parallel.Pool, n int) {
	p.For(n, func(w, lo, hi int) {
		acc := 0
		for i := lo; i < hi; i++ {
			acc += i
		}
		_ = acc
	})
}

// annotated demonstrates the escape hatch.
func annotated(p *parallel.Pool, n int) int {
	mode := 0
	p.For(n, func(w, lo, hi int) {
		mode = 1 //detlint:allow poolcontract(fixture: every worker writes the same constant)
	})
	return mode
}
