// Fixture for the walltime analyzer in a deterministic package (the
// import path ends in /core, one of the seed-reproducible layers).
package core

import "time"

func stamp() time.Time {
	return time.Now() // want `time.Now reads the wall clock in a deterministic package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock in a deterministic package`
}

func ticking() {
	t := time.NewTicker(time.Second) // want `time.NewTicker reads the wall clock in a deterministic package`
	defer t.Stop()
	<-time.After(time.Millisecond) // want `time.After reads the wall clock in a deterministic package`
}

// derived quantities that do not read the clock are fine.
func pure(d time.Duration) time.Duration {
	return d.Truncate(time.Millisecond)
}

// annotated demonstrates the escape hatch.
func annotated() time.Time {
	//detlint:allow walltime(fixture: demonstrating the escape hatch)
	return time.Now()
}

// emptyReason shows that an allow comment without a justification is
// itself reported.
func emptyReason() time.Time {
	//detlint:allow walltime()
	return time.Now() // want `allow comment for walltime has no justification`
}
