// Out-of-scope fixture: the import path contains /cmd/, marking an
// interactive driver, where wall-clock use (progress reporting,
// elapsed-time summaries) is legitimate and unflagged.
package clock

import "time"

func Elapsed(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}
