// Fixture for the walltime analyzer in the networking layer: the
// deadline-setter exemption and the annotated latency measurement.
package validate

import (
	"net"
	"time"
)

// deadlines: time.Now flowing into Set*Deadline is I/O plumbing and
// exempt — it can never reach a sealed artifact.
func deadlines(c net.Conn, d time.Duration) {
	c.SetDeadline(time.Now().Add(d))
	c.SetReadDeadline(time.Now())
	c.SetWriteDeadline(time.Now().Add(2 * d))
}

// latency measurements are wall-clock by nature and carry the
// annotation.
func latency(f func()) time.Duration {
	t0 := time.Now() //detlint:allow walltime(latency metric, observability only — never part of a verdict)
	f()
	//detlint:allow walltime(latency metric, observability only — never part of a verdict)
	return time.Since(t0)
}

// unannotated wall-clock reads still fire here.
func bare() time.Time {
	return time.Now() // want `time.Now reads the wall clock in a deterministic package`
}
