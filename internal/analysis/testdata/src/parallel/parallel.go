// Package parallel is a stub of repro/internal/parallel for
// poolcontract fixtures: same shapes, serial execution. The analyzer
// matches the Pool type and For/Each by package-path tail, so this
// stub exercises the same code paths as the real pool.
package parallel

// Pool mimics the real worker pool's dispatch surface.
type Pool struct{ n int }

func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{n: workers}
}

func (p *Pool) Workers() int { return p.n }

// For partitions [0,n) and runs the callback per chunk.
func (p *Pool) For(n int, fn func(worker, start, end int)) {
	if n > 0 {
		fn(0, 0, n)
	}
}

// Each runs fn once per worker.
func (p *Pool) Each(fn func(worker int)) {
	for w := 0; w < p.n; w++ {
		fn(w)
	}
}

// For is the package-level one-shot region.
func For(n int, fn func(worker, start, end int)) {
	if n > 0 {
		fn(0, 0, n)
	}
}
