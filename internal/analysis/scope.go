package analysis

import (
	"go/ast"
	"strings"
)

// Package scoping. Analyzers classify packages by import path: the
// final path segment names the layer (the real tree's
// repro/internal/tensor and an analysistest fixture's floatreduce/tensor
// both classify as the tensor kernel layer), and /cmd/ and /examples/
// mark interactive drivers where wall-clock and ad-hoc statistics are
// legitimate.

// deterministicPkgs are the packages whose outputs must be
// reproducible from seeds alone: the numeric core, the coverage and
// suite-selection machinery, data/model generation, training, and
// report rendering.
var deterministicPkgs = map[string]bool{
	"tensor":   true,
	"quant":    true,
	"core":     true,
	"coverage": true,
	"nn":       true,
	"bitset":   true,
	"data":     true,
	"models":   true,
	"train":    true,
	"attack":   true,
	"render":   true,
}

// wallclockAwarePkgs additionally hold networking and daemon code:
// wall time there is flagged too, but legitimate uses (I/O deadlines,
// latency metrics, backoff schedules) carry //detlint:allow walltime
// annotations instead of being rewritten.
var wallclockAwarePkgs = map[string]bool{
	"validate": true,
	"sentinel": true,
}

func pkgTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isDriver reports whether the package is an interactive entry point
// (cmd/, examples/, tools/) rather than library code.
func isDriver(path string) bool {
	return strings.Contains(path, "/cmd/") || strings.Contains(path, "/examples/") ||
		strings.Contains(path, "/tools/") || path == "main"
}

func isDeterministicPkg(path string) bool {
	return !isDriver(path) && deterministicPkgs[pkgTail(path)]
}

func isWalltimeScope(path string) bool {
	if isDriver(path) {
		return false
	}
	t := pkgTail(path)
	return deterministicPkgs[t] || wallclockAwarePkgs[t]
}

// isTensorKernel reports whether the package is the approved
// floating-point reduction layer.
func isTensorKernel(path string) bool { return pkgTail(path) == "tensor" }

// sourceFiles returns the pass's non-test files. The analyzers run on
// production code; test files exercise determinism dynamically (the
// equivalence grids and the race sweep) and routinely build throwaway
// maps and sums whose order cannot reach any sealed artifact.
func (p *Pass) sourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}
