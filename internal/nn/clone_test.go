package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func cloneTestNet(t *testing.T) *Network {
	t.Helper()
	net := NewNetwork(
		NewConv2D("conv1", 1, 8, 8, 2, 3, 1, 1),
		NewActivate("relu1", ReLU),
		NewMaxPool2D("pool1", 2, 8, 8, 2, 2),
		NewFlatten("flat"),
		NewDense("fc", 2*4*4, 3),
	)
	rng := rand.New(rand.NewSource(9))
	for _, p := range net.Params() {
		p.W.FillNormal(rng, 0, 0.5)
	}
	return net
}

func TestCloneMatchesAndIsIndependent(t *testing.T) {
	net := cloneTestNet(t)
	clone := net.Clone()

	if clone.NumParams() != net.NumParams() {
		t.Fatalf("clone has %d params, want %d", clone.NumParams(), net.NumParams())
	}
	x := tensor.New(1, 8, 8)
	x.FillUniform(rand.New(rand.NewSource(3)), 0, 1)
	a, b := net.Forward(x), clone.Forward(x)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatalf("clone forward diverges at logit %d: %v vs %v", i, a.Data()[i], b.Data()[i])
		}
	}

	// Mutating the clone must not touch the original.
	clone.SetParamAt(0, 123.5)
	if net.ParamAt(0) == 123.5 {
		t.Fatal("clone shares parameter storage with the original")
	}
}

func TestSyncParamsFrom(t *testing.T) {
	net := cloneTestNet(t)
	clone := net.CloneArchitecture()
	clone.SyncParamsFrom(net)
	for i := 0; i < net.NumParams(); i++ {
		if clone.ParamAt(i) != net.ParamAt(i) {
			t.Fatalf("param %d not synced", i)
		}
	}
}

func TestAddGradsFrom(t *testing.T) {
	net := cloneTestNet(t)
	w1, w2 := net.Clone(), net.Clone()
	x := tensor.New(1, 8, 8)
	x.FillUniform(rand.New(rand.NewSource(5)), 0, 1)

	// Serial reference: both samples accumulated into one network.
	net.ZeroGrad()
	net.Forward(x)
	net.Backward(OnesLike(net.Forward(x)))

	// Worker form: one sample per clone, merged.
	w1.ZeroGrad()
	w1.Backward(OnesLike(w1.Forward(x)))
	w2.ZeroGrad()
	merged := net.CloneArchitecture()
	merged.ZeroGrad()
	merged.AddGradsFrom(w1)
	merged.AddGradsFrom(w2)
	for i := 0; i < net.NumParams(); i++ {
		if merged.GradAt(i) != w1.GradAt(i) {
			t.Fatalf("grad %d: merged %v, want %v (w2 contributed zero)", i, merged.GradAt(i), w1.GradAt(i))
		}
	}
}

func TestSyncParamsFromMismatchPanics(t *testing.T) {
	net := cloneTestNet(t)
	other := NewNetwork(NewDense("fc", 4, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("SyncParamsFrom across architectures did not panic")
		}
	}()
	other.SyncParamsFrom(net)
}
