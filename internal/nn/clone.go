package nn

import "fmt"

// CloneArchitecture returns a structurally identical network with fresh
// zero parameters. All layer kinds the serializer understands are
// supported; unknown kinds panic, mirroring Encode's error.
func (n *Network) CloneArchitecture() *Network {
	layers := make([]Layer, 0, len(n.LayerStack))
	for _, l := range n.LayerStack {
		switch t := l.(type) {
		case *Conv2D:
			layers = append(layers, NewConv2D(t.LayerName, t.InC, t.InH, t.InW, t.OutC, t.K, t.Stride, t.Pad))
		case *Dense:
			layers = append(layers, NewDense(t.LayerName, t.In, t.Out))
		case *MaxPool2D:
			layers = append(layers, NewMaxPool2D(t.LayerName, t.C, t.H, t.W, t.K, t.Stride))
		case *Activate:
			layers = append(layers, NewActivate(t.LayerName, t.Fn))
		case *Flatten:
			layers = append(layers, NewFlatten(t.LayerName))
		case *ScaleShift:
			layers = append(layers, NewScaleShift(t.LayerName, t.A, t.B))
		default:
			panic(fmt.Sprintf("nn: cannot clone layer type %T", l))
		}
	}
	return NewNetwork(layers...)
}

// Clone returns a deep copy of the network: same architecture, same
// parameter values, zero gradients, and no shared state. Each worker of
// a parallel evaluation runs forward/backward passes on its own clone,
// because layers cache per-input state between Forward and Backward.
func (n *Network) Clone() *Network {
	c := n.CloneArchitecture()
	c.SyncParamsFrom(n)
	return c
}

// sameRegistry panics unless src's parameter registry matches n's
// (same tensor count and sizes), the precondition of the bulk copies.
func (n *Network) sameRegistry(src *Network, op string) {
	if len(n.flat) != len(src.flat) {
		panic(fmt.Sprintf("nn: %s across different architectures (%d vs %d param tensors)", op, len(n.flat), len(src.flat)))
	}
	for i, p := range n.flat {
		if p.W.Size() != src.flat[i].W.Size() {
			panic(fmt.Sprintf("nn: %s param %d size mismatch (%d vs %d)", op, i, p.W.Size(), src.flat[i].W.Size()))
		}
	}
}

// SyncParamsFrom copies every parameter value from src into n without
// allocating; how training workers are refreshed from the main network
// after each optimizer step.
func (n *Network) SyncParamsFrom(src *Network) {
	n.sameRegistry(src, "SyncParamsFrom")
	for i, p := range n.flat {
		copy(p.W.Data(), src.flat[i].W.Data())
	}
}

// AddGradsFrom accumulates src's parameter gradients into n's. Merging
// worker gradients in a fixed worker order keeps parallel training
// deterministic for a given seed and worker count.
func (n *Network) AddGradsFrom(src *Network) {
	n.sameRegistry(src, "AddGradsFrom")
	for i, p := range n.flat {
		g, sg := p.Grad.Data(), src.flat[i].Grad.Data()
		for j := range g {
			g[j] += sg[j]
		}
	}
}
