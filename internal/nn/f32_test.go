package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// f32TestNet builds a full conv-pool-act-dense stack with the given
// activation, deterministically initialised.
func f32TestNet(act Activation) *Network {
	rng := rand.New(rand.NewSource(99))
	c1 := NewConv2D("conv1", 1, 10, 10, 4, 3, 1, 1)
	c1.Init(rng)
	d1 := NewDense("fc1", 4*5*5, 16)
	d1.Init(rng)
	d2 := NewDense("fc2", 16, 4)
	d2.Init(rng)
	return NewNetwork(
		NewScaleShift("norm", 2, -1),
		c1,
		NewActivate("a1", act),
		NewMaxPool2D("pool", 4, 10, 10, 2, 2),
		NewFlatten("flat"),
		d1,
		NewActivate("a2", act),
		d2,
	)
}

func f32TestInputs(n int) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(5))
	xs := make([]*tensor.Tensor, n)
	for i := range xs {
		xs[i] = tensor.New(1, 10, 10)
		xs[i].FillNormal(rng, 0.5, 0.2)
		xs[i].Clamp(0, 1)
	}
	return xs
}

// TestConvertF32MatchesFloat64: the float32 forward pass must agree
// with the float64 reference within float32 rounding, for every
// activation and both per-sample and batched evaluation.
func TestConvertF32MatchesFloat64(t *testing.T) {
	for _, act := range []Activation{ReLU, Tanh, Sigmoid, LeakyReLU} {
		net := f32TestNet(act)
		f32 := net.ConvertF32()
		xs := f32TestInputs(5)
		const tol = 1e-4
		for i, x := range xs {
			want := net.Forward(x)
			got := f32.Forward(x.F32())
			if got.Size() != want.Size() {
				t.Fatalf("%v: f32 output size %d, want %d", act, got.Size(), want.Size())
			}
			for j := range want.Data() {
				if d := math.Abs(float64(got.Data()[j]) - want.Data()[j]); d > tol {
					t.Fatalf("%v: input %d logit %d off by %g (f32 %v vs f64 %v)",
						act, i, j, d, got.Data()[j], want.Data()[j])
				}
			}
		}
	}
}

// TestF32ForwardBatchBitIdenticalToPerSample: the float32 batched
// forward must reproduce the float32 per-sample forward bitwise — the
// same kernel-sequence argument as the float64 engine's guarantee.
func TestF32ForwardBatchBitIdenticalToPerSample(t *testing.T) {
	for _, act := range []Activation{ReLU, Tanh} {
		f32 := f32TestNet(act).ConvertF32()
		xs := f32TestInputs(6)
		xs32 := make([]*tensor.T32, len(xs))
		for i, x := range xs {
			xs32[i] = x.F32()
		}
		logits := f32.ForwardBatch(tensor.Stack(xs32))
		for i, x := range xs32 {
			want := f32.Forward(x)
			row := logits.Sample(i)
			for j := range want.Data() {
				if row.Data()[j] != want.Data()[j] {
					t.Fatalf("%v: batched f32 logit [%d][%d] = %x, want %x",
						act, i, j, row.Data()[j], want.Data()[j])
				}
			}
		}
	}
}

// TestF32SyncParamsRequantises: after the float64 master changes,
// SyncParamsFrom must re-quantise the float32 clone to the new values.
func TestF32SyncParamsRequantises(t *testing.T) {
	net := f32TestNet(ReLU)
	f32 := net.ConvertF32()
	x := f32TestInputs(1)[0]

	before := f32.Forward(x.F32()).Clone()
	net.SetParamAt(0, net.ParamAt(0)+1)
	// The clone must not see the master's change until synced.
	if got := f32.Forward(x.F32()); got.Data()[0] != before.Data()[0] {
		t.Fatal("float32 clone observed master mutation before SyncParamsFrom")
	}
	f32.SyncParamsFrom(net)
	want := net.ConvertF32().Forward(x.F32())
	got := f32.Forward(x.F32())
	for j := range want.Data() {
		if got.Data()[j] != want.Data()[j] {
			t.Fatalf("synced f32 logit %d = %v, want %v", j, got.Data()[j], want.Data()[j])
		}
	}
}

// TestF32CloneIndependence: clones share no mutable state — syncing one
// must not affect another.
func TestF32CloneIndependence(t *testing.T) {
	net := f32TestNet(ReLU)
	f32 := net.ConvertF32()
	c := f32.Clone()
	x := f32TestInputs(1)[0].F32()
	before := c.Forward(x).Clone()

	net.SetParamAt(0, net.ParamAt(0)+2)
	f32.SyncParamsFrom(net)
	after := c.Forward(x)
	for j := range before.Data() {
		if after.Data()[j] != before.Data()[j] {
			t.Fatal("syncing one float32 clone mutated another")
		}
	}
}

// TestClonePoolF32ConcurrentSync: concurrent evaluation and hot
// re-quantisation on a ClonePoolF32 must never tear — every forward
// sees either the old or the new parameter set, nothing in between.
// Under -race this is the float32 serving fleet's isolation test.
func TestClonePoolF32ConcurrentSync(t *testing.T) {
	net := f32TestNet(ReLU)
	pool := NewClonePoolF32(net, 3)
	x := f32TestInputs(1)[0].F32()

	oldOut := net.ConvertF32().Forward(x).Clone()
	newNet := f32TestNet(ReLU)
	newNet.SetParamAt(0, newNet.ParamAt(0)+3)
	newOut := newNet.ConvertF32().Forward(x).Clone()

	match := func(got, want *tensor.T32) bool {
		for j := range want.Data() {
			if got.Data()[j] != want.Data()[j] {
				return false
			}
		}
		return true
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := 0; trial < 25; trial++ {
				c := pool.Acquire()
				got := c.Forward(x)
				if !match(got, oldOut) && !match(got, newOut) {
					errs <- "pool clone served a torn parameter set"
				}
				pool.Release(c)
			}
		}()
	}
	pool.SyncParamsFrom(newNet)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	c := pool.Acquire()
	defer pool.Release(c)
	if !match(c.Forward(x), newOut) {
		t.Fatal("pool clone not re-quantised after SyncParamsFrom")
	}
}

// TestClonePoolF32Size: the pool hands out exactly Size distinct clones.
func TestClonePoolF32Size(t *testing.T) {
	pool := NewClonePoolF32(f32TestNet(ReLU), 2)
	if pool.Size() != 2 {
		t.Fatalf("Size = %d, want 2", pool.Size())
	}
	a, b := pool.Acquire(), pool.Acquire()
	if a == b {
		t.Fatal("pool handed out the same clone twice")
	}
	pool.Release(a)
	pool.Release(b)
}
