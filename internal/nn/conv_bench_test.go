package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// Batched convolution benchmarks for the CI regression gate: a
// serving-scale conv layer whose forward GEMM streams an out-of-cache
// im2col block, in both precisions. The backward is float64 only — the
// float32 path is forward-only by design.

const (
	benchConvB    = 16
	benchConvInC  = 3
	benchConvIn   = 32
	benchConvOutC = 16
	benchConvK    = 3
)

func benchConv(b *testing.B) (*Conv2D, *tensor.Tensor) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D("conv", benchConvInC, benchConvIn, benchConvIn, benchConvOutC, benchConvK, 1, 1)
	c.Init(rng)
	x := tensor.New(benchConvB, benchConvInC, benchConvIn, benchConvIn)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	return c, x
}

func BenchmarkConvForwardF64(b *testing.B) {
	c, x := benchConv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ForwardBatch(x)
	}
}

func BenchmarkConvForwardF32(b *testing.B) {
	c, x := benchConv(b)
	net := NewNetwork(c).ConvertF32()
	x32 := x.F32()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(x32)
	}
}

func BenchmarkConvBackwardF64(b *testing.B) {
	c, x := benchConv(b)
	out := c.ForwardBatch(x)
	dOut := tensor.New(out.Shape()...)
	rng := rand.New(rand.NewSource(2))
	for i := range dOut.Data() {
		dOut.Data()[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.BackwardBatch(dOut)
	}
}
