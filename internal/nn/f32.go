package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// This file implements the float32 inference path: NetF32 is a
// forward-only clone of a Network whose parameters and arithmetic are
// float32, halving the memory traffic of the bandwidth-bound serving
// GEMMs. Only Forward/ForwardBatch exist — training, gradients and the
// coverage analysis stay float64, where the bit-identical suite
// guarantees live. A float32 output approximates the float64 reference
// to rounding error, so replay comparisons against float64-recorded
// suites must run under an explicit tolerance (validate's Tolerance
// knob), never the bit-exact mode.
//
// The forward passes mirror the float64 layers operation for operation
// (same im2col lowering, same GEMM kernels via the generic tensor
// layer, same bias/activation loops), so the float32 batched path is
// bit-identical to the float32 per-sample path for the same reason the
// float64 one is.

// layerF32 is one forward-only float32 stage of a NetF32.
type layerF32 interface {
	forward(x *tensor.T32) *tensor.T32
	forwardBatch(x *tensor.T32) *tensor.T32
	// syncFrom re-quantises the layer's parameters from its float64
	// counterpart; a no-op for stateless layers.
	syncFrom(src Layer)
	clone() layerF32
}

// NetF32 is a float32 inference clone of a Network. Forward and
// ForwardBatch allocate their intermediates per call and keep no
// per-input caches, but SyncParamsFrom mutates the weights in place, so
// concurrent evaluation must be fenced from parameter updates — a
// ClonePoolF32 provides exactly that discipline for serving fleets.
type NetF32 struct {
	layers []layerF32
}

// ConvertF32 returns a float32 inference clone of the network: same
// architecture, parameters converted with float32(v). All layer kinds
// the serializer understands are supported; unknown kinds panic,
// mirroring CloneArchitecture.
func (n *Network) ConvertF32() *NetF32 {
	layers := make([]layerF32, 0, len(n.LayerStack))
	for _, l := range n.LayerStack {
		var fl layerF32
		switch t := l.(type) {
		case *Conv2D:
			fl = &convF32{
				inC: t.InC, inH: t.InH, inW: t.InW, outC: t.OutC,
				geom:   t.Geom(),
				weight: t.Weight.W.F32(),
				bias:   t.Bias.W.F32(),
			}
		case *Dense:
			fl = &denseF32{in: t.In, out: t.Out, weight: t.Weight.W.F32(), bias: t.Bias.W.F32()}
		case *MaxPool2D:
			fl = &maxPoolF32{c: t.C, h: t.H, w: t.W, k: t.K, stride: t.Stride, geom: t.Geom()}
		case *Activate:
			fl = &activateF32{fn: t.Fn}
		case *Flatten:
			fl = flattenF32{}
		case *ScaleShift:
			fl = &scaleShiftF32{a: float32(t.A), b: float32(t.B)}
		default:
			panic(fmt.Sprintf("nn: cannot convert layer type %T to float32", l))
		}
		layers = append(layers, fl)
	}
	return &NetF32{layers: layers}
}

// Forward runs the float32 stack on a single sample and returns the
// logits.
func (n *NetF32) Forward(x *tensor.T32) *tensor.T32 {
	for _, l := range n.layers {
		x = l.forward(x)
	}
	return x
}

// ForwardBatch runs the float32 stack over a [B, ...] batch and returns
// the [B, classes] logits; every row is bit-identical to Forward on
// that sample alone.
func (n *NetF32) ForwardBatch(x *tensor.T32) *tensor.T32 {
	for _, l := range n.layers {
		x = l.forwardBatch(x)
	}
	return x
}

// Predict runs a forward pass and returns the argmax class.
func (n *NetF32) Predict(x *tensor.T32) int { return n.Forward(x).Argmax() }

// Clone returns a deep copy of the float32 network (parameters copied,
// no shared mutable state) — one clone per concurrent evaluator, the
// same discipline as Network.Clone.
func (n *NetF32) Clone() *NetF32 {
	layers := make([]layerF32, len(n.layers))
	for i, l := range n.layers {
		layers[i] = l.clone()
	}
	return &NetF32{layers: layers}
}

// SyncParamsFrom re-quantises every parameter from the float64 master
// without allocating — the hot parameter update of a float32 serving
// fleet. The master must have the architecture this clone was converted
// from; a mismatch panics like Network.SyncParamsFrom does.
func (n *NetF32) SyncParamsFrom(src *Network) {
	if len(n.layers) != len(src.LayerStack) {
		panic(fmt.Sprintf("nn: SyncParamsFrom across different architectures (%d vs %d layers)", len(n.layers), len(src.LayerStack)))
	}
	for i, l := range n.layers {
		l.syncFrom(src.LayerStack[i])
	}
}

// --- Conv2D ---

type convF32 struct {
	inC, inH, inW, outC int
	geom                tensor.ConvGeom
	weight              *tensor.T32 // [OutC, InC*K*K]
	bias                *tensor.T32 // [OutC]
}

func (c *convF32) forward(x *tensor.T32) *tensor.T32 {
	if x.Rank() != 3 || x.Dim(0) != c.inC || x.Dim(1) != c.inH || x.Dim(2) != c.inW {
		panic(fmt.Sprintf("nn: conv/f32 expects input [%d %d %d], got %v", c.inC, c.inH, c.inW, x.Shape()))
	}
	col := tensor.Im2Col(x, c.geom)
	hw := c.geom.OutH * c.geom.OutW
	out := convForwardSample(c.weight, c.bias, col, c.outC, hw) // [OutC, OutH*OutW]
	return out.Reshape(c.outC, c.geom.OutH, c.geom.OutW)
}

func (c *convF32) forwardBatch(x *tensor.T32) *tensor.T32 {
	if x.Rank() != 4 || x.Dim(1) != c.inC || x.Dim(2) != c.inH || x.Dim(3) != c.inW {
		panic(fmt.Sprintf("nn: conv/f32 expects batch input [B %d %d %d], got %v", c.inC, c.inH, c.inW, x.Shape()))
	}
	b := x.Dim(0)
	// Same fused strided kernel as the float64 layer (convkernel.go):
	// sample slabs written in place, bias in the epilogue, no permute.
	return convForwardBatch(c.weight, c.bias, tensor.Im2ColBatch(x, c.geom), b, c.outC, c.geom)
}

func (c *convF32) syncFrom(src Layer) {
	s, ok := src.(*Conv2D)
	if !ok {
		panic(fmt.Sprintf("nn: SyncParamsFrom layer mismatch: conv/f32 vs %T", src))
	}
	tensor.ConvertInto(c.weight, s.Weight.W)
	tensor.ConvertInto(c.bias, s.Bias.W)
}

func (c *convF32) clone() layerF32 {
	cp := *c
	cp.weight = c.weight.Clone()
	cp.bias = c.bias.Clone()
	return &cp
}

// --- Dense ---

type denseF32 struct {
	in, out int
	weight  *tensor.T32 // [Out, In]
	bias    *tensor.T32 // [Out]
}

func (d *denseF32) forward(x *tensor.T32) *tensor.T32 {
	if x.Size() != d.in {
		panic(fmt.Sprintf("nn: dense/f32 expects %d inputs, got %v", d.in, x.Shape()))
	}
	out := tensor.MatVec(d.weight, x.Reshape(d.in))
	out.AddInPlace(d.bias)
	return out
}

func (d *denseF32) forwardBatch(x *tensor.T32) *tensor.T32 {
	b := x.Dim(0)
	if x.Size() != b*d.in {
		panic(fmt.Sprintf("nn: dense/f32 expects %d inputs per sample, got %v", d.in, x.Shape()))
	}
	out := tensor.MatMulTB(x.Reshape(b, d.in), d.weight) // [B, Out]
	od, bd := out.Data(), d.bias.Data()
	for s := 0; s < b; s++ {
		row := od[s*d.out : (s+1)*d.out]
		for o, bv := range bd {
			row[o] += bv
		}
	}
	return out
}

func (d *denseF32) syncFrom(src Layer) {
	s, ok := src.(*Dense)
	if !ok {
		panic(fmt.Sprintf("nn: SyncParamsFrom layer mismatch: dense/f32 vs %T", src))
	}
	tensor.ConvertInto(d.weight, s.Weight.W)
	tensor.ConvertInto(d.bias, s.Bias.W)
}

func (d *denseF32) clone() layerF32 {
	cp := *d
	cp.weight = d.weight.Clone()
	cp.bias = d.bias.Clone()
	return &cp
}

// --- MaxPool2D ---

type maxPoolF32 struct {
	c, h, w, k, stride int
	geom               tensor.ConvGeom
}

func (m *maxPoolF32) forward(x *tensor.T32) *tensor.T32 {
	if x.Rank() != 3 || x.Dim(0) != m.c || x.Dim(1) != m.h || x.Dim(2) != m.w {
		panic(fmt.Sprintf("nn: maxpool/f32 expects input [%d %d %d], got %v", m.c, m.h, m.w, x.Shape()))
	}
	out := tensor.New32(m.c, m.geom.OutH, m.geom.OutW)
	m.poolSample(x.Data(), out.Data())
	return out
}

func (m *maxPoolF32) forwardBatch(x *tensor.T32) *tensor.T32 {
	if x.Rank() != 4 || x.Dim(1) != m.c || x.Dim(2) != m.h || x.Dim(3) != m.w {
		panic(fmt.Sprintf("nn: maxpool/f32 expects batch input [B %d %d %d], got %v", m.c, m.h, m.w, x.Shape()))
	}
	b := x.Dim(0)
	out := tensor.New32(b, m.c, m.geom.OutH, m.geom.OutW)
	inSz := m.c * m.h * m.w
	outSz := m.c * m.geom.OutH * m.geom.OutW
	xd, od := x.Data(), out.Data()
	for s := 0; s < b; s++ {
		m.poolSample(xd[s*inSz:(s+1)*inSz], od[s*outSz:(s+1)*outSz])
	}
	return out
}

// poolSample is the forward-only window scan: MaxPool2D.poolSample
// without the winner-index bookkeeping the backward pass needs.
func (m *maxPoolF32) poolSample(xd, od []float32) {
	oh, ow := m.geom.OutH, m.geom.OutW
	oi2 := 0
	for c := 0; c < m.c; c++ {
		chanBase := c * m.h * m.w
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				var best float32
				first := true
				for ki := 0; ki < m.k; ki++ {
					ii := oi*m.stride + ki
					rowBase := chanBase + ii*m.w
					for kj := 0; kj < m.k; kj++ {
						jj := oj*m.stride + kj
						if v := xd[rowBase+jj]; first || v > best {
							best = v
							first = false
						}
					}
				}
				od[oi2] = best
				oi2++
			}
		}
	}
}

func (m *maxPoolF32) syncFrom(Layer) {}

func (m *maxPoolF32) clone() layerF32 {
	cp := *m
	return &cp
}

// --- Activate ---

type activateF32 struct {
	fn Activation
}

func (a *activateF32) apply(x *tensor.T32) *tensor.T32 {
	out := x.Clone()
	switch a.fn {
	case ReLU:
		out.Apply(func(v float32) float32 {
			if v > 0 {
				return v
			}
			return 0
		})
	case Tanh:
		out.Apply(func(v float32) float32 { return float32(math.Tanh(float64(v))) })
	case Sigmoid:
		out.Apply(func(v float32) float32 { return float32(1 / (1 + math.Exp(-float64(v)))) })
	case LeakyReLU:
		out.Apply(func(v float32) float32 {
			if v > 0 {
				return v
			}
			return leakySlope * v
		})
	}
	return out
}

func (a *activateF32) forward(x *tensor.T32) *tensor.T32      { return a.apply(x) }
func (a *activateF32) forwardBatch(x *tensor.T32) *tensor.T32 { return a.apply(x) }
func (a *activateF32) syncFrom(Layer)                         {}
func (a *activateF32) clone() layerF32                        { cp := *a; return &cp }

// --- ScaleShift ---

type scaleShiftF32 struct {
	a, b float32
}

func (s *scaleShiftF32) apply(x *tensor.T32) *tensor.T32 {
	out := x.Clone()
	out.Apply(func(v float32) float32 { return v*s.a + s.b })
	return out
}

func (s *scaleShiftF32) forward(x *tensor.T32) *tensor.T32      { return s.apply(x) }
func (s *scaleShiftF32) forwardBatch(x *tensor.T32) *tensor.T32 { return s.apply(x) }
func (s *scaleShiftF32) syncFrom(Layer)                         {}
func (s *scaleShiftF32) clone() layerF32                        { cp := *s; return &cp }

// --- Flatten ---

type flattenF32 struct{}

func (flattenF32) forward(x *tensor.T32) *tensor.T32 { return x.Reshape(x.Size()) }
func (flattenF32) forwardBatch(x *tensor.T32) *tensor.T32 {
	b := x.Dim(0)
	return x.Reshape(b, x.Size()/b)
}
func (flattenF32) syncFrom(Layer)    {}
func (f flattenF32) clone() layerF32 { return f }
