package nn

import (
	"sync"
	"testing"

	"repro/internal/tensor"
)

func clonePoolNet() *Network {
	n := NewNetwork(
		NewDense("d1", 6, 8),
		NewActivate("relu", ReLU),
		NewDense("d2", 8, 3),
	)
	i := 0
	for _, p := range n.Params() {
		for j := range p.W.Data() {
			p.W.Data()[j] = float64((i+j)%7) * 0.25
			i++
		}
	}
	return n
}

// TestClonePoolConcurrentQueries: many goroutines checking clones out
// for forward passes must all see outputs identical to the source
// network. Under -race this is the isolation test: layer caches on a
// shared network would race, clones must not.
func TestClonePoolConcurrentQueries(t *testing.T) {
	src := clonePoolNet()
	x := tensor.New(6)
	for i := range x.Data() {
		x.Data()[i] = 0.1 * float64(i+1)
	}
	want := src.Forward(x).Clone()

	pool := NewClonePool(src, 3)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := 0; trial < 20; trial++ {
				c := pool.Acquire()
				got := c.Forward(x)
				for j := range want.Data() {
					if got.Data()[j] != want.Data()[j] {
						errs <- "clone output differs from source"
						pool.Release(c)
						return
					}
				}
				pool.Release(c)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestClonePoolSyncParamsFrom: after mutating the source and syncing,
// every clone must answer with the new parameters.
func TestClonePoolSyncParamsFrom(t *testing.T) {
	src := clonePoolNet()
	pool := NewClonePool(src, 2)
	x := tensor.New(6)
	x.Data()[0] = 1

	src.SetParamAt(0, src.ParamAt(0)+2.5)
	want := src.Forward(x).Clone()
	pool.SyncParamsFrom(src)
	for i := 0; i < pool.Size(); i++ {
		c := pool.Acquire()
		got := c.Forward(x)
		for j := range want.Data() {
			if got.Data()[j] != want.Data()[j] {
				t.Fatalf("clone %d stale after SyncParamsFrom", i)
			}
		}
		defer pool.Release(c)
	}
}

// TestClonePoolReleaseWithoutAcquirePanics documents the misuse check.
func TestClonePoolReleaseWithoutAcquirePanics(t *testing.T) {
	src := clonePoolNet()
	pool := NewClonePool(src, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("unmatched Release did not panic")
		}
	}()
	pool.Release(src.Clone())
}

// TestClonePoolSizeClamp: sizes below 1 still yield a usable pool.
func TestClonePoolSizeClamp(t *testing.T) {
	pool := NewClonePool(clonePoolNet(), 0)
	if pool.Size() != 1 {
		t.Fatalf("Size = %d, want 1", pool.Size())
	}
	c := pool.Acquire()
	pool.Release(c)
}
