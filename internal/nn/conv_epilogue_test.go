package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// These tests pin the fused-epilogue convolution path against the
// pre-epilogue operation sequence it replaced: wide GEMM → separate
// bias pass → [OutC, B*hw] → [B, OutC, hw] permute on the forward, and
// per-sample contiguous column-block gathers on the backward. The old
// sequence is replicated verbatim here (it is the reference); the layer
// must reproduce it bit for bit.

func convBeds(t *testing.T) []*Conv2D {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	mk := func(inC, inH, inW, outC, k, stride, pad int) *Conv2D {
		c := NewConv2D("conv", inC, inH, inW, outC, k, stride, pad)
		c.Init(rng)
		return c
	}
	return []*Conv2D{
		mk(2, 5, 5, 3, 3, 1, 1),
		mk(1, 6, 6, 2, 2, 2, 0),
		mk(3, 9, 7, 5, 3, 2, 1),
	}
}

func randIn(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	return x
}

// oldConvForwardBatch is the pre-epilogue batched forward: one wide
// MatMul, a separate bias pass over each [B*hw] weight row, then the
// permute into sample-contiguous layout.
func oldConvForwardBatch(c *Conv2D, x *tensor.Tensor) *tensor.Tensor {
	b := x.Dim(0)
	wide := tensor.MatMul(c.Weight.W, tensor.Im2ColBatch(x, c.geom)) // [OutC, B*hw]
	hw := c.geom.OutH * c.geom.OutW
	wd := wide.Data()
	for o := 0; o < c.OutC; o++ {
		bias := c.Bias.W.Data()[o]
		row := wd[o*b*hw : (o+1)*b*hw]
		for i := range row {
			row[i] += bias
		}
	}
	out := tensor.New(b, c.OutC, c.geom.OutH, c.geom.OutW)
	od := out.Data()
	for o := 0; o < c.OutC; o++ {
		for s := 0; s < b; s++ {
			copy(od[(s*c.OutC+o)*hw:(s*c.OutC+o+1)*hw], wd[(o*b+s)*hw:(o*b+s+1)*hw])
		}
	}
	return out
}

// oldConvForward is the pre-epilogue per-sample forward: MatMul then a
// separate bias pass.
func oldConvForward(c *Conv2D, x *tensor.Tensor) *tensor.Tensor {
	out := tensor.MatMul(c.Weight.W, tensor.Im2Col(x, c.geom))
	od := out.Data()
	hw := c.geom.OutH * c.geom.OutW
	for o := 0; o < c.OutC; o++ {
		b := c.Bias.W.Data()[o]
		row := od[o*hw : o*hw+hw]
		for i := range row {
			row[i] += b
		}
	}
	return out.Reshape(c.OutC, c.geom.OutH, c.geom.OutW)
}

func TestConvForwardMatchesPreEpilogueSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range convBeds(t) {
		for _, b := range []int{1, 4} {
			x := randIn(rng, b, c.InC, c.InH, c.InW)
			want := oldConvForwardBatch(c, x)
			got := c.ForwardBatch(x)
			for i := range want.Data() {
				if got.Data()[i] != want.Data()[i] {
					t.Fatalf("B=%d: fused batched forward element %d = %v, want %v (pre-epilogue sequence)",
						b, i, got.Data()[i], want.Data()[i])
				}
			}
		}
		xs := randIn(rng, c.InC, c.InH, c.InW)
		want := oldConvForward(c, xs)
		got := c.Forward(xs)
		for i := range want.Data() {
			if got.Data()[i] != want.Data()[i] {
				t.Fatalf("fused per-sample forward element %d = %v, want %v (pre-epilogue sequence)",
					i, got.Data()[i], want.Data()[i])
			}
		}
	}
}

func TestConvForwardF32MatchesPreEpilogueSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, c := range convBeds(t) {
		net := NewNetwork(c)
		f32 := net.ConvertF32()
		for _, b := range []int{1, 4} {
			x := randIn(rng, b, c.InC, c.InH, c.InW)
			x32 := x.F32()

			// Pre-epilogue float32 sequence: wide GEMM, bias pass, permute.
			w32, bias32 := c.Weight.W.F32(), c.Bias.W.F32()
			wide := tensor.MatMul(w32, tensor.Im2ColBatch(x32, c.geom))
			hw := c.geom.OutH * c.geom.OutW
			wd, bd := wide.Data(), bias32.Data()
			for o := 0; o < c.OutC; o++ {
				bias := bd[o]
				row := wd[o*b*hw : (o+1)*b*hw]
				for i := range row {
					row[i] += bias
				}
			}
			want := tensor.New32(b, c.OutC, c.geom.OutH, c.geom.OutW)
			od := want.Data()
			for o := 0; o < c.OutC; o++ {
				for s := 0; s < b; s++ {
					copy(od[(s*c.OutC+o)*hw:(s*c.OutC+o+1)*hw], wd[(o*b+s)*hw:(o*b+s+1)*hw])
				}
			}

			got := f32.ForwardBatch(x32)
			for i := range want.Data() {
				if got.Data()[i] != want.Data()[i] {
					t.Fatalf("B=%d: fused f32 batched forward element %d = %v, want %v (pre-epilogue sequence)",
						b, i, got.Data()[i], want.Data()[i])
				}
			}
		}
	}
}

func TestConvBackwardSampleMatchesPreEpilogueSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, c := range convBeds(t) {
		const b = 3
		x := randIn(rng, b, c.InC, c.InH, c.InW)
		c.ForwardBatch(x)
		hw := c.geom.OutH * c.geom.OutW

		for s := 0; s < b; s++ {
			dOut := randIn(rng, c.OutC, c.geom.OutH, c.geom.OutW)
			d2 := dOut.Reshape(c.OutC, hw)

			// Pre-epilogue reference: gather sample s's column block into
			// a contiguous scratch matrix (the old sampleCol), then run
			// the old gradient products on clones of the running grads.
			rows := c.InC * c.K * c.K
			stride := b * hw
			cb := c.colBatch.Data()
			scratch := tensor.New(rows, hw)
			for i := 0; i < rows; i++ {
				copy(scratch.Data()[i*hw:(i+1)*hw], cb[i*stride+s*hw:i*stride+(s+1)*hw])
			}
			wantW := c.Weight.Grad.Clone()
			tensor.MatMulTBInto(wantW, d2, scratch, true)
			wantB := c.Bias.Grad.Clone()
			dd := d2.Data()
			for o := 0; o < c.OutC; o++ {
				wantB.Data()[o] += tensor.Sum(dd[o*hw : o*hw+hw])
			}
			wantX := tensor.Col2Im(tensor.MatMulTA(c.Weight.W, d2), c.geom)

			gotX := c.BackwardSample(s, dOut)
			for i := range wantW.Data() {
				if c.Weight.Grad.Data()[i] != wantW.Data()[i] {
					t.Fatalf("sample %d: dW element %d = %v, want %v (gather-free backward must match the gathered sequence)",
						s, i, c.Weight.Grad.Data()[i], wantW.Data()[i])
				}
			}
			for i := range wantB.Data() {
				if c.Bias.Grad.Data()[i] != wantB.Data()[i] {
					t.Fatalf("sample %d: db element %d mismatch", s, i)
				}
			}
			for i := range wantX.Data() {
				if gotX.Data()[i] != wantX.Data()[i] {
					t.Fatalf("sample %d: dX element %d mismatch", s, i)
				}
			}
		}
	}
}
