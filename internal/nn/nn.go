// Package nn implements the from-scratch neural network engine the
// reproduction runs on: convolution, pooling, dense and activation
// layers with exact forward and backward passes, softmax cross-entropy
// loss, and a Network container with a flat parameter registry.
//
// Gradients are computed with respect to both the parameters (training,
// GDA attack, and the ∇θF(x) parameter-activation analysis at the heart
// of the paper) and the input (the paper's Algorithm 2 synthesises test
// inputs by gradient descent on the input).
//
// Layers operate on single samples ([C,H,W] images or [N] vectors); the
// training loop batches by accumulating parameter gradients across
// samples. Backward must follow a Forward of the same input, the usual
// tape discipline.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is one learnable tensor of a layer together with its gradient
// accumulator. Backward adds into Grad; callers zero it between uses.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// Layer is one stage of a feed-forward network.
type Layer interface {
	// Forward computes the layer output for x and caches whatever the
	// backward pass needs.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward consumes the gradient with respect to the last Forward's
	// output, accumulates parameter gradients, and returns the gradient
	// with respect to the input.
	Backward(dOut *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's learnable parameters (nil if stateless).
	Params() []*Param
	// Name identifies the layer in coverage reports and serialised form.
	Name() string
}

// Network is an ordered stack of layers ending in logits (the softmax is
// applied by the loss functions, not stored as a layer).
type Network struct {
	LayerStack []Layer

	offsets []int // flat offset of each Param across the whole network
	flat    []*Param
	total   int
}

// NewNetwork builds a network from the given layers.
func NewNetwork(layers ...Layer) *Network {
	n := &Network{LayerStack: layers}
	n.index()
	return n
}

func (n *Network) index() {
	n.flat = n.flat[:0]
	n.offsets = n.offsets[:0]
	n.total = 0
	for _, l := range n.LayerStack {
		for _, p := range l.Params() {
			n.flat = append(n.flat, p)
			n.offsets = append(n.offsets, n.total)
			n.total += p.W.Size()
		}
	}
}

// Forward runs the full stack and returns the logits.
func (n *Network) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range n.LayerStack {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dLogits through the stack (after a Forward),
// accumulating parameter gradients, and returns the gradient with
// respect to the network input.
func (n *Network) Backward(dLogits *tensor.Tensor) *tensor.Tensor {
	d := dLogits
	for i := len(n.LayerStack) - 1; i >= 0; i-- {
		d = n.LayerStack[i].Backward(d)
	}
	return d
}

// Params returns every learnable parameter tensor in network order.
func (n *Network) Params() []*Param { return n.flat }

// ZeroGrad clears every parameter gradient accumulator.
func (n *Network) ZeroGrad() {
	for _, p := range n.flat {
		p.Grad.Zero()
	}
}

// NumParams returns the total number of scalar parameters; the
// denominator of the paper's validation-coverage metric (Eq. 3).
func (n *Network) NumParams() int { return n.total }

// locate maps a flat parameter index to its Param and inner offset.
func (n *Network) locate(i int) (*Param, int) {
	if i < 0 || i >= n.total {
		panic(fmt.Sprintf("nn: parameter index %d out of range [0,%d)", i, n.total))
	}
	// binary search over offsets
	lo, hi := 0, len(n.offsets)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if n.offsets[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return n.flat[lo], i - n.offsets[lo]
}

// ParamAt returns the value of the i-th scalar parameter in flat order.
func (n *Network) ParamAt(i int) float64 {
	p, off := n.locate(i)
	return p.W.Data()[off]
}

// SetParamAt stores v into the i-th scalar parameter; the primitive the
// fault-injection attacks use.
func (n *Network) SetParamAt(i int, v float64) {
	p, off := n.locate(i)
	p.W.Data()[off] = v
}

// GradAt returns the accumulated gradient of the i-th scalar parameter.
func (n *Network) GradAt(i int) float64 {
	p, off := n.locate(i)
	return p.Grad.Data()[off]
}

// ParamName returns a human-readable name for the i-th scalar parameter,
// e.g. "conv1.W[12]".
func (n *Network) ParamName(i int) string {
	p, off := n.locate(i)
	return fmt.Sprintf("%s[%d]", p.Name, off)
}

// CopyParams returns all scalar parameters as one flat slice.
func (n *Network) CopyParams() []float64 {
	out := make([]float64, 0, n.total)
	for _, p := range n.flat {
		out = append(out, p.W.Data()...)
	}
	return out
}

// SetParams overwrites all scalar parameters from one flat slice, the
// inverse of CopyParams. It panics on a length mismatch.
func (n *Network) SetParams(vals []float64) {
	if len(vals) != n.total {
		panic(fmt.Sprintf("nn: SetParams got %d values, want %d", len(vals), n.total))
	}
	off := 0
	for _, p := range n.flat {
		copy(p.W.Data(), vals[off:off+p.W.Size()])
		off += p.W.Size()
	}
}

// VisitGrads calls fn(flatIndex, grad) for every scalar parameter, in
// flat order, without allocating. Coverage extraction uses this to fill
// activation bitsets.
func (n *Network) VisitGrads(fn func(i int, g float64)) {
	idx := 0
	for _, p := range n.flat {
		for _, g := range p.Grad.Data() {
			fn(idx, g)
			idx++
		}
	}
}

// Predict runs a forward pass and returns the argmax class of the
// logits; the black-box answer an IP user sees.
func (n *Network) Predict(x *tensor.Tensor) int {
	return n.Forward(x).Argmax()
}
