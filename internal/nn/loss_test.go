package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		z := tensor.New(n)
		z.FillNormal(rng, 0, 5)
		p := Softmax(z)
		if math.Abs(p.Sum()-1) > 1e-12 {
			return false
		}
		for _, v := range p.Data() {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariant(t *testing.T) {
	z := tensor.FromSlice([]float64{1, 2, 3}, 3)
	z2 := z.Map(func(v float64) float64 { return v + 100 })
	p1, p2 := Softmax(z), Softmax(z2)
	for i := range p1.Data() {
		if math.Abs(p1.Data()[i]-p2.Data()[i]) > 1e-12 {
			t.Fatalf("softmax not shift invariant at %d", i)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	z := tensor.FromSlice([]float64{1000, 999, 998}, 3)
	p := Softmax(z)
	if p.HasNaN() {
		t.Fatal("softmax overflowed on large logits")
	}
	if math.Abs(p.Sum()-1) > 1e-12 {
		t.Fatalf("softmax sum = %v", p.Sum())
	}
}

// TestSoftmaxDegenerateLogits is the regression test for the
// divide-by-degenerate-sum bug: all--Inf logits (reachable after
// extreme synthesis steps) used to propagate NaN into the cross-entropy
// gradient. The guard yields the uniform distribution and finite
// gradients for that case, while genuinely corrupted logits (NaN, +Inf)
// still propagate NaN so divergence detection keeps firing.
func TestSoftmaxDegenerateLogits(t *testing.T) {
	allInf := []float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	z := tensor.FromSlice(append([]float64(nil), allInf...), 3)
	p := Softmax(z)
	if p.HasNaN() {
		t.Fatalf("all--Inf softmax produced NaN/Inf: %v", p.Data())
	}
	for _, v := range p.Data() {
		if v != 1.0/3 {
			t.Fatalf("all--Inf softmax: want uniform fallback, got %v", p.Data())
		}
	}
	loss, d := SoftmaxCrossEntropy(z, 1)
	if math.IsNaN(loss) || d.HasNaN() {
		t.Fatalf("all--Inf cross-entropy propagated NaN: loss=%v d=%v", loss, d.Data())
	}

	for name, logits := range map[string][]float64{
		"one +inf":            {1, math.Inf(1), 2},
		"nan logit":           {1, math.NaN(), 2},
		"nan hidden by -infs": {math.Inf(-1), math.NaN(), math.Inf(-1)},
	} {
		if !Softmax(tensor.FromSlice(logits, 3)).HasNaN() {
			t.Fatalf("%s: corrupted logits must keep propagating NaN", name)
		}
	}
}

// TestSoftmaxBatchMatchesPerSample pins the batched loss to the
// per-sample one bit for bit, including on a degenerate row.
func TestSoftmaxBatchMatchesPerSample(t *testing.T) {
	rows := [][]float64{
		{0.3, -1.2, 2.5},
		{1000, 999, 998},
		{math.Inf(-1), math.Inf(-1), math.Inf(-1)},
		{-4, 0, 4},
	}
	labels := []int{2, 0, 1, 1}
	flat := make([]float64, 0, len(rows)*3)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	logits := tensor.FromSlice(flat, len(rows), 3)
	losses, d := SoftmaxCrossEntropyBatch(logits, labels)
	for b, r := range rows {
		wantLoss, wantD := SoftmaxCrossEntropy(tensor.FromSlice(append([]float64(nil), r...), 3), labels[b])
		if losses[b] != wantLoss {
			t.Fatalf("row %d: batch loss %v, want %v", b, losses[b], wantLoss)
		}
		got := d.Sample(b).Data()
		for i := range wantD.Data() {
			if got[i] != wantD.Data()[i] {
				t.Fatalf("row %d: batch dLogits[%d] = %v, want %v", b, i, got[i], wantD.Data()[i])
			}
		}
	}
}

func TestCrossEntropyHandChecked(t *testing.T) {
	z := tensor.FromSlice([]float64{0, 0}, 2)
	loss, d := SoftmaxCrossEntropy(z, 0)
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("loss = %v, want ln 2", loss)
	}
	// d = softmax - onehot = [0.5-1, 0.5]
	if math.Abs(d.Data()[0]+0.5) > 1e-12 || math.Abs(d.Data()[1]-0.5) > 1e-12 {
		t.Fatalf("dLogits = %v", d.Data())
	}
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	z := tensor.New(5)
	z.FillNormal(rng, 0, 2)
	const h = 1e-6
	_, d := SoftmaxCrossEntropy(z, 3)
	for i := range z.Data() {
		orig := z.Data()[i]
		z.Data()[i] = orig + h
		up, _ := SoftmaxCrossEntropy(z, 3)
		z.Data()[i] = orig - h
		down, _ := SoftmaxCrossEntropy(z, 3)
		z.Data()[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(num-d.Data()[i]) > 1e-6 {
			t.Fatalf("dLogits[%d] = %v, numeric %v", i, d.Data()[i], num)
		}
	}
}

func TestCrossEntropyBadLabelPanics(t *testing.T) {
	z := tensor.New(3)
	for _, label := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("label %d did not panic", label)
				}
			}()
			SoftmaxCrossEntropy(z, label)
		}()
	}
}

func TestCrossEntropyDecreasesWithConfidence(t *testing.T) {
	weak := tensor.FromSlice([]float64{1, 0, 0}, 3)
	strong := tensor.FromSlice([]float64{10, 0, 0}, 3)
	lw, _ := SoftmaxCrossEntropy(weak, 0)
	ls, _ := SoftmaxCrossEntropy(strong, 0)
	if ls >= lw {
		t.Fatalf("loss should fall with confidence: weak %v, strong %v", lw, ls)
	}
}

func TestMSEHandChecked(t *testing.T) {
	pred := tensor.FromSlice([]float64{1, 2}, 2)
	target := tensor.FromSlice([]float64{0, 0}, 2)
	loss, d := MSE(pred, target)
	if math.Abs(loss-2.5) > 1e-12 { // (1+4)/2
		t.Fatalf("MSE = %v, want 2.5", loss)
	}
	if math.Abs(d.Data()[0]-1) > 1e-12 || math.Abs(d.Data()[1]-2) > 1e-12 {
		t.Fatalf("dMSE = %v, want [1 2]", d.Data())
	}
}

func TestMSEZeroAtTarget(t *testing.T) {
	x := tensor.FromSlice([]float64{3, 4}, 2)
	loss, d := MSE(x, x.Clone())
	if loss != 0 || d.MaxAbs() != 0 {
		t.Fatalf("MSE at target: loss=%v grad=%v", loss, d.Data())
	}
}

func TestMSEShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MSE shape mismatch did not panic")
		}
	}()
	MSE(tensor.New(2), tensor.New(3))
}

func TestOnesLike(t *testing.T) {
	o := OnesLike(tensor.New(2, 3))
	if o.Size() != 6 || o.Sum() != 6 {
		t.Fatalf("OnesLike wrong: %v sum=%v", o.Shape(), o.Sum())
	}
}
