package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// lossOf runs a forward pass and returns the cross-entropy loss for a
// fixed label; the scalar function whose gradients we check numerically.
func lossOf(net *Network, x *tensor.Tensor, label int) float64 {
	loss, _ := SoftmaxCrossEntropy(net.Forward(x), label)
	return loss
}

// checkGradients verifies every parameter gradient and the input
// gradient of net against central finite differences.
func checkGradients(t *testing.T, net *Network, x *tensor.Tensor, label int, tol float64) {
	t.Helper()
	const h = 1e-6

	net.ZeroGrad()
	logits := net.Forward(x)
	_, dLogits := SoftmaxCrossEntropy(logits, label)
	dx := net.Backward(dLogits)

	// Parameter gradients.
	for i := 0; i < net.NumParams(); i++ {
		orig := net.ParamAt(i)
		net.SetParamAt(i, orig+h)
		up := lossOf(net, x, label)
		net.SetParamAt(i, orig-h)
		down := lossOf(net, x, label)
		net.SetParamAt(i, orig)
		num := (up - down) / (2 * h)
		ana := net.GradAt(i)
		if diff := math.Abs(num - ana); diff > tol*(1+math.Abs(num)) {
			t.Fatalf("param %s: analytic %.8g, numeric %.8g (diff %.3g)", net.ParamName(i), ana, num, diff)
		}
	}

	// Input gradients.
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + h
		up := lossOf(net, x, label)
		x.Data()[i] = orig - h
		down := lossOf(net, x, label)
		x.Data()[i] = orig
		num := (up - down) / (2 * h)
		ana := dx.Data()[i]
		if diff := math.Abs(num - ana); diff > tol*(1+math.Abs(num)) {
			t.Fatalf("input %d: analytic %.8g, numeric %.8g (diff %.3g)", i, ana, num, diff)
		}
	}
}

func TestGradCheckDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("fc", 6, 4)
	d.Init(rng)
	net := NewNetwork(d)
	x := tensor.New(6)
	x.FillNormal(rng, 0, 1)
	checkGradients(t, net, x, 2, 1e-5)
}

func TestGradCheckDenseTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d1 := NewDense("fc1", 5, 7)
	d1.InitGlorot(rng)
	d2 := NewDense("fc2", 7, 3)
	d2.InitGlorot(rng)
	net := NewNetwork(d1, NewActivate("tanh1", Tanh), d2)
	x := tensor.New(5)
	x.FillNormal(rng, 0, 1)
	checkGradients(t, net, x, 0, 1e-5)
}

func TestGradCheckDenseSigmoid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d1 := NewDense("fc1", 4, 6)
	d1.InitGlorot(rng)
	d2 := NewDense("fc2", 6, 3)
	d2.InitGlorot(rng)
	net := NewNetwork(d1, NewActivate("sig1", Sigmoid), d2)
	x := tensor.New(4)
	x.FillNormal(rng, 0, 1)
	checkGradients(t, net, x, 1, 1e-5)
}

func TestGradCheckDenseLeakyReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d1 := NewDense("fc1", 4, 6)
	d1.Init(rng)
	d2 := NewDense("fc2", 6, 3)
	d2.Init(rng)
	net := NewNetwork(d1, NewActivate("lrelu1", LeakyReLU), d2)
	x := tensor.New(4)
	x.FillNormal(rng, 0, 1)
	checkGradients(t, net, x, 2, 1e-5)
}

func TestGradCheckConv(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewConv2D("conv", 2, 5, 5, 3, 3, 1, 1)
	c.Init(rng)
	net := NewNetwork(c, NewFlatten("flat"), NewDense("fc", 3*5*5, 4))
	for _, l := range net.LayerStack {
		if d, ok := l.(*Dense); ok {
			d.Init(rng)
		}
	}
	x := tensor.New(2, 5, 5)
	x.FillNormal(rng, 0, 1)
	checkGradients(t, net, x, 3, 1e-5)
}

func TestGradCheckConvStride2NoPad(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := NewConv2D("conv", 1, 6, 6, 2, 2, 2, 0)
	c.Init(rng)
	fc := NewDense("fc", 2*3*3, 3)
	fc.Init(rng)
	net := NewNetwork(c, NewFlatten("flat"), fc)
	x := tensor.New(1, 6, 6)
	x.FillNormal(rng, 0, 1)
	checkGradients(t, net, x, 0, 1e-5)
}

func TestGradCheckMaxPool(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewMaxPool2D("pool", 2, 4, 4, 2, 2)
	fc := NewDense("fc", 2*2*2, 3)
	fc.Init(rng)
	net := NewNetwork(p, NewFlatten("flat"), fc)
	x := tensor.New(2, 4, 4)
	// Spread values so no two window entries tie or sit within h of the max.
	x.FillNormal(rng, 0, 10)
	checkGradients(t, net, x, 1, 1e-5)
}

func TestGradCheckFullCNNTanh(t *testing.T) {
	// Miniature version of the paper's MNIST architecture: two conv
	// blocks with Tanh, max pooling, dense head.
	rng := rand.New(rand.NewSource(8))
	c1 := NewConv2D("conv1", 1, 8, 8, 2, 3, 1, 1)
	c1.InitGlorot(rng)
	p1 := NewMaxPool2D("pool1", 2, 8, 8, 2, 2)
	c2 := NewConv2D("conv2", 2, 4, 4, 3, 3, 1, 1)
	c2.InitGlorot(rng)
	p2 := NewMaxPool2D("pool2", 3, 4, 4, 2, 2)
	fc := NewDense("fc", 3*2*2, 4)
	fc.InitGlorot(rng)
	net := NewNetwork(
		c1, NewActivate("tanh1", Tanh), p1,
		c2, NewActivate("tanh2", Tanh), p2,
		NewFlatten("flat"), fc,
	)
	x := tensor.New(1, 8, 8)
	x.FillNormal(rng, 0, 1)
	checkGradients(t, net, x, 1, 1e-4)
}

func TestGradCheckFullCNNReLU(t *testing.T) {
	// Miniature of the CIFAR architecture: ReLU everywhere. A fixed seed
	// keeps pre-activations away from the ReLU kink so the finite
	// difference is valid.
	rng := rand.New(rand.NewSource(9))
	c1 := NewConv2D("conv1", 3, 6, 6, 2, 3, 1, 1)
	c1.Init(rng)
	p1 := NewMaxPool2D("pool1", 2, 6, 6, 2, 2)
	fc := NewDense("fc", 2*3*3, 4)
	fc.Init(rng)
	net := NewNetwork(c1, NewActivate("relu1", ReLU), p1, NewFlatten("flat"), fc)
	x := tensor.New(3, 6, 6)
	x.FillNormal(rng, 0, 1)
	checkGradients(t, net, x, 2, 1e-4)
}

func TestGradCheckSeedOnes(t *testing.T) {
	// The coverage extractor seeds the backward pass with ones over the
	// logits: gradients must then equal ∇θ(Σ_k F_k). Check numerically.
	rng := rand.New(rand.NewSource(10))
	d1 := NewDense("fc1", 4, 5)
	d1.InitGlorot(rng)
	d2 := NewDense("fc2", 5, 3)
	d2.InitGlorot(rng)
	net := NewNetwork(d1, NewActivate("tanh", Tanh), d2)
	x := tensor.New(4)
	x.FillNormal(rng, 0, 1)

	net.ZeroGrad()
	logits := net.Forward(x)
	net.Backward(OnesLike(logits))

	const h = 1e-6
	for i := 0; i < net.NumParams(); i++ {
		orig := net.ParamAt(i)
		net.SetParamAt(i, orig+h)
		up := net.Forward(x).Sum()
		net.SetParamAt(i, orig-h)
		down := net.Forward(x).Sum()
		net.SetParamAt(i, orig)
		num := (up - down) / (2 * h)
		if ana := net.GradAt(i); math.Abs(num-ana) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("param %d: sum-of-logits grad analytic %.8g numeric %.8g", i, ana, num)
		}
	}
}
