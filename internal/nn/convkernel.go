package nn

import "repro/internal/tensor"

// Shared convolution GEMM plumbing for the float64 layer and its float32
// inference clone. Both precisions lower through im2col and run the same
// generic fused-epilogue kernels, so the next kernel change edits one
// site.
//
// The batched forward used to run one wide [OutC, B*hw] GEMM, a separate
// bias pass, and a full-tensor permute into [B, OutC, hw]. The fused
// form writes each sample's [OutC, hw] block straight into its slab of
// the [B, OutC, OH, OW] output through a strided destination view, with
// the bias added in the kernel epilogue — one memory pass, no permute.
// Bit-identity with the old sequence: output element (s, o, t) is the
// dot of weight row o with column s*hw+t of the im2col matrix — the
// strided per-sample view walks exactly those elements in exactly the
// wide kernel's ascending-k order, with the same zero-skip — and the
// epilogue adds bias[o] after the full-k accumulation, the op order of
// the old separate bias pass.

// convForwardSample computes one sample's [OutC, hw] convolution output
// with the bias fused into the GEMM epilogue.
func convForwardSample[E tensor.Num](w, bias, col *tensor.Dense[E], outC, hw int) *tensor.Dense[E] {
	out := tensor.NewOf[E](outC, hw)
	dst := tensor.Mat[E]{Data: out.Data(), Rows: outC, Cols: hw, Stride: hw}
	tensor.MatMulIntoStrided(dst, w, tensor.MatOf(col), bias.Data(), false)
	return out
}

// convForwardBatch convolves a whole batch from its cached Im2ColBatch
// matrix into a [B, OutC, OutH, OutW] output. Sample s's columns sit at
// column offset s*hw of the wide [C*K*K, B*hw] matrix (row stride B*hw),
// and its output occupies the contiguous [OutC, hw] slab s of the
// result, so both sides are strided views of existing buffers and the
// whole layer is the GEMM's single memory pass.
func convForwardBatch[E tensor.Num](w, bias, colBatch *tensor.Dense[E], b, outC int, g tensor.ConvGeom) *tensor.Dense[E] {
	hw := g.OutH * g.OutW
	ckk := colBatch.Dim(0)
	out := tensor.NewOf[E](b, outC, g.OutH, g.OutW)
	od, cb := out.Data(), colBatch.Data()
	dsts := make([]tensor.Mat[E], b)
	cols := make([]tensor.Mat[E], b)
	for s := 0; s < b; s++ {
		dsts[s] = tensor.Mat[E]{Data: od[s*outC*hw : (s+1)*outC*hw], Rows: outC, Cols: hw, Stride: hw}
		cols[s] = tensor.Mat[E]{Data: cb[s*hw:], Rows: ckk, Cols: hw, Stride: b * hw}
	}
	tensor.MatMulIntoStridedBatch(dsts, cols, w, bias.Data(), false)
	return out
}

// convSampleColView returns the strided view of sample s's column block
// inside a cached [C*K*K, B*hw] Im2ColBatch matrix: the exact matrix
// Im2Col produces for that sample, read in place instead of gathered
// into scratch.
func convSampleColView[E tensor.Num](colBatch *tensor.Dense[E], s, b, hw int) tensor.Mat[E] {
	return tensor.Mat[E]{
		Data:   colBatch.Data()[s*hw:],
		Rows:   colBatch.Dim(0),
		Cols:   hw,
		Stride: b * hw,
	}
}
