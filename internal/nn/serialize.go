package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// layerSpec is the gob wire form of one layer: its kind, geometry and
// parameter payloads. Keeping the wire type private and flat avoids
// exposing layer internals to the encoding.
type layerSpec struct {
	Kind    string
	Name    string
	Ints    []int       // kind-specific geometry, in a fixed order
	Floats  []float64   // kind-specific real-valued settings
	Weights [][]float64 // parameter payloads in Params() order
}

// netSpec is the gob wire form of a whole network.
type netSpec struct {
	Version int
	Layers  []layerSpec
}

const wireVersion = 1

// Encode writes the network (architecture and weights) to w in gob form.
func (n *Network) Encode(w io.Writer) error {
	spec := netSpec{Version: wireVersion}
	for _, l := range n.LayerStack {
		ls := layerSpec{Name: l.Name()}
		switch t := l.(type) {
		case *Conv2D:
			ls.Kind = "conv"
			ls.Ints = []int{t.InC, t.InH, t.InW, t.OutC, t.K, t.Stride, t.Pad}
		case *Dense:
			ls.Kind = "dense"
			ls.Ints = []int{t.In, t.Out}
		case *MaxPool2D:
			ls.Kind = "maxpool"
			ls.Ints = []int{t.C, t.H, t.W, t.K, t.Stride}
		case *Activate:
			ls.Kind = "act"
			ls.Ints = []int{int(t.Fn)}
		case *Flatten:
			ls.Kind = "flatten"
		case *ScaleShift:
			ls.Kind = "scaleshift"
			ls.Floats = []float64{t.A, t.B}
		default:
			return fmt.Errorf("nn: cannot encode layer type %T", l)
		}
		for _, p := range l.Params() {
			vals := make([]float64, p.W.Size())
			copy(vals, p.W.Data())
			ls.Weights = append(ls.Weights, vals)
		}
		spec.Layers = append(spec.Layers, ls)
	}
	return gob.NewEncoder(w).Encode(spec)
}

// Decode reads a network written by Encode.
func Decode(r io.Reader) (*Network, error) {
	var spec netSpec
	if err := gob.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("nn: decode network: %w", err)
	}
	if spec.Version != wireVersion {
		return nil, fmt.Errorf("nn: unsupported network wire version %d", spec.Version)
	}
	layers := make([]Layer, 0, len(spec.Layers))
	for i, ls := range spec.Layers {
		l, err := buildLayer(ls)
		if err != nil {
			return nil, fmt.Errorf("nn: decode layer %d (%s): %w", i, ls.Name, err)
		}
		layers = append(layers, l)
	}
	return NewNetwork(layers...), nil
}

func buildLayer(ls layerSpec) (Layer, error) {
	need := func(n int) error {
		if len(ls.Ints) != n {
			return fmt.Errorf("kind %s needs %d ints, got %d", ls.Kind, n, len(ls.Ints))
		}
		return nil
	}
	var l Layer
	switch ls.Kind {
	case "conv":
		if err := need(7); err != nil {
			return nil, err
		}
		g := ls.Ints
		l = NewConv2D(ls.Name, g[0], g[1], g[2], g[3], g[4], g[5], g[6])
	case "dense":
		if err := need(2); err != nil {
			return nil, err
		}
		l = NewDense(ls.Name, ls.Ints[0], ls.Ints[1])
	case "maxpool":
		if err := need(5); err != nil {
			return nil, err
		}
		g := ls.Ints
		l = NewMaxPool2D(ls.Name, g[0], g[1], g[2], g[3], g[4])
	case "act":
		if err := need(1); err != nil {
			return nil, err
		}
		l = NewActivate(ls.Name, Activation(ls.Ints[0]))
	case "flatten":
		l = NewFlatten(ls.Name)
	case "scaleshift":
		if len(ls.Floats) != 2 {
			return nil, fmt.Errorf("kind scaleshift needs 2 floats, got %d", len(ls.Floats))
		}
		l = NewScaleShift(ls.Name, ls.Floats[0], ls.Floats[1])
	default:
		return nil, fmt.Errorf("unknown layer kind %q", ls.Kind)
	}
	params := l.Params()
	if len(params) != len(ls.Weights) {
		return nil, fmt.Errorf("kind %s has %d params, payload has %d", ls.Kind, len(params), len(ls.Weights))
	}
	for i, p := range params {
		if p.W.Size() != len(ls.Weights[i]) {
			return nil, fmt.Errorf("param %s expects %d values, payload has %d", p.Name, p.W.Size(), len(ls.Weights[i]))
		}
		copy(p.W.Data(), ls.Weights[i])
	}
	return l, nil
}
