package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// This file adds the real batch dimension to the engine. Every layer
// implements BatchLayer: ForwardBatch/BackwardBatch operate on [B, ...]
// tensors (sample blocks contiguous, row-major), and BackwardSample
// backpropagates one sample of the last ForwardBatch on its own.
//
// The batched paths are *bit-identical* to the per-sample ones:
//
//   - Batched products reuse the serial GEMM kernels with the batch
//     folded into rows or columns, so every output cell is produced by
//     exactly the per-sample instruction sequence (same accumulation
//     order, same zero-skips, multiplication operand order immaterial).
//   - Parameter gradients accumulate across the batch in ascending
//     sample order, the order of the serial per-sample loop.
//
// This is what lets the coverage engine and the suite generators batch
// candidate evaluation while preserving the bit-identical-suite
// guarantee established in PR 1, and composes with the worker pool:
// batch inside a worker, workers across batches.

// BatchLayer is a Layer that can evaluate a whole [B, ...] batch at
// once. All layers in this package implement it.
type BatchLayer interface {
	Layer
	// ForwardBatch computes the layer output for a [B, ...] batch and
	// caches whatever the batched backward passes need.
	ForwardBatch(x *tensor.Tensor) *tensor.Tensor
	// BackwardBatch consumes the [B, ...] gradient with respect to the
	// last ForwardBatch's output, accumulates parameter gradients across
	// the batch in ascending sample order, and returns the [B, ...]
	// gradient with respect to the input.
	BackwardBatch(dOut *tensor.Tensor) *tensor.Tensor
	// BackwardSample backpropagates sample b of the last ForwardBatch:
	// dOut is that sample's (batchless) output gradient, parameter
	// gradients accumulate exactly as the per-sample Backward would, and
	// the sample's input gradient is returned. The coverage extractor
	// uses it to pull per-sample ∇θ out of one batched forward pass.
	BackwardSample(b int, dOut *tensor.Tensor) *tensor.Tensor
	// BackwardBatchInput is BackwardBatch without parameter-gradient
	// accumulation: the same bit-identical [B, ...] input gradient with
	// the dW/db work skipped — the right backward for input synthesis,
	// which never reads parameter gradients.
	BackwardBatchInput(dOut *tensor.Tensor) *tensor.Tensor
	// ReleaseBatchState drops whatever per-batch caches the layer keeps
	// between ForwardBatch and the batched backward passes; the next
	// ForwardBatch rebuilds them.
	ReleaseBatchState()
}

// batchDim returns the leading (batch) dimension of x.
func batchDim(x *tensor.Tensor, name string) int {
	if x.Rank() < 2 {
		panic(fmt.Sprintf("nn: %s batch input must have a leading batch dimension, got %v", name, x.Shape()))
	}
	return x.Dim(0)
}

// ForwardBatch runs the full stack over a [B, ...] batch and returns the
// [B, classes] logits. Every logits row is bit-identical to Forward on
// that sample alone.
func (n *Network) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range n.LayerStack {
		bl, ok := l.(BatchLayer)
		if !ok {
			panic(fmt.Sprintf("nn: layer %s (%T) does not support batched evaluation", l.Name(), l))
		}
		x = bl.ForwardBatch(x)
	}
	return x
}

// BackwardBatch propagates a [B, classes] logits gradient through the
// stack (after a ForwardBatch), accumulating parameter gradients across
// the batch in ascending sample order — the exact sequence of the serial
// per-sample loop — and returns the [B, ...] input gradient.
func (n *Network) BackwardBatch(dLogits *tensor.Tensor) *tensor.Tensor {
	d := dLogits
	for i := len(n.LayerStack) - 1; i >= 0; i-- {
		d = n.LayerStack[i].(BatchLayer).BackwardBatch(d)
	}
	return d
}

// BackwardSample propagates one sample's logits gradient through the
// stack against the caches of the last ForwardBatch, accumulating that
// sample's parameter gradients only. Combined with ZeroGrad per sample
// it yields the same per-sample ∇θ as a per-sample Forward+Backward.
func (n *Network) BackwardSample(b int, dLogits *tensor.Tensor) *tensor.Tensor {
	d := dLogits
	for i := len(n.LayerStack) - 1; i >= 0; i-- {
		d = n.LayerStack[i].(BatchLayer).BackwardSample(b, d)
	}
	return d
}

// BackwardBatchInput propagates a [B, classes] logits gradient through
// the stack like BackwardBatch but skips all parameter-gradient work;
// the returned input gradient is bit-identical. Input synthesis uses it
// — Algorithm 2 descends on the input and never reads ∇θ.
func (n *Network) BackwardBatchInput(dLogits *tensor.Tensor) *tensor.Tensor {
	d := dLogits
	for i := len(n.LayerStack) - 1; i >= 0; i-- {
		d = n.LayerStack[i].(BatchLayer).BackwardBatchInput(d)
	}
	return d
}

// ReleaseBatchState drops the per-batch caches the batched passes keep
// on each layer (im2col matrices, activation inputs/outputs, pooling
// winner indexes). Call it after a batched workload when the network
// lives on — serialized, served per-sample — so the last batch's caches
// do not pin heap; the next ForwardBatch rebuilds them. A pending
// BackwardBatch/BackwardSample must run before releasing.
func (n *Network) ReleaseBatchState() {
	for _, l := range n.LayerStack {
		if bl, ok := l.(BatchLayer); ok {
			bl.ReleaseBatchState()
		}
	}
}

// PredictBatch runs one batched forward pass and returns the argmax
// class of every sample's logits.
func (n *Network) PredictBatch(x *tensor.Tensor) []int {
	logits := n.ForwardBatch(x)
	b := logits.Dim(0)
	out := make([]int, b)
	for i := 0; i < b; i++ {
		out[i] = logits.Sample(i).Argmax()
	}
	return out
}

// --- Conv2D ---

// ForwardBatch implements BatchLayer. The whole batch is lowered with
// Im2ColBatch into one [C*K*K, B*OutH*OutW] matrix and convolved by the
// fused strided kernel: each sample's [OutC, hw] block is written
// straight into its slab of the [B, OutC, OH, OW] output with the bias
// added in the GEMM epilogue — one memory pass, no separate bias loop,
// no permute (convkernel.go states the bit-identity argument). Every
// output element is computed by the per-sample kernel sequence, so the
// result is bit-identical to per-sample Forward.
func (c *Conv2D) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC || x.Dim(2) != c.InH || x.Dim(3) != c.InW {
		panic(fmt.Sprintf("nn: %s expects batch input [B %d %d %d], got %v", c.LayerName, c.InC, c.InH, c.InW, x.Shape()))
	}
	b := x.Dim(0)
	c.batchB = b
	c.colBatch = tensor.Im2ColBatch(x, c.geom)
	return convForwardBatch(c.Weight.W, c.Bias.W, c.colBatch, b, c.OutC, c.geom)
}

// ReleaseBatchState implements BatchLayer.
func (c *Conv2D) ReleaseBatchState() {
	c.colBatch, c.batchB = nil, 0
}

// BackwardSample implements BatchLayer. Sample b's im2col block is read
// in place through a strided view of the cached Im2ColBatch matrix and
// the per-sample gradient products run on it exactly as Backward does,
// so gradients are bit-identical to Forward+Backward on that sample
// alone — with no gather copy.
func (c *Conv2D) BackwardSample(b int, dOut *tensor.Tensor) *tensor.Tensor {
	hw := c.geom.OutH * c.geom.OutW
	d2 := dOut.Reshape(c.OutC, hw)
	// dW += d2 · col_bᵀ, dotted straight out of the wide column matrix.
	tensor.MatMulTBIntoStrided(c.Weight.Grad, d2, convSampleColView(c.colBatch, b, c.batchB, hw), true)
	// db += row sums of dOut.
	bd := c.Bias.Grad.Data()
	dd := d2.Data()
	for o := 0; o < c.OutC; o++ {
		bd[o] += tensor.Sum(dd[o*hw : o*hw+hw])
	}
	// dX = Col2Im(Wᵀ · dOut).
	dcol := tensor.MatMulTA(c.Weight.W, d2)
	return tensor.Col2Im(dcol, c.geom)
}

// BackwardBatch implements BatchLayer. Convolution weight gradients must
// accumulate per sample to stay bit-identical to the serial loop (the
// per-sample partial sums associate differently from one long reduction),
// so the batch walks samples in ascending order; each sample's products
// are full-size GEMMs already.
func (c *Conv2D) BackwardBatch(dOut *tensor.Tensor) *tensor.Tensor {
	b := batchDim(dOut, c.LayerName)
	dx := tensor.New(b, c.InC, c.InH, c.InW)
	sz := c.InC * c.InH * c.InW
	for s := 0; s < b; s++ {
		dxs := c.BackwardSample(s, dOut.Sample(s))
		copy(dx.Data()[s*sz:(s+1)*sz], dxs.Data())
	}
	return dx
}

// BackwardBatchInput implements BatchLayer: the dX chain only, skipping
// the weight and bias gradients.
func (c *Conv2D) BackwardBatchInput(dOut *tensor.Tensor) *tensor.Tensor {
	b := batchDim(dOut, c.LayerName)
	hw := c.geom.OutH * c.geom.OutW
	dx := tensor.New(b, c.InC, c.InH, c.InW)
	sz := c.InC * c.InH * c.InW
	for s := 0; s < b; s++ {
		d2 := dOut.Sample(s).Reshape(c.OutC, hw)
		dxs := tensor.Col2Im(tensor.MatMulTA(c.Weight.W, d2), c.geom)
		copy(dx.Data()[s*sz:(s+1)*sz], dxs.Data())
	}
	return dx
}

// --- Dense ---

// ForwardBatch implements BatchLayer: one [B,In]×[Out,In]ᵀ GEMM. Each
// output row runs the per-sample MatVec dot-product sequence, so rows
// are bit-identical to per-sample Forward.
func (d *Dense) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	b := batchDim(x, d.LayerName)
	if x.Size() != b*d.In {
		panic(fmt.Sprintf("nn: %s expects %d inputs per sample, got %v", d.LayerName, d.In, x.Shape()))
	}
	d.xBatch = x.Reshape(b, d.In)
	out := tensor.MatMulTB(d.xBatch, d.Weight.W) // [B, Out]
	od, bd := out.Data(), d.Bias.W.Data()
	for s := 0; s < b; s++ {
		row := od[s*d.Out : (s+1)*d.Out]
		for o, bv := range bd {
			row[o] += bv
		}
	}
	return out
}

// BackwardBatch implements BatchLayer. dW = dOutᵀ·X accumulates every
// weight cell's per-sample terms in ascending sample order with the
// per-sample zero-skip (the MatMulTA kernel), dX = dOut·W computes every
// sample's input-gradient row with the per-sample kernel sequence, and
// the bias gradient walks samples in order — all bit-identical to the
// serial per-sample accumulation loop.
func (d *Dense) BackwardBatch(dOut *tensor.Tensor) *tensor.Tensor {
	b := batchDim(dOut, d.LayerName)
	if dOut.Size() != b*d.Out {
		panic(fmt.Sprintf("nn: %s backward expects %d grads per sample, got %v", d.LayerName, d.Out, dOut.Shape()))
	}
	d2 := dOut.Reshape(b, d.Out)
	tensor.MatMulTAInto(d.Weight.Grad, d2, d.xBatch, true)
	do, bg := d2.Data(), d.Bias.Grad.Data()
	for s := 0; s < b; s++ {
		for o := 0; o < d.Out; o++ {
			bg[o] += do[s*d.Out+o]
		}
	}
	return tensor.MatMul(d2, d.Weight.W) // [B, In]
}

// BackwardSample implements BatchLayer: the per-sample backward loops
// against sample b's cached input row.
func (d *Dense) BackwardSample(b int, dOut *tensor.Tensor) *tensor.Tensor {
	return d.backwardWith(dOut, d.xBatch.Sample(b).Data())
}

// ReleaseBatchState implements BatchLayer.
func (d *Dense) ReleaseBatchState() { d.xBatch = nil }

// BackwardBatchInput implements BatchLayer: dX = dOut·W only.
func (d *Dense) BackwardBatchInput(dOut *tensor.Tensor) *tensor.Tensor {
	b := batchDim(dOut, d.LayerName)
	return tensor.MatMul(dOut.Reshape(b, d.Out), d.Weight.W)
}

// --- MaxPool2D ---

// ForwardBatch implements BatchLayer: the window scan runs per sample
// (pooling has no useful batched matrix form), caching each sample's
// winner indexes for the batched backward passes.
func (m *MaxPool2D) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != m.C || x.Dim(2) != m.H || x.Dim(3) != m.W {
		panic(fmt.Sprintf("nn: %s expects batch input [B %d %d %d], got %v", m.LayerName, m.C, m.H, m.W, x.Shape()))
	}
	b := x.Dim(0)
	m.batchB = b
	oh, ow := m.geom.OutH, m.geom.OutW
	outSz := m.C * oh * ow
	inSz := m.C * m.H * m.W
	out := tensor.New(b, m.C, oh, ow)
	if cap(m.argmaxB) < b*outSz {
		m.argmaxB = make([]int, b*outSz)
	}
	m.argmaxB = m.argmaxB[:b*outSz]
	xd, od := x.Data(), out.Data()
	for s := 0; s < b; s++ {
		m.poolSample(xd[s*inSz:(s+1)*inSz], od[s*outSz:(s+1)*outSz], m.argmaxB[s*outSz:(s+1)*outSz])
	}
	return out
}

// BackwardBatch implements BatchLayer.
func (m *MaxPool2D) BackwardBatch(dOut *tensor.Tensor) *tensor.Tensor {
	b := batchDim(dOut, m.LayerName)
	outSz := m.C * m.geom.OutH * m.geom.OutW
	inSz := m.C * m.H * m.W
	if dOut.Size() != b*outSz {
		panic(fmt.Sprintf("nn: %s batch backward size %d, want %d", m.LayerName, dOut.Size(), b*outSz))
	}
	dx := tensor.New(b, m.C, m.H, m.W)
	dd, dxd := dOut.Data(), dx.Data()
	for s := 0; s < b; s++ {
		scatterPool(dxd[s*inSz:(s+1)*inSz], dd[s*outSz:(s+1)*outSz], m.argmaxB[s*outSz:(s+1)*outSz])
	}
	return dx
}

// ReleaseBatchState implements BatchLayer.
func (m *MaxPool2D) ReleaseBatchState() { m.argmaxB, m.batchB = nil, 0 }

// BackwardBatchInput implements BatchLayer (pooling has no parameters).
func (m *MaxPool2D) BackwardBatchInput(dOut *tensor.Tensor) *tensor.Tensor {
	return m.BackwardBatch(dOut)
}

// BackwardSample implements BatchLayer.
func (m *MaxPool2D) BackwardSample(b int, dOut *tensor.Tensor) *tensor.Tensor {
	outSz := m.C * m.geom.OutH * m.geom.OutW
	dx := tensor.New(m.C, m.H, m.W)
	scatterPool(dx.Data(), dOut.Data(), m.argmaxB[b*outSz:(b+1)*outSz])
	return dx
}

// --- Activate ---

// ForwardBatch implements BatchLayer; the activation is elementwise, so
// the batched pass is the per-sample pass over a longer slice.
func (a *Activate) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	a.inB = x
	a.outB = a.activate(x)
	return a.outB
}

// BackwardBatch implements BatchLayer.
func (a *Activate) BackwardBatch(dOut *tensor.Tensor) *tensor.Tensor {
	return a.backwardWith(dOut, a.inB.Data(), a.outB.Data())
}

// ReleaseBatchState implements BatchLayer.
func (a *Activate) ReleaseBatchState() { a.inB, a.outB = nil, nil }

// BackwardBatchInput implements BatchLayer (activations have no
// parameters).
func (a *Activate) BackwardBatchInput(dOut *tensor.Tensor) *tensor.Tensor {
	return a.BackwardBatch(dOut)
}

// BackwardSample implements BatchLayer.
func (a *Activate) BackwardSample(b int, dOut *tensor.Tensor) *tensor.Tensor {
	n := dOut.Size()
	return a.backwardWith(dOut, a.inB.Data()[b*n:(b+1)*n], a.outB.Data()[b*n:(b+1)*n])
}

// --- ScaleShift ---

// ForwardBatch implements BatchLayer; the affine map is elementwise and
// stateless, so the per-sample pass applies unchanged.
func (s *ScaleShift) ForwardBatch(x *tensor.Tensor) *tensor.Tensor { return s.Forward(x) }

// BackwardBatch implements BatchLayer.
func (s *ScaleShift) BackwardBatch(dOut *tensor.Tensor) *tensor.Tensor { return s.Backward(dOut) }

// BackwardBatchInput implements BatchLayer.
func (s *ScaleShift) BackwardBatchInput(dOut *tensor.Tensor) *tensor.Tensor {
	return s.Backward(dOut)
}

// ReleaseBatchState implements BatchLayer (ScaleShift keeps no state).
func (s *ScaleShift) ReleaseBatchState() {}

// BackwardSample implements BatchLayer.
func (s *ScaleShift) BackwardSample(_ int, dOut *tensor.Tensor) *tensor.Tensor {
	return s.Backward(dOut)
}

// --- Flatten ---

// ForwardBatch implements BatchLayer: [B, d1, d2, ...] becomes
// [B, d1*d2*...], a reshape of shared data.
func (f *Flatten) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	b := batchDim(x, f.LayerName)
	f.inShapeB = append(f.inShapeB[:0], x.Shape()...)
	return x.Reshape(b, x.Size()/b)
}

// BackwardBatch implements BatchLayer.
func (f *Flatten) BackwardBatch(dOut *tensor.Tensor) *tensor.Tensor {
	return dOut.Reshape(f.inShapeB...)
}

// BackwardBatchInput implements BatchLayer.
func (f *Flatten) BackwardBatchInput(dOut *tensor.Tensor) *tensor.Tensor {
	return f.BackwardBatch(dOut)
}

// ReleaseBatchState implements BatchLayer.
func (f *Flatten) ReleaseBatchState() { f.inShapeB = nil }

// BackwardSample implements BatchLayer.
func (f *Flatten) BackwardSample(_ int, dOut *tensor.Tensor) *tensor.Tensor {
	return dOut.Reshape(f.inShapeB[1:]...)
}
