package nn

import (
	"fmt"
	"sync"
)

// ClonePool is a fixed set of deep clones of a source network handed
// out for concurrent forward/backward work. Layers cache per-input
// state between Forward and Backward, so a network can serve one
// evaluation at a time; a ClonePool turns that into bounded concurrency
// — at most Size evaluations in flight, each on its own clone — without
// cloning per call. The validation server runs its request handlers on
// one, and any worker-pool consumer with pinned clones can be read as
// the same pattern with pool-managed checkout.
//
// Acquire, Release and SyncParamsFrom are all safe for concurrent use.
type ClonePool struct {
	free chan *Network
	size int

	// syncMu serialises SyncParamsFrom calls: each syncer drains the
	// whole free channel, so two running at once would each hold a
	// subset of the clones and deadlock waiting for the other's.
	syncMu sync.Mutex
}

// NewClonePool clones src size times (size is clamped to at least 1).
// The clones snapshot src's parameters at construction; later changes
// to src are not seen until SyncParamsFrom.
func NewClonePool(src *Network, size int) *ClonePool {
	if size < 1 {
		size = 1
	}
	p := &ClonePool{free: make(chan *Network, size), size: size}
	for i := 0; i < size; i++ {
		p.free <- src.Clone()
	}
	return p
}

// Size returns the number of clones the pool manages.
func (p *ClonePool) Size() int { return p.size }

// Acquire checks a clone out, blocking until one is free. Every Acquire
// must be paired with a Release of the same clone.
func (p *ClonePool) Acquire() *Network { return <-p.free }

// Release checks a clone back in.
func (p *ClonePool) Release(c *Network) {
	select {
	case p.free <- c:
	default:
		// More Releases than Acquires can only be a caller bug; failing
		// loudly beats silently growing the set.
		panic(fmt.Sprintf("nn: ClonePool.Release without matching Acquire (size %d)", p.size))
	}
}

// SyncParamsFrom refreshes every clone's parameters from src — the hot
// parameter update of a serving runtime. It acquires all clones (so it
// blocks until in-flight work completes, and no evaluation can see a
// half-updated set), syncs each, and releases them. Concurrent callers
// are serialised; each completed call leaves the pool consistent with
// its src.
func (p *ClonePool) SyncParamsFrom(src *Network) {
	p.syncMu.Lock()
	defer p.syncMu.Unlock()
	clones := make([]*Network, p.size)
	for i := range clones {
		clones[i] = p.Acquire()
	}
	for _, c := range clones {
		c.SyncParamsFrom(src)
	}
	for _, c := range clones {
		p.Release(c)
	}
}
