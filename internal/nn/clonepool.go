package nn

import (
	"fmt"
	"sync"
)

// clonePool is the precision-generic pool core: a fixed set of deep
// clones handed out for concurrent forward/backward work. Networks can
// serve one evaluation at a time (float64 layers cache per-input state
// between Forward and Backward; float32 clones must not observe a
// parameter update mid-evaluation), so a pool turns that into bounded
// concurrency — at most Size evaluations in flight, each on its own
// clone — without cloning per call. The validation server runs its
// request handlers on one, and any worker-pool consumer with pinned
// clones can be read as the same pattern with pool-managed checkout.
//
// Acquire, Release and SyncParamsFrom are all safe for concurrent use.
type clonePool[C interface{ SyncParamsFrom(*Network) }] struct {
	free chan C
	size int

	// syncMu serialises SyncParamsFrom calls: each syncer drains the
	// whole free channel, so two running at once would each hold a
	// subset of the clones and deadlock waiting for the other's.
	syncMu sync.Mutex
}

// ClonePool is a pool of float64 Network clones.
type ClonePool = clonePool[*Network]

// ClonePoolF32 is a pool of float32 inference clones (NetF32) of a
// float64 master network — the serving fleet of the reduced-precision
// path. SyncParamsFrom takes the float64 master and re-quantises every
// clone, so a server hosting a float32 fleet hot-updates it from the
// same source of truth as a float64 one.
type ClonePoolF32 = clonePool[*NetF32]

func newClonePool[C interface{ SyncParamsFrom(*Network) }](clone func() C, size int) *clonePool[C] {
	if size < 1 {
		size = 1
	}
	p := &clonePool[C]{free: make(chan C, size), size: size}
	for i := 0; i < size; i++ {
		p.free <- clone()
	}
	return p
}

// NewClonePool clones src size times (size is clamped to at least 1).
// The clones snapshot src's parameters at construction; later changes
// to src are not seen until SyncParamsFrom.
func NewClonePool(src *Network, size int) *ClonePool {
	return newClonePool(src.Clone, size)
}

// NewClonePoolF32 converts src to float32 and clones the conversion
// size times (size is clamped to at least 1). Like NewClonePool, the
// clones snapshot src's parameters (re-quantised) at construction.
func NewClonePoolF32(src *Network, size int) *ClonePoolF32 {
	master := src.ConvertF32()
	first := true
	return newClonePool(func() *NetF32 {
		if first {
			first = false
			return master
		}
		return master.Clone()
	}, size)
}

// Size returns the number of clones the pool manages.
func (p *clonePool[C]) Size() int { return p.size }

// Acquire checks a clone out, blocking until one is free. Every Acquire
// must be paired with a Release of the same clone.
func (p *clonePool[C]) Acquire() C { return <-p.free }

// Release checks a clone back in.
func (p *clonePool[C]) Release(c C) {
	select {
	case p.free <- c:
	default:
		// More Releases than Acquires can only be a caller bug; failing
		// loudly beats silently growing the set.
		panic(fmt.Sprintf("nn: ClonePool.Release without matching Acquire (size %d)", p.size))
	}
}

// SyncParamsFrom refreshes every clone's parameters from src — the hot
// parameter update of a serving runtime (float32 pools re-quantise from
// the float64 master). It acquires all clones (so it blocks until
// in-flight work completes, and no evaluation can see a half-updated
// set), syncs each, and releases them. Concurrent callers are
// serialised; each completed call leaves the pool consistent with its
// src.
func (p *clonePool[C]) SyncParamsFrom(src *Network) {
	p.syncMu.Lock()
	defer p.syncMu.Unlock()
	clones := make([]C, p.size)
	for i := range clones {
		clones[i] = p.Acquire()
	}
	for _, c := range clones {
		c.SyncParamsFrom(src)
	}
	for _, c := range clones {
		p.Release(c)
	}
}
