package nn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func buildTestNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	c := NewConv2D("conv1", 1, 6, 6, 2, 3, 1, 1)
	c.Init(rng)
	p := NewMaxPool2D("pool1", 2, 6, 6, 2, 2)
	fc := NewDense("fc", 2*3*3, 4)
	fc.Init(rng)
	return NewNetwork(c, NewActivate("relu1", ReLU), p, NewFlatten("flat"), fc)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	net := buildTestNet(41)
	var buf bytes.Buffer
	if err := net.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.NumParams() != net.NumParams() {
		t.Fatalf("param count %d, want %d", got.NumParams(), net.NumParams())
	}
	for i := 0; i < net.NumParams(); i++ {
		if got.ParamAt(i) != net.ParamAt(i) {
			t.Fatalf("param %d differs after round trip", i)
		}
	}
	// Same predictions.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		x := tensor.New(1, 6, 6)
		x.FillNormal(rng, 0, 1)
		a, b := net.Forward(x.Clone()), got.Forward(x.Clone())
		for j := range a.Data() {
			if a.Data()[j] != b.Data()[j] {
				t.Fatalf("logits differ after round trip (trial %d)", trial)
			}
		}
	}
}

func TestDecodeGarbageFails(t *testing.T) {
	if _, err := Decode(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("Decode of garbage should fail")
	}
}

func TestDecodeTruncatedFails(t *testing.T) {
	net := buildTestNet(43)
	var buf bytes.Buffer
	if err := net.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Decode(bytes.NewReader(trunc)); err == nil {
		t.Fatal("Decode of truncated stream should fail")
	}
}

func TestDecodeEmptyFails(t *testing.T) {
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("Decode of empty stream should fail")
	}
}

func TestEncodePreservesActivationKind(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	fc := NewDense("fc", 2, 2)
	fc.InitGlorot(rng)
	net := NewNetwork(fc, NewActivate("act", Tanh), func() Layer {
		d := NewDense("fc2", 2, 2)
		d.InitGlorot(rng)
		return d
	}())
	var buf bytes.Buffer
	if err := net.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	act, ok := got.LayerStack[1].(*Activate)
	if !ok || act.Fn != Tanh {
		t.Fatalf("activation kind lost: %#v", got.LayerStack[1])
	}
}
