package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestConvOutShape(t *testing.T) {
	c := NewConv2D("c", 3, 32, 32, 64, 3, 1, 0)
	want := []int{64, 30, 30}
	got := c.OutShape()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OutShape = %v, want %v", got, want)
		}
	}
}

func TestConvForwardBias(t *testing.T) {
	// Zero weights: output must equal the bias everywhere.
	c := NewConv2D("c", 1, 4, 4, 2, 3, 1, 1)
	c.Bias.W.Data()[0] = 1.5
	c.Bias.W.Data()[1] = -2
	x := tensor.New(1, 4, 4)
	x.Fill(3)
	out := c.Forward(x)
	for i := 0; i < 16; i++ {
		if out.Data()[i] != 1.5 {
			t.Fatalf("channel 0 output = %v, want 1.5", out.Data()[i])
		}
		if out.Data()[16+i] != -2 {
			t.Fatalf("channel 1 output = %v, want -2", out.Data()[16+i])
		}
	}
}

func TestConvIdentityKernel(t *testing.T) {
	// 1x1 kernel with weight 1 reproduces the input.
	c := NewConv2D("c", 1, 3, 3, 1, 1, 1, 0)
	c.Weight.W.Data()[0] = 1
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3)
	out := c.Forward(x)
	for i, v := range x.Data() {
		if out.Data()[i] != v {
			t.Fatalf("identity conv[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestConvWrongInputPanics(t *testing.T) {
	c := NewConv2D("c", 1, 4, 4, 2, 3, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong conv input did not panic")
		}
	}()
	c.Forward(tensor.New(2, 4, 4))
}

func TestDenseForwardHandChecked(t *testing.T) {
	d := NewDense("fc", 2, 2)
	copy(d.Weight.W.Data(), []float64{1, 2, 3, 4})
	copy(d.Bias.W.Data(), []float64{0.5, -0.5})
	x := tensor.FromSlice([]float64{1, 1}, 2)
	out := d.Forward(x)
	if out.Data()[0] != 3.5 || out.Data()[1] != 6.5 {
		t.Fatalf("Dense forward = %v, want [3.5 6.5]", out.Data())
	}
}

func TestDenseAcceptsFlattenedShapes(t *testing.T) {
	d := NewDense("fc", 4, 2)
	x := tensor.New(1, 2, 2) // rank-3 but right size
	if out := d.Forward(x); out.Size() != 2 {
		t.Fatalf("output size %d, want 2", out.Size())
	}
}

func TestDenseWrongSizePanics(t *testing.T) {
	d := NewDense("fc", 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong dense input did not panic")
		}
	}()
	d.Forward(tensor.New(5))
}

func TestMaxPoolForwardHandChecked(t *testing.T) {
	p := NewMaxPool2D("pool", 1, 4, 4, 2, 2)
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 4, 4)
	out := p.Forward(x)
	want := []float64{4, 8, 12, 16}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("pool[%d] = %v, want %v", i, out.Data()[i], w)
		}
	}
}

func TestMaxPoolBackwardRouting(t *testing.T) {
	p := NewMaxPool2D("pool", 1, 2, 2, 2, 2)
	x := tensor.FromSlice([]float64{1, 9, 3, 4}, 1, 2, 2)
	p.Forward(x)
	d := tensor.FromSlice([]float64{5}, 1, 1, 1)
	dx := p.Backward(d)
	want := []float64{0, 5, 0, 0}
	for i, w := range want {
		if dx.Data()[i] != w {
			t.Fatalf("pool backward[%d] = %v, want %v", i, dx.Data()[i], w)
		}
	}
}

func TestMaxPoolNegativeInputs(t *testing.T) {
	// All-negative window: the max must still be found (guards against a
	// zero-initialised "best" bug).
	p := NewMaxPool2D("pool", 1, 2, 2, 2, 2)
	x := tensor.FromSlice([]float64{-5, -1, -3, -4}, 1, 2, 2)
	out := p.Forward(x)
	if out.Data()[0] != -1 {
		t.Fatalf("pool of negatives = %v, want -1", out.Data()[0])
	}
}

func TestActivationValues(t *testing.T) {
	x := tensor.FromSlice([]float64{-2, 0, 3}, 3)
	cases := []struct {
		fn   Activation
		want []float64
	}{
		{ReLU, []float64{0, 0, 3}},
		{LeakyReLU, []float64{-0.02, 0, 3}},
		{Tanh, []float64{math.Tanh(-2), 0, math.Tanh(3)}},
		{Sigmoid, []float64{1 / (1 + math.Exp(2)), 0.5, 1 / (1 + math.Exp(-3))}},
	}
	for _, c := range cases {
		a := NewActivate("a", c.fn)
		out := a.Forward(x)
		for i, w := range c.want {
			if math.Abs(out.Data()[i]-w) > 1e-12 {
				t.Errorf("%v(%v) = %v, want %v", c.fn, x.Data()[i], out.Data()[i], w)
			}
		}
	}
}

func TestActivationStringAndSaturating(t *testing.T) {
	if ReLU.String() != "relu" || Tanh.String() != "tanh" || Sigmoid.String() != "sigmoid" || LeakyReLU.String() != "leakyrelu" {
		t.Fatal("Activation.String mismatch")
	}
	if Activation(99).String() != "unknown" {
		t.Fatal("unknown activation should stringify to unknown")
	}
	if ReLU.Saturating() || LeakyReLU.Saturating() {
		t.Fatal("ReLU family is not saturating")
	}
	if !Tanh.Saturating() || !Sigmoid.Saturating() {
		t.Fatal("Tanh/Sigmoid are saturating")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("flat")
	x := tensor.New(2, 3, 4)
	out := f.Forward(x)
	if out.Rank() != 1 || out.Size() != 24 {
		t.Fatalf("flatten out %v", out.Shape())
	}
	d := tensor.New(24)
	dx := f.Backward(d)
	if dx.Rank() != 3 || dx.Dim(0) != 2 || dx.Dim(1) != 3 || dx.Dim(2) != 4 {
		t.Fatalf("flatten backward shape %v", dx.Shape())
	}
}

func TestNetworkParamRegistry(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	c := NewConv2D("conv", 1, 4, 4, 2, 3, 1, 1)
	c.Init(rng)
	fc := NewDense("fc", 2*4*4, 3)
	fc.Init(rng)
	net := NewNetwork(c, NewActivate("relu", ReLU), NewFlatten("flat"), fc)

	wantParams := 2*9 + 2 + 3*32 + 3
	if net.NumParams() != wantParams {
		t.Fatalf("NumParams = %d, want %d", net.NumParams(), wantParams)
	}
	// Round-trip every parameter through the flat interface.
	for _, i := range []int{0, 17, 18, 19, 20, wantParams - 1} {
		orig := net.ParamAt(i)
		net.SetParamAt(i, orig+1)
		if net.ParamAt(i) != orig+1 {
			t.Fatalf("SetParamAt(%d) did not round-trip", i)
		}
		net.SetParamAt(i, orig)
	}
	// Flat copy round-trip.
	vals := net.CopyParams()
	if len(vals) != wantParams {
		t.Fatalf("CopyParams len = %d", len(vals))
	}
	vals[0] += 5
	net.SetParams(vals)
	if net.ParamAt(0) != vals[0] {
		t.Fatal("SetParams did not apply")
	}
	// Names include layer prefixes.
	if name := net.ParamName(0); name != "conv.W[0]" {
		t.Fatalf("ParamName(0) = %q", name)
	}
	if name := net.ParamName(18); name != "conv.b[0]" {
		t.Fatalf("ParamName(18) = %q", name)
	}
}

func TestNetworkParamIndexOutOfRangePanics(t *testing.T) {
	net := NewNetwork(NewDense("fc", 2, 2))
	for _, i := range []int{-1, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ParamAt(%d) did not panic", i)
				}
			}()
			net.ParamAt(i)
		}()
	}
}

func TestNetworkSetParamsWrongLengthPanics(t *testing.T) {
	net := NewNetwork(NewDense("fc", 2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("SetParams wrong length did not panic")
		}
	}()
	net.SetParams(make([]float64, 5))
}

func TestVisitGradsOrderMatchesGradAt(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	fc1 := NewDense("fc1", 3, 4)
	fc1.Init(rng)
	fc2 := NewDense("fc2", 4, 2)
	fc2.Init(rng)
	net := NewNetwork(fc1, NewActivate("t", Tanh), fc2)
	x := tensor.New(3)
	x.FillNormal(rng, 0, 1)
	net.ZeroGrad()
	logits := net.Forward(x)
	net.Backward(OnesLike(logits))
	i := 0
	net.VisitGrads(func(idx int, g float64) {
		if idx != i {
			t.Fatalf("VisitGrads index %d, want %d", idx, i)
		}
		if g != net.GradAt(idx) {
			t.Fatalf("VisitGrads grad mismatch at %d", idx)
		}
		i++
	})
	if i != net.NumParams() {
		t.Fatalf("VisitGrads visited %d of %d", i, net.NumParams())
	}
}

func TestZeroGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	fc := NewDense("fc", 3, 2)
	fc.Init(rng)
	net := NewNetwork(fc)
	x := tensor.New(3)
	x.FillNormal(rng, 0, 1)
	logits := net.Forward(x)
	net.Backward(OnesLike(logits))
	net.ZeroGrad()
	for i := 0; i < net.NumParams(); i++ {
		if net.GradAt(i) != 0 {
			t.Fatalf("grad %d nonzero after ZeroGrad", i)
		}
	}
}

func TestGradAccumulationAcrossSamples(t *testing.T) {
	// Two backward passes accumulate: grad(a)+grad(b) == accumulated.
	rng := rand.New(rand.NewSource(23))
	fc := NewDense("fc", 3, 2)
	fc.Init(rng)
	net := NewNetwork(fc)
	a, b := tensor.New(3), tensor.New(3)
	a.FillNormal(rng, 0, 1)
	b.FillNormal(rng, 0, 1)

	grad := func(x *tensor.Tensor) []float64 {
		net.ZeroGrad()
		_, d := SoftmaxCrossEntropy(net.Forward(x), 0)
		net.Backward(d)
		out := make([]float64, net.NumParams())
		for i := range out {
			out[i] = net.GradAt(i)
		}
		return out
	}
	ga, gb := grad(a), grad(b)

	net.ZeroGrad()
	_, d := SoftmaxCrossEntropy(net.Forward(a), 0)
	net.Backward(d)
	_, d = SoftmaxCrossEntropy(net.Forward(b), 0)
	net.Backward(d)
	for i := 0; i < net.NumParams(); i++ {
		if math.Abs(net.GradAt(i)-(ga[i]+gb[i])) > 1e-12 {
			t.Fatalf("accumulation mismatch at %d", i)
		}
	}
}

func TestPredictReturnsArgmax(t *testing.T) {
	fc := NewDense("fc", 2, 3)
	copy(fc.Bias.W.Data(), []float64{0, 5, 1})
	net := NewNetwork(fc)
	if got := net.Predict(tensor.New(2)); got != 1 {
		t.Fatalf("Predict = %d, want 1", got)
	}
}
