package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Softmax returns the softmax of a logits vector, computed with the
// max-subtraction trick for numerical stability. The degenerate case of
// all logits at -Inf (reachable after extreme synthesis steps drives
// every class score to nothing) used to divide by a meaningless sum and
// poison downstream gradients with NaN; it now yields the uniform
// distribution, the limit of softmax as every logit falls together.
// Genuinely corrupted logits (NaN, +Inf) still propagate NaN so that
// divergence detection keeps firing.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(logits.Shape()...)
	softmaxRow(out.Data(), logits.Data())
	return out
}

// softmaxRow writes softmax(src) into dst with the same operation
// sequence for every caller (per-sample and batched rows), guarding the
// degenerate all--Inf / zero-sum case with a uniform fallback.
func softmaxRow(dst, src []float64) {
	m := src[0]
	for _, v := range src[1:] {
		if v > m {
			m = v
		}
	}
	for i, v := range src {
		dst[i] = math.Exp(v - m)
	}
	// Same exponentials, same left-to-right fold as summing inline —
	// the kernel keeps the row's denominator bit-identical.
	s := tensor.Sum(dst)
	// m finite guarantees s >= exp(0) = 1, so the degenerate cases are
	// m = -Inf (all logits -Inf, exp(-Inf - -Inf) = NaN) and an exact
	// zero sum; both mean "no class preferred at all". A NaN logit can
	// hide behind m = -Inf (NaN > -Inf is false), so corrupted rows are
	// screened out first and keep propagating NaN.
	if math.IsInf(m, -1) || s == 0 {
		for _, v := range src {
			if math.IsNaN(v) {
				for i := range dst {
					dst[i] = math.NaN()
				}
				return
			}
		}
		u := 1 / float64(len(dst))
		for i := range dst {
			dst[i] = u
		}
		return
	}
	inv := 1 / s
	for i := range dst {
		dst[i] *= inv
	}
}

// SoftmaxCrossEntropy returns the cross-entropy loss of the logits
// against the integer label, together with the gradient of the loss with
// respect to the logits (softmax(z) − onehot(label)); the fused form
// used for training, for Algorithm 2's input synthesis, and for the GDA
// attack.
func SoftmaxCrossEntropy(logits *tensor.Tensor, label int) (loss float64, dLogits *tensor.Tensor) {
	if label < 0 || label >= logits.Size() {
		panic(fmt.Sprintf("nn: label %d out of range for %d logits", label, logits.Size()))
	}
	p := Softmax(logits)
	loss = -math.Log(math.Max(p.Data()[label], 1e-300))
	d := p // reuse: dLogits = p - onehot
	d.Data()[label] -= 1
	return loss, d
}

// SoftmaxCrossEntropyBatch is SoftmaxCrossEntropy over a [B, classes]
// logits batch: per-sample losses and the [B, classes] loss gradient.
// Every row runs the per-sample operation sequence, so the results are
// bit-identical to calling SoftmaxCrossEntropy sample by sample.
func SoftmaxCrossEntropyBatch(logits *tensor.Tensor, labels []int) (losses []float64, dLogits *tensor.Tensor) {
	if logits.Rank() != 2 || logits.Dim(0) != len(labels) {
		panic(fmt.Sprintf("nn: logits %v do not match %d labels", logits.Shape(), len(labels)))
	}
	b, k := logits.Dim(0), logits.Dim(1)
	losses = make([]float64, b)
	d := tensor.New(b, k)
	ld, dd := logits.Data(), d.Data()
	for s, label := range labels {
		if label < 0 || label >= k {
			panic(fmt.Sprintf("nn: label %d out of range for %d logits", label, k))
		}
		row := dd[s*k : (s+1)*k]
		softmaxRow(row, ld[s*k:(s+1)*k])
		losses[s] = -math.Log(math.Max(row[label], 1e-300))
		row[label] -= 1
	}
	return losses, d
}

// MSE returns the mean squared error between a prediction vector and a
// target vector, with the gradient with respect to the prediction.
func MSE(pred, target *tensor.Tensor) (loss float64, dPred *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: MSE shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	n := float64(pred.Size())
	d := tensor.Sub(pred, target)
	loss = tensor.SumSquares(d.Data()) / n
	d.Scale(2 / n)
	return loss, d
}

// OnesLike returns a tensor of the same shape filled with ones; the
// backward seed that makes parameter gradients equal ∇θ(Σ_k F_k(x)),
// the activation criterion of Eq. 2 applied to all outputs at once.
func OnesLike(t *tensor.Tensor) *tensor.Tensor {
	o := tensor.New(t.Shape()...)
	o.Fill(1)
	return o
}
