package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Softmax returns the softmax of a logits vector, computed with the
// max-subtraction trick for numerical stability.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	m := logits.Max()
	out := logits.Map(func(v float64) float64 { return math.Exp(v - m) })
	s := out.Sum()
	out.Scale(1 / s)
	return out
}

// SoftmaxCrossEntropy returns the cross-entropy loss of the logits
// against the integer label, together with the gradient of the loss with
// respect to the logits (softmax(z) − onehot(label)); the fused form
// used for training, for Algorithm 2's input synthesis, and for the GDA
// attack.
func SoftmaxCrossEntropy(logits *tensor.Tensor, label int) (loss float64, dLogits *tensor.Tensor) {
	if label < 0 || label >= logits.Size() {
		panic(fmt.Sprintf("nn: label %d out of range for %d logits", label, logits.Size()))
	}
	p := Softmax(logits)
	loss = -math.Log(math.Max(p.Data()[label], 1e-300))
	d := p // reuse: dLogits = p - onehot
	d.Data()[label] -= 1
	return loss, d
}

// MSE returns the mean squared error between a prediction vector and a
// target vector, with the gradient with respect to the prediction.
func MSE(pred, target *tensor.Tensor) (loss float64, dPred *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: MSE shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	n := float64(pred.Size())
	d := tensor.Sub(pred, target)
	for _, v := range d.Data() {
		loss += v * v
	}
	loss /= n
	d.Scale(2 / n)
	return loss, d
}

// OnesLike returns a tensor of the same shape filled with ones; the
// backward seed that makes parameter gradients equal ∇θ(Σ_k F_k(x)),
// the activation criterion of Eq. 2 applied to all outputs at once.
func OnesLike(t *tensor.Tensor) *tensor.Tensor {
	o := tensor.New(t.Shape()...)
	o.Fill(1)
	return o
}
