package nn

import (
	"math"

	"repro/internal/tensor"
)

// Activation identifies a supported nonlinearity.
type Activation int

// Supported activations. ReLU is the CIFAR model's choice, Tanh the
// MNIST model's (paper Table I); Sigmoid and LeakyReLU round out the
// engine for the ε-threshold coverage experiments on saturating
// functions.
const (
	ReLU Activation = iota
	Tanh
	Sigmoid
	LeakyReLU
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	case LeakyReLU:
		return "leakyrelu"
	default:
		return "unknown"
	}
}

// leakySlope is the negative-region slope of LeakyReLU.
const leakySlope = 0.01

// ScaleShift is a fixed (non-learnable) elementwise affine input
// normalisation y = A·x + B. Saturating-activation networks use it to
// centre [0,1] pixel inputs to [-1,1], the standard preprocessing for
// Tanh stacks.
type ScaleShift struct {
	LayerName string
	A, B      float64
}

// NewScaleShift constructs the normalisation layer.
func NewScaleShift(name string, a, b float64) *ScaleShift {
	return &ScaleShift{LayerName: name, A: a, B: b}
}

// Forward implements Layer.
func (s *ScaleShift) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	out.Scale(s.A)
	out.Apply(func(v float64) float64 { return v + s.B })
	return out
}

// Backward implements Layer.
func (s *ScaleShift) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	dx := dOut.Clone()
	dx.Scale(s.A)
	return dx
}

// Params implements Layer.
func (s *ScaleShift) Params() []*Param { return nil }

// Name implements Layer.
func (s *ScaleShift) Name() string { return s.LayerName }

// Saturating reports whether the activation has saturation regions where
// gradients approach but never exactly reach zero; such networks need an
// ε > 0 activation threshold (paper §IV-A).
func (a Activation) Saturating() bool { return a == Tanh || a == Sigmoid }

// Activate is an elementwise activation layer.
type Activate struct {
	LayerName string
	Fn        Activation

	in, out *tensor.Tensor // cached for the backward pass

	inB, outB *tensor.Tensor // cached batch state of the last ForwardBatch
}

// NewActivate constructs an activation layer.
func NewActivate(name string, fn Activation) *Activate {
	return &Activate{LayerName: name, Fn: fn}
}

// Forward implements Layer.
func (a *Activate) Forward(x *tensor.Tensor) *tensor.Tensor {
	a.in = x
	a.out = a.activate(x)
	return a.out
}

// activate returns Fn applied elementwise to x as a new tensor; the
// shared kernel of the per-sample and batched forward passes (the ops
// are per-element, so batching cannot change any value).
func (a *Activate) activate(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	switch a.Fn {
	case ReLU:
		out.Apply(func(v float64) float64 {
			if v > 0 {
				return v
			}
			return 0
		})
	case Tanh:
		out.Apply(math.Tanh)
	case Sigmoid:
		out.Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	case LeakyReLU:
		out.Apply(func(v float64) float64 {
			if v > 0 {
				return v
			}
			return leakySlope * v
		})
	}
	return out
}

// Backward implements Layer.
func (a *Activate) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	return a.backwardWith(dOut, a.in.Data(), a.out.Data())
}

// backwardWith is the elementwise backward kernel against explicit
// cached forward slices, shared by the per-sample, batched and
// per-sample-of-batch paths.
func (a *Activate) backwardWith(dOut *tensor.Tensor, in, out []float64) *tensor.Tensor {
	dx := dOut.Clone()
	dd := dx.Data()
	switch a.Fn {
	case ReLU:
		for i := range dd {
			if in[i] <= 0 {
				dd[i] = 0
			}
		}
	case Tanh:
		for i := range dd {
			dd[i] *= 1 - out[i]*out[i]
		}
	case Sigmoid:
		for i := range dd {
			dd[i] *= out[i] * (1 - out[i])
		}
	case LeakyReLU:
		for i := range dd {
			if in[i] <= 0 {
				dd[i] *= leakySlope
			}
		}
	}
	return dx
}

// Params implements Layer.
func (a *Activate) Params() []*Param { return nil }

// Name implements Layer.
func (a *Activate) Name() string { return a.LayerName }
