package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over a [C,H,W] input, lowered to a matrix
// multiply via im2col. Weights have shape [OutC, InC*K*K]; biases [OutC].
type Conv2D struct {
	LayerName       string
	InC, InH, InW   int
	OutC, K, Stride int
	Pad             int
	Weight, Bias    *Param
	geom            tensor.ConvGeom

	col *tensor.Tensor // cached im2col of the last input

	colBatch *tensor.Tensor // cached Im2ColBatch of the last batch input
	batchB   int            // batch size of the last ForwardBatch
}

// NewConv2D constructs a convolution for a fixed input geometry.
func NewConv2D(name string, inC, inH, inW, outC, k, stride, pad int) *Conv2D {
	g := tensor.Geom(inC, inH, inW, k, k, stride, pad)
	return &Conv2D{
		LayerName: name,
		InC:       inC, InH: inH, InW: inW,
		OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight: newParam(name+".W", outC, inC*k*k),
		Bias:   newParam(name+".b", outC),
		geom:   g,
	}
}

// Init fills the weights with He-normal values (suitable for ReLU) and
// zero biases.
func (c *Conv2D) Init(rng *rand.Rand) {
	c.Weight.W.HeNormal(rng, c.InC*c.K*c.K)
	c.Bias.W.Zero()
}

// InitGlorot fills the weights with Glorot-uniform values (suitable for
// Tanh/Sigmoid) and zero biases.
func (c *Conv2D) InitGlorot(rng *rand.Rand) {
	fanIn := c.InC * c.K * c.K
	fanOut := c.OutC * c.K * c.K
	c.Weight.W.GlorotUniform(rng, fanIn, fanOut)
	c.Bias.W.Zero()
}

// OutShape returns the [OutC, OutH, OutW] output shape.
func (c *Conv2D) OutShape() []int { return []int{c.OutC, c.geom.OutH, c.geom.OutW} }

// Geom returns the convolution window geometry.
func (c *Conv2D) Geom() tensor.ConvGeom { return c.geom }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(0) != c.InC || x.Dim(1) != c.InH || x.Dim(2) != c.InW {
		panic(fmt.Sprintf("nn: %s expects input [%d %d %d], got %v", c.LayerName, c.InC, c.InH, c.InW, x.Shape()))
	}
	c.col = tensor.Im2Col(x, c.geom)
	hw := c.geom.OutH * c.geom.OutW
	out := convForwardSample(c.Weight.W, c.Bias.W, c.col, c.OutC, hw) // [OutC, OutH*OutW]
	return out.Reshape(c.OutC, c.geom.OutH, c.geom.OutW)
}

// Backward implements Layer.
func (c *Conv2D) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	hw := c.geom.OutH * c.geom.OutW
	d2 := dOut.Reshape(c.OutC, hw)
	// dW += dOut · colᵀ
	tensor.MatMulTBInto(c.Weight.Grad, d2, c.col, true)
	// db += row sums of dOut
	bd := c.Bias.Grad.Data()
	dd := d2.Data()
	for o := 0; o < c.OutC; o++ {
		bd[o] += tensor.Sum(dd[o*hw : o*hw+hw])
	}
	// dX = Col2Im(Wᵀ · dOut)
	dcol := tensor.MatMulTA(c.Weight.W, d2)
	return tensor.Col2Im(dcol, c.geom)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// Name implements Layer.
func (c *Conv2D) Name() string { return c.LayerName }

// Dense is a fully connected layer y = W·x + b over a rank-1 input.
type Dense struct {
	LayerName    string
	In, Out      int
	Weight, Bias *Param

	x      *tensor.Tensor // cached input
	xBatch *tensor.Tensor // cached [B,In] input of the last ForwardBatch
}

// NewDense constructs a fully connected layer.
func NewDense(name string, in, out int) *Dense {
	return &Dense{
		LayerName: name, In: in, Out: out,
		Weight: newParam(name+".W", out, in),
		Bias:   newParam(name+".b", out),
	}
}

// Init fills the weights with He-normal values and zero biases.
func (d *Dense) Init(rng *rand.Rand) {
	d.Weight.W.HeNormal(rng, d.In)
	d.Bias.W.Zero()
}

// InitGlorot fills the weights with Glorot-uniform values and zero biases.
func (d *Dense) InitGlorot(rng *rand.Rand) {
	d.Weight.W.GlorotUniform(rng, d.In, d.Out)
	d.Bias.W.Zero()
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Size() != d.In {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got %v", d.LayerName, d.In, x.Shape()))
	}
	d.x = x.Reshape(d.In)
	out := tensor.MatVec(d.Weight.W, d.x)
	out.AddInPlace(d.Bias.W)
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	if dOut.Size() != d.Out {
		panic(fmt.Sprintf("nn: %s backward expects %d grads, got %v", d.LayerName, d.Out, dOut.Shape()))
	}
	return d.backwardWith(dOut, d.x.Data())
}

// backwardWith is the per-sample backward against an explicit cached
// input slice, shared by Backward and BackwardSample.
func (d *Dense) backwardWith(dOut *tensor.Tensor, xd []float64) *tensor.Tensor {
	do := dOut.Data()
	wg := d.Weight.Grad.Data()
	for o := 0; o < d.Out; o++ {
		g := do[o]
		if g != 0 {
			row := wg[o*d.In : o*d.In+d.In]
			for i, xv := range xd {
				row[i] += g * xv
			}
		}
		d.Bias.Grad.Data()[o] += g
	}
	dx := tensor.New(d.In)
	dxd := dx.Data()
	wd := d.Weight.W.Data()
	for o := 0; o < d.Out; o++ {
		g := do[o]
		if g == 0 {
			continue
		}
		row := wd[o*d.In : o*d.In+d.In]
		for i, wv := range row {
			dxd[i] += g * wv
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// Name implements Layer.
func (d *Dense) Name() string { return d.LayerName }

// Flatten reshapes any input to rank-1, bridging conv stacks and dense
// heads.
type Flatten struct {
	LayerName string
	inShape   []int
	inShapeB  []int // input shape of the last ForwardBatch (incl. batch dim)
}

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{LayerName: name} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape()...)
	return x.Reshape(x.Size())
}

// Backward implements Layer.
func (f *Flatten) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	return dOut.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Name implements Layer.
func (f *Flatten) Name() string { return f.LayerName }
