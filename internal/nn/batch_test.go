package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// batchBeds builds one small network per layer-type combination the
// engine supports, with an input maker. Every net ends in logits.
func batchBeds() []struct {
	name    string
	build   func() *Network
	inShape []int
	classes int
} {
	return []struct {
		name    string
		build   func() *Network
		inShape []int
		classes int
	}{
		{"dense", func() *Network {
			rng := rand.New(rand.NewSource(1))
			d := NewDense("fc", 6, 4)
			d.Init(rng)
			return NewNetwork(d)
		}, []int{6}, 4},
		{"dense-relu-dense", func() *Network {
			rng := rand.New(rand.NewSource(2))
			d1 := NewDense("fc1", 5, 7)
			d1.Init(rng)
			d2 := NewDense("fc2", 7, 3)
			d2.Init(rng)
			return NewNetwork(d1, NewActivate("relu", ReLU), d2)
		}, []int{5}, 3},
		{"dense-tanh-dense", func() *Network {
			rng := rand.New(rand.NewSource(3))
			d1 := NewDense("fc1", 5, 7)
			d1.InitGlorot(rng)
			d2 := NewDense("fc2", 7, 3)
			d2.InitGlorot(rng)
			return NewNetwork(d1, NewActivate("tanh", Tanh), d2)
		}, []int{5}, 3},
		{"dense-sigmoid-dense", func() *Network {
			rng := rand.New(rand.NewSource(4))
			d1 := NewDense("fc1", 4, 6)
			d1.InitGlorot(rng)
			d2 := NewDense("fc2", 6, 3)
			d2.InitGlorot(rng)
			return NewNetwork(d1, NewActivate("sig", Sigmoid), d2)
		}, []int{4}, 3},
		{"dense-lrelu-dense", func() *Network {
			rng := rand.New(rand.NewSource(5))
			d1 := NewDense("fc1", 4, 6)
			d1.Init(rng)
			d2 := NewDense("fc2", 6, 3)
			d2.Init(rng)
			return NewNetwork(d1, NewActivate("lrelu", LeakyReLU), d2)
		}, []int{4}, 3},
		{"conv-flatten-dense", func() *Network {
			rng := rand.New(rand.NewSource(6))
			c := NewConv2D("conv", 2, 5, 5, 3, 3, 1, 1)
			c.Init(rng)
			fc := NewDense("fc", 3*5*5, 4)
			fc.Init(rng)
			return NewNetwork(c, NewFlatten("flat"), fc)
		}, []int{2, 5, 5}, 4},
		{"conv-stride2-nopad", func() *Network {
			rng := rand.New(rand.NewSource(7))
			c := NewConv2D("conv", 1, 6, 6, 2, 2, 2, 0)
			c.Init(rng)
			fc := NewDense("fc", 2*3*3, 3)
			fc.Init(rng)
			return NewNetwork(c, NewFlatten("flat"), fc)
		}, []int{1, 6, 6}, 3},
		{"pool-flatten-dense", func() *Network {
			rng := rand.New(rand.NewSource(8))
			p := NewMaxPool2D("pool", 2, 4, 4, 2, 2)
			fc := NewDense("fc", 2*2*2, 3)
			fc.Init(rng)
			return NewNetwork(p, NewFlatten("flat"), fc)
		}, []int{2, 4, 4}, 3},
		{"scaleshift-cnn-tanh", func() *Network {
			rng := rand.New(rand.NewSource(9))
			c1 := NewConv2D("conv1", 1, 8, 8, 2, 3, 1, 1)
			c1.InitGlorot(rng)
			p1 := NewMaxPool2D("pool1", 2, 8, 8, 2, 2)
			c2 := NewConv2D("conv2", 2, 4, 4, 3, 3, 1, 1)
			c2.InitGlorot(rng)
			p2 := NewMaxPool2D("pool2", 3, 4, 4, 2, 2)
			fc := NewDense("fc", 3*2*2, 4)
			fc.InitGlorot(rng)
			return NewNetwork(
				NewScaleShift("norm", 2, -1),
				c1, NewActivate("tanh1", Tanh), p1,
				c2, NewActivate("tanh2", Tanh), p2,
				NewFlatten("flat"), fc,
			)
		}, []int{1, 8, 8}, 4},
		{"cnn-relu", func() *Network {
			rng := rand.New(rand.NewSource(10))
			c1 := NewConv2D("conv1", 3, 6, 6, 2, 3, 1, 1)
			c1.Init(rng)
			p1 := NewMaxPool2D("pool1", 2, 6, 6, 2, 2)
			fc := NewDense("fc", 2*3*3, 4)
			fc.Init(rng)
			return NewNetwork(c1, NewActivate("relu1", ReLU), p1, NewFlatten("flat"), fc)
		}, []int{3, 6, 6}, 4},
	}
}

func randBatch(rng *rand.Rand, n int, shape []int) []*tensor.Tensor {
	xs := make([]*tensor.Tensor, n)
	for i := range xs {
		xs[i] = tensor.New(shape...)
		xs[i].FillNormal(rng, 0, 1)
	}
	return xs
}

func sameData(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %v, want %v (batched path must be bit-identical)", name, i, got[i], want[i])
		}
	}
}

// TestBatchedEquivalence drives every layer type through ForwardBatch /
// SoftmaxCrossEntropyBatch / BackwardBatch / BackwardSample and demands
// exact equality with the per-sample path: logits, per-sample losses and
// loss gradients, input gradients, accumulated parameter gradients, and
// per-sample parameter gradients. Batch sizes cover B=1, an odd B and a
// power of two.
func TestBatchedEquivalence(t *testing.T) {
	for _, bed := range batchBeds() {
		for _, B := range []int{1, 3, 8} {
			rng := rand.New(rand.NewSource(int64(100 + B)))
			xs := randBatch(rng, B, bed.inShape)
			labels := make([]int, B)
			for i := range labels {
				labels[i] = rng.Intn(bed.classes)
			}

			// Per-sample reference: logits, losses, loss grads, input
			// grads, and the serial accumulated parameter gradients.
			ref := bed.build()
			ref.ZeroGrad()
			refLogits := make([]*tensor.Tensor, B)
			refLoss := make([]float64, B)
			refDX := make([]*tensor.Tensor, B)
			for b, x := range xs {
				logits := ref.Forward(x)
				refLogits[b] = logits.Clone()
				loss, dLogits := SoftmaxCrossEntropy(logits, labels[b])
				refLoss[b] = loss
				refDX[b] = ref.Backward(dLogits)
			}

			// Batched path on an identical clone.
			net := ref.Clone()
			net.ZeroGrad()
			X := tensor.Stack(xs)
			logitsB := net.ForwardBatch(X)
			for b := range xs {
				sameData(t, bed.name+"/logits", logitsB.Sample(b).Data(), refLogits[b].Data())
			}
			lossesB, dLogitsB := SoftmaxCrossEntropyBatch(logitsB, labels)
			for b := range xs {
				if lossesB[b] != refLoss[b] {
					t.Fatalf("%s B=%d: loss[%d] = %v, want %v", bed.name, B, b, lossesB[b], refLoss[b])
				}
			}
			dXB := net.BackwardBatch(dLogitsB)
			for b := range xs {
				sameData(t, bed.name+"/dx", dXB.Sample(b).Data(), refDX[b].Data())
			}
			for i, p := range net.Params() {
				sameData(t, bed.name+"/grad:"+p.Name, p.Grad.Data(), ref.Params()[i].Grad.Data())
			}

			// The input-only backward must produce the same dX without
			// touching the parameter gradients.
			before := make([][]float64, len(net.Params()))
			for i, p := range net.Params() {
				before[i] = append([]float64(nil), p.Grad.Data()...)
			}
			dXI := net.BackwardBatchInput(dLogitsB)
			sameData(t, bed.name+"/dx-input-only", dXI.Data(), dXB.Data())
			for i, p := range net.Params() {
				sameData(t, bed.name+"/grad-untouched:"+p.Name, p.Grad.Data(), before[i])
			}

			// BackwardSample: per-sample gradients out of one batched
			// forward must equal a fresh per-sample Forward+Backward.
			per := ref.Clone()
			net2 := ref.Clone()
			net2.ForwardBatch(X)
			for b, x := range xs {
				per.ZeroGrad()
				logits := per.Forward(x)
				perDX := per.Backward(OnesLike(logits))

				net2.ZeroGrad()
				dxs := net2.BackwardSample(b, OnesLike(refLogits[b]))
				for i, p := range net2.Params() {
					sameData(t, bed.name+"/sample-grad:"+p.Name, p.Grad.Data(), per.Params()[i].Grad.Data())
				}
				sameData(t, bed.name+"/sample-dx", dxs.Data(), perDX.Data())
			}
		}
	}
}

// TestBatchGradCheck verifies the batched backward pass numerically: the
// gradient of the summed batch loss with respect to every parameter and
// every input element must match central finite differences.
func TestBatchGradCheck(t *testing.T) {
	const h = 1e-6
	for _, bed := range batchBeds() {
		B := 3
		rng := rand.New(rand.NewSource(77))
		xs := randBatch(rng, B, bed.inShape)
		if bed.name == "pool-flatten-dense" {
			// Spread values so no window entries tie or sit within h of
			// the max, keeping the finite difference valid.
			for _, x := range xs {
				x.Scale(10)
			}
		}
		labels := make([]int, B)
		for i := range labels {
			labels[i] = rng.Intn(bed.classes)
		}
		net := bed.build()
		X := tensor.Stack(xs)

		batchLoss := func() float64 {
			losses, _ := SoftmaxCrossEntropyBatch(net.ForwardBatch(X), labels)
			sum := 0.0
			for _, l := range losses {
				sum += l
			}
			return sum
		}

		net.ZeroGrad()
		losses, dLogits := SoftmaxCrossEntropyBatch(net.ForwardBatch(X), labels)
		_ = losses
		dX := net.BackwardBatch(dLogits)

		for i := 0; i < net.NumParams(); i++ {
			orig := net.ParamAt(i)
			net.SetParamAt(i, orig+h)
			up := batchLoss()
			net.SetParamAt(i, orig-h)
			down := batchLoss()
			net.SetParamAt(i, orig)
			num := (up - down) / (2 * h)
			ana := net.GradAt(i)
			if diff := math.Abs(num - ana); diff > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s: batch param %s: analytic %.8g, numeric %.8g", bed.name, net.ParamName(i), ana, num)
			}
		}
		for i := range X.Data() {
			orig := X.Data()[i]
			X.Data()[i] = orig + h
			up := batchLoss()
			X.Data()[i] = orig - h
			down := batchLoss()
			X.Data()[i] = orig
			num := (up - down) / (2 * h)
			ana := dX.Data()[i]
			if diff := math.Abs(num - ana); diff > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s: batch input %d: analytic %.8g, numeric %.8g", bed.name, i, ana, num)
			}
		}
	}
}

// TestPredictBatchMatchesPredict checks the batched classifier answer.
func TestPredictBatchMatchesPredict(t *testing.T) {
	bed := batchBeds()[8] // scaleshift-cnn-tanh
	net := bed.build()
	rng := rand.New(rand.NewSource(5))
	xs := randBatch(rng, 5, bed.inShape)
	got := net.PredictBatch(tensor.Stack(xs))
	for b, x := range xs {
		if want := net.Predict(x); got[b] != want {
			t.Fatalf("PredictBatch[%d] = %d, want %d", b, got[b], want)
		}
	}
}
