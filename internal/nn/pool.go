package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// MaxPool2D is a max pooling layer over a [C,H,W] input with a square
// window. The backward pass routes each output gradient to the input
// position that won the max, as cached during Forward.
type MaxPool2D struct {
	LayerName string
	C, H, W   int
	K, Stride int
	geom      tensor.ConvGeom
	argmax    []int // flat input index chosen for each output cell

	argmaxB []int // per-sample winner indexes of the last ForwardBatch
	batchB  int   // batch size of the last ForwardBatch
}

// NewMaxPool2D constructs a max pooling layer for a fixed input geometry.
func NewMaxPool2D(name string, c, h, w, k, stride int) *MaxPool2D {
	g := tensor.Geom(c, h, w, k, k, stride, 0)
	return &MaxPool2D{LayerName: name, C: c, H: h, W: w, K: k, Stride: stride, geom: g}
}

// OutShape returns the [C, OutH, OutW] output shape.
func (m *MaxPool2D) OutShape() []int { return []int{m.C, m.geom.OutH, m.geom.OutW} }

// Geom returns the pooling window geometry.
func (m *MaxPool2D) Geom() tensor.ConvGeom { return m.geom }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(0) != m.C || x.Dim(1) != m.H || x.Dim(2) != m.W {
		panic(fmt.Sprintf("nn: %s expects input [%d %d %d], got %v", m.LayerName, m.C, m.H, m.W, x.Shape()))
	}
	oh, ow := m.geom.OutH, m.geom.OutW
	out := tensor.New(m.C, oh, ow)
	if cap(m.argmax) < m.C*oh*ow {
		m.argmax = make([]int, m.C*oh*ow)
	}
	m.argmax = m.argmax[:m.C*oh*ow]
	m.poolSample(x.Data(), out.Data(), m.argmax)
	return out
}

// poolSample runs the max-pooling window scan over one sample's data,
// writing outputs and winner indexes (relative to the sample); the shared
// kernel of the per-sample and batched forward passes.
func (m *MaxPool2D) poolSample(xd, od []float64, argmax []int) {
	oh, ow := m.geom.OutH, m.geom.OutW
	oi2 := 0
	for c := 0; c < m.C; c++ {
		chanBase := c * m.H * m.W
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				best, bi := -1.0, -1
				first := true
				for ki := 0; ki < m.K; ki++ {
					ii := oi*m.Stride + ki
					rowBase := chanBase + ii*m.W
					for kj := 0; kj < m.K; kj++ {
						jj := oj*m.Stride + kj
						v := xd[rowBase+jj]
						if first || v > best {
							best, bi = v, rowBase+jj
							first = false
						}
					}
				}
				od[oi2] = best
				argmax[oi2] = bi
				oi2++
			}
		}
	}
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(m.C, m.H, m.W)
	dd := dOut.Data()
	if len(dd) != len(m.argmax) {
		panic(fmt.Sprintf("nn: %s backward size %d, want %d", m.LayerName, len(dd), len(m.argmax)))
	}
	scatterPool(dx.Data(), dd, m.argmax)
	return dx
}

// scatterPool routes each output gradient back to the input cell that won
// its window.
func scatterPool(dxd, dd []float64, argmax []int) {
	for i, g := range dd {
		dxd[argmax[i]] += g
	}
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// Name implements Layer.
func (m *MaxPool2D) Name() string { return m.LayerName }
