package data

import "math"

// fourierTexture fills a single-channel canvas with a sum of a few
// random low-frequency sinusoids in [0,1]-ish range — the smooth
// luminance structure that gives the procedural datasets their
// photograph-like textured backgrounds.
func fourierTexture(h, w int, rng interface {
	Float64() float64
	Intn(int) int
}) []float64 {
	type wave struct{ fx, fy, ph, amp float64 }
	waves := make([]wave, 3+rng.Intn(3))
	for i := range waves {
		waves[i] = wave{
			fx:  (rng.Float64()*2 - 1) * 4 * math.Pi,
			fy:  (rng.Float64()*2 - 1) * 4 * math.Pi,
			ph:  rng.Float64() * 2 * math.Pi,
			amp: 0.2 + rng.Float64()*0.4,
		}
	}
	pix := make([]float64, h*w)
	for i := 0; i < h; i++ {
		y := float64(i) / float64(h)
		for j := 0; j < w; j++ {
			x := float64(j) / float64(w)
			v := 0.5
			for _, wv := range waves {
				v += wv.amp * 0.3 * math.Sin(wv.fx*x+wv.fy*y+wv.ph) //detlint:allow floatreduce(wave components fold in the fixed order the seeded generator emitted them; byte-identity of the rasters is pinned by the dataset tests)
			}
			pix[i*w+j] = v
		}
	}
	return pix
}

// raster is a single-channel float canvas with simple anti-aliased
// primitives; the procedural datasets draw onto it in a normalised
// [0,1]×[0,1] coordinate system (x right, y down).
type raster struct {
	h, w int
	pix  []float64
}

func newRaster(h, w int) *raster {
	return &raster{h: h, w: w, pix: make([]float64, h*w)}
}

// affine is a 2-D affine map applied to canvas coordinates before
// rasterisation; it provides the per-sample jitter that gives the
// procedural classes their intra-class variety.
type affine struct {
	a, b, c float64 // x' = a·x + b·y + c
	d, e, f float64 // y' = d·x + e·y + f
}

func identityAffine() affine { return affine{a: 1, e: 1} }

// jitterAffine composes a random rotation, scale, shear and translation
// around the canvas centre.
func jitterAffine(rot, scaleLo, scaleHi, shear, shift float64, rnd interface{ Float64() float64 }) affine {
	u := func(lo, hi float64) float64 { return lo + rnd.Float64()*(hi-lo) }
	th := u(-rot, rot)
	sx := u(scaleLo, scaleHi)
	sy := u(scaleLo, scaleHi)
	sh := u(-shear, shear)
	tx := u(-shift, shift)
	ty := u(-shift, shift)
	cos, sin := math.Cos(th), math.Sin(th)
	// Transform relative to centre (0.5, 0.5).
	a := sx * cos
	b := sx*(-sin) + sh
	d := sy * sin
	e := sy * cos
	c := 0.5 - a*0.5 - b*0.5 + tx
	f := 0.5 - d*0.5 - e*0.5 + ty
	return affine{a: a, b: b, c: c, d: d, e: e, f: f}
}

func (t affine) apply(x, y float64) (float64, float64) {
	return t.a*x + t.b*y + t.c, t.d*x + t.e*y + t.f
}

// invert returns the inverse affine map. It panics on a singular map,
// which the jitter ranges never produce.
func (t affine) invert() affine {
	det := t.a*t.e - t.b*t.d
	if det == 0 {
		panic("data: singular affine transform")
	}
	ia := t.e / det
	ib := -t.b / det
	id := -t.d / det
	ie := t.a / det
	return affine{
		a: ia, b: ib, c: -(ia*t.c + ib*t.f),
		d: id, e: ie, f: -(id*t.c + ie*t.f),
	}
}

// segment is a line segment in normalised coordinates.
type segment struct{ x1, y1, x2, y2 float64 }

// arc is a circular stroke (annulus of zero width before thickening).
type arc struct{ cx, cy, r float64 }

// distSegment returns the distance from point (px,py) to the segment.
func distSegment(px, py float64, s segment) float64 {
	dx, dy := s.x2-s.x1, s.y2-s.y1
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		return math.Hypot(px-s.x1, py-s.y1)
	}
	t := ((px-s.x1)*dx + (py-s.y1)*dy) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return math.Hypot(px-(s.x1+t*dx), py-(s.y1+t*dy))
}

// smoothstep maps d through a soft threshold: 1 inside, 0 outside, with
// a linear ramp of the given width — cheap anti-aliasing.
func smoothstep(d, edge, width float64) float64 {
	if d <= edge {
		return 1
	}
	if d >= edge+width {
		return 0
	}
	return 1 - (d-edge)/width
}

// strokeSegments draws the segments with the given half-thickness under
// the inverse of transform tr (pixels are pulled back into glyph space).
func (r *raster) strokeSegments(segs []segment, arcs []arc, thick float64, tr affine) {
	inv := tr.invert()
	aa := 1.2 / float64(r.w) // ~1 pixel of anti-alias ramp
	for i := 0; i < r.h; i++ {
		py := (float64(i) + 0.5) / float64(r.h)
		for j := 0; j < r.w; j++ {
			px := (float64(j) + 0.5) / float64(r.w)
			gx, gy := inv.apply(px, py)
			d := math.Inf(1)
			for _, s := range segs {
				if sd := distSegment(gx, gy, s); sd < d {
					d = sd
				}
			}
			for _, a := range arcs {
				if ad := math.Abs(math.Hypot(gx-a.cx, gy-a.cy) - a.r); ad < d {
					d = ad
				}
			}
			v := smoothstep(d, thick, aa)
			idx := i*r.w + j
			if v > r.pix[idx] {
				r.pix[idx] = v
			}
		}
	}
}

// fill paints every pixel whose pulled-back coordinate satisfies inside
// with intensity v (maximum blend).
func (r *raster) fill(inside func(x, y float64) bool, v float64, tr affine) {
	inv := tr.invert()
	for i := 0; i < r.h; i++ {
		py := (float64(i) + 0.5) / float64(r.h)
		for j := 0; j < r.w; j++ {
			px := (float64(j) + 0.5) / float64(r.w)
			gx, gy := inv.apply(px, py)
			if inside(gx, gy) {
				idx := i*r.w + j
				if v > r.pix[idx] {
					r.pix[idx] = v
				}
			}
		}
	}
}
