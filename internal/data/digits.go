package data

import (
	"math/rand"

	"repro/internal/tensor"
)

// glyph is the stroke description of one digit in a normalised
// [0,1]×[0,1] box (x right, y down).
type glyph struct {
	segs []segment
	arcs []arc
}

// digitGlyphs defines the ten digit classes as stroke paths; the
// procedural substitute for MNIST's handwritten shapes. The strokes were
// chosen so each class keeps its distinguishing topology (loops for
// 0/6/8/9, the bar of 7, the open curves of 2/3/5) under jitter.
var digitGlyphs = [10]glyph{
	0: {arcs: []arc{{0.5, 0.5, 0.3}}},
	1: {segs: []segment{{0.5, 0.12, 0.5, 0.88}, {0.35, 0.28, 0.5, 0.12}}},
	2: {segs: []segment{
		{0.25, 0.3, 0.35, 0.15}, {0.35, 0.15, 0.62, 0.12}, {0.62, 0.12, 0.75, 0.28},
		{0.75, 0.28, 0.68, 0.45}, {0.68, 0.45, 0.25, 0.86}, {0.25, 0.86, 0.78, 0.86},
	}},
	3: {segs: []segment{
		{0.25, 0.16, 0.65, 0.12}, {0.65, 0.12, 0.76, 0.28}, {0.76, 0.28, 0.52, 0.48},
		{0.52, 0.48, 0.78, 0.68}, {0.78, 0.68, 0.66, 0.88}, {0.66, 0.88, 0.24, 0.84},
	}},
	4: {segs: []segment{
		{0.66, 0.12, 0.22, 0.62}, {0.22, 0.62, 0.82, 0.62}, {0.66, 0.12, 0.66, 0.9},
	}},
	5: {segs: []segment{
		{0.76, 0.12, 0.3, 0.12}, {0.3, 0.12, 0.28, 0.46}, {0.28, 0.46, 0.62, 0.42},
		{0.62, 0.42, 0.78, 0.58}, {0.78, 0.58, 0.72, 0.82}, {0.72, 0.82, 0.26, 0.88},
	}},
	6: {segs: []segment{{0.68, 0.12, 0.4, 0.36}, {0.4, 0.36, 0.3, 0.58}},
		arcs: []arc{{0.5, 0.68, 0.2}}},
	7: {segs: []segment{{0.22, 0.14, 0.8, 0.14}, {0.8, 0.14, 0.44, 0.88}}},
	8: {arcs: []arc{{0.5, 0.3, 0.17}, {0.5, 0.68, 0.21}}},
	9: {segs: []segment{{0.68, 0.36, 0.6, 0.88}},
		arcs: []arc{{0.5, 0.32, 0.2}}},
}

// letterGlyphs defines ten letter classes with the same stroke
// statistics as the digits — the out-of-distribution glyph family used
// by the Natural probe set for grayscale models (the "same modality,
// different content" role ImageNet plays against MNIST in Fig. 2).
var letterGlyphs = [10]glyph{
	0: {segs: []segment{ // A
		{0.5, 0.1, 0.2, 0.9}, {0.5, 0.1, 0.8, 0.9}, {0.32, 0.62, 0.68, 0.62},
	}},
	1: {segs: []segment{ // E
		{0.28, 0.1, 0.28, 0.9}, {0.28, 0.1, 0.75, 0.1}, {0.28, 0.5, 0.65, 0.5}, {0.28, 0.9, 0.75, 0.9},
	}},
	2: {segs: []segment{ // K
		{0.3, 0.1, 0.3, 0.9}, {0.75, 0.1, 0.3, 0.52}, {0.45, 0.4, 0.78, 0.9},
	}},
	3: {segs: []segment{ // M
		{0.2, 0.9, 0.2, 0.1}, {0.2, 0.1, 0.5, 0.55}, {0.5, 0.55, 0.8, 0.1}, {0.8, 0.1, 0.8, 0.9},
	}},
	4: {segs: []segment{ // T
		{0.2, 0.12, 0.8, 0.12}, {0.5, 0.12, 0.5, 0.9},
	}},
	5: {segs: []segment{ // V
		{0.2, 0.1, 0.5, 0.9}, {0.8, 0.1, 0.5, 0.9},
	}},
	6: {segs: []segment{ // X
		{0.22, 0.1, 0.78, 0.9}, {0.78, 0.1, 0.22, 0.9},
	}},
	7: {segs: []segment{ // H
		{0.25, 0.1, 0.25, 0.9}, {0.75, 0.1, 0.75, 0.9}, {0.25, 0.5, 0.75, 0.5},
	}},
	8: {segs: []segment{ // L
		{0.3, 0.1, 0.3, 0.88}, {0.3, 0.88, 0.78, 0.88},
	}},
	9: {segs: []segment{ // W
		{0.18, 0.1, 0.35, 0.9}, {0.35, 0.9, 0.5, 0.45}, {0.5, 0.45, 0.65, 0.9}, {0.65, 0.9, 0.82, 0.1},
	}},
}

// DigitClasses is the number of digit classes.
const DigitClasses = 10

// Digits generates n procedural handwritten-style digit images of size
// h×w (single channel); the reproduction's MNIST substitute. Each sample
// draws its class glyph under a random affine jitter, stroke thickness
// and brightness, then adds pixel noise — giving the intra-class variety
// that makes different training samples activate different parameters.
func Digits(n, h, w int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: "digits", Classes: DigitClasses, C: 1, H: h, W: w}
	for i := 0; i < n; i++ {
		label := i % DigitClasses
		d.Samples = append(d.Samples, Sample{X: renderDigit(label, h, w, rng), Label: label})
	}
	d.Shuffle(rng)
	return d
}

// RenderDigit draws one digit of the given class with fresh jitter; used
// by Fig. 4's real-vs-synthetic panel.
func RenderDigit(label, h, w int, rng *rand.Rand) *tensor.Tensor {
	return renderDigit(label, h, w, rng)
}

func renderDigit(label, h, w int, rng *rand.Rand) *tensor.Tensor {
	return renderGlyph(digitGlyphs[label], h, w, rng)
}

// RenderLetter draws one out-of-distribution letter glyph through the
// same rendering pipeline as the digits.
func RenderLetter(label, h, w int, rng *rand.Rand) *tensor.Tensor {
	g := letterGlyphs[label%len(letterGlyphs)]
	r := newRaster(h, w)
	// Out-of-distribution glyphs arrive at mismatched scale and heavier
	// jitter than the training digits, as natural-image crops would.
	tr := jitterAffine(0.35, 0.5, 0.8, 0.18, 0.16, rng)
	thick := 0.03 + rng.Float64()*0.05
	r.strokeSegments(g.segs, g.arcs, thick, tr)
	return finishGlyph(r, h, w, rng)
}

func renderGlyph(g glyph, h, w int, rng *rand.Rand) *tensor.Tensor {
	r := newRaster(h, w)
	tr := jitterAffine(0.18, 0.8, 1.12, 0.12, 0.08, rng)
	thick := 0.035 + rng.Float64()*0.04
	r.strokeSegments(g.segs, g.arcs, thick, tr)
	return finishGlyph(r, h, w, rng)
}

// finishGlyph applies brightness, paper grain and pixel noise to a
// stroked raster.
func finishGlyph(r *raster, h, w int, rng *rand.Rand) *tensor.Tensor {

	bright := 0.75 + rng.Float64()*0.25
	x := tensor.FromSlice(r.pix, 1, h, w)
	x.Scale(bright)
	// Paper-grain background: a dim smooth texture under the ink, as in
	// scanned handwriting. It keeps in-distribution images dense, so the
	// coverage experiments measure feature response rather than raw
	// input sparsity.
	grain := fourierTexture(h, w, rng)
	base := 0.05 + rng.Float64()*0.15
	for i := range x.Data() {
		bg := base * grain[i]
		if bg > x.Data()[i] {
			x.Data()[i] = bg
		}
		x.Data()[i] += rng.NormFloat64() * 0.02
	}
	x.Clamp(0, 1)
	return x
}
