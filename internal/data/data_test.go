package data

import (
	"math"
	"math/rand"
	"testing"
)

func TestDigitsBasicProperties(t *testing.T) {
	d := Digits(50, 16, 16, 1)
	if d.Len() != 50 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.C != 1 || d.H != 16 || d.W != 16 || d.Classes != 10 {
		t.Fatalf("geometry: %+v", d)
	}
	for i, s := range d.Samples {
		if s.Label < 0 || s.Label >= 10 {
			t.Fatalf("sample %d label %d", i, s.Label)
		}
		if s.X.Rank() != 3 || s.X.Dim(0) != 1 || s.X.Dim(1) != 16 || s.X.Dim(2) != 16 {
			t.Fatalf("sample %d shape %v", i, s.X.Shape())
		}
		for _, v := range s.X.Data() {
			if v < 0 || v > 1 {
				t.Fatalf("sample %d pixel %v out of [0,1]", i, v)
			}
		}
	}
}

func TestDigitsBalancedClasses(t *testing.T) {
	d := Digits(100, 12, 12, 2)
	for c, n := range d.ClassCounts() {
		if n != 10 {
			t.Fatalf("class %d count %d, want 10", c, n)
		}
	}
}

func TestDigitsDeterministic(t *testing.T) {
	a := Digits(20, 14, 14, 7)
	b := Digits(20, 14, 14, 7)
	for i := range a.Samples {
		if a.Samples[i].Label != b.Samples[i].Label {
			t.Fatalf("labels differ at %d", i)
		}
		for j := range a.Samples[i].X.Data() {
			if a.Samples[i].X.Data()[j] != b.Samples[i].X.Data()[j] {
				t.Fatalf("pixels differ at sample %d", i)
			}
		}
	}
	c := Digits(20, 14, 14, 8)
	same := true
	for j := range a.Samples[0].X.Data() {
		if a.Samples[0].X.Data()[j] != c.Samples[0].X.Data()[j] {
			same = false
			break
		}
	}
	if same && a.Samples[0].Label == c.Samples[0].Label {
		t.Fatal("different seeds produced identical first sample")
	}
}

func TestDigitsHaveInk(t *testing.T) {
	// Every digit image must contain some bright stroke pixels and some
	// dark background — blank or saturated canvases indicate a renderer
	// bug.
	d := Digits(40, 20, 20, 3)
	for i, s := range d.Samples {
		var bright, dark int
		for _, v := range s.X.Data() {
			if v > 0.5 {
				bright++
			}
			if v < 0.1 {
				dark++
			}
		}
		if bright < 5 {
			t.Fatalf("sample %d (label %d): only %d bright pixels", i, s.Label, bright)
		}
		if dark < 100 {
			t.Fatalf("sample %d: only %d dark pixels", i, dark)
		}
	}
}

func TestDigitClassesAreDistinct(t *testing.T) {
	// Averages of many renders per class should differ between classes:
	// mean inter-class L2 distance well above zero.
	rng := rand.New(rand.NewSource(4))
	const h, w, per = 16, 16, 12
	means := make([][]float64, 10)
	for c := 0; c < 10; c++ {
		m := make([]float64, h*w)
		for k := 0; k < per; k++ {
			img := RenderDigit(c, h, w, rng)
			for j, v := range img.Data() {
				m[j] += v / per
			}
		}
		means[c] = m
	}
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			var d2 float64
			for j := range means[a] {
				diff := means[a][j] - means[b][j]
				d2 += diff * diff
			}
			if math.Sqrt(d2) < 0.5 {
				t.Errorf("classes %d and %d have nearly identical means (L2 %.3f)", a, b, math.Sqrt(d2))
			}
		}
	}
}

func TestObjectsBasicProperties(t *testing.T) {
	d := Objects(40, 16, 16, 5)
	if d.C != 3 || d.Classes != 10 || d.Len() != 40 {
		t.Fatalf("geometry: %+v", d)
	}
	for i, s := range d.Samples {
		if s.X.Dim(0) != 3 {
			t.Fatalf("sample %d channels %d", i, s.X.Dim(0))
		}
		for _, v := range s.X.Data() {
			if v < 0 || v > 1 {
				t.Fatalf("sample %d pixel out of range", i)
			}
		}
	}
}

func TestObjectsDeterministic(t *testing.T) {
	a := Objects(10, 12, 12, 9)
	b := Objects(10, 12, 12, 9)
	for i := range a.Samples {
		for j := range a.Samples[i].X.Data() {
			if a.Samples[i].X.Data()[j] != b.Samples[i].X.Data()[j] {
				t.Fatalf("objects not deterministic at sample %d", i)
			}
		}
	}
}

func TestObjectClassesAreDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const h, w, per = 16, 16, 10
	// Use the mask structure (channel mean) to compare classes.
	means := make([][]float64, ObjectClasses)
	for c := 0; c < ObjectClasses; c++ {
		m := make([]float64, h*w)
		for k := 0; k < per; k++ {
			img := RenderObject(c, h, w, rng)
			hw := h * w
			for j := 0; j < hw; j++ {
				// grayscale projection
				m[j] += (img.Data()[j] + img.Data()[hw+j] + img.Data()[2*hw+j]) / (3 * per)
			}
		}
		means[c] = m
	}
	distinct := 0
	for a := 0; a < ObjectClasses; a++ {
		for b := a + 1; b < ObjectClasses; b++ {
			var d2 float64
			for j := range means[a] {
				diff := means[a][j] - means[b][j]
				d2 += diff * diff
			}
			if math.Sqrt(d2) > 0.3 {
				distinct++
			}
		}
	}
	// Random colours wash out some pairs, but most should separate.
	if distinct < 25 {
		t.Fatalf("only %d of 45 class pairs distinct", distinct)
	}
}

func TestNoiseProperties(t *testing.T) {
	d := Noise(30, 3, 8, 8, 11)
	if d.Len() != 30 || d.C != 3 {
		t.Fatalf("noise geometry: %+v", d)
	}
	// Mean should be near 0.5.
	var sum, count float64
	for _, s := range d.Samples {
		for _, v := range s.X.Data() {
			if v < 0 || v > 1 {
				t.Fatal("noise pixel out of range")
			}
			sum += v
			count++
		}
	}
	if mean := sum / count; math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("noise mean = %v", mean)
	}
}

func TestNaturalProperties(t *testing.T) {
	d := Natural(20, 3, 12, 12, 13)
	if d.Len() != 20 || d.C != 3 {
		t.Fatalf("natural geometry: %+v", d)
	}
	for i, s := range d.Samples {
		for _, v := range s.X.Data() {
			if v < 0 || v > 1 {
				t.Fatalf("natural sample %d out of range", i)
			}
		}
	}
	// Natural images should be smoother than noise: mean absolute
	// horizontal gradient well below the noise baseline.
	grad := func(ds *Dataset) float64 {
		var g, n float64
		for _, s := range ds.Samples {
			xd := s.X.Data()
			h, w := ds.H, ds.W
			for c := 0; c < ds.C; c++ {
				for i := 0; i < h; i++ {
					for j := 0; j+1 < w; j++ {
						g += math.Abs(xd[(c*h+i)*w+j+1] - xd[(c*h+i)*w+j])
						n++
					}
				}
			}
		}
		return g / n
	}
	noise := Noise(20, 3, 12, 12, 14)
	if gn, gz := grad(d), grad(noise); gn >= gz {
		t.Fatalf("natural images (grad %.3f) should be smoother than noise (grad %.3f)", gn, gz)
	}
}

func TestSplitAndSubset(t *testing.T) {
	d := Digits(30, 8, 8, 15)
	train, test := d.Split(20)
	if train.Len() != 20 || test.Len() != 10 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	sub := d.Subset(5)
	if sub.Len() != 5 {
		t.Fatalf("subset size %d", sub.Len())
	}
	if d.Subset(100).Len() != 30 {
		t.Fatal("oversized subset should clamp")
	}
}

func TestSplitOutOfRangePanics(t *testing.T) {
	d := Digits(5, 8, 8, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("bad split did not panic")
		}
	}()
	d.Split(6)
}

func TestShuffleKeepsMultiset(t *testing.T) {
	d := Digits(40, 8, 8, 17)
	before := d.ClassCounts()
	d.Shuffle(rand.New(rand.NewSource(1)))
	after := d.ClassCounts()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("shuffle changed class histogram")
		}
	}
}

func TestAffineInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 20; trial++ {
		tr := jitterAffine(0.3, 0.7, 1.3, 0.15, 0.1, rng)
		inv := tr.invert()
		x, y := rng.Float64(), rng.Float64()
		fx, fy := tr.apply(x, y)
		bx, by := inv.apply(fx, fy)
		if math.Abs(bx-x) > 1e-9 || math.Abs(by-y) > 1e-9 {
			t.Fatalf("affine round trip failed: (%v,%v) -> (%v,%v)", x, y, bx, by)
		}
	}
}

func TestDistSegment(t *testing.T) {
	s := segment{0, 0, 1, 0}
	cases := []struct{ px, py, want float64 }{
		{0.5, 0.5, 0.5},
		{0, 1, 1},
		{-1, 0, 1},
		{2, 0, 1},
		{0.25, 0, 0},
	}
	for _, c := range cases {
		if got := distSegment(c.px, c.py, s); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("distSegment(%v,%v) = %v, want %v", c.px, c.py, got, c.want)
		}
	}
	// degenerate segment
	p := segment{1, 1, 1, 1}
	if got := distSegment(0, 1, p); math.Abs(got-1) > 1e-12 {
		t.Errorf("point-segment distance = %v, want 1", got)
	}
}

func TestSmoothstep(t *testing.T) {
	if smoothstep(0, 0.1, 0.1) != 1 {
		t.Error("inside should be 1")
	}
	if smoothstep(0.3, 0.1, 0.1) != 0 {
		t.Error("outside should be 0")
	}
	mid := smoothstep(0.15, 0.1, 0.1)
	if mid <= 0 || mid >= 1 {
		t.Errorf("ramp value %v not in (0,1)", mid)
	}
}
