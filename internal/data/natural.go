package data

import (
	"math/rand"
)

// Natural generates the out-of-distribution probe set of Fig. 2 — the
// role ImageNet plays against MNIST/CIFAR-10 in the paper: images of the
// *same modality* as the training distribution but with disjoint
// content.
//
// For single-channel geometry it renders letter glyphs through the digit
// pipeline (same strokes, grain and jitter statistics; different
// classes). For colour geometry it renders an alternative shape family
// (stars, crescents, arrows, ...) through the object pipeline. Matching
// the low-level statistics is what makes the comparison meaningful: the
// coverage difference then measures feature mismatch, not pixel
// density.
func Natural(n, c, h, w int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: "natural", Classes: 10, C: c, H: h, W: w}
	for i := 0; i < n; i++ {
		label := rng.Intn(10)
		s := Sample{Label: label}
		if c == 1 {
			s.X = RenderLetter(label, h, w, rng)
		} else {
			s.X = RenderAltObject(label, h, w, rng)
		}
		d.Samples = append(d.Samples, s)
	}
	return d
}
