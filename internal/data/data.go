// Package data provides the datasets of the reproduction. The paper
// evaluates on MNIST and CIFAR-10, which are not available offline, so
// this package generates procedural substitutes with the properties the
// algorithms actually depend on: a trainable in-distribution training
// set with per-class feature diversity (Digits, Objects), a Gaussian
// noise probe set, and an out-of-distribution "natural image" probe set
// (Natural) standing in for the paper's ImageNet probe (Fig. 2).
//
// All generators are deterministic given their seed.
package data

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Sample is one labelled image with pixel values in [0,1].
type Sample struct {
	X     *tensor.Tensor // [C,H,W]
	Label int
}

// Dataset is an ordered collection of samples sharing one geometry.
type Dataset struct {
	Name    string
	Classes int
	C, H, W int
	Samples []Sample
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Split partitions the dataset into a training set with n samples and a
// test set with the remainder. It panics if n is out of range.
func (d *Dataset) Split(n int) (train, test *Dataset) {
	if n < 0 || n > len(d.Samples) {
		panic(fmt.Sprintf("data: split point %d out of range [0,%d]", n, len(d.Samples)))
	}
	train = &Dataset{Name: d.Name + "/train", Classes: d.Classes, C: d.C, H: d.H, W: d.W, Samples: d.Samples[:n]}
	test = &Dataset{Name: d.Name + "/test", Classes: d.Classes, C: d.C, H: d.H, W: d.W, Samples: d.Samples[n:]}
	return train, test
}

// Shuffle permutes the samples in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
}

// ClassCounts returns a histogram of labels.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, s := range d.Samples {
		counts[s.Label]++
	}
	return counts
}

// Subset returns a view of the first n samples.
func (d *Dataset) Subset(n int) *Dataset {
	if n > len(d.Samples) {
		n = len(d.Samples)
	}
	return &Dataset{Name: d.Name, Classes: d.Classes, C: d.C, H: d.H, W: d.W, Samples: d.Samples[:n]}
}

// Noise returns n Gaussian-noise images (mean 0.5, σ 0.25, clamped to
// [0,1]) with uniformly random labels; the paper's "noisy images" probe
// set in Fig. 2.
func Noise(n, c, h, w int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: "noise", Classes: 10, C: c, H: h, W: w}
	for i := 0; i < n; i++ {
		x := tensor.New(c, h, w)
		x.FillNormal(rng, 0.5, 0.25)
		x.Clamp(0, 1)
		d.Samples = append(d.Samples, Sample{X: x, Label: rng.Intn(10)})
	}
	return d
}
