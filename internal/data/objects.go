package data

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// ObjectClasses is the number of colour-object classes.
const ObjectClasses = 10

// Object class identifiers, the reproduction's CIFAR-10 substitute
// taxonomy: filled and outlined shapes plus periodic textures.
const (
	objCircle = iota
	objSquare
	objTriangle
	objRing
	objCross
	objHStripes
	objVStripes
	objChecker
	objDiagonal
	objBlobs
)

// Objects generates n procedural colour images of size h×w (3 channels);
// the CIFAR-10 substitute. Each class has a characteristic shape or
// texture rendered with random colours, positions and scales over a
// random background, plus pixel noise.
func Objects(n, h, w int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: "objects", Classes: ObjectClasses, C: 3, H: h, W: w}
	for i := 0; i < n; i++ {
		label := i % ObjectClasses
		d.Samples = append(d.Samples, Sample{X: renderObject(label, h, w, rng), Label: label})
	}
	d.Shuffle(rng)
	return d
}

// RenderObject draws one object of the given class with fresh jitter.
func RenderObject(label, h, w int, rng *rand.Rand) *tensor.Tensor {
	return renderObject(label, h, w, rng)
}

// randColor returns an RGB colour at least minDist (L1) away from ref so
// foregrounds stay visible against backgrounds.
func randColor(rng *rand.Rand, ref [3]float64, minDist float64) [3]float64 {
	for {
		c := [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
		d := math.Abs(c[0]-ref[0]) + math.Abs(c[1]-ref[1]) + math.Abs(c[2]-ref[2])
		if d >= minDist {
			return c
		}
	}
}

func renderObject(label, h, w int, rng *rand.Rand) *tensor.Tensor {
	mask := newRaster(h, w)
	tr := jitterAffine(0.25, 0.75, 1.1, 0.1, 0.1, rng)
	objectMask(label, mask, tr, rng)
	return compositeObject(mask, h, w, rng)
}

// RenderAltObject draws one shape from the disjoint alternative family
// (stars, crescents, arrows, ...) through the same colour/texture
// pipeline; the out-of-distribution probe for colour models — same
// modality as the training objects, different classes, exactly the role
// ImageNet plays against CIFAR-10 in Fig. 2.
func RenderAltObject(label, h, w int, rng *rand.Rand) *tensor.Tensor {
	mask := newRaster(h, w)
	// Wider scale jitter than the training family: out-of-distribution
	// content arrives at mismatched scale, as ImageNet crops do against
	// CIFAR's tight framing.
	tr := jitterAffine(0.4, 0.45, 0.8, 0.15, 0.18, rng)
	altObjectMask(label%10, mask, tr, rng)
	return compositeObject(mask, h, w, rng)
}

func objectMask(label int, mask *raster, tr affine, rng *rand.Rand) {
	cx := 0.5
	cy := 0.5
	rad := 0.18 + rng.Float64()*0.12
	switch label {
	case objCircle:
		mask.fill(func(x, y float64) bool {
			return math.Hypot(x-cx, y-cy) <= rad*1.4
		}, 1, tr)
	case objSquare:
		s := rad * 1.25
		mask.fill(func(x, y float64) bool {
			return math.Abs(x-cx) <= s && math.Abs(y-cy) <= s
		}, 1, tr)
	case objTriangle:
		s := rad * 1.8
		mask.fill(func(x, y float64) bool {
			// upright triangle: apex at (cx, cy-s), base at y = cy+s·0.6
			if y < cy-s || y > cy+0.6*s {
				return false
			}
			t := (y - (cy - s)) / (1.6 * s) // 0 at apex → 1 at base
			return math.Abs(x-cx) <= t*s
		}, 1, tr)
	case objRing:
		mask.fill(func(x, y float64) bool {
			d := math.Hypot(x-cx, y-cy)
			return d <= rad*1.5 && d >= rad*0.8
		}, 1, tr)
	case objCross:
		arm := rad * 1.7
		thick := rad * 0.5
		mask.fill(func(x, y float64) bool {
			return (math.Abs(x-cx) <= thick && math.Abs(y-cy) <= arm) ||
				(math.Abs(y-cy) <= thick && math.Abs(x-cx) <= arm)
		}, 1, tr)
	case objHStripes:
		period := 0.12 + rng.Float64()*0.1
		mask.fill(func(x, y float64) bool {
			return math.Mod(math.Abs(y), period) < period/2
		}, 1, tr)
	case objVStripes:
		period := 0.12 + rng.Float64()*0.1
		mask.fill(func(x, y float64) bool {
			return math.Mod(math.Abs(x), period) < period/2
		}, 1, tr)
	case objChecker:
		period := 0.16 + rng.Float64()*0.12
		mask.fill(func(x, y float64) bool {
			ix := int(math.Floor(x / (period / 2)))
			iy := int(math.Floor(y / (period / 2)))
			return (ix+iy)%2 == 0
		}, 1, tr)
	case objDiagonal:
		period := 0.14 + rng.Float64()*0.1
		mask.fill(func(x, y float64) bool {
			return math.Mod(math.Abs(x+y), period) < period/2
		}, 1, tr)
	case objBlobs:
		// two separated blobs — a composite scene unlike any single shape
		dx := 0.16 + rng.Float64()*0.06
		r1 := rad * 0.9
		mask.fill(func(x, y float64) bool {
			return math.Hypot(x-(cx-dx), y-(cy-dx)) <= r1 ||
				math.Hypot(x-(cx+dx), y-(cy+dx)) <= r1
		}, 1, tr)
	}
}

// altObjectMask draws the out-of-distribution shape family.
func altObjectMask(label int, mask *raster, tr affine, rng *rand.Rand) {
	cx, cy := 0.5, 0.5
	rad := 0.18 + rng.Float64()*0.12
	switch label {
	case 0: // five-pointed star
		mask.fill(func(x, y float64) bool {
			dx, dy := x-cx, y-cy
			r := math.Hypot(dx, dy)
			if r > rad*1.8 {
				return false
			}
			th := math.Atan2(dy, dx)
			spike := 0.55 + 0.45*math.Cos(5*th)
			return r <= rad*1.8*spike
		}, 1, tr)
	case 1: // crescent
		mask.fill(func(x, y float64) bool {
			return math.Hypot(x-cx, y-cy) <= rad*1.5 &&
				math.Hypot(x-cx-rad*0.7, y-cy) > rad*1.2
		}, 1, tr)
	case 2: // arrow
		mask.fill(func(x, y float64) bool {
			if math.Abs(y-cy) <= rad*0.3 && x >= cx-rad*1.6 && x <= cx+rad*0.4 {
				return true
			}
			t := (x - (cx + rad*0.4)) / (rad * 1.2)
			return t >= 0 && t <= 1 && math.Abs(y-cy) <= (1-t)*rad
		}, 1, tr)
	case 3: // L bracket
		mask.fill(func(x, y float64) bool {
			return (math.Abs(x-cx+rad) <= rad*0.35 && y >= cy-rad*1.5 && y <= cy+rad*1.5) ||
				(math.Abs(y-cy-rad*1.15) <= rad*0.35 && x >= cx-rad*1.35 && x <= cx+rad*1.4)
		}, 1, tr)
	case 4: // diamond
		s := rad * 1.7
		mask.fill(func(x, y float64) bool {
			return math.Abs(x-cx)+math.Abs(y-cy) <= s
		}, 1, tr)
	case 5: // Z stripe
		mask.fill(func(x, y float64) bool {
			if y < cy-rad*1.3 || y > cy+rad*1.3 {
				return false
			}
			if math.Abs(y-cy+rad*1.1) <= rad*0.3 || math.Abs(y-cy-rad*1.1) <= rad*0.3 {
				return math.Abs(x-cx) <= rad*1.3
			}
			diag := cx + (cy-y)*0.9
			return math.Abs(x-diag) <= rad*0.35
		}, 1, tr)
	case 6: // U channel
		mask.fill(func(x, y float64) bool {
			d := math.Hypot(x-cx, y-cy)
			inRing := d <= rad*1.5 && d >= rad*0.85
			return inRing && y >= cy-rad*0.2 ||
				(math.Abs(math.Abs(x-cx)-rad*1.17) <= rad*0.33 && y >= cy-rad*1.4 && y < cy)
		}, 1, tr)
	case 7: // dot grid
		period := 0.22 + rng.Float64()*0.08
		mask.fill(func(x, y float64) bool {
			gx := math.Mod(math.Abs(x), period) - period/2
			gy := math.Mod(math.Abs(y), period) - period/2
			return math.Hypot(gx, gy) <= period*0.27
		}, 1, tr)
	case 8: // concentric rings
		mask.fill(func(x, y float64) bool {
			d := math.Hypot(x-cx, y-cy)
			return math.Mod(d, rad*0.8) < rad*0.4 && d <= rad*2
		}, 1, tr)
	case 9: // wedge fan
		mask.fill(func(x, y float64) bool {
			dx, dy := x-cx, y-cy
			if math.Hypot(dx, dy) > rad*1.8 {
				return false
			}
			th := math.Atan2(dy, dx)
			return math.Mod(th+math.Pi, math.Pi/2) < math.Pi/4
		}, 1, tr)
	}
}

// compositeObject lays the foreground mask over a textured background
// in two contrasting random colours plus pixel noise.
func compositeObject(mask *raster, h, w int, rng *rand.Rand) *tensor.Tensor {
	bg := [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
	fg := randColor(rng, bg, 0.8)
	x := tensor.New(3, h, w)
	xd := x.Data()
	hw := h * w
	// Textured background, as in natural photographs: the flat
	// background colour is modulated by a smooth random texture so
	// in-distribution images carry the same low-level richness as the
	// out-of-distribution probe sets.
	grain := fourierTexture(h, w, rng)
	for i := 0; i < hw; i++ {
		m := mask.pix[i]
		g := 0.6 + 0.8*grain[i]
		for c := 0; c < 3; c++ {
			v := bg[c]*g*(1-m) + fg[c]*m + rng.NormFloat64()*0.03
			xd[c*hw+i] = v
		}
	}
	x.Clamp(0, 1)
	return x
}
