// Package sentinel is the standing-verification daemon over the
// paper's one-shot replay: where the IP user of the paper replays the
// sealed suite once, a production user keeps paying queries to a live
// fleet and needs the validation verdict continuously. The sentinel
// trickle-replays randomised suite subsets against a ShardedIP fleet
// on a schedule, under a query budget (a queries/sec cap and a bounded
// sample per round), with the sampling seeded deterministically so any
// incident report can be reproduced bit-for-bit from its round seed.
//
// On the first divergent round the sentinel runs an attribution sweep
// — the same subset replayed against each healthy replica individually
// through ShardedIP.Replica pinned views — and raises a structured
// Alert naming the offending replicas, quarantining them out of the
// rotation (validation keeps running on the survivors). Quarantined
// replicas are readmitted only after passing a dedicated re-validation
// probe (ShardedIP.TryReadmit), which rides the half-open backoff
// schedule. NotifySync triggers an immediate out-of-schedule round,
// the hook for re-validating after a hot parameter sync. Handler
// exposes the whole state over HTTP: Prometheus /metrics and a JSON
// /status snapshot.
package sentinel

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/validate"
)

// Config configures a Sentinel. Suite and Fleet are required; zero
// values elsewhere take the documented defaults.
type Config struct {
	// Suite is the sealed validation artefact rounds sample from.
	Suite *validate.Suite
	// Fleet is the replica fleet under watch. The sentinel owns its
	// quarantine decisions; it does not Close it.
	Fleet *validate.ShardedIP
	// Interval is the time between scheduled rounds. Default 30s.
	Interval time.Duration
	// Sample is the number of suite tests replayed per round, drawn
	// without replacement from a per-round deterministic permutation.
	// Default min(16, suite size); capped at the suite size.
	Sample int
	// QPS caps the sentinel's query rate (queries per second averaged
	// over a round, enforced between batch exchanges), bounding what
	// standing verification costs against a fleet that charges per
	// query. <= 0 means unpaced.
	QPS float64
	// Batch is the batch size of replay exchanges. Default 4.
	Batch int
	// Tolerance is ReplayConfig.Tolerance for every replay the sentinel
	// runs — required when the fleet evaluates in float32.
	Tolerance float64
	// Wire is ReplayConfig.Wire for every replay the sentinel runs.
	Wire validate.Wire
	// Seed makes the sampling deterministic: round r of any sentinel
	// started with the same (Seed, Suite, Sample) replays the same
	// indices, so an incident report is reproducible from its recorded
	// round and seed alone.
	Seed int64
	// History bounds the alert ring buffer kept for /status. Default 32.
	History int
	// OnAlert, when set, is called synchronously with each raised
	// alert — after the divergent replicas were quarantined.
	OnAlert func(Alert)
	// AlertURL, when set, delivers each raised alert as an HTTP POST
	// of its JSON encoding (Content-Type: application/json) to this
	// webhook, with capped retry/backoff; a delivery that exhausts its
	// attempts is dropped, counted, and logged — never allowed to
	// stall the validation rounds for longer than the attempt budget.
	// Deliveries and failures are reported in /metrics and Status.
	AlertURL string
	// OnRound, when set, is called synchronously after every round.
	OnRound func(RoundResult)
	// Logf, when set, receives one line per notable event (round
	// verdicts, quarantines, readmissions).
	Logf func(format string, args ...any)
}

// ReplicaVerdict is one replica's answer in an attribution sweep: the
// divergent subset replayed against that replica alone.
type ReplicaVerdict struct {
	Index    int             `json:"index"`
	Addr     string          `json:"addr"`
	Diverged bool            `json:"diverged"`
	Report   validate.Report `json:"report"`
	Err      string          `json:"err,omitempty"`
}

// Alert is the structured incident record raised on a divergent round.
// Replaying Indices of the named suite against the fleet reproduces
// the divergence (while it persists); Seed and Round re-derive Indices
// from the sentinel configuration alone.
type Alert struct {
	Time    time.Time       `json:"time"`
	Round   uint64          `json:"round"`
	Seed    int64           `json:"seed"`
	Suite   string          `json:"suite"`
	Indices []int           `json:"indices"`
	Report  validate.Report `json:"report"`
	// Attribution holds the per-replica sweep verdicts, one per replica
	// that was healthy when the round diverged.
	Attribution []ReplicaVerdict `json:"attribution"`
	// Quarantined names the replicas this alert pulled from the
	// rotation.
	Quarantined []string `json:"quarantined"`
	// FleetWide is set when every answering replica diverged: the fault
	// is upstream of routing (a poisoned master synced everywhere, or a
	// stale suite), so no replica is quarantined — there would be no
	// clean fleet left to serve.
	FleetWide bool `json:"fleet_wide"`
}

// RoundResult summarises one sentinel round for OnRound and /status.
type RoundResult struct {
	Round   uint64          `json:"round"`
	Time    time.Time       `json:"time"`
	Seed    int64           `json:"seed"`
	Indices []int           `json:"indices"`
	Report  validate.Report `json:"report"`
	Err     string          `json:"err,omitempty"`
	Alerted bool            `json:"alerted"`
}

// Sentinel is the continuous fleet-validation daemon. Create with New,
// drive with Run (or RunRound for one synchronous round), observe with
// Handler/Status.
type Sentinel struct {
	cfg    Config
	syncCh chan struct{}

	mu           sync.Mutex
	rounds       uint64
	passes       uint64
	fails        uint64
	errors       uint64
	queries      uint64
	alertsTotal  uint64
	readmissions uint64
	deliveries   uint64 // webhook POSTs accepted by Config.AlertURL
	deliveryFail uint64 // webhook deliveries dropped after the attempt budget
	last         *RoundResult
	alerts       []Alert // ring of the most recent cfg.History alerts
}

// New builds a Sentinel over the suite and fleet, applying defaults.
func New(cfg Config) (*Sentinel, error) {
	if cfg.Suite == nil {
		return nil, fmt.Errorf("sentinel: config needs a Suite")
	}
	if cfg.Fleet == nil {
		return nil, fmt.Errorf("sentinel: config needs a Fleet")
	}
	if cfg.Suite.Len() == 0 {
		return nil, fmt.Errorf("sentinel: suite %q has no tests", cfg.Suite.Name)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.Sample <= 0 {
		cfg.Sample = 16
	}
	if cfg.Sample > cfg.Suite.Len() {
		cfg.Sample = cfg.Suite.Len()
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 4
	}
	if cfg.History <= 0 {
		cfg.History = 32
	}
	return &Sentinel{cfg: cfg, syncCh: make(chan struct{}, 1)}, nil
}

// logf forwards to cfg.Logf when set.
func (s *Sentinel) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// NotifySync requests an immediate out-of-schedule round — the hook to
// call after a hot parameter sync (Server.SyncParamsFrom), so the
// fleet is re-validated right away instead of waiting out the
// interval. Coalesces: at most one extra round is pending at a time.
// Safe from any goroutine.
func (s *Sentinel) NotifySync() {
	select {
	case s.syncCh <- struct{}{}:
	default:
	}
}

// Run drives rounds until ctx is cancelled: one immediately, then one
// per Interval tick or NotifySync nudge, each followed by a
// readmission pass over the quarantined replicas. Returns ctx.Err().
func (s *Sentinel) Run(ctx context.Context) error {
	ticker := time.NewTicker(s.cfg.Interval) //detlint:allow walltime(round pacing ticker is the sentinel contract; round CONTENT is seeded by roundSeed, not the clock)
	defer ticker.Stop()
	s.tick(ctx)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			s.tick(ctx)
		case <-s.syncCh:
			s.tick(ctx)
		}
	}
}

// tick is one scheduled step: a validation round, then a readmission
// pass, then the OnRound callback.
func (s *Sentinel) tick(ctx context.Context) {
	res := s.RunRound(ctx)
	s.RunReadmissions(ctx)
	if s.cfg.OnRound != nil {
		s.cfg.OnRound(res)
	}
}

// roundSeed derives round r's sampling seed from the configured seed —
// a splitmix-style mix, so consecutive rounds draw unrelated
// permutations while any round is reproducible from (Seed, r) alone.
func (s *Sentinel) roundSeed(r uint64) int64 {
	z := uint64(s.cfg.Seed) ^ (r * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// sampleIndices draws the round's test subset: a Sample-sized prefix
// of the seeded permutation of the suite, sorted ascending so the
// replay walks the suite in order and an alert's index list reads like
// the suite.
func (s *Sentinel) sampleIndices(seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	idx := append([]int(nil), rng.Perm(s.cfg.Suite.Len())[:s.cfg.Sample]...)
	sort.Ints(idx)
	return idx
}

// RunRound runs one validation round synchronously: sample, paced
// replay against the fleet, and on divergence the attribution sweep,
// quarantine and alert. Returns the round summary (also delivered to
// OnRound when driven by Run).
func (s *Sentinel) RunRound(ctx context.Context) RoundResult {
	s.mu.Lock()
	s.rounds++
	round := s.rounds
	s.mu.Unlock()

	seed := s.roundSeed(round)
	indices := s.sampleIndices(seed)
	res := RoundResult{Round: round, Time: time.Now(), Seed: seed, Indices: indices} //detlint:allow walltime(observability timestamp on the round record; excluded from divergence decisions)

	sub, err := s.cfg.Suite.Subset(indices)
	if err == nil {
		res.Report, err = s.pacedReplay(ctx, sub, s.cfg.Fleet)
	}
	s.mu.Lock()
	switch {
	case err != nil:
		s.errors++
		res.Err = err.Error()
	case res.Report.Passed:
		s.passes++
	default:
		s.fails++
	}
	s.mu.Unlock()

	if err != nil {
		s.logf("sentinel: round %d: replay error: %v", round, err)
	} else if !res.Report.Passed {
		alert := s.raiseAlert(ctx, round, seed, indices, res.Report)
		res.Alerted = true
		s.logf("sentinel: round %d: DIVERGENCE %s — quarantined %v (fleet-wide=%v)",
			round, res.Report, alert.Quarantined, alert.FleetWide)
	} else {
		s.logf("sentinel: round %d: pass (%d tests)", round, res.Report.Total)
	}

	s.mu.Lock()
	r := res
	s.last = &r
	s.mu.Unlock()
	return res
}

// raiseAlert runs the attribution sweep for a divergent round,
// quarantines the divergent replicas (unless the divergence is
// fleet-wide), records the alert and invokes OnAlert.
func (s *Sentinel) raiseAlert(ctx context.Context, round uint64, seed int64, indices []int, rep validate.Report) Alert {
	alert := Alert{
		Time:    time.Now(), //detlint:allow walltime(observability timestamp on the alert record; excluded from divergence decisions)
		Round:   round,
		Seed:    seed,
		Suite:   s.cfg.Suite.Name,
		Indices: indices,
		Report:  rep,
	}
	sub, err := s.cfg.Suite.Subset(indices)
	if err == nil {
		alert.Attribution, alert.FleetWide = s.attribute(ctx, sub)
	}
	for _, v := range alert.Attribution {
		if !v.Diverged || alert.FleetWide {
			continue
		}
		reason := fmt.Sprintf("diverged on %d/%d tests of suite %q (round %d, seed %d, first at subset index %d)",
			v.Report.Mismatches, v.Report.Total, s.cfg.Suite.Name, round, seed, v.Report.FirstFailure)
		if qerr := s.cfg.Fleet.Quarantine(v.Index, reason); qerr == nil {
			alert.Quarantined = append(alert.Quarantined, v.Addr)
		}
	}
	s.mu.Lock()
	s.alertsTotal++
	s.alerts = append(s.alerts, alert)
	if len(s.alerts) > s.cfg.History {
		s.alerts = s.alerts[len(s.alerts)-s.cfg.History:]
	}
	s.mu.Unlock()
	if s.cfg.OnAlert != nil {
		s.cfg.OnAlert(alert)
	}
	if s.cfg.AlertURL != "" {
		s.deliverAlert(alert)
	}
	return alert
}

// Alert webhook delivery bounds: a few attempts with doubling backoff,
// so a slow or down receiver costs a bounded pause and a counted drop,
// never a wedged sentinel.
const (
	alertDeliveryAttempts = 3
	alertDeliveryBackoff  = 250 * time.Millisecond
	alertDeliveryTimeout  = 5 * time.Second
)

// alertHTTPClient posts alert webhooks; a package-level client shares
// its connection pool across deliveries.
var alertHTTPClient = &http.Client{Timeout: alertDeliveryTimeout}

// deliverAlert POSTs the alert JSON to Config.AlertURL, retrying with
// capped backoff. Synchronous with the round (like OnAlert): total
// worst-case stall is attempts×timeout plus the backoffs.
func (s *Sentinel) deliverAlert(alert Alert) {
	body, err := json.Marshal(alert)
	if err != nil { // Alert is a plain data record; this cannot happen
		s.logf("sentinel: alert delivery: encode: %v", err)
		return
	}
	backoff := alertDeliveryBackoff
	for attempt := 1; ; attempt++ {
		err = postAlert(s.cfg.AlertURL, body)
		if err == nil {
			s.mu.Lock()
			s.deliveries++
			s.mu.Unlock()
			return
		}
		if attempt >= alertDeliveryAttempts {
			break
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	s.mu.Lock()
	s.deliveryFail++
	s.mu.Unlock()
	s.logf("sentinel: alert delivery to %s dropped after %d attempts: %v", s.cfg.AlertURL, alertDeliveryAttempts, err)
}

// postAlert performs one webhook attempt; any non-2xx status is a
// failure.
func postAlert(url string, body []byte) error {
	resp, err := alertHTTPClient.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("webhook answered %s", resp.Status)
	}
	return nil
}

// attribute replays the divergent subset against each healthy replica
// individually (pinned views, no failover) and reports which replicas
// diverged. fleetWide is true when every replica that answered
// diverged — then the fault is upstream of routing and quarantining
// would empty the fleet for nothing.
func (s *Sentinel) attribute(ctx context.Context, sub *validate.Suite) (verdicts []ReplicaVerdict, fleetWide bool) {
	statuses := s.cfg.Fleet.ReplicaStatuses()
	var diverged, passed int
	for _, st := range statuses {
		if st.State != "healthy" {
			continue
		}
		view, err := s.cfg.Fleet.Replica(st.Index)
		if err != nil {
			continue
		}
		v := ReplicaVerdict{Index: st.Index, Addr: st.Addr}
		v.Report, err = s.pacedReplay(ctx, sub, view)
		if err != nil {
			v.Err = err.Error()
		} else if !v.Report.Passed {
			v.Diverged = true
			diverged++
		} else {
			passed++
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, diverged > 0 && passed == 0
}

// RunReadmissions offers every quarantined replica its re-validation
// probe: a fresh deterministic sample replayed against that replica
// alone, through ShardedIP.TryReadmit so the probe respects the
// half-open backoff schedule and re-dials repaired servers. Run calls
// this after every round; it is exported so callers driving rounds
// manually (RunRound) can drive readmission too.
func (s *Sentinel) RunReadmissions(ctx context.Context) {
	for _, idx := range s.cfg.Fleet.Quarantined() {
		idx := idx
		s.mu.Lock()
		round := s.rounds
		s.mu.Unlock()
		// A distinct seed stream from the validation rounds: readmission
		// probes of round r draw their own sample, still reproducible.
		seed := s.roundSeed(round ^ 0x5EED5EED)
		sub, err := s.cfg.Suite.Subset(s.sampleIndices(seed))
		if err != nil {
			return
		}
		probed, err := s.cfg.Fleet.TryReadmit(idx, func(rep validate.BatchIP) error {
			r, rerr := s.pacedReplay(ctx, sub, rep)
			if rerr != nil {
				return rerr
			}
			if !r.Passed {
				return fmt.Errorf("revalidation still diverges: %s", r)
			}
			return nil
		})
		if !probed {
			continue
		}
		addr := fmt.Sprintf("replica %d", idx)
		if addrs := s.cfg.Fleet.Addrs(); idx < len(addrs) {
			addr = addrs[idx]
		}
		if err != nil {
			s.logf("sentinel: readmission probe of %s failed: %v", addr, err)
			continue
		}
		s.mu.Lock()
		s.readmissions++
		s.mu.Unlock()
		s.logf("sentinel: %s readmitted after passing revalidation", addr)
	}
}

// pacedReplay replays sub against ip in Batch-sized chunks under the
// QPS cap, merging the chunk reports into the report one unpaced
// replay would produce. Respects ctx between chunks.
func (s *Sentinel) pacedReplay(ctx context.Context, sub *validate.Suite, ip validate.IP) (validate.Report, error) {
	n := sub.Len()
	cfg := validate.ReplayConfig{Batch: s.cfg.Batch, Tolerance: s.cfg.Tolerance, Wire: s.cfg.Wire}
	merged := validate.Report{Passed: true, FirstFailure: -1}
	next := time.Now() //detlint:allow walltime(replay pacing baseline; throttles load, never the comparison)
	for start := 0; start < n; start += s.cfg.Batch {
		end := min(start+s.cfg.Batch, n)
		if err := s.pace(ctx, &next, end-start); err != nil {
			return validate.Report{}, err
		}
		chunkIdx := make([]int, end-start)
		for i := range chunkIdx {
			chunkIdx[i] = start + i
		}
		chunk, err := sub.Subset(chunkIdx)
		if err != nil {
			return validate.Report{}, err
		}
		rep, err := chunk.Replay(ip, cfg)
		s.mu.Lock()
		s.queries += uint64(end - start)
		s.mu.Unlock()
		if err != nil {
			return validate.Report{}, err
		}
		merged.Total += rep.Total
		merged.Mismatches += rep.Mismatches
		if rep.FirstFailure >= 0 && merged.FirstFailure < 0 {
			merged.FirstFailure = start + rep.FirstFailure
		}
	}
	merged.Passed = merged.Mismatches == 0
	return merged, nil
}

// pace sleeps until the budget admits the next k queries: a
// token-bucketless next-allowed-time scheme — each chunk books k/QPS
// seconds of budget, and the next chunk waits for the booking to
// mature. Cancellable via ctx.
func (s *Sentinel) pace(ctx context.Context, next *time.Time, k int) error {
	if s.cfg.QPS <= 0 {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	now := time.Now() //detlint:allow walltime(replay pacing: remaining-wait computation against the pacing baseline)
	if wait := next.Sub(now); wait > 0 {
		if ctx == nil {
			time.Sleep(wait)
		} else {
			t := time.NewTimer(wait) //detlint:allow walltime(replay pacing timer; throttles load, never the comparison)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
			}
		}
	} else {
		*next = now // idle budget does not accumulate into bursts
	}
	*next = next.Add(time.Duration(float64(k) / s.cfg.QPS * float64(time.Second)))
	return nil
}
