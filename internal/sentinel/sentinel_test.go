package sentinel

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/train"
	"repro/internal/validate"
)

// The fleet under watch: one small trained network served as n
// bit-identical TCP replicas, plus a sealed suite selected from its
// training distribution — the same fixture shape the validate package
// tests use, rebuilt here because test helpers do not cross packages.

var testNet = sync.OnceValue(func() *nn.Network {
	net := models.Tiny(nn.ReLU, 1, 10, 10, 4, 10, 301)
	ds := data.Digits(150, 10, 10, 302)
	if _, err := train.Fit(net, ds, train.Config{
		Epochs: 5, BatchSize: 16, Optimizer: train.NewAdam(0.003), Seed: 1,
	}); err != nil {
		panic(err)
	}
	return net
})

func testSuite(t *testing.T, n int) *validate.Suite {
	t.Helper()
	network := testNet()
	ds := data.Digits(60, 10, 10, 303)
	res, err := core.SelectFromTraining(network, ds, core.DefaultOptions(n))
	if err != nil {
		t.Fatal(err)
	}
	return validate.BuildSuite("digits", network, res.Tests, validate.ExactOutputs)
}

func testFleet(t *testing.T, n int) ([]*validate.Server, *validate.ShardedIP) {
	t.Helper()
	servers := make([]*validate.Server, n)
	addrs := make([]string, n)
	for i := range servers {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = validate.Serve(l, testNet())
		addrs[i] = servers[i].Addr()
		srv := servers[i]
		t.Cleanup(func() { srv.Close() })
	}
	fleet, err := validate.DialShards(addrs, validate.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fleet.Close() })
	return servers, fleet
}

// poison hot-syncs an attacked parameter snapshot into one server,
// leaving the shared test network clean on return.
func poison(t *testing.T, srv *validate.Server, seed int64) {
	t.Helper()
	network := testNet()
	p, err := attack.RandomNoise(network, 3, 0.5, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	srv.SyncParamsFrom(network)
	p.Revert(network)
}

func TestNewValidatesConfig(t *testing.T) {
	_, fleet := testFleet(t, 1)
	suite := testSuite(t, 4)
	if _, err := New(Config{Fleet: fleet}); err == nil {
		t.Fatal("New accepted a config without a suite")
	}
	if _, err := New(Config{Suite: suite}); err == nil {
		t.Fatal("New accepted a config without a fleet")
	}
	empty := validate.BuildSuite("empty", testNet(), nil, validate.ExactOutputs)
	if _, err := New(Config{Suite: empty, Fleet: fleet}); err == nil {
		t.Fatal("New accepted an empty suite")
	}
	s, err := New(Config{Suite: suite, Fleet: fleet, Sample: 99})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Sample != suite.Len() {
		t.Fatalf("Sample not capped at suite size: %d", s.cfg.Sample)
	}
	if s.cfg.Interval != 30*time.Second || s.cfg.Batch != 4 || s.cfg.History != 32 {
		t.Fatalf("defaults not applied: %+v", s.cfg)
	}
}

// TestDeterministicSampling: the incident-reproducibility contract —
// round r of any sentinel with the same (Seed, Suite, Sample) draws
// the same indices, and the draw is a valid sorted sample.
func TestDeterministicSampling(t *testing.T) {
	_, fleet := testFleet(t, 1)
	suite := testSuite(t, 12)
	mk := func(seed int64) *Sentinel {
		s, err := New(Config{Suite: suite, Fleet: fleet, Sample: 5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b, c := mk(42), mk(42), mk(43)
	for r := uint64(1); r <= 4; r++ {
		ia := a.sampleIndices(a.roundSeed(r))
		ib := b.sampleIndices(b.roundSeed(r))
		if len(ia) != 5 {
			t.Fatalf("round %d sampled %d indices, want 5", r, len(ia))
		}
		seen := map[int]bool{}
		for i, v := range ia {
			if v < 0 || v >= suite.Len() || seen[v] || (i > 0 && ia[i-1] >= v) {
				t.Fatalf("round %d sample invalid: %v", r, ia)
			}
			seen[v] = true
		}
		if !equalInts(ia, ib) {
			t.Fatalf("round %d differs across same-seed sentinels: %v vs %v", r, ia, ib)
		}
		if equalInts(ia, c.sampleIndices(c.roundSeed(r))) {
			t.Fatalf("round %d identical across different seeds", r)
		}
	}
	// Consecutive rounds draw unrelated permutations.
	if equalInts(a.sampleIndices(a.roundSeed(1)), a.sampleIndices(a.roundSeed(2))) {
		t.Fatal("rounds 1 and 2 drew the same sample")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLifecycle drives the whole story synchronously: clean pass, a
// poisoned replica caught and attributed by addr, quarantine with the
// survivors still validating, and readmission after repair.
func TestLifecycle(t *testing.T) {
	servers, fleet := testFleet(t, 3)
	fleet.SetProbeBackoff(20*time.Millisecond, 100*time.Millisecond)
	suite := testSuite(t, 12)
	addrs := fleet.Addrs()

	var alerts []Alert
	s, err := New(Config{
		Suite: suite, Fleet: fleet,
		Sample: 6, Batch: 3, Seed: 7,
		OnAlert: func(a Alert) { alerts = append(alerts, a) },
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	res := s.RunRound(ctx)
	if !res.Report.Passed || res.Alerted || res.Round != 1 {
		t.Fatalf("clean round = %+v", res)
	}
	if res.Seed != s.roundSeed(1) || !equalInts(res.Indices, s.sampleIndices(res.Seed)) {
		t.Fatalf("round result not reproducible from its seed: %+v", res)
	}

	poison(t, servers[1], 77)
	for i := 0; i < 6 && len(alerts) == 0; i++ {
		res = s.RunRound(ctx)
	}
	if len(alerts) != 1 {
		t.Fatalf("poisoned replica raised %d alerts in 6 rounds", len(alerts))
	}
	a := alerts[0]
	if !res.Alerted || a.Round != res.Round || a.Seed != res.Seed {
		t.Fatalf("alert does not match its round: alert=%+v round=%+v", a, res)
	}
	if a.FleetWide {
		t.Fatalf("single poisoned replica reported fleet-wide: %+v", a)
	}
	if len(a.Quarantined) != 1 || a.Quarantined[0] != addrs[1] {
		t.Fatalf("alert quarantined %v, want [%s]", a.Quarantined, addrs[1])
	}
	var attributed bool
	for _, v := range a.Attribution {
		if v.Diverged != (v.Addr == addrs[1]) {
			t.Fatalf("attribution wrong for %s: %+v", v.Addr, v)
		}
		if v.Addr == addrs[1] {
			attributed = true
		}
	}
	if !attributed {
		t.Fatalf("attribution sweep never reached the poisoned replica: %+v", a.Attribution)
	}
	if q := fleet.Quarantined(); len(q) != 1 || q[0] != 1 {
		t.Fatalf("fleet quarantine state = %v", q)
	}
	st := fleet.ReplicaStatuses()[1]
	if st.State != "quarantined" || st.QuarantineReason == "" {
		t.Fatalf("quarantined replica status = %+v", st)
	}

	// Survivors keep validating clean.
	res = s.RunRound(ctx)
	if !res.Report.Passed {
		t.Fatalf("survivor round failed: %+v", res)
	}

	// Still poisoned: the readmission probe must not readmit.
	time.Sleep(30 * time.Millisecond)
	s.RunReadmissions(ctx)
	if len(fleet.Quarantined()) != 1 {
		t.Fatal("poisoned replica readmitted by a failing probe")
	}

	// Repair and readmit.
	servers[1].SyncParamsFrom(testNet())
	deadline := time.Now().Add(10 * time.Second)
	for len(fleet.Quarantined()) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("repaired replica never readmitted")
		}
		time.Sleep(15 * time.Millisecond)
		s.RunReadmissions(ctx)
	}
	if h := fleet.Healthy(); h != 3 {
		t.Fatalf("Healthy = %d after readmission", h)
	}
	status := s.Status()
	if status.Readmissions != 1 || status.AlertsTotal != 1 || status.Fails == 0 || status.Passes == 0 {
		t.Fatalf("counters after lifecycle: %+v", status)
	}
	if res = s.RunRound(ctx); !res.Report.Passed {
		t.Fatalf("full-fleet round after readmission: %+v", res)
	}
}

// TestFleetWideDivergence: when every replica diverges the fault is
// upstream of routing — the alert says so and nobody is quarantined.
func TestFleetWideDivergence(t *testing.T) {
	servers, fleet := testFleet(t, 2)
	suite := testSuite(t, 8)
	var alerts []Alert
	s, err := New(Config{
		Suite: suite, Fleet: fleet, Sample: 4, Batch: 2, Seed: 3,
		OnAlert: func(a Alert) { alerts = append(alerts, a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, srv := range servers {
		poison(t, srv, 88)
	}
	res := s.RunRound(context.Background())
	if res.Report.Passed || !res.Alerted {
		t.Fatalf("poisoned fleet passed: %+v", res)
	}
	if len(alerts) != 1 {
		t.Fatalf("%d alerts", len(alerts))
	}
	a := alerts[0]
	if !a.FleetWide || len(a.Quarantined) != 0 {
		t.Fatalf("fleet-wide alert = %+v", a)
	}
	if h := fleet.Healthy(); h != 2 {
		t.Fatalf("fleet-wide divergence emptied the fleet: Healthy=%d", h)
	}
}

// TestRunAndNotifySync: Run ticks once immediately, NotifySync forces
// an out-of-schedule round, and cancellation stops the daemon.
func TestRunAndNotifySync(t *testing.T) {
	_, fleet := testFleet(t, 2)
	suite := testSuite(t, 8)
	roundCh := make(chan RoundResult, 8)
	s, err := New(Config{
		Suite: suite, Fleet: fleet, Sample: 4, Batch: 2,
		Interval: time.Hour, // only NotifySync can trigger extra rounds
		OnRound:  func(r RoundResult) { roundCh <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()

	wait := func(label string) RoundResult {
		t.Helper()
		select {
		case r := <-roundCh:
			return r
		case <-time.After(10 * time.Second):
			t.Fatalf("%s round never ran", label)
			panic("unreachable")
		}
	}
	first := wait("immediate")
	if first.Round != 1 || !first.Report.Passed {
		t.Fatalf("immediate round = %+v", first)
	}
	s.NotifySync()
	second := wait("notify-sync")
	if second.Round != 2 {
		t.Fatalf("NotifySync round = %+v", second)
	}
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not stop on cancellation")
	}
}

// TestPacing: the QPS cap books wall-clock time between batch
// exchanges — a 4-query round at 50 QPS books 80ms, of which the
// trailing chunk's 40ms wait must actually elapse; unpaced rounds
// must not slow down; cancellation interrupts a pending wait.
func TestPacing(t *testing.T) {
	_, fleet := testFleet(t, 1)
	suite := testSuite(t, 8)
	s, err := New(Config{Suite: suite, Fleet: fleet, Sample: 4, Batch: 2, QPS: 50})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if res := s.RunRound(context.Background()); !res.Report.Passed {
		t.Fatalf("paced round = %+v", res)
	}
	// Chunk 1 runs immediately and books 40ms; chunk 2 waits that out.
	if el := time.Since(t0); el < 35*time.Millisecond {
		t.Fatalf("paced round finished in %v, pacing not applied", el)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := s.RunRound(ctx)
	if res.Err == "" {
		t.Fatalf("cancelled paced round reported no error: %+v", res)
	}
	if st := s.Status(); st.Errors == 0 {
		t.Fatalf("cancelled round not counted as error: %+v", st)
	}
}
