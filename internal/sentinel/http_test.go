package sentinel

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestHandlerObservability scrapes /metrics and /status after a short
// lifecycle (clean round, poisoned round with quarantine) and checks
// the exposition against the sentinel's own counters: Prometheus text
// format 0.0.4, cumulative histogram buckets with +Inf == _count, and
// a JSON snapshot consistent with Status().
func TestHandlerObservability(t *testing.T) {
	servers, fleet := testFleet(t, 2)
	suite := testSuite(t, 8)
	s, err := New(Config{Suite: suite, Fleet: fleet, Sample: 4, Batch: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if res := s.RunRound(ctx); !res.Report.Passed {
		t.Fatalf("clean round = %+v", res)
	}
	poison(t, servers[1], 99)
	for i := 0; i < 5 && len(fleet.Quarantined()) == 0; i++ {
		s.RunRound(ctx)
	}
	if len(fleet.Quarantined()) != 1 {
		t.Fatal("poisoned replica not quarantined")
	}

	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := hs.Client().Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if ctype != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ctype)
	}
	st := s.Status()
	for _, want := range []string{
		fmt.Sprintf("dnnval_sentinel_rounds_total %d", st.Rounds),
		fmt.Sprintf("dnnval_sentinel_verdicts_total{verdict=\"pass\"} %d", st.Passes),
		fmt.Sprintf("dnnval_sentinel_verdicts_total{verdict=\"fail\"} %d", st.Fails),
		fmt.Sprintf("dnnval_sentinel_queries_total %d", st.Queries),
		fmt.Sprintf("dnnval_sentinel_alerts_total %d", st.AlertsTotal),
		"dnnval_sentinel_quarantined 1",
		fmt.Sprintf("dnnval_replica_up{replica=%q} 1", fleet.Addrs()[0]),
		fmt.Sprintf("dnnval_replica_up{replica=%q} 0", fleet.Addrs()[1]),
		fmt.Sprintf("dnnval_replica_quarantined{replica=%q} 1", fleet.Addrs()[1]),
		"# TYPE dnnval_replica_latency_seconds histogram",
	} {
		if !strings.Contains(metrics, want+"\n") && !strings.HasSuffix(metrics, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, metrics)
		}
	}

	// Histogram contract per replica: buckets are cumulative
	// (non-decreasing in le order) and the +Inf bucket equals _count.
	for _, r := range fleet.ReplicaStatuses() {
		q := regexp.QuoteMeta(fmt.Sprintf("%q", r.Addr))
		buckets := regexp.MustCompile(`dnnval_replica_latency_seconds_bucket\{replica=`+q+`,le="[^"]+"\} (\d+)`).
			FindAllStringSubmatch(metrics, -1)
		if len(buckets) == 0 {
			t.Fatalf("no latency buckets for %s", r.Addr)
		}
		prev := int64(-1)
		var last int64
		for _, m := range buckets {
			v, _ := strconv.ParseInt(m[1], 10, 64)
			if v < prev {
				t.Fatalf("bucket series for %s not cumulative: %v", r.Addr, buckets)
			}
			prev, last = v, v
		}
		countRe := regexp.MustCompile(`dnnval_replica_latency_seconds_count\{replica=` + q + `\} (\d+)`)
		cm := countRe.FindStringSubmatch(metrics)
		if cm == nil {
			t.Fatalf("no _count for %s", r.Addr)
		}
		count, _ := strconv.ParseInt(cm[1], 10, 64)
		if last != count {
			t.Fatalf("+Inf bucket %d != _count %d for %s", last, count, r.Addr)
		}
		// Wire bytes are exported per direction and match the status.
		wantRead := fmt.Sprintf("dnnval_replica_wire_bytes_total{replica=%q,direction=\"read\"} %d", r.Addr, r.Wire.BytesRead)
		if !strings.Contains(metrics, wantRead) {
			t.Fatalf("/metrics missing %q", wantRead)
		}
	}

	statusBody, ctype := get("/status")
	if ctype != "application/json" {
		t.Fatalf("/status Content-Type = %q", ctype)
	}
	var decoded Status
	if err := json.Unmarshal([]byte(statusBody), &decoded); err != nil {
		t.Fatalf("/status is not JSON: %v\n%s", err, statusBody)
	}
	if decoded.Suite != suite.Name || decoded.Rounds != st.Rounds || decoded.AlertsTotal != st.AlertsTotal {
		t.Fatalf("/status snapshot = %+v, want counters of %+v", decoded, st)
	}
	if len(decoded.Alerts) != 1 || len(decoded.Alerts[0].Quarantined) != 1 {
		t.Fatalf("/status alerts = %+v", decoded.Alerts)
	}
	if decoded.LastRound == nil || decoded.LastRound.Round != st.Rounds {
		t.Fatalf("/status last_round = %+v", decoded.LastRound)
	}
	if len(decoded.Replicas) != 2 || decoded.Replicas[1].State != "quarantined" {
		t.Fatalf("/status replicas = %+v", decoded.Replicas)
	}
}

// TestAlertHistoryBounded: the alert ring keeps only the configured
// History newest alerts.
func TestAlertHistoryBounded(t *testing.T) {
	servers, fleet := testFleet(t, 1)
	suite := testSuite(t, 6)
	s, err := New(Config{Suite: suite, Fleet: fleet, Sample: 3, Batch: 3, History: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A single-replica fleet diverging is fleet-wide by construction, so
	// nothing is quarantined and every round keeps alerting.
	poison(t, servers[0], 111)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if res := s.RunRound(ctx); !res.Alerted {
			t.Fatalf("round %d did not alert: %+v", i+1, res)
		}
	}
	st := s.Status()
	if st.AlertsTotal != 4 || len(st.Alerts) != 2 {
		t.Fatalf("alerts total=%d kept=%d, want 4/2", st.AlertsTotal, len(st.Alerts))
	}
	if st.Alerts[0].Round != 3 || st.Alerts[1].Round != 4 {
		t.Fatalf("ring kept rounds %d,%d; want 3,4", st.Alerts[0].Round, st.Alerts[1].Round)
	}
	if !st.Alerts[1].FleetWide {
		t.Fatal("single-replica divergence not flagged fleet-wide")
	}
}
