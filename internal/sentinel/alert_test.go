package sentinel

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// TestAlertDelivery pins the webhook contract: a reachable receiver
// gets exactly one POST of the structured Alert JSON and the delivery
// is counted; a receiver that always errors is retried the full budget
// and then counted as a single dropped delivery. Both outcomes must
// surface in Status() and in the /metrics exposition.
func TestAlertDelivery(t *testing.T) {
	_, fleet := testFleet(t, 1)
	suite := testSuite(t, 4)

	var posts atomic.Int64
	var gotBody atomic.Value
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type = %q, want application/json", ct)
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Error(err)
		}
		gotBody.Store(body)
	}))
	defer ok.Close()

	s, err := New(Config{Suite: suite, Fleet: fleet, Sample: 2, Seed: 3, AlertURL: ok.URL})
	if err != nil {
		t.Fatal(err)
	}
	alert := Alert{Round: 7, Seed: 3, Suite: suite.Name, Indices: []int{1, 2}}
	s.deliverAlert(alert)
	if n := posts.Load(); n != 1 {
		t.Fatalf("successful delivery made %d POSTs, want 1", n)
	}
	var back Alert
	if err := json.Unmarshal(gotBody.Load().([]byte), &back); err != nil {
		t.Fatalf("webhook body is not Alert JSON: %v", err)
	}
	if back.Round != alert.Round || back.Suite != alert.Suite || len(back.Indices) != 2 {
		t.Fatalf("webhook got %+v, want round/suite/indices of %+v", back, alert)
	}
	st := s.Status()
	if st.AlertDeliveries != 1 || st.AlertDeliveryFails != 0 {
		t.Fatalf("after success: deliveries=%d fails=%d, want 1/0", st.AlertDeliveries, st.AlertDeliveryFails)
	}

	// Failing receiver: every attempt answers 500, so the retry budget
	// is spent and the drop is counted — the sentinel never wedges.
	var fails atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fails.Add(1)
		http.Error(w, "no thanks", http.StatusInternalServerError)
	}))
	defer bad.Close()
	var logged strings.Builder
	s2, err := New(Config{Suite: suite, Fleet: fleet, Sample: 2, Seed: 3, AlertURL: bad.URL,
		Logf: func(format string, args ...any) { logged.WriteString(format) }})
	if err != nil {
		t.Fatal(err)
	}
	s2.deliverAlert(alert)
	if n := fails.Load(); n != alertDeliveryAttempts {
		t.Fatalf("failing delivery made %d POSTs, want the full budget of %d", n, alertDeliveryAttempts)
	}
	st2 := s2.Status()
	if st2.AlertDeliveries != 0 || st2.AlertDeliveryFails != 1 {
		t.Fatalf("after failure: deliveries=%d fails=%d, want 0/1", st2.AlertDeliveries, st2.AlertDeliveryFails)
	}
	if !strings.Contains(logged.String(), "dropped") {
		t.Fatalf("dropped delivery not logged: %q", logged.String())
	}

	// Both counters reach the exposition.
	for _, want := range []struct {
		s    *Sentinel
		line string
	}{
		{s, `dnnval_sentinel_alert_deliveries_total{result="delivered"} 1`},
		{s, `dnnval_sentinel_alert_deliveries_total{result="failed"} 0`},
		{s2, `dnnval_sentinel_alert_deliveries_total{result="delivered"} 0`},
		{s2, `dnnval_sentinel_alert_deliveries_total{result="failed"} 1`},
	} {
		if m := want.s.renderMetrics(); !strings.Contains(m, want.line+"\n") {
			t.Fatalf("metrics missing %q", want.line)
		}
	}
}
