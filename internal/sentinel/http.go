package sentinel

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/validate"
)

// Status is the JSON snapshot served at /status: daemon counters, the
// most recent round, the retained alerts (newest last) and every
// replica's routing state.
type Status struct {
	Suite        string  `json:"suite"`
	Interval     string  `json:"interval"`
	Sample       int     `json:"sample"`
	QPS          float64 `json:"qps"`
	Wire         string  `json:"wire"`
	Seed         int64   `json:"seed"`
	Rounds       uint64  `json:"rounds"`
	Passes       uint64  `json:"passes"`
	Fails        uint64  `json:"fails"`
	Errors       uint64  `json:"errors"`
	Queries      uint64  `json:"queries"`
	AlertsTotal  uint64  `json:"alerts_total"`
	Readmissions uint64  `json:"readmissions"`
	// Alert webhook delivery outcomes (Config.AlertURL): POSTs
	// accepted by the receiver, and deliveries dropped after the
	// retry budget.
	AlertDeliveries    uint64                   `json:"alert_deliveries"`
	AlertDeliveryFails uint64                   `json:"alert_delivery_failures"`
	LastRound          *RoundResult             `json:"last_round,omitempty"`
	Alerts             []Alert                  `json:"alerts"`
	Replicas           []validate.ReplicaStatus `json:"replicas"`
}

// Status snapshots the sentinel for /status. Safe for concurrent use.
func (s *Sentinel) Status() Status {
	s.mu.Lock()
	st := Status{
		Suite:              s.cfg.Suite.Name,
		Interval:           s.cfg.Interval.String(),
		Sample:             s.cfg.Sample,
		QPS:                s.cfg.QPS,
		Wire:               s.cfg.Wire.String(),
		Seed:               s.cfg.Seed,
		Rounds:             s.rounds,
		Passes:             s.passes,
		Fails:              s.fails,
		Errors:             s.errors,
		Queries:            s.queries,
		AlertsTotal:        s.alertsTotal,
		Readmissions:       s.readmissions,
		AlertDeliveries:    s.deliveries,
		AlertDeliveryFails: s.deliveryFail,
		Alerts:             append([]Alert(nil), s.alerts...),
	}
	if s.last != nil {
		last := *s.last
		st.LastRound = &last
	}
	s.mu.Unlock()
	st.Replicas = s.cfg.Fleet.ReplicaStatuses()
	if st.Alerts == nil {
		st.Alerts = []Alert{}
	}
	return st
}

// Handler returns the observability endpoints: GET /metrics in
// Prometheus text exposition format 0.0.4 (hand-rolled — the module
// takes no dependencies) and GET /status as a JSON Status snapshot.
func (s *Sentinel) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, s.renderMetrics())
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Status())
	})
	return mux
}

// escapeLabel escapes a Prometheus label value per the text format:
// backslash, double quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// renderMetrics renders the whole exposition. Counters come from the
// sentinel's own tallies and the fleet's per-replica statuses; the
// latency histogram is rendered cumulative per the Prometheus bucket
// contract (each le bucket counts everything at or below its bound,
// +Inf equals _count).
//
// Determinism: the exposition must be byte-identical for identical
// fleet state, so every loop here ranges over the ReplicaStatuses()
// slice, which is filled in ascending replica-index order — never over
// a map (enforced by the detlint maporder analyzer).
func (s *Sentinel) renderMetrics() string {
	s.mu.Lock()
	rounds, passes, fails, errors := s.rounds, s.passes, s.fails, s.errors
	queries, alerts, readmissions := s.queries, s.alertsTotal, s.readmissions
	deliveries, deliveryFail := s.deliveries, s.deliveryFail
	s.mu.Unlock()
	replicas := s.cfg.Fleet.ReplicaStatuses()

	var b strings.Builder
	metric := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	metric("dnnval_sentinel_rounds_total", "Validation rounds run.", "counter")
	fmt.Fprintf(&b, "dnnval_sentinel_rounds_total %d\n", rounds)
	metric("dnnval_sentinel_verdicts_total", "Round verdicts by outcome.", "counter")
	fmt.Fprintf(&b, "dnnval_sentinel_verdicts_total{verdict=\"pass\"} %d\n", passes)
	fmt.Fprintf(&b, "dnnval_sentinel_verdicts_total{verdict=\"fail\"} %d\n", fails)
	fmt.Fprintf(&b, "dnnval_sentinel_verdicts_total{verdict=\"error\"} %d\n", errors)
	metric("dnnval_sentinel_queries_total", "Suite queries the sentinel has spent (validation, attribution and readmission probes).", "counter")
	fmt.Fprintf(&b, "dnnval_sentinel_queries_total %d\n", queries)
	metric("dnnval_sentinel_alerts_total", "Alerts raised on divergent rounds.", "counter")
	fmt.Fprintf(&b, "dnnval_sentinel_alerts_total %d\n", alerts)
	metric("dnnval_sentinel_readmissions_total", "Quarantined replicas readmitted after passing revalidation.", "counter")
	fmt.Fprintf(&b, "dnnval_sentinel_readmissions_total %d\n", readmissions)
	metric("dnnval_sentinel_alert_deliveries_total", "Alert webhook POST outcomes (Config.AlertURL): delivered = accepted by the receiver, failed = dropped after the retry budget.", "counter")
	fmt.Fprintf(&b, "dnnval_sentinel_alert_deliveries_total{result=\"delivered\"} %d\n", deliveries)
	fmt.Fprintf(&b, "dnnval_sentinel_alert_deliveries_total{result=\"failed\"} %d\n", deliveryFail)

	quarantined := 0
	for _, r := range replicas {
		if r.State == "quarantined" {
			quarantined++
		}
	}
	metric("dnnval_sentinel_quarantined", "Replicas currently quarantined.", "gauge")
	fmt.Fprintf(&b, "dnnval_sentinel_quarantined %d\n", quarantined)

	metric("dnnval_replica_up", "1 when the replica is in the rotation, 0 when down or quarantined.", "gauge")
	for _, r := range replicas {
		up := 0
		if r.State == "healthy" {
			up = 1
		}
		fmt.Fprintf(&b, "dnnval_replica_up{replica=%q} %d\n", escapeLabel(r.Addr), up)
	}
	metric("dnnval_replica_quarantined", "1 when the replica is quarantined.", "gauge")
	for _, r := range replicas {
		q := 0
		if r.State == "quarantined" {
			q = 1
		}
		fmt.Fprintf(&b, "dnnval_replica_quarantined{replica=%q} %d\n", escapeLabel(r.Addr), q)
	}
	metric("dnnval_replica_exchanges_total", "Exchanges the replica answered.", "counter")
	for _, r := range replicas {
		fmt.Fprintf(&b, "dnnval_replica_exchanges_total{replica=%q} %d\n", escapeLabel(r.Addr), r.Served)
	}
	metric("dnnval_replica_errors_total", "Transport failures attributed to the replica.", "counter")
	for _, r := range replicas {
		fmt.Fprintf(&b, "dnnval_replica_errors_total{replica=%q} %d\n", escapeLabel(r.Addr), r.Errors)
	}
	metric("dnnval_replica_wire_bytes_total", "Cumulative bytes exchanged with the replica (survives probe re-dials), by direction from the client's perspective.", "counter")
	for _, r := range replicas {
		fmt.Fprintf(&b, "dnnval_replica_wire_bytes_total{replica=%q,direction=\"read\"} %d\n", escapeLabel(r.Addr), r.Wire.BytesRead)
		fmt.Fprintf(&b, "dnnval_replica_wire_bytes_total{replica=%q,direction=\"written\"} %d\n", escapeLabel(r.Addr), r.Wire.BytesWritten)
	}

	metric("dnnval_replica_latency_seconds", "Latency of answered exchanges per replica.", "histogram")
	for _, r := range replicas {
		addr := escapeLabel(r.Addr)
		var cum int64
		for i, bound := range validate.LatencyBucketBounds {
			if i < len(r.LatencyBuckets) {
				cum += r.LatencyBuckets[i]
			}
			fmt.Fprintf(&b, "dnnval_replica_latency_seconds_bucket{replica=%q,le=\"%g\"} %d\n", addr, bound, cum)
		}
		fmt.Fprintf(&b, "dnnval_replica_latency_seconds_bucket{replica=%q,le=\"+Inf\"} %d\n", addr, r.LatencyCount)
		fmt.Fprintf(&b, "dnnval_replica_latency_seconds_sum{replica=%q} %s\n", addr, formatFloat(r.LatencySeconds))
		fmt.Fprintf(&b, "dnnval_replica_latency_seconds_count{replica=%q} %d\n", addr, r.LatencyCount)
	}
	return b.String()
}

// formatFloat renders a float the way Prometheus expects (no
// exponent-less integer ambiguity matters; %g is fine and compact).
func formatFloat(f float64) string { return fmt.Sprintf("%g", f) }
