// Package coverage implements the paper's validation-coverage analysis.
//
// A parameter θ is *activated* by an input x when the gradient of the
// network output with respect to θ is nonzero (Eq. 2) — a perturbation
// of θ then propagates to the output where a black-box IP user can see
// it. For saturating activations (Tanh, Sigmoid) gradients never vanish
// exactly, so activation uses a small threshold ε (paper §IV-A).
//
// The package extracts per-input activation sets in a single backward
// pass seeded with ones over the logits (so the recorded gradients are
// ∇θ Σ_k F_k(x)), accumulates them into union coverage (Eq. 4), and also
// implements the *neuron coverage* criterion of the hardware-testing
// baseline the paper compares against (Tables II/III).
package coverage

import (
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Config controls activation thresholds.
type Config struct {
	// Epsilon is the activation threshold on |∇θ F(x)|. Zero means
	// exact-nonzero, the right setting for ReLU networks.
	Epsilon float64
	// Relative, when set, interprets Epsilon as a fraction of the
	// sample's maximum absolute parameter gradient, making the threshold
	// scale-free across layers and samples; the practical choice for
	// Tanh/Sigmoid networks.
	Relative bool
}

// DefaultConfig returns the appropriate activation test for a network:
// exact-nonzero for ReLU-family activations, and a relative threshold
// for saturating ones. Tanh/Sigmoid gradients almost never vanish
// exactly, so the threshold must be large enough to separate parameters
// that meaningfully influence the output from near-saturated ones; 5e-2
// of the sample's maximum gradient puts training-probe coverage in the
// paper's reported range (≈40-50%% for the MNIST model).
func DefaultConfig(net *nn.Network) Config {
	for _, l := range net.LayerStack {
		if a, ok := l.(*nn.Activate); ok && a.Fn.Saturating() {
			return Config{Epsilon: 5e-2, Relative: true}
		}
	}
	return Config{}
}

// DefaultBatch is the evaluation batch size core's generators use where
// batching pays off by default (input synthesis, whose batched backward
// is input-only and measures ~20% faster): big enough that every
// layer's batched product is a full-size GEMM, small enough that the
// batch's im2col caches stay cache-resident. This package's extractors
// take an explicit batch argument and treat values below 2 as
// per-sample — the right default for activation extraction, whose
// per-sample ∇θ backward dominates its cost. Extraction is
// bit-identical at any batch size, so batch knobs are purely about
// speed.
const DefaultBatch = 16

// ParamActivation returns the set of parameters activated by x: bit i is
// set when |∇θᵢ Σ_k F_k(x)| exceeds the configured threshold. The bitset
// indexes parameters in the network's flat order.
func ParamActivation(net *nn.Network, x *tensor.Tensor, cfg Config) *bitset.Set {
	net.ZeroGrad()
	logits := net.Forward(x)
	net.Backward(nn.OnesLike(logits))
	return gradSet(net, cfg)
}

// gradSet thresholds the gradients currently accumulated in net into an
// activation bitset; the shared tail of the per-sample and batched
// extractors. It walks the gradient slices directly — this runs once
// per candidate, so the per-scalar callback of VisitGrads would be pure
// overhead on the hot loop.
func gradSet(net *nn.Network, cfg Config) *bitset.Set {
	thresh := cfg.Epsilon
	if cfg.Relative {
		maxAbs := 0.0
		for _, p := range net.Params() {
			for _, g := range p.Grad.Data() {
				if a := math.Abs(g); a > maxAbs {
					maxAbs = a
				}
			}
		}
		thresh = cfg.Epsilon * maxAbs
	}

	set := bitset.New(net.NumParams())
	idx := 0
	for _, p := range net.Params() {
		for _, g := range p.Grad.Data() {
			if math.Abs(g) > thresh {
				set.Set(idx)
			}
			idx++
		}
	}
	return set
}

// ParamSets computes the activation set of every sample in ds; the
// precomputation step of the greedy selector (Algorithm 1).
func ParamSets(net *nn.Network, ds *data.Dataset, cfg Config) []*bitset.Set {
	return ParamSetsParallel(net, ds, cfg, 1, 1)
}

// ParamSetsParallel is ParamSets fanned out across workers and batched
// within each worker. Each worker runs on its own clone of net (layers
// cache per-input state, so a network cannot be shared) over contiguous
// batches of up to batch samples: one batched forward pass shares the
// large per-layer GEMMs, then each sample's parameter gradients come out
// of a per-sample backward against the batch caches. Every logits row
// and every gradient is bit-identical to the per-sample path, so the
// result is independent of both workers and batch (batch <= 1 forces the
// per-sample path).
func ParamSetsParallel(net *nn.Network, ds *data.Dataset, cfg Config, workers, batch int) []*bitset.Set {
	return paramSets(net, func(i int) *tensor.Tensor { return ds.Samples[i].X }, ds.Len(), cfg, workers, batch)
}

// ParamSetsOf computes the activation set of each input tensor, fanning
// out across workers and batching within each like ParamSetsParallel.
func ParamSetsOf(net *nn.Network, xs []*tensor.Tensor, cfg Config, workers, batch int) []*bitset.Set {
	return paramSets(net, func(i int) *tensor.Tensor { return xs[i] }, len(xs), cfg, workers, batch)
}

// workerBatches fans [0,n) out across workers (per-worker clones of
// net) and walks each worker's range in contiguous chunks of up to
// batch samples, gathering the chunk's inputs and handing them to fn
// together with the clone. batch <= 1 yields single-sample chunks — the
// per-sample path. The chunking/fallback rules live here once so the
// parameter- and neuron-set extractors cannot drift apart.
func workerBatches(net *nn.Network, input func(int) *tensor.Tensor, n, workers, batch int,
	fn func(clone *nn.Network, xs []*tensor.Tensor, start int)) {
	if batch < 1 {
		batch = 1
	}
	workers = parallel.Effective(n, parallel.Workers(workers))
	run := func(clone *nn.Network, lo, hi int) {
		for start := lo; start < hi; start += batch {
			end := min(start+batch, hi)
			xs := make([]*tensor.Tensor, end-start)
			for j := range xs {
				xs[j] = input(start + j)
			}
			fn(clone, xs, start)
		}
	}
	if workers <= 1 {
		run(net, 0, n)
		// The serial path ran batched passes on the caller's live
		// network; drop the last batch's caches so they don't stay
		// pinned after extraction. (Worker clones just become garbage.)
		if batch > 1 {
			net.ReleaseBatchState()
		}
		return
	}
	clones := workerClones(net, workers)
	parallel.For(n, workers, func(w, lo, hi int) {
		run(clones[w], lo, hi)
	})
}

func paramSets(net *nn.Network, input func(int) *tensor.Tensor, n int, cfg Config, workers, batch int) []*bitset.Set {
	sets := make([]*bitset.Set, n)
	workerBatches(net, input, n, workers, batch, func(clone *nn.Network, xs []*tensor.Tensor, start int) {
		if len(xs) == 1 {
			sets[start] = ParamActivation(clone, xs[0], cfg)
			return
		}
		paramSetsBatch(clone, xs, cfg, sets[start:start+len(xs)])
	})
	return sets
}

// paramSetsBatch extracts the activation set of every input in one
// batched forward pass: per-sample gradients come from BackwardSample
// against the batch caches, which reproduces the per-sample backward
// computation exactly.
func paramSetsBatch(net *nn.Network, xs []*tensor.Tensor, cfg Config, out []*bitset.Set) {
	logits := net.ForwardBatch(tensor.Stack(xs))
	// The ones seed can be shared across samples: no layer mutates the
	// output gradient handed to its backward pass.
	ones := nn.OnesLike(logits.Sample(0))
	for b := range xs {
		net.ZeroGrad()
		net.BackwardSample(b, ones)
		out[b] = gradSet(net, cfg)
	}
}

// workerClones returns one deep copy of net per worker.
func workerClones(net *nn.Network, workers int) []*nn.Network {
	clones := make([]*nn.Network, workers)
	for w := range clones {
		clones[w] = net.Clone()
	}
	return clones
}

// VC returns the validation coverage of a set of test inputs: the
// fraction of parameters activated by at least one of them (Eq. 4).
func VC(net *nn.Network, tests []*tensor.Tensor, cfg Config) float64 {
	acc := NewAccumulator(net.NumParams())
	for _, x := range tests {
		acc.Add(ParamActivation(net, x, cfg))
	}
	return acc.Coverage()
}

// Accumulator tracks union coverage across a growing validation set.
type Accumulator struct {
	covered *bitset.Set
}

// NewAccumulator returns an accumulator over n items (parameters or
// neurons).
func NewAccumulator(n int) *Accumulator {
	return &Accumulator{covered: bitset.New(n)}
}

// Add unions s into the accumulator and returns the number of newly
// covered items (the marginal gain ΔVC·#θ of Eq. 7).
func (a *Accumulator) Add(s *bitset.Set) int {
	gain := s.AndNotCount(a.covered)
	a.covered.UnionWith(s)
	return gain
}

// Gain returns the number of items s would newly cover, without adding.
func (a *Accumulator) Gain(s *bitset.Set) int {
	return s.AndNotCount(a.covered)
}

// Covered returns the current covered count.
func (a *Accumulator) Covered() int { return a.covered.Count() }

// Coverage returns the covered fraction.
func (a *Accumulator) Coverage() float64 { return a.covered.Fraction() }

// Set returns the underlying covered set (not a copy).
func (a *Accumulator) Set() *bitset.Set { return a.covered }

// Clone returns an independent copy of the accumulator.
func (a *Accumulator) Clone() *Accumulator {
	return &Accumulator{covered: a.covered.Clone()}
}

// LayerCoverage is the covered fraction of one parameter tensor.
type LayerCoverage struct {
	Name    string
	Covered int
	Total   int
}

// Fraction returns Covered/Total.
func (lc LayerCoverage) Fraction() float64 {
	if lc.Total == 0 {
		return 0
	}
	return float64(lc.Covered) / float64(lc.Total)
}

// String implements fmt.Stringer.
func (lc LayerCoverage) String() string {
	return fmt.Sprintf("%s: %d/%d (%.1f%%)", lc.Name, lc.Covered, lc.Total, 100*lc.Fraction())
}

// PerParam breaks a covered set down by parameter tensor, for the
// per-layer coverage reports.
func PerParam(net *nn.Network, covered *bitset.Set) []LayerCoverage {
	if covered.Len() != net.NumParams() {
		panic(fmt.Sprintf("coverage: set length %d does not match %d params", covered.Len(), net.NumParams()))
	}
	var out []LayerCoverage
	idx := 0
	for _, p := range net.Params() {
		n := p.W.Size()
		c := 0
		for j := 0; j < n; j++ {
			if covered.Get(idx + j) {
				c++
			}
		}
		out = append(out, LayerCoverage{Name: p.Name, Covered: c, Total: n})
		idx += n
	}
	return out
}
