package coverage

import (
	"math"

	"repro/internal/bitset"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// NeuronConfig controls the neuron-coverage criterion of the
// hardware-testing baseline (Ma et al. [11], DeepXplore [10]): a neuron
// is covered by an input when its activation output exceeds a threshold.
type NeuronConfig struct {
	// Threshold on the activation output. For ReLU-family networks a
	// neuron fires when out > Threshold (0 is the standard choice); for
	// saturating activations when |out| > Threshold.
	Threshold float64
}

// NumNeurons returns the total number of neurons (elements of activation
// layer outputs) the network has for the given input shape.
func NumNeurons(net *nn.Network, inShape []int) int {
	x := tensor.New(inShape...)
	total := 0
	for _, l := range net.LayerStack {
		x = l.Forward(x)
		if _, ok := l.(*nn.Activate); ok {
			total += x.Size()
		}
	}
	return total
}

// NeuronActivation returns the set of neurons x fires, indexed across
// all activation layers in network order.
func NeuronActivation(net *nn.Network, x *tensor.Tensor, cfg NeuronConfig) *bitset.Set {
	// First pass to size the set lazily would double the forward cost;
	// collect outputs, then fill.
	type actOut struct {
		out        *tensor.Tensor
		saturating bool
	}
	var outs []actOut
	cur := x
	for _, l := range net.LayerStack {
		cur = l.Forward(cur)
		if a, ok := l.(*nn.Activate); ok {
			outs = append(outs, actOut{out: cur, saturating: a.Fn.Saturating()})
		}
	}
	total := 0
	for _, o := range outs {
		total += o.out.Size()
	}
	set := bitset.New(total)
	idx := 0
	for _, o := range outs {
		for _, v := range o.out.Data() {
			fired := v > cfg.Threshold
			if o.saturating {
				fired = math.Abs(v) > cfg.Threshold
			}
			if fired {
				set.Set(idx)
			}
			idx++
		}
	}
	return set
}

// NeuronSets computes the neuron-activation set of every sample in ds,
// fanning out across workers with per-worker network clones; the
// precomputation step of the neuron-greedy baseline. Results are
// identical to the serial loop at any worker count.
func NeuronSets(net *nn.Network, ds *data.Dataset, cfg NeuronConfig, workers int) []*bitset.Set {
	sets := make([]*bitset.Set, ds.Len())
	workers = parallel.Effective(ds.Len(), parallel.Workers(workers))
	if workers <= 1 {
		for i, s := range ds.Samples {
			sets[i] = NeuronActivation(net, s.X, cfg)
		}
		return sets
	}
	clones := workerClones(net, workers)
	parallel.For(ds.Len(), workers, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			sets[i] = NeuronActivation(clones[w], ds.Samples[i].X, cfg)
		}
	})
	return sets
}

// NeuronCoverage returns the fraction of neurons fired by at least one
// of the test inputs.
func NeuronCoverage(net *nn.Network, tests []*tensor.Tensor, inShape []int, cfg NeuronConfig) float64 {
	n := NumNeurons(net, inShape)
	acc := NewAccumulator(n)
	for _, x := range tests {
		acc.Add(NeuronActivation(net, x, cfg))
	}
	return acc.Coverage()
}
