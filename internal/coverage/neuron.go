package coverage

import (
	"math"

	"repro/internal/bitset"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// NeuronConfig controls the neuron-coverage criterion of the
// hardware-testing baseline (Ma et al. [11], DeepXplore [10]): a neuron
// is covered by an input when its activation output exceeds a threshold.
type NeuronConfig struct {
	// Threshold on the activation output. For ReLU-family networks a
	// neuron fires when out > Threshold (0 is the standard choice); for
	// saturating activations when |out| > Threshold.
	Threshold float64
}

// NumNeurons returns the total number of neurons (elements of activation
// layer outputs) the network has for the given input shape.
func NumNeurons(net *nn.Network, inShape []int) int {
	x := tensor.New(inShape...)
	total := 0
	for _, l := range net.LayerStack {
		x = l.Forward(x)
		if _, ok := l.(*nn.Activate); ok {
			total += x.Size()
		}
	}
	return total
}

// NeuronActivation returns the set of neurons x fires, indexed across
// all activation layers in network order.
func NeuronActivation(net *nn.Network, x *tensor.Tensor, cfg NeuronConfig) *bitset.Set {
	// First pass to size the set lazily would double the forward cost;
	// collect outputs, then fill.
	type actOut struct {
		out        *tensor.Tensor
		saturating bool
	}
	var outs []actOut
	cur := x
	for _, l := range net.LayerStack {
		cur = l.Forward(cur)
		if a, ok := l.(*nn.Activate); ok {
			outs = append(outs, actOut{out: cur, saturating: a.Fn.Saturating()})
		}
	}
	total := 0
	for _, o := range outs {
		total += o.out.Size()
	}
	set := bitset.New(total)
	idx := 0
	for _, o := range outs {
		idx = fillFired(set, idx, o.out.Data(), o.saturating, cfg)
	}
	return set
}

// fillFired sets one bit per activation value starting at idx and
// returns the index after the last value; the single definition of the
// firing criterion, shared by the per-sample and batched extractors so
// they cannot drift apart.
func fillFired(set *bitset.Set, idx int, vals []float64, saturating bool, cfg NeuronConfig) int {
	for _, v := range vals {
		fired := v > cfg.Threshold
		if saturating {
			fired = math.Abs(v) > cfg.Threshold
		}
		if fired {
			set.Set(idx)
		}
		idx++
	}
	return idx
}

// NeuronSets computes the neuron-activation set of every sample in ds,
// fanning out across workers with per-worker network clones and batching
// within each worker (neuron coverage needs only forward activations, so
// the whole extraction rides the batched forward pass); the
// precomputation step of the neuron-greedy baseline. Results are
// identical to the serial per-sample loop at any worker count and batch
// size (batch <= 1 forces the per-sample path).
func NeuronSets(net *nn.Network, ds *data.Dataset, cfg NeuronConfig, workers, batch int) []*bitset.Set {
	sets := make([]*bitset.Set, ds.Len())
	input := func(i int) *tensor.Tensor { return ds.Samples[i].X }
	workerBatches(net, input, ds.Len(), workers, batch, func(clone *nn.Network, xs []*tensor.Tensor, start int) {
		if len(xs) == 1 {
			sets[start] = NeuronActivation(clone, xs[0], cfg)
			return
		}
		neuronSetsBatch(clone, xs, cfg, sets[start:start+len(xs)])
	})
	return sets
}

// neuronSetsBatch fills out with each input's fired-neuron set from one
// batched forward pass. Batched activations are bit-identical to
// per-sample ones and each sample's bits are filled in the same layer
// and element order as NeuronActivation, so the sets are identical to
// the per-sample path.
func neuronSetsBatch(net *nn.Network, xs []*tensor.Tensor, cfg NeuronConfig, out []*bitset.Set) {
	type actOut struct {
		out        *tensor.Tensor
		saturating bool
	}
	var outs []actOut
	cur := tensor.Stack(xs)
	for _, l := range net.LayerStack {
		cur = l.(nn.BatchLayer).ForwardBatch(cur)
		if a, ok := l.(*nn.Activate); ok {
			outs = append(outs, actOut{out: cur, saturating: a.Fn.Saturating()})
		}
	}
	total := 0
	for _, o := range outs {
		total += o.out.Size() / len(xs)
	}
	for b := range xs {
		set := bitset.New(total)
		idx := 0
		for _, o := range outs {
			idx = fillFired(set, idx, o.out.Sample(b).Data(), o.saturating, cfg)
		}
		out[b] = set
	}
}

// NeuronCoverage returns the fraction of neurons fired by at least one
// of the test inputs.
func NeuronCoverage(net *nn.Network, tests []*tensor.Tensor, inShape []int, cfg NeuronConfig) float64 {
	n := NumNeurons(net, inShape)
	acc := NewAccumulator(n)
	for _, x := range tests {
		acc.Add(NeuronActivation(net, x, cfg))
	}
	return acc.Coverage()
}
