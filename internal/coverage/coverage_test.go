package coverage

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// reluNet builds fc(2→2) → ReLU → fc(2→2) with hand-set weights so the
// activation pattern is fully predictable.
func reluNet(w1, b1, w2, b2 []float64) *nn.Network {
	d1 := nn.NewDense("fc1", 2, 2)
	copy(d1.Weight.W.Data(), w1)
	copy(d1.Bias.W.Data(), b1)
	d2 := nn.NewDense("fc2", 2, 2)
	copy(d2.Weight.W.Data(), w2)
	copy(d2.Bias.W.Data(), b2)
	return nn.NewNetwork(d1, nn.NewActivate("relu", nn.ReLU), d2)
}

func TestParamActivationHandChecked(t *testing.T) {
	// fc1 = identity, fc2 = all-ones. Input (1, -1): hidden pre-act is
	// (1,-1); ReLU kills unit 1. Flat parameter order:
	//   0..3  fc1.W (w00,w01,w10,w11)
	//   4..5  fc1.b
	//   6..9  fc2.W
	//   10..11 fc2.b
	net := reluNet(
		[]float64{1, 0, 0, 1}, []float64{0, 0},
		[]float64{1, 1, 1, 1}, []float64{0, 0},
	)
	x := tensor.FromSlice([]float64{1, -1}, 2)
	set := ParamActivation(net, x, Config{})

	// δ(hidden) = ReLU'(pre) * Wᵀ2 · ones = (2, 0): unit 1 dead.
	// fc1.W grads: row 0 = δ0·x = (2,-2) → activated; row 1 = 0.
	want := map[int]bool{
		0: true, 1: true, // fc1.W row 0
		2: false, 3: false, // fc1.W row 1 (dead unit)
		4: true, 5: false, // fc1.b
		6: true, 7: false, // fc2.W col for dead unit has h=0 → w01 grad = h1 = 0
		8: true, 9: false,
		10: true, 11: true, // output biases always activated
	}
	for i, w := range want {
		if set.Get(i) != w {
			t.Errorf("param %d (%s): activated=%v, want %v", i, net.ParamName(i), set.Get(i), w)
		}
	}
}

func TestParamActivationZeroInput(t *testing.T) {
	// Zero input: first-layer weight gradients are δ·x = 0, so none of
	// fc1.W is activated, but biases still are (if their unit fires).
	net := reluNet(
		[]float64{1, 0, 0, 1}, []float64{1, 1}, // positive biases keep units alive
		[]float64{1, 1, 1, 1}, []float64{0, 0},
	)
	x := tensor.FromSlice([]float64{0, 0}, 2)
	set := ParamActivation(net, x, Config{})
	for i := 0; i < 4; i++ {
		if set.Get(i) {
			t.Errorf("fc1.W[%d] activated by zero input", i)
		}
	}
	if !set.Get(4) || !set.Get(5) {
		t.Error("fc1 biases should be activated (units alive)")
	}
}

func TestParamActivationMatchesNumericPerturbation(t *testing.T) {
	// Ground truth by definition: θ is activated iff perturbing it moves
	// some output. Compare the gradient-based set against central
	// differences on Σ logits for a random tiny ReLU CNN.
	rng := rand.New(rand.NewSource(3))
	net := models.Tiny(nn.ReLU, 1, 6, 6, 2, 3, 31)
	x := tensor.New(1, 6, 6)
	x.FillNormal(rng, 0.5, 0.3)
	x.Clamp(0, 1)

	set := ParamActivation(net, x, Config{})
	const h = 1e-5
	for i := 0; i < net.NumParams(); i++ {
		orig := net.ParamAt(i)
		net.SetParamAt(i, orig+h)
		up := net.Forward(x).Sum()
		net.SetParamAt(i, orig-h)
		down := net.Forward(x).Sum()
		net.SetParamAt(i, orig)
		numGrad := (up - down) / (2 * h)
		wantActive := math.Abs(numGrad) > 1e-7
		if set.Get(i) != wantActive {
			// Tolerate kink-straddling disagreements only when the
			// numeric gradient is tiny.
			if math.Abs(numGrad) > 1e-4 {
				t.Errorf("param %d (%s): set=%v but numeric grad %.3g", i, net.ParamName(i), set.Get(i), numGrad)
			}
		}
	}
}

func TestReLUPartialActivation(t *testing.T) {
	// The phenomenon the paper builds on: a single input activates only
	// part of a trained-size ReLU network's parameters.
	net := models.Small(nn.ReLU, 1, 12, 12, 4, 8, 16, 10, 32)
	ds := data.Digits(5, 12, 12, 33)
	for i, s := range ds.Samples {
		set := ParamActivation(net, s.X, Config{})
		frac := set.Fraction()
		if frac <= 0.05 || frac >= 0.999 {
			t.Errorf("sample %d: activation fraction %.3f, want strictly partial", i, frac)
		}
	}
}

func TestTanhNeedsEpsilon(t *testing.T) {
	net := models.Tiny(nn.Tanh, 1, 8, 8, 3, 10, 34)
	ds := data.Digits(1, 8, 8, 35)
	x := ds.Samples[0].X
	exact := ParamActivation(net, x, Config{})
	// Tanh gradients are almost never exactly zero...
	if exact.Fraction() < 0.99 {
		t.Fatalf("tanh exact-nonzero coverage %.3f, expected ≈1", exact.Fraction())
	}
	// ...so a relative ε must prune the near-saturated ones.
	rel := ParamActivation(net, x, Config{Epsilon: 1e-2, Relative: true})
	if rel.Fraction() >= exact.Fraction() {
		t.Fatalf("relative ε did not reduce coverage: %.3f vs %.3f", rel.Fraction(), exact.Fraction())
	}
}

func TestDefaultConfigPicksByActivation(t *testing.T) {
	relu := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 36)
	tanh := models.Tiny(nn.Tanh, 1, 8, 8, 2, 10, 36)
	if cfg := DefaultConfig(relu); cfg.Epsilon != 0 || cfg.Relative {
		t.Fatalf("ReLU default config = %+v", cfg)
	}
	if cfg := DefaultConfig(tanh); cfg.Epsilon == 0 || !cfg.Relative {
		t.Fatalf("Tanh default config = %+v", cfg)
	}
}

func TestAccumulatorGainAndMonotonicity(t *testing.T) {
	net := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 37)
	ds := data.Digits(10, 8, 8, 38)
	sets := ParamSets(net, ds, Config{})
	acc := NewAccumulator(net.NumParams())
	prev := 0
	for i, s := range sets {
		gain := acc.Gain(s)
		added := acc.Add(s)
		if gain != added {
			t.Fatalf("sample %d: Gain %d != Add %d", i, gain, added)
		}
		if acc.Covered() < prev {
			t.Fatalf("coverage decreased at %d", i)
		}
		if acc.Covered() != prev+added {
			t.Fatalf("covered count inconsistent at %d", i)
		}
		prev = acc.Covered()
	}
	// Re-adding everything gains nothing.
	for _, s := range sets {
		if acc.Add(s) != 0 {
			t.Fatal("re-adding a set should gain 0")
		}
	}
}

func TestVCUnionBound(t *testing.T) {
	// VC of a set of tests is at least the max individual VC and at most
	// their sum (union bound) — and matches the accumulator.
	net := models.Tiny(nn.ReLU, 1, 8, 8, 3, 10, 39)
	ds := data.Digits(6, 8, 8, 40)
	var tests []*tensor.Tensor
	var maxIndividual, sum float64
	for _, s := range ds.Samples {
		tests = append(tests, s.X)
		f := ParamActivation(net, s.X, Config{}).Fraction()
		if f > maxIndividual {
			maxIndividual = f
		}
		sum += f
	}
	vc := VC(net, tests, Config{})
	if vc < maxIndividual-1e-12 {
		t.Fatalf("VC %.4f below max individual %.4f", vc, maxIndividual)
	}
	if vc > sum+1e-12 {
		t.Fatalf("VC %.4f above union bound %.4f", vc, sum)
	}
}

func TestPerParamSumsToTotal(t *testing.T) {
	net := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 41)
	ds := data.Digits(3, 8, 8, 42)
	acc := NewAccumulator(net.NumParams())
	for _, s := range ds.Samples {
		acc.Add(ParamActivation(net, s.X, Config{}))
	}
	per := PerParam(net, acc.Set())
	var covered, total int
	for _, lc := range per {
		covered += lc.Covered
		total += lc.Total
		if lc.Covered > lc.Total {
			t.Fatalf("%s: covered %d > total %d", lc.Name, lc.Covered, lc.Total)
		}
	}
	if covered != acc.Covered() || total != net.NumParams() {
		t.Fatalf("PerParam sums %d/%d, want %d/%d", covered, total, acc.Covered(), net.NumParams())
	}
	if per[0].Name != "conv1.W" {
		t.Fatalf("first param %q", per[0].Name)
	}
}

func TestPerParamLengthMismatchPanics(t *testing.T) {
	net := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 43)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	PerParam(net, bitset.New(3))
}

func TestLayerCoverageString(t *testing.T) {
	lc := LayerCoverage{Name: "conv1.W", Covered: 5, Total: 10}
	if lc.Fraction() != 0.5 {
		t.Fatalf("Fraction = %v", lc.Fraction())
	}
	if got := lc.String(); got != "conv1.W: 5/10 (50.0%)" {
		t.Fatalf("String = %q", got)
	}
	if (LayerCoverage{}).Fraction() != 0 {
		t.Fatal("empty layer coverage should be 0")
	}
}

func TestNumNeurons(t *testing.T) {
	// Tiny: conv(2ch, 8×8 pad 1) → ReLU (2*8*8=128 neurons) → pool → fc.
	net := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 44)
	if got := NumNeurons(net, []int{1, 8, 8}); got != 128 {
		t.Fatalf("NumNeurons = %d, want 128", got)
	}
	// Small has three activation layers.
	sm := models.Small(nn.ReLU, 1, 8, 8, 2, 3, 4, 10, 45)
	want := 2*8*8 + 3*4*4 + 4
	if got := NumNeurons(sm, []int{1, 8, 8}); got != want {
		t.Fatalf("NumNeurons(small) = %d, want %d", got, want)
	}
}

func TestNeuronActivationThreshold(t *testing.T) {
	net := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 46)
	ds := data.Digits(1, 8, 8, 47)
	x := ds.Samples[0].X
	loose := NeuronActivation(net, x, NeuronConfig{Threshold: 0})
	tight := NeuronActivation(net, x, NeuronConfig{Threshold: 0.5})
	if tight.Count() > loose.Count() {
		t.Fatal("higher threshold cannot fire more neurons")
	}
	if loose.Len() != 128 {
		t.Fatalf("neuron set length %d, want 128", loose.Len())
	}
}

func TestNeuronCoverageVsParamCoverage(t *testing.T) {
	// The paper's motivating observation: neuron coverage saturates with
	// far fewer tests than parameter coverage. With a handful of tests,
	// neuron coverage should exceed parameter coverage on a ReLU net.
	net := models.Small(nn.ReLU, 1, 12, 12, 4, 8, 16, 10, 48)
	ds := data.Digits(10, 12, 12, 49)
	var tests []*tensor.Tensor
	for _, s := range ds.Samples {
		tests = append(tests, s.X)
	}
	nc := NeuronCoverage(net, tests, []int{1, 12, 12}, NeuronConfig{})
	pc := VC(net, tests, Config{})
	if nc <= pc {
		t.Fatalf("neuron coverage %.3f should exceed parameter coverage %.3f", nc, pc)
	}
}

func TestNeuronActivationSaturatingUsesAbs(t *testing.T) {
	net := models.Tiny(nn.Tanh, 1, 8, 8, 2, 10, 50)
	ds := data.Digits(1, 8, 8, 51)
	set := NeuronActivation(net, ds.Samples[0].X, NeuronConfig{Threshold: 0.05})
	// Tanh outputs are dense in (-1,1): some neurons must fire through
	// the absolute-value test even with a positive threshold.
	if set.Count() == 0 {
		t.Fatal("no tanh neurons fired; |out| test broken?")
	}
}
