package coverage

import (
	"repro/internal/bitset"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// PinnedExtractor runs activation extraction on a persistent
// parallel.Pool with one network clone pinned to each worker. Where
// ParamSetsParallel clones the network on every call, a PinnedExtractor
// clones once at construction and reuses the clones across all the
// extraction calls of a generator run — the per-call cost drops to the
// fan-out itself. Pool worker identities are stable, so worker w always
// evaluates on clone w with no synchronisation beyond the pool's own.
//
// Extraction results depend only on parameters and inputs, and the pool
// partitions [0,n) exactly as parallel.For does at the pool's worker
// count, so every extraction is bit-identical to
// ParamSetsParallel/ParamSetsOf with workers = pool.Workers().
//
// A PinnedExtractor must only be used from one dispatching goroutine at
// a time (the pool's own discipline).
type PinnedExtractor struct {
	pool   *parallel.Pool
	clones []*nn.Network
	batch  int
}

// NewPinnedExtractor pins one clone of net to every worker of pool.
// batch is the per-worker evaluation batch size (values < 1 mean
// per-sample, like the batch argument of ParamSetsParallel).
func NewPinnedExtractor(net *nn.Network, pool *parallel.Pool, batch int) *PinnedExtractor {
	if batch < 1 {
		batch = 1
	}
	e := &PinnedExtractor{pool: pool, clones: make([]*nn.Network, pool.Workers()), batch: batch}
	// Each worker constructs its own clone on its own goroutine; Clone
	// only reads net, so the concurrent construction is safe.
	pool.Each(func(w int) { e.clones[w] = net.Clone() })
	return e
}

// Sync refreshes every pinned clone's parameters from src, each worker
// touching only its own clone.
func (e *PinnedExtractor) Sync(src *nn.Network) {
	e.pool.Each(func(w int) { e.clones[w].SyncParamsFrom(src) })
}

// ParamSets computes the activation set of every sample in ds on the
// pinned clones; bit-identical to ParamSetsParallel at the pool's
// worker count.
func (e *PinnedExtractor) ParamSets(ds *data.Dataset, cfg Config) []*bitset.Set {
	return e.paramSets(func(i int) *tensor.Tensor { return ds.Samples[i].X }, ds.Len(), cfg)
}

// ParamSetsOf computes the activation set of each input tensor on the
// pinned clones; bit-identical to ParamSetsOf at the pool's worker
// count.
func (e *PinnedExtractor) ParamSetsOf(xs []*tensor.Tensor, cfg Config) []*bitset.Set {
	return e.paramSets(func(i int) *tensor.Tensor { return xs[i] }, len(xs), cfg)
}

func (e *PinnedExtractor) paramSets(input func(int) *tensor.Tensor, n int, cfg Config) []*bitset.Set {
	sets := make([]*bitset.Set, n)
	e.chunks(func(i int) *tensor.Tensor { return input(i) }, n, func(clone *nn.Network, xs []*tensor.Tensor, start int) {
		if len(xs) == 1 {
			sets[start] = ParamActivation(clone, xs[0], cfg)
			return
		}
		paramSetsBatch(clone, xs, cfg, sets[start:start+len(xs)])
	})
	return sets
}

// NeuronSets computes the neuron-activation set of every sample in ds
// on the pinned clones; bit-identical to the spawn-per-call NeuronSets
// at the pool's worker count (each sample's set depends only on
// parameters and input, so the partitioning cannot matter).
func (e *PinnedExtractor) NeuronSets(ds *data.Dataset, cfg NeuronConfig) []*bitset.Set {
	sets := make([]*bitset.Set, ds.Len())
	e.chunks(func(i int) *tensor.Tensor { return ds.Samples[i].X }, ds.Len(), func(clone *nn.Network, xs []*tensor.Tensor, start int) {
		if len(xs) == 1 {
			sets[start] = NeuronActivation(clone, xs[0], cfg)
			return
		}
		neuronSetsBatch(clone, xs, cfg, sets[start:start+len(xs)])
	})
	return sets
}

// chunks fans [0,n) out over the pool's pinned clones and walks each
// worker's range in contiguous chunks of up to the extractor's batch —
// the pinned counterpart of workerBatches, shared by the parameter- and
// neuron-set extractors so their chunking cannot drift apart.
func (e *PinnedExtractor) chunks(input func(int) *tensor.Tensor, n int,
	fn func(clone *nn.Network, xs []*tensor.Tensor, start int)) {
	e.pool.For(n, func(w, lo, hi int) {
		clone := e.clones[w]
		for start := lo; start < hi; start += e.batch {
			end := min(start+e.batch, hi)
			xs := make([]*tensor.Tensor, end-start)
			for j := range xs {
				xs[j] = input(start + j)
			}
			fn(clone, xs, start)
		}
	})
}
