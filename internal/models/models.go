// Package models is the model zoo of the reproduction: the two Table I
// architectures (the Tanh MNIST CNN and the ReLU CIFAR-10 CNN) plus a
// tiny CNN for fast tests. Each architecture takes a width scale so the
// same layer stack can run from laptop-test size up to the paper's full
// widths.
package models

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
)

// Arch describes a Table I style architecture: four 3×3 convolutions
// with pooling after the second and fourth, one hidden dense layer and a
// classifier head.
type Arch struct {
	Name          string
	InC, InH, InW int
	Chans         [4]int // output channels of the four convolutions
	Hidden        int    // width of the hidden dense layer
	Classes       int
	Act           nn.Activation
}

// scaleInt scales a base width, keeping at least min.
func scaleInt(base int, scale float64, min int) int {
	v := int(float64(base)*scale + 0.5)
	if v < min {
		v = min
	}
	return v
}

// MNIST returns the paper's MNIST architecture (Table I, left column):
// Conv 32/32/64/64 + FC128, Tanh activations. scale multiplies all
// widths; h and w set the input size (the paper uses 28×28; the scaled
// experiments use 16×16, which is the smallest this stack supports).
func MNIST(h, w int, scale float64) Arch {
	return Arch{
		Name: "mnist-tanh",
		InC:  1, InH: h, InW: w,
		Chans:   [4]int{scaleInt(32, scale, 2), scaleInt(32, scale, 2), scaleInt(64, scale, 2), scaleInt(64, scale, 2)},
		Hidden:  scaleInt(128, scale, 8),
		Classes: 10,
		Act:     nn.Tanh,
	}
}

// CIFAR returns the paper's CIFAR-10 architecture (Table I, right
// column): Conv 64/64/128/128 + FC512, ReLU activations.
func CIFAR(h, w int, scale float64) Arch {
	return Arch{
		Name: "cifar-relu",
		InC:  3, InH: h, InW: w,
		Chans:   [4]int{scaleInt(64, scale, 2), scaleInt(64, scale, 2), scaleInt(128, scale, 2), scaleInt(128, scale, 2)},
		Hidden:  scaleInt(512, scale, 8),
		Classes: 10,
		Act:     nn.ReLU,
	}
}

// Build constructs and initialises the network. Tanh/Sigmoid stacks get
// Glorot initialisation, ReLU stacks He initialisation, matching
// standard practice for each activation.
func (a Arch) Build(seed int64) (*nn.Network, error) {
	rng := rand.New(rand.NewSource(seed))
	glorot := a.Act.Saturating()

	initConv := func(c *nn.Conv2D) {
		if glorot {
			c.InitGlorot(rng)
		} else {
			c.Init(rng)
		}
	}
	initDense := func(d *nn.Dense) {
		if glorot {
			d.InitGlorot(rng)
		} else {
			d.Init(rng)
		}
	}

	h, w := a.InH, a.InW
	if h < 16 || w < 16 {
		return nil, fmt.Errorf("models: %s needs input at least 16×16, got %d×%d", a.Name, h, w)
	}

	var layers []nn.Layer
	if glorot {
		// Tanh/Sigmoid stacks centre [0,1] pixels to [-1,1], standard
		// preprocessing for saturating activations.
		layers = append(layers, nn.NewScaleShift("center", 2, -1))
	}
	c1 := nn.NewConv2D("conv1", a.InC, h, w, a.Chans[0], 3, 1, 0)
	initConv(c1)
	h, w = h-2, w-2
	layers = append(layers, c1, nn.NewActivate("act1", a.Act))

	c2 := nn.NewConv2D("conv2", a.Chans[0], h, w, a.Chans[1], 3, 1, 0)
	initConv(c2)
	h, w = h-2, w-2
	layers = append(layers, c2, nn.NewActivate("act2", a.Act),
		nn.NewMaxPool2D("pool1", a.Chans[1], h, w, 2, 2))
	h, w = h/2, w/2

	c3 := nn.NewConv2D("conv3", a.Chans[1], h, w, a.Chans[2], 3, 1, 0)
	initConv(c3)
	h, w = h-2, w-2
	layers = append(layers, c3, nn.NewActivate("act3", a.Act))

	c4 := nn.NewConv2D("conv4", a.Chans[2], h, w, a.Chans[3], 3, 1, 0)
	initConv(c4)
	h, w = h-2, w-2
	layers = append(layers, c4, nn.NewActivate("act4", a.Act),
		nn.NewMaxPool2D("pool2", a.Chans[3], h, w, 2, 2))
	h, w = h/2, w/2

	fc1 := nn.NewDense("fc1", a.Chans[3]*h*w, a.Hidden)
	initDense(fc1)
	fc2 := nn.NewDense("fc2", a.Hidden, a.Classes)
	initDense(fc2)
	layers = append(layers, nn.NewFlatten("flat"), fc1, nn.NewActivate("act5", a.Act), fc2)

	return nn.NewNetwork(layers...), nil
}

// Tiny returns a small one-conv-block CNN for fast tests: Conv(ch,3×3,
// pad 1) → act → MaxPool(2) → FC(classes). Input must have even h and w.
func Tiny(act nn.Activation, inC, h, w, ch, classes int, seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	c := nn.NewConv2D("conv1", inC, h, w, ch, 3, 1, 1)
	fc := nn.NewDense("fc", ch*(h/2)*(w/2), classes)
	if act.Saturating() {
		c.InitGlorot(rng)
		fc.InitGlorot(rng)
	} else {
		c.Init(rng)
		fc.Init(rng)
	}
	return nn.NewNetwork(
		c, nn.NewActivate("act1", act),
		nn.NewMaxPool2D("pool1", ch, h, w, 2, 2),
		nn.NewFlatten("flat"), fc,
	)
}

// Small returns a two-conv-block CNN, bigger than Tiny but far smaller
// than the Table I stacks; the workhorse of the scaled experiments when
// geometry below 16×16 is needed. Input h and w must be multiples of 4.
func Small(act nn.Activation, inC, h, w, ch1, ch2, hidden, classes int, seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	glorot := act.Saturating()
	c1 := nn.NewConv2D("conv1", inC, h, w, ch1, 3, 1, 1)
	c2 := nn.NewConv2D("conv2", ch1, h/2, w/2, ch2, 3, 1, 1)
	fc1 := nn.NewDense("fc1", ch2*(h/4)*(w/4), hidden)
	fc2 := nn.NewDense("fc2", hidden, classes)
	for _, l := range []any{c1, c2} {
		c := l.(*nn.Conv2D)
		if glorot {
			c.InitGlorot(rng)
		} else {
			c.Init(rng)
		}
	}
	for _, l := range []any{fc1, fc2} {
		d := l.(*nn.Dense)
		if glorot {
			d.InitGlorot(rng)
		} else {
			d.Init(rng)
		}
	}
	return nn.NewNetwork(
		c1, nn.NewActivate("act1", act),
		nn.NewMaxPool2D("pool1", ch1, h, w, 2, 2),
		c2, nn.NewActivate("act2", act),
		nn.NewMaxPool2D("pool2", ch2, h/2, w/2, 2, 2),
		nn.NewFlatten("flat"), fc1, nn.NewActivate("act3", act), fc2,
	)
}
