package models

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestMNISTArchFullScaleParamCount(t *testing.T) {
	// At scale 1 with 28×28 input the parameter count must match the
	// paper's architecture: conv 32/32/64/64 (3×3) + FC128 + FC10.
	net, err := MNIST(28, 28, 1).Build(1)
	if err != nil {
		t.Fatal(err)
	}
	want := (32*1*9 + 32) + (32*32*9 + 32) + (64*32*9 + 64) + (64*64*9 + 64) +
		(64*4*4*128 + 128) + (128*10 + 10)
	if got := net.NumParams(); got != want {
		t.Fatalf("MNIST params = %d, want %d", got, want)
	}
}

func TestCIFARArchFullScaleParamCount(t *testing.T) {
	net, err := CIFAR(32, 32, 1).Build(1)
	if err != nil {
		t.Fatal(err)
	}
	want := (64*3*9 + 64) + (64*64*9 + 64) + (128*64*9 + 128) + (128*128*9 + 128) +
		(128*5*5*512 + 512) + (512*10 + 10)
	if got := net.NumParams(); got != want {
		t.Fatalf("CIFAR params = %d, want %d", got, want)
	}
}

func TestArchForwardShapes(t *testing.T) {
	cases := []struct {
		arch Arch
		in   []int
	}{
		{MNIST(28, 28, 0.25), []int{1, 28, 28}},
		{MNIST(16, 16, 0.25), []int{1, 16, 16}},
		{CIFAR(32, 32, 0.125), []int{3, 32, 32}},
		{CIFAR(16, 16, 0.125), []int{3, 16, 16}},
	}
	for _, c := range cases {
		net, err := c.arch.Build(2)
		if err != nil {
			t.Fatalf("%s: %v", c.arch.Name, err)
		}
		x := tensor.New(c.in...)
		logits := net.Forward(x)
		if logits.Size() != 10 {
			t.Fatalf("%s: %d logits, want 10", c.arch.Name, logits.Size())
		}
	}
}

func TestArchRejectsTooSmallInput(t *testing.T) {
	if _, err := MNIST(12, 12, 0.5).Build(1); err == nil {
		t.Fatal("12×12 input should be rejected by the 4-conv stack")
	}
}

func TestArchActivations(t *testing.T) {
	mn, err := MNIST(16, 16, 0.25).Build(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range mn.LayerStack {
		if a, ok := l.(*nn.Activate); ok && a.Fn != nn.Tanh {
			t.Fatalf("MNIST model has %v activation, want tanh", a.Fn)
		}
	}
	cf, err := CIFAR(16, 16, 0.25).Build(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range cf.LayerStack {
		if a, ok := l.(*nn.Activate); ok && a.Fn != nn.ReLU {
			t.Fatalf("CIFAR model has %v activation, want relu", a.Fn)
		}
	}
}

func TestBuildDeterministicPerSeed(t *testing.T) {
	a, _ := MNIST(16, 16, 0.25).Build(7)
	b, _ := MNIST(16, 16, 0.25).Build(7)
	for i := 0; i < a.NumParams(); i++ {
		if a.ParamAt(i) != b.ParamAt(i) {
			t.Fatalf("same seed produced different weights at %d", i)
		}
	}
	c, _ := MNIST(16, 16, 0.25).Build(8)
	same := true
	for i := 0; i < a.NumParams() && i < 100; i++ {
		if a.ParamAt(i) != c.ParamAt(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestTinyForwardBackward(t *testing.T) {
	for _, act := range []nn.Activation{nn.ReLU, nn.Tanh} {
		net := Tiny(act, 1, 8, 8, 4, 10, 5)
		x := tensor.New(1, 8, 8)
		logits := net.Forward(x)
		if logits.Size() != 10 {
			t.Fatalf("Tiny(%v) logits %d", act, logits.Size())
		}
		_, d := nn.SoftmaxCrossEntropy(logits, 0)
		dx := net.Backward(d)
		if dx.Size() != 64 {
			t.Fatalf("Tiny(%v) input grad size %d", act, dx.Size())
		}
	}
}

func TestSmallForward(t *testing.T) {
	net := Small(nn.ReLU, 3, 12, 12, 4, 8, 16, 10, 6)
	x := tensor.New(3, 12, 12)
	if got := net.Forward(x).Size(); got != 10 {
		t.Fatalf("Small logits %d", got)
	}
}

func TestScaleIntFloor(t *testing.T) {
	if scaleInt(32, 0.01, 2) != 2 {
		t.Fatal("scaleInt should respect the minimum")
	}
	if scaleInt(32, 0.5, 2) != 16 {
		t.Fatal("scaleInt rounding wrong")
	}
}
