package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(0)
	if s.Len() != 0 || s.Count() != 0 {
		t.Fatalf("empty set: Len=%d Count=%d", s.Len(), s.Count())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	s := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		s.Set(i)
	}
	for _, i := range idx {
		if !s.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if got := s.Count(); got != len(idx) {
		t.Fatalf("Count = %d, want %d", got, len(idx))
	}
	s.Clear(64)
	if s.Get(64) {
		t.Error("bit 64 should be clear")
	}
	if got := s.Count(); got != len(idx)-1 {
		t.Fatalf("Count after clear = %d, want %d", got, len(idx)-1)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			s.Get(i)
		}()
	}
}

func TestUnionWith(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	a.Set(99)
	b.Set(3)
	b.Set(50)
	a.UnionWith(b)
	for _, i := range []int{3, 50, 99} {
		if !a.Get(i) {
			t.Errorf("union missing bit %d", i)
		}
	}
	if a.Count() != 3 {
		t.Fatalf("union count = %d, want 3", a.Count())
	}
}

func TestIntersectDifference(t *testing.T) {
	a, b := New(70), New(70)
	for i := 0; i < 70; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 70; i += 3 {
		b.Set(i)
	}
	inter := a.Clone()
	inter.IntersectWith(b)
	diff := a.Clone()
	diff.DifferenceWith(b)
	for i := 0; i < 70; i++ {
		wantInter := i%2 == 0 && i%3 == 0
		wantDiff := i%2 == 0 && i%3 != 0
		if inter.Get(i) != wantInter {
			t.Errorf("intersect bit %d = %v, want %v", i, inter.Get(i), wantInter)
		}
		if diff.Get(i) != wantDiff {
			t.Errorf("difference bit %d = %v, want %v", i, diff.Get(i), wantDiff)
		}
	}
}

func TestAndNotCountMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		d := a.Clone()
		d.DifferenceWith(b)
		if got, want := a.AndNotCount(b), d.Count(); got != want {
			t.Fatalf("n=%d AndNotCount=%d, materialized=%d", n, got, want)
		}
		u := a.Clone()
		u.UnionWith(b)
		if got, want := a.UnionCount(b), u.Count(); got != want {
			t.Fatalf("n=%d UnionCount=%d, materialized=%d", n, got, want)
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("UnionWith length mismatch did not panic")
		}
	}()
	a.UnionWith(b)
}

func TestFillAndFraction(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Errorf("Fill(%d): Count=%d", n, s.Count())
		}
		if s.Fraction() != 1 {
			t.Errorf("Fill(%d): Fraction=%v", n, s.Fraction())
		}
		s.Reset()
		if s.Count() != 0 {
			t.Errorf("Reset(%d): Count=%d", n, s.Count())
		}
	}
	if New(0).Fraction() != 0 {
		t.Error("empty set Fraction should be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Get(6) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Get(5) {
		t.Fatal("Clone lost bit 5")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(90), New(90)
	a.Set(1)
	b.Set(1)
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	b.Set(2)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	if a.Equal(New(91)) {
		t.Fatal("different lengths reported equal")
	}
}

func TestForEach(t *testing.T) {
	s := New(200)
	want := []int{0, 63, 64, 150, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Set(3)
	if got := s.String(); got != "bitset{1/10}" {
		t.Fatalf("String = %q", got)
	}
}

// randomSet builds a set of length n with bits chosen by rng, for the
// property tests below.
func randomSet(n int, rng *rand.Rand) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s.Set(i)
		}
	}
	return s
}

func TestQuickUnionCommutative(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%512) + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := randomSet(n, rng), randomSet(n, rng)
		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		return ab.Equal(ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionIdempotent(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%512) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randomSet(n, rng)
		u := a.Clone()
		u.UnionWith(a)
		return u.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInclusionExclusion(t *testing.T) {
	// |a ∪ b| = |a| + |b| - |a ∩ b|
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%512) + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := randomSet(n, rng), randomSet(n, rng)
		inter := a.Clone()
		inter.IntersectWith(b)
		return a.UnionCount(b) == a.Count()+b.Count()-inter.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAndNotComplement(t *testing.T) {
	// |a \ b| + |a ∩ b| = |a|
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%512) + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := randomSet(n, rng), randomSet(n, rng)
		inter := a.Clone()
		inter.IntersectWith(b)
		return a.AndNotCount(b)+inter.Count() == a.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionMonotone(t *testing.T) {
	// coverage never decreases when adding a set
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%512) + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := randomSet(n, rng), randomSet(n, rng)
		before := a.Count()
		a.UnionWith(b)
		return a.Count() >= before && a.Count() >= b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAndNotCount(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a, c := randomSet(1<<16, rng), randomSet(1<<16, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AndNotCount(c)
	}
}

func BenchmarkUnionWith(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a, c := randomSet(1<<16, rng), randomSet(1<<16, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.UnionWith(c)
	}
}
