// Package bitset provides a fixed-size packed bit set used for coverage
// accounting. A Set tracks which of n items (DNN parameters or neurons)
// have been activated; the hot operations are union and "how many bits
// would a union add" (AndNotCount), both of which the greedy selection
// in the test generator calls once per candidate per iteration.
package bitset

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Set is a fixed-length bit set. The zero value is an empty set of length
// zero; use New to create a set of a given length.
type Set struct {
	n     int
	words []uint64
}

// New returns a set of n bits, all clear.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative length %d", n))
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the number of bits in the set (its capacity, not the count
// of set bits).
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is set.
func (s *Set) Get(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// UnionWith sets s = s ∪ t. It panics if the lengths differ.
func (s *Set) UnionWith(t *Set) {
	s.sameLen(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectWith sets s = s ∩ t. It panics if the lengths differ.
func (s *Set) IntersectWith(t *Set) {
	s.sameLen(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// DifferenceWith sets s = s \ t. It panics if the lengths differ.
func (s *Set) DifferenceWith(t *Set) {
	s.sameLen(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// AndNotCount returns |s \ t| without allocating: the number of bits set
// in s that are not set in t. This is the marginal coverage gain used by
// the greedy selector (s = candidate activation set, t = covered set).
func (s *Set) AndNotCount(t *Set) int {
	s.sameLen(t)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w &^ t.words[i])
	}
	return c
}

// UnionCount returns |s ∪ t| without allocating.
func (s *Set) UnionCount(t *Set) int {
	s.sameLen(t)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w | t.words[i])
	}
	return c
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets every bit.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim clears the unused bits of the last word so Count stays exact.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Equal reports whether s and t have the same length and the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

func (s *Set) sameLen(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: length mismatch %d vs %d", s.n, t.n))
	}
}

// Fraction returns Count/Len, the covered fraction. It returns 0 for an
// empty set.
func (s *Set) Fraction() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.Count()) / float64(s.n)
}

// String implements fmt.Stringer with a summary (not the raw bits).
func (s *Set) String() string {
	return fmt.Sprintf("bitset{%d/%d}", s.Count(), s.n)
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}
