package parallel

import "sync"

// Pool is a long-lived worker pool with stable worker identities. Where
// For spawns fresh goroutines on every call, a Pool keeps its workers
// alive between regions: worker w's chunks always execute on the same
// goroutine, one region at a time, so callers may pin per-worker state
// (network clones, scratch buffers) to worker ids and mutate it from
// inside the region without any synchronisation of their own. Pools are
// what the serving runtime and the training loop run on — the spawn
// cost and the per-call state re-setup of For are paid once at pool
// construction instead of once per minibatch or per request.
//
// Dispatch (For, Each) must come from one goroutine at a time; the pool
// serialises nothing between concurrent dispatchers. Close releases the
// workers; dispatching on a closed pool panics.
type Pool struct {
	tasks  []chan poolTask // one channel per worker: pinned dispatch
	done   sync.WaitGroup  // outstanding chunks of the current region
	wg     sync.WaitGroup  // live worker goroutines
	closed bool
}

type poolTask struct {
	fn     func(worker, start, end int)
	worker int
	lo, hi int
}

// NewPool starts a pool of Workers(workers) pinned worker goroutines.
func NewPool(workers int) *Pool {
	workers = Workers(workers)
	p := &Pool{tasks: make([]chan poolTask, workers)}
	for w := range p.tasks {
		// One-deep buffers let the dispatcher enqueue every chunk before
		// any worker must be scheduled, so dispatch never blocks on a
		// busy machine.
		p.tasks[w] = make(chan poolTask, 1)
		p.wg.Add(1)
		go p.worker(p.tasks[w])
	}
	return p
}

func (p *Pool) worker(tasks <-chan poolTask) {
	defer p.wg.Done()
	for t := range tasks {
		t.fn(t.worker, t.lo, t.hi)
		p.done.Done()
	}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return len(p.tasks) }

// For partitions [0,n) exactly as the package-level For does with the
// pool's worker count — Effective(n, Workers()) contiguous non-empty
// chunks, chunk w strictly before chunk w+1 — and runs chunk w on
// pinned worker w. It returns only after every chunk has finished. The
// single-chunk case runs inline on the caller's goroutine (worker id 0;
// safe, since worker 0's goroutine is idle while no region is active).
func (p *Pool) For(n int, fn func(worker, start, end int)) {
	if p.closed {
		panic("parallel: For on a closed Pool")
	}
	workers := effective(n, len(p.tasks))
	if workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	activeWorkers.Add(int64(workers))
	defer activeWorkers.Add(-int64(workers))
	base, rem := n/workers, n%workers
	p.done.Add(workers)
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + base
		if w < rem {
			hi++
		}
		p.tasks[w] <- poolTask{fn: fn, worker: w, lo: lo, hi: hi}
		lo = hi
	}
	p.done.Wait()
}

// Each runs fn(w) once on every pinned worker goroutine concurrently
// and returns when all have finished — how per-worker pinned state is
// initialised or refreshed in place (each worker touching only its own
// slot, on its own goroutine).
func (p *Pool) Each(fn func(worker int)) {
	p.For(len(p.tasks), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Close stops the workers and waits for them to exit. It is safe to
// call more than once; dispatching after Close panics.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, c := range p.tasks {
		close(c)
	}
	p.wg.Wait()
}
