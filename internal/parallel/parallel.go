// Package parallel provides the worker-pool primitives shared by the
// tensor, coverage, core and train layers. Everything in the repo that
// fans work out across goroutines goes through For, so the partitioning
// rules (contiguous, ordered, deterministic) are stated once and relied
// on everywhere: chunk w covers indexes strictly before chunk w+1, which
// lets callers merge per-worker results in worker order and obtain the
// same answer as a serial left-to-right scan.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// activeWorkers counts the worker goroutines currently running inside
// multi-worker For regions, machine-wide. Nested fan-out (a batched GEMM
// inside a coverage worker) consults it to size itself to the share of
// the machine that is actually free instead of oversubscribing.
var activeWorkers atomic.Int64

// Active returns the number of worker goroutines currently running
// inside multi-worker For regions. Zero means no fan-out is in flight
// and a kernel may use the whole machine.
func Active() int { return int(activeWorkers.Load()) }

// Auto returns the parallelism used when a knob is left at "use the
// whole machine": runtime.NumCPU.
func Auto() int { return runtime.NumCPU() }

// Workers clamps a Parallelism knob to an effective worker count.
// Values below 1 mean serial.
func Workers(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// For partitions [0,n) into exactly Effective(n, workers) contiguous
// non-empty chunks and calls fn(worker, start, end) once per chunk,
// concurrently when more than one worker is effective. Every worker id
// in [0,Effective(n,workers)) runs exactly once — callers pre-size
// per-worker state with Effective and may read every slot after For
// returns — and chunk w covers indexes strictly before chunk w+1. The
// serial case calls fn inline, so the fast path allocates nothing. For
// returns only after every chunk has finished.
func For(n, workers int, fn func(worker, start, end int)) {
	forWorkers(n, workers, fn, true)
}

// ForUncounted is For without registering its workers in the Active
// count. Leaf kernels that size themselves from Active (the tensor GEMM
// family) fan out through it, so concurrently running sibling kernels
// see only the outer worker-pool fan-out — not each other — and each
// computes its stable fair share of the machine.
func ForUncounted(n, workers int, fn func(worker, start, end int)) {
	forWorkers(n, workers, fn, false)
}

func forWorkers(n, workers int, fn func(worker, start, end int), counted bool) {
	workers = effective(n, workers)
	if workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	if counted {
		activeWorkers.Add(int64(workers))
		defer activeWorkers.Add(-int64(workers))
	}
	// Balanced split: base items per worker, the first rem workers take
	// one extra. workers <= n guarantees every chunk is non-empty.
	base, rem := n/workers, n%workers
	var wg sync.WaitGroup
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + base
		if w < rem {
			hi++
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
}

// effective returns the worker count For will actually use for n items:
// never more workers than items, never less than one.
func effective(n, workers int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Effective is the exported form of the clamp For applies, for callers
// that must pre-size per-worker state (network clones, partial sums).
func Effective(n, workers int) int { return effective(n, workers) }
