package parallel

import (
	"sync"
	"testing"
)

// TestPoolMatchesForPartitioning: Pool.For must produce exactly the
// chunks of the package-level For at the same worker count, so pool
// adopters inherit the deterministic-merge guarantees unchanged.
func TestPoolMatchesForPartitioning(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 5, 16, 97} {
			type chunk struct{ w, lo, hi int }
			var mu sync.Mutex
			var got, want []chunk
			p.For(n, func(w, lo, hi int) {
				mu.Lock()
				got = append(got, chunk{w, lo, hi})
				mu.Unlock()
			})
			For(n, workers, func(w, lo, hi int) {
				mu.Lock()
				want = append(want, chunk{w, lo, hi})
				mu.Unlock()
			})
			if len(got) != len(want) {
				t.Fatalf("workers=%d n=%d: pool made %d chunks, For made %d", workers, n, len(got), len(want))
			}
			find := func(cs []chunk, w int) (chunk, bool) {
				for _, c := range cs {
					if c.w == w {
						return c, true
					}
				}
				return chunk{}, false
			}
			for _, wc := range want {
				gc, ok := find(got, wc.w)
				if !ok || gc != wc {
					t.Fatalf("workers=%d n=%d: worker %d chunk %+v, want %+v", workers, n, wc.w, gc, wc)
				}
			}
		}
		p.Close()
	}
}

// TestPoolCoversEveryIndexOnce: across many region shapes, every index
// in [0,n) is visited exactly once.
func TestPoolCoversEveryIndexOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{1, 3, 4, 5, 63, 64, 65} {
		visits := make([]int32, n)
		var mu sync.Mutex
		p.For(n, func(_, lo, hi int) {
			mu.Lock()
			for i := lo; i < hi; i++ {
				visits[i]++
			}
			mu.Unlock()
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

// TestPoolPinnedState: per-worker state mutated without synchronisation
// from inside regions must be safe because worker w always runs on the
// same goroutine. Run under -race this is the load-bearing pinning
// test: if chunks for worker w could land on different goroutines, or
// two regions could overlap, the unsynchronised counters below race.
func TestPoolPinnedState(t *testing.T) {
	const workers, rounds, n = 4, 50, 64
	p := NewPool(workers)
	defer p.Close()
	counts := make([]int, workers) // pinned: worker w touches counts[w] only
	for r := 0; r < rounds; r++ {
		p.For(n, func(w, lo, hi int) {
			counts[w] += hi - lo
		})
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != rounds*n {
		t.Fatalf("pinned counters saw %d items, want %d", total, rounds*n)
	}
}

// TestPoolEach: fn(w) runs exactly once per worker id.
func TestPoolEach(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	seen := make([]int, 3) // pinned per worker
	p.Each(func(w int) { seen[w]++ })
	p.Each(func(w int) { seen[w]++ })
	for w, c := range seen {
		if c != 2 {
			t.Fatalf("worker %d ran Each body %d times, want 2", w, c)
		}
	}
}

// TestPoolActiveCount: a multi-chunk region must register its workers
// in the Active count (nested kernels size themselves from it), and
// deregister on return.
func TestPoolActiveCount(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var inside int
	var mu sync.Mutex
	p.For(8, func(_, _, _ int) {
		mu.Lock()
		if a := Active(); a > inside {
			inside = a
		}
		mu.Unlock()
	})
	if inside != 4 {
		t.Fatalf("Active inside a 4-worker region = %d, want 4", inside)
	}
	if a := Active(); a != 0 {
		t.Fatalf("Active after region = %d, want 0", a)
	}
}

// TestPoolCloseIdempotent: Close twice must not panic or hang.
func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close()
}

// TestPoolForAfterClosePanics documents the misuse contract.
func TestPoolForAfterClosePanics(t *testing.T) {
	p := NewPool(2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("For on a closed pool did not panic")
		}
	}()
	p.For(4, func(_, _, _ int) {})
}

// TestPoolSerialInline: a single-chunk region must run inline on the
// caller's goroutine and touch worker id 0, like For's serial path.
func TestPoolSerialInline(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	ran := false
	p.For(1, func(w, lo, hi int) {
		if w != 0 || lo != 0 || hi != 1 {
			t.Fatalf("serial chunk (%d,%d,%d), want (0,0,1)", w, lo, hi)
		}
		ran = true
	})
	if !ran { // no race possible: inline means same goroutine
		t.Fatal("serial region did not run")
	}
}
