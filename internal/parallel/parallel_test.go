package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, workers := range []int{-1, 0, 1, 2, 3, 8, 2000} {
			hits := make([]int32, n)
			For(n, workers, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestForWorkerIDsDenseAndOrdered(t *testing.T) {
	// 10/6 is the ceil-chunking trap: ceil(10/6)=2 would cover [0,10) in
	// only 5 chunks, starving worker 5. The balanced split must run
	// every effective worker exactly once on a non-empty chunk.
	for _, c := range []struct{ n, workers int }{{100, 7}, {10, 6}, {7, 7}, {9, 4}} {
		eff := Effective(c.n, c.workers)
		lo := make([]int, eff)
		hi := make([]int, eff)
		seen := make([]int32, eff)
		For(c.n, c.workers, func(w, l, h int) {
			atomic.AddInt32(&seen[w], 1)
			lo[w], hi[w] = l, h
		})
		prev := 0
		for w := 0; w < eff; w++ {
			if seen[w] != 1 {
				t.Fatalf("n=%d workers=%d: worker %d ran %d times, want exactly once", c.n, c.workers, w, seen[w])
			}
			if lo[w] != prev {
				t.Fatalf("n=%d workers=%d: worker %d starts at %d, want %d (chunks must be ordered)", c.n, c.workers, w, lo[w], prev)
			}
			if hi[w] <= lo[w] {
				t.Fatalf("n=%d workers=%d: worker %d got empty chunk [%d,%d)", c.n, c.workers, w, lo[w], hi[w])
			}
			prev = hi[w]
		}
		if prev != c.n {
			t.Fatalf("n=%d workers=%d: chunks end at %d, want %d", c.n, c.workers, prev, c.n)
		}
	}
}

func TestForSerialRunsInline(t *testing.T) {
	calls := 0
	For(5, 1, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 5 {
			t.Fatalf("serial chunk = (%d,%d,%d), want (0,0,5)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial path called fn %d times", calls)
	}
}

func TestWorkers(t *testing.T) {
	for _, c := range []struct{ in, want int }{{-3, 1}, {0, 1}, {1, 1}, {4, 4}} {
		if got := Workers(c.in); got != c.want {
			t.Fatalf("Workers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if Auto() < 1 {
		t.Fatal("Auto() < 1")
	}
}

func TestEffective(t *testing.T) {
	for _, c := range []struct{ n, workers, want int }{
		{10, 4, 4}, {3, 8, 3}, {0, 8, 1}, {5, 0, 1},
	} {
		if got := Effective(c.n, c.workers); got != c.want {
			t.Fatalf("Effective(%d,%d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}
