package render

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/tensor"
)

func TestASCIIDimensions(t *testing.T) {
	img := tensor.New(1, 4, 6)
	out := ASCII(img)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4", len(lines))
	}
	for _, l := range lines {
		if len(l) != 6 {
			t.Fatalf("line length %d, want 6", len(l))
		}
	}
}

func TestASCIIIntensityMapping(t *testing.T) {
	img := tensor.FromSlice([]float64{0, 1}, 1, 1, 2)
	out := strings.TrimRight(ASCII(img), "\n")
	if out[0] != ' ' {
		t.Fatalf("zero pixel rendered as %q", out[0])
	}
	if out[1] != '@' {
		t.Fatalf("full pixel rendered as %q", out[1])
	}
}

func TestASCIIClampsOutOfRange(t *testing.T) {
	img := tensor.FromSlice([]float64{-2, 5}, 1, 1, 2)
	out := strings.TrimRight(ASCII(img), "\n")
	if out[0] != ' ' || out[1] != '@' {
		t.Fatalf("out-of-range pixels rendered as %q", out)
	}
}

func TestASCIIColorAverages(t *testing.T) {
	img := tensor.New(3, 1, 1)
	img.Data()[0] = 1 // R bright, G/B dark → mid gray
	out := ASCII(img)
	if out[0] == ' ' || out[0] == '@' {
		t.Fatalf("colour average rendered as extreme %q", out[0])
	}
}

func TestASCIIWrongRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rank-2 tensor accepted")
		}
	}()
	ASCII(tensor.New(4, 4))
}

func TestSideBySideLayout(t *testing.T) {
	a := tensor.New(1, 3, 5)
	b := tensor.New(1, 3, 5)
	out := SideBySide([]string{"real", "synth"}, []*tensor.Tensor{a, b})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // caption + 3 pixel rows
		t.Fatalf("%d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "real") || !strings.Contains(lines[0], "synth") {
		t.Fatalf("caption row %q", lines[0])
	}
}

func TestSideBySideMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched captions accepted")
		}
	}()
	SideBySide([]string{"a"}, nil)
}

func TestSideBySideEmpty(t *testing.T) {
	if SideBySide(nil, nil) != "" {
		t.Fatal("empty input should render empty string")
	}
}

func TestDigitIsRecognizableInk(t *testing.T) {
	// Rendering a real digit should produce both background and stroke
	// characters — a smoke test that ASCII art carries the structure
	// Fig. 4 wants to show.
	ds := data.Digits(1, 16, 16, 1)
	out := ASCII(ds.Samples[0].X)
	if !strings.Contains(out, " ") {
		t.Fatal("no background in digit rendering")
	}
	dark := strings.Count(out, "@") + strings.Count(out, "%") + strings.Count(out, "#")
	if dark < 3 {
		t.Fatalf("only %d bright stroke characters", dark)
	}
}

func TestWritePGM(t *testing.T) {
	img := tensor.FromSlice([]float64{0, 0.5, 1, 0.25}, 1, 2, 2)
	var buf bytes.Buffer
	if err := WritePGM(&buf, img); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if !bytes.HasPrefix(raw, []byte("P5\n2 2\n255\n")) {
		t.Fatalf("bad header: %q", raw[:12])
	}
	pix := raw[len(raw)-4:]
	want := []byte{0, 128, 255, 64}
	for i := range want {
		if pix[i] != want[i] {
			t.Fatalf("pixel %d = %d, want %d", i, pix[i], want[i])
		}
	}
	if err := WritePGM(&buf, tensor.New(3, 2, 2)); err == nil {
		t.Fatal("colour tensor accepted by PGM")
	}
}

func TestWritePPM(t *testing.T) {
	img := tensor.New(3, 1, 2)
	img.Data()[0] = 1 // R of pixel 0
	var buf bytes.Buffer
	if err := WritePPM(&buf, img); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if !bytes.HasPrefix(raw, []byte("P6\n2 1\n255\n")) {
		t.Fatalf("bad header: %q", raw[:12])
	}
	pix := raw[len(raw)-6:]
	if pix[0] != 255 || pix[1] != 0 || pix[2] != 0 {
		t.Fatalf("pixel 0 RGB = %v", pix[:3])
	}
	if err := WritePPM(&buf, tensor.New(1, 2, 2)); err == nil {
		t.Fatal("grayscale tensor accepted by PPM")
	}
}

func TestClampByte(t *testing.T) {
	cases := []struct {
		in   float64
		want byte
	}{{-1, 0}, {0, 0}, {0.5, 128}, {1, 255}, {2, 255}}
	for _, c := range cases {
		if got := clampByte(c.in); got != c.want {
			t.Errorf("clampByte(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}
