// Package render turns image tensors into terminal ASCII art and
// NetPBM files; the reproduction's stand-in for the paper's Fig. 4
// image panel comparing real and synthetic training samples.
package render

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/tensor"
)

// ramp maps intensity 0..1 to characters, darkest to brightest.
const ramp = " .:-=+*#%@"

// grayAt returns the luminance of pixel (i,j) of a [C,H,W] tensor,
// averaging channels for colour images.
func grayAt(t *tensor.Tensor, i, j int) float64 {
	c, h, w := t.Dim(0), t.Dim(1), t.Dim(2)
	// Channel values of one pixel sit h*w apart in CHW layout; the
	// strided kernel folds them in the same ascending-channel order.
	return tensor.SumStrided(t.Data(), i*w+j, h*w, c) / float64(c)
}

// ASCII renders a [C,H,W] image tensor (values in [0,1]) as ASCII art,
// one text row per pixel row.
func ASCII(t *tensor.Tensor) string {
	if t.Rank() != 3 {
		panic(fmt.Sprintf("render: ASCII needs a [C,H,W] tensor, got %v", t.Shape()))
	}
	h, w := t.Dim(1), t.Dim(2)
	var b strings.Builder
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			v := grayAt(t, i, j)
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			idx := int(v * float64(len(ramp)-1))
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SideBySide renders several images on a shared set of text rows,
// separated by a gutter, with a caption line above each column; the
// layout of Fig. 4's real-vs-synthetic panel.
func SideBySide(captions []string, images []*tensor.Tensor) string {
	if len(captions) != len(images) {
		panic(fmt.Sprintf("render: %d captions for %d images", len(captions), len(images)))
	}
	if len(images) == 0 {
		return ""
	}
	blocks := make([][]string, len(images))
	width := make([]int, len(images))
	maxRows := 0
	for i, img := range images {
		blocks[i] = strings.Split(strings.TrimRight(ASCII(img), "\n"), "\n")
		width[i] = img.Dim(2)
		if c := len(captions[i]); c > width[i] {
			width[i] = c
		}
		if len(blocks[i]) > maxRows {
			maxRows = len(blocks[i])
		}
	}
	var b strings.Builder
	for i, cap := range captions {
		fmt.Fprintf(&b, "%-*s", width[i], cap)
		if i < len(captions)-1 {
			b.WriteString("  ")
		}
	}
	b.WriteByte('\n')
	for r := 0; r < maxRows; r++ {
		for i, block := range blocks {
			row := ""
			if r < len(block) {
				row = block[r]
			}
			fmt.Fprintf(&b, "%-*s", width[i], row)
			if i < len(blocks)-1 {
				b.WriteString("  ")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WritePGM writes a [1,H,W] grayscale tensor as a binary PGM (P5) file.
func WritePGM(w io.Writer, t *tensor.Tensor) error {
	if t.Rank() != 3 || t.Dim(0) != 1 {
		return fmt.Errorf("render: PGM needs a [1,H,W] tensor, got %v", t.Shape())
	}
	h, wd := t.Dim(1), t.Dim(2)
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", wd, h); err != nil {
		return err
	}
	buf := make([]byte, h*wd)
	for i, v := range t.Data() {
		buf[i] = clampByte(v)
	}
	_, err := w.Write(buf)
	return err
}

// WritePPM writes a [3,H,W] colour tensor as a binary PPM (P6) file.
func WritePPM(w io.Writer, t *tensor.Tensor) error {
	if t.Rank() != 3 || t.Dim(0) != 3 {
		return fmt.Errorf("render: PPM needs a [3,H,W] tensor, got %v", t.Shape())
	}
	h, wd := t.Dim(1), t.Dim(2)
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", wd, h); err != nil {
		return err
	}
	buf := make([]byte, h*wd*3)
	hw := h * wd
	for i := 0; i < hw; i++ {
		for c := 0; c < 3; c++ {
			buf[i*3+c] = clampByte(t.Data()[c*hw+i])
		}
	}
	_, err := w.Write(buf)
	return err
}

func clampByte(v float64) byte {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return byte(v*255 + 0.5)
}
