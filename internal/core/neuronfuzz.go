package core

import (
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/coverage"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file implements the hardware-testing baseline of Tables II/III:
// test generation that only pursues *neuron* coverage, in the style of
// the combinatorial/fuzzing approaches the paper cites ([10] DeepXplore,
// [11] Ma et al.). Those systems generate tests by mutating seed inputs
// and keeping mutants that fire so-far-uncovered neurons; they do not
// optimise for the parameter coverage the paper shows actually matters.

// MutationConfig controls the fuzzer's input mutations.
type MutationConfig struct {
	// PerSeed is the number of mutants generated per training seed.
	PerSeed int
	// NoiseSigma is the additive Gaussian pixel noise level.
	NoiseSigma float64
	// OcclusionFrac is the side length of the occluded square patch as
	// a fraction of the image side.
	OcclusionFrac float64
}

// DefaultMutationConfig mirrors typical coverage-fuzzing settings.
func DefaultMutationConfig() MutationConfig {
	return MutationConfig{PerSeed: 3, NoiseSigma: 0.25, OcclusionFrac: 0.45}
}

// mutate produces one fuzzed variant of x: brightness jitter plus
// Gaussian noise plus a random occlusion patch — the standard image
// mutation operators of coverage-guided DNN testing.
func mutate(x *tensor.Tensor, mc MutationConfig, rng *rand.Rand) *tensor.Tensor {
	out := x.Clone()
	scale := 0.6 + rng.Float64()*0.8
	out.Scale(scale)
	for i := range out.Data() {
		out.Data()[i] += rng.NormFloat64() * mc.NoiseSigma
	}
	c, h, w := out.Dim(0), out.Dim(1), out.Dim(2)
	ph := int(float64(h) * mc.OcclusionFrac)
	pw := int(float64(w) * mc.OcclusionFrac)
	if ph > 0 && pw > 0 {
		oi := rng.Intn(h - ph + 1)
		oj := rng.Intn(w - pw + 1)
		fill := rng.Float64()
		for ch := 0; ch < c; ch++ {
			for i := oi; i < oi+ph; i++ {
				for j := oj; j < oj+pw; j++ {
					out.Data()[(ch*h+i)*w+j] = fill
				}
			}
		}
	}
	out.Clamp(0, 1)
	return out
}

// NeuronFuzz generates a validation suite the way the neuron-coverage
// baseline does: mutate training seeds and greedily keep the mutants
// that fire the most so-far-uncovered neurons; once neuron coverage
// saturates, fill the budget with random mutants. The Curve records
// *parameter* coverage so the suite can be compared against the
// proposed generators on the metric that predicts detection.
func NeuronFuzz(net *nn.Network, train *data.Dataset, ncfg coverage.NeuronConfig, mc MutationConfig, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	if mc.PerSeed <= 0 {
		return nil, fmt.Errorf("core: PerSeed must be positive, got %d", mc.PerSeed)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	inShape := []int{train.C, train.H, train.W}
	nNeurons := coverage.NumNeurons(net, inShape)

	type candidate struct {
		x     *tensor.Tensor
		label int
		used  bool
	}
	var pool []*candidate
	for _, s := range train.Samples {
		for m := 0; m < mc.PerSeed; m++ {
			pool = append(pool, &candidate{x: mutate(s.X, mc, rng), label: s.Label})
		}
	}
	nsets := make([]*bitset.Set, len(pool))
	for i, c := range pool {
		nsets[i] = coverage.NeuronActivation(net, c.x, ncfg)
	}
	nAcc := coverage.NewAccumulator(nNeurons)
	pAcc := coverage.NewAccumulator(net.NumParams())
	res := &Result{SwitchPoint: -1}

	add := func(i int) {
		pool[i].used = true
		nAcc.Add(nsets[i])
		pAcc.Add(coverage.ParamActivation(net, pool[i].x, opts.Coverage))
		res.add(pool[i].x, pool[i].label, FromSynthesis, pAcc.Coverage())
	}

	for len(res.Tests) < opts.MaxTests {
		best, bestGain := -1, 0
		for i := range pool {
			if pool[i].used {
				continue
			}
			if g := nAcc.Gain(nsets[i]); g > bestGain {
				best, bestGain = i, g
			}
		}
		if best < 0 || bestGain == 0 {
			break // neuron coverage saturated
		}
		add(best)
	}
	for _, i := range rng.Perm(len(pool)) {
		if len(res.Tests) >= opts.MaxTests {
			break
		}
		if !pool[i].used {
			add(i)
		}
	}
	res.Covered = pAcc.Set()
	return res, nil
}
