package core

import (
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/coverage"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// genRuntime is the run-scoped execution state of one generator
// invocation. Without Options.Pool it is a thin dispatcher onto the
// spawn-per-call paths (coverage.ParamSets*, synthesizeBatch). With a
// pool it holds the per-worker pinned clones — one set for activation
// extraction on the full network (whose parameters never change during
// a run, so they are cloned once and never re-synced) and one for
// synthesis (whose target is a fresh residual network every round, so
// the clones are re-synced in place instead of rebuilt) — amortising
// clone construction across all the phases of the run.
type genRuntime struct {
	opts  Options
	net   *nn.Network               // the full network extraction runs on
	ext   *coverage.PinnedExtractor // lazy; only built when extraction happens
	synth []*nn.Network             // lazy pinned synthesis clones
}

func newGenRuntime(net *nn.Network, opts Options) *genRuntime {
	return &genRuntime{opts: opts, net: net}
}

// workers is the fan-out width of this run: the pool's worker count
// when pinned, Options.Parallelism otherwise.
func (rt *genRuntime) workers() int {
	if rt.opts.Pool != nil {
		return rt.opts.Pool.Workers()
	}
	return rt.opts.workers()
}

func (rt *genRuntime) extractor() *coverage.PinnedExtractor {
	if rt.ext == nil {
		rt.ext = coverage.NewPinnedExtractor(rt.net, rt.opts.Pool, rt.opts.extractionBatch())
	}
	return rt.ext
}

// paramSets extracts every training sample's activation set.
func (rt *genRuntime) paramSets(train *data.Dataset) []*bitset.Set {
	if rt.opts.Pool != nil {
		return rt.extractor().ParamSets(train, rt.opts.Coverage)
	}
	return coverage.ParamSetsParallel(rt.net, train, rt.opts.Coverage, rt.opts.workers(), rt.opts.extractionBatch())
}

// neuronSets extracts every training sample's neuron-activation set —
// the precomputation of the neuron-greedy baseline. Like paramSets it
// rides the pinned clones when a pool is set and the spawn-per-call
// path otherwise.
func (rt *genRuntime) neuronSets(train *data.Dataset, ncfg coverage.NeuronConfig) []*bitset.Set {
	if rt.opts.Pool != nil {
		return rt.extractor().NeuronSets(train, ncfg)
	}
	return coverage.NeuronSets(rt.net, train, ncfg, rt.opts.workers(), rt.opts.extractionBatch())
}

// paramSetsOf extracts each input's activation set on the full network.
func (rt *genRuntime) paramSetsOf(xs []*tensor.Tensor) []*bitset.Set {
	if rt.opts.Pool != nil {
		return rt.extractor().ParamSetsOf(xs, rt.opts.Coverage)
	}
	return coverage.ParamSetsOf(rt.net, xs, rt.opts.Coverage, rt.opts.workers(), rt.opts.extractionBatch())
}

// synthesize runs one per-class synthesis round against target (a
// residual network). opts is passed explicitly because rounds may vary
// the Init mode (Gaussian restarts after a dry round) without touching
// the runtime's own options.
func (rt *genRuntime) synthesize(target *nn.Network, inShape []int, classes int, opts Options, rng *rand.Rand) []*tensor.Tensor {
	pool := rt.opts.Pool
	if pool == nil {
		return synthesizeBatch(target, inShape, classes, opts, rng)
	}
	// The rng draws happen serially in class order — the identical
	// stream to the serial per-class loop — before any fan-out.
	xs := make([]*tensor.Tensor, classes)
	for c := range xs {
		xs[c] = synthInit(inShape, opts, rng)
	}
	if parallel.Effective(classes, pool.Workers()) <= 1 {
		runSynth(target, xs, 0, classes, opts)
		return xs
	}
	if rt.synth == nil {
		rt.synth = make([]*nn.Network, pool.Workers())
		pool.Each(func(w int) { rt.synth[w] = target.Clone() })
	} else {
		pool.Each(func(w int) { rt.synth[w].SyncParamsFrom(target) })
	}
	pool.For(classes, func(w, lo, hi int) {
		runSynth(rt.synth[w], xs, lo, hi, opts)
	})
	return xs
}
