package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/coverage"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/train"
)

// trainedDigitsNet returns a small CNN trained on procedural digits,
// cached across tests (training dominates this package's test time).
var trainedDigitsNet = sync.OnceValue(func() *nn.Network {
	net := models.Small(nn.ReLU, 1, 12, 12, 6, 12, 24, 10, 101)
	ds := data.Digits(200, 12, 12, 102)
	if _, err := train.Fit(net, ds, train.Config{
		Epochs: 5, BatchSize: 16, Optimizer: train.NewAdam(0.003), Seed: 1,
	}); err != nil {
		panic(err)
	}
	return net
})

func digitsTrainSet() *data.Dataset { return data.Digits(80, 12, 12, 103) }

func TestOptionsValidation(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	if _, err := SelectFromTraining(net, ds, Options{MaxTests: 0}); err == nil {
		t.Error("MaxTests=0 accepted by SelectFromTraining")
	}
	if _, err := GradientGenerate(net, []int{1, 12, 12}, 0, DefaultOptions(5)); err == nil {
		t.Error("classes=0 accepted by GradientGenerate")
	}
	if _, err := Combined(net, &data.Dataset{Classes: 10}, DefaultOptions(5)); err == nil {
		t.Error("empty training set accepted by Combined")
	}
	if _, err := RandomSelect(net, &data.Dataset{}, DefaultOptions(5)); err == nil {
		t.Error("empty training set accepted by RandomSelect")
	}
	if _, err := NeuronGreedy(net, &data.Dataset{}, coverage.NeuronConfig{}, DefaultOptions(5)); err == nil {
		t.Error("empty training set accepted by NeuronGreedy")
	}
}

func TestSelectGreedyFirstPickIsBestSingle(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	opts := DefaultOptions(1)
	res, err := SelectFromTraining(net, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tests) != 1 {
		t.Fatalf("%d tests, want 1", len(res.Tests))
	}
	// No single training sample may beat the greedy first pick.
	best := res.Curve[0]
	for i, s := range ds.Samples {
		f := coverage.ParamActivation(net, s.X, opts.Coverage).Fraction()
		if f > best+1e-12 {
			t.Fatalf("sample %d coverage %.4f beats greedy first pick %.4f", i, f, best)
		}
	}
}

func TestSelectCurveMonotone(t *testing.T) {
	net := trainedDigitsNet()
	res, err := SelectFromTraining(net, digitsTrainSet(), DefaultOptions(15))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tests) != 15 {
		t.Fatalf("%d tests, want 15", len(res.Tests))
	}
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i] < res.Curve[i-1]-1e-12 {
			t.Fatalf("coverage decreased at %d: %v -> %v", i, res.Curve[i-1], res.Curve[i])
		}
	}
	// Greedy gains must be non-increasing (submodularity of union).
	prevGain := res.Curve[0]
	for i := 1; i < len(res.Curve); i++ {
		gain := res.Curve[i] - res.Curve[i-1]
		if gain > prevGain+1e-9 {
			t.Fatalf("greedy gain increased at %d: %v after %v", i, gain, prevGain)
		}
		prevGain = gain
	}
}

func TestSelectBeatsRandomSelection(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	sel, err := SelectFromTraining(net, ds, DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RandomSelect(net, ds, DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	if sel.FinalCoverage() < rnd.FinalCoverage() {
		t.Fatalf("greedy %.4f below random %.4f", sel.FinalCoverage(), rnd.FinalCoverage())
	}
}

func TestSelectStopOnZeroGain(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	opts := DefaultOptions(ds.Len())
	opts.StopOnZeroGain = true
	res, err := SelectFromTraining(net, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tests) >= ds.Len() {
		t.Skip("training set never saturated; nothing to test")
	}
	// The run stopped because gains hit zero: the full-set coverage must
	// equal what the truncated run achieved.
	full, err := SelectFromTraining(net, ds, DefaultOptions(ds.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if full.FinalCoverage() != res.FinalCoverage() {
		t.Fatalf("early stop lost coverage: %.6f vs %.6f", res.FinalCoverage(), full.FinalCoverage())
	}
}

func TestSelectExhaustsSmallTrainingSet(t *testing.T) {
	net := trainedDigitsNet()
	small := digitsTrainSet().Subset(5)
	res, err := SelectFromTraining(net, small, DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tests) != 5 {
		t.Fatalf("selected %d from a 5-sample set", len(res.Tests))
	}
}

func TestGradientGenerateBasics(t *testing.T) {
	net := trainedDigitsNet()
	opts := DefaultOptions(12)
	opts.Steps = 15
	res, err := GradientGenerate(net, []int{1, 12, 12}, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tests) != 12 {
		t.Fatalf("%d tests, want 12", len(res.Tests))
	}
	// Labels cycle through classes per round.
	for i, l := range res.Labels {
		if l != i%10 {
			t.Fatalf("label[%d] = %d, want %d", i, l, i%10)
		}
	}
	for i, src := range res.Sources {
		if src != FromSynthesis {
			t.Fatalf("source[%d] = %v", i, src)
		}
	}
	// Synthesised inputs stay in the image domain.
	for i, x := range res.Tests {
		for _, v := range x.Data() {
			if v < 0 || v > 1 {
				t.Fatalf("test %d pixel %v outside [0,1]", i, v)
			}
		}
	}
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i] < res.Curve[i-1]-1e-12 {
			t.Fatalf("coverage decreased at %d", i)
		}
	}
}

func TestSynthesizedSamplesClassifyAsTarget(t *testing.T) {
	// On the full trained network, Algorithm 2's samples should mostly
	// be classified as their target class — they are synthetic training
	// samples (paper Fig. 4).
	net := trainedDigitsNet()
	opts := DefaultOptions(10)
	opts.Steps = 40
	rng := rand.New(rand.NewSource(5))
	hits := 0
	for c := 0; c < 10; c++ {
		x := Synthesize(net, []int{1, 12, 12}, c, opts, rng)
		if net.Predict(x) == c {
			hits++
		}
	}
	if hits < 7 {
		t.Fatalf("only %d/10 synthetic samples classified as target", hits)
	}
}

func TestGradientGenerateCoverageGrowsAcrossRounds(t *testing.T) {
	net := trainedDigitsNet()
	opts := DefaultOptions(30)
	opts.Steps = 15
	res, err := GradientGenerate(net, []int{1, 12, 12}, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Round 2 and 3 (residual-driven) must add coverage beyond round 1:
	// the residual retargeting is what keeps Algorithm 2 from stalling.
	if res.Curve[29] <= res.Curve[9] {
		t.Fatalf("no coverage growth after round 1: %.4f -> %.4f", res.Curve[9], res.Curve[29])
	}
}

func TestGradientInitModesDiffer(t *testing.T) {
	net := trainedDigitsNet()
	optsZ := DefaultOptions(5)
	optsZ.Steps = 10
	optsG := optsZ
	optsG.Init = GaussianInit
	optsG.Seed = 9
	rz, err := GradientGenerate(net, []int{1, 12, 12}, 10, optsZ)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := GradientGenerate(net, []int{1, 12, 12}, 10, optsG)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range rz.Tests[0].Data() {
		if rz.Tests[0].Data()[i] != rg.Tests[0].Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("zero and Gaussian init produced identical samples")
	}
}

func TestCombinedSwitchesAndDominates(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	opts := DefaultOptions(25)
	opts.Steps = 15
	comb, err := Combined(net, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(comb.Tests) != 25 {
		t.Fatalf("%d tests, want 25", len(comb.Tests))
	}
	if comb.SwitchPoint < 0 {
		t.Fatal("combined never switched to Algorithm 2 within 25 tests")
	}
	// Provenance must match the switch point.
	for i, src := range comb.Sources {
		wantSynth := i >= comb.SwitchPoint
		if (src == FromSynthesis) != wantSynth {
			t.Fatalf("source[%d] = %v with switch at %d", i, src, comb.SwitchPoint)
		}
	}
	// The combined method should at least match pure training-set
	// selection at the same budget (the paper's Fig. 3 claim).
	sel, err := SelectFromTraining(net, ds, DefaultOptions(25))
	if err != nil {
		t.Fatal(err)
	}
	if comb.FinalCoverage() < sel.FinalCoverage()-0.01 {
		t.Fatalf("combined %.4f well below select %.4f", comb.FinalCoverage(), sel.FinalCoverage())
	}
}

func TestCombinedSmallBudgetMayNeverSwitch(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	opts := DefaultOptions(2)
	opts.Steps = 10
	res, err := Combined(net, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tests) != 2 {
		t.Fatalf("%d tests, want 2", len(res.Tests))
	}
	// With such a small budget the early training samples dominate, so
	// the result should be pure Algorithm 1.
	if res.SwitchPoint == 0 {
		t.Fatal("switched to synthesis before any training sample; switch criterion broken")
	}
}

func TestRandomSelectDeterministicPerSeed(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	a, err := RandomSelect(net, ds, DefaultOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSelect(net, ds, DefaultOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed gave different random selections")
		}
	}
}

func TestNeuronGreedyBudgetAndFill(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	res, err := NeuronGreedy(net, ds, coverage.NeuronConfig{}, DefaultOptions(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tests) != 20 {
		t.Fatalf("%d tests, want 20", len(res.Tests))
	}
	// All from the training set.
	for i, src := range res.Sources {
		if src != FromTraining {
			t.Fatalf("source[%d] = %v", i, src)
		}
	}
	// No duplicate test inputs (fill must respect used flags).
	seen := map[*[0]byte]bool{}
	_ = seen
	ptrs := map[any]bool{}
	for _, x := range res.Tests {
		if ptrs[x] {
			t.Fatal("duplicate sample selected")
		}
		ptrs[x] = true
	}
}

func TestNeuronGreedyParamCoverageBelowCombined(t *testing.T) {
	// The paper's core claim (Tables II/III): at equal budget, neuron
	// coverage suites cover fewer parameters than the proposed method.
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	opts := DefaultOptions(15)
	opts.Steps = 15
	comb, err := Combined(net, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	neu, err := NeuronGreedy(net, ds, coverage.NeuronConfig{}, DefaultOptions(15))
	if err != nil {
		t.Fatal(err)
	}
	if neu.FinalCoverage() > comb.FinalCoverage()+1e-9 {
		t.Fatalf("neuron-greedy param coverage %.4f exceeds combined %.4f", neu.FinalCoverage(), comb.FinalCoverage())
	}
}

func TestSourceString(t *testing.T) {
	if FromTraining.String() != "training" || FromSynthesis.String() != "synthetic" {
		t.Fatal("Source.String mismatch")
	}
}

func TestFinalCoverageEmpty(t *testing.T) {
	if (&Result{}).FinalCoverage() != 0 {
		t.Fatal("empty result coverage should be 0")
	}
}

func TestResidualNetZeroesCoveredParams(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	set := coverage.ParamActivation(net, ds.Samples[0].X, coverage.Config{})
	res := residualNet(net, set)
	for i := 0; i < net.NumParams(); i++ {
		if set.Get(i) {
			if res.ParamAt(i) != 0 {
				t.Fatalf("covered param %d not zeroed", i)
			}
		} else if res.ParamAt(i) != net.ParamAt(i) {
			t.Fatalf("uncovered param %d changed", i)
		}
	}
	// The original network must be untouched.
	if net.NumParams() != res.NumParams() {
		t.Fatal("architecture mismatch")
	}
}
