package core

import (
	"fmt"
	"testing"

	"repro/internal/coverage"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/parallel"
)

// scaleBed is an experiment-scale testbed (the quarter-width Table I
// CIFAR stack on 20×20 colour inputs) for benchmarking the batched
// engine on full-size layers; initialisation only, no training, since
// activation-extraction cost does not depend on the weights being
// trained.
func scaleBed(b *testing.B) (*nn.Network, *data.Dataset) {
	b.Helper()
	net, err := models.CIFAR(20, 20, 0.25).Build(9)
	if err != nil {
		b.Fatal(err)
	}
	return net, data.Objects(64, 20, 20, 42)
}

// BenchmarkScaleParamSetsBatchSweep charts activation extraction across
// evaluation batch sizes at experiment scale; batch=1 is the per-sample
// path.
func BenchmarkScaleParamSetsBatchSweep(b *testing.B) {
	net, ds := scaleBed(b)
	cfg := coverage.DefaultConfig(net)
	for _, batch := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				coverage.ParamSetsParallel(net, ds, cfg, parallel.Auto(), batch)
			}
		})
	}
}

// BenchmarkScaleSynthesisBatchSweep charts Algorithm 2 synthesis across
// evaluation batch sizes at experiment scale, where the input-only
// batched backward pays off most.
func BenchmarkScaleSynthesisBatchSweep(b *testing.B) {
	net, _ := scaleBed(b)
	opts := DefaultOptions(10)
	opts.Steps = 6
	for _, batch := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			opts.Batch = batch
			for i := 0; i < b.N; i++ {
				if _, err := GradientGenerate(net, []int{3, 20, 20}, 10, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
