package core

import (
	"sync"
	"testing"

	"repro/internal/coverage"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// benchBed is a suite-generation testbed big enough that candidate
// evaluation (forward/backward passes over the pool) dominates, shared
// across benchmarks. It reuses the cached trained net of the unit tests
// so the bench-smoke CI job doesn't pay for a second training run.
var benchBed = sync.OnceValue(func() (bed struct {
	net *nn.Network
	ds  *data.Dataset
}) {
	bed.net = trainedDigitsNet()
	bed.ds = data.Digits(160, 12, 12, 200)
	return
})

func benchOpts(n, workers int) Options {
	opts := DefaultOptions(n)
	opts.Seed = 3
	opts.Steps = 8
	opts.Parallelism = workers
	return opts
}

// benchBatchOpts additionally pins the evaluation batch size; batch 1 is
// the per-sample reference path.
func benchBatchOpts(n, workers, batch int) Options {
	opts := benchOpts(n, workers)
	opts.Batch = batch
	return opts
}

// benchSelect measures Algorithm 1 suite generation end to end
// (activation precompute + greedy selection) at a fixed worker count.
func benchSelect(b *testing.B, workers int) {
	bed := benchBed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := SelectFromTraining(bed.net, bed.ds, benchOpts(20, workers))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tests) != 20 {
			b.Fatal("bad suite")
		}
	}
}

// BenchmarkSelectFromTrainingSerial vs ...Parallel is the headline
// serial-vs-parallel comparison for suite generation: run with
// `go test -bench 'SelectFromTraining' ./internal/core/` on a
// multi-core machine and compare ns/op.
func BenchmarkSelectFromTrainingSerial(b *testing.B)   { benchSelect(b, 1) }
func BenchmarkSelectFromTrainingParallel(b *testing.B) { benchSelect(b, parallel.Auto()) }

func benchCombined(b *testing.B, workers int) {
	bed := benchBed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Combined(bed.net, bed.ds, benchOpts(16, workers))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tests) != 16 {
			b.Fatal("bad suite")
		}
	}
}

// BenchmarkCombinedSerial vs ...Parallel covers the full §IV-D pipeline:
// greedy selection, per-round synthesis probes, and the synthesis tail.
func BenchmarkCombinedSerial(b *testing.B)   { benchCombined(b, 1) }
func BenchmarkCombinedParallel(b *testing.B) { benchCombined(b, parallel.Auto()) }

func benchParamSets(b *testing.B, workers, batch int) {
	bed := benchBed()
	cfg := coverage.DefaultConfig(bed.net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets := coverage.ParamSetsParallel(bed.net, bed.ds, cfg, workers, batch)
		if len(sets) != bed.ds.Len() {
			b.Fatal("bad sets")
		}
	}
}

// BenchmarkParamSetsSerial is the fully serial reference (one worker,
// per-sample). The PerSample vs Batched pair is the headline comparison
// for the batched engine on the coverage hot loop — identical
// (whole-machine) worker count, batch 1 vs the default evaluation
// batch; PerSample doubles as the parallel-workers measurement.
func BenchmarkParamSetsSerial(b *testing.B)    { benchParamSets(b, 1, 1) }
func BenchmarkParamSetsPerSample(b *testing.B) { benchParamSets(b, parallel.Auto(), 1) }
func BenchmarkParamSetsBatched(b *testing.B) {
	benchParamSets(b, parallel.Auto(), coverage.DefaultBatch)
}

// BenchmarkParamSetsSerialBatched measures the batched engine without
// worker fan-out: the speedup here is pure GEMM batching.
func BenchmarkParamSetsSerialBatched(b *testing.B) {
	benchParamSets(b, 1, coverage.DefaultBatch)
}

// BenchmarkSelectPerSample vs ...Batched covers Algorithm 1 end to end
// (activation precompute + lazy-greedy selection) at the two batch
// settings.
func BenchmarkSelectPerSample(b *testing.B) {
	benchSelectOpts(b, benchBatchOpts(20, parallel.Auto(), 1))
}
func BenchmarkSelectBatched(b *testing.B) {
	benchSelectOpts(b, benchBatchOpts(20, parallel.Auto(), coverage.DefaultBatch))
}

func benchSelectOpts(b *testing.B, opts Options) {
	bed := benchBed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := SelectFromTraining(bed.net, bed.ds, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tests) != opts.MaxTests {
			b.Fatal("bad suite")
		}
	}
}

// BenchmarkSynthesisPerSample vs ...Batched isolates Algorithm 2's
// gradient-descent loop, whose forward/backward passes fuse into batched
// GEMMs across the per-class inputs.
func BenchmarkSynthesisPerSample(b *testing.B) {
	benchSynthesisOpts(b, benchBatchOpts(20, parallel.Auto(), 1))
}
func BenchmarkSynthesisBatched(b *testing.B) {
	benchSynthesisOpts(b, benchBatchOpts(20, parallel.Auto(), coverage.DefaultBatch))
}

func benchSynthesisOpts(b *testing.B, opts Options) {
	bed := benchBed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := GradientGenerate(bed.net, []int{1, 12, 12}, 10, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tests) != 20 {
			b.Fatal("bad suite")
		}
	}
}

func benchSynthesis(b *testing.B, workers int) {
	bed := benchBed()
	opts := benchOpts(20, workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := GradientGenerate(bed.net, []int{1, 12, 12}, 10, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tests) != 20 {
			b.Fatal("bad suite")
		}
	}
}

// BenchmarkSynthesisSerial vs ...Parallel measures Algorithm 2's
// per-class gradient-descent fan-out.
func BenchmarkSynthesisSerial(b *testing.B)   { benchSynthesis(b, 1) }
func BenchmarkSynthesisParallel(b *testing.B) { benchSynthesis(b, parallel.Auto()) }

// BenchmarkResidualNet tracks the per-round cost of building the
// residual network Algorithm 2 descends on.
func BenchmarkResidualNet(b *testing.B) {
	bed := benchBed()
	covered := coverage.ParamActivation(bed.net, tensor.New(1, 12, 12), coverage.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if net := residualNet(bed.net, covered); net.NumParams() != bed.net.NumParams() {
			b.Fatal("bad residual")
		}
	}
}
