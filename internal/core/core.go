// Package core implements the paper's contribution: functional test
// generation for black-box DNN IP validation.
//
// Three generators are provided, mirroring §IV:
//
//   - SelectFromTraining (Algorithm 1) greedily picks training samples
//     that activate the most currently-unactivated parameters.
//   - GradientGenerate (Algorithm 2) synthesises inputs by gradient
//     descent so they are classified correctly by the *residual*
//     network formed by the still-unactivated parameters, one synthetic
//     sample per class per round.
//   - Combined (§IV-D) runs Algorithm 1 until its marginal coverage per
//     test falls below what Algorithm 2 achieves, then switches.
//
// The neuron-coverage greedy baseline of the hardware-testing literature
// (Ma et al. [11]) and a random-selection baseline complete the set the
// evaluation compares (Tables II/III).
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/coverage"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Source records where a test case came from.
type Source int

// Test case provenance.
const (
	FromTraining Source = iota
	FromSynthesis
)

// String implements fmt.Stringer.
func (s Source) String() string {
	if s == FromTraining {
		return "training"
	}
	return "synthetic"
}

// InitMode selects the starting point of Algorithm 2's input synthesis.
type InitMode int

// Synthesis initialisation modes. The paper initialises with zeros
// (Algorithm 2 line 3); Gaussian is the ablation alternative.
const (
	ZeroInit InitMode = iota
	GaussianInit
)

// Options configures the generators.
type Options struct {
	// MaxTests is Nt, the test budget (Eq. 6).
	MaxTests int
	// Coverage sets the parameter-activation threshold.
	Coverage coverage.Config
	// Eta is Algorithm 2's gradient step size η.
	Eta float64
	// Steps is Algorithm 2's iteration count T.
	Steps int
	// Init selects zero (paper) or Gaussian initialisation.
	Init InitMode
	// Clamp keeps synthesised inputs in [0,1] (the image domain) after
	// each update when true.
	Clamp bool
	// Seed drives Gaussian initialisation and random fill-in.
	Seed int64
	// StopOnZeroGain stops Algorithm 1 early once no candidate adds
	// coverage; off by default so coverage curves span the full budget
	// as in Fig. 3.
	StopOnZeroGain bool
	// Parallelism is the number of worker goroutines candidate
	// evaluation fans out across: activation extraction and per-class
	// synthesis split their work, each worker on its own clone of the
	// network. Values <= 1 run serially. Every parallel path is
	// bit-identical to the serial one for a fixed Seed, so this is
	// purely a speed knob.
	Parallelism int
	// Batch is the evaluation batch size within each worker: activation
	// extraction and synthesis stack up to Batch inputs and run the
	// batched forward/backward engine on them, turning per-sample matrix
	// products into large per-layer GEMMs. Zero selects per-workload
	// defaults — synthesis runs at coverage.DefaultBatch (its batched
	// input-only backward measures ~20% faster), while activation
	// extraction stays per-sample (its per-sample ∇θ backward dominates
	// and measures no win from batching); 1 forces the per-sample path
	// everywhere; larger values apply to both workloads. Batched
	// evaluation is bit-identical to per-sample at any size, so this too
	// is purely a speed knob.
	Batch int
	// Pool, when set, runs the generator fan-outs (activation
	// extraction, per-class synthesis) on this persistent worker pool
	// with per-worker pinned network clones, instead of spawning
	// goroutines and cloning per call — the construction cost of the
	// clones is paid once per run and amortised across every generator
	// phase. The pool's worker count takes the place of Parallelism, and
	// the suite is bit-identical to Parallelism = Pool.Workers() without
	// a pool: pinning is purely a speed knob, like every other knob
	// here. The caller owns the pool (Close it after the run); the
	// generators dispatch on it from one goroutine at a time.
	Pool *parallel.Pool
}

// DefaultOptions returns the options used throughout the evaluation.
// Parallelism defaults to the whole machine and Batch to the
// per-workload defaults; the generators produce the same suite at any
// setting.
func DefaultOptions(maxTests int) Options {
	return Options{
		MaxTests:    maxTests,
		Eta:         0.5,
		Steps:       30,
		Clamp:       true,
		Parallelism: parallel.Auto(),
	}
}

// workers resolves the Parallelism knob.
func (o Options) workers() int { return parallel.Workers(o.Parallelism) }

// extractionBatch resolves the Batch knob for activation extraction:
// per-sample unless an explicit batch was requested (negatives mean
// "unset", like zero).
func (o Options) extractionBatch() int {
	if o.Batch <= 0 {
		return 1
	}
	return o.Batch
}

// synthesisBatch resolves the Batch knob for input synthesis: the
// default evaluation batch unless an explicit batch was requested
// (negatives mean "unset", like zero).
func (o Options) synthesisBatch() int {
	if o.Batch <= 0 {
		return coverage.DefaultBatch
	}
	return o.Batch
}

func (o Options) validate() error {
	if o.MaxTests <= 0 {
		return fmt.Errorf("core: MaxTests must be positive, got %d", o.MaxTests)
	}
	return nil
}

// Result is a generated validation set with its coverage history.
type Result struct {
	// Tests are the generated inputs in selection order.
	Tests []*tensor.Tensor
	// Labels hold the training label (selected samples) or the target
	// class (synthetic samples) of each test.
	Labels []int
	// Sources records each test's provenance.
	Sources []Source
	// Curve[i] is the validation coverage after i+1 tests (Eq. 4).
	Curve []float64
	// SwitchPoint is the index of the first synthetic test, or -1 when
	// Algorithm 2 never produced one.
	SwitchPoint int
	// Covered is the final activated-parameter set of the whole suite;
	// per-layer breakdowns come from coverage.PerParam.
	Covered *bitset.Set
}

// FinalCoverage returns the coverage achieved by the full set.
func (r *Result) FinalCoverage() float64 {
	if len(r.Curve) == 0 {
		return 0
	}
	return r.Curve[len(r.Curve)-1]
}

// add appends one test and its coverage to the result.
func (r *Result) add(x *tensor.Tensor, label int, src Source, cov float64) {
	r.Tests = append(r.Tests, x)
	r.Labels = append(r.Labels, label)
	r.Sources = append(r.Sources, src)
	r.Curve = append(r.Curve, cov)
}

// SelectFromTraining implements Algorithm 1: iteratively add the
// training sample with the largest marginal validation-coverage gain
// (Eq. 7). Per-sample activation sets are computed once up front (fanned
// out across opts.Parallelism workers, batched within each); the greedy
// iterations then run on a lazy-greedy priority queue whose picks are
// bit-identical to a serial left-to-right rescan.
func SelectFromTraining(net *nn.Network, train *data.Dataset, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	rt := newGenRuntime(net, opts)
	sets := rt.paramSets(train)
	acc := coverage.NewAccumulator(net.NumParams())
	used := make([]bool, train.Len())
	scan := newGreedyScanner(sets, acc, rt.workers())
	res := &Result{SwitchPoint: -1}

	for len(res.Tests) < opts.MaxTests {
		best, bestGain := scan.next(acc, used)
		if best < 0 {
			break // training set exhausted
		}
		if bestGain == 0 && opts.StopOnZeroGain {
			break
		}
		used[best] = true
		acc.Add(sets[best])
		res.add(train.Samples[best].X, train.Samples[best].Label, FromTraining, acc.Coverage())
	}
	res.Covered = acc.Set()
	return res, nil
}

// bestCandidateRange is the serial left-to-right reference scan over
// [lo,hi): the unused candidate with the largest gain, ties to the
// lowest index. The greedy scanner must match it pick for pick; tests
// hold the two against each other.
func bestCandidateRange(sets []*bitset.Set, used []bool, acc *coverage.Accumulator, lo, hi int) (int, int) {
	best, bestGain := -1, -1
	for i := lo; i < hi; i++ {
		if used[i] {
			continue
		}
		if g := acc.Gain(sets[i]); g > bestGain {
			best, bestGain = i, g
		}
	}
	return best, bestGain
}

// residualNet returns a copy of net whose *activated* parameters are
// zeroed, leaving only the still-unactivated parameters — the "network
// consisting of the un-activated parameters" that Algorithm 2 targets.
func residualNet(net *nn.Network, covered *bitset.Set) *nn.Network {
	vals := net.CopyParams()
	for i := range vals {
		if covered.Get(i) {
			vals[i] = 0
		}
	}
	clone := net.CloneArchitecture()
	clone.SetParams(vals)
	return clone
}

// Synthesize runs Algorithm 2's inner loop (lines 5–11): T gradient
// steps on the input so that target classifies it as class label,
// starting from zeros (paper) or Gaussian noise.
func Synthesize(target *nn.Network, inShape []int, label int, opts Options, rng *rand.Rand) *tensor.Tensor {
	return synthSteps(target, synthInit(inShape, opts, rng), label, opts)
}

// synthInit returns Algorithm 2's starting input, consuming rng exactly
// when (and only when) the serial path would.
func synthInit(inShape []int, opts Options, rng *rand.Rand) *tensor.Tensor {
	x := tensor.New(inShape...)
	if opts.Init == GaussianInit {
		x.FillNormal(rng, 0.5, 0.25)
		x.Clamp(0, 1)
	}
	return x
}

// synthSteps runs the T gradient steps of Algorithm 2 on x in place and
// returns it. It mutates target's gradient accumulators and layer
// caches, so concurrent callers need their own clone of target.
func synthSteps(target *nn.Network, x *tensor.Tensor, label int, opts Options) *tensor.Tensor {
	for t := 0; t < opts.Steps; t++ {
		target.ZeroGrad()
		logits := target.Forward(x)
		_, dLogits := nn.SoftmaxCrossEntropy(logits, label)
		dx := target.Backward(dLogits)
		x.AddScaled(-opts.Eta, dx)
		if opts.Clamp {
			x.Clamp(0, 1)
		}
	}
	return x
}

// synthStepsBatch runs the T gradient steps of Algorithm 2 on a stack
// of inputs simultaneously, xs[i] targeting class firstLabel+i. Each
// step is one batched forward/backward pass, so the per-class matrix
// products fuse into large per-layer GEMMs; every input row evolves by
// exactly the per-sample operation sequence, so the synthesised inputs
// are bit-identical to running synthSteps class by class.
func synthStepsBatch(target *nn.Network, xs []*tensor.Tensor, firstLabel int, opts Options) {
	x := tensor.Stack(xs)
	labels := make([]int, len(xs))
	for i := range labels {
		labels[i] = firstLabel + i
	}
	for t := 0; t < opts.Steps; t++ {
		logits := target.ForwardBatch(x)
		_, dLogits := nn.SoftmaxCrossEntropyBatch(logits, labels)
		// Synthesis never reads parameter gradients, so the input-only
		// backward skips the dW/db work entirely (the per-sample path
		// computes and discards it); the dx rows are bit-identical.
		dx := target.BackwardBatchInput(dLogits)
		x.AddScaled(-opts.Eta, dx)
		if opts.Clamp {
			x.Clamp(0, 1)
		}
	}
	sz := xs[0].Size()
	for i := range xs {
		copy(xs[i].Data(), x.Data()[i*sz:(i+1)*sz])
	}
}

// synthesizeBatch synthesises one input per class c in [0,classes)
// against target. The rng draws happen serially in class order — the
// identical stream to calling Synthesize class by class — and the
// gradient-descent work then fans out across workers, each on its own
// clone of target and each running its contiguous class chunk through
// the batched engine, so the outputs are bit-identical to the serial
// per-class loop at any worker count and batch size.
func synthesizeBatch(target *nn.Network, inShape []int, classes int, opts Options, rng *rand.Rand) []*tensor.Tensor {
	xs := make([]*tensor.Tensor, classes)
	for c := range xs {
		xs[c] = synthInit(inShape, opts, rng)
	}
	workers := parallel.Effective(classes, opts.workers())
	if workers <= 1 {
		runSynth(target, xs, 0, classes, opts)
		return xs
	}
	clones := make([]*nn.Network, workers)
	for w := range clones {
		clones[w] = target.Clone()
	}
	parallel.For(classes, workers, func(w, lo, hi int) {
		runSynth(clones[w], xs, lo, hi, opts)
	})
	return xs
}

// runSynth drives the synthesis of xs[lo:hi] on net (xs[c] targeting
// class c), batching up to opts.synthesisBatch() classes per pass; the
// shared worker body of the per-call-clone and pool-pinned paths.
func runSynth(net *nn.Network, xs []*tensor.Tensor, lo, hi int, opts Options) {
	bsz := opts.synthesisBatch()
	for s := lo; s < hi; s += bsz {
		e := min(s+bsz, hi)
		if bsz <= 1 || e-s == 1 {
			for c := s; c < e; c++ {
				synthSteps(net, xs[c], c, opts)
			}
			continue
		}
		synthStepsBatch(net, xs[s:e], s, opts)
	}
}

// GradientGenerate implements Algorithm 2: per round, synthesise one
// input per class against the residual network of still-unactivated
// parameters, add all k to the validation set, and repeat until the
// budget is reached. Coverage is always measured on the full network.
func GradientGenerate(net *nn.Network, inShape []int, classes int, opts Options) (*Result, error) {
	return SynthesisFrom(net, inShape, classes, opts, nil)
}

// SynthesisFrom runs Algorithm 2 starting from an existing covered set
// (nil means empty); the building block of the fixed-switch-point
// ablation, where Algorithm 1's coverage seeds the synthesis phase.
func SynthesisFrom(net *nn.Network, inShape []int, classes int, opts Options, start *bitset.Set) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if classes <= 0 {
		return nil, fmt.Errorf("core: classes must be positive, got %d", classes)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rt := newGenRuntime(net, opts)
	acc := coverage.NewAccumulator(net.NumParams())
	if start != nil {
		acc.Add(start)
	}
	res := &Result{SwitchPoint: 0}

	// With zero initialisation, a round whose coverage does not grow
	// would regenerate exactly the same inputs forever (same start,
	// same residual). After a dry round the initialisation switches to
	// Gaussian restarts, so Algorithm 2 keeps exploring new basins and
	// the coverage keeps climbing as in the paper's Fig. 3 instead of
	// stalling.
	dry := false
	for len(res.Tests) < opts.MaxTests {
		residual := residualNet(net, acc.Set())
		roundOpts := opts
		if dry && opts.Init == ZeroInit {
			roundOpts.Init = GaussianInit
		}
		// One round synthesises classes inputs, truncated to the budget
		// exactly as the serial per-class loop would be; the synthesis and
		// the full-network activation extraction both fan out across the
		// worker pool, and the accumulator merge stays in class order.
		take := min(classes, opts.MaxTests-len(res.Tests))
		xs := rt.synthesize(residual, inShape, take, roundOpts, rng)
		sets := rt.paramSetsOf(xs)
		roundGain := 0
		for c := 0; c < take; c++ {
			roundGain += acc.Add(sets[c])
			res.add(xs[c], c, FromSynthesis, acc.Coverage())
		}
		dry = roundGain == 0
	}
	res.Covered = acc.Set()
	return res, nil
}

// Combined implements §IV-D: Algorithm 1 until its next marginal gain
// per test is beaten by Algorithm 2's expected gain per test (probed on
// the current residual network), then Algorithm 2 for the rest of the
// budget. The probe batch is reused as the first synthetic round on
// switching, so no synthesis work is wasted at the switch point.
func Combined(net *nn.Network, train *data.Dataset, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	classes := train.Classes
	inShape := []int{train.C, train.H, train.W}
	rng := rand.New(rand.NewSource(opts.Seed))

	rt := newGenRuntime(net, opts)
	sets := rt.paramSets(train)
	acc := coverage.NewAccumulator(net.NumParams())
	used := make([]bool, train.Len())
	scan := newGreedyScanner(sets, acc, rt.workers())
	res := &Result{SwitchPoint: -1}

	for len(res.Tests) < opts.MaxTests {
		best, bestGain := scan.next(acc, used)

		// Probe Algorithm 2 on the current residual network to estimate
		// its marginal coverage per test (§IV-D's switch criterion). The
		// per-class synthesis and activation extraction fan out; the
		// probe accumulator merges in class order, as serially.
		residual := residualNet(net, acc.Set())
		xs := rt.synthesize(residual, inShape, classes, opts, rng)
		probeSets := rt.paramSetsOf(xs)
		probeAcc := acc.Clone()
		probeGain := 0
		for c := 0; c < classes; c++ {
			probeGain += probeAcc.Add(probeSets[c])
		}
		gainPerSynthetic := float64(probeGain) / float64(classes)

		if best >= 0 && float64(bestGain) >= gainPerSynthetic {
			used[best] = true
			acc.Add(sets[best])
			res.add(train.Samples[best].X, train.Samples[best].Label, FromTraining, acc.Coverage())
			continue
		}

		// Switch: Algorithm 2 takes over, starting with the probe batch.
		res.SwitchPoint = len(res.Tests)
		for c := 0; c < classes && len(res.Tests) < opts.MaxTests; c++ {
			acc.Add(probeSets[c])
			res.add(xs[c], c, FromSynthesis, acc.Coverage())
		}
		if remaining := opts.MaxTests - len(res.Tests); remaining > 0 {
			tailOpts := opts
			tailOpts.MaxTests = remaining
			tail, err := SynthesisFrom(net, inShape, classes, tailOpts, acc.Set())
			if err != nil {
				return nil, err
			}
			tailSets := rt.paramSetsOf(tail.Tests)
			for i := range tail.Tests {
				acc.Add(tailSets[i])
				res.add(tail.Tests[i], tail.Labels[i], FromSynthesis, acc.Coverage())
			}
		}
		res.Covered = acc.Set()
		return res, nil
	}
	res.Covered = acc.Set()
	return res, nil
}

// RandomSelect picks MaxTests training samples uniformly at random; the
// naive baseline for the coverage curves.
func RandomSelect(net *nn.Network, train *data.Dataset, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(train.Len())
	picks := perm[:min(opts.MaxTests, len(perm))]
	acc := coverage.NewAccumulator(net.NumParams())
	res := &Result{SwitchPoint: -1}
	// Activation extraction for the whole pick fans out across workers;
	// the union then accumulates in pick order, so the curve matches the
	// serial loop exactly.
	xs := make([]*tensor.Tensor, len(picks))
	for j, idx := range picks {
		xs[j] = train.Samples[idx].X
	}
	sets := newGenRuntime(net, opts).paramSetsOf(xs)
	for j, idx := range picks {
		s := train.Samples[idx]
		acc.Add(sets[j])
		res.add(s.X, s.Label, FromTraining, acc.Coverage())
	}
	res.Covered = acc.Set()
	return res, nil
}

// NeuronGreedy is the baseline of Tables II/III: greedy selection from
// the training set maximising *neuron* coverage (Ma et al. [11]). Once
// neuron coverage saturates, the remaining budget is filled with random
// training samples, as additional tests cannot improve the criterion.
// The Curve still records *parameter* coverage so the two criteria can
// be compared on the same axis.
func NeuronGreedy(net *nn.Network, train *data.Dataset, ncfg coverage.NeuronConfig, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	inShape := []int{train.C, train.H, train.W}
	nNeurons := coverage.NumNeurons(net, inShape)
	rt := newGenRuntime(net, opts)
	workers := rt.workers()

	neuronSets := rt.neuronSets(train, ncfg)
	used := make([]bool, train.Len())
	nAcc := coverage.NewAccumulator(nNeurons)
	pAcc := coverage.NewAccumulator(net.NumParams())
	scan := newGreedyScanner(neuronSets, nAcc, workers)
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &Result{SwitchPoint: -1}

	add := func(i int) {
		used[i] = true
		nAcc.Add(neuronSets[i])
		s := train.Samples[i]
		pAcc.Add(coverage.ParamActivation(net, s.X, opts.Coverage))
		res.add(s.X, s.Label, FromTraining, pAcc.Coverage())
	}

	for len(res.Tests) < opts.MaxTests {
		best, bestGain := scan.next(nAcc, used)
		if best < 0 || bestGain == 0 {
			break // neuron coverage saturated
		}
		add(best)
	}
	for _, i := range rng.Perm(train.Len()) {
		if len(res.Tests) >= opts.MaxTests {
			break
		}
		if !used[i] {
			add(i)
		}
	}
	res.Covered = pAcc.Set()
	return res, nil
}
