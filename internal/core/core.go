// Package core implements the paper's contribution: functional test
// generation for black-box DNN IP validation.
//
// Three generators are provided, mirroring §IV:
//
//   - SelectFromTraining (Algorithm 1) greedily picks training samples
//     that activate the most currently-unactivated parameters.
//   - GradientGenerate (Algorithm 2) synthesises inputs by gradient
//     descent so they are classified correctly by the *residual*
//     network formed by the still-unactivated parameters, one synthetic
//     sample per class per round.
//   - Combined (§IV-D) runs Algorithm 1 until its marginal coverage per
//     test falls below what Algorithm 2 achieves, then switches.
//
// The neuron-coverage greedy baseline of the hardware-testing literature
// (Ma et al. [11]) and a random-selection baseline complete the set the
// evaluation compares (Tables II/III).
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/coverage"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Source records where a test case came from.
type Source int

// Test case provenance.
const (
	FromTraining Source = iota
	FromSynthesis
)

// String implements fmt.Stringer.
func (s Source) String() string {
	if s == FromTraining {
		return "training"
	}
	return "synthetic"
}

// InitMode selects the starting point of Algorithm 2's input synthesis.
type InitMode int

// Synthesis initialisation modes. The paper initialises with zeros
// (Algorithm 2 line 3); Gaussian is the ablation alternative.
const (
	ZeroInit InitMode = iota
	GaussianInit
)

// Options configures the generators.
type Options struct {
	// MaxTests is Nt, the test budget (Eq. 6).
	MaxTests int
	// Coverage sets the parameter-activation threshold.
	Coverage coverage.Config
	// Eta is Algorithm 2's gradient step size η.
	Eta float64
	// Steps is Algorithm 2's iteration count T.
	Steps int
	// Init selects zero (paper) or Gaussian initialisation.
	Init InitMode
	// Clamp keeps synthesised inputs in [0,1] (the image domain) after
	// each update when true.
	Clamp bool
	// Seed drives Gaussian initialisation and random fill-in.
	Seed int64
	// StopOnZeroGain stops Algorithm 1 early once no candidate adds
	// coverage; off by default so coverage curves span the full budget
	// as in Fig. 3.
	StopOnZeroGain bool
}

// DefaultOptions returns the options used throughout the evaluation.
func DefaultOptions(maxTests int) Options {
	return Options{
		MaxTests: maxTests,
		Eta:      0.5,
		Steps:    30,
		Clamp:    true,
	}
}

func (o Options) validate() error {
	if o.MaxTests <= 0 {
		return fmt.Errorf("core: MaxTests must be positive, got %d", o.MaxTests)
	}
	return nil
}

// Result is a generated validation set with its coverage history.
type Result struct {
	// Tests are the generated inputs in selection order.
	Tests []*tensor.Tensor
	// Labels hold the training label (selected samples) or the target
	// class (synthetic samples) of each test.
	Labels []int
	// Sources records each test's provenance.
	Sources []Source
	// Curve[i] is the validation coverage after i+1 tests (Eq. 4).
	Curve []float64
	// SwitchPoint is the index of the first synthetic test, or -1 when
	// Algorithm 2 never produced one.
	SwitchPoint int
	// Covered is the final activated-parameter set of the whole suite;
	// per-layer breakdowns come from coverage.PerParam.
	Covered *bitset.Set
}

// FinalCoverage returns the coverage achieved by the full set.
func (r *Result) FinalCoverage() float64 {
	if len(r.Curve) == 0 {
		return 0
	}
	return r.Curve[len(r.Curve)-1]
}

// add appends one test and its coverage to the result.
func (r *Result) add(x *tensor.Tensor, label int, src Source, cov float64) {
	r.Tests = append(r.Tests, x)
	r.Labels = append(r.Labels, label)
	r.Sources = append(r.Sources, src)
	r.Curve = append(r.Curve, cov)
}

// SelectFromTraining implements Algorithm 1: iteratively add the
// training sample with the largest marginal validation-coverage gain
// (Eq. 7). Per-sample activation sets are computed once up front; each
// greedy iteration is then pure bitset algebra.
func SelectFromTraining(net *nn.Network, train *data.Dataset, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	sets := coverage.ParamSets(net, train, opts.Coverage)
	acc := coverage.NewAccumulator(net.NumParams())
	used := make([]bool, train.Len())
	res := &Result{SwitchPoint: -1}

	for len(res.Tests) < opts.MaxTests {
		best, bestGain := -1, -1
		for i, s := range sets {
			if used[i] {
				continue
			}
			if g := acc.Gain(s); g > bestGain {
				best, bestGain = i, g
			}
		}
		if best < 0 {
			break // training set exhausted
		}
		if bestGain == 0 && opts.StopOnZeroGain {
			break
		}
		used[best] = true
		acc.Add(sets[best])
		res.add(train.Samples[best].X, train.Samples[best].Label, FromTraining, acc.Coverage())
	}
	res.Covered = acc.Set()
	return res, nil
}

// residualNet returns a copy of net whose *activated* parameters are
// zeroed, leaving only the still-unactivated parameters — the "network
// consisting of the un-activated parameters" that Algorithm 2 targets.
func residualNet(net *nn.Network, covered *bitset.Set) *nn.Network {
	vals := net.CopyParams()
	for i := range vals {
		if covered.Get(i) {
			vals[i] = 0
		}
	}
	clone := cloneArchitecture(net)
	clone.SetParams(vals)
	return clone
}

// cloneArchitecture builds a structurally identical network with fresh
// (zero) parameters.
func cloneArchitecture(net *nn.Network) *nn.Network {
	layers := make([]nn.Layer, 0, len(net.LayerStack))
	for _, l := range net.LayerStack {
		switch t := l.(type) {
		case *nn.Conv2D:
			layers = append(layers, nn.NewConv2D(t.LayerName, t.InC, t.InH, t.InW, t.OutC, t.K, t.Stride, t.Pad))
		case *nn.Dense:
			layers = append(layers, nn.NewDense(t.LayerName, t.In, t.Out))
		case *nn.MaxPool2D:
			layers = append(layers, nn.NewMaxPool2D(t.LayerName, t.C, t.H, t.W, t.K, t.Stride))
		case *nn.Activate:
			layers = append(layers, nn.NewActivate(t.LayerName, t.Fn))
		case *nn.Flatten:
			layers = append(layers, nn.NewFlatten(t.LayerName))
		case *nn.ScaleShift:
			layers = append(layers, nn.NewScaleShift(t.LayerName, t.A, t.B))
		default:
			panic(fmt.Sprintf("core: cannot clone layer type %T", l))
		}
	}
	return nn.NewNetwork(layers...)
}

// Synthesize runs Algorithm 2's inner loop (lines 5–11): T gradient
// steps on the input so that target classifies it as class label,
// starting from zeros (paper) or Gaussian noise.
func Synthesize(target *nn.Network, inShape []int, label int, opts Options, rng *rand.Rand) *tensor.Tensor {
	x := tensor.New(inShape...)
	if opts.Init == GaussianInit {
		x.FillNormal(rng, 0.5, 0.25)
		x.Clamp(0, 1)
	}
	for t := 0; t < opts.Steps; t++ {
		target.ZeroGrad()
		logits := target.Forward(x)
		_, dLogits := nn.SoftmaxCrossEntropy(logits, label)
		dx := target.Backward(dLogits)
		x.AddScaled(-opts.Eta, dx)
		if opts.Clamp {
			x.Clamp(0, 1)
		}
	}
	return x
}

// GradientGenerate implements Algorithm 2: per round, synthesise one
// input per class against the residual network of still-unactivated
// parameters, add all k to the validation set, and repeat until the
// budget is reached. Coverage is always measured on the full network.
func GradientGenerate(net *nn.Network, inShape []int, classes int, opts Options) (*Result, error) {
	return SynthesisFrom(net, inShape, classes, opts, nil)
}

// SynthesisFrom runs Algorithm 2 starting from an existing covered set
// (nil means empty); the building block of the fixed-switch-point
// ablation, where Algorithm 1's coverage seeds the synthesis phase.
func SynthesisFrom(net *nn.Network, inShape []int, classes int, opts Options, start *bitset.Set) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if classes <= 0 {
		return nil, fmt.Errorf("core: classes must be positive, got %d", classes)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	acc := coverage.NewAccumulator(net.NumParams())
	if start != nil {
		acc.Add(start)
	}
	res := &Result{SwitchPoint: 0}

	// With zero initialisation, a round whose coverage does not grow
	// would regenerate exactly the same inputs forever (same start,
	// same residual). After a dry round the initialisation switches to
	// Gaussian restarts, so Algorithm 2 keeps exploring new basins and
	// the coverage keeps climbing as in the paper's Fig. 3 instead of
	// stalling.
	dry := false
	for len(res.Tests) < opts.MaxTests {
		residual := residualNet(net, acc.Set())
		roundOpts := opts
		if dry && opts.Init == ZeroInit {
			roundOpts.Init = GaussianInit
		}
		roundGain := 0
		for c := 0; c < classes && len(res.Tests) < opts.MaxTests; c++ {
			x := Synthesize(residual, inShape, c, roundOpts, rng)
			roundGain += acc.Add(coverage.ParamActivation(net, x, opts.Coverage))
			res.add(x, c, FromSynthesis, acc.Coverage())
		}
		dry = roundGain == 0
	}
	res.Covered = acc.Set()
	return res, nil
}

// Combined implements §IV-D: Algorithm 1 until its next marginal gain
// per test is beaten by Algorithm 2's expected gain per test (probed on
// the current residual network), then Algorithm 2 for the rest of the
// budget. The probe batch is reused as the first synthetic round on
// switching, so no synthesis work is wasted at the switch point.
func Combined(net *nn.Network, train *data.Dataset, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	classes := train.Classes
	inShape := []int{train.C, train.H, train.W}
	rng := rand.New(rand.NewSource(opts.Seed))

	sets := coverage.ParamSets(net, train, opts.Coverage)
	acc := coverage.NewAccumulator(net.NumParams())
	used := make([]bool, train.Len())
	res := &Result{SwitchPoint: -1}

	for len(res.Tests) < opts.MaxTests {
		best, bestGain := -1, -1
		for i, s := range sets {
			if used[i] {
				continue
			}
			if g := acc.Gain(s); g > bestGain {
				best, bestGain = i, g
			}
		}

		// Probe Algorithm 2 on the current residual network to estimate
		// its marginal coverage per test (§IV-D's switch criterion).
		residual := residualNet(net, acc.Set())
		type probe struct {
			x     *tensor.Tensor
			set   *bitset.Set
			label int
		}
		probes := make([]probe, 0, classes)
		probeAcc := acc.Clone()
		probeGain := 0
		for c := 0; c < classes; c++ {
			x := Synthesize(residual, inShape, c, opts, rng)
			s := coverage.ParamActivation(net, x, opts.Coverage)
			probeGain += probeAcc.Add(s)
			probes = append(probes, probe{x: x, set: s, label: c})
		}
		gainPerSynthetic := float64(probeGain) / float64(classes)

		if best >= 0 && float64(bestGain) >= gainPerSynthetic {
			used[best] = true
			acc.Add(sets[best])
			res.add(train.Samples[best].X, train.Samples[best].Label, FromTraining, acc.Coverage())
			continue
		}

		// Switch: Algorithm 2 takes over, starting with the probe batch.
		res.SwitchPoint = len(res.Tests)
		for _, p := range probes {
			if len(res.Tests) >= opts.MaxTests {
				break
			}
			acc.Add(p.set)
			res.add(p.x, p.label, FromSynthesis, acc.Coverage())
		}
		if remaining := opts.MaxTests - len(res.Tests); remaining > 0 {
			tailOpts := opts
			tailOpts.MaxTests = remaining
			tail, err := SynthesisFrom(net, inShape, classes, tailOpts, acc.Set())
			if err != nil {
				return nil, err
			}
			for i := range tail.Tests {
				acc.Add(coverage.ParamActivation(net, tail.Tests[i], opts.Coverage))
				res.add(tail.Tests[i], tail.Labels[i], FromSynthesis, acc.Coverage())
			}
		}
		res.Covered = acc.Set()
		return res, nil
	}
	res.Covered = acc.Set()
	return res, nil
}

// RandomSelect picks MaxTests training samples uniformly at random; the
// naive baseline for the coverage curves.
func RandomSelect(net *nn.Network, train *data.Dataset, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(train.Len())
	acc := coverage.NewAccumulator(net.NumParams())
	res := &Result{SwitchPoint: -1}
	for _, idx := range perm {
		if len(res.Tests) >= opts.MaxTests {
			break
		}
		s := train.Samples[idx]
		acc.Add(coverage.ParamActivation(net, s.X, opts.Coverage))
		res.add(s.X, s.Label, FromTraining, acc.Coverage())
	}
	res.Covered = acc.Set()
	return res, nil
}

// NeuronGreedy is the baseline of Tables II/III: greedy selection from
// the training set maximising *neuron* coverage (Ma et al. [11]). Once
// neuron coverage saturates, the remaining budget is filled with random
// training samples, as additional tests cannot improve the criterion.
// The Curve still records *parameter* coverage so the two criteria can
// be compared on the same axis.
func NeuronGreedy(net *nn.Network, train *data.Dataset, ncfg coverage.NeuronConfig, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	inShape := []int{train.C, train.H, train.W}
	nNeurons := coverage.NumNeurons(net, inShape)

	neuronSets := make([]*bitset.Set, train.Len())
	for i, s := range train.Samples {
		neuronSets[i] = coverage.NeuronActivation(net, s.X, ncfg)
	}
	used := make([]bool, train.Len())
	nAcc := coverage.NewAccumulator(nNeurons)
	pAcc := coverage.NewAccumulator(net.NumParams())
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &Result{SwitchPoint: -1}

	add := func(i int) {
		used[i] = true
		nAcc.Add(neuronSets[i])
		s := train.Samples[i]
		pAcc.Add(coverage.ParamActivation(net, s.X, opts.Coverage))
		res.add(s.X, s.Label, FromTraining, pAcc.Coverage())
	}

	for len(res.Tests) < opts.MaxTests {
		best, bestGain := -1, 0
		for i, s := range neuronSets {
			if used[i] {
				continue
			}
			if g := nAcc.Gain(s); g > bestGain {
				best, bestGain = i, g
			}
		}
		if best < 0 || bestGain == 0 {
			break // neuron coverage saturated
		}
		add(best)
	}
	for _, i := range rng.Perm(train.Len()) {
		if len(res.Tests) >= opts.MaxTests {
			break
		}
		if !used[i] {
			add(i)
		}
	}
	res.Covered = pAcc.Set()
	return res, nil
}
