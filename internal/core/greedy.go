package core

import (
	"container/heap"

	"repro/internal/bitset"
	"repro/internal/coverage"
	"repro/internal/parallel"
)

// greedyScanner implements lazy-greedy (CELF) candidate selection for
// the submodular coverage objective. The naive selector rescans every
// unused candidate each iteration — O(N·budget) bitset work; the scanner
// keeps candidates in a max-heap of cached marginal gains. Because the
// covered set only grows, a cached gain can only overstate the true
// gain, so popping the heap top, recomputing its gain and re-inserting
// until a freshly-computed entry surfaces yields the exact greedy pick
// in O(N + budget·log N) typical work.
//
// Ties resolve to the lowest candidate index, exactly like the serial
// left-to-right scan: the heap orders equal gains by ascending index,
// and any lower-index candidate whose cached gain ties or beats the
// eventual winner's is popped — and therefore refreshed and re-ranked —
// before the winner can surface. Suite selection therefore stays
// bit-identical to the serial rescan at any worker count.
type greedyScanner struct {
	sets    []*bitset.Set
	entries []scanEntry
	round   int
}

// scanEntry is one candidate with its cached marginal gain; the gain is
// exact when round matches the scanner's current selection round.
type scanEntry struct {
	gain, idx, round int
}

// newGreedyScanner builds the scanner over the candidate activation
// sets, computing the initial exact gains against acc fanned out across
// workers.
func newGreedyScanner(sets []*bitset.Set, acc *coverage.Accumulator, workers int) *greedyScanner {
	g := &greedyScanner{
		sets:    sets,
		entries: make([]scanEntry, len(sets)),
	}
	workers = parallel.Effective(len(sets), parallel.Workers(workers))
	parallel.For(len(sets), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			g.entries[i] = scanEntry{gain: acc.Gain(sets[i]), idx: i, round: 0}
		}
	})
	heap.Init(g)
	return g
}

// next returns the unused candidate with the largest marginal gain over
// acc (ties to the lowest index) and that gain, or (-1, -1) when every
// candidate is used. The caller is expected to mark the returned
// candidate used and add its set to acc — next assumes acc has only
// grown between calls.
func (g *greedyScanner) next(acc *coverage.Accumulator, used []bool) (int, int) {
	for len(g.entries) > 0 {
		e := g.entries[0]
		if used[e.idx] {
			heap.Pop(g)
			continue
		}
		if e.round == g.round {
			// Fresh gain at the top: every other candidate's cached gain
			// is an upper bound that ranks at or below this entry, so
			// this is the serial scan's pick.
			heap.Pop(g)
			g.round++
			return e.idx, e.gain
		}
		e.gain = acc.Gain(g.sets[e.idx])
		e.round = g.round
		g.entries[0] = e
		heap.Fix(g, 0)
	}
	return -1, -1
}

// heap.Interface: a max-heap on gain, ties broken by ascending index so
// equal-gain candidates surface in serial scan order.
func (g *greedyScanner) Len() int { return len(g.entries) }
func (g *greedyScanner) Less(i, j int) bool {
	a, b := g.entries[i], g.entries[j]
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return a.idx < b.idx
}
func (g *greedyScanner) Swap(i, j int) { g.entries[i], g.entries[j] = g.entries[j], g.entries[i] }
func (g *greedyScanner) Push(x any)    { g.entries = append(g.entries, x.(scanEntry)) }
func (g *greedyScanner) Pop() any {
	old := g.entries
	n := len(old)
	e := old[n-1]
	g.entries = old[:n-1]
	return e
}
