package core

import (
	"testing"

	"repro/internal/coverage"
	"repro/internal/data"
)

// resultsBitIdentical asserts two generator results are exactly equal:
// same tests (bitwise), labels, sources, curve and covered set. This is
// the contract of Options.Parallelism — a pure speed knob.
func resultsBitIdentical(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if len(got.Tests) != len(want.Tests) {
		t.Fatalf("%s: %d tests, want %d", name, len(got.Tests), len(want.Tests))
	}
	if got.SwitchPoint != want.SwitchPoint {
		t.Fatalf("%s: switch point %d, want %d", name, got.SwitchPoint, want.SwitchPoint)
	}
	for i := range want.Tests {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("%s: test %d label %d, want %d", name, i, got.Labels[i], want.Labels[i])
		}
		if got.Sources[i] != want.Sources[i] {
			t.Fatalf("%s: test %d source %v, want %v", name, i, got.Sources[i], want.Sources[i])
		}
		if got.Curve[i] != want.Curve[i] {
			t.Fatalf("%s: curve[%d] = %v, want %v", name, i, got.Curve[i], want.Curve[i])
		}
		g, w := got.Tests[i].Data(), want.Tests[i].Data()
		if len(g) != len(w) {
			t.Fatalf("%s: test %d size %d, want %d", name, i, len(g), len(w))
		}
		for j := range w {
			if g[j] != w[j] {
				t.Fatalf("%s: test %d element %d = %v, want %v (parallel suite must be bit-identical)",
					name, i, j, g[j], w[j])
			}
		}
	}
	if !got.Covered.Equal(want.Covered) {
		t.Fatalf("%s: covered sets differ: %v vs %v", name, got.Covered, want.Covered)
	}
}

func parallelOpts(n, workers int) Options {
	opts := DefaultOptions(n)
	opts.Seed = 7
	opts.Steps = 8
	opts.Parallelism = workers
	return opts
}

func TestSelectFromTrainingParallelBitIdentical(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	serial, err := SelectFromTraining(net, ds, parallelOpts(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7} {
		par, err := SelectFromTraining(net, ds, parallelOpts(10, workers))
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, "SelectFromTraining", par, serial)
	}
}

func TestCombinedParallelBitIdentical(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	for _, init := range []InitMode{ZeroInit, GaussianInit} {
		serialOpts := parallelOpts(12, 1)
		serialOpts.Init = init
		serial, err := Combined(net, ds, serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		parOpts := parallelOpts(12, 4)
		parOpts.Init = init
		par, err := Combined(net, ds, parOpts)
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, "Combined", par, serial)
	}
}

func TestGradientGenerateParallelBitIdentical(t *testing.T) {
	net := trainedDigitsNet()
	inShape := []int{1, 12, 12}
	for _, init := range []InitMode{ZeroInit, GaussianInit} {
		// 17 is deliberately not a multiple of 10 classes, so the final
		// synthesis round is truncated mid-batch.
		serialOpts := parallelOpts(17, 1)
		serialOpts.Init = init
		serial, err := GradientGenerate(net, inShape, 10, serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		parOpts := parallelOpts(17, 4)
		parOpts.Init = init
		par, err := GradientGenerate(net, inShape, 10, parOpts)
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, "GradientGenerate", par, serial)
	}
}

func TestRandomSelectParallelBitIdentical(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	serial, err := RandomSelect(net, ds, parallelOpts(15, 1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RandomSelect(net, ds, parallelOpts(15, 5))
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "RandomSelect", par, serial)
}

func TestNeuronGreedyParallelBitIdentical(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	ncfg := coverage.NeuronConfig{}
	serial, err := NeuronGreedy(net, ds, ncfg, parallelOpts(12, 1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := NeuronGreedy(net, ds, ncfg, parallelOpts(12, 4))
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "NeuronGreedy", par, serial)
}

// TestBestCandidateMatchesSerialScan drives the parallel argmax helper
// directly over a crafted tie-heavy input: ties must resolve to the
// lowest index at every worker count, like a serial left-to-right scan.
func TestBestCandidateMatchesSerialScan(t *testing.T) {
	net := trainedDigitsNet()
	ds := data.Digits(40, 12, 12, 55)
	sets := coverage.ParamSets(net, ds, coverage.Config{})
	used := make([]bool, len(sets))
	acc := coverage.NewAccumulator(net.NumParams())

	// Drop the serial-fallback threshold so the parallel scan actually
	// runs on this small candidate set.
	prev := minScanPerWorker
	minScanPerWorker = 1
	t.Cleanup(func() { minScanPerWorker = prev })

	for round := 0; round < 10; round++ {
		wantBest, wantGain := bestCandidateRange(sets, used, acc, 0, len(sets))
		for _, workers := range []int{2, 3, 8, 64} {
			gotBest, gotGain := bestCandidate(sets, used, acc, workers)
			if gotBest != wantBest || gotGain != wantGain {
				t.Fatalf("round %d workers %d: parallel pick (%d,%d), serial pick (%d,%d)",
					round, workers, gotBest, gotGain, wantBest, wantGain)
			}
		}
		if wantBest < 0 {
			break
		}
		used[wantBest] = true
		acc.Add(sets[wantBest])
	}
}
