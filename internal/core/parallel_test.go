package core

import (
	"fmt"
	"testing"

	"repro/internal/coverage"
	"repro/internal/data"
)

// resultsBitIdentical asserts two generator results are exactly equal:
// same tests (bitwise), labels, sources, curve and covered set. This is
// the contract of Options.Parallelism — a pure speed knob.
func resultsBitIdentical(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if len(got.Tests) != len(want.Tests) {
		t.Fatalf("%s: %d tests, want %d", name, len(got.Tests), len(want.Tests))
	}
	if got.SwitchPoint != want.SwitchPoint {
		t.Fatalf("%s: switch point %d, want %d", name, got.SwitchPoint, want.SwitchPoint)
	}
	for i := range want.Tests {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("%s: test %d label %d, want %d", name, i, got.Labels[i], want.Labels[i])
		}
		if got.Sources[i] != want.Sources[i] {
			t.Fatalf("%s: test %d source %v, want %v", name, i, got.Sources[i], want.Sources[i])
		}
		if got.Curve[i] != want.Curve[i] {
			t.Fatalf("%s: curve[%d] = %v, want %v", name, i, got.Curve[i], want.Curve[i])
		}
		g, w := got.Tests[i].Data(), want.Tests[i].Data()
		if len(g) != len(w) {
			t.Fatalf("%s: test %d size %d, want %d", name, i, len(g), len(w))
		}
		for j := range w {
			if g[j] != w[j] {
				t.Fatalf("%s: test %d element %d = %v, want %v (parallel suite must be bit-identical)",
					name, i, j, g[j], w[j])
			}
		}
	}
	if !got.Covered.Equal(want.Covered) {
		t.Fatalf("%s: covered sets differ: %v vs %v", name, got.Covered, want.Covered)
	}
}

func parallelOpts(n, workers int) Options {
	opts := DefaultOptions(n)
	opts.Seed = 7
	opts.Steps = 8
	opts.Parallelism = workers
	return opts
}

// TestSuiteBatchBitIdentical is the batched-engine counterpart of the
// worker-count tests: for every generator, the suite produced with
// batched evaluation must equal the per-sample serial suite bit for bit
// at B ∈ {1, 8, odd} and worker counts {1, 4}.
func TestSuiteBatchBitIdentical(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	inShape := []int{1, 12, 12}

	serialOpts := parallelOpts(10, 1)
	serialOpts.Batch = 1 // per-sample reference path

	type gen struct {
		name string
		run  func(Options) (*Result, error)
	}
	gens := []gen{
		{"SelectFromTraining", func(o Options) (*Result, error) { return SelectFromTraining(net, ds, o) }},
		{"Combined", func(o Options) (*Result, error) { return Combined(net, ds, o) }},
		{"GradientGenerate", func(o Options) (*Result, error) { return GradientGenerate(net, inShape, 10, o) }},
	}
	for _, g := range gens {
		serial, err := g.run(serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			for _, batch := range []int{1, 5, 8, 32} {
				opts := parallelOpts(10, workers)
				opts.Batch = batch
				got, err := g.run(opts)
				if err != nil {
					t.Fatal(err)
				}
				resultsBitIdentical(t, fmt.Sprintf("%s workers=%d batch=%d", g.name, workers, batch), got, serial)
			}
		}
	}

	// NeuronGreedy separately (extra config): its batched neuron-set
	// extraction must also be bit-identical to the per-sample path.
	ncfg := coverage.NeuronConfig{}
	serial, err := NeuronGreedy(net, ds, ncfg, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, batch := range []int{5, 8, 32} {
			opts := parallelOpts(10, workers)
			opts.Batch = batch
			got, err := NeuronGreedy(net, ds, ncfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			resultsBitIdentical(t, fmt.Sprintf("NeuronGreedy workers=%d batch=%d", workers, batch), got, serial)
		}
	}
}

func TestSelectFromTrainingParallelBitIdentical(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	serial, err := SelectFromTraining(net, ds, parallelOpts(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7} {
		par, err := SelectFromTraining(net, ds, parallelOpts(10, workers))
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, "SelectFromTraining", par, serial)
	}
}

func TestCombinedParallelBitIdentical(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	for _, init := range []InitMode{ZeroInit, GaussianInit} {
		serialOpts := parallelOpts(12, 1)
		serialOpts.Init = init
		serial, err := Combined(net, ds, serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		parOpts := parallelOpts(12, 4)
		parOpts.Init = init
		par, err := Combined(net, ds, parOpts)
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, "Combined", par, serial)
	}
}

func TestGradientGenerateParallelBitIdentical(t *testing.T) {
	net := trainedDigitsNet()
	inShape := []int{1, 12, 12}
	for _, init := range []InitMode{ZeroInit, GaussianInit} {
		// 17 is deliberately not a multiple of 10 classes, so the final
		// synthesis round is truncated mid-batch.
		serialOpts := parallelOpts(17, 1)
		serialOpts.Init = init
		serial, err := GradientGenerate(net, inShape, 10, serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		parOpts := parallelOpts(17, 4)
		parOpts.Init = init
		par, err := GradientGenerate(net, inShape, 10, parOpts)
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, "GradientGenerate", par, serial)
	}
}

func TestRandomSelectParallelBitIdentical(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	serial, err := RandomSelect(net, ds, parallelOpts(15, 1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RandomSelect(net, ds, parallelOpts(15, 5))
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "RandomSelect", par, serial)
}

func TestNeuronGreedyParallelBitIdentical(t *testing.T) {
	net := trainedDigitsNet()
	ds := digitsTrainSet()
	ncfg := coverage.NeuronConfig{}
	serial, err := NeuronGreedy(net, ds, ncfg, parallelOpts(12, 1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := NeuronGreedy(net, ds, ncfg, parallelOpts(12, 4))
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "NeuronGreedy", par, serial)
}

// TestGreedyScannerMatchesSerialScan drives the lazy-greedy priority
// queue to exhaustion over a tie-heavy candidate set: every pick must
// match the serial left-to-right rescan, including resolving equal
// gains to the lowest index, at several init worker counts.
func TestGreedyScannerMatchesSerialScan(t *testing.T) {
	net := trainedDigitsNet()
	ds := data.Digits(40, 12, 12, 55)
	sets := coverage.ParamSets(net, ds, coverage.Config{})

	for _, workers := range []int{1, 3, 8} {
		used := make([]bool, len(sets))
		acc := coverage.NewAccumulator(net.NumParams())
		scan := newGreedyScanner(sets, acc, workers)
		for round := 0; ; round++ {
			wantBest, wantGain := bestCandidateRange(sets, used, acc, 0, len(sets))
			gotBest, gotGain := scan.next(acc, used)
			if gotBest != wantBest || gotGain != wantGain {
				t.Fatalf("round %d workers %d: lazy pick (%d,%d), serial pick (%d,%d)",
					round, workers, gotBest, gotGain, wantBest, wantGain)
			}
			if wantBest < 0 {
				break
			}
			used[wantBest] = true
			acc.Add(sets[wantBest])
		}
	}
}

// TestGreedyScannerSkipsExternallyUsed covers the neuron-greedy shape:
// candidates marked used outside the scanner must never be returned.
func TestGreedyScannerSkipsExternallyUsed(t *testing.T) {
	net := trainedDigitsNet()
	ds := data.Digits(20, 12, 12, 56)
	sets := coverage.ParamSets(net, ds, coverage.Config{})
	used := make([]bool, len(sets))
	acc := coverage.NewAccumulator(net.NumParams())
	scan := newGreedyScanner(sets, acc, 1)

	// Mark even candidates used behind the scanner's back.
	for i := 0; i < len(sets); i += 2 {
		used[i] = true
	}
	for {
		want, wantGain := bestCandidateRange(sets, used, acc, 0, len(sets))
		got, gotGain := scan.next(acc, used)
		if got != want || gotGain != wantGain {
			t.Fatalf("lazy pick (%d,%d), serial pick (%d,%d)", got, gotGain, want, wantGain)
		}
		if want < 0 {
			break
		}
		used[want] = true
		acc.Add(sets[want])
	}
}
