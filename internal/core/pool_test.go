package core

import (
	"testing"

	"repro/internal/coverage"
	"repro/internal/data"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TestPoolGeneratorsBitIdentical: Options.Pool is purely a speed knob —
// for every generator, the suite produced on a persistent pool with
// pinned clones must equal the suite produced by the spawn-per-call
// path at the same worker count, bit for bit.
func TestPoolGeneratorsBitIdentical(t *testing.T) {
	net := trainedDigitsNet()
	train := digitsTrainSet()
	const workers = 3

	pool := parallel.NewPool(workers)
	defer pool.Close()

	gens := []struct {
		name string
		run  func(opts Options) (*Result, error)
	}{
		{"select", func(opts Options) (*Result, error) { return SelectFromTraining(net, train, opts) }},
		{"gradient", func(opts Options) (*Result, error) {
			return GradientGenerate(net, []int{train.C, train.H, train.W}, train.Classes, opts)
		}},
		{"combined", func(opts Options) (*Result, error) { return Combined(net, train, opts) }},
		{"random", func(opts Options) (*Result, error) { return RandomSelect(net, train, opts) }},
		{"neuron", func(opts Options) (*Result, error) {
			return NeuronGreedy(net, train, coverage.NeuronConfig{}, opts)
		}},
	}
	for _, g := range gens {
		opts := parallelOpts(12, workers)
		opts.Coverage = coverage.DefaultConfig(net)
		want, err := g.run(opts)
		if err != nil {
			t.Fatalf("%s without pool: %v", g.name, err)
		}
		pooled := opts
		pooled.Pool = pool
		got, err := g.run(pooled)
		if err != nil {
			t.Fatalf("%s with pool: %v", g.name, err)
		}
		resultsBitIdentical(t, g.name+"/pool", got, want)
	}
}

// TestPinnedExtractorMatchesParamSets: the pinned extractor must
// reproduce ParamSetsParallel/ParamSetsOf exactly, including after a
// Sync, at per-sample and batched settings.
func TestPinnedExtractorMatchesParamSets(t *testing.T) {
	net := trainedDigitsNet()
	train := data.Digits(20, 12, 12, 107)
	cfg := coverage.DefaultConfig(net)

	for _, batch := range []int{1, 4} {
		pool := parallel.NewPool(3)
		ext := coverage.NewPinnedExtractor(net, pool, batch)

		want := coverage.ParamSetsParallel(net, train, cfg, 3, batch)
		got := ext.ParamSets(train, cfg)
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("batch %d: pinned ParamSets differs at sample %d", batch, i)
			}
		}

		// Sync against a perturbed master changes the extraction like a
		// fresh per-call clone of that master would.
		perturbed := net.Clone()
		perturbed.SetParamAt(0, perturbed.ParamAt(0)+3)
		ext.Sync(perturbed)
		xs := train.Samples[0].X
		wantP := coverage.ParamSetsOf(perturbed, []*tensor.Tensor{xs}, cfg, 1, batch)
		gotP := ext.ParamSetsOf([]*tensor.Tensor{xs}, cfg)
		if !gotP[0].Equal(wantP[0]) {
			t.Fatalf("batch %d: pinned extraction after Sync differs", batch)
		}
		pool.Close()
	}
}
