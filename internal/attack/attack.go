// Package attack implements the parameter-perturbation attacks the
// validation scheme must detect (paper §V-C): the single bias attack
// (SBA) and gradient descent attack (GDA) of Liu et al. (ICCAD 2017,
// reference [5]), Gaussian random perturbations, and — as an extension —
// a memory bit-flip fault model in the spirit of the rowhammer/laser
// fault-injection attacks the introduction cites.
//
// Every attack returns a Perturbation that records exactly which flat
// parameter indices changed, so a trial can be reverted and so tests can
// reason about detectability (a perturbation is detectable by a suite
// only if it touches a parameter the suite activates).
package attack

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Perturbation records one applied parameter modification.
type Perturbation struct {
	Kind    string    // "sba", "gda", "random", "bitflip", "trojan", "subround", "adaptive"
	Indices []int     // flat parameter indices touched
	Old     []float64 // original values, aligned with Indices
	New     []float64 // attacked values, aligned with Indices
	// Params is the flat parameter count of the network the perturbation
	// was built on. Revert and Reapply refuse to touch a network with a
	// different count: the flat indices would land on unrelated
	// parameters of the other architecture and corrupt it silently.
	// Zero (a hand-built or legacy value) skips that check but still
	// bounds every index against the target network.
	Params int
}

// bind validates the perturbation against the target network before any
// value is written: aligned slices, a matching parameter count, and
// every index in range.
func (p *Perturbation) bind(net *nn.Network, op string) error {
	if len(p.Indices) != len(p.Old) || len(p.Indices) != len(p.New) {
		return fmt.Errorf("attack: %s: malformed perturbation (%d indices, %d old, %d new)",
			op, len(p.Indices), len(p.Old), len(p.New))
	}
	n := net.NumParams()
	if p.Params != 0 && p.Params != n {
		return fmt.Errorf("attack: %s: perturbation built on a %d-parameter network, target has %d",
			op, p.Params, n)
	}
	for _, idx := range p.Indices {
		if idx < 0 || idx >= n {
			return fmt.Errorf("attack: %s: parameter index %d out of range [0,%d)", op, idx, n)
		}
	}
	return nil
}

// Revert restores the original parameter values. The target must have
// the parameter registry the perturbation was built on; a mismatch is
// an error and nothing is written.
func (p *Perturbation) Revert(net *nn.Network) error {
	if err := p.bind(net, "Revert"); err != nil {
		return err
	}
	for i, idx := range p.Indices {
		net.SetParamAt(idx, p.Old[i])
	}
	return nil
}

// Reapply re-applies the attacked values (after a Revert), under the
// same architecture validation as Revert.
func (p *Perturbation) Reapply(net *nn.Network) error {
	if err := p.bind(net, "Reapply"); err != nil {
		return err
	}
	for i, idx := range p.Indices {
		net.SetParamAt(idx, p.New[i])
	}
	return nil
}

// MaxDelta returns the largest absolute parameter change.
func (p *Perturbation) MaxDelta() float64 {
	m := 0.0
	for i := range p.Indices {
		if d := math.Abs(p.New[i] - p.Old[i]); d > m {
			m = d
		}
	}
	return m
}

// String implements fmt.Stringer.
func (p *Perturbation) String() string {
	return fmt.Sprintf("%s: %d params, max |Δ| %.3g", p.Kind, len(p.Indices), p.MaxDelta())
}

// biasIndices returns the flat indices of every bias parameter.
func biasIndices(net *nn.Network) []int {
	var out []int
	idx := 0
	for _, p := range net.Params() {
		n := p.W.Size()
		if len(p.Name) >= 2 && p.Name[len(p.Name)-2:] == ".b" {
			for j := 0; j < n; j++ {
				out = append(out, idx+j)
			}
		}
		idx += n
	}
	return out
}

// SBA applies the single bias attack of [5]: one bias parameter is
// overwritten with a large value, forcing the neuron it feeds into
// saturation and corrupting everything downstream. The bias is chosen
// uniformly at random; magnitude sets the injected value's scale
// (Liu et al. use values far outside the trained range).
func SBA(net *nn.Network, magnitude float64, rng *rand.Rand) (*Perturbation, error) {
	biases := biasIndices(net)
	if len(biases) == 0 {
		return nil, fmt.Errorf("attack: network has no bias parameters")
	}
	idx := biases[rng.Intn(len(biases))]
	old := net.ParamAt(idx)
	sign := 1.0
	if rng.Intn(2) == 0 {
		sign = -1
	}
	val := old + sign*magnitude
	net.SetParamAt(idx, val)
	return &Perturbation{Kind: "sba", Indices: []int{idx}, Old: []float64{old}, New: []float64{val}, Params: net.NumParams()}, nil
}

// GDAConfig controls the gradient descent attack.
type GDAConfig struct {
	// Steps is the maximum number of gradient ascent iterations.
	Steps int
	// LR is the per-step parameter learning rate.
	LR float64
	// TopK restricts each step's update to the k parameters with the
	// largest gradient magnitude — the stealthiness mechanism of [5]
	// (perturb few parameters, each a little). Zero means all.
	TopK int
}

// DefaultGDAConfig mirrors the paper's stealthy setting: few parameters,
// small steps.
func DefaultGDAConfig() GDAConfig { return GDAConfig{Steps: 20, LR: 0.05, TopK: 50} }

// GDA applies the gradient descent attack of [5]: ascend the loss of a
// chosen victim input on the parameters until the network misclassifies
// it, touching only the TopK highest-gradient parameters per step. It
// returns the perturbation even when misclassification is not reached
// within Steps (the perturbation is still a fault to detect); Success
// reports whether the victim's label flipped.
func GDA(net *nn.Network, victim *tensor.Tensor, label int, cfg GDAConfig, rng *rand.Rand) (*Perturbation, bool, error) {
	if cfg.Steps <= 0 || cfg.LR <= 0 {
		return nil, false, fmt.Errorf("attack: GDA needs positive Steps and LR, got %+v", cfg)
	}
	orig := net.CopyParams()
	changed := map[int]bool{}
	success := false
	for step := 0; step < cfg.Steps; step++ {
		if net.Predict(victim) != label {
			success = true
			break
		}
		net.ZeroGrad()
		_, dLogits := nn.SoftmaxCrossEntropy(net.Forward(victim), label)
		net.Backward(dLogits)

		type pg struct {
			idx int
			g   float64
		}
		var grads []pg
		net.VisitGrads(func(i int, g float64) {
			if g != 0 {
				grads = append(grads, pg{i, g})
			}
		})
		if len(grads) == 0 {
			break // nothing to ascend
		}
		if cfg.TopK > 0 && len(grads) > cfg.TopK {
			sort.Slice(grads, func(a, b int) bool {
				return math.Abs(grads[a].g) > math.Abs(grads[b].g)
			})
			grads = grads[:cfg.TopK]
		}
		for _, e := range grads {
			net.SetParamAt(e.idx, net.ParamAt(e.idx)+cfg.LR*e.g)
			changed[e.idx] = true
		}
	}
	if !success && net.Predict(victim) != label {
		success = true
	}
	idxs := make([]int, 0, len(changed))
	for i := range changed {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	p := &Perturbation{Kind: "gda", Indices: idxs, Params: net.NumParams()}
	for _, i := range idxs {
		p.Old = append(p.Old, orig[i])
		p.New = append(p.New, net.ParamAt(i))
	}
	return p, success, nil
}

// RandomNoise perturbs count uniformly chosen parameters with Gaussian
// noise of the given standard deviation; the paper's "random
// perturbations" baseline.
func RandomNoise(net *nn.Network, count int, sigma float64, rng *rand.Rand) (*Perturbation, error) {
	n := net.NumParams()
	if count <= 0 || count > n {
		return nil, fmt.Errorf("attack: count %d out of range [1,%d]", count, n)
	}
	perm := rng.Perm(n)[:count]
	sort.Ints(perm)
	p := &Perturbation{Kind: "random", Indices: perm, Params: n}
	for _, idx := range perm {
		old := net.ParamAt(idx)
		val := old + rng.NormFloat64()*sigma
		net.SetParamAt(idx, val)
		p.Old = append(p.Old, old)
		p.New = append(p.New, val)
	}
	return p, nil
}

// BitFlip flips one random bit in the IEEE-754 float32 representation of
// count randomly chosen parameters — the off-chip-memory fault model of
// the reverse-engineering / fault-injection attacks cited in §I. (The
// engine computes in float64; the parameter is round-tripped through
// float32 as a hardware weight buffer would store it.)
func BitFlip(net *nn.Network, count int, rng *rand.Rand) (*Perturbation, error) {
	n := net.NumParams()
	if count <= 0 || count > n {
		return nil, fmt.Errorf("attack: count %d out of range [1,%d]", count, n)
	}
	perm := rng.Perm(n)[:count]
	sort.Ints(perm)
	p := &Perturbation{Kind: "bitflip", Indices: perm, Params: n}
	for _, idx := range perm {
		old := net.ParamAt(idx)
		flipped := flipStoredBit(old, uint(rng.Intn(32)))
		net.SetParamAt(idx, flipped)
		p.Old = append(p.Old, old)
		p.New = append(p.New, flipped)
	}
	return p, nil
}

// flipStoredBit flips one bit of v's stored float32 representation and
// returns the resulting float64 parameter value. Exponent-top flips can
// produce NaN/Inf; a real accelerator would propagate them, but they
// make every comparison trivially fail, so they saturate to a large
// finite value to keep the fault challenging.
func flipStoredBit(v float64, bit uint) float64 {
	bits := math.Float32bits(float32(v))
	flipped := float64(math.Float32frombits(bits ^ (1 << bit)))
	if math.IsNaN(flipped) || math.IsInf(flipped, 0) {
		flipped = math.Copysign(3.4e38, v)
	}
	return flipped
}
