package attack

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func TestTrojanImplantsBackdoor(t *testing.T) {
	net := victimNet()
	snap := paramsSnapshot(net)
	ds := data.Digits(30, 10, 10, 210)
	cleans := make([]*tensor.Tensor, 0, 20)
	for _, s := range ds.Samples[:20] {
		cleans = append(cleans, s.X)
	}
	base := make([]int, len(cleans))
	for i, c := range cleans {
		base[i] = net.Predict(c)
	}
	implanted := 0
	for _, s := range ds.Samples[20:] {
		trigger := s.X
		target := (net.Predict(trigger) + 1) % 10
		p, success, err := Trojan(net, trigger, target, cleans, DefaultTrojanConfig())
		if err != nil {
			t.Fatal(err)
		}
		// The clean constraint holds by construction, success or not.
		for i, c := range cleans {
			if net.Predict(c) != base[i] {
				t.Fatalf("trojan flipped clean probe %d", i)
			}
		}
		if success {
			implanted++
			if net.Predict(trigger) != target {
				t.Fatal("trojan reported success but trigger not steered to target")
			}
			if len(p.Indices) == 0 {
				t.Fatal("successful trojan touched no parameters")
			}
		}
		if err := p.Revert(net); err != nil {
			t.Fatal(err)
		}
		assertRestored(t, net, snap)
	}
	if implanted == 0 {
		t.Fatal("trojan never implanted a backdoor on any trigger")
	}
}

func TestTrojanValidation(t *testing.T) {
	net := victimNet()
	ds := data.Digits(1, 10, 10, 211)
	x := ds.Samples[0].X
	if _, _, err := Trojan(net, x, 0, nil, TrojanConfig{Margin: -1}); err == nil {
		t.Error("negative margin accepted")
	}
	if _, _, err := Trojan(net, x, 99, nil, DefaultTrojanConfig()); err == nil {
		t.Error("out-of-range target class accepted")
	}
}

func TestTargetedBitFlipSignBit(t *testing.T) {
	net := victimNet()
	snap := paramsSnapshot(net)
	rng := rand.New(rand.NewSource(11))
	p, err := TargetedBitFlip(net, 5, 31, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range p.Indices {
		if p.Old[i] == 0 {
			continue // sign of zero is invisible through float64 compare
		}
		want := float64(-float32(p.Old[i]))
		if net.ParamAt(idx) != want {
			t.Fatalf("sign flip at %d: got %v, want %v", idx, net.ParamAt(idx), want)
		}
	}
	if err := p.Revert(net); err != nil {
		t.Fatal(err)
	}
	assertRestored(t, net, snap)
}

func TestTargetedBitFlipSpectrum(t *testing.T) {
	net := victimNet()
	snap := paramsSnapshot(net)
	rng := rand.New(rand.NewSource(12))
	// A low mantissa bit moves a parameter far less than an exponent bit.
	pm, err := TargetedBitFlip(net, 10, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	mantissaMax := pm.MaxDelta()
	if err := pm.Revert(net); err != nil {
		t.Fatal(err)
	}
	pe, err := TargetedBitFlip(net, 10, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	exponentMax := pe.MaxDelta()
	for i := range pe.Indices {
		if math.IsNaN(pe.New[i]) || math.IsInf(pe.New[i], 0) {
			t.Fatal("exponent flip produced non-finite value")
		}
	}
	if err := pe.Revert(net); err != nil {
		t.Fatal(err)
	}
	assertRestored(t, net, snap)
	if mantissaMax == 0 || exponentMax == 0 {
		t.Fatal("bit flips changed nothing")
	}
	if mantissaMax >= exponentMax {
		t.Fatalf("mantissa flip max |Δ| %v not below exponent flip %v", mantissaMax, exponentMax)
	}
}

func TestTargetedBitFlipValidation(t *testing.T) {
	net := victimNet()
	rng := rand.New(rand.NewSource(13))
	if _, err := TargetedBitFlip(net, 1, 32, rng); err == nil {
		t.Error("bit 32 accepted")
	}
	if _, err := TargetedBitFlip(net, 0, 31, rng); err == nil {
		t.Error("count=0 accepted")
	}
}

func zooProbes(n int, seed int64) []*tensor.Tensor {
	ds := data.Digits(n, 10, 10, seed)
	out := make([]*tensor.Tensor, n)
	for i, s := range ds.Samples {
		out[i] = s.X
	}
	return out
}

func TestQuantEvadeInBucketCaughtExact(t *testing.T) {
	net := victimNet()
	snap := paramsSnapshot(net)
	probes := zooProbes(5, 212)
	refs := make([][]float64, len(probes))
	for i, x := range probes {
		refs[i] = append([]float64(nil), net.Forward(x).Data()...)
	}
	scale, err := quant.Scale(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	p, err := QuantEvade(net, QuantEvadeConfig{
		Decimals: 3, Headroom: 0.9, InBucket: true, Probes: probes,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for i, x := range probes {
		out := net.Forward(x).Data()
		for j, v := range out {
			if v != refs[i][j] {
				moved = true
			}
			if !quant.QuantizeValue(v, scale).Matches(refs[i][j], scale) {
				t.Fatalf("probe %d output %d left its rounding bucket", i, j)
			}
		}
	}
	if !moved {
		t.Fatal("QuantEvade edit moved no output bit — exact replay would accept it")
	}
	if err := p.Revert(net); err != nil {
		t.Fatal(err)
	}
	assertRestored(t, net, snap)
}

func TestQuantEvadeToleranceBound(t *testing.T) {
	net := victimNet()
	snap := paramsSnapshot(net)
	probes := zooProbes(4, 213)
	refs := make([][]float64, len(probes))
	for i, x := range probes {
		refs[i] = append([]float64(nil), net.Forward(x).Data()...)
	}
	const tol = 1e-3
	rng := rand.New(rand.NewSource(15))
	p, err := QuantEvade(net, QuantEvadeConfig{Tol: tol, Headroom: 1, Probes: probes}, rng)
	if err != nil {
		t.Fatal(err)
	}
	maxDev := 0.0
	for i, x := range probes {
		out := net.Forward(x).Data()
		for j, v := range out {
			if d := math.Abs(v - refs[i][j]); d > maxDev {
				maxDev = d
			}
		}
	}
	if maxDev == 0 {
		t.Fatal("tolerance-evading edit moved no output")
	}
	if maxDev > tol {
		t.Fatalf("deviation %v exceeds tolerance %v", maxDev, tol)
	}
	if err := p.Revert(net); err != nil {
		t.Fatal(err)
	}
	assertRestored(t, net, snap)
}

// quantOracle is an attack-side stand-in for a QuantizedOutputs replay:
// every probe output must land in the same rounding bucket as its
// reference.
func quantOracle(t *testing.T, refs [][]float64, probes []*tensor.Tensor, decimals int) func(n *nn.Network) (bool, error) {
	t.Helper()
	scale, err := quant.Scale(decimals)
	if err != nil {
		t.Fatal(err)
	}
	return func(n *nn.Network) (bool, error) {
		for i, x := range probes {
			out := n.Forward(x).Data()
			for j, v := range out {
				if !quant.QuantizeValue(v, scale).Matches(refs[i][j], scale) {
					return false, nil
				}
			}
		}
		return true, nil
	}
}

func TestAdaptiveAgainstCoarseAndExactOracles(t *testing.T) {
	net := victimNet()
	snap := paramsSnapshot(net)
	probes := zooProbes(4, 214)
	refs := make([][]float64, len(probes))
	for i, x := range probes {
		refs[i] = append([]float64(nil), net.Forward(x).Data()...)
	}
	// GDA's ascent needs a correctly classified victim to build a
	// direction from.
	ds := data.Digits(20, 10, 10, 215)
	var victim *tensor.Tensor
	label := -1
	for _, s := range ds.Samples {
		if net.Predict(s.X) == s.Label {
			victim, label = s.X, s.Label
			break
		}
	}
	if victim == nil {
		t.Fatal("no correctly classified victim in probe set")
	}

	// Coarse quantised oracle (decimals 1): plenty of rounding slack, a
	// sub-boundary edit must exist.
	coarse := quantOracle(t, refs, probes, 1)
	rng := rand.New(rand.NewSource(16))
	p, success, err := Adaptive(net, victim, label, coarse, DefaultAdaptiveConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if !success {
		t.Fatal("adaptive attacker defeated by a decimals-1 oracle; expected evasion")
	}
	if ok, _ := coarse(net); !ok {
		t.Fatal("adaptive success but applied edit fails the oracle")
	}
	if err := p.Revert(net); err != nil {
		t.Fatal(err)
	}
	assertRestored(t, net, snap)

	// Exact oracle: whatever the attacker reports, the applied network
	// must be consistent with it — success means replay passes, defeat
	// means the best-effort edit is caught.
	exact := func(n *nn.Network) (bool, error) {
		for i, x := range probes {
			out := n.Forward(x).Data()
			for j, v := range out {
				if v != refs[i][j] {
					return false, nil
				}
			}
		}
		return true, nil
	}
	rng = rand.New(rand.NewSource(17))
	p, success, err = Adaptive(net, victim, label, exact, DefaultAdaptiveConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	passes, err := exact(net)
	if err != nil {
		t.Fatal(err)
	}
	if passes != success {
		t.Fatalf("adaptive reported success=%v but applied edit passes=%v", success, passes)
	}
	if err := p.Revert(net); err != nil {
		t.Fatal(err)
	}
	assertRestored(t, net, snap)
}
