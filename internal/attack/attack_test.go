package attack

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/train"
)

var victimNet = sync.OnceValue(func() *nn.Network {
	net := models.Tiny(nn.ReLU, 1, 10, 10, 4, 10, 201)
	ds := data.Digits(150, 10, 10, 202)
	if _, err := train.Fit(net, ds, train.Config{
		Epochs: 5, BatchSize: 16, Optimizer: train.NewAdam(0.003), Seed: 1,
	}); err != nil {
		panic(err)
	}
	return net
})

func paramsSnapshot(net *nn.Network) []float64 { return net.CopyParams() }

func assertRestored(t *testing.T, net *nn.Network, snap []float64) {
	t.Helper()
	for i, v := range snap {
		if net.ParamAt(i) != v {
			t.Fatalf("param %d not restored: %v vs %v", i, net.ParamAt(i), v)
		}
	}
}

func TestSBATouchesExactlyOneBias(t *testing.T) {
	net := victimNet()
	snap := paramsSnapshot(net)
	rng := rand.New(rand.NewSource(1))
	p, err := SBA(net, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Indices) != 1 {
		t.Fatalf("SBA touched %d params", len(p.Indices))
	}
	name := net.ParamName(p.Indices[0])
	if name[len(name)-5:] == ".W[0]" {
		t.Fatalf("SBA touched a weight: %s", name)
	}
	if math.Abs(p.New[0]-p.Old[0]) != 5 {
		t.Fatalf("SBA delta %v, want magnitude 5", p.New[0]-p.Old[0])
	}
	// Exactly one parameter differs from the snapshot.
	diff := 0
	for i, v := range snap {
		if net.ParamAt(i) != v {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d params changed, want 1", diff)
	}
	p.Revert(net)
	assertRestored(t, net, snap)
}

func TestSBAHitsOnlyBiasNames(t *testing.T) {
	net := victimNet()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		p, err := SBA(net, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		name := net.ParamName(p.Indices[0])
		// Names look like "conv1.b[3]" for biases.
		isBias := false
		for i := 0; i+2 < len(name); i++ {
			if name[i:i+3] == ".b[" {
				isBias = true
			}
		}
		if !isBias {
			t.Fatalf("SBA chose non-bias %s", name)
		}
		p.Revert(net)
	}
}

func TestGDAFlipsVictimLabel(t *testing.T) {
	net := victimNet()
	snap := paramsSnapshot(net)
	ds := data.Digits(20, 10, 10, 203)
	rng := rand.New(rand.NewSource(3))
	flips := 0
	for _, s := range ds.Samples[:10] {
		if net.Predict(s.X) != s.Label {
			continue // attack only correctly classified victims
		}
		p, success, err := GDA(net, s.X, s.Label, DefaultGDAConfig(), rng)
		if err != nil {
			t.Fatal(err)
		}
		if success {
			flips++
			if net.Predict(s.X) == s.Label {
				t.Fatal("GDA reported success but victim still classified correctly")
			}
		}
		if len(p.Indices) == 0 {
			t.Fatal("GDA touched no parameters")
		}
		if cfgK := DefaultGDAConfig(); len(p.Indices) > cfgK.TopK*cfgK.Steps {
			t.Fatalf("GDA touched %d params, exceeds TopK×Steps", len(p.Indices))
		}
		p.Revert(net)
		assertRestored(t, net, snap)
	}
	if flips == 0 {
		t.Fatal("GDA never flipped any victim")
	}
}

func TestGDAStealthiness(t *testing.T) {
	// With TopK set, per-step updates touch at most K parameters; total
	// touched should be far below the parameter count.
	net := victimNet()
	snap := paramsSnapshot(net)
	ds := data.Digits(5, 10, 10, 204)
	rng := rand.New(rand.NewSource(4))
	cfg := GDAConfig{Steps: 10, LR: 0.05, TopK: 20}
	p, _, err := GDA(net, ds.Samples[0].X, ds.Samples[0].Label, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Indices) >= net.NumParams()/2 {
		t.Fatalf("GDA touched %d of %d params; not stealthy", len(p.Indices), net.NumParams())
	}
	p.Revert(net)
	assertRestored(t, net, snap)
}

func TestGDAConfigValidation(t *testing.T) {
	net := victimNet()
	ds := data.Digits(1, 10, 10, 205)
	rng := rand.New(rand.NewSource(5))
	if _, _, err := GDA(net, ds.Samples[0].X, 0, GDAConfig{Steps: 0, LR: 0.1}, rng); err == nil {
		t.Error("Steps=0 accepted")
	}
	if _, _, err := GDA(net, ds.Samples[0].X, 0, GDAConfig{Steps: 5, LR: 0}, rng); err == nil {
		t.Error("LR=0 accepted")
	}
}

func TestRandomNoiseCountAndRevert(t *testing.T) {
	net := victimNet()
	snap := paramsSnapshot(net)
	rng := rand.New(rand.NewSource(6))
	p, err := RandomNoise(net, 10, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Indices) != 10 {
		t.Fatalf("RandomNoise touched %d params, want 10", len(p.Indices))
	}
	// Indices must be unique and sorted.
	for i := 1; i < len(p.Indices); i++ {
		if p.Indices[i] <= p.Indices[i-1] {
			t.Fatal("indices not strictly increasing")
		}
	}
	p.Revert(net)
	assertRestored(t, net, snap)
}

func TestRandomNoiseValidation(t *testing.T) {
	net := victimNet()
	rng := rand.New(rand.NewSource(7))
	if _, err := RandomNoise(net, 0, 0.5, rng); err == nil {
		t.Error("count=0 accepted")
	}
	if _, err := RandomNoise(net, net.NumParams()+1, 0.5, rng); err == nil {
		t.Error("oversized count accepted")
	}
}

func TestBitFlipChangesValueFinite(t *testing.T) {
	net := victimNet()
	snap := paramsSnapshot(net)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		p, err := BitFlip(net, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i, idx := range p.Indices {
			v := net.ParamAt(idx)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("bit flip produced non-finite value at %d", idx)
			}
			_ = i
		}
		p.Revert(net)
		assertRestored(t, net, snap)
	}
}

func TestPerturbationReapply(t *testing.T) {
	net := victimNet()
	rng := rand.New(rand.NewSource(9))
	p, err := RandomNoise(net, 5, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	attacked := make([]float64, len(p.Indices))
	for i, idx := range p.Indices {
		attacked[i] = net.ParamAt(idx)
	}
	p.Revert(net)
	p.Reapply(net)
	for i, idx := range p.Indices {
		if net.ParamAt(idx) != attacked[i] {
			t.Fatal("Reapply did not restore attacked values")
		}
	}
	p.Revert(net)
}

func TestPerturbationArchitectureMismatch(t *testing.T) {
	net := victimNet()
	rng := rand.New(rand.NewSource(10))
	p, err := RandomNoise(net, 5, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Revert(net); err != nil {
		t.Fatal(err)
	}

	// A differently-shaped network: wider channels, so a different
	// parameter count. Revert/Reapply must refuse to touch it.
	other := models.Tiny(nn.ReLU, 1, 10, 10, 8, 10, 301)
	if other.NumParams() == net.NumParams() {
		t.Fatal("test networks must differ in parameter count")
	}
	otherSnap := paramsSnapshot(other)
	if err := p.Reapply(other); err == nil {
		t.Fatal("Reapply accepted a differently-shaped network")
	}
	if err := p.Revert(other); err == nil {
		t.Fatal("Revert accepted a differently-shaped network")
	}
	assertRestored(t, other, otherSnap) // nothing written on error

	// The matching network still works after the rejections.
	if err := p.Reapply(net); err != nil {
		t.Fatal(err)
	}
	if err := p.Revert(net); err != nil {
		t.Fatal(err)
	}
}

func TestPerturbationMalformed(t *testing.T) {
	net := victimNet()
	snap := paramsSnapshot(net)

	// Misaligned slices.
	p := &Perturbation{Kind: "sba", Indices: []int{1, 2}, Old: []float64{0}, New: []float64{1, 2}}
	if err := p.Revert(net); err == nil {
		t.Error("misaligned perturbation accepted by Revert")
	}
	if err := p.Reapply(net); err == nil {
		t.Error("misaligned perturbation accepted by Reapply")
	}

	// Legacy Params==0 skips the count check but still bounds indices.
	p = &Perturbation{Kind: "sba", Indices: []int{net.NumParams()}, Old: []float64{0}, New: []float64{1}}
	if err := p.Reapply(net); err == nil {
		t.Error("out-of-range index accepted")
	}
	p = &Perturbation{Kind: "sba", Indices: []int{-1}, Old: []float64{0}, New: []float64{1}}
	if err := p.Reapply(net); err == nil {
		t.Error("negative index accepted")
	}
	assertRestored(t, net, snap)
}

func TestPerturbationString(t *testing.T) {
	p := &Perturbation{Kind: "sba", Indices: []int{1}, Old: []float64{0}, New: []float64{2}}
	if p.MaxDelta() != 2 {
		t.Fatalf("MaxDelta = %v", p.MaxDelta())
	}
	if got := p.String(); got != "sba: 1 params, max |Δ| 2" {
		t.Fatalf("String = %q", got)
	}
}
