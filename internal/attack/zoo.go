// The adaptive-adversary attack zoo (ROADMAP direction 3): attacks
// beyond the paper's Table II/III fault injections. Trojan implants a
// targeted backdoor under a clean-accuracy constraint, TargetedBitFlip
// models rowhammer-style faults at chosen bit positions, and the two
// quantisation-aware attackers — QuantEvade and Adaptive — exploit the
// acceptance slack the v4/v5 quantised wire itself creates: edits tuned
// to hide under Suite.Decimals rounding, inside a replay tolerance, or
// (for Adaptive, which holds the sealed suite) anywhere replay still
// passes.
package attack

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// TrojanConfig controls the trojan/backdoor weight edit.
type TrojanConfig struct {
	// Margin is how far the trigger's target logit is pushed past its
	// current maximum — the edit's aggressiveness, and the campaign's
	// magnitude knob: a larger margin means a larger weight edit and a
	// more detectable trojan. Zero means 0.5.
	Margin float64
}

// DefaultTrojanConfig implants with a half-unit logit margin.
func DefaultTrojanConfig() TrojanConfig { return TrojanConfig{Margin: 0.5} }

// Trojan implants a targeted backdoor by last-layer weight surgery —
// the targeted output-class steering of trojaning attacks, as opposed
// to GDA's untargeted misclassification. The target class's output
// weight row is shifted along the component of the trigger's
// penultimate activation orthogonal to every clean probe's activation:
// the trigger's target logit rises by Margin past its runner-up while
// each clean probe's logits move only by the orthogonalisation's
// floating-point residual (~1e-15), so clean predictions are preserved
// by construction rather than by constraint-checking. Success reports
// that an orthogonal component existed (the clean activations don't
// span the trigger's) and the trigger now classifies as target; when
// it is false the returned perturbation is empty and the network
// untouched.
func Trojan(net *nn.Network, trigger *tensor.Tensor, target int, cleans []*tensor.Tensor, cfg TrojanConfig) (*Perturbation, bool, error) {
	margin := cfg.Margin
	if margin == 0 {
		margin = 0.5
	}
	if margin < 0 {
		return nil, false, fmt.Errorf("attack: Trojan margin must be positive, got %v", margin)
	}
	stack := net.LayerStack
	if len(stack) == 0 {
		return nil, false, fmt.Errorf("attack: Trojan needs a layered network")
	}
	dense, ok := stack[len(stack)-1].(*nn.Dense)
	if !ok {
		return nil, false, fmt.Errorf("attack: Trojan needs a Dense output layer, got %T", stack[len(stack)-1])
	}
	if target < 0 || target >= dense.Out {
		return nil, false, fmt.Errorf("attack: Trojan target class %d out of range [0,%d)", target, dense.Out)
	}
	// Flat offset of the output layer's weight tensor in the parameter
	// registry; row t of the [Out,In] weight starts at offset + t·In.
	offset, found := 0, false
	for _, p := range net.Params() {
		if p == dense.Weight {
			found = true
			break
		}
		offset += p.W.Size()
	}
	if !found {
		return nil, false, fmt.Errorf("attack: Trojan output layer weight not in parameter registry")
	}

	// Penultimate activations: forward through everything but the
	// output layer.
	hidden := func(x *tensor.Tensor) []float64 {
		for _, l := range stack[:len(stack)-1] {
			x = l.Forward(x)
		}
		return append([]float64(nil), x.Data()...)
	}
	ht := hidden(trigger)
	if len(ht) != dense.In {
		return nil, false, fmt.Errorf("attack: Trojan penultimate activation has %d values, output layer expects %d", len(ht), dense.In)
	}
	htNorm2 := tensor.SumSquares(ht)

	// Orthonormal basis of the clean activations (modified
	// Gram-Schmidt), then the trigger activation's residual outside
	// their span. An edit along the residual leaves every clean logit
	// fixed up to rounding.
	var basis [][]float64
	for _, c := range cleans {
		v := hidden(c)
		for _, b := range basis {
			d := tensor.Dot(v, b)
			for i := range v {
				v[i] -= d * b[i]
			}
		}
		n2 := tensor.SumSquares(v)
		if n2 <= 1e-18*htNorm2 {
			continue // linearly dependent on earlier probes
		}
		inv := 1 / math.Sqrt(n2)
		for i := range v {
			v[i] *= inv
		}
		basis = append(basis, v)
	}
	r := append([]float64(nil), ht...)
	for _, b := range basis {
		d := tensor.Dot(r, b)
		for i := range r {
			r[i] -= d * b[i]
		}
	}
	// The edit's leverage on the trigger: Δlogit_t = α·(r·h) = α·‖r‖².
	rNorm2 := tensor.SumSquares(r)
	if rNorm2 <= 1e-12*htNorm2 {
		// Clean activations span the trigger's — no invisible steering
		// direction exists. The attacker walks away.
		return &Perturbation{Kind: "trojan", Params: net.NumParams()}, false, nil
	}

	logits := net.Forward(trigger).Data()
	maxOther := math.Inf(-1)
	for c, v := range logits {
		if c != target && v > maxOther {
			maxOther = v
		}
	}
	alpha := (maxOther - logits[target] + margin) / rNorm2

	n := net.NumParams()
	p := &Perturbation{Kind: "trojan", Params: n}
	for i, ri := range r {
		if ri == 0 {
			continue
		}
		idx := offset + target*dense.In + i
		old := net.ParamAt(idx)
		val := old + alpha*ri
		if val == old {
			continue
		}
		net.SetParamAt(idx, val)
		p.Indices = append(p.Indices, idx)
		p.Old = append(p.Old, old)
		p.New = append(p.New, val)
	}
	success := len(p.Indices) > 0 && net.Predict(trigger) == target
	return p, success, nil
}

// TargetedBitFlip flips the given bit position of the stored float32
// representation in count randomly chosen parameters — the
// rowhammer-style fault model where the attacker controls which bit of
// the weight buffer flips: 31 is the sign, 30–23 the exponent, 22–0
// the mantissa (most to least significant). Exponent flips are
// catastrophic, low mantissa flips nearly invisible, which is exactly
// the detectability spectrum campaigns sweep.
func TargetedBitFlip(net *nn.Network, count int, bit uint, rng *rand.Rand) (*Perturbation, error) {
	n := net.NumParams()
	if count <= 0 || count > n {
		return nil, fmt.Errorf("attack: count %d out of range [1,%d]", count, n)
	}
	if bit > 31 {
		return nil, fmt.Errorf("attack: bit %d out of range [0,31]", bit)
	}
	perm := rng.Perm(n)[:count]
	sort.Ints(perm)
	p := &Perturbation{Kind: "bitflip", Indices: perm, Params: n}
	for _, idx := range perm {
		old := net.ParamAt(idx)
		flipped := flipStoredBit(old, bit)
		net.SetParamAt(idx, flipped)
		p.Old = append(p.Old, old)
		p.New = append(p.New, flipped)
	}
	return p, nil
}

// QuantEvadeConfig controls the quantisation-aware attacker.
type QuantEvadeConfig struct {
	// Decimals is the suite's quantised-comparison precision; the
	// deviation bound derives from its rounding half-step 0.5·10^-d.
	Decimals int
	// Tol, when positive, bounds the raw output deviation instead —
	// the attack hides inside a replay tolerance (-tol) rather than
	// under the rounding boundary.
	Tol float64
	// Headroom scales the deviation bound: the edit keeps every probe
	// output within Headroom × (half-step or Tol) of its reference.
	// Below 1 leaves slack under the boundary; above 1 deliberately
	// crosses it — campaigns sweep Headroom across 1 to trace the
	// detection cliff. Zero means 0.5.
	Headroom float64
	// InBucket additionally requires round(out·scale) equality with the
	// reference on every probe output — the exact QuantizedOutputs
	// verdict. With the sealed suite's inputs as probes this guarantees
	// the quantized-mode replay passes, whatever side of a rounding
	// boundary a reference sits on.
	InBucket bool
	// Probes are the inputs deviation is measured on — the sealed
	// suite's inputs for the strongest (suite-aware) attacker.
	Probes []*tensor.Tensor
	// Tries is how many candidate parameters to attempt (default 8):
	// a dead or instantly-detected parameter moves on to the next.
	Tries int
	// Iters is the bisection depth per candidate (default 40).
	Iters int
}

// QuantEvade constructs a sub-rounding edit: the largest single-
// parameter change whose probe outputs all stay within the configured
// bound of their references — below the Suite.Decimals rounding
// boundary or inside the replay tolerance — while still moving at
// least one output bit, so ExactOutputs replay catches what
// QuantizedOutputs replay accepts. The edit magnitude is found by
// doubling until the bound breaks and bisecting back; parameters whose
// edits cannot satisfy both constraints (dead parameters, or ones
// whose smallest effective step already crosses) are skipped, up to
// Tries candidates. The returned perturbation is left applied.
func QuantEvade(net *nn.Network, cfg QuantEvadeConfig, rng *rand.Rand) (*Perturbation, error) {
	if len(cfg.Probes) == 0 {
		return nil, fmt.Errorf("attack: QuantEvade needs at least one probe input")
	}
	scale, err := quant.Scale(cfg.Decimals)
	if err != nil {
		return nil, err
	}
	headroom := cfg.Headroom
	if headroom == 0 {
		headroom = 0.5
	}
	if headroom < 0 {
		return nil, fmt.Errorf("attack: QuantEvade headroom must be positive, got %v", headroom)
	}
	bound := headroom * 0.5 / scale
	if cfg.Tol > 0 {
		bound = headroom * cfg.Tol
	}
	tries := cfg.Tries
	if tries == 0 {
		tries = 8
	}
	iters := cfg.Iters
	if iters == 0 {
		iters = 40
	}

	refs := make([][]float64, len(cfg.Probes))
	for i, x := range cfg.Probes {
		refs[i] = append([]float64(nil), net.Forward(x).Data()...)
	}
	// check reports whether the applied edit evades (every probe output
	// within bound, and in the reference's rounding bucket when
	// InBucket) and whether it moved any output at all.
	check := func() (evades, moved bool) {
		for i, x := range cfg.Probes {
			out := net.Forward(x).Data()
			for j, v := range out {
				ref := refs[i][j]
				if v != ref {
					moved = true
				}
				if math.Abs(v-ref) > bound {
					return false, moved
				}
				if cfg.InBucket && !quant.QuantizeValue(v, scale).Matches(ref, scale) {
					return false, moved
				}
			}
		}
		return true, moved
	}

	n := net.NumParams()
	for try := 0; try < tries; try++ {
		idx := rng.Intn(n)
		old := net.ParamAt(idx)
		sign := 1.0
		if rng.Intn(2) == 0 {
			sign = -1
		}
		eval := func(d float64) (bool, bool) {
			net.SetParamAt(idx, old+d)
			return check()
		}
		lo, hi := 0.0, sign
		violating := false
		for k := 0; k < 60; k++ {
			if ev, _ := eval(hi); !ev {
				violating = true
				break
			}
			lo = hi
			hi *= 2 //detlint:allow floatreduce(exponential search step, not a data reduction: hi is the probed edit magnitude doubling until the oracle rejects)
		}
		if violating {
			for k := 0; k < iters; k++ {
				mid := lo + (hi-lo)/2
				if ev, _ := eval(mid); ev {
					lo = mid
				} else {
					hi = mid
				}
			}
		}
		if lo != 0 {
			if ev, moved := eval(lo); ev && moved {
				return &Perturbation{
					Kind:    "subround",
					Indices: []int{idx},
					Old:     []float64{old},
					New:     []float64{old + lo},
					Params:  n,
				}, nil
			}
		}
		net.SetParamAt(idx, old)
	}
	return nil, fmt.Errorf("attack: QuantEvade found no sub-boundary edit in %d candidates", tries)
}

// AdaptiveConfig controls the suite-aware adaptive attacker.
type AdaptiveConfig struct {
	// Steps and TopK shape the damaging direction: a GDA ascent of
	// Steps iterations touching TopK parameters per step.
	Steps int
	TopK  int
	// MaxScale is the largest per-parameter edit magnitude probed; the
	// attacker bisects the scale α ∈ (0, MaxScale] of the normalised
	// direction against the replay oracle.
	MaxScale float64
	// Iters is the bisection depth (default 30).
	Iters int
}

// DefaultAdaptiveConfig mirrors the GDA stealthy setting with a
// half-unit scale ceiling.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{Steps: 5, TopK: 50, MaxScale: 0.5, Iters: 30}
}

// Adaptive is the attacker the threat model worries about most: it
// holds the sealed suite — through the passes oracle, typically a
// Suite.Replay closure over the live network — and searches for the
// largest damaging edit that still passes replay. The edit direction
// is GDA's loss-ascent direction on a victim input, normalised to unit
// maximum magnitude; the attacker then bisects its scale α against the
// oracle for the largest α ≤ MaxScale that passes. Success reports
// that a non-trivial passing edit was found and applied. When every
// probed scale is caught, the attacker is defeated: its best effort —
// the smallest probed (and caught) edit — is left applied so a
// campaign still measures a detection, and success is false.
func Adaptive(net *nn.Network, victim *tensor.Tensor, label int, passes func(*nn.Network) (bool, error), cfg AdaptiveConfig, rng *rand.Rand) (*Perturbation, bool, error) {
	if passes == nil {
		return nil, false, fmt.Errorf("attack: Adaptive needs a replay oracle")
	}
	if cfg.MaxScale <= 0 {
		return nil, false, fmt.Errorf("attack: Adaptive needs positive MaxScale, got %v", cfg.MaxScale)
	}
	iters := cfg.Iters
	if iters == 0 {
		iters = 30
	}
	gp, _, err := GDA(net, victim, label, GDAConfig{Steps: cfg.Steps, LR: 0.05, TopK: cfg.TopK}, rng)
	if err != nil {
		return nil, false, err
	}
	if err := gp.Revert(net); err != nil {
		return nil, false, err
	}
	maxAbs := 0.0
	for k := range gp.Indices {
		if d := math.Abs(gp.New[k] - gp.Old[k]); d > maxAbs {
			maxAbs = d
		}
	}
	if maxAbs == 0 {
		return nil, false, fmt.Errorf("attack: Adaptive found no damaging direction (zero gradients)")
	}
	unit := make([]float64, len(gp.Indices))
	for k := range gp.Indices {
		unit[k] = (gp.New[k] - gp.Old[k]) / maxAbs
	}
	applyScale := func(a float64) {
		for k, idx := range gp.Indices {
			net.SetParamAt(idx, gp.Old[k]+a*unit[k])
		}
	}
	test := func(a float64) (bool, error) {
		applyScale(a)
		ok, err := passes(net)
		for k, idx := range gp.Indices {
			net.SetParamAt(idx, gp.Old[k])
		}
		return ok, err
	}
	lo, hi := 0.0, cfg.MaxScale
	ok, err := test(hi)
	if err != nil {
		return nil, false, err
	}
	if ok {
		lo = hi
	} else {
		for k := 0; k < iters; k++ {
			mid := lo + (hi-lo)/2
			ok, err := test(mid)
			if err != nil {
				return nil, false, err
			}
			if ok {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	// lo is the largest probed scale that passed replay (0 when none
	// did); hi is always a probed-and-caught scale.
	alpha, success := lo, lo > 0
	if !success {
		alpha = hi
	}
	applyScale(alpha)
	p := &Perturbation{Kind: "adaptive", Indices: gp.Indices, Params: net.NumParams()}
	moved := false
	for k, idx := range gp.Indices {
		p.Old = append(p.Old, gp.Old[k])
		p.New = append(p.New, net.ParamAt(idx))
		if p.New[k] != p.Old[k] {
			moved = true
		}
	}
	return p, success && moved, nil
}
