package validate

import "fmt"

// Wire names a wire dialect of the served-IP protocol family — the one
// enum behind the CLI's -wire gob|f32|quant flag, DialOptions.Wire,
// ServerOptions.Wire and ReplayConfig.Wire. It replaces the F32/Quant
// boolean sprawl those options accreted: one value states which frames
// a session carries instead of three flags whose combinations had to
// be cross-checked at every call site.
type Wire int

const (
	// WireAuto is the zero value: "no preference stated". Dialling
	// resolves it through the deprecated DialOptions.F32/Quant aliases
	// and lands on WireGob when those are unset too; replay resolves it
	// to the comparison native to the session (the quantised wire
	// verdict when the suite and session support it, the generic float
	// comparison otherwise).
	WireAuto Wire = iota
	// WireGob is protocol v2: gob-framed float64 tensors in both
	// directions — the bit-exact default dialect.
	WireGob
	// WireF32 is protocol v3: float32 tensor frames (half the replay
	// bandwidth), and float32 evaluation on servers hosting a float32
	// fleet. Replay against it needs ReplayConfig.Tolerance.
	WireF32
	// WireQuant is protocol v4: quantised delta-encoded replay frames
	// for QuantizedOutputs suites, with verdicts computed on the wire
	// representation.
	WireQuant
)

// String implements fmt.Stringer, returning the -wire flag spelling.
func (w Wire) String() string {
	switch w {
	case WireAuto:
		return "auto"
	case WireGob:
		return "gob"
	case WireF32:
		return "f32"
	case WireQuant:
		return "quant"
	default:
		return fmt.Sprintf("wire(%d)", int(w))
	}
}

// ParseWire maps a -wire flag value onto the enum. The empty string
// (flag not given) and "auto" both mean WireAuto.
func ParseWire(s string) (Wire, error) {
	switch s {
	case "", "auto":
		return WireAuto, nil
	case "gob":
		return WireGob, nil
	case "f32":
		return WireF32, nil
	case "quant":
		return WireQuant, nil
	default:
		return 0, fmt.Errorf("validate: unknown wire dialect %q (want gob, f32 or quant)", s)
	}
}
