package validate

import (
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
)

func TestDetectsEarlyExitAgreesWithValidate(t *testing.T) {
	suite := goldenSuite(t, 10, ExactOutputs)
	net := goldenNet()
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		p, err := attack.RandomNoise(net, 1, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := suite.Validate(LocalIP{Net: net})
		if err != nil {
			t.Fatal(err)
		}
		det, err := suite.Detects(LocalIP{Net: net})
		if err != nil {
			t.Fatal(err)
		}
		p.Revert(net)
		if det == rep.Passed {
			t.Fatalf("trial %d: Detects=%v but Validate passed=%v", trial, det, rep.Passed)
		}
	}
}

func TestPrefix(t *testing.T) {
	suite := goldenSuite(t, 8, ExactOutputs)
	pre := suite.Prefix(3)
	if pre.Len() != 3 {
		t.Fatalf("prefix length %d", pre.Len())
	}
	if pre.Mode != suite.Mode || pre.Decimals != suite.Decimals {
		t.Fatal("prefix lost comparison settings")
	}
	if suite.Prefix(100).Len() != 8 {
		t.Fatal("oversized prefix should clamp")
	}
	rep, err := pre.Validate(LocalIP{Net: goldenNet()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatal("prefix of valid suite failed")
	}
}

func TestPerturbationsPopulation(t *testing.T) {
	net := goldenNet()
	snap := net.CopyParams()
	perts, err := Perturbations(net,
		func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, error) {
			return attack.SBA(n, 5, rng)
		}, 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(perts) != 15 {
		t.Fatalf("%d perturbations", len(perts))
	}
	// Network untouched after drawing the population.
	for i, v := range snap {
		if net.ParamAt(i) != v {
			t.Fatalf("param %d perturbed after population draw", i)
		}
	}
	if _, err := Perturbations(net, nil, 0, 1); err == nil {
		t.Fatal("trials=0 accepted")
	}
}

func TestDetectionRateOverMatchesDetectionRate(t *testing.T) {
	net := goldenNet()
	suite := goldenSuite(t, 10, ExactOutputs)
	atk := func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, error) {
		return attack.RandomNoise(n, 2, 0.5, rng)
	}
	direct, err := DetectionRate(net, suite, atk, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	perts, err := Perturbations(net, atk, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	over, err := DetectionRateOver(net, suite, perts)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Detected != over.Detected || direct.Trials != over.Trials {
		t.Fatalf("direct %v vs precomputed %v", direct, over)
	}
}

func TestPredictDetectionMatchesMeasured(t *testing.T) {
	// The paper's premise: parameter coverage predicts detection. On a
	// ReLU network with exact comparison, the analytic rate (fraction
	// of perturbations touching a covered parameter) should closely
	// track the measured rate.
	net := goldenNet()
	ds := dataDigits(t)
	res, err := coreSelect(t, net, ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	suite := BuildSuite("pred", net, res.Tests, ExactOutputs)
	atk := func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, error) {
		return attack.RandomNoise(n, 1, 0.5, rng)
	}
	perts, err := Perturbations(net, atk, 80, 13)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := DetectionRateOver(net, suite, perts)
	if err != nil {
		t.Fatal(err)
	}
	predicted := PredictDetection(res.Covered, perts)
	if diff := predicted - measured.Rate(); diff > 0.1 || diff < -0.1 {
		t.Fatalf("predicted %.3f vs measured %.3f", predicted, measured.Rate())
	}
}

func TestPredictDetectionEmpty(t *testing.T) {
	if PredictDetection(nil, nil) != 0 {
		t.Fatal("empty population should predict 0")
	}
}

// dataDigits returns the digit pool used by the prediction test.
func dataDigits(t *testing.T) *data.Dataset {
	t.Helper()
	return data.Digits(60, 10, 10, 303)
}

// coreSelect runs Algorithm 1 with default options.
func coreSelect(t *testing.T, net *nn.Network, ds *data.Dataset, n int) (*core.Result, error) {
	t.Helper()
	return core.SelectFromTraining(net, ds, core.DefaultOptions(n))
}
