package validate

import (
	"math/rand"
	"testing"

	"repro/internal/attack"
)

// Attack-zoo integration tests: the quantisation-aware attacker from
// internal/attack, measured against the replay modes it targets. The
// property pinned here is the campaign's headline asymmetry — an edit
// optimised to keep every suite output inside its rounding bucket
// evades QuantizedOutputs replay and is caught by ExactOutputs replay —
// at each precision the v4 wire tests probe, on the local path and over
// the v5 quantised wire.

func TestQuantEvasionEvadesQuantizedCaughtByExact(t *testing.T) {
	suite := goldenSuite(t, 10, QuantizedOutputs)
	for _, decimals := range []int{1, 3, 6} {
		sq := *suite
		sq.Decimals = decimals
		se := *suite
		se.Mode = ExactOutputs
		se.Decimals = decimals

		// The attacker knows the sealed inputs and the precision: it
		// optimises an edit that moves raw output bits while every probed
		// output stays in its rounding bucket.
		target := goldenNet().Clone()
		rng := rand.New(rand.NewSource(int64(40 + decimals)))
		p, err := attack.QuantEvade(target, attack.QuantEvadeConfig{
			Decimals: decimals, Headroom: 0.9, InBucket: true, Probes: suite.Inputs,
		}, rng)
		if err != nil {
			t.Fatalf("decimals %d: %v", decimals, err)
		}
		if len(p.Indices) == 0 {
			t.Fatalf("decimals %d: QuantEvade applied no edit", decimals)
		}

		// Local replay: quantized mode accepts the evading model, exact
		// mode detects it.
		caught, err := sq.Detects(LocalIP{Net: target})
		if err != nil {
			t.Fatal(err)
		}
		if caught {
			t.Fatalf("decimals %d: sub-rounding edit detected by local quantized replay", decimals)
		}
		caught, err = se.Detects(LocalIP{Net: target})
		if err != nil {
			t.Fatal(err)
		}
		if !caught {
			t.Fatalf("decimals %d: sub-rounding edit not detected by local exact replay", decimals)
		}

		// The v5 quantised wire must agree with the local quantized
		// verdict: the evasion survives the network dialect too.
		_, addr := startServerMax(t, target, protocolVersion)
		qip := dialQuant(t, addr, false)
		rep, err := sq.ValidateWith(qip, ValidateOptions{Batch: 4})
		if err != nil {
			t.Fatalf("decimals %d: %v", decimals, err)
		}
		if !rep.Passed {
			t.Fatalf("decimals %d: v5 quantised wire detected the edit local quantized replay accepts: %+v", decimals, rep)
		}

		// And the exact-mode replay over the float64 wire still catches
		// it — remote validation loses none of the exact-mode power.
		eip, err := DialWith(addr, DialOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err = se.ValidateWith(eip, ValidateOptions{Batch: 4})
		eip.Close()
		if err != nil {
			t.Fatalf("decimals %d: %v", decimals, err)
		}
		if rep.Passed {
			t.Fatalf("decimals %d: exact replay over the wire missed the sub-rounding edit", decimals)
		}
	}
}
