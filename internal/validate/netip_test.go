package validate

import (
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/tensor"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, goldenNet())
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr()
}

func TestRemoteQueryMatchesLocal(t *testing.T) {
	_, addr := startServer(t)
	ip, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()

	rng := rand.New(rand.NewSource(1))
	local := LocalIP{Net: goldenNet()}
	for trial := 0; trial < 5; trial++ {
		x := tensor.New(1, 10, 10)
		x.FillNormal(rng, 0.5, 0.2)
		x.Clamp(0, 1)
		want, err := local.Query(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ip.Query(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data() {
			if want.Data()[i] != got.Data()[i] {
				t.Fatalf("trial %d: remote output differs at %d", trial, i)
			}
		}
	}
}

func TestRemoteValidationFlow(t *testing.T) {
	// The full Fig. 1 flow over the wire: vendor builds and seals a
	// suite, user opens it and validates the served IP.
	_, addr := startServer(t)
	suite := goldenSuite(t, 5, ExactOutputs)
	ip, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	rep, err := suite.Validate(ip)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("remote validation of intact IP failed: %+v", rep)
	}
}

func TestRemoteDetectsAttackedServer(t *testing.T) {
	net := goldenNet()
	suite := goldenSuite(t, 10, ExactOutputs)
	rng := rand.New(rand.NewSource(3))
	p, err := attack.SBA(net, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Revert(net)

	_, addr := startServer(t) // serves the (attacked) shared network
	ip, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	rep, err := suite.Validate(ip)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("attacked remote IP passed validation")
	}
}

func TestRemoteBadInputShape(t *testing.T) {
	_, addr := startServer(t)
	ip, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	// Wrong input shape: the server must answer with an error, not die.
	if _, err := ip.Query(tensor.New(2, 3)); err == nil {
		t.Fatal("bad shape accepted by server")
	}
	// The session must still work afterwards.
	if _, err := ip.Query(tensor.New(1, 10, 10)); err != nil {
		t.Fatalf("session broken after bad query: %v", err)
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestServerCloseStopsAccepting(t *testing.T) {
	srv, addr := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr); err == nil {
		t.Fatal("dial succeeded after Close")
	}
}

// flakyListener injects transient Accept errors ahead of real
// connections, modelling the ECONNABORTED/EMFILE bursts a loaded
// listener sees.
type flakyListener struct {
	net.Listener
	failures int
}

func (f *flakyListener) Accept() (net.Conn, error) {
	if f.failures > 0 {
		f.failures--
		return nil, errors.New("accept: connection aborted (transient)")
	}
	return f.Listener.Accept()
}

// TestServerSurvivesTransientAcceptErrors is the regression test for the
// accept-loop bug: a single transient Accept error used to return from
// acceptLoop and silently kill the endpoint even though Close was never
// called. The server must retry and still answer queries afterwards,
// and Close must still shut it down cleanly.
func TestServerSurvivesTransientAcceptErrors(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(&flakyListener{Listener: l, failures: 3}, goldenNet())
	defer srv.Close()

	ip, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ip.Query(tensor.New(1, 10, 10)); err != nil {
		ip.Close()
		t.Fatalf("server died after transient accept errors: %v", err)
	}
	ip.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
}

// TestServerCloseDuringAcceptBackoff: Close must end the accept loop
// even while it is sleeping out an error backoff (a permanently failing
// listener keeps the loop in backoff forever until Close).
func TestServerCloseDuringAcceptBackoff(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// More failures than any test will consume: the loop lives in
	// backoff from the start.
	srv := Serve(&flakyListener{Listener: l, failures: 1 << 30}, goldenNet())
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close during backoff: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on a backing-off accept loop")
	}
}
