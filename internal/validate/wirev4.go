package validate

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Wire protocol v4: quantised delta-encoded replay frames.
//
// A QuantizedOutputs verdict only ever looks at the outputs rounded to
// the suite's decimal precision, so the v2/v3 float payloads ship
// mostly bits the comparison throws away. A v4 session carries each
// output tensor as fixed-point integers at the requested precision,
// zig-zag varint delta-encoded against the suite's quantised reference
// outputs when the client shipped them (an intact IP then answers in
// ~one byte per value) or against the previous output of the exchange
// otherwise, and the client compares verdicts on that wire
// representation directly — v4 verdicts are the QuantizedOutputs
// verdicts by construction (internal/quant/codec.go holds the value
// codec and its exactness argument, including the raw-float escape
// that keeps diverged NaN/Inf outputs detectable).
//
// The request direction rides a replay-frame cache: validation traffic
// is the same sealed suite replayed over and over, so a request whose
// frame (inputs + references + precision) is byte-identical to one
// already sent on this connection is a fixed-size back-reference — a
// delta of nothing against the previous identical frame. Client and
// server run the same deterministic FIFO eviction (v4CacheFrames /
// v4CacheBytes, frames too big to cache are never cached by either
// side), so a back-reference can never dangle. The cache is
// per-connection state; a re-dial starts empty on both ends.
//
// Inputs are NOT quantised — they ship as exact float64 bits (denser
// than gob's float encoding), so the server evaluates exactly the
// suite's inputs and bit-identity of the evaluation is untouched.
//
// Wire protocol v5 keeps the v4 framing bit-for-bit and adds the
// shared-store capability on top: before uploading a new frame body,
// the client sends a probe — the frame's content hash (frameKey) with
// a fresh Seq and no body — and the server answers either with the
// evaluated response (store hit: the frame is pinned into this
// session's cache under Seq, and future requests back-reference it) or
// with a NeedFrame response, upon which the client re-sends the body
// under the same Seq. The store (framestore.go) is process-wide and
// content-addressed, so a re-dial re-establishes steady state at probe
// cost instead of full-frame cost. On a v5 session any unresolvable
// back-reference is likewise answered NeedFrame instead of the v4
// cache-window error, which makes client/server cache-bound mismatch
// (both ends configurable via DialOptions/ServerOptions on v5)
// self-healing rather than session-fatal; v4 sessions keep the
// compiled-in bounds and the error byte-identically.

// v4 replay-frame cache bounds, shared verbatim by a v4 session's
// client and server so their eviction decisions stay in lockstep. On
// v5 sessions they are only the defaults — each end may configure its
// own bounds, and a resulting miss self-heals via NeedFrame.
const (
	v4CacheFrames = 256
	v4CacheBytes  = 8 << 20
)

// cacheBoundsOrDefault resolves configured session-cache bounds: zero
// or negative values take the compiled v4 defaults.
func cacheBoundsOrDefault(frames, bytes int) (int, int) {
	if frames <= 0 {
		frames = v4CacheFrames
	}
	if bytes <= 0 {
		bytes = v4CacheBytes
	}
	return frames, bytes
}

// wireBits is a float64 tensor as raw little-endian IEEE 754 bits:
// exact, and ~11% denser than gob's trailing-zero-trimmed floats.
type wireBits struct {
	Shape []int
	Bits  []byte
}

// frameV4 is the cacheable content of one v4 exchange: the inputs, the
// optional quantised reference outputs (the response delta base), and
// the precision/fleet the frame evaluates under.
type frameV4 struct {
	Inputs []wireBits
	// Refs holds the concatenated codec encodings of one reference
	// frame per input (each delta-encoded against the previous), RefN
	// the value count of each; both empty when the requester has no
	// references to share.
	Refs []byte
	RefN []int
	// Decimals is the fixed-point precision of the response frames.
	Decimals uint8
	// F32 asks for evaluation on the server's float32 fleet when it has
	// one (the v3 semantics); without one the float64 clones answer.
	F32 bool
}

// requestV4 is one pipelined v4/v5 exchange. Frame carries a new
// replay frame numbered Seq; a nil Frame replays the cached frame Seq.
// On a v5 session a nil Frame with a Hash is a store probe: the client
// claims frame content by hash and the server either pins the stored
// frame under Seq and answers, or asks for the body with NeedFrame.
// The field is never set on v4 sessions, where gob omits it — v4
// request bytes are unchanged.
type requestV4 struct {
	ID    uint64
	Seq   uint64
	Frame *frameV4
	Hash  []byte
}

// wireQuant is one output tensor in quantised wire form.
type wireQuant struct {
	Shape []int
	Data  []byte
}

// responseV4 answers one v4/v5 exchange. NeedFrame (v5 only; gob omits
// it on v4 sessions) asks the client to re-send the request's frame
// body under the same Seq — the store-miss half of the probe exchange,
// and the self-healing answer to any unresolvable v5 back-reference.
type responseV4 struct {
	ID        uint64
	Outputs   []wireQuant
	Err       string
	NeedFrame bool
}

// shapeSize validates a wire shape and returns its element count,
// rejecting negative dimensions and products that overflow.
func shapeSize(shape []int) (int, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return 0, fmt.Errorf("validate: negative dimension in wire tensor")
		}
		if d > 0 && n > math.MaxInt/d {
			return 0, fmt.Errorf("validate: wire tensor shape %v overflows", shape)
		}
		n *= d
	}
	return n, nil
}

func toWireBits(t *tensor.Tensor) wireBits {
	bits := make([]byte, 8*t.Size())
	for i, v := range t.Data() {
		binary.LittleEndian.PutUint64(bits[8*i:], math.Float64bits(v))
	}
	return wireBits{Shape: append([]int(nil), t.Shape()...), Bits: bits}
}

func fromWireBits(w wireBits) (*tensor.Tensor, error) {
	n, err := shapeSize(w.Shape)
	if err != nil {
		return nil, err
	}
	if len(w.Bits) != 8*n {
		return nil, fmt.Errorf("validate: wire tensor shape %v does not match %d payload bytes", w.Shape, len(w.Bits))
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(w.Bits[8*i:]))
	}
	return tensor.FromSlice(data, w.Shape...), nil
}

// frameCost is the cache-accounting size of a frame — a pure function
// of the frame content, so client and server compute identical costs.
func frameCost(fr *frameV4) int {
	cost := len(fr.Refs)
	for _, in := range fr.Inputs {
		cost += len(in.Bits)
	}
	return cost
}

// frameKey is the client-side content hash a frame is deduplicated by.
func frameKey(fr *frameV4) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(fr.Decimals))
	if fr.F32 {
		put(1)
	} else {
		put(0)
	}
	put(uint64(len(fr.Inputs)))
	for _, in := range fr.Inputs {
		put(uint64(len(in.Shape)))
		for _, d := range in.Shape {
			put(uint64(d))
		}
		put(uint64(len(in.Bits)))
		h.Write(in.Bits)
	}
	put(uint64(len(fr.RefN)))
	for _, n := range fr.RefN {
		put(uint64(n))
	}
	h.Write(fr.Refs)
	return string(h.Sum(nil))
}

// decodeRefs decodes a frame's reference block into one quantised
// frame per input.
func decodeRefs(fr *frameV4) ([]quant.Frame, error) {
	if len(fr.RefN) == 0 && len(fr.Refs) == 0 {
		return nil, nil
	}
	if len(fr.RefN) != len(fr.Inputs) {
		return nil, fmt.Errorf("validate: frame has %d reference counts for %d inputs", len(fr.RefN), len(fr.Inputs))
	}
	refs := make([]quant.Frame, len(fr.RefN))
	src := fr.Refs
	var prev quant.Frame
	for i, n := range fr.RefN {
		if n < 0 || n > len(fr.Refs) {
			// Each encoded value costs at least one byte, so a count
			// beyond the payload size is malformed (and must not drive
			// an allocation).
			return nil, fmt.Errorf("validate: reference frame %d claims %d values in a %d-byte block", i, n, len(fr.Refs))
		}
		var err error
		refs[i], src, err = quant.DecodeFrame(src, n, prev)
		if err != nil {
			return nil, fmt.Errorf("validate: reference frame %d: %w", i, err)
		}
		prev = refs[i]
	}
	if len(src) != 0 {
		return nil, fmt.Errorf("validate: %d trailing bytes after reference frames", len(src))
	}
	return refs, nil
}

// storedFrameV4 is a resolved replay frame: decoded inputs and
// references plus the evaluation parameters, ready for any number of
// replays.
type storedFrameV4 struct {
	inputs []*tensor.Tensor
	refs   []quant.Frame
	scale  float64
	f32    bool
	cost   int
}

// resolveFrameV4 validates and decodes a freshly received frame.
func resolveFrameV4(fr *frameV4) (*storedFrameV4, error) {
	if len(fr.Inputs) == 0 {
		return nil, fmt.Errorf("validate: empty query batch")
	}
	scale, err := quant.Scale(int(fr.Decimals))
	if err != nil {
		return nil, err
	}
	refs, err := decodeRefs(fr)
	if err != nil {
		return nil, err
	}
	sf := &storedFrameV4{refs: refs, scale: scale, f32: fr.F32, cost: frameCost(fr)}
	sf.inputs = make([]*tensor.Tensor, len(fr.Inputs))
	for i, in := range fr.Inputs {
		if sf.inputs[i], err = fromWireBits(in); err != nil {
			return nil, err
		}
	}
	return sf, nil
}

// frameCacheV4 is the server half of the replay-frame cache. Its
// eviction mirrors the client registry: insert keyed by the client's
// monotonically increasing Seq, skip frames over the byte cap, then
// evict smallest-Seq-first while over either bound. On a v4 session
// bodies arrive in Seq order, so Seq order IS stream order and the two
// ends stay in exact lockstep, as before. On a v5 session a NeedFrame
// re-upload can land after younger frames; ordering eviction by Seq
// (the client's registration order) rather than arrival keeps the two
// ends converging on the same retained set, and any residual miss
// self-heals via NeedFrame.
type frameCacheV4 struct {
	maxFrames int
	maxBytes  int
	frames    map[uint64]*storedFrameV4
	order     []uint64 // ascending Seq
	bytes     int
}

func newFrameCacheV4(maxFrames, maxBytes int) *frameCacheV4 {
	maxFrames, maxBytes = cacheBoundsOrDefault(maxFrames, maxBytes)
	return &frameCacheV4{maxFrames: maxFrames, maxBytes: maxBytes, frames: make(map[uint64]*storedFrameV4)}
}

func (c *frameCacheV4) insert(seq uint64, sf *storedFrameV4) {
	if sf.cost > c.maxBytes {
		return
	}
	if old, ok := c.frames[seq]; ok {
		// The lockstep client registry never re-uses a seq; a
		// hostile re-send must not leave a duplicate order entry
		// behind (its second eviction would dereference the
		// already-deleted map slot).
		c.bytes += sf.cost - old.cost
	} else {
		if n := len(c.order); n > 0 && c.order[n-1] > seq {
			// A late v5 re-upload: splice into Seq position so
			// eviction order stays the client's registration order.
			i := n
			for i > 0 && c.order[i-1] > seq {
				i--
			}
			c.order = append(c.order, 0)
			copy(c.order[i+1:], c.order[i:])
			c.order[i] = seq
		} else {
			c.order = append(c.order, seq)
		}
		c.bytes += sf.cost
	}
	c.frames[seq] = sf
	for len(c.order) > c.maxFrames || c.bytes > c.maxBytes {
		old := c.order[0]
		c.order = c.order[1:]
		c.bytes -= c.frames[old].cost
		delete(c.frames, old)
	}
}

func (c *frameCacheV4) lookup(seq uint64) (*storedFrameV4, bool) {
	sf, ok := c.frames[seq]
	return sf, ok
}

// refBase returns the delta base for output i: its reference frame
// when the request shipped references, nil otherwise (the caller then
// chains against the previous output).
func refBase(refs []quant.Frame, i int) (quant.Frame, bool) {
	if refs == nil {
		return nil, false
	}
	if i < len(refs) {
		return refs[i], true
	}
	return nil, true
}

// encodeQuantOutputs quantises and delta-encodes evaluated outputs,
// reading the values through at so the float64 and float32 fleets
// share one encoder.
func encodeQuantOutputs(n int, shape func(int) []int, at func(i, j int) float64, size func(int) int, sf *storedFrameV4) []wireQuant {
	outs := make([]wireQuant, n)
	var prev quant.Frame
	for i := 0; i < n; i++ {
		f := make(quant.Frame, size(i))
		for j := range f {
			f[j] = quant.QuantizeValue(at(i, j), sf.scale)
		}
		base, haveRefs := refBase(sf.refs, i)
		if !haveRefs {
			base = prev
		}
		outs[i] = wireQuant{Shape: append([]int(nil), shape(i)...), Data: quant.AppendFrame(nil, f, base)}
		prev = f
	}
	return outs
}

// answerV4 evaluates one v4 request's resolved frame on a float64
// clone — the bit-exact engine, so the quantised outputs are exactly
// the QuantizedOutputs view of a v2 replay.
func answerV4(clone *nn.Network, sf *storedFrameV4, id uint64) responseV4 {
	resp := responseV4{ID: id}
	outs, err := evalOn(clone, sf.inputs)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Outputs = encodeQuantOutputs(len(outs),
		func(i int) []int { return outs[i].Shape() },
		func(i, j int) float64 { return outs[i].Data()[j] },
		func(i int) int { return outs[i].Size() }, sf)
	return resp
}

// answerV4On32 evaluates a v4 frame on the float32 fleet: float32
// kernels, then each output value widened (exactly) to float64 and
// quantised — the same computation a local QuantizedOutputs replay of
// the float32 path performs.
func answerV4On32(clone *nn.NetF32, sf *storedFrameV4, id uint64) responseV4 {
	resp := responseV4{ID: id}
	xs := make([]*tensor.T32, len(sf.inputs))
	for i, x := range sf.inputs {
		xs[i] = x.F32()
	}
	outs, err := evalOnF32(clone, xs)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Outputs = encodeQuantOutputs(len(outs),
		func(i int) []int { return outs[i].Shape() },
		func(i, j int) float64 { return float64(outs[i].Data()[j]) },
		func(i int) int { return outs[i].Size() }, sf)
	return resp
}

// v4sent is one client-side cache registry entry.
type v4sent struct {
	seq  uint64
	key  string
	cost int
}

// v4upload tracks one in-flight v5 probe/upload. Until the uploader
// confirms the server can resolve the frame's seq — a probe answered
// from the store, or the body written to the stream — concurrent
// callers of the same frame must not back-reference it: they park on
// done instead of racing a reference ahead of the body. done is closed
// exactly once, by v4resolveUpload.
type v4upload struct {
	seq  uint64
	done chan struct{}
}

// v4register records a frame about to be sent as new and returns its
// sequence number, mirroring the server cache's eviction so future
// back-references stay resolvable. Caller holds sendMu.
func (r *RemoteIP) v4register(key string, cost int) uint64 {
	r.v4seq++
	seq := r.v4seq
	if cost > r.cacheBytes {
		return seq
	}
	r.v4known[key] = seq
	r.v4order = append(r.v4order, v4sent{seq: seq, key: key, cost: cost})
	r.v4bytes += cost
	for len(r.v4order) > r.cacheFrames || r.v4bytes > r.cacheBytes {
		old := r.v4order[0]
		r.v4order = r.v4order[1:]
		r.v4bytes -= old.cost
		// A re-sent frame may have re-mapped this key to a newer seq;
		// only drop the mapping this entry still owns.
		if r.v4known[old.key] == old.seq {
			delete(r.v4known, old.key)
		}
	}
	return seq
}

// v4resolveUpload finishes an in-flight upload and releases its
// waiters. ok reports whether the server can now resolve the frame's
// seq; on failure the registry mapping is dropped (if this upload
// still owns it) so waiters re-probe instead of back-referencing a
// frame the server never got.
func (r *RemoteIP) v4resolveUpload(key string, up *v4upload, ok bool) {
	r.sendMu.Lock()
	if r.v4pending[key] == up {
		delete(r.v4pending, key)
	}
	if !ok && r.v4known[key] == up.seq {
		delete(r.v4known, key)
	}
	r.sendMu.Unlock()
	close(up.done)
}

// QuantWire reports whether this session speaks the quantised dialect,
// v4 or higher (QueryQuant is only meaningful when it does).
func (r *RemoteIP) QuantWire() bool { return r.version >= protocolV4 }

// QueryQuant implements QuantIP: evaluate xs and return each output as
// a quantised wire frame at decimals. refs, when non-nil, must hold
// one quantised reference frame per input; the response is then
// delta-encoded against them, which an intact IP answers in about a
// byte per value. The frames are compared with quant.Fixed.Matches —
// never dequantised — so replay verdicts equal local QuantizedOutputs
// verdicts exactly.
func (r *RemoteIP) QueryQuant(xs []*tensor.Tensor, refs []quant.Frame, decimals int) ([]quant.Frame, error) {
	frames, _, err := r.queryQuant(xs, refs, decimals)
	return frames, err
}

// queryQuant is QueryQuant plus the output shapes (QueryBatch needs
// them to rebuild tensors; verdicts do not).
func (r *RemoteIP) queryQuant(xs []*tensor.Tensor, refs []quant.Frame, decimals int) ([]quant.Frame, [][]int, error) {
	if r.version < protocolV4 {
		return nil, nil, &QueryError{Msg: fmt.Sprintf(
			"validate: quantised queries need a v%d session — dial with DialOptions.Quant", protocolV4)}
	}
	if len(xs) == 0 {
		return nil, nil, &QueryError{Msg: "validate: empty query batch"}
	}
	if refs != nil && len(refs) != len(xs) {
		return nil, nil, &QueryError{Msg: fmt.Sprintf("validate: %d reference frames for %d queries", len(refs), len(xs))}
	}
	if _, err := quant.Scale(decimals); err != nil {
		return nil, nil, &QueryError{Msg: err.Error()}
	}

	fr := &frameV4{Decimals: uint8(decimals), F32: r.opts.F32}
	fr.Inputs = make([]wireBits, len(xs))
	for i, x := range xs {
		fr.Inputs[i] = toWireBits(x)
	}
	if refs != nil {
		fr.RefN = make([]int, len(refs))
		var prev quant.Frame
		for i, rf := range refs {
			fr.RefN[i] = len(rf)
			fr.Refs = quant.AppendFrame(fr.Refs, rf, prev)
			prev = rf
		}
	}
	key, cost := frameKey(fr), frameCost(fr)

	id, ch, err := r.v4call()
	if err != nil {
		return nil, nil, err
	}

	req := requestV4{ID: id}
	var up *v4upload
	r.sendMu.Lock()
	for {
		pend, waiting := r.v4pending[key]
		if !waiting {
			break
		}
		// Another caller's probe/upload of this very frame is in
		// flight; a back-reference sent now could race ahead of its
		// body. Park until it resolves, then re-examine the registry.
		r.sendMu.Unlock()
		<-pend.done
		r.sendMu.Lock()
	}
	if seq, ok := r.v4known[key]; ok {
		req.Seq = seq // a frame the server already holds: back-reference it
	} else {
		req.Seq = r.v4register(key, cost)
		if r.version >= protocolV5 {
			// v5: claim the content by hash first. The body only
			// ships if both the session cache and the shared store
			// miss (the NeedFrame reply below).
			req.Hash = []byte(key)
			up = &v4upload{seq: req.Seq, done: make(chan struct{})}
			r.v4pending[key] = up
		} else {
			req.Frame = fr
		}
	}
	r.conn.SetWriteDeadline(time.Now().Add(r.opts.WriteTimeout))
	err = r.enc.Encode(req)
	r.sendMu.Unlock()
	if err != nil {
		r.fail(fmt.Errorf("validate: send query: %w", err))
	}

	resp, ok := <-ch
	if up != nil && (!ok || !resp.NeedFrame) {
		// The probe resolved without a body upload — a store hit
		// pinned the frame server-side (or the transport died);
		// either way the waiters must proceed.
		r.v4resolveUpload(key, up, ok)
	}
	if !ok {
		r.mu.Lock()
		err := r.err
		r.mu.Unlock()
		return nil, nil, err
	}
	if resp.NeedFrame {
		if resp, ok = r.v4sendBody(req.Seq, fr, key, up); !ok {
			r.mu.Lock()
			err := r.err
			r.mu.Unlock()
			return nil, nil, err
		}
		if resp.NeedFrame {
			return nil, nil, fmt.Errorf("validate: replica protocol violation: NeedFrame answered a full frame body")
		}
	}
	if resp.Err != "" {
		return nil, nil, &QueryError{Msg: resp.Err}
	}
	if len(resp.Outputs) != len(xs) {
		return nil, nil, fmt.Errorf("validate: replica protocol violation: batch answered %d outputs for %d queries", len(resp.Outputs), len(xs))
	}
	return decodeQuantOutputs(resp.Outputs, refs)
}

// v4call registers one quantised exchange: a fresh request ID and the
// channel its response will arrive on, with the receive loop nudged
// awake. Fails fast on a poisoned transport.
func (r *RemoteIP) v4call() (uint64, chan responseV4, error) {
	r.mu.Lock()
	if r.err != nil {
		err := r.err
		r.mu.Unlock()
		return 0, nil, err
	}
	r.nextID++
	id := r.nextID
	ch := make(chan responseV4, 1)
	r.pendingQ[id] = ch
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
	return id, ch, nil
}

// v4sendBody answers a NeedFrame reply: ship the frame body under the
// same seq as a second exchange and return its response. up, when
// non-nil, is this caller's own in-flight upload, resolved the moment
// the body bytes are on the stream — every later back-reference then
// provably trails the body, because both go through sendMu.
func (r *RemoteIP) v4sendBody(seq uint64, fr *frameV4, key string, up *v4upload) (responseV4, bool) {
	id, ch, err := r.v4call()
	if err != nil {
		if up != nil {
			r.v4resolveUpload(key, up, false)
		}
		return responseV4{}, false
	}
	req := requestV4{ID: id, Seq: seq, Frame: fr}
	r.sendMu.Lock()
	r.conn.SetWriteDeadline(time.Now().Add(r.opts.WriteTimeout))
	err = r.enc.Encode(req)
	r.sendMu.Unlock()
	if up != nil {
		r.v4resolveUpload(key, up, err == nil)
	}
	if err != nil {
		r.fail(fmt.Errorf("validate: send query: %w", err))
	}
	resp, ok := <-ch
	return resp, ok
}

// decodeQuantOutputs validates and delta-decodes a v4 response's
// output frames against the request's reference frames (nil refs chain
// each output against the previous one), mirroring the server's
// encoder. It is safe on arbitrary response bytes — malformed shapes,
// counts, and streams are errors, never panics or length-driven
// allocations (the fuzz target drives it directly).
func decodeQuantOutputs(outs []wireQuant, refs []quant.Frame) ([]quant.Frame, [][]int, error) {
	frames := make([]quant.Frame, len(outs))
	shapes := make([][]int, len(outs))
	var prev quant.Frame
	for i, wq := range outs {
		n, err := shapeSize(wq.Shape)
		if err != nil {
			return nil, nil, fmt.Errorf("validate: replica protocol violation: %w", err)
		}
		if n > len(wq.Data) {
			// Every encoded value costs at least one byte; reject before
			// the length can drive an allocation.
			return nil, nil, fmt.Errorf("validate: replica protocol violation: output %d claims %d values in %d bytes", i, n, len(wq.Data))
		}
		base, haveRefs := refBase(refs, i)
		if !haveRefs {
			base = prev
		}
		frame, rest, err := quant.DecodeFrame(wq.Data, n, base)
		if err != nil || len(rest) != 0 {
			return nil, nil, fmt.Errorf("validate: replica protocol violation: malformed quantised output %d (%v, %d trailing bytes)", i, err, len(rest))
		}
		frames[i], shapes[i] = frame, wq.Shape
		prev = frame
	}
	return frames, shapes, nil
}
