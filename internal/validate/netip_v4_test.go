package validate

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/quant"
)

// Protocol-v4 tests: quantised delta-encoded replay frames, the
// replay-frame cache, verdict identity with local QuantizedOutputs
// validation on both the float64 and float32 fleets, and the full
// v1–v4 client×server handshake matrix. The matrix requirement carries
// over from v3 and now spans four dialects: every pairing negotiates a
// working session or fails with a descriptive error — never a gob
// decode failure mid-stream, never a hang.

// startServerV4 serves the golden network at full capability (v4 with
// a float32 fleet).
func startServerV4(t *testing.T) (*Server, string) {
	t.Helper()
	return startServerMax(t, goldenNet(), protocolVersion)
}

// startServerMax serves network with its negotiation ceiling pinned to
// maxVersion — a genuine old-dialect server as far as any client can
// observe.
func startServerMax(t *testing.T, network *nn.Network, maxVersion byte) (*Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWith(l, network, ServerOptions{Workers: 2, F32: true, MaxVersion: maxVersion})
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr()
}

// dialQuant dials a v4 session.
func dialQuant(t *testing.T, addr string, f32 bool) *RemoteIP {
	t.Helper()
	ip, err := DialWith(addr, DialOptions{Quant: true, F32: f32})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ip.Close() })
	return ip
}

// TestV4ReplayMatchesLocalQuantized: the headline property — a
// QuantizedOutputs suite replayed over a v4 session reports exactly
// what the local QuantizedOutputs validation reports, on an intact
// server and on an attacked one.
func TestV4ReplayMatchesLocalQuantized(t *testing.T) {
	suite := goldenSuite(t, 10, QuantizedOutputs)
	for _, target := range []*nn.Network{goldenNet(), perturbedNet(t)} {
		want, err := suite.Validate(LocalIP{Net: target})
		if err != nil {
			t.Fatal(err)
		}
		_, addr := startServerMax(t, target, protocolVersion)
		ip := dialQuant(t, addr, false)
		if !ip.QuantWire() {
			t.Fatal("v4 dial did not negotiate the quant dialect")
		}
		for _, opts := range []ValidateOptions{{}, {Batch: 4}, {Batch: 64}} {
			got, err := suite.ValidateWith(ip, opts)
			if err != nil {
				t.Fatalf("opts %+v: %v", opts, err)
			}
			if got != want {
				t.Fatalf("opts %+v: v4 report %+v, local report %+v", opts, got, want)
			}
		}
	}
}

// TestV4DetectsWithMatchesLocal: the early-exit detection scan over the
// quantised wire answers exactly what the local scan answers.
func TestV4DetectsWithMatchesLocal(t *testing.T) {
	suite := goldenSuite(t, 10, QuantizedOutputs)
	for _, target := range []*nn.Network{goldenNet(), perturbedNet(t)} {
		want, err := suite.Detects(LocalIP{Net: target})
		if err != nil {
			t.Fatal(err)
		}
		_, addr := startServerMax(t, target, protocolVersion)
		ip := dialQuant(t, addr, false)
		for _, batch := range []int{1, 3, 64} {
			got, err := suite.DetectsWith(ip, ValidateOptions{Batch: batch})
			if err != nil {
				t.Fatalf("batch %d: %v", batch, err)
			}
			if got != want {
				t.Fatalf("batch %d: DetectsWith over v4 = %v, local = %v", batch, got, want)
			}
		}
	}
}

// TestV4SubtleFaultVerdictIdentity: a perturbation small enough to flip
// only some quantised values must produce identical mismatch counts and
// first-failure index over the wire — the "no dequantise-then-round
// round trip" property observable from outside.
func TestV4SubtleFaultVerdictIdentity(t *testing.T) {
	suite := goldenSuite(t, 12, QuantizedOutputs)
	for _, decimals := range []int{1, 3, 6} {
		s := *suite
		s.Decimals = decimals
		target := goldenNet().Clone()
		target.SetParamAt(3, target.ParamAt(3)+2e-4) // sub-rounding at coarse precisions
		want, err := s.Validate(LocalIP{Net: target})
		if err != nil {
			t.Fatal(err)
		}
		_, addr := startServerMax(t, target, protocolVersion)
		ip := dialQuant(t, addr, false)
		got, err := s.ValidateWith(ip, ValidateOptions{Batch: 5})
		if err != nil {
			t.Fatalf("decimals %d: %v", decimals, err)
		}
		if got != want {
			t.Fatalf("decimals %d: v4 report %+v, local %+v", decimals, got, want)
		}
	}
}

// TestV4FrameCacheBackReferences: replaying the same suite on one
// connection re-sends no frame bodies — the second pass's request
// bytes must be a small fraction of the first's.
func TestV4FrameCacheBackReferences(t *testing.T) {
	suite := goldenSuite(t, 10, QuantizedOutputs)
	_, addr := startServerV4(t)
	ip := dialQuant(t, addr, false)

	before := ip.WireStats()
	if _, err := suite.ValidateWith(ip, ValidateOptions{Batch: 4}); err != nil {
		t.Fatal(err)
	}
	first := ip.WireStats().Sub(before)
	if _, err := suite.ValidateWith(ip, ValidateOptions{Batch: 4}); err != nil {
		t.Fatal(err)
	}
	second := ip.WireStats().Sub(first).Sub(before)
	if second.BytesWritten*10 > first.BytesWritten {
		t.Fatalf("second replay wrote %d bytes vs %d on the first — the frame cache is not back-referencing",
			second.BytesWritten, first.BytesWritten)
	}
}

// TestV4F32FleetMatchesLocalF32Quantized: a v4+F32 session evaluates on
// the float32 fleet; its verdicts must equal the local QuantizedOutputs
// replay of the float32 path at every precision tried (passing or not).
func TestV4F32FleetMatchesLocalF32Quantized(t *testing.T) {
	suite := goldenSuite(t, 10, QuantizedOutputs)
	for _, target := range []*nn.Network{goldenNet(), perturbedNet(t)} {
		for _, decimals := range []int{2, 6} {
			s := *suite
			s.Decimals = decimals
			want, err := s.ValidateWith(NewPooledF32IP(target, 1), ValidateOptions{})
			if err != nil {
				t.Fatal(err)
			}
			_, addr := startServerMax(t, target, protocolVersion)
			ip := dialQuant(t, addr, true)
			got, err := s.ValidateWith(ip, ValidateOptions{Batch: 4})
			if err != nil {
				t.Fatalf("decimals %d: %v", decimals, err)
			}
			if got != want {
				t.Fatalf("decimals %d: v4-f32 report %+v, local f32 quantized report %+v", decimals, got, want)
			}
		}
	}
}

// TestV4QueryBatchDequantises: plain QueryBatch on a v4 session returns
// the fixed-point values dequantised at DialOptions.Decimals — each
// output equals the local output rounded to that precision.
func TestV4QueryBatchDequantises(t *testing.T) {
	_, addr := startServerV4(t)
	ip, err := DialWith(addr, DialOptions{Quant: true, Decimals: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	xs := testInputs(3, 91)
	scale, _ := quant.Scale(4)
	local := LocalIP{Net: goldenNet()}
	got, err := ip.QueryBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want, err := local.Query(x)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range want.Data() {
			if q := quant.QuantizeValue(v, scale).Value(scale); got[i].Data()[j] != q {
				t.Fatalf("output %d value %d = %v, want dequantised %v", i, j, got[i].Data()[j], q)
			}
		}
	}
}

// TestV4QuantAgainstOldServers: requesting the quant dialect from a
// pre-v4 server fails at dial time with an error naming both versions
// and the way out.
func TestV4QuantAgainstOldServers(t *testing.T) {
	for _, maxV := range []byte{protocolV2, protocolV3} {
		_, addr := startServerMax(t, goldenNet(), maxV)
		_, err := DialWith(addr, DialOptions{Quant: true})
		if err == nil {
			t.Fatalf("quant dial against a v%d-max server succeeded", maxV)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("server speaks v%d", maxV)) ||
			!strings.Contains(err.Error(), "quantised frames need v4") {
			t.Fatalf("quant dial error against v%d = %v, want both versions named", maxV, err)
		}
	}
}

// TestQueryQuantOnPlainSession: QueryQuant on a v2 session is a
// QueryError that says how to get the dialect, not a protocol break.
func TestQueryQuantOnPlainSession(t *testing.T) {
	_, addr := startServerV4(t)
	ip, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	if ip.QuantWire() {
		t.Fatal("plain dial negotiated the quant dialect")
	}
	_, qerr := ip.QueryQuant(testInputs(1, 95), nil, 6)
	if qerr == nil || !strings.Contains(qerr.Error(), "DialOptions.Quant") {
		t.Fatalf("QueryQuant on a v2 session = %v, want a dial-options explanation", qerr)
	}
	// The session itself stays usable.
	if _, err := ip.Query(testInputs(1, 96)[0]); err != nil {
		t.Fatalf("v2 session broken after a rejected QueryQuant: %v", err)
	}
}

// TestV4BadDecimalsRejected: precisions outside the codec's domain are
// QueryErrors before any bytes move.
func TestV4BadDecimalsRejected(t *testing.T) {
	_, addr := startServerV4(t)
	ip := dialQuant(t, addr, false)
	for _, d := range []int{-1, quant.MaxDecimals + 1} {
		if _, err := ip.QueryQuant(testInputs(1, 97), nil, d); err == nil {
			t.Fatalf("decimals %d accepted", d)
		}
	}
}

// TestV4ReplayEquivalenceGrid: the batch × replicas × workers grid of
// the batched-replay equivalence tests, over v4 sessions against both
// the float64 and the float32 fleets. At every grid point the report
// must be identical to the corresponding local QuantizedOutputs replay.
func TestV4ReplayEquivalenceGrid(t *testing.T) {
	suite := goldenSuite(t, 10, QuantizedOutputs)
	target := perturbedNet(t)
	for _, f32 := range []bool{false, true} {
		// The local reference: QuantizedOutputs replay of the same
		// evaluation path the fleet serves.
		var refIP IP = LocalIP{Net: target}
		if f32 {
			refIP = NewPooledF32IP(target, 1)
		}
		want, err := suite.ValidateWith(refIP, ValidateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, replicas := range []int{1, 2} {
			addrs := make([]string, replicas)
			for i := range addrs {
				_, addrs[i] = startServerMax(t, target, protocolVersion)
			}
			var ip IP
			if replicas == 1 {
				ip = dialQuant(t, addrs[0], f32)
			} else {
				cluster, err := DialShards(addrs, DialOptions{Quant: true, F32: f32})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { cluster.Close() })
				if !cluster.QuantWire() {
					t.Fatal("sharded v4 fleet did not negotiate the quant dialect")
				}
				ip = cluster
			}
			for _, opts := range replayGrid {
				got, err := suite.ValidateWith(ip, opts)
				if err != nil {
					t.Fatalf("f32=%v replicas=%d opts %+v: %v", f32, replicas, opts, err)
				}
				if got != want {
					t.Fatalf("f32=%v replicas=%d opts %+v: report %+v, local %+v", f32, replicas, opts, got, want)
				}
			}
		}
	}
}

// --- The v1–v4 handshake matrix ---

// matrixServer stands up one server dialect: protocol v1 is emulated
// byte-exactly (bare gob, no preamble, single-query lockstep — what
// the historical server spoke), v2–v4 are the real Server with its
// negotiation ceiling pinned.
func matrixServer(t *testing.T, version byte) string {
	t.Helper()
	if version >= protocolV2 {
		_, addr := startServerMax(t, goldenNet(), version)
		return addr
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
				for {
					var req queryRequest
					if err := dec.Decode(&req); err != nil {
						return // a preamble is not gob: hang up, as the v1 build would
					}
					x, err := fromWire(req.Input)
					if err != nil {
						enc.Encode(queryResponse{Err: err.Error()})
						continue
					}
					enc.Encode(queryResponse{Output: toWire(goldenNet().Forward(x).Clone())})
				}
			}()
		}
	}()
	return l.Addr().String()
}

// matrixDial runs one client dialect against addr and reports either a
// working session (verified with a real query round trip) or the error.
func matrixDial(t *testing.T, clientV byte, addr string) error {
	t.Helper()
	x := testInputs(1, 99)[0]
	want := goldenNet().Forward(x)
	if clientV == 1 {
		// The v1 client: bare gob request, lockstep response.
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		if err := gob.NewEncoder(conn).Encode(queryRequest{Input: toWire(x)}); err != nil {
			return fmt.Errorf("send: %w", err)
		}
		var resp queryResponse
		if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
			return fmt.Errorf("decode: %w", err)
		}
		if resp.Err != "" {
			return fmt.Errorf("%s", resp.Err)
		}
		got, err := fromWire(resp.Output)
		if err != nil {
			return err
		}
		for j := range want.Data() {
			if got.Data()[j] != want.Data()[j] {
				t.Fatalf("v1 session answered wrong at %d", j)
			}
		}
		return nil
	}
	if clientV == protocolV4 {
		// The historical v4 client, emulated at the raw-gob level: a v4
		// hello, full frame bodies, lockstep back-references — and no
		// understanding of NeedFrame. The server must keep speaking this
		// dialect bit-identically now that the build's own client hellos
		// v5.
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		if _, err := conn.Write(preambleV(protocolV4)); err != nil {
			return fmt.Errorf("send hello: %w", err)
		}
		var echo [5]byte
		if _, err := io.ReadFull(conn, echo[:]); err != nil {
			return fmt.Errorf("handshake: %w", err)
		}
		if echo[4] != protocolV4 {
			// What the historical build reported on a downgraded echo.
			return fmt.Errorf("validate: dial IP: protocol version mismatch: server speaks v%d but quantised frames need v%d", echo[4], protocolV4)
		}
		enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
		fr := &frameV4{Decimals: 3, Inputs: []wireBits{toWireBits(x)}}
		if err := enc.Encode(requestV4{ID: 1, Seq: 1, Frame: fr}); err != nil {
			return fmt.Errorf("send frame: %w", err)
		}
		for id := uint64(1); id <= 2; id++ {
			var resp responseV4
			if err := dec.Decode(&resp); err != nil {
				return fmt.Errorf("decode: %w", err)
			}
			if resp.Err != "" {
				return fmt.Errorf("%s", resp.Err)
			}
			if resp.NeedFrame {
				t.Fatalf("server answered NeedFrame on a v4 session (exchange %d)", id)
			}
			if len(resp.Outputs) != 1 {
				t.Fatalf("v4 exchange %d answered %d outputs, want 1", id, len(resp.Outputs))
			}
			if id == 1 {
				// Back-reference the frame: v4 lockstep caching must hold.
				if err := enc.Encode(requestV4{ID: 2, Seq: 1}); err != nil {
					return fmt.Errorf("send back-reference: %w", err)
				}
			}
		}
		return nil
	}
	opts := DialOptions{ReadTimeout: 10 * time.Second}
	switch clientV {
	case protocolV3:
		opts.F32 = true
	case protocolV5:
		opts.Quant = true
	}
	ip, err := DialWith(addr, opts)
	if err != nil {
		return err
	}
	defer ip.Close()
	got, err := ip.Query(x)
	if err != nil {
		t.Fatalf("v%d session dialled but query failed: %v", clientV, err)
	}
	// Exactness differs by dialect: v2 is bit-exact, v3 float32-rounded,
	// v4 fixed-point at the dial precision — all must be recognisably
	// the local output.
	for j := range want.Data() {
		if d := got.Data()[j] - want.Data()[j]; d > 1e-4 || d < -1e-4 {
			t.Fatalf("v%d session output off by %v at %d", clientV, d, j)
		}
	}
	if clientV == protocolV5 {
		if !ip.QuantWire() {
			t.Fatalf("quant session did not report the quant dialect")
		}
		suite := goldenSuite(t, 4, QuantizedOutputs)
		rep, err := suite.ValidateWith(ip, ValidateOptions{Batch: 2})
		if err != nil {
			t.Fatalf("quant session replay: %v", err)
		}
		if !rep.Passed {
			t.Fatalf("quant session replay of the intact server failed: %+v", rep)
		}
	}
	return nil
}

// TestHandshakeMatrix: every v1–v5 client against every v1–v5 server.
// Each pairing must end in a working session at the expected negotiated
// dialect or a descriptive error naming the mismatch — never a hang, a
// gob panic, or a silent wrong answer. Client 4 is the historical v4
// build emulated at the raw-gob level (the build's own quant client now
// hellos v5); client 5 accepts a v4 echo as a per-connection downgrade,
// so both quant pairings against a v4-ceiling server work. CI runs this
// as its own named interop job so a protocol regression fails legibly.
func TestHandshakeMatrix(t *testing.T) {
	type expect struct {
		ok  bool
		msg string // required substring of the error when !ok
	}
	// expectations[client][server], versions 1–5.
	expectations := map[byte]map[byte]expect{
		1: {
			1: {ok: true},
			2: {msg: "protocol version mismatch"},
			3: {msg: "protocol version mismatch"},
			4: {msg: "protocol version mismatch"},
			5: {msg: "protocol version mismatch"},
		},
		2: {
			1: {msg: "handshake"}, // v1 server can't answer a preamble
			2: {ok: true},
			3: {ok: true},
			4: {ok: true},
			5: {ok: true},
		},
		3: {
			1: {msg: "handshake"},
			2: {msg: "float32 frames need v3"},
			3: {ok: true},
			4: {ok: true},
			5: {ok: true},
		},
		4: {
			1: {msg: "handshake"},
			2: {msg: "quantised frames need v4"},
			3: {msg: "quantised frames need v4"},
			4: {ok: true},
			5: {ok: true},
		},
		5: {
			1: {msg: "handshake"},
			2: {msg: "quantised frames need v4"},
			3: {msg: "quantised frames need v4"},
			4: {ok: true}, // downgrade: a v5 client on a v4 fleet speaks v4
			5: {ok: true},
		},
	}
	for serverV := byte(1); serverV <= protocolV5; serverV++ {
		addr := matrixServer(t, serverV)
		for clientV := byte(1); clientV <= protocolV5; clientV++ {
			t.Run(fmt.Sprintf("client_v%d/server_v%d", clientV, serverV), func(t *testing.T) {
				want := expectations[clientV][serverV]
				err := matrixDial(t, clientV, addr)
				if want.ok {
					if err != nil {
						t.Fatalf("expected a working session, got: %v", err)
					}
					return
				}
				if err == nil {
					t.Fatalf("expected a descriptive error containing %q, got a session", want.msg)
				}
				if !strings.Contains(err.Error(), want.msg) {
					t.Fatalf("error = %v, want it to mention %q", err, want.msg)
				}
			})
		}
	}
}

// TestV4SessionSurvivesServerDrain: Close with in-flight v4 traffic
// answers or fails cleanly, mirroring the v2 drain guarantee (the
// pendingQ map must be drained by fail()).
func TestV4SessionSurvivesServerDrain(t *testing.T) {
	srv, addr := startServerV4(t)
	ip := dialQuant(t, addr, false)
	suite := goldenSuite(t, 6, QuantizedOutputs)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 50; i++ {
			if _, err := suite.ValidateWith(ip, ValidateOptions{Batch: 3}); err != nil {
				done <- nil // transport failure during shutdown is the expected end
				return
			}
		}
		done <- nil
	}()
	time.Sleep(10 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close during v4 traffic: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked while draining v4 requests")
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("v4 client hung across server drain")
	}
}

// TestFrameCacheV4DuplicateSeq: a hostile client may re-send a Seq the
// lockstep registry would never re-use; the server cache must absorb
// the duplicate without corrupting its eviction order (a duplicate
// order entry used to dereference the already-evicted map slot and
// panic the serving process once the byte cap forced a second pop).
func TestFrameCacheV4DuplicateSeq(t *testing.T) {
	c := newFrameCacheV4(0, 0)
	big := v4CacheBytes/2 + 1
	c.insert(1, &storedFrameV4{cost: big})
	c.insert(1, &storedFrameV4{cost: big})
	c.insert(2, &storedFrameV4{cost: big}) // forces eviction of seq 1
	if _, ok := c.lookup(1); ok {
		t.Fatal("seq 1 still cached after the byte cap evicted it")
	}
	if _, ok := c.lookup(2); !ok {
		t.Fatal("seq 2 missing after insert")
	}
	if len(c.order) != 1 || c.bytes != big {
		t.Fatalf("cache accounting after duplicate seq: %d order entries, %d bytes (want 1, %d)", len(c.order), c.bytes, big)
	}
}
