package validate

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/tensor"
)

// startFleet serves the golden network on n replicas and returns their
// addresses plus the servers (for targeted shutdown).
func startFleet(t *testing.T, n int) ([]*Server, []string) {
	t.Helper()
	servers := make([]*Server, n)
	addrs := make([]string, n)
	for i := range servers {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = Serve(l, goldenNet())
		addrs[i] = servers[i].Addr()
		srv := servers[i]
		t.Cleanup(func() { srv.Close() })
	}
	return servers, addrs
}

// TestShardedMatchesSingleReplica: replaying through a sharded fleet
// must give the same report as a single endpoint — replicas are
// bit-identical, so routing is invisible.
func TestShardedMatchesSingleReplica(t *testing.T) {
	_, addrs := startFleet(t, 3)
	suite := goldenSuite(t, 8, ExactOutputs)

	single, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	want, err := suite.Validate(single)
	if err != nil {
		t.Fatal(err)
	}

	cluster, err := DialShards(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	got, err := suite.ValidateWith(cluster, ValidateOptions{Batch: 3, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sharded report %+v, single-replica report %+v", got, want)
	}
}

// TestShardedFailover: killing one replica mid-fleet must not fail the
// replay — its traffic fails over to the survivors and the report is
// unchanged.
func TestShardedFailover(t *testing.T) {
	servers, addrs := startFleet(t, 2)
	suite := goldenSuite(t, 10, ExactOutputs)
	cluster, err := DialShards(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Prove both replicas answer, then kill one.
	if _, err := cluster.QueryBatch(suite.Inputs[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.QueryBatch(suite.Inputs[:2]); err != nil {
		t.Fatal(err)
	}
	servers[0].Close()

	rep, err := suite.ValidateWith(cluster, ValidateOptions{Batch: 2, Concurrency: 2})
	if err != nil {
		t.Fatalf("replay with a dead replica: %v", err)
	}
	if !rep.Passed || rep.Total != suite.Len() {
		t.Fatalf("failover replay report: %+v", rep)
	}
	if h := cluster.Healthy(); h != 1 {
		t.Fatalf("Healthy = %d after one replica died, want 1", h)
	}
}

// TestShardedAllReplicasDown: when every replica is gone the error says
// so.
func TestShardedAllReplicasDown(t *testing.T) {
	servers, addrs := startFleet(t, 2)
	cluster, err := DialShards(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	for _, s := range servers {
		s.Close()
	}
	_, err = cluster.QueryBatch(testInputs(2, 91))
	if err == nil || !strings.Contains(err.Error(), "all 2 replicas failed") {
		t.Fatalf("all-down error = %v", err)
	}
}

// TestShardedQueryErrorNoFailover: an application-level rejection (bad
// input shape) must come back as a QueryError without marking any
// replica down — the same query would fail identically everywhere.
func TestShardedQueryErrorNoFailover(t *testing.T) {
	_, addrs := startFleet(t, 2)
	cluster, err := DialShards(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	var qe *QueryError
	if _, err := cluster.QueryBatch([]*tensor.Tensor{tensor.New(2, 3)}); !errors.As(err, &qe) {
		t.Fatalf("bad-shape error = %v, want QueryError", err)
	}
	if h := cluster.Healthy(); h != 2 {
		t.Fatalf("Healthy = %d after a rejected query, want 2 (no failover)", h)
	}
}

// TestDialShardsPartialFailure: a fleet with one unreachable address
// fails the dial outright instead of silently serving on a subset.
func TestDialShardsPartialFailure(t *testing.T) {
	_, addrs := startFleet(t, 1)
	if _, err := DialShards(append(addrs, "127.0.0.1:1"), DialOptions{}); err == nil {
		t.Fatal("dial with an unreachable shard succeeded")
	}
}

// TestShardedReplicaRecovery: a replica that dies and is restarted on
// the same address must rejoin the rotation via the half-open probe —
// down is a state, not a sentence.
func TestShardedReplicaRecovery(t *testing.T) {
	servers, addrs := startFleet(t, 2)
	suite := goldenSuite(t, 6, ExactOutputs)
	cluster, err := DialShards(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetProbeBackoff(10*time.Millisecond, 50*time.Millisecond)

	// Kill replica 0 and drive traffic until the failure is observed.
	servers[0].Close()
	rep, err := suite.ValidateWith(cluster, ValidateOptions{Batch: 2, Concurrency: 2})
	if err != nil || !rep.Passed {
		t.Fatalf("replay with a dead replica: rep=%+v err=%v", rep, err)
	}
	if h := cluster.Healthy(); h != 1 {
		t.Fatalf("Healthy = %d after replica death, want 1", h)
	}

	// While the replica stays dead, probes must keep failing over —
	// queries still succeed on the survivor even after the backoff
	// expires and a probe is risked.
	time.Sleep(20 * time.Millisecond)
	if _, err := cluster.QueryBatch(suite.Inputs[:2]); err != nil {
		t.Fatalf("query while probing a still-dead replica: %v", err)
	}

	// Restart the replica on the same address; within a few backoff
	// intervals a probe re-dials it and it rejoins.
	l, err := net.Listen("tcp", addrs[0])
	if err != nil {
		t.Fatalf("restart replica: %v", err)
	}
	restarted := Serve(l, goldenNet())
	t.Cleanup(func() { restarted.Close() })

	deadline := time.Now().Add(10 * time.Second)
	for cluster.Healthy() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("restarted replica never rejoined the rotation")
		}
		time.Sleep(15 * time.Millisecond)
		if _, err := cluster.QueryBatch(suite.Inputs[:2]); err != nil {
			t.Fatalf("query during recovery: %v", err)
		}
	}

	// The recovered fleet serves the same bit-identical reports.
	rep, err = suite.ValidateWith(cluster, ValidateOptions{Batch: 2, Concurrency: 2})
	if err != nil || !rep.Passed {
		t.Fatalf("replay after recovery: rep=%+v err=%v", rep, err)
	}
}

// TestShardedProbeBacksOff: while a replica stays dead, failed probes
// must space out (exponential backoff) rather than re-dialling on every
// request.
func TestShardedProbeBacksOff(t *testing.T) {
	servers, addrs := startFleet(t, 2)
	cluster, err := DialShards(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetProbeBackoff(40*time.Millisecond, 400*time.Millisecond)
	servers[0].Close()

	xs := testInputs(2, 93)
	// Observe the failure; replica 0 goes down with a 40ms first probe.
	for i := 0; i < 2; i++ {
		if _, err := cluster.QueryBatch(xs); err != nil {
			t.Fatal(err)
		}
	}
	if h := cluster.Healthy(); h != 1 {
		t.Fatalf("Healthy = %d, want 1", h)
	}
	// Hammer queries before the backoff expires: no probe may fire, so
	// the down replica's backoff state must not change.
	cluster.mu.Lock()
	firstProbe := cluster.nextProbe[0]
	cluster.mu.Unlock()
	for i := 0; i < 10; i++ {
		if _, err := cluster.QueryBatch(xs); err != nil {
			t.Fatal(err)
		}
	}
	cluster.mu.Lock()
	unchanged := cluster.nextProbe[0].Equal(firstProbe)
	cluster.mu.Unlock()
	if !unchanged {
		t.Fatal("a probe fired before the backoff expired")
	}
	// After the backoff expires a probe fails (server still dead) and
	// the next probe moves further out.
	time.Sleep(60 * time.Millisecond)
	if _, err := cluster.QueryBatch(xs); err != nil {
		t.Fatal(err)
	}
	cluster.mu.Lock()
	backedOff := cluster.backoff[0] >= 80*time.Millisecond && cluster.down[0]
	cluster.mu.Unlock()
	if !backedOff {
		t.Fatal("failed probe did not double the backoff")
	}
}

// TestShardedLocalReplicas: ShardedIP is transport-agnostic — local
// in-process replicas shard the same way (what the benchmarks and any
// embedded multi-worker replay use). PooledIP replicas keep the
// concurrent replay race-free.
func TestShardedLocalReplicas(t *testing.T) {
	suite := goldenSuite(t, 6, ExactOutputs)
	cluster, err := NewShardedIP(NewPooledIP(goldenNet(), 2), NewPooledIP(goldenNet(), 2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := suite.ValidateWith(cluster, ValidateOptions{Batch: 2, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("local sharded replay failed: %+v", rep)
	}
}
