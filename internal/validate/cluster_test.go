package validate

import (
	"errors"
	"net"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// startFleet serves the golden network on n replicas and returns their
// addresses plus the servers (for targeted shutdown).
func startFleet(t *testing.T, n int) ([]*Server, []string) {
	t.Helper()
	servers := make([]*Server, n)
	addrs := make([]string, n)
	for i := range servers {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = Serve(l, goldenNet())
		addrs[i] = servers[i].Addr()
		srv := servers[i]
		t.Cleanup(func() { srv.Close() })
	}
	return servers, addrs
}

// TestShardedMatchesSingleReplica: replaying through a sharded fleet
// must give the same report as a single endpoint — replicas are
// bit-identical, so routing is invisible.
func TestShardedMatchesSingleReplica(t *testing.T) {
	_, addrs := startFleet(t, 3)
	suite := goldenSuite(t, 8, ExactOutputs)

	single, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	want, err := suite.Validate(single)
	if err != nil {
		t.Fatal(err)
	}

	cluster, err := DialShards(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	got, err := suite.ValidateWith(cluster, ValidateOptions{Batch: 3, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sharded report %+v, single-replica report %+v", got, want)
	}
}

// TestShardedFailover: killing one replica mid-fleet must not fail the
// replay — its traffic fails over to the survivors and the report is
// unchanged.
func TestShardedFailover(t *testing.T) {
	servers, addrs := startFleet(t, 2)
	suite := goldenSuite(t, 10, ExactOutputs)
	cluster, err := DialShards(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Prove both replicas answer, then kill one.
	if _, err := cluster.QueryBatch(suite.Inputs[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.QueryBatch(suite.Inputs[:2]); err != nil {
		t.Fatal(err)
	}
	servers[0].Close()

	rep, err := suite.ValidateWith(cluster, ValidateOptions{Batch: 2, Concurrency: 2})
	if err != nil {
		t.Fatalf("replay with a dead replica: %v", err)
	}
	if !rep.Passed || rep.Total != suite.Len() {
		t.Fatalf("failover replay report: %+v", rep)
	}
	if h := cluster.Healthy(); h != 1 {
		t.Fatalf("Healthy = %d after one replica died, want 1", h)
	}
}

// TestShardedAllReplicasDown: when every replica is gone the error says
// so.
func TestShardedAllReplicasDown(t *testing.T) {
	servers, addrs := startFleet(t, 2)
	cluster, err := DialShards(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	for _, s := range servers {
		s.Close()
	}
	_, err = cluster.QueryBatch(testInputs(2, 91))
	if err == nil || !strings.Contains(err.Error(), "all 2 replicas failed") {
		t.Fatalf("all-down error = %v", err)
	}
}

// TestShardedQueryErrorNoFailover: an application-level rejection (bad
// input shape) must come back as a QueryError without marking any
// replica down — the same query would fail identically everywhere.
func TestShardedQueryErrorNoFailover(t *testing.T) {
	_, addrs := startFleet(t, 2)
	cluster, err := DialShards(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	var qe *QueryError
	if _, err := cluster.QueryBatch([]*tensor.Tensor{tensor.New(2, 3)}); !errors.As(err, &qe) {
		t.Fatalf("bad-shape error = %v, want QueryError", err)
	}
	if h := cluster.Healthy(); h != 2 {
		t.Fatalf("Healthy = %d after a rejected query, want 2 (no failover)", h)
	}
}

// TestDialShardsPartialFailure: a fleet with one unreachable address
// fails the dial outright instead of silently serving on a subset.
func TestDialShardsPartialFailure(t *testing.T) {
	_, addrs := startFleet(t, 1)
	if _, err := DialShards(append(addrs, "127.0.0.1:1"), DialOptions{}); err == nil {
		t.Fatal("dial with an unreachable shard succeeded")
	}
}

// TestShardedLocalReplicas: ShardedIP is transport-agnostic — local
// in-process replicas shard the same way (what the benchmarks and any
// embedded multi-worker replay use). PooledIP replicas keep the
// concurrent replay race-free.
func TestShardedLocalReplicas(t *testing.T) {
	suite := goldenSuite(t, 6, ExactOutputs)
	cluster, err := NewShardedIP(NewPooledIP(goldenNet(), 2), NewPooledIP(goldenNet(), 2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := suite.ValidateWith(cluster, ValidateOptions{Batch: 2, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("local sharded replay failed: %+v", rep)
	}
}
