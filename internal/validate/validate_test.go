package validate

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/train"
)

var goldenNet = sync.OnceValue(func() *nn.Network {
	net := models.Tiny(nn.ReLU, 1, 10, 10, 4, 10, 301)
	ds := data.Digits(150, 10, 10, 302)
	if _, err := train.Fit(net, ds, train.Config{
		Epochs: 5, BatchSize: 16, Optimizer: train.NewAdam(0.003), Seed: 1,
	}); err != nil {
		panic(err)
	}
	return net
})

func goldenSuite(t *testing.T, n int, mode CompareMode) *Suite {
	t.Helper()
	net := goldenNet()
	train := data.Digits(60, 10, 10, 303)
	res, err := core.SelectFromTraining(net, train, core.DefaultOptions(n))
	if err != nil {
		t.Fatal(err)
	}
	return BuildSuite("digits", net, res.Tests, mode)
}

func TestValidatePassesOnIntactIP(t *testing.T) {
	suite := goldenSuite(t, 10, ExactOutputs)
	rep, err := suite.Validate(LocalIP{Net: goldenNet()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed || rep.Mismatches != 0 || rep.FirstFailure != -1 {
		t.Fatalf("intact IP failed validation: %+v", rep)
	}
	if rep.String() != "PASS (10 tests)" {
		t.Fatalf("Report.String = %q", rep.String())
	}
}

func TestValidateDetectsPerturbation(t *testing.T) {
	suite := goldenSuite(t, 10, ExactOutputs)
	net := goldenNet()
	rng := rand.New(rand.NewSource(2))
	p, err := attack.SBA(net, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Revert(net)
	rep, err := suite.Validate(LocalIP{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("SBA perturbation not detected by exact comparison")
	}
	if rep.FirstFailure < 0 || rep.Mismatches == 0 {
		t.Fatalf("inconsistent failure report: %+v", rep)
	}
}

func TestCompareModes(t *testing.T) {
	suite := goldenSuite(t, 5, ExactOutputs)
	net := goldenNet()
	// A tiny perturbation on an activated parameter: exact comparison
	// must catch it; labels-only almost surely must not.
	idx := -1
	for i := 0; i < net.NumParams(); i++ {
		if net.ParamName(i) == "fc.W[0]" {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("fc.W[0] not found")
	}
	old := net.ParamAt(idx)
	net.SetParamAt(idx, old+1e-9)
	defer net.SetParamAt(idx, old)

	repExact, err := suite.Validate(LocalIP{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	suite.Mode = LabelsOnly
	repLabels, err := suite.Validate(LocalIP{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	suite.Mode = QuantizedOutputs
	suite.Decimals = 3
	repQuant, err := suite.Validate(LocalIP{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	if !repLabels.Passed {
		t.Fatal("1e-9 weight nudge flipped a label; labels mode broken?")
	}
	if !repQuant.Passed {
		t.Fatal("1e-9 weight nudge visible at 3 decimals; quantized mode broken?")
	}
	// Exact mode may or may not see a 1e-9 nudge depending on float
	// cancellation, but a larger one it must.
	suite.Mode = ExactOutputs
	net.SetParamAt(idx, old+1e-3)
	repExact, err = suite.Validate(LocalIP{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	if repExact.Passed {
		t.Fatal("1e-3 nudge on an input-layer-adjacent weight not caught by exact mode")
	}
}

func TestCompareModeString(t *testing.T) {
	if ExactOutputs.String() != "exact" || QuantizedOutputs.String() != "quantized" ||
		LabelsOnly.String() != "labels" || CompareMode(9).String() != "unknown" {
		t.Fatal("CompareMode.String mismatch")
	}
}

func TestValidateInconsistentSuiteFails(t *testing.T) {
	suite := goldenSuite(t, 3, ExactOutputs)
	suite.Outputs = suite.Outputs[:2]
	if _, err := suite.Validate(LocalIP{Net: goldenNet()}); err == nil {
		t.Fatal("inconsistent suite accepted")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	suite := goldenSuite(t, 5, ExactOutputs)
	key := []byte("shared-secret")
	var buf bytes.Buffer
	if err := suite.Seal(&buf, key); err != nil {
		t.Fatal(err)
	}
	got, err := OpenSuite(&buf, key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != suite.Len() || got.Name != suite.Name || got.Mode != suite.Mode {
		t.Fatalf("round trip changed suite: %+v", got)
	}
	for i := range suite.Inputs {
		for j := range suite.Inputs[i].Data() {
			if got.Inputs[i].Data()[j] != suite.Inputs[i].Data()[j] {
				t.Fatal("inputs differ after round trip")
			}
		}
		for j := range suite.Outputs[i].Data() {
			if got.Outputs[i].Data()[j] != suite.Outputs[i].Data()[j] {
				t.Fatal("outputs differ after round trip")
			}
		}
	}
	// The unsealed suite still validates the golden IP.
	rep, err := got.Validate(LocalIP{Net: goldenNet()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatal("unsealed suite fails on intact IP")
	}
}

func TestSealRejectsEmptyKey(t *testing.T) {
	suite := goldenSuite(t, 2, ExactOutputs)
	var buf bytes.Buffer
	if err := suite.Seal(&buf, nil); err == nil {
		t.Fatal("empty key accepted for sealing")
	}
	if _, err := OpenSuite(&buf, nil); err == nil {
		t.Fatal("empty key accepted for opening")
	}
}

func TestOpenDetectsTampering(t *testing.T) {
	suite := goldenSuite(t, 3, ExactOutputs)
	key := []byte("k1")
	var buf bytes.Buffer
	if err := suite.Seal(&buf, key); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one byte in the middle of the payload.
	tampered := append([]byte(nil), raw...)
	tampered[len(tampered)/2] ^= 0xFF
	if _, err := OpenSuite(bytes.NewReader(tampered), key); err == nil {
		t.Fatal("tampered suite accepted")
	}
	// Wrong key.
	if _, err := OpenSuite(bytes.NewReader(raw), []byte("k2")); err == nil {
		t.Fatal("wrong key accepted")
	}
	// Truncated stream.
	if _, err := OpenSuite(bytes.NewReader(raw[:len(raw)-10]), key); err == nil {
		t.Fatal("truncated suite accepted")
	}
	// Intact stream still opens.
	if _, err := OpenSuite(bytes.NewReader(raw), key); err != nil {
		t.Fatalf("intact suite rejected: %v", err)
	}
}

func TestOpenGarbageFails(t *testing.T) {
	if _, err := OpenSuite(bytes.NewReader([]byte("short")), []byte("k")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDetectionRateSBA(t *testing.T) {
	suite := goldenSuite(t, 10, ExactOutputs)
	net := goldenNet()
	snap := net.CopyParams()
	res, err := DetectionRate(net, suite,
		func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, error) {
			return attack.SBA(n, 5, rng)
		}, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 50 {
		t.Fatalf("trials = %d", res.Trials)
	}
	if res.Rate() < 0.5 {
		t.Fatalf("SBA detection rate %.2f unexpectedly low for a 10-test suite", res.Rate())
	}
	// Network restored after the campaign.
	for i, v := range snap {
		if net.ParamAt(i) != v {
			t.Fatalf("param %d not restored after campaign", i)
		}
	}
}

func TestDetectionRateValidation(t *testing.T) {
	suite := goldenSuite(t, 2, ExactOutputs)
	_, err := DetectionRate(goldenNet(), suite,
		func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, error) {
			return attack.SBA(n, 5, rng)
		}, 0, 1)
	if err == nil {
		t.Fatal("trials=0 accepted")
	}
}

func TestDetectionResultString(t *testing.T) {
	d := DetectionResult{Trials: 4, Detected: 3}
	if d.Rate() != 0.75 {
		t.Fatalf("Rate = %v", d.Rate())
	}
	if d.String() != "3/4 (75.0%)" {
		t.Fatalf("String = %q", d.String())
	}
	if (DetectionResult{}).Rate() != 0 {
		t.Fatal("empty result rate should be 0")
	}
}

func TestMoreTestsDetectMore(t *testing.T) {
	// The monotone trend of Tables II/III: detection rate grows with
	// suite size.
	net := goldenNet()
	small := goldenSuite(t, 2, ExactOutputs)
	large := goldenSuite(t, 20, ExactOutputs)
	atk := func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, error) {
		return attack.RandomNoise(n, 3, 0.5, rng)
	}
	rs, err := DetectionRate(net, small, atk, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := DetectionRate(net, large, atk, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Rate() < rs.Rate() {
		t.Fatalf("detection fell with more tests: %d tests %.2f vs %d tests %.2f",
			small.Len(), rs.Rate(), large.Len(), rl.Rate())
	}
}
