package validate

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/attack"
)

// The ReplayConfig redesign must be invisible to the legacy entry
// points: Validate/ValidateWith/DetectsWith are now wrappers over one
// engine, and their verdicts must be bit-identical to the serial
// reference on both passing and failing IPs at every batch/worker
// combination.

func TestReplayWrappersBitIdentical(t *testing.T) {
	suite := goldenSuite(t, 10, ExactOutputs)
	net := goldenNet()

	check := func(t *testing.T, label string) {
		t.Helper()
		ip := NewPooledIP(net, 4)
		want, err := suite.Validate(LocalIP{Net: net})
		if err != nil {
			t.Fatal(err)
		}
		wantDet, err := suite.Detects(LocalIP{Net: net})
		if err != nil {
			t.Fatal(err)
		}
		if wantDet != !want.Passed {
			t.Fatalf("%s: Detects=%v disagrees with Validate %v", label, wantDet, want)
		}
		for _, batch := range []int{0, 1, 3, 16} {
			for _, workers := range []int{0, 1, 3} {
				opts := ValidateOptions{Batch: batch, Concurrency: workers}
				got, err := suite.ValidateWith(ip, opts)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s: ValidateWith(batch=%d,workers=%d)=%+v, Validate=%+v", label, batch, workers, got, want)
				}
				rep, err := suite.Replay(ip, ReplayConfig{Batch: batch, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if rep != want {
					t.Fatalf("%s: Replay(batch=%d,workers=%d)=%+v, Validate=%+v", label, batch, workers, rep, want)
				}
				det, err := suite.DetectsWith(ip, opts)
				if err != nil {
					t.Fatal(err)
				}
				if det != wantDet {
					t.Fatalf("%s: DetectsWith(batch=%d)=%v, Detects=%v", label, batch, det, wantDet)
				}
			}
		}
	}

	check(t, "clean")

	rng := rand.New(rand.NewSource(5))
	p, err := attack.SBA(net, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Revert(net)
	check(t, "attacked")
}

// EarlyExit's report must carry the same first-failure index the full
// scan finds, flag the run as failed with exactly one counted
// mismatch, and still report the full suite size as Total.
func TestReplayEarlyExitReport(t *testing.T) {
	suite := goldenSuite(t, 10, ExactOutputs)
	net := goldenNet()

	// A clean IP early-exits into the same all-pass report a full scan
	// produces. (Checked before the attack: goldenNet is shared.)
	rep, err := suite.Replay(LocalIP{Net: net}, ReplayConfig{EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed || rep.FirstFailure != -1 || rep.Total != suite.Len() {
		t.Fatalf("clean early-exit report = %+v", rep)
	}

	rng := rand.New(rand.NewSource(6))
	p, err := attack.SBA(net, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Revert(net)

	full, err := suite.Validate(LocalIP{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	if full.Passed {
		t.Skip("attack not detected by this suite; nothing to early-exit on")
	}
	for _, batch := range []int{0, 2, 5} {
		rep, err := suite.Replay(NewPooledIP(net, 2), ReplayConfig{Batch: batch, EarlyExit: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Passed || rep.Mismatches != 1 || rep.FirstFailure != full.FirstFailure || rep.Total != suite.Len() {
			t.Fatalf("early-exit report (batch=%d) = %+v, want fail at %d of %d", batch, rep, full.FirstFailure, suite.Len())
		}
	}
}

// WireQuant is a requirement, not a preference: a session or suite
// that cannot produce the quantised verdict must fail the replay with
// a descriptive error instead of silently downgrading the comparison.
func TestReplayWireQuantRequiresQuantPath(t *testing.T) {
	suite := goldenSuite(t, 4, ExactOutputs)
	_, err := suite.Replay(LocalIP{Net: goldenNet()}, ReplayConfig{Wire: WireQuant})
	if err == nil {
		t.Fatal("WireQuant over an exact-mode suite and plain IP did not error")
	}
	if !strings.Contains(err.Error(), "WireQuant") {
		t.Fatalf("error does not name the setting: %v", err)
	}
}

func TestSuiteSubset(t *testing.T) {
	suite := goldenSuite(t, 8, ExactOutputs)
	sub, err := suite.Subset([]int{6, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 || sub.Mode != suite.Mode || sub.Decimals != suite.Decimals {
		t.Fatalf("subset shape wrong: len=%d mode=%v", sub.Len(), sub.Mode)
	}
	for i, src := range []int{6, 1, 3} {
		if sub.Inputs[i] != suite.Inputs[src] || sub.Outputs[i] != suite.Outputs[src] {
			t.Fatalf("subset index %d does not share suite test %d", i, src)
		}
	}
	rep, err := sub.Validate(LocalIP{Net: goldenNet()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed || rep.Total != 3 {
		t.Fatalf("subset replay = %+v", rep)
	}
	if _, err := suite.Subset([]int{0, 8}); err == nil {
		t.Fatal("out-of-range subset index accepted")
	}
	if _, err := suite.Subset([]int{-1}); err == nil {
		t.Fatal("negative subset index accepted")
	}
}

func TestParseWireRoundTrip(t *testing.T) {
	for _, w := range []Wire{WireAuto, WireGob, WireF32, WireQuant} {
		got, err := ParseWire(w.String())
		if err != nil || got != w {
			t.Fatalf("ParseWire(%q) = %v, %v; want %v", w.String(), got, err, w)
		}
	}
	if w, err := ParseWire(""); err != nil || w != WireAuto {
		t.Fatalf("ParseWire(\"\") = %v, %v", w, err)
	}
	if _, err := ParseWire("morse"); err == nil {
		t.Fatal("ParseWire accepted an unknown dialect")
	}
}
