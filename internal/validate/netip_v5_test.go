package validate

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"testing"
	"time"
)

// Protocol-v5 tests: the process-wide content-addressed FrameStore,
// hash-probe capability negotiation on top of the v4 framing, re-dial
// survival of replay steady state, self-healing under mismatched cache
// bounds, and hostile raw-gob flows. Verdict identity with the v4
// dialect and with local quantised validation is pinned alongside.

// storeFrame builds a resolved frame with distinct content per seed and
// a controlled accounting cost, for exercising FrameStore bounds
// directly.
func storeFrame(seed int64, cost int) *storedFrameV4 {
	return &storedFrameV4{inputs: testInputs(1, seed), scale: 1000, cost: cost}
}

// TestFrameStoreFrameBoundEviction: FIFO eviction fires exactly when
// the frame count exceeds the bound — never at the boundary itself.
func TestFrameStoreFrameBoundEviction(t *testing.T) {
	st := NewFrameStore(3, 1<<20)
	for i := int64(1); i <= 3; i++ {
		st.insert(fmt.Sprintf("k%d", i), storeFrame(i, 10))
	}
	if s := st.Stats(); s.Frames != 3 || s.Evictions != 0 || s.Inserts != 3 {
		t.Fatalf("at the frame boundary: %+v, want 3 frames, 0 evictions", s)
	}
	st.insert("k4", storeFrame(4, 10))
	if s := st.Stats(); s.Frames != 3 || s.Evictions != 1 {
		t.Fatalf("one past the boundary: %+v, want 3 frames, 1 eviction", s)
	}
	if _, ok := st.lookup("k1"); ok {
		t.Fatal("oldest frame survived FIFO eviction")
	}
	for i := int64(2); i <= 4; i++ {
		if _, ok := st.lookup(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("frame k%d missing after eviction of k1", i)
		}
	}
}

// TestFrameStoreByteBoundEviction: the byte bound is inclusive (exactly
// full stores fine) and an overflowing insert evicts oldest-first; a
// single frame over the whole bound is never stored.
func TestFrameStoreByteBoundEviction(t *testing.T) {
	st := NewFrameStore(100, 100)
	st.insert("a", storeFrame(1, 50))
	st.insert("b", storeFrame(2, 50))
	if s := st.Stats(); s.Frames != 2 || s.Bytes != 100 || s.Evictions != 0 {
		t.Fatalf("at the byte boundary: %+v, want 2 frames / 100 bytes / 0 evictions", s)
	}
	st.insert("c", storeFrame(3, 50))
	if s := st.Stats(); s.Frames != 2 || s.Bytes != 100 || s.Evictions != 1 {
		t.Fatalf("one past the boundary: %+v, want oldest evicted back to 100 bytes", s)
	}
	if _, ok := st.lookup("a"); ok {
		t.Fatal("oldest frame survived byte-bound eviction")
	}
	st.insert("huge", storeFrame(4, 101))
	if s := st.Stats(); s.Frames != 2 || s.Evictions != 1 {
		t.Fatalf("oversized frame changed the store: %+v", s)
	}
	if _, ok := st.lookup("huge"); ok {
		t.Fatal("a frame larger than the whole byte bound was stored")
	}
}

// TestFrameStoreConflictPoisoning: distinct content under one key (a
// forced "collision") drops the entry and poisons the key permanently —
// wrong bytes are never served, honest re-inserts stay misses, and a
// duplicate insert of identical content is a counted no-op.
func TestFrameStoreConflictPoisoning(t *testing.T) {
	st := NewFrameStore(8, 1<<20)
	a, b := storeFrame(1, 10), storeFrame(2, 10)
	st.insert("k", a)
	st.insert("k", a) // identical content: deduplicated, not re-counted
	if s := st.Stats(); s.Inserts != 1 || s.Frames != 1 {
		t.Fatalf("duplicate insert: %+v, want 1 insert / 1 frame", s)
	}
	st.insert("k", b) // collision: poison
	if s := st.Stats(); s.Conflicts != 1 || s.Frames != 0 || s.Bytes != 0 {
		t.Fatalf("collision: %+v, want 1 conflict, empty store", s)
	}
	if _, ok := st.lookup("k"); ok {
		t.Fatal("conflicted key served a frame")
	}
	st.insert("k", a) // even the original content can no longer bind the key
	if _, ok := st.lookup("k"); ok {
		t.Fatal("poisoned key accepted a re-insert")
	}
	st.insert("k2", b) // the content itself is fine under an honest key
	if _, ok := st.lookup("k2"); !ok {
		t.Fatal("conflict on one key poisoned unrelated keys")
	}
}

// startServerStore serves the golden network with a dedicated private
// FrameStore, so a test can observe exactly its own traffic's effect.
func startServerStore(t *testing.T) (*Server, string, *FrameStore) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := NewFrameStore(0, 0)
	srv := ServeWith(l, goldenNet(), ServerOptions{Workers: 2, F32: true, FrameStore: store})
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr(), store
}

// TestV5RedialSurvivesInStore: the headline perf property — a client
// that re-dials (failover, restart, sentinel probe) re-establishes
// replay steady state with hash probes instead of re-uploading bodies.
// The second connection's upload traffic must be a small fraction of
// the first connection's, and the verdict identical.
func TestV5RedialSurvivesInStore(t *testing.T) {
	_, addr, store := startServerStore(t)
	suite := goldenSuite(t, 10, QuantizedOutputs)

	ip1 := dialQuant(t, addr, false)
	want, err := suite.ValidateWith(ip1, ValidateOptions{Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	first := ip1.WireStats()
	ip1.Close()
	if s := store.Stats(); s.Inserts == 0 {
		t.Fatalf("first replay left no frames in the shared store: %+v", s)
	}

	ip2 := dialQuant(t, addr, false)
	got, err := suite.ValidateWith(ip2, ValidateOptions{Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	second := ip2.WireStats()
	if got != want {
		t.Fatalf("re-dialled replay report %+v, first connection reported %+v", got, want)
	}
	if s := store.Stats(); s.Hits == 0 {
		t.Fatalf("re-dialled replay never hit the shared store: %+v", s)
	}
	if second.BytesWritten*5 > first.BytesWritten {
		t.Fatalf("re-dial wrote %d bytes vs %d on the first connection — probes did not replace bodies",
			second.BytesWritten, first.BytesWritten)
	}
}

// TestV5MatchesV4MatchesLocal: verdict bit-identity across the three
// replay paths — shared-store v5, per-connection v4 (a MaxVersion-4
// server forcing the downgrade), and local quantised validation — on an
// intact and an attacked network.
func TestV5MatchesV4MatchesLocal(t *testing.T) {
	suite := goldenSuite(t, 10, QuantizedOutputs)
	for _, intact := range []bool{true, false} {
		target := goldenNet()
		if !intact {
			target = perturbedNet(t)
		}
		want, err := suite.Validate(LocalIP{Net: target})
		if err != nil {
			t.Fatal(err)
		}
		for _, maxV := range []byte{protocolV4, protocolVersion} {
			_, addr := startServerMax(t, target, maxV)
			ip := dialQuant(t, addr, false)
			if got := ip.version; got != maxV {
				t.Fatalf("session negotiated v%d against a MaxVersion-%d server", got, maxV)
			}
			for _, batch := range []int{1, 4} {
				got, err := suite.ValidateWith(ip, ValidateOptions{Batch: batch})
				if err != nil {
					t.Fatalf("intact=%v v%d batch=%d: %v", intact, maxV, batch, err)
				}
				if got != want {
					t.Fatalf("intact=%v v%d batch=%d: report %+v, local %+v", intact, maxV, batch, got, want)
				}
			}
		}
	}
}

// TestV5CacheBoundsMismatchSelfHeals: deliberately mismatched session
// cache bounds between the ends (tiny server cache, then tiny client
// cache) must still produce the local verdict — misses surface as
// NeedFrame re-uploads, never as errors or wrong bytes.
func TestV5CacheBoundsMismatchSelfHeals(t *testing.T) {
	suite := goldenSuite(t, 10, QuantizedOutputs)
	want, err := suite.Validate(LocalIP{Net: goldenNet()})
	if err != nil {
		t.Fatal(err)
	}
	run := func(name string, sopts ServerOptions, dopts DialOptions) {
		t.Helper()
		l, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			t.Fatal(lerr)
		}
		sopts.Workers, sopts.F32 = 2, true
		sopts.FrameStore = NewFrameStore(2, 1<<20) // tiny store too: probe misses must also heal
		srv := ServeWith(l, goldenNet(), sopts)
		defer srv.Close()
		dopts.Quant = true
		ip, derr := DialWith(srv.Addr(), dopts)
		if derr != nil {
			t.Fatal(derr)
		}
		defer ip.Close()
		for round := 0; round < 2; round++ {
			got, verr := suite.ValidateWith(ip, ValidateOptions{Batch: 1})
			if verr != nil {
				t.Fatalf("%s round %d: %v", name, round, verr)
			}
			if got != want {
				t.Fatalf("%s round %d: report %+v, local %+v", name, round, got, want)
			}
		}
	}
	run("tiny server cache", ServerOptions{CacheFrames: 2}, DialOptions{})
	run("tiny server bytes", ServerOptions{CacheBytes: 512}, DialOptions{})
	run("tiny client cache", ServerOptions{}, DialOptions{CacheFrames: 2})
	run("tiny client bytes", ServerOptions{}, DialOptions{CacheBytes: 512})
}

// rawV5 opens a raw gob stream negotiated to v5 — a hand-rolled client
// for hostile flows DialWith would never send.
func rawV5(t *testing.T, addr string) (*gob.Encoder, *gob.Decoder) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write(preambleV(protocolV5)); err != nil {
		t.Fatal(err)
	}
	var echo [5]byte
	if _, err := io.ReadFull(conn, echo[:]); err != nil {
		t.Fatal(err)
	}
	if echo[4] != protocolV5 {
		t.Fatalf("server echoed v%d to a v5 hello", echo[4])
	}
	return gob.NewEncoder(conn), gob.NewDecoder(conn)
}

// TestV5HostileRawGob: a client claiming hashes and sequence numbers it
// never earned gets NeedFrame answers (the self-heal path), never an
// error, a hang, or someone else's bytes — and a lying Hash on a body
// upload cannot bind foreign content in the store.
func TestV5HostileRawGob(t *testing.T) {
	_, addr, store := startServerStore(t)
	enc, dec := rawV5(t, addr)

	// Decode into a fresh struct every exchange: gob omits zero-valued
	// fields, so a reused target would keep stale NeedFrame/Err values
	// (the real recvLoop allocates per response for the same reason).
	recv := func(dec *gob.Decoder) responseV4 {
		t.Helper()
		var resp responseV4
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Probe for a hash nothing ever uploaded.
	if err := enc.Encode(requestV4{ID: 1, Seq: 7, Hash: []byte("no such content hash")}); err != nil {
		t.Fatal(err)
	}
	if resp := recv(dec); !resp.NeedFrame || resp.Err != "" || resp.Outputs != nil {
		t.Fatalf("unknown-hash probe answered %+v, want a bare NeedFrame", resp)
	}

	// Back-reference a sequence number this session never established.
	if err := enc.Encode(requestV4{ID: 2, Seq: 99}); err != nil {
		t.Fatal(err)
	}
	if resp := recv(dec); !resp.NeedFrame || resp.Err != "" {
		t.Fatalf("unknown-seq back-reference answered %+v, want NeedFrame", resp)
	}

	// Upload a real body while lying in the Hash field: the server
	// stores under its own computed key, so the lie binds nothing.
	fr := &frameV4{Decimals: 3, Inputs: []wireBits{toWireBits(testInputs(1, 5)[0])}}
	if err := enc.Encode(requestV4{ID: 3, Seq: 7, Frame: fr, Hash: []byte("a lie")}); err != nil {
		t.Fatal(err)
	}
	if resp := recv(dec); resp.Err != "" || resp.NeedFrame || len(resp.Outputs) != 1 {
		t.Fatalf("body upload answered %+v, want one output frame", resp)
	}
	if _, ok := store.lookup("a lie"); ok {
		t.Fatal("a client-claimed hash bound content in the store")
	}
	if _, ok := store.lookup(frameKey(fr)); !ok {
		t.Fatal("the server-computed key is not in the store after a body upload")
	}

	// The honest key now probes to a hit on a brand-new session.
	enc2, dec2 := rawV5(t, addr)
	if err := enc2.Encode(requestV4{ID: 1, Seq: 1, Hash: []byte(frameKey(fr))}); err != nil {
		t.Fatal(err)
	}
	if resp := recv(dec2); resp.Err != "" || resp.NeedFrame || len(resp.Outputs) != 1 {
		t.Fatalf("honest probe answered %+v, want the evaluated frame", resp)
	}
}
