package validate

import (
	"bytes"
	"testing"

	"repro/internal/quant"
)

// Tests for the load-time quantised-reference cache: sealed
// QuantizedOutputs suites quantise their reference outputs once at
// OpenSuite, the cache rides through Prefix/Subset, replay verdicts are
// identical with and without it, and mutating Decimals after load falls
// back to per-replay quantisation instead of serving stale frames.

func sealRoundTrip(t *testing.T, s *Suite) *Suite {
	t.Helper()
	key := []byte("quantrefs-test-key")
	var buf bytes.Buffer
	if err := s.Seal(&buf, key); err != nil {
		t.Fatal(err)
	}
	opened, err := OpenSuite(&buf, key)
	if err != nil {
		t.Fatal(err)
	}
	return opened
}

func frameEqual(a, b quant.Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQuantRefsCachedAtOpen(t *testing.T) {
	opened := sealRoundTrip(t, goldenSuite(t, 8, QuantizedOutputs))
	if !opened.quantRefsValid() {
		t.Fatal("opened QuantizedOutputs suite has no valid quantised-reference cache")
	}
	scale, err := quant.Scale(opened.Decimals)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range opened.Outputs {
		if !frameEqual(opened.quantRefs[i], quant.QuantizeFrame(o.Data(), scale)) {
			t.Fatalf("cached frame %d differs from fresh quantisation", i)
		}
	}

	// Non-quantised suites carry no cache.
	if exact := sealRoundTrip(t, goldenSuite(t, 4, ExactOutputs)); exact.quantRefsValid() {
		t.Fatal("ExactOutputs suite must not cache quantised references")
	}

	// Changing Decimals after load invalidates the cache, and
	// replayQuantRefs re-quantises locally at the new scale.
	mutated := sealRoundTrip(t, goldenSuite(t, 8, QuantizedOutputs))
	mutated.Decimals = 3
	if mutated.quantRefsValid() {
		t.Fatal("cache must be stale after Decimals changes")
	}
	scale3, err := quant.Scale(3)
	if err != nil {
		t.Fatal(err)
	}
	refs := mutated.replayQuantRefs(scale3)
	for i, o := range mutated.Outputs {
		if !frameEqual(refs[i], quant.QuantizeFrame(o.Data(), scale3)) {
			t.Fatalf("stale-cache fallback frame %d not quantised at the new scale", i)
		}
	}
}

func TestQuantRefsPropagateThroughPrefixAndSubset(t *testing.T) {
	opened := sealRoundTrip(t, goldenSuite(t, 8, QuantizedOutputs))
	p := opened.Prefix(5)
	if !p.quantRefsValid() {
		t.Fatal("Prefix dropped the quantised-reference cache")
	}
	for i := range p.Outputs {
		if !frameEqual(p.quantRefs[i], opened.quantRefs[i]) {
			t.Fatalf("Prefix frame %d differs from parent", i)
		}
	}
	sub, err := opened.Subset([]int{6, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sub.quantRefsValid() {
		t.Fatal("Subset dropped the quantised-reference cache")
	}
	for i, idx := range []int{6, 1, 4} {
		if !frameEqual(sub.quantRefs[i], opened.quantRefs[idx]) {
			t.Fatalf("Subset frame %d (suite index %d) differs from parent", i, idx)
		}
	}

	// A stale parent cache must not leak into derived suites.
	opened.Decimals = 2
	if opened.Prefix(3).quantRefsValid() {
		t.Fatal("Prefix propagated a stale cache")
	}
	if sub2, err := opened.Subset([]int{0, 1}); err != nil || sub2.quantRefsValid() {
		t.Fatal("Subset propagated a stale cache")
	}
}

// TestQuantRefsVerdictIdentity: the headline property — replaying a
// sealed-and-opened suite (cache hot) over the v4 wire produces exactly
// the report of the freshly built suite (cache cold), on an intact and
// on a perturbed target, including after a post-load Decimals change.
func TestQuantRefsVerdictIdentity(t *testing.T) {
	built := goldenSuite(t, 10, QuantizedOutputs)
	opened := sealRoundTrip(t, built)
	if !opened.quantRefsValid() {
		t.Fatal("opened suite cache missing")
	}
	for _, nets := range []string{"golden", "perturbed"} {
		target := goldenNet()
		if nets == "perturbed" {
			target = perturbedNet(t)
		}
		_, addr := startServerMax(t, target, protocolVersion)
		ip := dialQuant(t, addr, false)
		for _, decimals := range []int{6, 3} {
			b := *built
			b.Decimals = decimals
			o := *opened
			o.Decimals = decimals // decimals==6 keeps the cache; 3 staleness-falls-back
			want, err := b.ValidateWith(ip, ValidateOptions{Batch: 4})
			if err != nil {
				t.Fatal(err)
			}
			got, err := o.ValidateWith(ip, ValidateOptions{Batch: 4})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s/decimals=%d: cached replay %+v, uncached %+v", nets, decimals, got, want)
			}
		}
	}
}
