package validate

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// Per-replica routing introspection for ShardedIP: which replica
// answered how often, how fast, over how many bytes, and in what health
// state — the attribution layer the sentinel daemon and its /metrics
// endpoint are built on. The counters live outside the routing mutex
// (atomics on a slice fixed at construction), so observation costs the
// hot path two atomic adds, not a lock.

// LatencyBucketBounds are the upper bounds, in seconds, of the
// per-replica latency histogram buckets (a final implicit +Inf bucket
// catches the rest). They follow the conventional Prometheus decade
// spacing, centred on the exchange times of a local fleet.
var LatencyBucketBounds = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// replicaStats counts one replica's exchanges.
type replicaStats struct {
	served   atomic.Int64 // exchanges the replica answered (incl. QueryError rejections — transport worked)
	errs     atomic.Int64 // transport failures attributed to the replica
	latCount atomic.Int64
	latNanos atomic.Int64
	buckets  [len(LatencyBucketBounds) + 1]atomic.Int64 // non-cumulative; last is the +Inf overflow
}

// observe records one exchange against replica idx: latency on
// success (a QueryError is a success for the replica — transport
// worked, the query is bad everywhere), error counter and last-error
// text on transport failure.
func (s *ShardedIP) observe(idx int, d time.Duration, err error) {
	st := s.stats[idx]
	if err != nil {
		var qe *QueryError
		if !errors.As(err, &qe) {
			st.errs.Add(1)
			s.mu.Lock()
			s.lastErr[idx] = err.Error()
			s.mu.Unlock()
			return
		}
	}
	st.served.Add(1)
	st.latCount.Add(1)
	st.latNanos.Add(int64(d))
	sec := d.Seconds()
	b := len(LatencyBucketBounds) // +Inf overflow
	for i, bound := range LatencyBucketBounds {
		if sec <= bound {
			b = i
			break
		}
	}
	st.buckets[b].Add(1)
}

// retire folds the outgoing connection's byte counters into the
// replica's cumulative base and closes it, so per-replica WireStats
// survive the probe machinery's re-dials instead of resetting with
// each fresh connection.
func (s *ShardedIP) retire(idx int, old BatchIP) {
	if c, ok := old.(interface{ WireStats() WireStats }); ok {
		st := c.WireStats()
		s.mu.Lock()
		s.baseWire[idx].BytesRead += st.BytesRead
		s.baseWire[idx].BytesWritten += st.BytesWritten
		s.mu.Unlock()
	}
	if c, ok := old.(io.Closer); ok {
		c.Close() // harmless if already closed
	}
}

// replicaWireLocked returns replica idx's cumulative traffic (current
// connection plus retired predecessors). Caller holds s.mu.
func (s *ShardedIP) replicaWireLocked(idx int) WireStats {
	total := s.baseWire[idx]
	if c, ok := s.replicas[idx].(interface{ WireStats() WireStats }); ok {
		st := c.WireStats()
		total.BytesRead += st.BytesRead
		total.BytesWritten += st.BytesWritten
	}
	return total
}

// ReplicaStatus is a point-in-time snapshot of one replica's routing
// state and counters, as reported by ReplicaStatuses.
type ReplicaStatus struct {
	// Index is the replica's slot in the fleet (0-based).
	Index int `json:"index"`
	// Addr names the replica: its dial address for DialShards fleets,
	// "replica-N" (1-based) for in-process fleets.
	Addr string `json:"addr"`
	// State is "healthy", "down" (transport failure, half-open probe
	// pending) or "quarantined" (validation evidence, re-validation
	// probe pending).
	State string `json:"state"`
	// LastErr is the text of the last transport error attributed to the
	// replica, "" if none yet.
	LastErr string `json:"last_err,omitempty"`
	// QuarantineReason is why the replica was quarantined, "" outside
	// quarantine.
	QuarantineReason string `json:"quarantine_reason,omitempty"`
	// Served counts exchanges the replica answered (including
	// application-level QueryError rejections).
	Served int64 `json:"served"`
	// Errors counts transport failures attributed to the replica.
	Errors int64 `json:"errors"`
	// Wire is the replica's cumulative byte traffic, surviving probe
	// re-dials.
	Wire WireStats `json:"wire"`
	// LatencyCount and LatencySeconds aggregate answered-exchange
	// latency; LatencyBuckets are the non-cumulative histogram counts
	// per LatencyBucketBounds bucket, with a final +Inf overflow entry.
	LatencyCount   int64   `json:"latency_count"`
	LatencySeconds float64 `json:"latency_seconds"`
	LatencyBuckets []int64 `json:"latency_buckets"`
}

// ReplicaStatuses snapshots every replica's routing state and counters
// in slot order. Safe for concurrent use.
func (s *ShardedIP) ReplicaStatuses() []ReplicaStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ReplicaStatus, len(s.replicas))
	for i := range s.replicas {
		st := s.stats[i]
		rs := ReplicaStatus{
			Index:            i,
			Addr:             s.addrs[i],
			State:            "healthy",
			LastErr:          s.lastErr[i],
			QuarantineReason: s.quarReason[i],
			Served:           st.served.Load(),
			Errors:           st.errs.Load(),
			Wire:             s.replicaWireLocked(i),
			LatencyCount:     st.latCount.Load(),
			LatencySeconds:   time.Duration(st.latNanos.Load()).Seconds(),
			LatencyBuckets:   make([]int64, len(st.buckets)),
		}
		switch {
		case s.quarantined[i]:
			rs.State = "quarantined"
		case s.down[i]:
			rs.State = "down"
		}
		for b := range st.buckets {
			rs.LatencyBuckets[b] = st.buckets[b].Load()
		}
		out[i] = rs
	}
	return out
}

// Addrs returns the replica names in slot order (dial addresses for
// DialShards fleets).
func (s *ShardedIP) Addrs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.addrs...)
}

// Quarantine pulls replica i from the rotation on validation evidence,
// recording why. A quarantined replica serves no traffic — not even
// the transport-level half-open probe, which could only prove its
// socket works, not that its parameters are clean — until a TryReadmit
// re-validation probe passes. The first readmission probe is allowed
// after the minimum probe backoff, doubling per failed probe like the
// down-replica schedule.
func (s *ShardedIP) Quarantine(i int, reason string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.replicas) {
		return fmt.Errorf("validate: quarantine: replica %d out of range (fleet has %d)", i, len(s.replicas))
	}
	s.quarantined[i] = true
	s.quarReason[i] = reason
	s.backoff[i] = s.probeMin
	s.nextProbe[i] = time.Now().Add(s.backoff[i]) //detlint:allow walltime(quarantine probe-backoff deadline; readmission routing only)
	return nil
}

// Readmit unconditionally lifts replica i's quarantine — the manual
// override. The replica rejoins the rotation immediately (subject to
// its transport down state, which the normal half-open probe clears).
// Prefer TryReadmit, which readmits only after the replica passes a
// re-validation probe.
func (s *ShardedIP) Readmit(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.replicas) {
		return fmt.Errorf("validate: readmit: replica %d out of range (fleet has %d)", i, len(s.replicas))
	}
	s.quarantined[i] = false
	s.quarReason[i] = ""
	return nil
}

// Quarantined returns the slots currently in quarantine, ascending.
func (s *ShardedIP) Quarantined() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for i, q := range s.quarantined {
		if q {
			out = append(out, i)
		}
	}
	return out
}

// TryReadmit runs one re-validation probe of quarantined replica i:
// re-dial a fresh connection when the fleet knows how (the quarantined
// parameters may since have been repaired by a hot sync, and the old
// connection may have died in the meantime), run revalidate against
// the pinned replica, and readmit on success. Failure keeps the
// quarantine and doubles the probe backoff, exactly like the
// transport-level half-open probe.
//
// The probe is rate-limited by the same backoff schedule: probed
// reports whether a probe actually ran — false when the replica is not
// quarantined, its backoff has not expired, or another probe is in
// flight. err is the revalidation (or re-dial) failure when probed.
func (s *ShardedIP) TryReadmit(i int, revalidate func(BatchIP) error) (probed bool, err error) {
	s.mu.Lock()
	if i < 0 || i >= len(s.replicas) {
		s.mu.Unlock()
		return false, fmt.Errorf("validate: readmit: replica %d out of range (fleet has %d)", i, len(s.replicas))
	}
	if !s.quarantined[i] || s.closed || s.probing[i] || time.Now().Before(s.nextProbe[i]) { //detlint:allow walltime(quarantine probe-backoff gate; readmission routing only)
		s.mu.Unlock()
		return false, nil
	}
	s.probing[i] = true
	rep := s.replicas[i]
	redial := s.redial[i]
	s.mu.Unlock()
	if redial != nil {
		fresh, derr := redial()
		if derr != nil {
			s.probeFailed(i)
			return true, derr
		}
		s.retire(i, rep) // fold the old connection's byte counters, then close it
		s.mu.Lock()
		if s.closed {
			// Close ran while the re-dial was in flight; it cannot have
			// seen the fresh connection, so it is ours to close — nothing
			// may outlive a closed cluster.
			s.mu.Unlock()
			if c, ok := fresh.(io.Closer); ok {
				c.Close()
			}
			s.probeFailed(i)
			return true, fmt.Errorf("validate: sharded IP closed")
		}
		s.replicas[i] = fresh
		s.mu.Unlock()
		rep = fresh
	}
	if verr := revalidate(rep); verr != nil {
		s.probeFailed(i)
		return true, verr
	}
	s.mu.Lock()
	s.probing[i] = false
	s.quarantined[i] = false
	s.quarReason[i] = ""
	s.down[i] = false
	s.backoff[i] = 0
	s.lastErr[i] = ""
	s.mu.Unlock()
	return true, nil
}

// ReplicaView is a pinned view of one fleet slot: an IP whose
// exchanges go to that replica only, with no failover — the
// attribution probe of a sentinel sweep, where the whole point is to
// know which replica produced which answer. Exchanges run against the
// slot's current connection regardless of its health state and are
// recorded in the replica's counters; a transport failure marks the
// replica down exactly as fleet traffic would.
type ReplicaView struct {
	s   *ShardedIP
	idx int
}

// Replica returns the pinned view of fleet slot i.
func (s *ShardedIP) Replica(i int) (*ReplicaView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.replicas) {
		return nil, fmt.Errorf("validate: replica %d out of range (fleet has %d)", i, len(s.replicas))
	}
	return &ReplicaView{s: s, idx: i}, nil
}

// Index returns the viewed slot.
func (v *ReplicaView) Index() int { return v.idx }

// Addr returns the viewed replica's name (its dial address for
// DialShards fleets).
func (v *ReplicaView) Addr() string {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return v.s.addrs[v.idx]
}

// do runs one pinned exchange, recording it in the replica's counters.
func (v *ReplicaView) do(fn func(BatchIP) (any, error)) (any, error) {
	s := v.s
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("validate: sharded IP closed")
	}
	rep := s.replicas[v.idx]
	s.mu.Unlock()
	t0 := time.Now() //detlint:allow walltime(latency measurement start for the health metrics)
	out, err := fn(rep)
	s.observe(v.idx, time.Since(t0), err) //detlint:allow walltime(latency measurement for the health metrics; not part of the replay result)
	if err != nil {
		var qe *QueryError
		if !errors.As(err, &qe) {
			s.markDown(v.idx, rep)
		}
		return nil, err
	}
	return out, nil
}

// Query implements IP against the pinned replica.
func (v *ReplicaView) Query(x *tensor.Tensor) (*tensor.Tensor, error) {
	out, err := v.QueryBatch([]*tensor.Tensor{x})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// QueryBatch implements BatchIP against the pinned replica.
func (v *ReplicaView) QueryBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	out, err := v.do(func(rep BatchIP) (any, error) { return rep.QueryBatch(xs) })
	if err != nil {
		return nil, err
	}
	return out.([]*tensor.Tensor), nil
}

// QuantWire reports whether the pinned replica speaks the quantised v4
// dialect.
func (v *ReplicaView) QuantWire() bool {
	v.s.mu.Lock()
	rep := v.s.replicas[v.idx]
	v.s.mu.Unlock()
	if q, ok := rep.(QuantIP); ok {
		return q.QuantWire()
	}
	return false
}

// QueryQuant implements QuantIP against the pinned replica.
func (v *ReplicaView) QueryQuant(xs []*tensor.Tensor, refs []quant.Frame, decimals int) ([]quant.Frame, error) {
	out, err := v.do(func(rep BatchIP) (any, error) {
		q, ok := rep.(QuantIP)
		if !ok || !q.QuantWire() {
			return nil, &QueryError{Msg: "validate: replica does not speak the quantised wire dialect — dial the fleet with Wire: WireQuant"}
		}
		return q.QueryQuant(xs, refs, decimals)
	})
	if err != nil {
		return nil, err
	}
	return out.([]quant.Frame), nil
}
