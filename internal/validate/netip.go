package validate

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file gives the black-box IP a wire form: the vendor hosts the
// model behind a TCP endpoint and the user validates over the network,
// never holding the parameters — the deployment shape of Fig. 1 where
// only query access exists. The protocol is a stream of gob-encoded
// request/response pairs per connection.

type queryRequest struct {
	Input wireTensor
}

type queryResponse struct {
	Output wireTensor
	Err    string
}

// Server hosts a network as a black-box IP endpoint.
type Server struct {
	net      *nn.Network
	listener net.Listener

	mu sync.Mutex // serialises forward passes (layers cache state)

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// Serve starts serving ip queries on l. It returns immediately; Close
// stops the server. The network is shared, so queries are serialised.
func Serve(l net.Listener, network *nn.Network) *Server {
	s := &Server{net: network, listener: l, closed: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting and waits for handlers to finish. It is safe to
// call more than once.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		err = s.listener.Close()
		s.wg.Wait()
	})
	return err
}

// Accept retry backoff bounds: transient errors (ECONNABORTED on a
// half-open client, EMFILE under descriptor pressure) are retried after
// a pause that doubles up to the cap, so an error burst cannot spin the
// CPU and a single failed Accept cannot silently kill the endpoint.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 500 * time.Millisecond
)

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			// A transient Accept error must not permanently stop service
			// while the listener is still open; only shutdown or a
			// listener closed out from under us ends the loop.
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return // caller closed the listener directly; nothing to accept ever again
			}
			if backoff == 0 {
				backoff = acceptBackoffMin
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			select {
			case <-s.closed:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req queryRequest
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken stream ends the session
		}
		var resp queryResponse
		x, err := fromWire(req.Input)
		if err != nil {
			resp.Err = err.Error()
		} else {
			out, qerr := s.query(x)
			if qerr != nil {
				resp.Err = qerr.Error()
			} else {
				resp.Output = toWire(out)
			}
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) query(x *tensor.Tensor) (out *tensor.Tensor, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("query rejected: %v", r)
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.net.Forward(x).Clone(), nil
}

// RemoteIP is the user-side client of a served IP. It implements IP.
type RemoteIP struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	mu   sync.Mutex
}

// Dial connects to a served IP at addr.
func Dial(addr string) (*RemoteIP, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("validate: dial IP: %w", err)
	}
	return &RemoteIP{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Query implements IP over the wire.
func (r *RemoteIP) Query(x *tensor.Tensor) (*tensor.Tensor, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.enc.Encode(queryRequest{Input: toWire(x)}); err != nil {
		return nil, fmt.Errorf("validate: send query: %w", err)
	}
	var resp queryResponse
	if err := r.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("validate: receive response: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return fromWire(resp.Output)
}

// Close closes the connection.
func (r *RemoteIP) Close() error { return r.conn.Close() }
