package validate

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// This file gives the black-box IP a wire form: the vendor hosts the
// model behind a TCP endpoint and the user validates over the network,
// never holding the parameters — the deployment shape of Fig. 1 where
// only query access exists.
//
// Wire protocol v2/v3/v4. A connection opens with a 5-byte preamble from
// the client — the 4-byte magic "DNNV" followed by the highest version
// byte the client wants — which the server answers with the negotiated
// version (the lower of the two) before any payload flows. The
// handshake is what turns cross-version contact into a descriptive
// error instead of a gob decode failure mid-stream: a v1 client (which
// opens with a bare gob request) is answered with a v1-shaped error
// response naming the mismatch, and a v2/v3 client talking to a v1
// server reports the missing preamble. After the handshake the stream
// is a sequence of gob-encoded batched requests and responses matched
// by ID: the client may pipeline any number of requests before reading,
// and the server may answer them out of order (each request is
// evaluated on a network clone checked out of a pool, so handlers run
// concurrently).
//
// Protocol v3 carries float32 tensors in both directions — half the
// replay bandwidth of the v2 float64 frames, and the wire form of the
// reduced-precision serving path (a v3 session on an -f32 server
// evaluates on its float32 clone fleet). A client only requests v3 when
// it wants float32 frames (DialOptions.F32); replay against v3 outputs
// must use a Tolerance, so v2 with its bit-exact float64 frames remains
// the default dialect, and v2-only peers on either side keep working
// unchanged.
//
// Protocol v4 carries quantised delta-encoded replay frames for
// QuantizedOutputs suites: outputs ship as fixed-point integers at the
// suite's decimal precision, delta-encoded against the quantised
// reference outputs (or the previous output frame), and requests ride
// a replay-frame cache so a re-sent suite frame is a fixed-size
// back-reference. Verdicts are computed on the wire representation
// directly; see wirev4.go. A client only requests v4 when it wants the
// quantised dialect (DialOptions.Quant), so v2 stays the default and
// v2/v3-only peers on either side keep working unchanged.
//
// Protocol v5 is v4 plus the shared-store capability: the same framing
// and verdict construction, with new-frame uploads replaced by content
// hash probes against a process-wide FrameStore ("have it / send
// body") and unresolvable back-references answered NeedFrame instead
// of erroring (see wirev4.go and framestore.go). A quant client now
// hellos v5 and accepts a v4 echo as a per-connection downgrade, so
// old v4 servers keep working; an old v4 client's hello lands on a v4
// session served bit-identically to a pre-v5 build.
//
// Protocol v1 (historical): no preamble, a lockstep stream of
// single-input gob requests answered in order, queries serialised by a
// global forward mutex on the server.

// Protocol identification. The version byte is bumped on any wire
// format change; the magic never changes, so any version of either side
// can recognise the other's hello.
const (
	protocolV2      = 2
	protocolV3      = 3
	protocolV4      = 4
	protocolV5      = 5
	protocolVersion = protocolV5 // highest version this build speaks
)

var protocolMagic = [4]byte{'D', 'N', 'N', 'V'}

// preambleV returns the 5-byte protocol hello for the given version.
func preambleV(version byte) []byte {
	return append(append([]byte(nil), protocolMagic[:]...), version)
}

// queryRequest / queryResponse are the v1 single-query wire messages,
// kept so a v2 server can answer a v1 client in its own dialect with a
// descriptive version-mismatch error.
type queryRequest struct {
	Input wireTensor
}

type queryResponse struct {
	Output wireTensor
	Err    string
}

// requestV2 is one batched, pipelined query exchange: Inputs are
// evaluated in order and answered by a responseV2 carrying the same ID.
type requestV2 struct {
	ID     uint64
	Inputs []wireTensor
}

type responseV2 struct {
	ID      uint64
	Outputs []wireTensor
	Err     string
}

// wireTensor32 is the v3 frame form of a tensor: float32 payloads,
// half the bytes of wireTensor on the wire.
type wireTensor32 struct {
	Shape []int
	Data  []float32
}

// requestV3/responseV3 are the v3 exchanges — identical framing to v2
// with float32 tensor payloads.
type requestV3 struct {
	ID     uint64
	Inputs []wireTensor32
}

type responseV3 struct {
	ID      uint64
	Outputs []wireTensor32
	Err     string
}

// toWire32 quantises a float64 tensor into a v3 frame.
func toWire32(t *tensor.Tensor) wireTensor32 {
	d := make([]float32, t.Size())
	for i, v := range t.Data() {
		d[i] = float32(v)
	}
	return wireTensor32{Shape: append([]int(nil), t.Shape()...), Data: d}
}

// fromWire32T32 validates a v3 frame and wraps it as a float32 tensor
// (sharing the decoded payload).
func fromWire32T32(w wireTensor32) (*tensor.T32, error) {
	n, err := shapeSize(w.Shape)
	if err != nil {
		return nil, err
	}
	if n != len(w.Data) {
		return nil, fmt.Errorf("validate: wire tensor shape %v does not match %d values", w.Shape, len(w.Data))
	}
	return tensor.FromSliceOf(w.Data, w.Shape...), nil
}

// fromWire32 validates a v3 frame and widens it to a float64 tensor.
func fromWire32(w wireTensor32) (*tensor.Tensor, error) {
	t32, err := fromWire32T32(w)
	if err != nil {
		return nil, err
	}
	return t32.F64(), nil
}

// ServerOptions configures a served IP endpoint.
type ServerOptions struct {
	// Workers is the number of network clones the server evaluates
	// queries on — the bound on concurrently served requests. Values
	// <= 0 use the whole machine (parallel.Auto).
	Workers int
	// Wire provisions the server for a wire dialect. WireF32 hosts a
	// float32 inference fleet (Workers clones converted from the served
	// network) in addition to the float64 clones: protocol-v3 sessions
	// are then evaluated in float32 on it, halving kernel memory
	// traffic. Without it, v3 sessions evaluate on the float64 clones
	// and only the frames are float32. The other dialects need no
	// provisioning — a server answers v2 and v4 sessions from whichever
	// fleets it has (v2 always on the bit-exact float64 clones) — so
	// WireAuto, WireGob and WireQuant configure nothing extra here; the
	// dialect actually spoken is negotiated per connection, capped by
	// MaxVersion.
	Wire Wire
	// F32 hosts the float32 fleet.
	//
	// Deprecated: set Wire: WireF32 instead; this boolean is the
	// pre-enum spelling and is honoured as an alias.
	F32 bool
	// MaxVersion caps the wire protocol version this server negotiates
	// (0 means the build's highest). An interop/rollback knob: a fleet
	// pinned to 4 serves v5-capable clients a per-connection v4
	// session exactly as a pre-v5 build would, and the
	// handshake-matrix tests use it to stand up genuine old-dialect
	// servers. Values are clamped to [v2, highest].
	MaxVersion byte
	// CacheFrames/CacheBytes bound each v5 session's replay-frame
	// cache (0 ⇒ the compiled v4 defaults, 256 frames / 8 MiB). They
	// apply to v5 sessions only: a v4 session's cache must mirror its
	// client's compiled-in bounds in lockstep, whereas a v5 mismatch
	// between the two ends self-heals via NeedFrame.
	CacheFrames int
	CacheBytes  int
	// FrameStore is the content-addressed store v5 sessions probe
	// against. Nil means: a private store bounded by
	// StoreFrames/StoreBytes when either is set, else the shared
	// per-process store — the default that lets every server and
	// session in a fleet process pay for one sealed suite's frames
	// once.
	FrameStore *FrameStore
	// StoreFrames/StoreBytes bound the private store built when
	// FrameStore is nil and either is non-zero (0 ⇒ defaults, 1024
	// frames / 32 MiB). Ignored when FrameStore is set.
	StoreFrames int
	StoreBytes  int
	// CoalesceWindow, when positive, gathers same-shape single-query
	// requests from different connections for up to this long into one
	// batched forward pass on the clone pool — the fleet-throughput
	// path for many small clients. Per-sample bit-identity of the
	// batched engine makes this invisible: verdicts are identical with
	// coalescing on or off, on every dialect. 0 (the default) serves
	// each connection's requests on their own.
	CoalesceWindow time.Duration
	// CoalesceBatch caps how many queries one coalesced batch gathers
	// before flushing early (0 ⇒ 32). The window is the latency bound,
	// this the memory/batch-size bound.
	CoalesceBatch int
}

// hostF32 is the one place the deprecated F32 alias folds into the
// Wire enum: the server hosts a float32 fleet when either spelling
// asks for it.
func (o ServerOptions) hostF32() bool { return o.F32 || o.Wire == WireF32 }

// Server hosts a network as a black-box IP endpoint. Requests are
// evaluated concurrently on a pool of clones of the served network
// (the clones snapshot the parameters at Serve time; SyncParamsFrom
// hot-updates them), so no global forward mutex serialises queries.
type Server struct {
	clones     *nn.ClonePool
	clones32   *nn.ClonePoolF32 // float32 fleet for v3/v4 sessions; nil unless ServerOptions.F32
	listener   net.Listener
	maxVersion byte

	store       *FrameStore // v5 shared frame store (never nil)
	cacheFrames int         // v5 session-cache bounds (v4 sessions pin the compiled defaults)
	cacheBytes  int

	coal64 *coalescer[*tensor.Tensor] // cross-connection coalescers; nil when CoalesceWindow is 0
	coal32 *coalescer[*tensor.T32]

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// Serve starts serving IP queries on l with default options. It
// returns immediately; Close stops the server.
func Serve(l net.Listener, network *nn.Network) *Server {
	return ServeWith(l, network, ServerOptions{})
}

// ServeWith starts serving IP queries on l, evaluating on
// opts.Workers clones of network.
func ServeWith(l net.Listener, network *nn.Network, opts ServerOptions) *Server {
	workers := opts.Workers
	if workers <= 0 {
		workers = parallel.Auto()
	}
	maxV := opts.MaxVersion
	if maxV == 0 || maxV > protocolVersion {
		maxV = protocolVersion
	}
	if maxV < protocolV2 {
		maxV = protocolV2
	}
	store := opts.FrameStore
	if store == nil {
		if opts.StoreFrames != 0 || opts.StoreBytes != 0 {
			store = NewFrameStore(opts.StoreFrames, opts.StoreBytes)
		} else {
			store = processFrameStore
		}
	}
	cacheFrames, cacheBytes := cacheBoundsOrDefault(opts.CacheFrames, opts.CacheBytes)
	s := &Server{
		clones:      nn.NewClonePool(network, workers),
		listener:    l,
		maxVersion:  maxV,
		store:       store,
		cacheFrames: cacheFrames,
		cacheBytes:  cacheBytes,
		closed:      make(chan struct{}),
		conns:       make(map[net.Conn]struct{}),
	}
	if opts.hostF32() {
		s.clones32 = nn.NewClonePoolF32(network, workers)
	}
	if opts.CoalesceWindow > 0 {
		batch := opts.CoalesceBatch
		if batch <= 0 {
			batch = defaultCoalesceBatch
		}
		s.coal64 = newCoalescer(opts.CoalesceWindow, batch, func(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
			clone := s.clones.Acquire()
			defer s.clones.Release(clone)
			return evalOn(clone, xs)
		})
		if s.clones32 != nil {
			s.coal32 = newCoalescer(opts.CoalesceWindow, batch, func(xs []*tensor.T32) ([]*tensor.T32, error) {
				clone := s.clones32.Acquire()
				defer s.clones32.Release(clone)
				return evalOnF32(clone, xs)
			})
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// FrameStore returns the content-addressed store this server's v5
// sessions probe (the shared per-process store unless ServerOptions
// provided or bounded a private one) — an observability handle.
func (s *Server) FrameStore() *FrameStore { return s.store }

// Addr returns the listener address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// SyncParamsFrom refreshes the served parameters from src (which must
// share the served network's architecture) — a hot model update. It
// blocks until in-flight evaluations finish; no query ever sees a
// half-updated parameter set. On an F32 server the float32 fleet is
// re-quantised from the same master.
func (s *Server) SyncParamsFrom(src *nn.Network) {
	s.clones.SyncParamsFrom(src)
	if s.clones32 != nil {
		s.clones32.SyncParamsFrom(src)
	}
}

// Close stops accepting, drains in-flight requests (every request
// already read off a connection is answered), closes the connections,
// and waits for all handlers to finish. It is safe to call more than
// once.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		err = s.listener.Close()
		// Unblock handlers parked in Decode: an expired read deadline
		// fails every pending and future read, while writes — the
		// responses still draining — proceed untouched.
		s.connMu.Lock()
		for c := range s.conns { //detlint:allow maporder(teardown: every conn gets the same expired deadline; order unobservable)
			c.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()
		s.wg.Wait()
	})
	return err
}

// Accept retry backoff bounds: transient errors (ECONNABORTED on a
// half-open client, EMFILE under descriptor pressure) are retried after
// a pause that doubles up to the cap, so an error burst cannot spin the
// CPU and a single failed Accept cannot silently kill the endpoint.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 500 * time.Millisecond
)

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			// A transient Accept error must not permanently stop service
			// while the listener is still open; only shutdown or a
			// listener closed out from under us ends the loop.
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return // caller closed the listener directly; nothing to accept ever again
			}
			if backoff == 0 {
				backoff = acceptBackoffMin
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			select {
			case <-s.closed:
				return
			case <-time.After(backoff): //detlint:allow walltime(accept-loop backoff timing; never reaches replay outputs)
			}
			continue
		}
		backoff = 0
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		// Register under the lock so a concurrent Close either sees this
		// connection (and expires its reads) or has already closed the
		// listener, in which case Accept could not have returned it.
		select {
		case <-s.closed:
			s.connMu.Unlock()
			conn.Close()
			return
		default:
		}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
		}()
	}
}

// handshakeTimeout bounds how long a fresh connection may sit without
// completing its hello, so dead connections cannot pin handlers.
const handshakeTimeout = 10 * time.Second

// serverWriteTimeout bounds each response (and handshake) write. A
// client that stops reading fills the kernel send buffer; without this
// bound its handler would block in Encode forever, pin a clone, and
// hang Close's drain. With it, drain completes within one write
// timeout even against a dead-reader client.
const serverWriteTimeout = 30 * time.Second

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	var hello [5]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	enc := gob.NewEncoder(conn)
	if !bytes.Equal(hello[:4], protocolMagic[:]) {
		// No preamble: a v1 client opening with a bare gob stream.
		// Answer in the v1 response shape so its pending Query surfaces
		// a descriptive error instead of a decode failure.
		enc.Encode(queryResponse{Err: fmt.Sprintf(
			"validate: protocol version mismatch: this server speaks v%d (preamble-first); the client opened with a pre-handshake v1 stream — upgrade the client", protocolVersion)})
		return
	}
	// Negotiate the session version: the lower of the client's hello and
	// our maximum (the build's highest, or ServerOptions.MaxVersion),
	// echoed back so the client knows what the stream will speak. A
	// future client (hello > v4) lands on v4; a v2 client gets its v2
	// session untouched. A pre-v2 version byte is unservable — echo our
	// own maximum so the peer can report the mismatch descriptively,
	// then end the connection (nothing more can be said in an unknown
	// dialect).
	version := hello[4]
	if version > s.maxVersion {
		version = s.maxVersion
	}
	if _, err := conn.Write(preambleV(max(version, protocolV2))); err != nil {
		return
	}
	if version < protocolV2 {
		return
	}
	conn.SetDeadline(time.Time{})
	if s.closing() {
		// Close may have expired read deadlines before this connection
		// registered a pending read; do not start a session mid-drain.
		return
	}

	dec := gob.NewDecoder(conn)
	var encMu sync.Mutex
	var inflight sync.WaitGroup
	var v4cache *frameCacheV4 // session replay-frame cache; v4/v5 only
	if version >= protocolV5 {
		v4cache = newFrameCacheV4(s.cacheFrames, s.cacheBytes)
	} else if version == protocolV4 {
		// A v4 session's cache must mirror its client's compiled-in
		// bounds in exact lockstep — no self-healing on that dialect —
		// so the configured v5 bounds do not apply here.
		v4cache = newFrameCacheV4(0, 0)
	}
	// Coalesced requests skip the clone checkout below; this semaphore
	// keeps their per-connection inflight and queued-response memory
	// bounded at the pool size, exactly as the checkout does for the
	// direct path.
	var coalSem chan struct{}
	if s.coal64 != nil {
		coalSem = make(chan struct{}, s.clones.Size())
	}
	defer inflight.Wait() // drain: every accepted request is answered before conn.Close
	for {
		// Decode the version-appropriate request, then check a clone out
		// *before* spawning the handler — holding it until the response
		// is written caps the per-connection concurrency AND the
		// queued-response memory at the pool size, backpressuring both a
		// flooding client and a non-reading one instead of buffering for
		// them.
		var work func() any // evaluates the request on its checked-out clone
		var release func()
		if version >= protocolV4 {
			var req requestV4
			if err := dec.Decode(&req); err != nil {
				return
			}
			// Resolve the replay frame serially, in stream order, so the
			// cache mirrors the client's registry; evaluation then fans
			// out like any other request.
			var sf *storedFrameV4
			var ferr error
			var needFrame bool
			if req.Frame != nil {
				if sf, ferr = resolveFrameV4(req.Frame); ferr == nil {
					v4cache.insert(req.Seq, sf)
					if version >= protocolV5 {
						// Content-address the body under a key this side
						// computed from the received bytes — a client-claimed
						// hash can never bind foreign content.
						s.store.insert(frameKey(req.Frame), sf)
					}
				}
			} else if cached, ok := v4cache.lookup(req.Seq); ok {
				sf = cached
			} else if version >= protocolV5 {
				if len(req.Hash) > 0 {
					if hit, ok := s.store.lookup(string(req.Hash)); ok {
						// Probe hit: pin the stored frame into this
						// session's cache under the client's seq so later
						// back-references resolve.
						sf = hit
						v4cache.insert(req.Seq, sf)
					}
				}
				// Anything unresolvable on a v5 session — a probe whose
				// hash the store misses, or a back-reference outside this
				// session's window — is answered NeedFrame: the client
				// re-sends the body and the exchange self-heals.
				needFrame = sf == nil
			} else {
				ferr = fmt.Errorf("validate: replay frame %d is not in this session's cache window", req.Seq)
			}
			switch {
			case needFrame:
				resp := responseV4{ID: req.ID, NeedFrame: true}
				work = func() any { return resp }
				release = func() {}
			case ferr != nil:
				resp := responseV4{ID: req.ID, Err: ferr.Error()}
				work = func() any { return resp }
				release = func() {}
			case sf.f32 && s.clones32 != nil:
				if s.coal32 != nil && len(sf.inputs) == 1 {
					coalSem <- struct{}{}
					id := req.ID
					work = func() any { return s.answerV4Coalesced32(sf, id) }
					release = func() { <-coalSem }
				} else {
					clone := s.clones32.Acquire()
					work = func() any { return answerV4On32(clone, sf, req.ID) }
					release = func() { s.clones32.Release(clone) }
				}
			default:
				if s.coal64 != nil && len(sf.inputs) == 1 {
					coalSem <- struct{}{}
					id := req.ID
					work = func() any { return s.answerV4Coalesced(sf, id) }
					release = func() { <-coalSem }
				} else {
					clone := s.clones.Acquire()
					work = func() any { return answerV4(clone, sf, req.ID) }
					release = func() { s.clones.Release(clone) }
				}
			}
		} else if version == protocolV3 {
			var req requestV3
			if err := dec.Decode(&req); err != nil {
				return // EOF, broken stream, or an expired drain deadline ends the session
			}
			if s.clones32 != nil {
				if s.coal32 != nil && len(req.Inputs) == 1 {
					coalSem <- struct{}{}
					work = func() any { return s.answerV3Coalesced(req) }
					release = func() { <-coalSem }
				} else {
					clone := s.clones32.Acquire()
					work = func() any { return answerV3(clone, req) }
					release = func() { s.clones32.Release(clone) }
				}
			} else {
				if s.coal64 != nil && len(req.Inputs) == 1 {
					coalSem <- struct{}{}
					work = func() any { return s.answerV3On64Coalesced(req) }
					release = func() { <-coalSem }
				} else {
					clone := s.clones.Acquire()
					work = func() any { return answerV3On64(clone, req) }
					release = func() { s.clones.Release(clone) }
				}
			}
		} else {
			var req requestV2
			if err := dec.Decode(&req); err != nil {
				return
			}
			if s.coal64 != nil && len(req.Inputs) == 1 {
				coalSem <- struct{}{}
				work = func() any { return s.answerV2Coalesced(req) }
				release = func() { <-coalSem }
			} else {
				clone := s.clones.Acquire()
				work = func() any { return answer(clone, req) }
				release = func() { s.clones.Release(clone) }
			}
		}
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			defer release()
			resp := work()
			encMu.Lock()
			defer encMu.Unlock()
			conn.SetWriteDeadline(time.Now().Add(serverWriteTimeout))
			if err := enc.Encode(resp); err != nil {
				// A failed response write (dead reader, expired write
				// deadline) is session-fatal: closing the connection
				// fails the decode loop and the remaining queued writes
				// immediately, so no work is done for a client that
				// cannot receive it and Close's drain stays bounded by
				// a single write timeout.
				conn.Close()
			}
		}()
	}
}

// closing reports whether Close has begun.
func (s *Server) closing() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// answer evaluates one batched request on the given clone.
func answer(clone *nn.Network, req requestV2) responseV2 {
	resp := responseV2{ID: req.ID}
	if len(req.Inputs) == 0 {
		resp.Err = "validate: empty query batch"
		return resp
	}
	xs := make([]*tensor.Tensor, len(req.Inputs))
	for i, wt := range req.Inputs {
		x, err := fromWire(wt)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		xs[i] = x
	}
	outs, err := evalOn(clone, xs)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Outputs = make([]wireTensor, len(outs))
	for i, o := range outs {
		resp.Outputs[i] = toWire(o)
	}
	return resp
}

// answerV3 evaluates one v3 batched request on a float32 clone — the
// reduced-precision serving hot path: float32 frames in, float32
// kernels, float32 frames out.
func answerV3(clone *nn.NetF32, req requestV3) responseV3 {
	resp := responseV3{ID: req.ID}
	if len(req.Inputs) == 0 {
		resp.Err = "validate: empty query batch"
		return resp
	}
	xs := make([]*tensor.T32, len(req.Inputs))
	for i, wt := range req.Inputs {
		x, err := fromWire32T32(wt)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		xs[i] = x
	}
	outs, err := evalOnF32(clone, xs)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Outputs = make([]wireTensor32, len(outs))
	for i, o := range outs {
		resp.Outputs[i] = wireTensor32{Shape: append([]int(nil), o.Shape()...), Data: o.Data()}
	}
	return resp
}

// answerV3On64 serves a v3 session on a float64 clone (the server was
// not started with an F32 fleet): inputs widen to float64, evaluation
// is the bit-exact engine, and only the frames are float32.
func answerV3On64(clone *nn.Network, req requestV3) responseV3 {
	resp := responseV3{ID: req.ID}
	if len(req.Inputs) == 0 {
		resp.Err = "validate: empty query batch"
		return resp
	}
	xs := make([]*tensor.Tensor, len(req.Inputs))
	for i, wt := range req.Inputs {
		x, err := fromWire32(wt)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		xs[i] = x
	}
	outs, err := evalOn(clone, xs)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Outputs = make([]wireTensor32, len(outs))
	for i, o := range outs {
		resp.Outputs[i] = toWire32(o)
	}
	return resp
}

// evalOnF32 is evalOn for the float32 inference path: same-shaped
// multi-input batches as one batched forward pass (bit-identical per
// sample to individual float32 forwards), anything else per sample.
// NetF32 keeps no batch caches, so there is nothing to release; shape
// panics come back as errors exactly as on the float64 path.
func evalOnF32(net *nn.NetF32, xs []*tensor.T32) (out []*tensor.T32, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("query rejected: %v", r)
		}
	}()
	if len(xs) > 1 && sameShapes(xs) {
		logits := net.ForwardBatch(tensor.Stack(xs))
		out = make([]*tensor.T32, len(xs))
		for i := range xs {
			out[i] = logits.Sample(i).Clone()
		}
		return out, nil
	}
	out = make([]*tensor.T32, len(xs))
	for i, x := range xs {
		out[i] = net.Forward(x).Clone()
	}
	return out, nil
}

// evalOn runs the queries on the net: same-shaped multi-input batches
// as one batched forward pass (bit-identical per sample to individual
// forwards), anything else per sample. A panic from a malformed input
// shape comes back as an error, leaving the network usable; batch
// caches are released even then — a mid-stack shape panic happens after
// earlier layers already cached batch state, which must not ride back
// into a clone pool pinning heap.
func evalOn(net *nn.Network, xs []*tensor.Tensor) (out []*tensor.Tensor, err error) {
	if len(xs) > 1 && sameShapes(xs) {
		defer net.ReleaseBatchState()
		defer func() {
			if r := recover(); r != nil {
				out, err = nil, fmt.Errorf("query rejected: %v", r)
			}
		}()
		logits := net.ForwardBatch(tensor.Stack(xs))
		out = make([]*tensor.Tensor, len(xs))
		for i := range xs {
			out[i] = logits.Sample(i).Clone()
		}
		return out, nil
	}
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("query rejected: %v", r)
		}
	}()
	out = make([]*tensor.Tensor, len(xs))
	for i, x := range xs {
		out[i] = net.Forward(x).Clone()
	}
	return out, nil
}

// DialOptions bound the client side of a served-IP connection, so a
// hung or half-dead server fails a validation run with a clear error
// instead of blocking it forever. Zero fields take the defaults.
type DialOptions struct {
	// DialTimeout bounds connection establishment and the version
	// handshake. Default 10s.
	DialTimeout time.Duration
	// ReadTimeout is the longest the client waits for the next response
	// while requests are outstanding. Default 60s.
	ReadTimeout time.Duration
	// WriteTimeout bounds sending one request. Default 10s.
	WriteTimeout time.Duration
	// Wire selects the wire dialect this client requests in the
	// handshake:
	//
	//   - WireGob — protocol v2, gob-framed float64 tensors; the
	//     bit-exact default, spoken by servers of any age.
	//   - WireF32 — protocol v3: float32 tensor frames in both
	//     directions (half the replay bandwidth) and, on an -f32
	//     server, float32 evaluation. Outputs then approximate the
	//     float64 references to rounding error, so replay must use a
	//     Tolerance. Dialing a v2-only server with WireF32 fails with
	//     a descriptive version error — it cannot produce the frames
	//     this client asked for.
	//   - WireQuant — protocol v4: quantised delta-encoded replay
	//     frames, the dialect built for QuantizedOutputs suites
	//     (inputs still travel as exact float64 bits, so evaluation is
	//     untouched). Combined with F32 the session evaluates on the
	//     server's float32 fleet when it has one; otherwise the
	//     float64 clones answer and the v4 verdicts equal the
	//     bit-exact path's QuantizedOutputs verdicts. Dialing a pre-v4
	//     server with WireQuant fails with a descriptive version
	//     error.
	//   - WireAuto (the zero value) — defer to the deprecated
	//     F32/Quant aliases below, landing on WireGob when they are
	//     unset too.
	Wire Wire
	// F32 requests WireF32 when Wire is WireAuto. On a WireQuant
	// session it keeps its second, orthogonal meaning: evaluate on the
	// server's float32 fleet (when it has one) while the frames stay
	// quantised.
	//
	// Deprecated: set Wire: WireF32 instead; as a dialect request this
	// boolean is the pre-enum spelling and is honoured as an alias.
	F32 bool
	// Quant requests WireQuant when Wire is WireAuto.
	//
	// Deprecated: set Wire: WireQuant instead; this boolean is the
	// pre-enum spelling and is honoured as an alias.
	Quant bool
	// Decimals is the fixed-point precision plain Query/QueryBatch
	// calls use on a v4 session (suite replay passes the suite's own
	// precision through QueryQuant instead). 0 means 6, the
	// BuildSuite default.
	Decimals int
	// CacheFrames/CacheBytes bound the client replay-frame registry on
	// a v5 session (0 ⇒ the compiled v4 defaults, 256 frames / 8 MiB).
	// On a v4 session they are ignored: that dialect's cache must stay
	// in compiled-in lockstep with the server, whereas a v5 bound
	// mismatch between the ends self-heals via NeedFrame.
	CacheFrames int
	CacheBytes  int
}

func (o DialOptions) withDefaults() DialOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 60 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.Decimals == 0 {
		o.Decimals = 6
	}
	return o
}

// resolveWire is the one place the deprecated F32/Quant aliases fold
// into the Wire enum. An explicit Wire wins; otherwise Quant outranks
// F32 (their legacy combination meant "quant dialect, float32
// evaluation"), and nothing set means the v2 default.
func (o DialOptions) resolveWire() Wire {
	if o.Wire != WireAuto {
		return o.Wire
	}
	if o.Quant {
		return WireQuant
	}
	if o.F32 {
		return WireF32
	}
	return WireGob
}

// RemoteIP is the user-side client of a served IP. It implements
// BatchIP, and is safe for concurrent use by any number of goroutines:
// requests pipeline over the single connection — each caller registers
// its request ID, sends, and parks until the shared receive loop
// delivers the matching response — so N concurrent Query/QueryBatch
// calls cost one connection, not N.
type RemoteIP struct {
	conn    net.Conn
	opts    DialOptions
	version byte // negotiated protocol version of this session

	sendMu sync.Mutex // serialises request encoding on the shared stream
	enc    *gob.Encoder

	// v4 replay-frame registry (guarded by sendMu, like the encoder it
	// feeds): which frames the server's session cache still holds, so a
	// repeated frame is sent as a back-reference. v4pending overlays it
	// on v5 sessions with the probe/uploads still in flight — a key is
	// only back-referenceable once its upload resolves. See wirev4.go.
	v4seq       uint64
	v4known     map[string]uint64
	v4order     []v4sent
	v4bytes     int
	v4pending   map[string]*v4upload
	cacheFrames int // registry bounds: compiled defaults on v4, DialOptions on v5
	cacheBytes  int

	counts *countingConn // byte instrumentation over the raw connection

	mu       sync.Mutex
	nextID   uint64
	pending  map[uint64]chan responseV2
	pendingQ map[uint64]chan responseV4 // v4 sessions' outstanding calls
	err      error                      // sticky transport failure; set once, fails everything after

	wake      chan struct{} // cap 1: receive loop nudge, a send may be pending
	closed    chan struct{}
	closeOnce sync.Once
}

// Dial connects to a served IP at addr with default DialOptions.
func Dial(addr string) (*RemoteIP, error) { return DialWith(addr, DialOptions{}) }

// DialWith connects to a served IP at addr and performs the protocol
// handshake under the given bounds.
func DialWith(addr string, opts DialOptions) (*RemoteIP, error) {
	opts = opts.withDefaults()
	// The hello carries the version this client wants: v3 only when
	// float32 frames were asked for, v5 only for the quantised dialect,
	// so a plain client keeps speaking v2 with servers of any age. (An
	// older server answering a newer hello echoes its own version and
	// hangs up — it cannot know the newer framing — so requesting one
	// is a commitment, reported below as a descriptive error. The one
	// exception: a v4 echo to a quant hello is accepted, because v5 is
	// v4 framing plus the store capability — the session downgrades to
	// the per-connection v4 path bit-identically to a pre-v5 client.)
	wire := opts.resolveWire()
	want := byte(protocolV2)
	switch wire {
	case WireQuant:
		want = protocolV5
	case WireF32:
		want = protocolV3
	}
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("validate: dial IP: %w", err)
	}
	conn.SetDeadline(time.Now().Add(opts.DialTimeout))
	if _, err := conn.Write(preambleV(want)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("validate: dial IP: send handshake: %w", err)
	}
	var hello [5]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf(
			"validate: dial IP: no handshake reply (%v) — the server closed or stayed silent during the version handshake, as a pre-v2 server that expects bare gob requests would", err)
	}
	if !bytes.Equal(hello[:4], protocolMagic[:]) {
		conn.Close()
		return nil, fmt.Errorf("validate: dial IP: %s is not a dnnval IP endpoint (bad magic %q)", addr, hello[:4])
	}
	version := hello[4]
	if version != want && !(wire == WireQuant && version == protocolV4) {
		conn.Close()
		if wire == WireQuant && version < protocolV4 {
			return nil, fmt.Errorf(
				"validate: dial IP: protocol version mismatch: server speaks v%d but quantised frames need v%d — retry without the quant wire, or upgrade the server", version, protocolV4)
		}
		if wire == WireF32 && version == protocolV2 {
			return nil, fmt.Errorf(
				"validate: dial IP: protocol version mismatch: server speaks v%d but float32 frames need v%d — retry without F32, or upgrade the server", version, protocolV3)
		}
		return nil, fmt.Errorf("validate: dial IP: protocol version mismatch: server speaks v%d, this client v%d", version, want)
	}
	conn.SetDeadline(time.Time{})
	counts := &countingConn{Conn: conn}
	counts.wrote.Add(5) // the hello this side already sent
	counts.read.Add(5)  // and the reply it already read
	// The registry bounds: a v4 session pins the compiled defaults (its
	// cache must mirror the server's in lockstep); a v5 session takes
	// the configured bounds, any mismatch self-healing via NeedFrame.
	cacheFrames, cacheBytes := v4CacheFrames, v4CacheBytes
	if version >= protocolV5 {
		cacheFrames, cacheBytes = cacheBoundsOrDefault(opts.CacheFrames, opts.CacheBytes)
	}
	r := &RemoteIP{
		conn:        counts,
		opts:        opts,
		version:     version,
		counts:      counts,
		enc:         gob.NewEncoder(counts),
		v4known:     make(map[string]uint64),
		v4pending:   make(map[string]*v4upload),
		cacheFrames: cacheFrames,
		cacheBytes:  cacheBytes,
		pending:     make(map[uint64]chan responseV2),
		pendingQ:    make(map[uint64]chan responseV4),
		wake:        make(chan struct{}, 1),
		closed:      make(chan struct{}),
	}
	go r.recvLoop()
	return r, nil
}

// Query implements IP over the wire.
func (r *RemoteIP) Query(x *tensor.Tensor) (*tensor.Tensor, error) {
	out, err := r.QueryBatch([]*tensor.Tensor{x})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// QueryBatch implements BatchIP: one wire exchange answers all inputs.
// On a v2 session each output is bit-identical to a single Query of
// that input; on a v3 session inputs and outputs are float32 frames, so
// outputs match a single Query to float32 rounding. On a v4 session the
// outputs are dequantised from DialOptions.Decimals fixed-point wire
// frames — suite replay should go through QueryQuant instead, which
// never dequantises.
func (r *RemoteIP) QueryBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(xs) == 0 {
		return nil, &QueryError{Msg: "validate: empty query batch"}
	}
	if r.version >= protocolV4 {
		frames, shapes, err := r.queryQuant(xs, nil, r.opts.Decimals)
		if err != nil {
			return nil, err
		}
		scale, err := quant.Scale(r.opts.Decimals)
		if err != nil {
			return nil, &QueryError{Msg: err.Error()}
		}
		out := make([]*tensor.Tensor, len(frames))
		for i, f := range frames {
			data := make([]float64, len(f))
			for j, v := range f {
				data[j] = v.Value(scale)
			}
			out[i] = tensor.FromSlice(data, shapes[i]...)
		}
		return out, nil
	}
	r.mu.Lock()
	if r.err != nil {
		err := r.err
		r.mu.Unlock()
		return nil, err
	}
	r.nextID++
	id := r.nextID
	ch := make(chan responseV2, 1)
	r.pending[id] = ch
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}

	var req any
	if r.version == protocolV3 {
		v3 := requestV3{ID: id, Inputs: make([]wireTensor32, len(xs))}
		for i, x := range xs {
			v3.Inputs[i] = toWire32(x)
		}
		req = v3
	} else {
		v2 := requestV2{ID: id, Inputs: make([]wireTensor, len(xs))}
		for i, x := range xs {
			v2.Inputs[i] = toWire(x)
		}
		req = v2
	}
	r.sendMu.Lock()
	r.conn.SetWriteDeadline(time.Now().Add(r.opts.WriteTimeout))
	err := r.enc.Encode(req)
	r.sendMu.Unlock()
	if err != nil {
		r.fail(fmt.Errorf("validate: send query: %w", err))
	}

	resp, ok := <-ch
	if !ok {
		r.mu.Lock()
		err := r.err
		r.mu.Unlock()
		return nil, err
	}
	if resp.Err != "" {
		return nil, &QueryError{Msg: resp.Err}
	}
	if len(resp.Outputs) != len(xs) {
		// A count mismatch is a replica protocol violation, not a bad
		// query: plain error, so sharded callers mark the replica down
		// and fail over instead of surfacing it as a query rejection.
		return nil, fmt.Errorf("validate: replica protocol violation: batch answered %d outputs for %d queries", len(resp.Outputs), len(xs))
	}
	out := make([]*tensor.Tensor, len(resp.Outputs))
	for i, wt := range resp.Outputs {
		t, err := fromWire(wt)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// recvLoop is the single reader of the connection: it sleeps while no
// requests are outstanding, then decodes responses under the read
// deadline and hands each to the caller that registered its ID.
func (r *RemoteIP) recvLoop() {
	dec := gob.NewDecoder(r.conn)
	for {
		select {
		case <-r.closed:
			r.fail(net.ErrClosed)
			return
		case <-r.wake:
		}
		for {
			r.mu.Lock()
			n, err := len(r.pending)+len(r.pendingQ), r.err
			r.mu.Unlock()
			if err != nil {
				return
			}
			if n == 0 {
				break
			}
			r.conn.SetReadDeadline(time.Now().Add(r.opts.ReadTimeout))
			if r.version >= protocolV4 {
				// v4 responses stay in wire form — the caller that holds
				// the reference frames decodes them, so routing here is
				// pure dispatch by ID.
				var r4 responseV4
				if derr := dec.Decode(&r4); derr != nil {
					var nerr net.Error
					if errors.As(derr, &nerr) && nerr.Timeout() {
						derr = fmt.Errorf("no response within %v — server hung or unreachable: %w", r.opts.ReadTimeout, derr)
					}
					r.fail(fmt.Errorf("validate: receive response: %w", derr))
					return
				}
				r.mu.Lock()
				ch, ok := r.pendingQ[r4.ID]
				delete(r.pendingQ, r4.ID)
				r.mu.Unlock()
				if !ok {
					r.fail(fmt.Errorf("validate: receive response: unsolicited response id %d — stream out of sync", r4.ID))
					return
				}
				ch <- r4
				continue
			}
			// Decode the session dialect; a v3 response is widened to the
			// v2 in-memory shape here so callers handle one form. The
			// widening float32→float64 is exact, so it loses nothing the
			// wire had.
			var resp responseV2
			var derr error
			if r.version == protocolV3 {
				var r3 responseV3
				if derr = dec.Decode(&r3); derr == nil {
					resp = responseV2{ID: r3.ID, Err: r3.Err, Outputs: make([]wireTensor, len(r3.Outputs))}
					for i, wt := range r3.Outputs {
						d := make([]float64, len(wt.Data))
						for j, v := range wt.Data {
							d[j] = float64(v)
						}
						resp.Outputs[i] = wireTensor{Shape: wt.Shape, Data: d}
					}
				}
			} else {
				derr = dec.Decode(&resp)
			}
			if derr != nil {
				var nerr net.Error
				if errors.As(derr, &nerr) && nerr.Timeout() {
					derr = fmt.Errorf("no response within %v — server hung or unreachable: %w", r.opts.ReadTimeout, derr)
				}
				r.fail(fmt.Errorf("validate: receive response: %w", derr))
				return
			}
			r.mu.Lock()
			ch, ok := r.pending[resp.ID]
			delete(r.pending, resp.ID)
			r.mu.Unlock()
			if !ok {
				r.fail(fmt.Errorf("validate: receive response: unsolicited response id %d — stream out of sync", resp.ID))
				return
			}
			ch <- resp
		}
	}
}

// fail records the first transport error, fails every outstanding call,
// and poisons the client: all later calls return the same error. The
// connection is closed so both loops unwind.
func (r *RemoteIP) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
		for id, ch := range r.pending { //detlint:allow maporder(failure broadcast: every pending call is closed with the same poisoned error; order unobservable)
			close(ch)
			delete(r.pending, id)
		}
		for id, ch := range r.pendingQ { //detlint:allow maporder(failure broadcast: every pending queued call is closed with the same poisoned error; order unobservable)
			close(ch)
			delete(r.pendingQ, id)
		}
	}
	r.mu.Unlock()
	r.conn.Close()
}

// Close closes the connection; outstanding calls fail. Safe to call
// more than once and concurrently with queries.
func (r *RemoteIP) Close() error {
	r.closeOnce.Do(func() {
		close(r.closed)
		r.fail(fmt.Errorf("validate: client closed: %w", net.ErrClosed))
	})
	return nil
}
