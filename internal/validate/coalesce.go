package validate

import (
	"fmt"
	"sync"
	"time"
)

// Cross-connection request coalescing. A fleet serving many small
// clients sees a stream of single-query requests on different
// connections; each alone evaluates as one per-sample forward pass,
// leaving the batched engine — whose per-sample bit-identity the suite
// machinery already guarantees — idle. When ServerOptions.CoalesceWindow
// is set, single-input requests of the same input shape are gathered
// across connections for up to the window (or until CoalesceBatch
// queries) into one ForwardBatch on a single clone, and the replies fan
// back out per connection in each dialect's own framing.
//
// Invisibility is by construction: ForwardBatch output sample i is
// bit-identical to a per-sample Forward of input i (the PR 2/3
// contract the replay tests pin), and a query's failure mode depends
// only on its shape — the very thing a coalesced batch is keyed by —
// so members of one batch succeed or fail exactly as they would alone.
// Verdicts are therefore identical with coalescing on or off, on every
// dialect, which the coalescing grid test asserts over real TCP.

// defaultCoalesceBatch caps one coalesced batch when
// ServerOptions.CoalesceBatch is unset.
const defaultCoalesceBatch = 32

// coalescer gathers same-shape values submitted by concurrent handler
// goroutines into batches for a single run call. T is the tensor type
// of one fleet (*tensor.Tensor or *tensor.T32).
type coalescer[T any] struct {
	window   time.Duration
	maxBatch int
	run      func([]T) ([]T, error)

	mu      sync.Mutex
	pending map[string]*coalesceBatch[T]
}

type coalesceBatch[T any] struct {
	xs    []T
	timer *time.Timer
	done  chan struct{} // closed once outs/err are set
	outs  []T
	err   error
}

func newCoalescer[T any](window time.Duration, maxBatch int, run func([]T) ([]T, error)) *coalescer[T] {
	return &coalescer[T]{
		window:   window,
		maxBatch: maxBatch,
		run:      run,
		pending:  make(map[string]*coalesceBatch[T]),
	}
}

// submit joins (or opens) the gathering batch for the given shape key,
// parks until the batch runs, and returns this submission's own
// output. All members of a batch share one evaluation — and, on
// failure, one error, which by the shape-keying argument above is the
// error each would have gotten alone.
func (c *coalescer[T]) submit(shape string, x T) (T, error) {
	c.mu.Lock()
	b := c.pending[shape]
	if b == nil {
		b = &coalesceBatch[T]{done: make(chan struct{})}
		c.pending[shape] = b
		bb := b
		b.timer = time.AfterFunc(c.window, func() { c.flush(shape, bb) }) //detlint:allow walltime(coalesce window timer: batching latency only; replay outputs are bit-identical regardless of how requests group)
	}
	idx := len(b.xs)
	b.xs = append(b.xs, x)
	full := len(b.xs) >= c.maxBatch
	if full {
		// The batch is at capacity: claim it here so no later submit
		// joins, and run it without waiting out the window.
		delete(c.pending, shape)
		b.timer.Stop()
	}
	c.mu.Unlock()
	if full {
		c.exec(b)
	}
	<-b.done
	if b.err != nil {
		var zero T
		return zero, b.err
	}
	return b.outs[idx], nil
}

// flush is the window timer's path: claim the batch if no full-batch
// submit already did, then run it.
func (c *coalescer[T]) flush(shape string, b *coalesceBatch[T]) {
	c.mu.Lock()
	claimed := c.pending[shape] == b
	if claimed {
		delete(c.pending, shape)
	}
	c.mu.Unlock()
	if claimed {
		c.exec(b)
	}
}

// exec runs a claimed batch exactly once and releases its members.
// b.xs is stable here: appends only happen while the batch is in the
// pending map, and claiming removed it under the same mutex.
func (c *coalescer[T]) exec(b *coalesceBatch[T]) {
	outs, err := c.run(b.xs)
	if err == nil && len(outs) != len(b.xs) {
		err = fmt.Errorf("validate: coalesced batch answered %d outputs for %d queries", len(outs), len(b.xs))
	}
	b.outs, b.err = outs, err
	close(b.done)
}

// shapeString is the coalescing key: queries batch together only when
// their input shapes are identical, which is exactly the precondition
// of the batched forward path.
func shapeString(shape []int) string {
	return fmt.Sprint(shape)
}

// answerV2Coalesced serves a single-input v2 request through the
// float64 coalescer. Only called with len(req.Inputs) == 1.
func (s *Server) answerV2Coalesced(req requestV2) responseV2 {
	resp := responseV2{ID: req.ID}
	x, err := fromWire(req.Inputs[0])
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	out, err := s.coal64.submit(shapeString(x.Shape()), x)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Outputs = []wireTensor{toWire(out)}
	return resp
}

// answerV3Coalesced serves a single-input v3 request through the
// float32 coalescer (the server hosts an f32 fleet).
func (s *Server) answerV3Coalesced(req requestV3) responseV3 {
	resp := responseV3{ID: req.ID}
	x, err := fromWire32T32(req.Inputs[0])
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	out, err := s.coal32.submit(shapeString(x.Shape()), x)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Outputs = []wireTensor32{{Shape: append([]int(nil), out.Shape()...), Data: out.Data()}}
	return resp
}

// answerV3On64Coalesced serves a single-input v3 request through the
// float64 coalescer (no f32 fleet: inputs widen, frames stay float32).
func (s *Server) answerV3On64Coalesced(req requestV3) responseV3 {
	resp := responseV3{ID: req.ID}
	x, err := fromWire32(req.Inputs[0])
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	out, err := s.coal64.submit(shapeString(x.Shape()), x)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Outputs = []wireTensor32{toWire32(out)}
	return resp
}

// answerV4Coalesced serves a single-input v4/v5 frame through the
// float64 coalescer, quantising the output exactly as answerV4 would.
func (s *Server) answerV4Coalesced(sf *storedFrameV4, id uint64) responseV4 {
	resp := responseV4{ID: id}
	x := sf.inputs[0]
	out, err := s.coal64.submit(shapeString(x.Shape()), x)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Outputs = encodeQuantOutputs(1,
		func(int) []int { return out.Shape() },
		func(_, j int) float64 { return out.Data()[j] },
		func(int) int { return out.Size() }, sf)
	return resp
}

// answerV4Coalesced32 is answerV4Coalesced on the float32 fleet.
func (s *Server) answerV4Coalesced32(sf *storedFrameV4, id uint64) responseV4 {
	resp := responseV4{ID: id}
	out, err := s.coal32.submit(shapeString(sf.inputs[0].Shape()), sf.inputs[0].F32())
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Outputs = encodeQuantOutputs(1,
		func(int) []int { return out.Shape() },
		func(_, j int) float64 { return float64(out.Data()[j]) },
		func(int) int { return out.Size() }, sf)
	return resp
}
