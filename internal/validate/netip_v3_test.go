package validate

import (
	"encoding/gob"
	"io"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/tensor"
)

// Protocol-v3 tests: float32 frames, the f32 serving fleet, the
// Tolerance replay semantics, and the v2↔v3 handshake matrix. The
// matrix requirement: every cross-version pairing either negotiates a
// working session or fails with a descriptive error — never a gob
// decode failure mid-stream.

// startServerF32 serves the golden network with a float32 fleet.
func startServerF32(t *testing.T) (*Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWith(l, goldenNet(), ServerOptions{Workers: 2, F32: true})
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr()
}

// f32Tolerance comfortably bounds float32 rounding through the golden
// network's three layers without admitting real faults (the smallest
// attack perturbations move outputs by orders of magnitude more).
const f32Tolerance = 1e-4

// TestV3ReplayWithinTolerance: the acceptance path — float32 replay
// over loopback TCP passes a reference suite under the configured
// tolerance, at single-query, batched and concurrent settings.
func TestV3ReplayWithinTolerance(t *testing.T) {
	_, addr := startServerF32(t)
	suite := goldenSuite(t, 8, ExactOutputs)
	ip, err := DialWith(addr, DialOptions{F32: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()

	for _, opts := range []ValidateOptions{
		{Tolerance: f32Tolerance},
		{Tolerance: f32Tolerance, Batch: 3},
		{Tolerance: f32Tolerance, Batch: 2, Concurrency: 3},
	} {
		rep, err := suite.ValidateWith(ip, opts)
		if err != nil {
			t.Fatalf("f32 replay with %+v: %v", opts, err)
		}
		if !rep.Passed || rep.Total != suite.Len() {
			t.Fatalf("f32 replay with %+v: %+v", opts, rep)
		}
	}
	if det, err := suite.DetectsWith(ip, ValidateOptions{Tolerance: f32Tolerance, Batch: 4}); err != nil || det {
		t.Fatalf("DetectsWith on an intact f32 IP = (%v, %v), want (false, nil)", det, err)
	}
}

// TestV3ReplayFailsBitExact: the same f32 replay without a tolerance
// must fail — float32 outputs cannot match float64 references bitwise,
// and silently passing would mean the comparison ran at the wrong
// precision.
func TestV3ReplayFailsBitExact(t *testing.T) {
	_, addr := startServerF32(t)
	suite := goldenSuite(t, 6, ExactOutputs)
	ip, err := DialWith(addr, DialOptions{F32: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	rep, err := suite.ValidateWith(ip, ValidateOptions{Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("bit-exact replay of float32 outputs passed; tolerance must be an explicit choice")
	}
}

// TestV3OutputsCloseToF64: v3 outputs must agree with the local float64
// reference within float32 rounding, both on an f32 fleet and on a
// float64 server that only speaks float32 frames.
func TestV3OutputsCloseToF64(t *testing.T) {
	for _, f32Fleet := range []bool{true, false} {
		var addr string
		if f32Fleet {
			_, addr = startServerF32(t)
		} else {
			_, addr = startServer(t) // float64 evaluation, float32 frames only
		}
		ip, err := DialWith(addr, DialOptions{F32: true})
		if err != nil {
			t.Fatalf("fleet=%v: %v", f32Fleet, err)
		}
		xs := testInputs(5, 71)
		local := LocalIP{Net: goldenNet()}
		got, err := ip.QueryBatch(xs)
		if err != nil {
			ip.Close()
			t.Fatalf("fleet=%v: %v", f32Fleet, err)
		}
		for i, x := range xs {
			want, err := local.Query(x)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want.Data() {
				if d := math.Abs(got[i].Data()[j] - want.Data()[j]); d > f32Tolerance {
					t.Fatalf("fleet=%v: output %d logit %d off by %g", f32Fleet, i, j, d)
				}
			}
		}
		ip.Close()
	}
}

// TestV2ClientAgainstV3Server: an old v2 client (simulated with raw v2
// frames) must negotiate a v2 session against the new server and get
// float64 answers — v2 peers keep working unchanged.
func TestV2ClientAgainstV3Server(t *testing.T) {
	_, addr := startServerF32(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	if _, err := conn.Write(preambleV(protocolV2)); err != nil {
		t.Fatal(err)
	}
	var hello [5]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		t.Fatalf("no handshake reply to a v2 hello: %v", err)
	}
	if hello[4] != protocolV2 {
		t.Fatalf("server negotiated v%d with a v2 client, want v2", hello[4])
	}

	x := testInputs(1, 61)[0]
	if err := gob.NewEncoder(conn).Encode(requestV2{ID: 1, Inputs: []wireTensor{toWire(x)}}); err != nil {
		t.Fatal(err)
	}
	var resp responseV2
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("v2 session against the v3 server broke mid-stream: %v", err)
	}
	if resp.Err != "" || len(resp.Outputs) != 1 {
		t.Fatalf("v2 response = %+v", resp)
	}
	want, _ := LocalIP{Net: goldenNet()}.Query(x)
	got, err := fromWire(resp.Outputs[0])
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Data() {
		if got.Data()[j] != want.Data()[j] {
			t.Fatal("v2 session on a v3 server lost float64 bit-exactness")
		}
	}
}

// TestF32ClientAgainstV2Server: a client requesting float32 frames from
// a server that only speaks v2 (simulated) must fail the dial with a
// descriptive version error, not a decode failure.
func TestF32ClientAgainstV2Server(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var buf [5]byte
		io.ReadFull(conn, buf[:])
		// A v2-era server echoes its own version and, seeing an unknown
		// client version, ends the connection.
		conn.Write(preambleV(protocolV2))
	}()
	_, err = DialWith(l.Addr().String(), DialOptions{F32: true})
	if err == nil {
		t.Fatal("F32 dial to a v2-only server succeeded")
	}
	if !strings.Contains(err.Error(), "float32 frames need v3") {
		t.Fatalf("F32-vs-v2 dial error = %v, want a float32/v3 explanation", err)
	}
}

// TestV1ClientAgainstV3Server: the pre-handshake v1 dialect still gets
// its descriptive v1-shaped error from the new server.
func TestV1ClientAgainstV3Server(t *testing.T) {
	_, addr := startServerF32(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	x := testInputs(1, 41)[0]
	if err := gob.NewEncoder(conn).Encode(queryRequest{Input: toWire(x)}); err != nil {
		t.Fatal(err)
	}
	var resp queryResponse
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("v1 client could not decode the v3 server's reply: %v", err)
	}
	if !strings.Contains(resp.Err, "protocol version mismatch") {
		t.Fatalf("v1 client error = %q, want a version mismatch explanation", resp.Err)
	}
}

// TestFutureClientAgainstV3Server: a client advertising a future
// version lands on a v3 session when v3 is the server's ceiling — the
// server negotiates down instead of hanging up. (The ceiling comes
// from ServerOptions.MaxVersion, which is exactly how a pre-v4 build
// behaves; the v4-capable default is covered by the handshake matrix.)
func TestFutureClientAgainstV3Server(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWith(l, goldenNet(), ServerOptions{Workers: 2, F32: true, MaxVersion: protocolV3})
	t.Cleanup(func() { srv.Close() })
	addr := srv.Addr()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write(preambleV(9)); err != nil {
		t.Fatal(err)
	}
	var hello [5]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		t.Fatalf("no handshake reply to a v9 hello: %v", err)
	}
	if hello[4] != protocolV3 {
		t.Fatalf("server negotiated v%d with a v9 client, want v%d", hello[4], protocolV3)
	}
	// The negotiated session really is v3: a v3 exchange round-trips.
	x := testInputs(1, 81)[0]
	if err := gob.NewEncoder(conn).Encode(requestV3{ID: 7, Inputs: []wireTensor32{toWire32(x)}}); err != nil {
		t.Fatal(err)
	}
	var resp responseV3
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("negotiated v3 session broke: %v", err)
	}
	if resp.ID != 7 || resp.Err != "" || len(resp.Outputs) != 1 {
		t.Fatalf("v3 response = %+v", resp)
	}
}

// TestV3SyncParamsRequantisesFleet: a hot model update on an -f32
// server must re-quantise the float32 fleet — later v3 queries see the
// new parameters.
func TestV3SyncParamsRequantisesFleet(t *testing.T) {
	srv, addr := startServerF32(t)
	ip, err := DialWith(addr, DialOptions{F32: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	x := testInputs(1, 17)
	before, err := ip.QueryBatch(x)
	if err != nil {
		t.Fatal(err)
	}

	updated := goldenNet().Clone()
	updated.SetParamAt(0, updated.ParamAt(0)+5)
	srv.SyncParamsFrom(updated)

	after, err := ip.QueryBatch(x)
	if err != nil {
		t.Fatal(err)
	}
	want := updated.ConvertF32().Forward(x[0].F32()).F64()
	same := true
	for j := range before[0].Data() {
		if after[0].Data()[j] != before[0].Data()[j] {
			same = false
		}
	}
	if same {
		t.Fatal("f32 fleet served stale parameters after SyncParamsFrom")
	}
	for j := range want.Data() {
		if after[0].Data()[j] != want.Data()[j] {
			t.Fatalf("f32 fleet logit %d = %v, want requantised %v", j, after[0].Data()[j], want.Data()[j])
		}
	}
}

// TestPooledF32IPMatchesRemote: the in-process float32 pooled IP is the
// same computation as a v3 session on an f32 fleet — identical float32
// kernel sequence, so identical widened outputs.
func TestPooledF32IPMatchesRemote(t *testing.T) {
	_, addr := startServerF32(t)
	remote, err := DialWith(addr, DialOptions{F32: true})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	local := NewPooledF32IP(goldenNet(), 2)

	xs := testInputs(4, 23)
	got, err := remote.QueryBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.QueryBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i].Data() {
			if got[i].Data()[j] != want[i].Data()[j] {
				t.Fatalf("remote f32 output %d differs from local f32 at %d", i, j)
			}
		}
	}

	suite := goldenSuite(t, 5, ExactOutputs)
	rep, err := suite.ValidateWith(local, ValidateOptions{Tolerance: f32Tolerance, Batch: 2, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("local f32 replay under tolerance failed: %+v", rep)
	}
}

// TestToleranceSemantics: Tolerance must accept within-epsilon
// deviations and still flag real faults, in both value modes.
func TestToleranceSemantics(t *testing.T) {
	suite := goldenSuite(t, 4, ExactOutputs)
	// An IP whose outputs are nudged by less than the tolerance.
	nudged := nudgedIP{base: LocalIP{Net: goldenNet()}, delta: 1e-6}
	rep, err := suite.ValidateWith(nudged, ValidateOptions{Tolerance: 1e-5})
	if err != nil || !rep.Passed {
		t.Fatalf("within-tolerance nudge: rep=%+v err=%v", rep, err)
	}
	rep, err = suite.ValidateWith(nudgedIP{base: nudged.base, delta: 1e-3}, ValidateOptions{Tolerance: 1e-5})
	if err != nil || rep.Passed {
		t.Fatalf("beyond-tolerance nudge passed: rep=%+v err=%v", rep, err)
	}

	// QuantizedOutputs: a nudge across a rounding boundary is accepted
	// when within tolerance, and the exact quantised path is untouched
	// when Tolerance is zero.
	qsuite := goldenSuite(t, 4, QuantizedOutputs)
	qsuite.Decimals = 8 // fine enough that a 1e-6 nudge crosses boundaries
	rep, err = qsuite.ValidateWith(nudged, ValidateOptions{Tolerance: 1e-5})
	if err != nil || !rep.Passed {
		t.Fatalf("quantized within-tolerance nudge: rep=%+v err=%v", rep, err)
	}
	rep, err = qsuite.ValidateWith(nudged, ValidateOptions{})
	if err != nil || rep.Passed {
		t.Fatalf("quantized zero-tolerance nudge passed: rep=%+v err=%v", rep, err)
	}
}

// nudgedIP shifts every output value by a constant delta.
type nudgedIP struct {
	base  LocalIP
	delta float64
}

func (ip nudgedIP) Query(x *tensor.Tensor) (*tensor.Tensor, error) {
	out, err := ip.base.Query(x)
	if err != nil {
		return nil, err
	}
	for i := range out.Data() {
		out.Data()[i] += ip.delta
	}
	return out, nil
}
