package validate

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/nn"
)

// Cross-connection coalescing tests: the optimisation must be
// invisible. Verdicts with a coalescing window on are bit-identical to
// verdicts with it off, on every dialect (exact v2, float32 v3,
// quantised v4 and v5), from many concurrent single-query connections
// over real TCP, on intact and attacked networks.

// coalesceWindow is long enough that concurrent single-query clients
// genuinely land in shared batches on a loaded CI box, short enough
// that the grid stays fast.
const coalesceWindow = 2 * time.Millisecond

// startServerCoalesce serves target with the given window (0 = off)
// at the given negotiation ceiling, with a private frame store.
func startServerCoalesce(t *testing.T, target *nn.Network, maxVersion byte, window time.Duration) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWith(l, target, ServerOptions{
		Workers: 2, F32: true, MaxVersion: maxVersion,
		FrameStore:     NewFrameStore(0, 0),
		CoalesceWindow: window, CoalesceBatch: 4,
	})
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

// TestCoalescingVerdictIdentityGrid: for each dialect and each target
// (intact, attacked), N concurrent connections each replay the suite
// with Batch 1 — all traffic is single-query, the coalescable shape —
// against a coalescing server and a plain one. Every report must equal
// the plain server's report, which itself must equal the local verdict.
func TestCoalescingVerdictIdentityGrid(t *testing.T) {
	const clients = 4
	dialects := []struct {
		name string
		mode CompareMode
		maxV byte
		dial DialOptions
	}{
		{"v2-exact", ExactOutputs, protocolV2, DialOptions{}},
		{"v3-f32", ExactOutputs, protocolV3, DialOptions{F32: true}},
		{"v4-quant", QuantizedOutputs, protocolV4, DialOptions{Quant: true}},
		{"v5-quant", QuantizedOutputs, protocolVersion, DialOptions{Quant: true}},
	}
	for _, d := range dialects {
		suite := goldenSuite(t, 8, d.mode)
		tol := 0.0
		if d.dial.F32 {
			tol = 1e-4 // float32 fleet vs float64 references
		}
		for _, intact := range []bool{true, false} {
			target := goldenNet()
			if !intact {
				target = perturbedNet(t)
			}
			name := fmt.Sprintf("%s/intact=%v", d.name, intact)
			opts := ValidateOptions{Batch: 1, Tolerance: tol}

			// The reference verdict: same dialect, coalescing off.
			plainAddr := startServerCoalesce(t, target, d.maxV, 0)
			plainIP, err := DialWith(plainAddr, d.dial)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want, err := suite.ValidateWith(plainIP, opts)
			plainIP.Close()
			if err != nil {
				t.Fatalf("%s: plain replay: %v", name, err)
			}

			// N clients against one coalescing server, concurrently, so
			// their single-query requests actually share batches.
			addr := startServerCoalesce(t, target, d.maxV, coalesceWindow)
			var wg sync.WaitGroup
			errs := make([]error, clients)
			got := make([]Report, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					ip, derr := DialWith(addr, d.dial)
					if derr != nil {
						errs[c] = derr
						return
					}
					defer ip.Close()
					for round := 0; round < 2; round++ {
						rep, verr := suite.ValidateWith(ip, opts)
						if verr != nil {
							errs[c] = verr
							return
						}
						got[c] = rep
						if rep != want {
							errs[c] = fmt.Errorf("round %d report %+v, plain report %+v", round, rep, want)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			for c, err := range errs {
				if err != nil {
					t.Fatalf("%s client %d: %v", name, c, err)
				}
			}
		}
	}
}

// TestCoalescerBatching: the generic coalescer's own contract — a full
// batch runs without waiting out the window, every member gets its own
// slot back in submission order, and a run error reaches all members.
func TestCoalescerBatching(t *testing.T) {
	var runs int
	var sizes []int
	var mu sync.Mutex
	c := newCoalescer[int](time.Hour, 3, func(xs []int) ([]int, error) {
		mu.Lock()
		runs++
		sizes = append(sizes, len(xs))
		mu.Unlock()
		out := make([]int, len(xs))
		for i, x := range xs {
			out[i] = x * 10
		}
		return out, nil
	})
	var wg sync.WaitGroup
	outs := make([]int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := c.submit("[4]", i)
			if err != nil {
				t.Error(err)
			}
			outs[i] = out
		}(i)
	}
	wg.Wait() // an hour-long window would hang here if full-batch flush broke
	for i, out := range outs {
		if out != i*10 {
			t.Fatalf("member %d got %d, want its own slot %d", i, out, i*10)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if runs != 1 || sizes[0] != 3 {
		t.Fatalf("3 submissions ran %d batches of sizes %v, want one batch of 3", runs, sizes)
	}
}

// TestCoalescerWindowFlush: a lone submission is released by the window
// timer, and distinct shapes never share a batch.
func TestCoalescerWindowFlush(t *testing.T) {
	var mu sync.Mutex
	var batches [][]string
	c := newCoalescer[string](coalesceWindow, 64, func(xs []string) ([]string, error) {
		mu.Lock()
		batches = append(batches, append([]string(nil), xs...))
		mu.Unlock()
		return xs, nil
	})
	var wg sync.WaitGroup
	for i, shape := range []string{"[2 3]", "[3 2]"} {
		wg.Add(1)
		go func(i int, shape string) {
			defer wg.Done()
			out, err := c.submit(shape, shape)
			if err != nil || out != shape {
				t.Errorf("shape %s: out=%q err=%v", shape, out, err)
			}
		}(i, shape)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 2 {
		t.Fatalf("two shapes coalesced into %d batches: %v", len(batches), batches)
	}
	for _, b := range batches {
		if len(b) != 1 {
			t.Fatalf("distinct shapes shared a batch: %v", batches)
		}
	}
}

// TestCoalescerErrorHomogeneity: when the run fails, every member of
// the batch observes the error.
func TestCoalescerErrorHomogeneity(t *testing.T) {
	c := newCoalescer[int](time.Hour, 2, func(xs []int) ([]int, error) {
		return nil, fmt.Errorf("fleet on fire")
	})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.submit("[1]", i); err == nil || err.Error() != "fleet on fire" {
				t.Errorf("member %d error = %v, want the shared run error", i, err)
			}
		}(i)
	}
	wg.Wait()
}
