package validate

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/tensor"
)

// The paper requires that "the shared functional tests X and the
// corresponding outputs Y are encrypted, thus their integrity can be
// ensured". This file implements the integrity half with HMAC-SHA256
// over the gob-encoded suite: the vendor seals with a key shared with
// the user out of band; tampering with the distributed artefact is
// detected at open time.

// wireSuite is the gob form of a Suite (tensors flattened to
// shape+data pairs).
type wireSuite struct {
	Version  int
	Name     string
	Mode     int
	Decimals int
	Inputs   []wireTensor
	Outputs  []wireTensor
}

type wireTensor struct {
	Shape []int
	Data  []float64
}

const sealVersion = 1

func toWire(t *tensor.Tensor) wireTensor {
	d := make([]float64, t.Size())
	copy(d, t.Data())
	return wireTensor{Shape: append([]int(nil), t.Shape()...), Data: d}
}

func fromWire(w wireTensor) (*tensor.Tensor, error) {
	n, err := shapeSize(w.Shape)
	if err != nil {
		return nil, err
	}
	if n != len(w.Data) {
		return nil, fmt.Errorf("validate: sealed tensor shape %v does not match %d values", w.Shape, len(w.Data))
	}
	return tensor.FromSlice(w.Data, w.Shape...), nil
}

// Seal writes the suite to w as: [8-byte payload length][gob payload]
// [32-byte HMAC-SHA256 of payload under key].
func (s *Suite) Seal(w io.Writer, key []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("validate: sealing key must not be empty")
	}
	ws := wireSuite{
		Version:  sealVersion,
		Name:     s.Name,
		Mode:     int(s.Mode),
		Decimals: s.Decimals,
	}
	for _, t := range s.Inputs {
		ws.Inputs = append(ws.Inputs, toWire(t))
	}
	for _, t := range s.Outputs {
		ws.Outputs = append(ws.Outputs, toWire(t))
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ws); err != nil {
		return fmt.Errorf("validate: encode suite: %w", err)
	}
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(payload.Len()))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return err
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(payload.Bytes())
	_, err := w.Write(mac.Sum(nil))
	return err
}

// OpenSuite reads a sealed suite, verifying its HMAC before decoding
// any content. A wrong key or a tampered payload fails.
func OpenSuite(r io.Reader, key []byte) (*Suite, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("validate: opening key must not be empty")
	}
	var lenBuf [8]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("validate: read length: %w", err)
	}
	n := binary.BigEndian.Uint64(lenBuf[:])
	const maxPayload = 1 << 30
	if n > maxPayload {
		return nil, fmt.Errorf("validate: sealed payload of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("validate: read payload: %w", err)
	}
	sig := make([]byte, sha256.Size)
	if _, err := io.ReadFull(r, sig); err != nil {
		return nil, fmt.Errorf("validate: read signature: %w", err)
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(payload)
	if !hmac.Equal(sig, mac.Sum(nil)) {
		return nil, fmt.Errorf("validate: HMAC verification failed: suite tampered or wrong key")
	}
	var ws wireSuite
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ws); err != nil {
		return nil, fmt.Errorf("validate: decode suite: %w", err)
	}
	if ws.Version != sealVersion {
		return nil, fmt.Errorf("validate: unsupported sealed-suite version %d", ws.Version)
	}
	if len(ws.Inputs) != len(ws.Outputs) {
		return nil, fmt.Errorf("validate: sealed suite has %d inputs but %d outputs", len(ws.Inputs), len(ws.Outputs))
	}
	s := &Suite{Name: ws.Name, Mode: CompareMode(ws.Mode), Decimals: ws.Decimals}
	for _, wt := range ws.Inputs {
		t, err := fromWire(wt)
		if err != nil {
			return nil, err
		}
		s.Inputs = append(s.Inputs, t)
	}
	for _, wt := range ws.Outputs {
		t, err := fromWire(wt)
		if err != nil {
			return nil, err
		}
		s.Outputs = append(s.Outputs, t)
	}
	// A quantised-mode suite is replayed in wire representation; encode
	// the reference frames once here at load time so every subsequent
	// replay ships them without re-quantising (Replay falls back to a
	// local encode if Decimals is changed after opening).
	s.buildQuantRefs()
	return s, nil
}
