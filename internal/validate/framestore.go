package validate

import (
	"math"
	"sync"
)

// FrameStore is the process-wide content-addressed half of the v5
// replay-frame exchange: resolved replay frames keyed by their content
// hash (frameKey), shared by every v5 session of every Server in the
// process. Validation traffic is the same sealed suite replayed over
// and over by many clients, so one suite's frames are stored once per
// fleet process and a re-dialling client (failover, restart, sentinel
// probe) re-establishes steady state with hash probes instead of
// re-paying the full first-replay upload.
//
// Safety against hostile hashes is by construction: the server only
// ever inserts under a key it computed itself from the received frame
// bytes, so a client-claimed hash can never bind foreign content. If
// two distinct frames ever present the same key (a SHA-256 collision,
// or a unit test forcing one), the insert detects the conflict by full
// content comparison, drops the entry and poisons the key — a
// conflicted key is a permanent miss, and a miss only costs the
// NeedFrame round trip that re-uploads the body. Wrong bytes are never
// served; verdict identity holds no matter what a client claims.
//
// Eviction is deterministic bounded FIFO in insertion order, the same
// discipline as the per-session cache (frames over the byte bound are
// never stored). A store miss is always recoverable (the v5 exchange
// re-uploads), so eviction is a bandwidth knob, not a correctness one.

// Default FrameStore bounds: a few sealed suites' worth of frames.
const (
	defaultStoreFrames = 1024
	defaultStoreBytes  = 32 << 20
)

// FrameStoreStats is an observability snapshot of a FrameStore.
type FrameStoreStats struct {
	Frames    int    // resolved frames currently held
	Bytes     int    // their frameCost sum
	Hits      uint64 // probe lookups answered from the store
	Misses    uint64 // probe lookups that needed a body upload
	Inserts   uint64 // bodies stored (deduplicated re-uploads excluded)
	Evictions uint64 // frames dropped by the FIFO bound
	Conflicts uint64 // colliding inserts detected; their keys are poisoned
}

// FrameStore is safe for concurrent use by any number of sessions.
type FrameStore struct {
	mu        sync.Mutex
	maxFrames int
	maxBytes  int
	frames    map[string]*storedFrameV4
	order     []string // insertion order, oldest first
	bytes     int
	// conflicted keys are poisoned: never stored, never served. The set
	// is bounded like the frame set (FIFO) so hostile collisions cannot
	// grow it without bound.
	conflicted    map[string]struct{}
	conflictOrder []string

	hits, misses, inserts, evictions, conflicts uint64
}

// NewFrameStore builds a store with the given bounds; zero or negative
// values take the defaults. Servers not handed an explicit store share
// one per-process instance (see ServerOptions.FrameStore).
func NewFrameStore(maxFrames, maxBytes int) *FrameStore {
	if maxFrames <= 0 {
		maxFrames = defaultStoreFrames
	}
	if maxBytes <= 0 {
		maxBytes = defaultStoreBytes
	}
	return &FrameStore{
		maxFrames:  maxFrames,
		maxBytes:   maxBytes,
		frames:     make(map[string]*storedFrameV4),
		conflicted: make(map[string]struct{}),
	}
}

// processFrameStore is the store every Server without an explicit
// ServerOptions.FrameStore (and without private bounds) shares — the
// "once per fleet process" steady state.
var processFrameStore = NewFrameStore(0, 0)

// Stats returns a consistent snapshot of the store counters.
func (st *FrameStore) Stats() FrameStoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return FrameStoreStats{
		Frames:    len(st.frames),
		Bytes:     st.bytes,
		Hits:      st.hits,
		Misses:    st.misses,
		Inserts:   st.inserts,
		Evictions: st.evictions,
		Conflicts: st.conflicts,
	}
}

// lookup serves a probe: the resolved frame stored under key, if any.
// Conflicted keys always miss.
func (st *FrameStore) lookup(key string) (*storedFrameV4, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sf, ok := st.frames[key]
	if ok {
		st.hits++
	} else {
		st.misses++
	}
	return sf, ok
}

// insert stores a resolved frame under its server-computed content
// key. A re-upload of identical content is a no-op; distinct content
// under an existing key is a collision — the key is poisoned and the
// stored entry dropped, so neither content is ever served under it.
func (st *FrameStore) insert(key string, sf *storedFrameV4) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, bad := st.conflicted[key]; bad {
		return
	}
	if old, ok := st.frames[key]; ok {
		if storedFramesEqual(old, sf) {
			return
		}
		st.conflicts++
		st.dropLocked(key)
		st.conflicted[key] = struct{}{}
		st.conflictOrder = append(st.conflictOrder, key)
		for len(st.conflictOrder) > st.maxFrames {
			gone := st.conflictOrder[0]
			st.conflictOrder = st.conflictOrder[1:]
			delete(st.conflicted, gone)
		}
		return
	}
	if sf.cost > st.maxBytes {
		return
	}
	st.frames[key] = sf
	st.order = append(st.order, key)
	st.bytes += sf.cost
	st.inserts++
	for len(st.order) > st.maxFrames || st.bytes > st.maxBytes {
		st.evictions++
		st.dropLocked(st.order[0])
	}
}

// dropLocked removes key from the frame set and its order slot. Caller
// holds st.mu; key must be present.
func (st *FrameStore) dropLocked(key string) {
	st.bytes -= st.frames[key].cost
	delete(st.frames, key)
	for i, k := range st.order {
		if k == key {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
}

// storedFramesEqual reports whether two resolved frames decode from
// byte-identical frameV4 content — the collision check. Float payloads
// compare by IEEE 754 bits (frames round-trip exact bits, and NaN must
// compare equal to itself here).
func storedFramesEqual(a, b *storedFrameV4) bool {
	if a.f32 != b.f32 || a.scale != b.scale || a.cost != b.cost {
		return false
	}
	if len(a.inputs) != len(b.inputs) || len(a.refs) != len(b.refs) {
		return false
	}
	for i, at := range a.inputs {
		bt := b.inputs[i]
		as, bs := at.Shape(), bt.Shape()
		if len(as) != len(bs) {
			return false
		}
		for j := range as {
			if as[j] != bs[j] {
				return false
			}
		}
		ad, bd := at.Data(), bt.Data()
		if len(ad) != len(bd) {
			return false
		}
		for j := range ad {
			if math.Float64bits(ad[j]) != math.Float64bits(bd[j]) {
				return false
			}
		}
	}
	for i, af := range a.refs {
		bf := b.refs[i]
		if len(af) != len(bf) {
			return false
		}
		for j := range af {
			if af[j].Raw != bf[j].Raw || af[j].Q != bf[j].Q ||
				math.Float64bits(af[j].F) != math.Float64bits(bf[j].F) {
				return false
			}
		}
	}
	return true
}
