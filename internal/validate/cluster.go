package validate

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// ShardedIP fans queries across N replicas of the same served IP — the
// production shape of the paper's validation scenario, where replay
// traffic from many users spreads over a fleet of identical endpoints.
// Replicas must serve the same parameters; since every replica's
// answers are bit-identical to any other's, routing is invisible to
// validation reports.
//
// Requests rotate round-robin across the healthy replicas. A replica
// whose exchange fails in transport is marked down and the request
// fails over to the remaining replicas; application-level rejections
// (QueryError — a malformed input fails identically everywhere) are
// returned directly without failover.
//
// Down is not forever: each down replica is re-probed half-open — once
// its backoff expires, a single in-flight request is risked on it
// (re-dialling a fresh connection when the fleet was built by
// DialShards), and success returns it to the rotation while failure
// doubles the backoff up to a cap. A restarted server therefore
// rejoins the fleet within one backoff interval, and a still-dead one
// costs at most one probing request per interval. ShardedIP is safe
// for concurrent use when its replicas are (RemoteIP and PooledIP are;
// a bare LocalIP is not); concurrent suite replay then shards
// naturally across the fleet.
type ShardedIP struct {
	next atomic.Uint64

	mu        sync.Mutex
	closed    bool
	replicas  []BatchIP
	addrs     []string // replica names in errors/metrics; dial addresses for DialShards fleets
	down      []bool
	probing   []bool
	nextProbe []time.Time
	backoff   []time.Duration
	// quarantined marks replicas pulled from the rotation by validation
	// evidence (a divergent replay attributed to them) rather than by a
	// transport failure. Unlike down, a quarantined replica is never
	// readmitted by the transport-level half-open probe — answering TCP
	// is no evidence its parameters are clean — only by TryReadmit's
	// dedicated re-validation probe, which rides the same backoff
	// schedule.
	quarantined []bool
	quarReason  []string
	lastErr     []string // last transport error per replica, for operators
	// redial reconnects replica i from scratch; nil entries (in-process
	// fleets) probe the existing replica object instead.
	redial []func() (BatchIP, error)
	// baseWire accumulates the byte counters of connections retired by
	// probe re-dials, so per-replica WireStats are cumulative across
	// reconnects instead of resetting with each fresh connection.
	baseWire []WireStats

	stats []*replicaStats // per-replica exchange counters; slice immutable after construction

	probeMin, probeMax time.Duration
}

// Default half-open probe backoff bounds: the first probe of a down
// replica happens after probeBackoffMin, doubling per failed probe up
// to probeBackoffMax.
const (
	probeBackoffMin = 1 * time.Second
	probeBackoffMax = 30 * time.Second
)

// NewShardedIP builds a sharded IP over the given replicas. Without a
// redial path, probing retries the replica objects themselves — right
// for in-process replicas, while fleets of network connections should
// come from DialShards so a probe can reconnect.
func NewShardedIP(replicas ...BatchIP) (*ShardedIP, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("validate: sharded IP needs at least one replica")
	}
	n := len(replicas)
	s := &ShardedIP{
		replicas:    append([]BatchIP(nil), replicas...),
		addrs:       make([]string, n),
		down:        make([]bool, n),
		probing:     make([]bool, n),
		nextProbe:   make([]time.Time, n),
		backoff:     make([]time.Duration, n),
		quarantined: make([]bool, n),
		quarReason:  make([]string, n),
		lastErr:     make([]string, n),
		redial:      make([]func() (BatchIP, error), n),
		baseWire:    make([]WireStats, n),
		stats:       make([]*replicaStats, n),
		probeMin:    probeBackoffMin,
		probeMax:    probeBackoffMax,
	}
	for i := range s.stats {
		s.addrs[i] = fmt.Sprintf("replica-%d", i+1)
		s.stats[i] = &replicaStats{}
	}
	return s, nil
}

// DialShards connects to every addr and returns a ShardedIP over the
// connections. Any dial failure closes the already-open connections and
// fails: a replica that is down at dial time should be dropped from the
// address list, not silently skipped. Replicas that die later are
// re-dialled by the half-open probe, so a restarted server rejoins.
func DialShards(addrs []string, opts DialOptions) (*ShardedIP, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("validate: sharded IP needs at least one address")
	}
	replicas := make([]BatchIP, 0, len(addrs))
	for _, addr := range addrs {
		r, err := DialWith(addr, opts)
		if err != nil {
			for _, open := range replicas {
				open.(*RemoteIP).Close()
			}
			return nil, fmt.Errorf("validate: dial shard %s: %w", addr, err)
		}
		replicas = append(replicas, r)
	}
	s, _ := NewShardedIP(replicas...)
	for i, addr := range addrs {
		addr := addr
		s.addrs[i] = addr
		s.redial[i] = func() (BatchIP, error) { return DialWith(addr, opts) }
	}
	return s, nil
}

// SetProbeBackoff adjusts the half-open probe bounds (defaults 1s/30s):
// a down replica is first probed after min, backing off exponentially
// to max while it stays dead. Call before sharing the ShardedIP across
// goroutines.
func (s *ShardedIP) SetProbeBackoff(min, max time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probeMin, s.probeMax = min, max
}

// Replicas returns the replica count.
func (s *ShardedIP) Replicas() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.replicas)
}

// Healthy returns how many replicas are currently in the rotation
// (neither marked down nor quarantined).
func (s *ShardedIP) Healthy() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for i := range s.down {
		if !s.down[i] && !s.quarantined[i] {
			n++
		}
	}
	return n
}

// Query implements IP.
func (s *ShardedIP) Query(x *tensor.Tensor) (*tensor.Tensor, error) {
	out, err := s.QueryBatch([]*tensor.Tensor{x})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// replicaMode is the routing decision for one replica slot.
type replicaMode int

const (
	skipReplica  replicaMode = iota // down, not due for a probe
	useReplica                      // healthy
	probeReplica                    // down and due: risk this request on it
)

// checkout snapshots replica idx and decides how to use it. The
// half-open discipline lives here: at most one request probes a down
// replica at a time (probing flag), and only once its backoff expired.
func (s *ShardedIP) checkout(idx int) (BatchIP, replicaMode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quarantined[idx] {
		// Quarantine is validation evidence, not a transport state: live
		// traffic never auto-probes its way back in. Readmission goes
		// through TryReadmit's re-validation probe only.
		return nil, skipReplica
	}
	if !s.down[idx] {
		return s.replicas[idx], useReplica
	}
	if s.closed || s.probing[idx] || time.Now().Before(s.nextProbe[idx]) { //detlint:allow walltime(probe-backoff gate for a downed replica; routing only, replay outputs are clock-free)
		return nil, skipReplica
	}
	s.probing[idx] = true
	return s.replicas[idx], probeReplica
}

// markDown takes replica rep at slot idx out of the rotation. The
// pointer comparison makes stale failures harmless: a request that was
// already in flight on a connection the probe has since replaced must
// not take the fresh replica down with it.
func (s *ShardedIP) markDown(idx int, rep BatchIP) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replicas[idx] != rep {
		return
	}
	if !s.down[idx] {
		s.down[idx] = true
		s.backoff[idx] = s.probeMin
		s.nextProbe[idx] = time.Now().Add(s.backoff[idx]) //detlint:allow walltime(probe-backoff deadline after a replica failure; routing only)
	}
}

// probeFailed keeps idx down and doubles its backoff up to the cap.
func (s *ShardedIP) probeFailed(idx int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probing[idx] = false
	if s.backoff[idx] *= 2; s.backoff[idx] > s.probeMax {
		s.backoff[idx] = s.probeMax
	}
	s.nextProbe[idx] = time.Now().Add(s.backoff[idx]) //detlint:allow walltime(probe-backoff deadline doubling after a failed probe; routing only)
}

// probeSucceeded returns idx to the rotation.
func (s *ShardedIP) probeSucceeded(idx int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probing[idx] = false
	s.down[idx] = false
	s.backoff[idx] = 0
}

// probe risks one request on down replica idx: re-dial a fresh
// connection when the fleet knows how, then send the query half-open.
// A QueryError counts as success for the replica's health — transport
// worked, the query itself is bad everywhere.
func (s *ShardedIP) probe(idx int, rep BatchIP, do func(BatchIP) (any, error)) (any, error) {
	s.mu.Lock()
	redial := s.redial[idx]
	s.mu.Unlock()
	if redial != nil {
		fresh, err := redial()
		if err != nil {
			s.probeFailed(idx)
			return nil, err
		}
		s.retire(idx, rep) // fold the dead connection's byte counters, then close it
		s.mu.Lock()
		if s.closed {
			// Close ran while the re-dial was in flight; it cannot have
			// seen the fresh connection, so it is ours to close — nothing
			// may outlive a closed cluster.
			s.mu.Unlock()
			if c, ok := fresh.(io.Closer); ok {
				c.Close()
			}
			s.probeFailed(idx)
			return nil, fmt.Errorf("validate: sharded IP closed")
		}
		s.replicas[idx] = fresh
		s.mu.Unlock()
		rep = fresh
	}
	t0 := time.Now() //detlint:allow walltime(latency measurement start for the health metrics)
	out, err := do(rep)
	s.observe(idx, time.Since(t0), err) //detlint:allow walltime(latency measurement for the health metrics; not part of the replay result)
	if err != nil {
		var qe *QueryError
		if errors.As(err, &qe) {
			s.probeSucceeded(idx)
		} else {
			s.probeFailed(idx)
		}
		return nil, err
	}
	s.probeSucceeded(idx)
	return out, nil
}

// roundRobin runs one exchange against the next healthy replica,
// failing over to the others on transport errors and half-open-probing
// any down replica whose backoff has expired; the shared engine of
// QueryBatch and QueryQuant.
func (s *ShardedIP) roundRobin(do func(BatchIP) (any, error)) (any, error) {
	s.mu.Lock()
	n := len(s.replicas)
	s.mu.Unlock()
	start := int(s.next.Add(1) - 1)
	var lastErr error
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		rep, mode := s.checkout(idx)
		switch mode {
		case skipReplica:
			continue
		case useReplica:
			t0 := time.Now() //detlint:allow walltime(latency measurement start for the health metrics)
			out, err := do(rep)
			s.observe(idx, time.Since(t0), err) //detlint:allow walltime(latency measurement for the health metrics; not part of the replay result)
			if err == nil {
				return out, nil
			}
			var qe *QueryError
			if errors.As(err, &qe) {
				return nil, err // the query is bad, not the replica
			}
			s.markDown(idx, rep)
			lastErr = err
		case probeReplica:
			out, err := s.probe(idx, rep, do)
			if err == nil {
				return out, nil
			}
			var qe *QueryError
			if errors.As(err, &qe) {
				return nil, err
			}
			lastErr = err
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no healthy replicas")
	}
	// Name every replica with its state, last transport error and
	// quarantine reason: "all replicas failed" alone gives an operator
	// nothing to act on.
	return nil, fmt.Errorf("validate: all %d replicas failed: %w [%s]", n, lastErr, s.replicaSummary())
}

// replicaSummary renders one line of per-replica detail for the
// all-replicas-failed error: address, state, and the state's cause.
func (s *ShardedIP) replicaSummary() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	parts := make([]string, len(s.replicas))
	for i := range s.replicas {
		state, detail := "healthy", ""
		switch {
		case s.quarantined[i]:
			state, detail = "quarantined", s.quarReason[i]
		case s.down[i]:
			state, detail = "down", s.lastErr[i]
		}
		if detail != "" {
			parts[i] = fmt.Sprintf("%s: %s (%s)", s.addrs[i], state, detail)
		} else {
			parts[i] = fmt.Sprintf("%s: %s", s.addrs[i], state)
		}
	}
	return strings.Join(parts, "; ")
}

// QueryBatch implements BatchIP over the fleet.
func (s *ShardedIP) QueryBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	out, err := s.roundRobin(func(rep BatchIP) (any, error) { return rep.QueryBatch(xs) })
	if err != nil {
		return nil, err
	}
	return out.([]*tensor.Tensor), nil
}

// QuantWire reports whether the fleet speaks the quantised v4 dialect.
// Replicas are dialled with one DialOptions, so the first answers for
// all.
func (s *ShardedIP) QuantWire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.replicas[0].(QuantIP); ok {
		return q.QuantWire()
	}
	return false
}

// QueryQuant implements QuantIP over the fleet with the same
// round-robin failover as QueryBatch. A replica that does not speak
// the quantised dialect rejects with a QueryError — the whole fleet
// shares one dial configuration, so failover could not help.
func (s *ShardedIP) QueryQuant(xs []*tensor.Tensor, refs []quant.Frame, decimals int) ([]quant.Frame, error) {
	out, err := s.roundRobin(func(rep BatchIP) (any, error) {
		q, ok := rep.(QuantIP)
		if !ok || !q.QuantWire() {
			return nil, &QueryError{Msg: "validate: replica does not speak the quantised wire dialect — dial the fleet with DialOptions.Quant"}
		}
		return q.QueryQuant(xs, refs, decimals)
	})
	if err != nil {
		return nil, err
	}
	return out.([]quant.Frame), nil
}

// Close closes every replica that can be closed. No probe re-dials
// after Close: a re-dial racing it is closed by whichever side sees the
// other's work (the closed flag), so a closed cluster holds no live
// connections.
func (s *ShardedIP) Close() error {
	s.mu.Lock()
	s.closed = true
	replicas := append([]BatchIP(nil), s.replicas...)
	s.mu.Unlock()
	var first error
	for _, r := range replicas {
		if c, ok := r.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
