package validate

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// ShardedIP fans queries across N replicas of the same served IP — the
// production shape of the paper's validation scenario, where replay
// traffic from many users spreads over a fleet of identical endpoints.
// Replicas must serve the same parameters; since every replica's
// answers are bit-identical to any other's, routing is invisible to
// validation reports.
//
// Requests rotate round-robin across the healthy replicas. A replica
// whose exchange fails in transport is marked down and the request
// fails over to the remaining replicas; application-level rejections
// (QueryError — a malformed input fails identically everywhere) are
// returned directly without failover. ShardedIP is safe for concurrent
// use when its replicas are (RemoteIP and PooledIP are; a bare LocalIP
// is not); concurrent suite replay then shards naturally across the
// fleet.
type ShardedIP struct {
	replicas []BatchIP
	next     atomic.Uint64

	mu   sync.Mutex
	down []bool
}

// NewShardedIP builds a sharded IP over the given replicas.
func NewShardedIP(replicas ...BatchIP) (*ShardedIP, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("validate: sharded IP needs at least one replica")
	}
	return &ShardedIP{replicas: replicas, down: make([]bool, len(replicas))}, nil
}

// DialShards connects to every addr and returns a ShardedIP over the
// connections. Any dial failure closes the already-open connections and
// fails: a replica that is down at dial time should be dropped from the
// address list, not silently skipped.
func DialShards(addrs []string, opts DialOptions) (*ShardedIP, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("validate: sharded IP needs at least one address")
	}
	replicas := make([]BatchIP, 0, len(addrs))
	for _, addr := range addrs {
		r, err := DialWith(addr, opts)
		if err != nil {
			for _, open := range replicas {
				open.(*RemoteIP).Close()
			}
			return nil, fmt.Errorf("validate: dial shard %s: %w", addr, err)
		}
		replicas = append(replicas, r)
	}
	s, _ := NewShardedIP(replicas...)
	return s, nil
}

// Replicas returns the replica count.
func (s *ShardedIP) Replicas() int { return len(s.replicas) }

// Healthy returns how many replicas have not been marked down.
func (s *ShardedIP) Healthy() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, d := range s.down {
		if !d {
			n++
		}
	}
	return n
}

// Query implements IP.
func (s *ShardedIP) Query(x *tensor.Tensor) (*tensor.Tensor, error) {
	out, err := s.QueryBatch([]*tensor.Tensor{x})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// QueryBatch implements BatchIP: the batch goes to the next healthy
// replica round-robin, failing over to the others on transport errors.
func (s *ShardedIP) QueryBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	start := int(s.next.Add(1) - 1)
	var lastErr error
	for i := 0; i < len(s.replicas); i++ {
		idx := (start + i) % len(s.replicas)
		s.mu.Lock()
		skip := s.down[idx]
		s.mu.Unlock()
		if skip {
			continue
		}
		out, err := s.replicas[idx].QueryBatch(xs)
		if err == nil {
			return out, nil
		}
		var qe *QueryError
		if errors.As(err, &qe) {
			return nil, err // the query is bad, not the replica
		}
		s.mu.Lock()
		s.down[idx] = true
		s.mu.Unlock()
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no healthy replicas")
	}
	return nil, fmt.Errorf("validate: all %d replicas failed: %w", len(s.replicas), lastErr)
}

// Close closes every replica that can be closed.
func (s *ShardedIP) Close() error {
	var first error
	for _, r := range s.replicas {
		if c, ok := r.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
