package validate

import (
	"net"
	"sync/atomic"
)

// Byte-counting instrumentation on the client connection: the wire
// protocols exist to cut replay bandwidth, so the compression ratio
// must be a measured number, not a claim. Every dialled connection is
// wrapped; BenchmarkReplay* report bytes/query from these counters and
// the paperbench wire table renders them per dialect.

// countingConn counts the bytes crossing a net.Conn in each direction.
type countingConn struct {
	net.Conn
	read, wrote atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.wrote.Add(int64(n))
	return n, err
}

// WireStats is a point-in-time snapshot of one side's connection
// traffic, from the client's perspective (BytesWritten is the request
// direction, BytesRead the response direction). Handshake bytes are
// included.
type WireStats struct {
	BytesRead    int64
	BytesWritten int64
}

// Total returns both directions combined.
func (s WireStats) Total() int64 { return s.BytesRead + s.BytesWritten }

// Sub returns the traffic since an earlier snapshot.
func (s WireStats) Sub(earlier WireStats) WireStats {
	return WireStats{
		BytesRead:    s.BytesRead - earlier.BytesRead,
		BytesWritten: s.BytesWritten - earlier.BytesWritten,
	}
}

// WireStats returns the bytes this client has exchanged with its
// server so far. Safe for concurrent use.
func (r *RemoteIP) WireStats() WireStats {
	return WireStats{BytesRead: r.counts.read.Load(), BytesWritten: r.counts.wrote.Load()}
}

// WireStats sums the cumulative traffic of the fleet. Connections
// replaced by probe re-dials fold their counters into a per-replica
// base before closing (ShardedIP.retire), so the sum covers the
// fleet's whole lifetime, not just the connections currently open.
func (s *ShardedIP) WireStats() WireStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total WireStats
	for i := range s.replicas {
		st := s.replicaWireLocked(i)
		total.BytesRead += st.BytesRead
		total.BytesWritten += st.BytesWritten
	}
	return total
}
