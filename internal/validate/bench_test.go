package validate

import (
	"net"
	"testing"
)

// Validation-throughput benchmarks over real loopback TCP: the same
// 64-test replay driven several ways. ReplaySerial is the v1-shaped
// lockstep replay (one query, one round trip, wait); ReplayBatched
// amortises round trips and rides the batched forward pass over one
// connection; ReplayShardedBatched adds concurrent workers over a
// 2-replica fleet; ReplayF32 swaps in protocol-v3 float32 frames;
// ReplayV4 replays a QuantizedOutputs suite in the protocol-v4
// quantised delta-encoded dialect. The reports are equivalent to the
// serial replay at each dialect's comparison semantics (see
// replay_test.go and netip_v4_test.go); these measure what that buys.
//
// Every remote benchmark also reports bytes/query measured on the
// client connection (WireStats over the timed region), so the wire
// dialects' bandwidth claims are benchmarked numbers: CI's
// bench-regression job fails when bytes/query on the v4 replay path
// grows, exactly as it fails on sec/op regressions.
const benchSuiteLen = 64

func benchSuite(b *testing.B, mode CompareMode) *Suite {
	b.Helper()
	return BuildSuite("bench", goldenNet(), testInputs(benchSuiteLen, 1234), mode)
}

func benchServers(b *testing.B, n int) []string {
	b.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := Serve(l, goldenNet())
		b.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	return addrs
}

// wireMeter reports bytes/query over the timed region from any IP that
// exposes WireStats (RemoteIP and ShardedIP both do).
type wireMeter interface{ WireStats() WireStats }

func reportQPS(b *testing.B, queries int, m wireMeter, start WireStats) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(queries*b.N)/s, "queries/s")
	}
	if m != nil {
		used := m.WireStats().Sub(start)
		b.ReportMetric(float64(used.Total())/float64(queries*b.N), "bytes/query")
	}
}

func BenchmarkReplaySerial(b *testing.B) {
	suite := benchSuite(b, ExactOutputs)
	addrs := benchServers(b, 1)
	ip, err := Dial(addrs[0])
	if err != nil {
		b.Fatal(err)
	}
	defer ip.Close()
	start := ip.WireStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := suite.Validate(ip)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatal("benchmark replay failed")
		}
	}
	reportQPS(b, suite.Len(), ip, start)
}

func BenchmarkReplayBatched(b *testing.B) {
	suite := benchSuite(b, ExactOutputs)
	addrs := benchServers(b, 1)
	ip, err := Dial(addrs[0])
	if err != nil {
		b.Fatal(err)
	}
	defer ip.Close()
	opts := ValidateOptions{Batch: 16}
	start := ip.WireStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := suite.ValidateWith(ip, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatal("benchmark replay failed")
		}
	}
	reportQPS(b, suite.Len(), ip, start)
}

// BenchmarkReplayF32 is BenchmarkReplayBatched on the reduced-precision
// path: an -f32 server, protocol-v3 float32 frames, and tolerance
// comparison. Against BenchmarkReplayBatched it measures what halving
// the wire payload and the kernel element size buys end to end.
func BenchmarkReplayF32(b *testing.B) {
	suite := benchSuite(b, ExactOutputs)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := ServeWith(l, goldenNet(), ServerOptions{F32: true})
	b.Cleanup(func() { srv.Close() })
	ip, err := DialWith(srv.Addr(), DialOptions{F32: true})
	if err != nil {
		b.Fatal(err)
	}
	defer ip.Close()
	opts := ValidateOptions{Batch: 16, Tolerance: 1e-4}
	start := ip.WireStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := suite.ValidateWith(ip, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatal("benchmark replay failed")
		}
	}
	reportQPS(b, suite.Len(), ip, start)
}

// BenchmarkReplayV4 is the quantised-dialect replay: a QuantizedOutputs
// suite over a protocol-v4 session, fixed-point delta-encoded frames,
// verdicts computed on the wire representation. One un-timed warm-up
// replay populates the session's replay-frame cache, so the timed
// region measures the steady-state traffic of validation workloads —
// the same sealed suite replayed over and over, each frame a
// back-reference and each response near-zero deltas against the
// references. Compare bytes/query against BenchmarkReplayBatched (the
// v2 gob float64 dialect) for the compression ratio; the acceptance
// bar is ≥4× fewer bytes/query.
func BenchmarkReplayV4(b *testing.B) {
	suite := benchSuite(b, QuantizedOutputs)
	addrs := benchServers(b, 1)
	ip, err := DialWith(addrs[0], DialOptions{Quant: true})
	if err != nil {
		b.Fatal(err)
	}
	defer ip.Close()
	opts := ValidateOptions{Batch: 16}
	// Warm the replay-frame cache: steady-state replay is the workload.
	if rep, err := suite.ValidateWith(ip, opts); err != nil || !rep.Passed {
		b.Fatalf("warm-up replay: rep=%+v err=%v", rep, err)
	}
	start := ip.WireStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := suite.ValidateWith(ip, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatal("benchmark replay failed")
		}
	}
	reportQPS(b, suite.Len(), ip, start)
}

func BenchmarkReplayShardedBatched(b *testing.B) {
	suite := benchSuite(b, ExactOutputs)
	cluster, err := DialShards(benchServers(b, 2), DialOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	opts := ValidateOptions{Batch: 16, Concurrency: 4}
	start := cluster.WireStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := suite.ValidateWith(cluster, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatal("benchmark replay failed")
		}
	}
	reportQPS(b, suite.Len(), cluster, start)
}
