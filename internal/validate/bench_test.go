package validate

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Validation-throughput benchmarks over real loopback TCP: the same
// 64-test replay driven several ways. ReplaySerial is the v1-shaped
// lockstep replay (one query, one round trip, wait); ReplayBatched
// amortises round trips and rides the batched forward pass over one
// connection; ReplayShardedBatched adds concurrent workers over a
// 2-replica fleet; ReplayF32 swaps in protocol-v3 float32 frames;
// ReplayV4 replays a QuantizedOutputs suite in the protocol-v4
// quantised delta-encoded dialect. The reports are equivalent to the
// serial replay at each dialect's comparison semantics (see
// replay_test.go and netip_v4_test.go); these measure what that buys.
//
// Every remote benchmark also reports bytes/query measured on the
// client connection (WireStats over the timed region), so the wire
// dialects' bandwidth claims are benchmarked numbers: CI's
// bench-regression job fails when bytes/query on the v4 replay path
// grows, exactly as it fails on sec/op regressions.
const benchSuiteLen = 64

func benchSuite(b *testing.B, mode CompareMode) *Suite {
	b.Helper()
	return BuildSuite("bench", goldenNet(), testInputs(benchSuiteLen, 1234), mode)
}

func benchServers(b *testing.B, n int) []string {
	b.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := Serve(l, goldenNet())
		b.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	return addrs
}

// wireMeter reports bytes/query over the timed region from any IP that
// exposes WireStats (RemoteIP and ShardedIP both do).
type wireMeter interface{ WireStats() WireStats }

func reportQPS(b *testing.B, queries int, m wireMeter, start WireStats) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(queries*b.N)/s, "queries/s")
	}
	if m != nil {
		used := m.WireStats().Sub(start)
		b.ReportMetric(float64(used.Total())/float64(queries*b.N), "bytes/query")
	}
}

func BenchmarkReplaySerial(b *testing.B) {
	suite := benchSuite(b, ExactOutputs)
	addrs := benchServers(b, 1)
	ip, err := Dial(addrs[0])
	if err != nil {
		b.Fatal(err)
	}
	defer ip.Close()
	start := ip.WireStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := suite.Validate(ip)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatal("benchmark replay failed")
		}
	}
	reportQPS(b, suite.Len(), ip, start)
}

func BenchmarkReplayBatched(b *testing.B) {
	suite := benchSuite(b, ExactOutputs)
	addrs := benchServers(b, 1)
	ip, err := Dial(addrs[0])
	if err != nil {
		b.Fatal(err)
	}
	defer ip.Close()
	opts := ValidateOptions{Batch: 16}
	start := ip.WireStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := suite.ValidateWith(ip, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatal("benchmark replay failed")
		}
	}
	reportQPS(b, suite.Len(), ip, start)
}

// BenchmarkReplayF32 is BenchmarkReplayBatched on the reduced-precision
// path: an -f32 server, protocol-v3 float32 frames, and tolerance
// comparison. Against BenchmarkReplayBatched it measures what halving
// the wire payload and the kernel element size buys end to end.
func BenchmarkReplayF32(b *testing.B) {
	suite := benchSuite(b, ExactOutputs)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := ServeWith(l, goldenNet(), ServerOptions{F32: true})
	b.Cleanup(func() { srv.Close() })
	ip, err := DialWith(srv.Addr(), DialOptions{F32: true})
	if err != nil {
		b.Fatal(err)
	}
	defer ip.Close()
	opts := ValidateOptions{Batch: 16, Tolerance: 1e-4}
	start := ip.WireStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := suite.ValidateWith(ip, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatal("benchmark replay failed")
		}
	}
	reportQPS(b, suite.Len(), ip, start)
}

// BenchmarkReplayV4 is the quantised-dialect replay: a QuantizedOutputs
// suite over a protocol-v4 session, fixed-point delta-encoded frames,
// verdicts computed on the wire representation. One un-timed warm-up
// replay populates the session's replay-frame cache, so the timed
// region measures the steady-state traffic of validation workloads —
// the same sealed suite replayed over and over, each frame a
// back-reference and each response near-zero deltas against the
// references. Compare bytes/query against BenchmarkReplayBatched (the
// v2 gob float64 dialect) for the compression ratio; the acceptance
// bar is ≥4× fewer bytes/query.
func BenchmarkReplayV4(b *testing.B) {
	suite := benchSuite(b, QuantizedOutputs)
	addrs := benchServers(b, 1)
	ip, err := DialWith(addrs[0], DialOptions{Quant: true})
	if err != nil {
		b.Fatal(err)
	}
	defer ip.Close()
	opts := ValidateOptions{Batch: 16}
	// Warm the replay-frame cache: steady-state replay is the workload.
	if rep, err := suite.ValidateWith(ip, opts); err != nil || !rep.Passed {
		b.Fatalf("warm-up replay: rep=%+v err=%v", rep, err)
	}
	start := ip.WireStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := suite.ValidateWith(ip, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatal("benchmark replay failed")
		}
	}
	reportQPS(b, suite.Len(), ip, start)
}

// BenchmarkReplayRedial measures what a re-dialling client pays to
// re-establish replay steady state: each iteration dials a fresh
// connection against a persistent warm server, replays the suite once,
// and hangs up — the failover/restart/sentinel-probe pattern. On a v4
// ceiling every connection re-uploads every frame body (per-connection
// cache, cold on arrival); on v5 the shared content-addressed store
// answers hash probes, so bytes/query collapses to back-reference cost.
// The CI bandwidth gate holds the v5 number.
func BenchmarkReplayRedial(b *testing.B) {
	for _, tc := range []struct {
		name string
		maxV byte
	}{
		{"v4", protocolV4},
		{"v5", protocolVersion},
	} {
		b.Run(tc.name, func(b *testing.B) {
			suite := benchSuite(b, QuantizedOutputs)
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := ServeWith(l, goldenNet(), ServerOptions{
				MaxVersion: tc.maxV, FrameStore: NewFrameStore(0, 0),
			})
			b.Cleanup(func() { srv.Close() })
			opts := ValidateOptions{Batch: 16}
			redial := func() WireStats {
				ip, derr := DialWith(srv.Addr(), DialOptions{Quant: true})
				if derr != nil {
					b.Fatal(derr)
				}
				defer ip.Close()
				rep, verr := suite.ValidateWith(ip, opts)
				if verr != nil || !rep.Passed {
					b.Fatalf("redial replay: rep=%+v err=%v", rep, verr)
				}
				return ip.WireStats()
			}
			redial() // warm the store (and, on v4, nothing — that is the point)
			var used WireStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := redial()
				used.BytesRead += st.BytesRead
				used.BytesWritten += st.BytesWritten
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(suite.Len()*b.N)/s, "queries/s")
			}
			b.ReportMetric(float64(used.Total())/float64(suite.Len()*b.N), "bytes/query")
		})
	}
}

// BenchmarkReplayManyClients is the fleet-throughput scenario: many
// connections each replaying the suite one query at a time — the shape
// sentinel probes and small validators produce — against one server,
// with cross-connection coalescing off (every query a per-sample
// forward on its own clone) and on (same-shape queries gathered across
// connections into one batched forward). Warm sessions, so the wire
// carries back-references; the work is the evaluation dispatch itself.
// The network is dense-dominated (a wide FC stack, untrained — the
// suite's references come from the same instance): batched evaluation
// wins exactly where weight reuse does, one streaming pass over the FC
// matrix answering the whole batch instead of one pass per query. On
// conv-dominated models per-sample forwards have no such reuse to
// recover and coalescing is a wash — dispatch policy only moves
// throughput when the evaluation does. Each client pipelines two
// queries (Concurrency 2) so the fleet keeps 2×clients single-query
// requests outstanding and coalesced batches fill on arrival instead
// of waiting out the window; the cap equals the client count so one
// wave folds into one ForwardBatch.
func BenchmarkReplayManyClients(b *testing.B) {
	const clients = 12
	rng := rand.New(rand.NewSource(4321))
	fc1 := nn.NewDense("fc1", 576, 4096)
	fc2 := nn.NewDense("fc2", 4096, 10)
	fc1.Init(rng)
	fc2.Init(rng)
	manyNet := nn.NewNetwork(nn.NewFlatten("flat"), fc1, nn.NewActivate("act", nn.ReLU), fc2)
	inputs := make([]*tensor.Tensor, 16)
	for i := range inputs {
		inputs[i] = tensor.New(1, 24, 24)
		inputs[i].FillNormal(rng, 0.5, 0.2)
		inputs[i].Clamp(0, 1)
	}
	suite := BuildSuite("bench-many", manyNet, inputs, QuantizedOutputs)
	for _, tc := range []struct {
		name   string
		window time.Duration
	}{
		{"direct", 0},
		{"coalesced", time.Millisecond},
	} {
		b.Run(tc.name, func(b *testing.B) {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			// Workers 2 so each connection may carry both of its client's
			// pipelined queries at once (the per-connection inflight bound
			// is the pool size); with 12 it would be the batch cap exactly,
			// and any lagging client would force a window stall per wave.
			srv := ServeWith(l, manyNet, ServerOptions{
				Workers:        2,
				FrameStore:     NewFrameStore(0, 0),
				CoalesceWindow: tc.window, CoalesceBatch: 12,
			})
			b.Cleanup(func() { srv.Close() })
			opts := ValidateOptions{Batch: 1, Concurrency: 2}
			ips := make([]*RemoteIP, clients)
			for i := range ips {
				ip, derr := DialWith(srv.Addr(), DialOptions{Quant: true})
				if derr != nil {
					b.Fatal(derr)
				}
				b.Cleanup(func() { ip.Close() })
				if rep, verr := suite.ValidateWith(ip, opts); verr != nil || !rep.Passed {
					b.Fatalf("warm-up replay: rep=%+v err=%v", rep, verr)
				}
				ips[i] = ip
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for _, ip := range ips {
					wg.Add(1)
					go func(ip *RemoteIP) {
						defer wg.Done()
						rep, verr := suite.ValidateWith(ip, opts)
						if verr != nil || !rep.Passed {
							b.Errorf("client replay: rep=%+v err=%v", rep, verr)
						}
					}(ip)
				}
				wg.Wait()
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(clients*suite.Len()*b.N)/s, "queries/s")
			}
		})
	}
}

func BenchmarkReplayShardedBatched(b *testing.B) {
	suite := benchSuite(b, ExactOutputs)
	cluster, err := DialShards(benchServers(b, 2), DialOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	opts := ValidateOptions{Batch: 16, Concurrency: 4}
	start := cluster.WireStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := suite.ValidateWith(cluster, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatal("benchmark replay failed")
		}
	}
	reportQPS(b, suite.Len(), cluster, start)
}
