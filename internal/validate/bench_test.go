package validate

import (
	"net"
	"testing"
)

// Validation-throughput benchmarks over real loopback TCP: the same
// 64-test replay driven three ways. ReplaySerial is the v1-shaped
// lockstep replay (one query, one round trip, wait); ReplayBatched
// amortises round trips and rides the batched forward pass over one
// connection; ReplayShardedBatched adds concurrent workers over a
// 2-replica fleet. The reports are bit-identical across all three (see
// replay_test.go); these measure what that equivalence buys. CI's
// bench-regression job tracks them (queries/sec is also reported).
const benchSuiteLen = 64

func benchSuite(b *testing.B) *Suite {
	b.Helper()
	return BuildSuite("bench", goldenNet(), testInputs(benchSuiteLen, 1234), ExactOutputs)
}

func benchServers(b *testing.B, n int) []string {
	b.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := Serve(l, goldenNet())
		b.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	return addrs
}

func reportQPS(b *testing.B, queries int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(queries*b.N)/s, "queries/s")
	}
}

func BenchmarkReplaySerial(b *testing.B) {
	suite := benchSuite(b)
	addrs := benchServers(b, 1)
	ip, err := Dial(addrs[0])
	if err != nil {
		b.Fatal(err)
	}
	defer ip.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := suite.Validate(ip)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatal("benchmark replay failed")
		}
	}
	reportQPS(b, suite.Len())
}

func BenchmarkReplayBatched(b *testing.B) {
	suite := benchSuite(b)
	addrs := benchServers(b, 1)
	ip, err := Dial(addrs[0])
	if err != nil {
		b.Fatal(err)
	}
	defer ip.Close()
	opts := ValidateOptions{Batch: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := suite.ValidateWith(ip, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatal("benchmark replay failed")
		}
	}
	reportQPS(b, suite.Len())
}

// BenchmarkReplayF32 is BenchmarkReplayBatched on the reduced-precision
// path: an -f32 server, protocol-v3 float32 frames, and tolerance
// comparison. Against BenchmarkReplayBatched it measures what halving
// the wire payload and the kernel element size buys end to end.
func BenchmarkReplayF32(b *testing.B) {
	suite := benchSuite(b)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := ServeWith(l, goldenNet(), ServerOptions{F32: true})
	b.Cleanup(func() { srv.Close() })
	ip, err := DialWith(srv.Addr(), DialOptions{F32: true})
	if err != nil {
		b.Fatal(err)
	}
	defer ip.Close()
	opts := ValidateOptions{Batch: 16, Tolerance: 1e-4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := suite.ValidateWith(ip, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatal("benchmark replay failed")
		}
	}
	reportQPS(b, suite.Len())
}

func BenchmarkReplayShardedBatched(b *testing.B) {
	suite := benchSuite(b)
	cluster, err := DialShards(benchServers(b, 2), DialOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	opts := ValidateOptions{Batch: 16, Concurrency: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := suite.ValidateWith(cluster, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatal("benchmark replay failed")
		}
	}
	reportQPS(b, suite.Len())
}
