// Package validate implements the paper's validation scheme (Fig. 1):
// the IP vendor generates functional tests X, computes reference outputs
// Y, seals both, and ships them with the black-box IP; the user replays
// X and compares the IP's outputs Y′ against Y. Any mismatch means the
// IP's parameters were perturbed in a way the suite activates.
//
// The user-side comparison supports three modes: exact output vectors
// (the paper's "are Y and Y′ identical?"), quantised outputs (fixed
// decimal places, modelling an IP that exposes fixed-point scores), and
// labels only (an IP that exposes nothing but the argmax class).
package validate

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// IP is the black-box interface an IP user has: feed an input, get the
// output vector. No parameters, no intermediate results.
type IP interface {
	Query(x *tensor.Tensor) (*tensor.Tensor, error)
}

// BatchIP is an IP that can answer a batch of queries in one exchange.
// Every output must be bit-identical to a single Query of the same
// input — the batched engine guarantees this for local networks, and
// the wire protocol ships the per-sample outputs verbatim — so batching
// is purely a throughput lever, never a semantics change.
type BatchIP interface {
	IP
	QueryBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error)
}

// QuantIP is an IP that can answer queries in the quantised wire
// representation of protocol v4: each output as fixed-point integers
// at a requested decimal precision, optionally delta-encoded against
// caller-supplied reference frames. QuantWire reports whether the
// quantised dialect is actually active — a RemoteIP on a v2/v3 session
// has the method but not the dialect. When a QuantizedOutputs suite is
// replayed against an active QuantIP (and no Tolerance is set), the
// replay compares these frames against its own quantised references
// directly, so the verdicts are the QuantizedOutputs verdicts by
// construction — no dequantise-then-round round trip.
type QuantIP interface {
	BatchIP
	QuantWire() bool
	QueryQuant(xs []*tensor.Tensor, refs []quant.Frame, decimals int) ([]quant.Frame, error)
}

// QueryError is an application-level rejection from an IP (a malformed
// input, a shape mismatch): the query itself is invalid and would fail
// identically on any replica, as opposed to a transport failure of the
// replica that answered. Failover logic retries transport failures on
// the remaining replicas but surfaces QueryErrors directly.
type QueryError struct{ Msg string }

// Error implements error.
func (e *QueryError) Error() string { return e.Msg }

// LocalIP adapts an in-process network to the IP interface.
type LocalIP struct {
	Net *nn.Network
}

// Query implements IP.
func (ip LocalIP) Query(x *tensor.Tensor) (*tensor.Tensor, error) {
	return ip.Net.Forward(x).Clone(), nil
}

// QueryBatch implements BatchIP. Same-shaped inputs run as one batched
// forward pass, whose per-sample logits are bit-identical to individual
// Query calls; mixed shapes fall back to the per-sample loop (shared
// with the server and PooledIP via evalOn).
func (ip LocalIP) QueryBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(xs) == 0 {
		return nil, &QueryError{Msg: "validate: empty query batch"}
	}
	out, err := evalOn(ip.Net, xs)
	if err != nil {
		return nil, &QueryError{Msg: err.Error()}
	}
	return out, nil
}

// queryRange names one failed exchange's suite indexes in errors:
// "query 7" for a single query, "queries 32-63" for a batch — a
// batched exchange fails as a whole, so any index in it may be the
// culprit.
func queryRange(lo, hi int) string {
	if lo == hi {
		return fmt.Sprintf("query %d", lo)
	}
	return fmt.Sprintf("queries %d-%d", lo, hi)
}

// sameShapes reports whether every tensor has the shape of the first,
// at either element precision.
func sameShapes[E tensor.Num](xs []*tensor.Dense[E]) bool {
	for _, x := range xs[1:] {
		if !x.SameShape(xs[0]) {
			return false
		}
	}
	return true
}

// CompareMode selects how reference and observed outputs are compared.
type CompareMode int

// Comparison modes.
const (
	// ExactOutputs requires bit-identical output vectors — the paper's
	// setting: a digital IP is deterministic, so any difference is a
	// fault.
	ExactOutputs CompareMode = iota
	// QuantizedOutputs compares outputs rounded to Suite.Decimals
	// places, modelling an IP that exposes fixed-point scores.
	QuantizedOutputs
	// LabelsOnly compares only the argmax class.
	LabelsOnly
)

// String implements fmt.Stringer.
func (m CompareMode) String() string {
	switch m {
	case ExactOutputs:
		return "exact"
	case QuantizedOutputs:
		return "quantized"
	case LabelsOnly:
		return "labels"
	default:
		return "unknown"
	}
}

// Suite is the vendor's validation artefact: test inputs with their
// reference outputs.
type Suite struct {
	Name     string
	Inputs   []*tensor.Tensor
	Outputs  []*tensor.Tensor
	Mode     CompareMode
	Decimals int // used by QuantizedOutputs

	// quantRefs caches the Outputs quantised at quantRefDecimals, so the
	// quantised wire path does not re-encode the references on every
	// replay. It is populated at load time (OpenSuite) or propagated by
	// Prefix/Subset, and NEVER mutated afterwards — suites are copied by
	// value and replayed concurrently, so the cache must stay immutable.
	// Replay validates it against the current Decimals and output count
	// and quantises locally when it is missing or stale.
	quantRefs        []quant.Frame
	quantRefDecimals int
}

// quantRefsValid reports whether the load-time quantised-reference cache
// matches the suite's current decimals and outputs (Decimals is a public
// field callers may change after construction, which invalidates it).
func (s *Suite) quantRefsValid() bool {
	return s.quantRefs != nil && s.quantRefDecimals == s.Decimals && len(s.quantRefs) == len(s.Outputs)
}

// buildQuantRefs populates the quantised-reference cache for a
// QuantizedOutputs suite. Call only at construction time (OpenSuite),
// before the suite is shared.
func (s *Suite) buildQuantRefs() {
	if s.Mode != QuantizedOutputs {
		return
	}
	scale, err := quant.Scale(s.Decimals)
	if err != nil {
		return // invalid decimals surface on replay, not at load time
	}
	refs := make([]quant.Frame, len(s.Outputs))
	for i, o := range s.Outputs {
		refs[i] = quant.QuantizeFrame(o.Data(), scale)
	}
	s.quantRefs, s.quantRefDecimals = refs, s.Decimals
}

// replayQuantRefs returns one quantised reference frame per suite
// output: the load-time cache when it is valid, otherwise frames
// quantised here (kept local, not stored — replays may run concurrently
// on shared suites).
func (s *Suite) replayQuantRefs(scale float64) []quant.Frame {
	if s.quantRefsValid() {
		return s.quantRefs
	}
	refs := make([]quant.Frame, len(s.Outputs))
	for i, o := range s.Outputs {
		refs[i] = quant.QuantizeFrame(o.Data(), scale)
	}
	return refs
}

// BuildSuite runs the vendor side: compute the reference output of every
// test input on the golden network.
func BuildSuite(name string, net *nn.Network, tests []*tensor.Tensor, mode CompareMode) *Suite {
	s := &Suite{Name: name, Mode: mode, Decimals: 6}
	for _, x := range tests {
		s.Inputs = append(s.Inputs, x)
		s.Outputs = append(s.Outputs, net.Forward(x).Clone())
	}
	return s
}

// Report is the outcome of replaying a suite against an IP.
type Report struct {
	// Passed is true when every test matched.
	Passed bool
	// Mismatches counts failing tests.
	Mismatches int
	// FirstFailure is the index of the first failing test, -1 if none.
	FirstFailure int
	// Total is the number of tests replayed.
	Total int
}

// String implements fmt.Stringer.
func (r Report) String() string {
	if r.Passed {
		return fmt.Sprintf("PASS (%d tests)", r.Total)
	}
	return fmt.Sprintf("FAIL (%d/%d mismatched, first at %d)", r.Mismatches, r.Total, r.FirstFailure)
}

// Validate replays the suite against the IP one query at a time and
// compares outputs — the reference replay. It is Replay with the
// generic float comparison (Wire: WireGob) and no batching; ValidateWith
// batches and fans the same replay out, and all of them produce reports
// bit-identical to this one.
func (s *Suite) Validate(ip IP) (Report, error) {
	return s.Replay(ip, ReplayConfig{Wire: WireGob})
}

func (s *Suite) validateSerial(ip IP, tol float64) (Report, error) {
	if len(s.Inputs) != len(s.Outputs) {
		return Report{}, fmt.Errorf("validate: suite has %d inputs but %d outputs", len(s.Inputs), len(s.Outputs))
	}
	rep := Report{Passed: true, FirstFailure: -1, Total: len(s.Inputs)}
	for i, x := range s.Inputs {
		got, err := ip.Query(x)
		if err != nil {
			return Report{}, fmt.Errorf("validate: query %d: %w", i, err)
		}
		if !s.outputsMatch(s.Outputs[i], got, tol) {
			rep.Mismatches++
			if rep.FirstFailure < 0 {
				rep.FirstFailure = i
			}
			rep.Passed = false
		}
	}
	return rep, nil
}

// ValidateOptions tunes how a suite replay is driven. Any setting
// produces a report bit-identical to the serial single-query Validate:
// batching rides the bit-identical batched forward pass, and the
// concurrent workers replay disjoint contiguous index ranges whose
// partial reports merge associatively (mismatch counts sum, the first
// failure is the global minimum index).
type ValidateOptions struct {
	// Batch is the number of queries grouped into one QueryBatch
	// exchange when the IP supports it (BatchIP); values <= 1, or a
	// plain IP, replay one query at a time.
	Batch int
	// Concurrency is the number of worker goroutines replaying batches
	// in parallel; values <= 1 replay serially. Against a RemoteIP the
	// workers pipeline over one connection; against a ShardedIP they
	// spread across the replicas. The IP must be safe for concurrent
	// use when Concurrency > 1 — RemoteIP, ShardedIP and PooledIP are,
	// a bare LocalIP (one set of layer caches) is not.
	Concurrency int
	// Tolerance relaxes the output comparison for reduced-precision
	// replay: with Tolerance > 0 an output value matches its reference
	// when |want−got| <= Tolerance. The float32 serving path computes in
	// float32, so its outputs approximate the float64-recorded references
	// to rounding error and can never pass the bit-exact check; an
	// explicit epsilon (around 1e-4 for the engine's layer depths) makes
	// the acceptance criterion a visible, versioned choice instead of a
	// silent precision downgrade. Zero keeps the bit-exact comparison —
	// the paper's setting, and the only sound mode for float64 replay.
	//
	// Interaction with the comparison modes: ExactOutputs becomes the
	// epsilon comparison above; QuantizedOutputs additionally accepts a
	// pair whose rounded values differ when the raw values are within
	// Tolerance (a float32 output can land on the far side of a rounding
	// boundary); LabelsOnly ignores Tolerance (argmax is already
	// precision-robust).
	Tolerance float64
}

// ValidateWith replays the suite against the IP with batching and
// concurrency and returns the same report Validate would. It is a thin
// wrapper over Replay — ValidateOptions map field-for-field onto
// ReplayConfig (Concurrency is Workers) with the default WireAuto
// comparison, which takes the quantised wire path exactly when this
// method always has.
func (s *Suite) ValidateWith(ip IP, opts ValidateOptions) (Report, error) {
	return s.Replay(ip, ReplayConfig{Batch: opts.Batch, Workers: opts.Concurrency, Tolerance: opts.Tolerance})
}

// ReplayConfig tunes one suite replay — the single configuration every
// replay entry point (Validate, ValidateWith, Detects, DetectsWith, the
// sentinel daemon) feeds into the one internal replay engine. The zero
// value replays serially, one query per exchange, bit-exact, full scan,
// with the session-native comparison. Any setting produces the verdict
// the serial single-query replay would: batching rides the
// bit-identical batched forward pass, concurrent workers replay
// disjoint contiguous index ranges whose partial reports merge
// associatively, and the quantised wire comparison equals the local
// QuantizedOutputs comparison by construction.
type ReplayConfig struct {
	// Batch is the number of queries grouped into one QueryBatch
	// exchange when the IP supports it (BatchIP); values <= 1, or a
	// plain IP, replay one query at a time.
	Batch int
	// Workers is the number of goroutines replaying batches in
	// parallel; values <= 1 replay serially. Against a RemoteIP the
	// workers pipeline over one connection; against a ShardedIP they
	// spread across the replicas. The IP must be safe for concurrent
	// use when Workers > 1. Ignored under EarlyExit — exiting at the
	// first divergence is the point there, and detection campaigns
	// already parallelise across trials.
	Workers int
	// Tolerance relaxes the output comparison for reduced-precision
	// replay: with Tolerance > 0 an output value matches its reference
	// when |want−got| <= Tolerance (see ValidateOptions.Tolerance for
	// the mode interactions). Zero keeps the bit-exact comparison. A
	// Tolerance opts out of the quantised wire comparison — its
	// raw-value check needs the float outputs.
	Tolerance float64
	// EarlyExit stops the replay at the first divergent test — the
	// Detects behaviour. The report then covers only the scanned
	// prefix: Mismatches is 1, FirstFailure is the first divergent
	// index, and tests past it are not replayed (a fault is usually
	// caught within the first few tests, so early exit saves most of
	// the replay cost).
	EarlyExit bool
	// Wire selects the comparison path. WireAuto (the default) prefers
	// the dialect-native verdict: a QuantizedOutputs suite over an IP
	// with an active quantised wire session (and no Tolerance) compares
	// fixed-point wire frames directly. WireGob and WireF32 force the
	// generic float-tensor comparison on whatever the session delivers.
	// WireQuant requires the quantised path and fails the replay with a
	// descriptive error when the suite or session cannot provide it.
	Wire Wire
}

// Replay is the replay engine behind every validation entry point:
// replay the suite against the IP under cfg and report the verdict.
func (s *Suite) Replay(ip IP, cfg ReplayConfig) (Report, error) {
	if len(s.Inputs) != len(s.Outputs) {
		return Report{}, fmt.Errorf("validate: suite has %d inputs but %d outputs", len(s.Inputs), len(s.Outputs))
	}
	batch := cfg.Batch
	bip, batched := ip.(BatchIP)
	if !batched || batch < 1 {
		batch = 1
	}
	// The quantised wire path: a QuantizedOutputs suite over an active
	// quant-dialect IP replays in wire representation, comparing the
	// received fixed-point frames against the suite's own quantised
	// references — the verdicts are the QuantizedOutputs verdicts by
	// construction. A Tolerance opts out (its raw-value comparison
	// needs the float outputs), falling back to the generic path.
	qip, quantOK := ip.(QuantIP)
	quantOK = quantOK && qip.QuantWire() && s.Mode == QuantizedOutputs && cfg.Tolerance == 0
	var quantPath bool
	switch cfg.Wire {
	case WireAuto:
		quantPath = quantOK
	case WireQuant:
		if !quantOK {
			return Report{}, fmt.Errorf("validate: ReplayConfig.Wire WireQuant needs a quantized-mode suite over an active quantised-dialect IP with no Tolerance (suite mode %s)", s.Mode)
		}
		quantPath = true
	default:
		// WireGob / WireF32: the generic float comparison on whatever
		// frames the session carries.
	}
	var qscale float64
	var qrefs []quant.Frame
	if quantPath {
		var err error
		if qscale, err = quant.Scale(s.Decimals); err != nil {
			return Report{}, fmt.Errorf("validate: quant wire replay: %w", err)
		}
		// Resolve the quantised references once per replay — the sealed
		// suite's load-time cache when valid — so the per-exchange loop
		// ships frames without re-encoding them.
		qrefs = s.replayQuantRefs(qscale)
	}
	if cfg.EarlyExit {
		return s.replayEarlyExit(ip, bip, qip, quantPath, qscale, qrefs, batch, cfg.Tolerance)
	}
	return s.replayFull(ip, bip, qip, quantPath, qscale, qrefs, batch, cfg.Workers, cfg.Tolerance)
}

// replayFull is the full-scan drive loop of the replay engine: every
// test replayed, partial reports merged in index order.
func (s *Suite) replayFull(ip IP, bip BatchIP, qip QuantIP, quantPath bool, qscale float64, qrefs []quant.Frame, batch, workersCfg int, tol float64) (Report, error) {
	n := len(s.Inputs)
	workers := parallel.Workers(workersCfg)
	if !quantPath && batch == 1 && workers <= 1 {
		return s.validateSerial(ip, tol)
	}
	if n == 0 {
		return Report{Passed: true, FirstFailure: -1}, nil
	}

	numBatches := (n + batch - 1) / batch
	type partial struct {
		mismatches, first int
		err               error
		errLo, errHi      int // suite index range of the failed exchange
	}
	parts := make([]partial, parallel.Effective(numBatches, workers))
	parallel.For(numBatches, workers, func(w, lo, hi int) {
		p := &parts[w]
		p.first = -1
		for bi := lo; bi < hi && p.err == nil; bi++ {
			start := bi * batch
			end := min(start+batch, n)
			if quantPath {
				frames, err := s.queryQuantRange(qip, start, end, qrefs)
				if err != nil {
					p.err, p.errLo, p.errHi = err, start, end-1
					return
				}
				for i := start; i < end; i++ {
					if !quantFrameMatches(s.Outputs[i], frames[i-start], qscale) {
						p.mismatches++
						if p.first < 0 {
							p.first = i
						}
					}
				}
				continue
			}
			var got []*tensor.Tensor
			var err error
			if batch > 1 {
				got, err = bip.QueryBatch(s.Inputs[start:end])
				if err == nil && len(got) != end-start {
					err = fmt.Errorf("batch answered %d outputs for %d queries", len(got), end-start)
				}
			} else {
				var out *tensor.Tensor
				if out, err = ip.Query(s.Inputs[start]); err == nil {
					got = []*tensor.Tensor{out}
				}
			}
			if err != nil {
				p.err, p.errLo, p.errHi = err, start, end-1
				return
			}
			for i := start; i < end; i++ {
				if !s.outputsMatch(s.Outputs[i], got[i-start], tol) {
					p.mismatches++
					if p.first < 0 {
						p.first = i
					}
				}
			}
		}
	})

	rep := Report{Passed: true, FirstFailure: -1, Total: n}
	for _, p := range parts {
		// Workers own ascending index ranges, so the first error (and
		// first failure) across parts in slice order is the lowest-index
		// one — the one the serial replay would have hit first. A failed
		// batched exchange is attributed to its whole index range: any
		// query in it may be the culprit.
		if p.err != nil {
			return Report{}, fmt.Errorf("validate: %s: %w", queryRange(p.errLo, p.errHi), p.err)
		}
		rep.Mismatches += p.mismatches
		if p.first >= 0 && (rep.FirstFailure < 0 || p.first < rep.FirstFailure) {
			rep.FirstFailure = p.first
		}
	}
	rep.Passed = rep.Mismatches == 0
	return rep, nil
}

// queryQuantRange runs one quantised wire exchange for suite tests
// [start,end): the pre-resolved reference frames (load-time cache or
// per-replay quantisation, resolved once in Replay) ship as the response
// delta base, and the answer frames return for the direct
// wire-representation comparison.
func (s *Suite) queryQuantRange(qip QuantIP, start, end int, qrefs []quant.Frame) ([]quant.Frame, error) {
	frames, err := qip.QueryQuant(s.Inputs[start:end], qrefs[start:end], s.Decimals)
	if err == nil && len(frames) != end-start {
		err = fmt.Errorf("batch answered %d outputs for %d queries", len(frames), end-start)
	}
	if err != nil {
		return nil, err
	}
	return frames, nil
}

// quantFrameMatches is the per-test verdict of the quantised wire
// path: every received fixed-point value must equal the quantised
// reference — quant.Fixed.Matches, the QuantizedOutputs comparison on
// the wire representation.
func quantFrameMatches(want *tensor.Tensor, got quant.Frame, scale float64) bool {
	if want.Size() != len(got) {
		return false
	}
	for i, v := range want.Data() {
		if !got[i].Matches(v, scale) {
			return false
		}
	}
	return true
}

func (s *Suite) outputsMatch(want, got *tensor.Tensor, tol float64) bool {
	if want.Size() != got.Size() {
		return false
	}
	switch s.Mode {
	case LabelsOnly:
		return want.Argmax() == got.Argmax()
	case QuantizedOutputs:
		scale := math.Pow(10, float64(s.Decimals))
		for i := range want.Data() {
			if math.Round(want.Data()[i]*scale) != math.Round(got.Data()[i]*scale) &&
				!withinTol(want.Data()[i], got.Data()[i], tol) {
				return false
			}
		}
		return true
	default: // ExactOutputs
		for i := range want.Data() {
			if tol > 0 {
				if !withinTol(want.Data()[i], got.Data()[i], tol) {
					return false
				}
			} else if want.Data()[i] != got.Data()[i] {
				return false
			}
		}
		return true
	}
}

// withinTol reports |want−got| <= tol for a positive tol; a zero or
// negative tolerance never matches (the caller falls back to its exact
// comparison).
func withinTol(want, got, tol float64) bool {
	return tol > 0 && math.Abs(want-got) <= tol
}

// Len returns the number of tests in the suite.
func (s *Suite) Len() int { return len(s.Inputs) }

// Detects reports whether replaying the suite against the IP exposes
// any mismatch, returning at the first failing test. Detection
// campaigns use this instead of Validate: a fault is usually caught by
// one of the first tests, so early exit saves most of the replay cost.
// It is Replay with EarlyExit and the generic float comparison.
func (s *Suite) Detects(ip IP) (bool, error) {
	rep, err := s.Replay(ip, ReplayConfig{EarlyExit: true, Wire: WireGob})
	if err != nil {
		return false, err
	}
	return !rep.Passed, nil
}

// detectsSerial is the serial early-exit scan: the index of the first
// divergent test, -1 when every test matches.
func (s *Suite) detectsSerial(ip IP, tol float64) (int, error) {
	for i, x := range s.Inputs {
		got, err := ip.Query(x)
		if err != nil {
			return -1, fmt.Errorf("validate: query %d: %w", i, err)
		}
		if !s.outputsMatch(s.Outputs[i], got, tol) {
			return i, nil
		}
	}
	return -1, nil
}

// DetectsWith is Detects with batched queries: the replay walks the
// suite in order but groups opts.Batch tests per QueryBatch exchange,
// exiting at the first batch containing a mismatch. The boolean answer
// is identical to Detects at any batch size; a fault caught by test i
// costs at most a batch's worth of extra queries past i. Concurrency is
// ignored — early exit is the point of Detects, and detection campaigns
// already parallelise across trials. It is a thin wrapper over Replay
// with EarlyExit set and the default WireAuto comparison, which takes
// the quantised wire path exactly when this method always has.
func (s *Suite) DetectsWith(ip IP, opts ValidateOptions) (bool, error) {
	rep, err := s.Replay(ip, ReplayConfig{Batch: opts.Batch, Tolerance: opts.Tolerance, EarlyExit: true})
	if err != nil {
		return false, err
	}
	return !rep.Passed, nil
}

// replayEarlyExit is the early-exit drive loop of the replay engine:
// walk the suite in order, batch by batch, and stop at the first batch
// containing a divergence. The returned report covers the scanned
// prefix only — Mismatches is 1 and FirstFailure the first divergent
// index — but Total is still the full suite size, and a clean scan
// returns the same all-pass report the full replay would.
func (s *Suite) replayEarlyExit(ip IP, bip BatchIP, qip QuantIP, quantPath bool, qscale float64, qrefs []quant.Frame, batch int, tol float64) (Report, error) {
	n := len(s.Inputs)
	failAt := func(i int) Report {
		return Report{Passed: false, Mismatches: 1, FirstFailure: i, Total: n}
	}
	pass := Report{Passed: true, FirstFailure: -1, Total: n}
	if quantPath {
		for start := 0; start < n; start += batch {
			end := min(start+batch, n)
			frames, err := s.queryQuantRange(qip, start, end, qrefs)
			if err != nil {
				return Report{}, fmt.Errorf("validate: %s: %w", queryRange(start, end-1), err)
			}
			for i := start; i < end; i++ {
				if !quantFrameMatches(s.Outputs[i], frames[i-start], qscale) {
					return failAt(i), nil
				}
			}
		}
		return pass, nil
	}
	if batch == 1 {
		first, err := s.detectsSerial(ip, tol)
		if err != nil {
			return Report{}, err
		}
		if first >= 0 {
			return failAt(first), nil
		}
		return pass, nil
	}
	for start := 0; start < n; start += batch {
		end := min(start+batch, n)
		got, err := bip.QueryBatch(s.Inputs[start:end])
		if err != nil {
			return Report{}, fmt.Errorf("validate: %s: %w", queryRange(start, end-1), err)
		}
		if len(got) != end-start {
			return Report{}, fmt.Errorf("validate: %s: batch answered %d outputs for %d queries", queryRange(start, end-1), len(got), end-start)
		}
		for i := start; i < end; i++ {
			if !s.outputsMatch(s.Outputs[i], got[i-start], tol) {
				return failAt(i), nil
			}
		}
	}
	return pass, nil
}

// Prefix returns a suite consisting of the first n tests (sharing the
// underlying tensors). Greedy generators are prefix-consistent, so this
// is how detection tables grow N without regenerating.
func (s *Suite) Prefix(n int) *Suite {
	if n > len(s.Inputs) {
		n = len(s.Inputs)
	}
	p := &Suite{
		Name:     fmt.Sprintf("%s[:%d]", s.Name, n),
		Inputs:   s.Inputs[:n],
		Outputs:  s.Outputs[:n],
		Mode:     s.Mode,
		Decimals: s.Decimals,
	}
	if s.quantRefsValid() {
		p.quantRefs, p.quantRefDecimals = s.quantRefs[:n], s.quantRefDecimals
	}
	return p
}

// Subset returns a suite view of the selected tests, in the given
// order, sharing the underlying tensors. The sentinel daemon replays
// randomised subsets through this: a subset verdict is the full-suite
// verdict restricted to those indices, so a subset mismatch is a real
// divergence (never a sampling artefact), while a subset pass only
// bounds the evidence by the sample.
func (s *Suite) Subset(indices []int) (*Suite, error) {
	sub := &Suite{
		Name:     fmt.Sprintf("%s[sub:%d]", s.Name, len(indices)),
		Inputs:   make([]*tensor.Tensor, 0, len(indices)),
		Outputs:  make([]*tensor.Tensor, 0, len(indices)),
		Mode:     s.Mode,
		Decimals: s.Decimals,
	}
	refs := s.quantRefsValid()
	if refs {
		sub.quantRefs = make([]quant.Frame, 0, len(indices))
		sub.quantRefDecimals = s.quantRefDecimals
	}
	for _, i := range indices {
		if i < 0 || i >= len(s.Inputs) || i >= len(s.Outputs) {
			return nil, fmt.Errorf("validate: subset index %d out of range (suite has %d tests)", i, s.Len())
		}
		sub.Inputs = append(sub.Inputs, s.Inputs[i])
		sub.Outputs = append(sub.Outputs, s.Outputs[i])
		if refs {
			sub.quantRefs = append(sub.quantRefs, s.quantRefs[i])
		}
	}
	return sub, nil
}
