// Package validate implements the paper's validation scheme (Fig. 1):
// the IP vendor generates functional tests X, computes reference outputs
// Y, seals both, and ships them with the black-box IP; the user replays
// X and compares the IP's outputs Y′ against Y. Any mismatch means the
// IP's parameters were perturbed in a way the suite activates.
//
// The user-side comparison supports three modes: exact output vectors
// (the paper's "are Y and Y′ identical?"), quantised outputs (fixed
// decimal places, modelling an IP that exposes fixed-point scores), and
// labels only (an IP that exposes nothing but the argmax class).
package validate

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// IP is the black-box interface an IP user has: feed an input, get the
// output vector. No parameters, no intermediate results.
type IP interface {
	Query(x *tensor.Tensor) (*tensor.Tensor, error)
}

// LocalIP adapts an in-process network to the IP interface.
type LocalIP struct {
	Net *nn.Network
}

// Query implements IP.
func (ip LocalIP) Query(x *tensor.Tensor) (*tensor.Tensor, error) {
	return ip.Net.Forward(x).Clone(), nil
}

// CompareMode selects how reference and observed outputs are compared.
type CompareMode int

// Comparison modes.
const (
	// ExactOutputs requires bit-identical output vectors — the paper's
	// setting: a digital IP is deterministic, so any difference is a
	// fault.
	ExactOutputs CompareMode = iota
	// QuantizedOutputs compares outputs rounded to Suite.Decimals
	// places, modelling an IP that exposes fixed-point scores.
	QuantizedOutputs
	// LabelsOnly compares only the argmax class.
	LabelsOnly
)

// String implements fmt.Stringer.
func (m CompareMode) String() string {
	switch m {
	case ExactOutputs:
		return "exact"
	case QuantizedOutputs:
		return "quantized"
	case LabelsOnly:
		return "labels"
	default:
		return "unknown"
	}
}

// Suite is the vendor's validation artefact: test inputs with their
// reference outputs.
type Suite struct {
	Name     string
	Inputs   []*tensor.Tensor
	Outputs  []*tensor.Tensor
	Mode     CompareMode
	Decimals int // used by QuantizedOutputs
}

// BuildSuite runs the vendor side: compute the reference output of every
// test input on the golden network.
func BuildSuite(name string, net *nn.Network, tests []*tensor.Tensor, mode CompareMode) *Suite {
	s := &Suite{Name: name, Mode: mode, Decimals: 6}
	for _, x := range tests {
		s.Inputs = append(s.Inputs, x)
		s.Outputs = append(s.Outputs, net.Forward(x).Clone())
	}
	return s
}

// Report is the outcome of replaying a suite against an IP.
type Report struct {
	// Passed is true when every test matched.
	Passed bool
	// Mismatches counts failing tests.
	Mismatches int
	// FirstFailure is the index of the first failing test, -1 if none.
	FirstFailure int
	// Total is the number of tests replayed.
	Total int
}

// String implements fmt.Stringer.
func (r Report) String() string {
	if r.Passed {
		return fmt.Sprintf("PASS (%d tests)", r.Total)
	}
	return fmt.Sprintf("FAIL (%d/%d mismatched, first at %d)", r.Mismatches, r.Total, r.FirstFailure)
}

// Validate replays the suite against the IP and compares outputs.
func (s *Suite) Validate(ip IP) (Report, error) {
	if len(s.Inputs) != len(s.Outputs) {
		return Report{}, fmt.Errorf("validate: suite has %d inputs but %d outputs", len(s.Inputs), len(s.Outputs))
	}
	rep := Report{Passed: true, FirstFailure: -1, Total: len(s.Inputs)}
	for i, x := range s.Inputs {
		got, err := ip.Query(x)
		if err != nil {
			return Report{}, fmt.Errorf("validate: query %d: %w", i, err)
		}
		if !s.outputsMatch(s.Outputs[i], got) {
			rep.Mismatches++
			if rep.FirstFailure < 0 {
				rep.FirstFailure = i
			}
			rep.Passed = false
		}
	}
	return rep, nil
}

func (s *Suite) outputsMatch(want, got *tensor.Tensor) bool {
	if want.Size() != got.Size() {
		return false
	}
	switch s.Mode {
	case LabelsOnly:
		return want.Argmax() == got.Argmax()
	case QuantizedOutputs:
		scale := math.Pow(10, float64(s.Decimals))
		for i := range want.Data() {
			if math.Round(want.Data()[i]*scale) != math.Round(got.Data()[i]*scale) {
				return false
			}
		}
		return true
	default: // ExactOutputs
		for i := range want.Data() {
			if want.Data()[i] != got.Data()[i] {
				return false
			}
		}
		return true
	}
}

// Len returns the number of tests in the suite.
func (s *Suite) Len() int { return len(s.Inputs) }

// Detects reports whether replaying the suite against the IP exposes
// any mismatch, returning at the first failing test. Detection
// campaigns use this instead of Validate: a fault is usually caught by
// one of the first tests, so early exit saves most of the replay cost.
func (s *Suite) Detects(ip IP) (bool, error) {
	if len(s.Inputs) != len(s.Outputs) {
		return false, fmt.Errorf("validate: suite has %d inputs but %d outputs", len(s.Inputs), len(s.Outputs))
	}
	for i, x := range s.Inputs {
		got, err := ip.Query(x)
		if err != nil {
			return false, fmt.Errorf("validate: query %d: %w", i, err)
		}
		if !s.outputsMatch(s.Outputs[i], got) {
			return true, nil
		}
	}
	return false, nil
}

// Prefix returns a suite consisting of the first n tests (sharing the
// underlying tensors). Greedy generators are prefix-consistent, so this
// is how detection tables grow N without regenerating.
func (s *Suite) Prefix(n int) *Suite {
	if n > len(s.Inputs) {
		n = len(s.Inputs)
	}
	return &Suite{
		Name:     fmt.Sprintf("%s[:%d]", s.Name, n),
		Inputs:   s.Inputs[:n],
		Outputs:  s.Outputs[:n],
		Mode:     s.Mode,
		Decimals: s.Decimals,
	}
}
