package validate

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// PooledIP adapts an in-process network to concurrent validation. A
// bare LocalIP can serve one evaluation at a time (layers cache
// per-input state between forward and backward), so replaying a suite
// with ValidateOptions.Concurrency > 1 against it would race; PooledIP
// checks each query batch out onto a clone from an nn.ClonePool —
// exactly how the network Server evaluates — making it safe for any
// number of concurrent callers while staying bit-identical to LocalIP.
type PooledIP struct {
	clones *nn.ClonePool
}

// NewPooledIP builds a concurrent local IP over workers clones of
// network (workers <= 0 gets one clone).
func NewPooledIP(network *nn.Network, workers int) *PooledIP {
	return &PooledIP{clones: nn.NewClonePool(network, workers)}
}

// Query implements IP.
func (ip *PooledIP) Query(x *tensor.Tensor) (*tensor.Tensor, error) {
	out, err := ip.QueryBatch([]*tensor.Tensor{x})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// QueryBatch implements BatchIP.
func (ip *PooledIP) QueryBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(xs) == 0 {
		return nil, &QueryError{Msg: "validate: empty query batch"}
	}
	clone := ip.clones.Acquire()
	defer ip.clones.Release(clone)
	out, err := evalOn(clone, xs)
	if err != nil {
		return nil, &QueryError{Msg: err.Error()}
	}
	return out, nil
}

// SyncParamsFrom refreshes the clones' parameters from src; see
// nn.ClonePool.SyncParamsFrom.
func (ip *PooledIP) SyncParamsFrom(src *nn.Network) { ip.clones.SyncParamsFrom(src) }

// PooledF32IP is PooledIP on the float32 inference path: queries are
// quantised to float32, evaluated on a ClonePoolF32 clone, and the
// outputs widened back — the in-process equivalent of a v3 session
// against an -f32 server. Outputs approximate the float64 reference to
// rounding error, so suite replay against it must use
// ValidateOptions.Tolerance.
type PooledF32IP struct {
	clones *nn.ClonePoolF32
}

// NewPooledF32IP builds a concurrent float32 local IP over workers
// clones converted from network (workers <= 0 gets one clone).
func NewPooledF32IP(network *nn.Network, workers int) *PooledF32IP {
	return &PooledF32IP{clones: nn.NewClonePoolF32(network, workers)}
}

// Query implements IP.
func (ip *PooledF32IP) Query(x *tensor.Tensor) (*tensor.Tensor, error) {
	out, err := ip.QueryBatch([]*tensor.Tensor{x})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// QueryBatch implements BatchIP.
func (ip *PooledF32IP) QueryBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(xs) == 0 {
		return nil, &QueryError{Msg: "validate: empty query batch"}
	}
	xs32 := make([]*tensor.T32, len(xs))
	for i, x := range xs {
		xs32[i] = x.F32()
	}
	clone := ip.clones.Acquire()
	defer ip.clones.Release(clone)
	out32, err := evalOnF32(clone, xs32)
	if err != nil {
		return nil, &QueryError{Msg: err.Error()}
	}
	out := make([]*tensor.Tensor, len(out32))
	for i, o := range out32 {
		out[i] = o.F64()
	}
	return out, nil
}

// SyncParamsFrom re-quantises the clones' parameters from the float64
// master; see nn.ClonePoolF32.
func (ip *PooledF32IP) SyncParamsFrom(src *nn.Network) { ip.clones.SyncParamsFrom(src) }
