package validate

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// PooledIP adapts an in-process network to concurrent validation. A
// bare LocalIP can serve one evaluation at a time (layers cache
// per-input state between forward and backward), so replaying a suite
// with ValidateOptions.Concurrency > 1 against it would race; PooledIP
// checks each query batch out onto a clone from an nn.ClonePool —
// exactly how the network Server evaluates — making it safe for any
// number of concurrent callers while staying bit-identical to LocalIP.
type PooledIP struct {
	clones *nn.ClonePool
}

// NewPooledIP builds a concurrent local IP over workers clones of
// network (workers <= 0 gets one clone).
func NewPooledIP(network *nn.Network, workers int) *PooledIP {
	return &PooledIP{clones: nn.NewClonePool(network, workers)}
}

// Query implements IP.
func (ip *PooledIP) Query(x *tensor.Tensor) (*tensor.Tensor, error) {
	out, err := ip.QueryBatch([]*tensor.Tensor{x})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// QueryBatch implements BatchIP.
func (ip *PooledIP) QueryBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(xs) == 0 {
		return nil, &QueryError{Msg: "validate: empty query batch"}
	}
	clone := ip.clones.Acquire()
	defer ip.clones.Release(clone)
	out, err := evalOn(clone, xs)
	if err != nil {
		return nil, &QueryError{Msg: err.Error()}
	}
	return out, nil
}

// SyncParamsFrom refreshes the clones' parameters from src; see
// nn.ClonePool.SyncParamsFrom.
func (ip *PooledIP) SyncParamsFrom(src *nn.Network) { ip.clones.SyncParamsFrom(src) }
