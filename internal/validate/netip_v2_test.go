package validate

import (
	"encoding/gob"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// testInputs returns n deterministic in-domain inputs for the golden
// network.
func testInputs(n int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]*tensor.Tensor, n)
	for i := range xs {
		xs[i] = tensor.New(1, 10, 10)
		xs[i].FillNormal(rng, 0.5, 0.2)
		xs[i].Clamp(0, 1)
	}
	return xs
}

// TestRemoteQueryBatchMatchesLocal: a batched wire exchange must return
// outputs bit-identical to local per-sample forwards.
func TestRemoteQueryBatchMatchesLocal(t *testing.T) {
	_, addr := startServer(t)
	ip, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()

	xs := testInputs(7, 11)
	local := LocalIP{Net: goldenNet()}
	got, err := ip.QueryBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(xs) {
		t.Fatalf("got %d outputs for %d queries", len(got), len(xs))
	}
	for i, x := range xs {
		want, err := local.Query(x)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.Data() {
			if got[i].Data()[j] != want.Data()[j] {
				t.Fatalf("batched remote output %d differs at %d", i, j)
			}
		}
	}
}

// TestConcurrentClientsOneServer: many simultaneous client connections
// against one server must all get bit-identical answers. Run under
// -race this is the no-global-mutex test: handlers evaluate
// concurrently on pooled clones, and any shared-state race between them
// would fire here.
func TestConcurrentClientsOneServer(t *testing.T) {
	_, addr := startServer(t)
	xs := testInputs(6, 21)
	wants := make([]*tensor.Tensor, len(xs))
	local := LocalIP{Net: goldenNet()}
	for i, x := range xs {
		w, err := local.Query(x)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ip, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer ip.Close()
			for round := 0; round < 5; round++ {
				i := (c + round) % len(xs)
				var got *tensor.Tensor
				if round%2 == 0 {
					got, err = ip.Query(xs[i])
				} else {
					var outs []*tensor.Tensor
					outs, err = ip.QueryBatch(xs[i : i+1])
					if err == nil {
						got = outs[0]
					}
				}
				if err != nil {
					errs <- err
					return
				}
				for j := range wants[i].Data() {
					if got.Data()[j] != wants[i].Data()[j] {
						errs <- errors.New("concurrent client saw a wrong answer")
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRemoteSharedClientPipelining: one RemoteIP used by many
// goroutines must pipeline safely over its single connection, every
// caller getting its own matching response.
func TestRemoteSharedClientPipelining(t *testing.T) {
	_, addr := startServer(t)
	ip, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()

	xs := testInputs(5, 31)
	wants := make([]*tensor.Tensor, len(xs))
	local := LocalIP{Net: goldenNet()}
	for i, x := range xs {
		w, qerr := local.Query(x)
		if qerr != nil {
			t.Fatal(qerr)
		}
		wants[i] = w
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				i := (g + round) % len(xs)
				got, err := ip.Query(xs[i])
				if err != nil {
					errs <- err
					return
				}
				for j := range wants[i].Data() {
					if got.Data()[j] != wants[i].Data()[j] {
						errs <- errors.New("pipelined response mismatched its request")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestV1ClientGetsVersionMismatchError: a pre-handshake (v1) client
// opens with a bare gob request; the v2 server must answer in the v1
// response dialect with a descriptive version error, not break the gob
// stream.
func TestV1ClientGetsVersionMismatchError(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	// Speak v1: encode a single-input request with no preamble.
	x := testInputs(1, 41)[0]
	if err := gob.NewEncoder(conn).Encode(queryRequest{Input: toWire(x)}); err != nil {
		t.Fatal(err)
	}
	var resp queryResponse
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("v1 client could not decode the server's reply: %v", err)
	}
	if !strings.Contains(resp.Err, "protocol version mismatch") {
		t.Fatalf("v1 client error = %q, want a version mismatch explanation", resp.Err)
	}
}

// TestV2ClientAgainstSilentCloser: a server that closes during the
// handshake (as a v1 server, expecting bare gob, would after failing to
// decode our preamble) must produce a descriptive dial error.
func TestV2ClientAgainstSilentCloser(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		var buf [5]byte
		io.ReadFull(conn, buf[:]) // consume the hello like a confused v1 decoder
		conn.Close()              // and hang up without replying
	}()
	_, err = Dial(l.Addr().String())
	if err == nil {
		t.Fatal("dial to a handshake-less server succeeded")
	}
	if !strings.Contains(err.Error(), "handshake") {
		t.Fatalf("dial error = %v, want a handshake explanation", err)
	}
}

// TestV2ClientAgainstFutureVersion: a server advertising a different
// protocol version must be reported by number, not as a decode failure.
func TestV2ClientAgainstFutureVersion(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var buf [5]byte
		io.ReadFull(conn, buf[:])
		conn.Write([]byte{'D', 'N', 'N', 'V', 99})
	}()
	_, err = Dial(l.Addr().String())
	if err == nil || !strings.Contains(err.Error(), "server speaks v99") {
		t.Fatalf("dial error = %v, want a v99 version mismatch", err)
	}
}

// TestV2ClientAgainstForeignService: a service that answers with
// something other than the protocol magic is not a dnnval endpoint.
func TestV2ClientAgainstForeignService(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Write([]byte("HTTP/1.1 400 Bad Request\r\n"))
	}()
	_, err = Dial(l.Addr().String())
	if err == nil || !strings.Contains(err.Error(), "not a dnnval IP endpoint") {
		t.Fatalf("dial error = %v, want a bad-magic explanation", err)
	}
}

// TestReadTimeoutOnHungServer: a server that completes the handshake
// and then goes silent must fail the query within the configured read
// timeout, with an error that says what happened — not block forever.
func TestReadTimeoutOnHungServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var buf [5]byte
		if _, err := io.ReadFull(conn, buf[:]); err != nil {
			return
		}
		conn.Write(preambleV(protocolV2))
		// Read the request so the client's send succeeds, then hang.
		io.Copy(io.Discard, conn)
	}()

	ip, err := DialWith(l.Addr().String(), DialOptions{ReadTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	done := make(chan error, 1)
	go func() {
		_, qerr := ip.Query(testInputs(1, 51)[0])
		done <- qerr
	}()
	select {
	case qerr := <-done:
		if qerr == nil {
			t.Fatal("query against a hung server succeeded")
		}
		if !strings.Contains(qerr.Error(), "server hung or unreachable") {
			t.Fatalf("hung-server error = %v, want a timeout explanation", qerr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query against a hung server blocked past its read timeout")
	}
}

// TestServerCloseUnblocksIdleClients: Close must drain and return even
// while clients are connected and idle. (The v1 server's Close waited
// for every client to hang up first — a regression guard on the drain.)
func TestServerCloseUnblocksIdleClients(t *testing.T) {
	srv, addr := startServer(t)
	ip, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	// Prove the session is live, then leave it idle.
	if _, err := ip.Query(testInputs(1, 61)[0]); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close with an idle client: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked on an idle client connection")
	}
	// The poisoned session reports the failure on its next use.
	if _, err := ip.Query(testInputs(1, 62)[0]); err == nil {
		t.Fatal("query on a drained connection succeeded")
	}
}

// TestServerCloseDrainsInFlight: requests pipelined before Close are
// either answered correctly or failed with a transport error — never a
// wrong answer, never a hang — and Close itself completes.
func TestServerCloseDrainsInFlight(t *testing.T) {
	srv, addr := startServer(t)
	ip, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	xs := testInputs(4, 71)
	want, err := LocalIP{Net: goldenNet()}.Query(xs[0])
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	bad := make(chan string, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				got, qerr := ip.Query(xs[0])
				if qerr != nil {
					return // transport failure during shutdown is fine
				}
				for j := range want.Data() {
					if got.Data()[j] != want.Data()[j] {
						bad <- "wrong answer during drain"
						return
					}
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close during traffic: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked while draining in-flight requests")
	}
	wg.Wait()
	close(bad)
	for msg := range bad {
		t.Fatal(msg)
	}
}

// TestServerHotParamSync: SyncParamsFrom must atomically repoint the
// served parameters; queries after it see the new model.
func TestServerHotParamSync(t *testing.T) {
	srv, addr := startServer(t)
	ip, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()

	x := testInputs(1, 81)[0]
	before, err := ip.Query(x)
	if err != nil {
		t.Fatal(err)
	}
	tampered := goldenNet().Clone()
	tampered.SetParamAt(0, tampered.ParamAt(0)+3)
	srv.SyncParamsFrom(tampered)
	after, err := ip.Query(x)
	if err != nil {
		t.Fatal(err)
	}
	want := tampered.Forward(x)
	same := true
	for j := range want.Data() {
		if after.Data()[j] != want.Data()[j] {
			t.Fatalf("post-sync output differs from tampered model at %d", j)
		}
		if after.Data()[j] != before.Data()[j] {
			same = false
		}
	}
	if same {
		t.Fatal("hot parameter sync did not change the served outputs")
	}
}

// TestRemoteEmptyBatchRejected: an empty batch is a QueryError, locally
// rejected without a wire exchange.
func TestRemoteEmptyBatchRejected(t *testing.T) {
	_, addr := startServer(t)
	ip, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	var qe *QueryError
	if _, err := ip.QueryBatch(nil); !errors.As(err, &qe) {
		t.Fatalf("empty batch error = %v, want QueryError", err)
	}
}
