package validate

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// FuzzDecodeFrame drives every wire decoder that parses peer-supplied
// bytes with arbitrary input: the v4 replay-frame resolver (reference
// block + raw-bits inputs), the v4 client-side output decoder, and the
// v2/v3 float tensor validators. None may panic or let a hostile
// length drive an allocation; whatever they accept must satisfy the
// decoded invariants. CI runs this natively (go test -fuzz) for a
// smoke interval on every PR alongside internal/quant's codec fuzzer;
// the seed corpus under testdata/fuzz pins one interesting input per
// lane.
func FuzzDecodeFrame(f *testing.F) {
	scale, _ := quant.Scale(6)
	refs := quant.AppendFrame(nil, quant.QuantizeFrame([]float64{1.5, -2.25}, scale), nil)
	x := tensor.FromSlice([]float64{0.25, 0.75}, 2)
	bits := toWireBits(x).Bits
	// One seed per lane, plus a hostile-length probe.
	f.Add(refs, 2, 1, 2, uint8(6), uint8(0))
	f.Add(bits, 2, 1, 0, uint8(6), uint8(0))
	f.Add(refs, 2, 1, 2, uint8(6), uint8(1))
	f.Add(bits, 2, 1, 2, uint8(6), uint8(2))
	f.Add([]byte{0}, math.MaxInt/2, 3, math.MaxInt, uint8(200), uint8(0))

	f.Fuzz(func(t *testing.T, payload []byte, d0, d1, refn int, decimals, lane uint8) {
		shape := []int{d0, d1}
		switch lane % 3 {
		case 0:
			// Server side of v4: a freshly received replay frame, its
			// reference block and raw-bits inputs both hostile.
			fr := &frameV4{
				Inputs:   []wireBits{{Shape: shape, Bits: payload}},
				Refs:     payload,
				RefN:     []int{refn},
				Decimals: decimals,
			}
			sf, err := resolveFrameV4(fr)
			if err != nil {
				return
			}
			if len(sf.inputs) != 1 || sf.inputs[0].Size()*8 != len(payload) {
				t.Fatalf("accepted frame decoded %d inputs (size %d) from %d payload bytes",
					len(sf.inputs), sf.inputs[0].Size(), len(payload))
			}
			if _, err := quant.Scale(int(decimals)); err != nil {
				t.Fatalf("frame accepted with out-of-range decimals %d", decimals)
			}
		case 1:
			// Client side of v4: a response's quantised output frames,
			// chained (nil refs) and against a reference base.
			outs := []wireQuant{{Shape: shape, Data: payload}, {Shape: []int{refn}, Data: payload}}
			base := []quant.Frame{quant.QuantizeFrame([]float64{1.5, -2.25}, scale), nil}
			for _, rf := range [][]quant.Frame{nil, base} {
				frames, shapes, err := decodeQuantOutputs(outs, rf)
				if err != nil {
					continue
				}
				if len(frames) != len(outs) || len(shapes) != len(outs) {
					t.Fatalf("accepted response decoded %d frames for %d outputs", len(frames), len(outs))
				}
				for i, fr := range frames {
					n, err := shapeSize(shapes[i])
					if err != nil || len(fr) != n {
						t.Fatalf("output %d: %d values for shape %v (%v)", i, len(fr), shapes[i], err)
					}
				}
			}
		case 2:
			// The v2/v3 dialects: float64 and float32 wire tensors with
			// hostile shapes. Payload bytes become the float data so the
			// length checks are exercised against real sizes.
			vals := make([]float64, len(payload)/8)
			for i := range vals {
				vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
			}
			if got, err := fromWire(wireTensor{Shape: shape, Data: vals}); err == nil {
				if got.Size() != len(vals) {
					t.Fatalf("v2 tensor accepted with %d values for size %d", len(vals), got.Size())
				}
			}
			vals32 := make([]float32, len(payload)/4)
			for i := range vals32 {
				vals32[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
			}
			if got, err := fromWire32T32(wireTensor32{Shape: shape, Data: vals32}); err == nil {
				if got.Size() != len(vals32) {
					t.Fatalf("v3 tensor accepted with %d values for size %d", len(vals32), got.Size())
				}
			}
		}
	})
}
