package validate

import (
	"net"
	"testing"
	"time"
)

// The metrics layer reports bytes from these counters, so they are
// pinned by tests: handshake accounting, per-dialect ordering, the
// per-replica/fleet-total invariant, and survival across probe
// re-dials.

// TestWireStatsHandshakeBytes: a fresh session has exchanged exactly
// the 5-byte hello in each direction and nothing else.
func TestWireStatsHandshakeBytes(t *testing.T) {
	_, addrs := startFleet(t, 1)
	ip, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	st := ip.WireStats()
	if st.BytesRead != 5 || st.BytesWritten != 5 {
		t.Fatalf("handshake-only WireStats = %+v, want 5/5", st)
	}
}

// TestWireStatsPerDialect: replaying the same quantized suite over the
// three dialects must order the byte totals v4 < v3 < v2 — the
// protocols exist to cut replay bandwidth, so the ordering is the
// measured claim, per dialect. The claim is steady-state: v4's first
// pass ships the full replay frame (inputs + quantised references) and
// later passes are cache back-references, so the workload here is the
// sentinel's — the same suite replayed repeatedly on one session.
func TestWireStatsPerDialect(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, goldenNet())
	defer srv.Close()
	suite := goldenSuite(t, 8, QuantizedOutputs)

	replayBytes := func(w Wire) WireStats {
		t.Helper()
		ip, err := DialWith(srv.Addr(), DialOptions{Wire: w})
		if err != nil {
			t.Fatal(err)
		}
		defer ip.Close()
		for pass := 0; pass < 3; pass++ {
			// The verdict is irrelevant here (the v3 float32 frames
			// round past the suite precision); only the transport may
			// not error.
			if _, err := suite.Replay(ip, ReplayConfig{Batch: 4, Wire: w}); err != nil {
				t.Fatal(err)
			}
		}
		return ip.WireStats()
	}

	gob := replayBytes(WireGob)
	f32 := replayBytes(WireF32)
	qnt := replayBytes(WireQuant)
	if !(qnt.Total() < f32.Total() && f32.Total() < gob.Total()) {
		t.Fatalf("dialect byte totals out of order: gob=%d f32=%d quant=%d",
			gob.Total(), f32.Total(), qnt.Total())
	}
	// The response direction is where the dialects differ most: v3
	// halves the frame floats, v4 delta-encodes against references.
	if !(qnt.BytesRead < f32.BytesRead && f32.BytesRead < gob.BytesRead) {
		t.Fatalf("response bytes out of order: gob=%d f32=%d quant=%d",
			gob.BytesRead, f32.BytesRead, qnt.BytesRead)
	}
}

// TestShardedWireStatsPerReplica: the fleet total must equal the sum
// of the per-replica statuses — the same counters feed both.
func TestShardedWireStatsPerReplica(t *testing.T) {
	_, addrs := startFleet(t, 3)
	suite := goldenSuite(t, 8, ExactOutputs)
	cluster, err := DialShards(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if rep, err := suite.Replay(cluster, ReplayConfig{Batch: 2, Workers: 3}); err != nil || !rep.Passed {
		t.Fatalf("replay: rep=%+v err=%v", rep, err)
	}
	var sum WireStats
	for _, st := range cluster.ReplicaStatuses() {
		if st.Wire.Total() < 10 {
			t.Fatalf("replica %s exchanged only %d bytes — round robin skipped it?", st.Addr, st.Wire.Total())
		}
		sum.BytesRead += st.Wire.BytesRead
		sum.BytesWritten += st.Wire.BytesWritten
	}
	if total := cluster.WireStats(); total != sum {
		t.Fatalf("fleet WireStats %+v != per-replica sum %+v", total, sum)
	}
}

// TestShardedWireStatsSurviveRedial: a replica's byte counters must be
// cumulative across the probe's re-dial, not reset with the fresh
// connection — the metrics layer exports them as Prometheus counters,
// which must never go backwards.
func TestShardedWireStatsSurviveRedial(t *testing.T) {
	servers, addrs := startFleet(t, 2)
	suite := goldenSuite(t, 6, ExactOutputs)
	cluster, err := DialShards(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetProbeBackoff(10*time.Millisecond, 50*time.Millisecond)

	if rep, err := suite.Replay(cluster, ReplayConfig{Batch: 2, Workers: 2}); err != nil || !rep.Passed {
		t.Fatalf("replay: rep=%+v err=%v", rep, err)
	}
	before := cluster.ReplicaStatuses()[0].Wire
	beforeTotal := cluster.WireStats()

	// Kill replica 0, observe the failure, restart it, wait for the
	// probe to re-dial it back in.
	servers[0].Close()
	if rep, err := suite.Replay(cluster, ReplayConfig{Batch: 2}); err != nil || !rep.Passed {
		t.Fatalf("replay with dead replica: rep=%+v err=%v", rep, err)
	}
	l, err := net.Listen("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	restarted := Serve(l, goldenNet())
	t.Cleanup(func() { restarted.Close() })
	deadline := time.Now().Add(10 * time.Second)
	for cluster.Healthy() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("replica never rejoined")
		}
		time.Sleep(15 * time.Millisecond)
		if _, err := cluster.QueryBatch(suite.Inputs[:2]); err != nil {
			t.Fatal(err)
		}
	}

	after := cluster.ReplicaStatuses()[0].Wire
	if after.BytesRead < before.BytesRead || after.BytesWritten < before.BytesWritten {
		t.Fatalf("replica counters went backwards across the re-dial: before=%+v after=%+v", before, after)
	}
	if afterTotal := cluster.WireStats(); afterTotal.Total() < beforeTotal.Total() {
		t.Fatalf("fleet total went backwards: before=%+v after=%+v", beforeTotal, afterTotal)
	}
}
