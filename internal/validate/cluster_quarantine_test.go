package validate

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/attack"
)

// poisonReplica hot-syncs an attacked parameter set into one server of
// a goldenNet fleet, leaving the shared golden network clean on return.
func poisonReplica(t *testing.T, srv *Server) {
	t.Helper()
	net := goldenNet()
	p, err := attack.RandomNoise(net, 3, 0.5, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	srv.SyncParamsFrom(net)
	p.Revert(net)
}

// repairReplica re-syncs the clean golden parameters into a server.
func repairReplica(srv *Server) { srv.SyncParamsFrom(goldenNet()) }

// TestQuarantineLifecycle drives the full attribution story against a
// real TCP fleet: one poisoned replica is named by pinned-view replay,
// quarantined out of the rotation while the survivors keep validating
// clean, kept out by a failing re-validation probe while still
// poisoned, and readmitted by TryReadmit once repaired.
func TestQuarantineLifecycle(t *testing.T) {
	servers, addrs := startFleet(t, 3)
	suite := goldenSuite(t, 8, ExactOutputs)
	cluster, err := DialShards(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetProbeBackoff(50*time.Millisecond, 200*time.Millisecond)

	poisonReplica(t, servers[1])

	// Attribution: pinned views replay the suite per replica with no
	// failover, so only slot 1 diverges.
	for i := 0; i < 3; i++ {
		view, err := cluster.Replica(i)
		if err != nil {
			t.Fatal(err)
		}
		if view.Addr() != addrs[i] {
			t.Fatalf("Replica(%d).Addr = %q, want %q", i, view.Addr(), addrs[i])
		}
		rep, err := suite.Replay(view, ReplayConfig{Batch: 4})
		if err != nil {
			t.Fatal(err)
		}
		if diverged := !rep.Passed; diverged != (i == 1) {
			t.Fatalf("replica %d diverged=%v: %+v", i, diverged, rep)
		}
	}

	if err := cluster.Quarantine(1, "diverged on 8/8 tests"); err != nil {
		t.Fatal(err)
	}
	if h := cluster.Healthy(); h != 2 {
		t.Fatalf("Healthy = %d after quarantine, want 2", h)
	}
	sts := cluster.ReplicaStatuses()
	if sts[1].State != "quarantined" || sts[1].QuarantineReason != "diverged on 8/8 tests" {
		t.Fatalf("replica 1 status = %+v", sts[1])
	}

	// Survivors keep validating clean — and the quarantined replica
	// serves none of that traffic, not even as a half-open probe
	// (answering TCP is no evidence its parameters are clean).
	servedBefore := cluster.ReplicaStatuses()[1].Served
	for i := 0; i < 3; i++ {
		rep, err := suite.Replay(cluster, ReplayConfig{Batch: 2, Workers: 2})
		if err != nil || !rep.Passed {
			t.Fatalf("survivor replay %d: rep=%+v err=%v", i, rep, err)
		}
	}
	if served := cluster.ReplicaStatuses()[1].Served; served != servedBefore {
		t.Fatalf("quarantined replica served fleet traffic: %d -> %d", servedBefore, served)
	}

	revalidate := func(rep BatchIP) error {
		r, err := suite.Replay(rep, ReplayConfig{Batch: 4})
		if err != nil {
			return err
		}
		if !r.Passed {
			return fmt.Errorf("still diverges: %s", r)
		}
		return nil
	}

	// Still poisoned: the re-validation probe must run and fail,
	// keeping the quarantine.
	time.Sleep(60 * time.Millisecond) // wait out the first readmission backoff
	probed, perr := cluster.TryReadmit(1, revalidate)
	if !probed || perr == nil {
		t.Fatalf("TryReadmit on poisoned replica: probed=%v err=%v", probed, perr)
	}
	if got := cluster.Quarantined(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Quarantined = %v after failed probe", got)
	}
	// The failed probe doubled the backoff; an immediate retry must be
	// rate-limited (no probe runs).
	if probed, _ := cluster.TryReadmit(1, revalidate); probed {
		t.Fatal("TryReadmit probed again before the backoff expired")
	}

	// Repair, wait out the doubled backoff, readmit.
	repairReplica(servers[1])
	deadline := time.Now().Add(10 * time.Second)
	for {
		probed, perr = cluster.TryReadmit(1, revalidate)
		if probed && perr == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("repaired replica never readmitted: probed=%v err=%v", probed, perr)
		}
		time.Sleep(15 * time.Millisecond)
	}
	if h := cluster.Healthy(); h != 3 {
		t.Fatalf("Healthy = %d after readmission, want 3", h)
	}
	if st := cluster.ReplicaStatuses()[1]; st.State != "healthy" || st.QuarantineReason != "" {
		t.Fatalf("readmitted replica status = %+v", st)
	}
	rep, err := suite.Replay(cluster, ReplayConfig{Batch: 2, Workers: 3})
	if err != nil || !rep.Passed {
		t.Fatalf("full-fleet replay after readmission: rep=%+v err=%v", rep, err)
	}
}

// TestAllReplicasFailedErrorDetail: the aggregated failover error must
// name every replica with its address, state and last error, so an
// operator can act on it.
func TestAllReplicasFailedErrorDetail(t *testing.T) {
	servers, addrs := startFleet(t, 2)
	cluster, err := DialShards(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	servers[0].Close()
	servers[1].Close()

	var qerr error
	for i := 0; i < 3 && qerr == nil; i++ {
		_, qerr = cluster.QueryBatch(testInputs(2, 95))
	}
	if qerr == nil {
		t.Fatal("query against a fully dead fleet succeeded")
	}
	msg := qerr.Error()
	if !strings.Contains(msg, "all 2 replicas failed") {
		t.Fatalf("error lost the aggregate prefix: %v", msg)
	}
	for _, addr := range addrs {
		if !strings.Contains(msg, addr) {
			t.Fatalf("error does not name replica %s: %v", addr, msg)
		}
	}

	// Quarantine reasons surface in the detail too.
	if err := cluster.Quarantine(0, "poisoned by test"); err != nil {
		t.Fatal(err)
	}
	_, qerr = cluster.QueryBatch(testInputs(2, 96))
	if qerr == nil || !strings.Contains(qerr.Error(), "poisoned by test") || !strings.Contains(qerr.Error(), "quarantined") {
		t.Fatalf("error does not carry the quarantine reason: %v", qerr)
	}
}

// TestReplicaViewStats: pinned-view exchanges are recorded in the
// viewed replica's counters and nobody else's.
func TestReplicaViewStats(t *testing.T) {
	_, addrs := startFleet(t, 2)
	cluster, err := DialShards(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	view, err := cluster.Replica(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := view.QueryBatch(testInputs(3, 97)); err != nil {
		t.Fatal(err)
	}
	if _, err := view.Query(testInputs(1, 98)[0]); err != nil {
		t.Fatal(err)
	}
	sts := cluster.ReplicaStatuses()
	if sts[0].Served != 0 {
		t.Fatalf("unviewed replica served %d exchanges", sts[0].Served)
	}
	if sts[1].Served != 2 || sts[1].LatencyCount != 2 {
		t.Fatalf("viewed replica stats = %+v, want 2 served", sts[1])
	}
	var bucketSum int64
	for _, b := range sts[1].LatencyBuckets {
		bucketSum += b
	}
	if bucketSum != sts[1].LatencyCount {
		t.Fatalf("latency buckets sum to %d, count is %d", bucketSum, sts[1].LatencyCount)
	}
	if sts[1].Wire.Total() <= sts[0].Wire.Total() {
		t.Fatalf("viewed replica exchanged %d bytes, unviewed %d", sts[1].Wire.Total(), sts[0].Wire.Total())
	}
	if _, err := cluster.Replica(5); err == nil {
		t.Fatal("out-of-range Replica accepted")
	}
}
