package validate

import (
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/nn"
)

// AttackFn applies one parameter perturbation to net and returns it so
// the trial can be reverted. The campaign driver adapts the concrete
// attacks in internal/attack to this shape.
type AttackFn func(net *nn.Network, rng *rand.Rand) (*attack.Perturbation, error)

// DetectionResult summarises a perturbation-detection campaign
// (one cell of Tables II/III).
type DetectionResult struct {
	Trials   int
	Detected int
}

// Rate returns the detection rate.
func (d DetectionResult) Rate() float64 {
	if d.Trials == 0 {
		return 0
	}
	return float64(d.Detected) / float64(d.Trials)
}

// String implements fmt.Stringer.
func (d DetectionResult) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", d.Detected, d.Trials, 100*d.Rate())
}

// DetectionRate runs trials independent attack-validate-revert rounds:
// apply the attack to net, replay the suite against the perturbed IP,
// count a detection when validation fails, restore the parameters. The
// network is returned to its original state.
func DetectionRate(net *nn.Network, suite *Suite, atk AttackFn, trials int, seed int64) (DetectionResult, error) {
	if trials <= 0 {
		return DetectionResult{}, fmt.Errorf("validate: trials must be positive, got %d", trials)
	}
	rng := rand.New(rand.NewSource(seed))
	res := DetectionResult{Trials: trials}
	ip := LocalIP{Net: net}
	for t := 0; t < trials; t++ {
		p, err := atk(net, rng)
		if err != nil {
			return DetectionResult{}, fmt.Errorf("validate: trial %d attack: %w", t, err)
		}
		detected, err := suite.Detects(ip)
		if rerr := p.Revert(net); err == nil {
			err = rerr
		}
		if err != nil {
			return DetectionResult{}, fmt.Errorf("validate: trial %d: %w", t, err)
		}
		if detected {
			res.Detected++
		}
	}
	return res, nil
}

// Perturbations draws a population of trials independent perturbations
// from the attack, reverting each immediately. Detection tables reuse
// one population across many (suite, size) cells, so the expensive
// attacks (GDA) run once instead of once per cell.
func Perturbations(net *nn.Network, atk AttackFn, trials int, seed int64) ([]*attack.Perturbation, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("validate: trials must be positive, got %d", trials)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*attack.Perturbation, 0, trials)
	for t := 0; t < trials; t++ {
		p, err := atk(net, rng)
		if err != nil {
			return nil, fmt.Errorf("validate: trial %d attack: %w", t, err)
		}
		if err := p.Revert(net); err != nil {
			return nil, fmt.Errorf("validate: trial %d: %w", t, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// PredictDetection returns the analytic detection rate implied by a
// covered-parameter set: the fraction of perturbations that touch at
// least one covered parameter. Under exact output comparison on a ReLU
// network this is the theoretical detection rate (a perturbed parameter
// with nonzero gradient moves some output, barring exact cancellation),
// so comparing it against the measured rate validates the paper's whole
// premise that parameter coverage predicts detection.
func PredictDetection(covered interface{ Get(int) bool }, perts []*attack.Perturbation) float64 {
	if len(perts) == 0 {
		return 0
	}
	hit := 0
	for _, p := range perts {
		for _, idx := range p.Indices {
			if covered.Get(idx) {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(perts))
}

// DetectionRateOver replays the suite against each precomputed
// perturbation (reapplied and reverted around the replay) and returns
// the detection rate.
func DetectionRateOver(net *nn.Network, suite *Suite, perts []*attack.Perturbation) (DetectionResult, error) {
	return DetectionRateOverWith(net, suite, perts, ValidateOptions{})
}

// DetectionRateOverWith is DetectionRateOver with a batched replay:
// each trial's early-exit detection scan groups opts.Batch queries per
// batched forward pass. The rates are identical to the single-query
// replay at any batch size — batching is bit-identical and detection is
// a boolean — so the knob only moves the campaign's throughput.
func DetectionRateOverWith(net *nn.Network, suite *Suite, perts []*attack.Perturbation, opts ValidateOptions) (DetectionResult, error) {
	res := DetectionResult{Trials: len(perts)}
	ip := LocalIP{Net: net}
	for i, p := range perts {
		if err := p.Reapply(net); err != nil {
			return DetectionResult{}, fmt.Errorf("validate: trial %d: %w", i, err)
		}
		detected, err := suite.DetectsWith(ip, opts)
		if rerr := p.Revert(net); err == nil {
			err = rerr
		}
		if err != nil {
			return DetectionResult{}, fmt.Errorf("validate: trial %d: %w", i, err)
		}
		if detected {
			res.Detected++
		}
	}
	return res, nil
}
