package validate

import (
	"math/rand"
	"net"
	"testing"

	"repro/internal/attack"
	"repro/internal/nn"
)

// perturbedNet returns a clone of the golden network with a small
// random perturbation, so suite replays against it produce a mix of
// passing and failing tests (a report with structure worth comparing).
func perturbedNet(t *testing.T) *nn.Network {
	t.Helper()
	pnet := goldenNet().Clone()
	rng := rand.New(rand.NewSource(9))
	if _, err := attack.RandomNoise(pnet, 2, 0.4, rng); err != nil {
		t.Fatal(err)
	}
	return pnet
}

// replayGrid is the batch × concurrency sweep of the equivalence
// tests; batch sizes straddle the suite length, concurrency straddles
// GOMAXPROCS.
var replayGrid = []ValidateOptions{
	{Batch: 1, Concurrency: 1},
	{Batch: 1, Concurrency: 4},
	{Batch: 3, Concurrency: 1},
	{Batch: 3, Concurrency: 4},
	{Batch: 8, Concurrency: 2},
	{Batch: 64, Concurrency: 4},
}

// TestValidateWithMatchesSerialLocal: the batched/concurrent local
// replay must produce a report bit-identical to the serial single-query
// Validate at every grid point — on a passing suite and on a partially
// failing one.
func TestValidateWithMatchesSerialLocal(t *testing.T) {
	suite := goldenSuite(t, 10, ExactOutputs)
	for _, target := range []*nn.Network{goldenNet(), perturbedNet(t)} {
		want, err := suite.Validate(LocalIP{Net: target})
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range replayGrid {
			var ip IP = LocalIP{Net: target}
			if opts.Concurrency > 1 {
				ip = NewPooledIP(target, opts.Concurrency)
			}
			got, err := suite.ValidateWith(ip, opts)
			if err != nil {
				t.Fatalf("opts %+v: %v", opts, err)
			}
			if got != want {
				t.Fatalf("opts %+v: report %+v, serial report %+v", opts, got, want)
			}
		}
	}
}

// TestValidateWithMatchesSerialRemote: the same equivalence over the
// wire — batched pipelined replay against a served (and attacked)
// fleet reports exactly what the serial single-query replay reports.
func TestValidateWithMatchesSerialRemote(t *testing.T) {
	suite := goldenSuite(t, 10, ExactOutputs)
	target := perturbedNet(t)
	for _, replicas := range []int{1, 2} {
		servers := make([]*Server, replicas)
		addrs := make([]string, replicas)
		for i := range servers {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			servers[i] = Serve(l, target)
			defer servers[i].Close()
			addrs[i] = servers[i].Addr()
		}
		want, err := suite.Validate(LocalIP{Net: target})
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range replayGrid {
			var ip IP
			if replicas == 1 {
				remote, err := Dial(addrs[0])
				if err != nil {
					t.Fatal(err)
				}
				defer remote.Close()
				ip = remote
			} else {
				cluster, err := DialShards(addrs, DialOptions{})
				if err != nil {
					t.Fatal(err)
				}
				defer cluster.Close()
				ip = cluster
			}
			got, err := suite.ValidateWith(ip, opts)
			if err != nil {
				t.Fatalf("replicas %d opts %+v: %v", replicas, opts, err)
			}
			if got != want {
				t.Fatalf("replicas %d opts %+v: report %+v, serial %+v", replicas, opts, got, want)
			}
		}
	}
}

// TestDetectsWithMatchesDetects: the batched early-exit detection scan
// answers exactly what the single-query scan answers, detected or not.
func TestDetectsWithMatchesDetects(t *testing.T) {
	suite := goldenSuite(t, 10, ExactOutputs)
	for _, target := range []*nn.Network{goldenNet(), perturbedNet(t)} {
		ip := LocalIP{Net: target}
		want, err := suite.Detects(ip)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{1, 2, 5, 64} {
			got, err := suite.DetectsWith(ip, ValidateOptions{Batch: batch})
			if err != nil {
				t.Fatalf("batch %d: %v", batch, err)
			}
			if got != want {
				t.Fatalf("batch %d: DetectsWith = %v, Detects = %v", batch, got, want)
			}
		}
	}
}

// TestDetectionRateOverBatchInvariance: campaign rates are identical at
// any batch size — the experiments' Batch knob is purely throughput.
func TestDetectionRateOverBatchInvariance(t *testing.T) {
	suite := goldenSuite(t, 6, ExactOutputs)
	pnet := goldenNet().Clone()
	atk := func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, error) {
		return attack.RandomNoise(n, 1, 0.3, rng)
	}
	perts, err := Perturbations(pnet, atk, 12, 77)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DetectionRateOver(pnet, suite, perts)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{2, 4, 32} {
		got, err := DetectionRateOverWith(pnet, suite, perts, ValidateOptions{Batch: batch})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if got != want {
			t.Fatalf("batch %d: rate %+v, single-query rate %+v", batch, got, want)
		}
	}
}

// TestValidateWithEmptySuite: degenerate but legal — an empty suite
// passes at any setting.
func TestValidateWithEmptySuite(t *testing.T) {
	s := &Suite{Name: "empty"}
	rep, err := s.ValidateWith(LocalIP{Net: goldenNet()}, ValidateOptions{Batch: 8, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed || rep.Total != 0 || rep.FirstFailure != -1 {
		t.Fatalf("empty replay report: %+v", rep)
	}
}

// TestPooledIPMatchesLocalIP: PooledIP must answer bit-identically to
// LocalIP, batched or not.
func TestPooledIPMatchesLocalIP(t *testing.T) {
	xs := testInputs(5, 101)
	local := LocalIP{Net: goldenNet()}
	pooled := NewPooledIP(goldenNet(), 2)
	wantB, err := local.QueryBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := pooled.QueryBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		want, err := local.Query(xs[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.Data() {
			if wantB[i].Data()[j] != want.Data()[j] {
				t.Fatalf("LocalIP batched output %d differs from its single query at %d", i, j)
			}
			if gotB[i].Data()[j] != want.Data()[j] {
				t.Fatalf("PooledIP output %d differs from LocalIP at %d", i, j)
			}
		}
	}
}
