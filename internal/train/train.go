// Package train implements the optimisers and minibatch loop used to fit
// the reproduction's models: plain SGD with momentum and Adam, a
// step-decay learning-rate schedule, and accuracy evaluation.
package train

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Optimizer updates network parameters from the accumulated gradients of
// one minibatch.
type Optimizer interface {
	// Step applies one update given the batch size the gradients were
	// accumulated over.
	Step(net *nn.Network, batchSize int)
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity [][]float64
}

// NewSGD returns an SGD optimiser.
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements Optimizer.
func (s *SGD) Step(net *nn.Network, batchSize int) {
	params := net.Params()
	if s.velocity == nil {
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float64, p.W.Size())
		}
	}
	inv := 1 / float64(batchSize)
	for i, p := range params {
		w, g, v := p.W.Data(), p.Grad.Data(), s.velocity[i]
		for j := range w {
			v[j] = s.Momentum*v[j] - s.LR*g[j]*inv
			w[j] += v[j]
		}
	}
}

// Adam is the Adam optimiser (Kingma & Ba) with standard bias
// correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  [][]float64
}

// NewAdam returns an Adam optimiser with the usual defaults for any
// field left zero (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(net *nn.Network, batchSize int) {
	params := net.Params()
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, p.W.Size())
			a.v[i] = make([]float64, p.W.Size())
		}
	}
	a.t++
	inv := 1 / float64(batchSize)
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		w, g, m, v := p.W.Data(), p.Grad.Data(), a.m[i], a.v[i]
		for j := range w {
			gj := g[j] * inv
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*gj
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*gj*gj
			mh := m[j] / bc1
			vh := v[j] / bc2
			w[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// Config controls a training run.
type Config struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	// LRDecay multiplies SGD's learning rate by this factor after each
	// epoch when nonzero (ignored for Adam).
	LRDecay float64
	// Seed drives minibatch shuffling.
	Seed int64
	// Verbose writes one line per epoch to Logf when set.
	Logf func(format string, args ...any)
	// Parallelism is the number of pool workers each minibatch's
	// gradient accumulation fans out across: Fit keeps a persistent
	// parallel.Pool for the whole run, with one clone of the network
	// pinned to each worker, and every worker forwards and
	// backpropagates its contiguous slice of the batch on its own
	// clone. Values <= 1 keep the exact serial path. The
	// parallel path is deterministic for a fixed Seed and Parallelism
	// (workers merge in index order) but is not bit-identical to serial,
	// because per-sample gradient additions associate differently.
	Parallelism int
	// PerSample forces the legacy sample-at-a-time forward/backward loop
	// instead of batched minibatch evaluation. The batched path
	// accumulates every gradient cell's per-sample terms in the same
	// order as the loop, so both paths produce bit-identical models; the
	// knob exists for equivalence tests and benchmarks.
	PerSample bool
}

// Result summarises a training run.
type Result struct {
	FinalLoss     float64
	TrainAccuracy float64
	Epochs        int
}

// gradChunk accumulates the softmax cross-entropy gradients of the
// given samples into net and returns the per-sample losses in order.
// One batched forward/backward pass covers the whole chunk; parameter
// gradients accumulate in ascending sample order with the per-sample
// operation sequence, and losses come back individually so callers can
// reduce them with the associativity of the old sample-at-a-time loop —
// both paths therefore produce bit-identical models and reported loss.
func gradChunk(net *nn.Network, ds *data.Dataset, idxs []int, perSample bool) []float64 {
	if perSample || len(idxs) == 1 {
		losses := make([]float64, len(idxs))
		for i, idx := range idxs {
			s := ds.Samples[idx]
			loss, dLogits := nn.SoftmaxCrossEntropy(net.Forward(s.X), s.Label)
			net.Backward(dLogits)
			losses[i] = loss
		}
		return losses
	}
	xs := make([]*tensor.Tensor, len(idxs))
	labels := make([]int, len(idxs))
	for i, idx := range idxs {
		xs[i] = ds.Samples[idx].X
		labels[i] = ds.Samples[idx].Label
	}
	losses, dLogits := nn.SoftmaxCrossEntropyBatch(net.ForwardBatch(tensor.Stack(xs)), labels)
	net.BackwardBatch(dLogits)
	return losses
}

// Fit trains net on ds with softmax cross-entropy. Each minibatch runs
// as one batched forward/backward pass (optionally split across
// Parallelism workers), with gradients applied once per minibatch.
func Fit(net *nn.Network, ds *data.Dataset, cfg Config) (Result, error) {
	if cfg.Epochs <= 0 {
		return Result{}, fmt.Errorf("train: epochs must be positive, got %d", cfg.Epochs)
	}
	if cfg.BatchSize <= 0 {
		return Result{}, fmt.Errorf("train: batch size must be positive, got %d", cfg.BatchSize)
	}
	if cfg.Optimizer == nil {
		return Result{}, fmt.Errorf("train: optimizer must be set")
	}
	if ds.Len() == 0 {
		return Result{}, fmt.Errorf("train: empty dataset")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, ds.Len())
	for i := range order {
		order[i] = i
	}

	// Minibatch-parallel gradient accumulation runs on a persistent
	// worker pool with one network clone pinned to each worker: the
	// goroutines and the clones live for the whole run, and each worker
	// re-syncs its own clone inside the parallel region — concurrently,
	// and only for the workers a minibatch actually uses — instead of
	// the old serial all-clone re-sync on the dispatching goroutine
	// before every minibatch.
	workers := parallel.Effective(cfg.BatchSize, parallel.Workers(cfg.Parallelism))
	var pool *parallel.Pool
	var clones []*nn.Network
	var workerLoss []float64
	if workers > 1 {
		pool = parallel.NewPool(workers)
		defer pool.Close()
		clones = make([]*nn.Network, workers)
		pool.Each(func(w int) { clones[w] = net.Clone() })
		workerLoss = make([]float64, workers)
	}

	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			net.ZeroGrad()
			batch := order[start:end]
			if workers > 1 {
				// A short final minibatch uses fewer chunks than the pool
				// has workers; only the used clones are synced and merged.
				eff := parallel.Effective(len(batch), workers)
				pool.For(len(batch), func(w, lo, hi int) {
					c := clones[w]
					c.SyncParamsFrom(net)
					c.ZeroGrad()
					workerLoss[w] = 0
					for _, l := range gradChunk(c, ds, batch[lo:hi], cfg.PerSample) {
						workerLoss[w] += l
					}
				})
				// Merge in worker (= batch) order: deterministic for a
				// fixed Seed and Parallelism.
				for _, c := range clones[:eff] {
					net.AddGradsFrom(c)
				}
				for _, l := range workerLoss[:eff] {
					epochLoss += l //detlint:allow floatreduce(sequential fold over per-worker losses in fixed worker order; regrouping through a kernel would change rounding and break run-to-run loss identity)
				}
			} else {
				for _, l := range gradChunk(net, ds, batch, cfg.PerSample) {
					epochLoss += l //detlint:allow floatreduce(sequential fold in minibatch-schedule order; the epoch loss is defined by this exact accumulation sequence)
				}
			}
			cfg.Optimizer.Step(net, end-start)
		}
		lastLoss = epochLoss / float64(ds.Len())
		if sgd, ok := cfg.Optimizer.(*SGD); ok && cfg.LRDecay > 0 {
			sgd.LR *= cfg.LRDecay //detlint:allow floatreduce(per-epoch geometric LR decay, one multiply per epoch in schedule order; not a data reduction)
		}
		if cfg.Logf != nil {
			cfg.Logf("epoch %d/%d: loss %.4f", epoch+1, cfg.Epochs, lastLoss)
		}
		if math.IsNaN(lastLoss) || math.IsInf(lastLoss, 0) {
			return Result{}, fmt.Errorf("train: loss diverged at epoch %d", epoch+1)
		}
	}
	// The closing Accuracy pass also releases the batch caches, so the
	// trained model returns without pinning batch-sized heap.
	return Result{
		FinalLoss:     lastLoss,
		TrainAccuracy: Accuracy(net, ds),
		Epochs:        cfg.Epochs,
	}, nil
}

// accuracyBatch is the evaluation batch size of Accuracy. Batched
// logits are bit-identical to per-sample ones, so the chunking only
// affects speed.
const accuracyBatch = 64

// Accuracy returns the fraction of samples net classifies correctly,
// evaluating in batched forward passes.
func Accuracy(net *nn.Network, ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	xs := make([]*tensor.Tensor, 0, accuracyBatch)
	for start := 0; start < ds.Len(); start += accuracyBatch {
		end := min(start+accuracyBatch, ds.Len())
		xs = xs[:0]
		for i := start; i < end; i++ {
			xs = append(xs, ds.Samples[i].X)
		}
		for j, class := range net.PredictBatch(tensor.Stack(xs)) {
			if class == ds.Samples[start+j].Label {
				correct++
			}
		}
	}
	net.ReleaseBatchState()
	return float64(correct) / float64(ds.Len())
}
