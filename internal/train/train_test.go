package train

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
)

func TestFitValidatesConfig(t *testing.T) {
	net := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 1)
	ds := data.Digits(10, 8, 8, 1)
	cases := []Config{
		{Epochs: 0, BatchSize: 4, Optimizer: NewSGD(0.1, 0)},
		{Epochs: 1, BatchSize: 0, Optimizer: NewSGD(0.1, 0)},
		{Epochs: 1, BatchSize: 4},
	}
	for i, cfg := range cases {
		if _, err := Fit(net, ds, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	empty := &data.Dataset{Classes: 10, C: 1, H: 8, W: 8}
	if _, err := Fit(net, empty, Config{Epochs: 1, BatchSize: 4, Optimizer: NewSGD(0.1, 0)}); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestSGDReducesLossOnTinyProblem(t *testing.T) {
	net := models.Tiny(nn.Tanh, 1, 8, 8, 3, 10, 2)
	ds := data.Digits(60, 8, 8, 3)
	first, err := Fit(net, ds, Config{Epochs: 1, BatchSize: 8, Optimizer: NewSGD(0.05, 0.9), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	last, err := Fit(net, ds, Config{Epochs: 8, BatchSize: 8, Optimizer: NewSGD(0.05, 0.9), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if last.FinalLoss >= first.FinalLoss {
		t.Fatalf("loss did not fall: %v -> %v", first.FinalLoss, last.FinalLoss)
	}
}

func TestAdamTrainsDigitsToHighAccuracy(t *testing.T) {
	// The integration milestone: a small CNN must learn the procedural
	// digits well, as the paper's models learn MNIST.
	net := models.Tiny(nn.ReLU, 1, 12, 12, 6, 10, 4)
	ds := data.Digits(300, 12, 12, 5)
	res, err := Fit(net, ds, Config{Epochs: 6, BatchSize: 16, Optimizer: NewAdam(0.002), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainAccuracy < 0.9 {
		t.Fatalf("train accuracy %.3f, want ≥ 0.9", res.TrainAccuracy)
	}
	// Generalisation to a held-out set from the same generator.
	test := data.Digits(100, 12, 12, 99)
	if acc := Accuracy(net, test); acc < 0.8 {
		t.Fatalf("test accuracy %.3f, want ≥ 0.8", acc)
	}
}

func TestAdamTrainsObjects(t *testing.T) {
	// Objects (random foreground/background colours) need the two-block
	// model; the one-block Tiny net plateaus below 50%.
	net := models.Small(nn.ReLU, 3, 12, 12, 8, 16, 32, 10, 6)
	ds := data.Objects(300, 12, 12, 7)
	res, err := Fit(net, ds, Config{Epochs: 16, BatchSize: 16, Optimizer: NewAdam(0.003), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainAccuracy < 0.6 {
		t.Fatalf("objects train accuracy %.3f, want ≥ 0.6", res.TrainAccuracy)
	}
}

func TestLRDecayApplied(t *testing.T) {
	net := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 8)
	ds := data.Digits(20, 8, 8, 9)
	sgd := NewSGD(0.1, 0)
	if _, err := Fit(net, ds, Config{Epochs: 3, BatchSize: 8, Optimizer: sgd, LRDecay: 0.5, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sgd.LR-0.0125) > 1e-12 {
		t.Fatalf("LR after 3 epochs of 0.5 decay = %v, want 0.0125", sgd.LR)
	}
}

func TestFitReportsDivergence(t *testing.T) {
	net := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 10)
	ds := data.Digits(20, 8, 8, 11)
	// A NaN parameter (e.g. from a corrupted checkpoint) must surface as
	// a divergence error, not silently train on.
	// The last parameter is the classifier bias: no ReLU downstream to
	// swallow the NaN (ReLU(NaN) = 0 because NaN > 0 is false).
	net.SetParamAt(net.NumParams()-1, math.NaN())
	_, err := Fit(net, ds, Config{Epochs: 1, BatchSize: 4, Optimizer: NewSGD(0.01, 0), Seed: 6})
	if err == nil {
		t.Fatal("divergence not reported")
	}
}

func TestVerboseLogging(t *testing.T) {
	net := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 12)
	ds := data.Digits(10, 8, 8, 13)
	var lines int
	_, err := Fit(net, ds, Config{
		Epochs: 2, BatchSize: 4, Optimizer: NewSGD(0.01, 0), Seed: 7,
		Logf: func(string, ...any) { lines++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines != 2 {
		t.Fatalf("Logf called %d times, want 2", lines)
	}
}

func TestAccuracyEmptyDataset(t *testing.T) {
	net := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 14)
	if Accuracy(net, &data.Dataset{}) != 0 {
		t.Fatal("accuracy of empty dataset should be 0")
	}
}

func TestSGDMomentumDiffersFromPlain(t *testing.T) {
	ds := data.Digits(40, 8, 8, 15)
	a := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 16)
	b := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 16)
	if _, err := Fit(a, ds, Config{Epochs: 2, BatchSize: 8, Optimizer: NewSGD(0.05, 0), Seed: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(b, ds, Config{Epochs: 2, BatchSize: 8, Optimizer: NewSGD(0.05, 0.9), Seed: 8}); err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := 0; i < a.NumParams(); i++ {
		if a.ParamAt(i) != b.ParamAt(i) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("momentum had no effect")
	}
}

func TestAdamStateShapes(t *testing.T) {
	// Two steps on the same network must not panic and must keep
	// updating (bias correction path).
	net := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 17)
	ds := data.Digits(8, 8, 8, 18)
	adam := NewAdam(0.01)
	if _, err := Fit(net, ds, Config{Epochs: 2, BatchSize: 4, Optimizer: adam, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if adam.t == 0 {
		t.Fatal("Adam step counter not advanced")
	}
}
