package train

import (
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
)

func parallelTestbed(t *testing.T) (*nn.Network, *data.Dataset) {
	t.Helper()
	net, err := models.CIFAR(16, 16, 0.05).Build(3)
	if err != nil {
		t.Fatal(err)
	}
	return net, data.Objects(90, 16, 16, 11)
}

func fitOnce(t *testing.T, parallelism int) *nn.Network {
	return fitOnceCfg(t, parallelism, false)
}

func fitOnceCfg(t *testing.T, parallelism int, perSample bool) *nn.Network {
	t.Helper()
	net, ds := parallelTestbed(t)
	_, err := Fit(net, ds, Config{
		Epochs:      2,
		BatchSize:   16,
		Optimizer:   NewAdam(0.002),
		Seed:        5,
		Parallelism: parallelism,
		PerSample:   perSample,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestFitBatchedMatchesPerSample: batched minibatch evaluation must
// produce a bit-identical model to the legacy sample-at-a-time loop —
// the batched engine accumulates every gradient cell's per-sample terms
// in the same order — both serially and under worker fan-out.
func TestFitBatchedMatchesPerSample(t *testing.T) {
	for _, workers := range []int{1, 4} {
		perSample := fitOnceCfg(t, workers, true)
		batched := fitOnceCfg(t, workers, false)
		for i := 0; i < perSample.NumParams(); i++ {
			if perSample.ParamAt(i) != batched.ParamAt(i) {
				t.Fatalf("workers %d: param %d differs between per-sample and batched training: %v vs %v",
					workers, i, perSample.ParamAt(i), batched.ParamAt(i))
			}
		}
	}
}

// TestAccuracyBatchedMatchesPerSample pins the batched evaluator to the
// per-sample classifier answers.
func TestAccuracyBatchedMatchesPerSample(t *testing.T) {
	net, ds := parallelTestbed(t)
	correct := 0
	for _, s := range ds.Samples {
		if net.Predict(s.X) == s.Label {
			correct++
		}
	}
	want := float64(correct) / float64(ds.Len())
	if got := Accuracy(net, ds); got != want {
		t.Fatalf("batched Accuracy = %v, per-sample %v", got, want)
	}
}

// TestFitParallelDeterministic: the parallel trainer must be a pure
// function of (seed, parallelism) — two runs at the same worker count
// produce bit-identical parameters.
func TestFitParallelDeterministic(t *testing.T) {
	a := fitOnce(t, 4)
	b := fitOnce(t, 4)
	for i := 0; i < a.NumParams(); i++ {
		if a.ParamAt(i) != b.ParamAt(i) {
			t.Fatalf("param %d differs between identical parallel runs: %v vs %v",
				i, a.ParamAt(i), b.ParamAt(i))
		}
	}
}

// TestFitParallelConverges: the parallel trainer must actually learn —
// same testbed, same budget, accuracy in the same band as serial.
func TestFitParallelConverges(t *testing.T) {
	serial := fitOnce(t, 1)
	par := fitOnce(t, 4)
	_, ds := parallelTestbed(t)
	accSerial, accPar := Accuracy(serial, ds), Accuracy(par, ds)
	if accPar < accSerial-0.15 {
		t.Fatalf("parallel training accuracy %.3f far below serial %.3f", accPar, accSerial)
	}
}

// TestFitParallelismOneIsSerialPath: Parallelism 1 and 0 must both take
// the exact serial path and produce bit-identical results.
func TestFitParallelismOneIsSerialPath(t *testing.T) {
	a := fitOnce(t, 0)
	b := fitOnce(t, 1)
	for i := 0; i < a.NumParams(); i++ {
		if a.ParamAt(i) != b.ParamAt(i) {
			t.Fatalf("param %d differs between Parallelism 0 and 1", i)
		}
	}
}
