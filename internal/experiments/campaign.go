package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/validate"
)

// CampaignKinds are the attack kinds the campaign driver sweeps, in
// canonical order: the paper's Table II/III injections plus the
// adaptive-adversary zoo (ROADMAP direction 3).
var CampaignKinds = []string{"sba", "gda", "random", "bitflip", "trojan", "subround", "adaptive"}

// CampaignConfig sizes one detection-rate campaign: detection rate vs
// attack magnitude, per attack kind, per suite comparison mode, over
// seeded trials.
//
// Magnitude semantics are per kind — each kind's natural
// aggressiveness knob is scaled by the grid value m:
//
//	sba       injected bias offset = m
//	gda       ascent rate = 0.05·m (15 steps, top-50 params)
//	random    Gaussian sigma = m on one parameter
//	bitflip   stored-bit position = round(m) clamped to [0,31]
//	          (0–22 mantissa, 23–30 exponent, 31 sign)
//	trojan    last-layer steering margin = 0.5·m
//	subround  deviation headroom = m × the mode's acceptance slack
//	          (rounding half-step, or Tol): m<1 hides under the
//	          boundary, m>1 deliberately crosses it
//	adaptive  largest probed edit scale = m
type CampaignConfig struct {
	// Kinds is the attack-kind subset to run (default CampaignKinds).
	Kinds []string
	// Modes are the suite comparison modes swept per kind (default
	// exact, quantized, labels).
	Modes []validate.CompareMode
	// Magnitudes is the magnitude grid (default {0.25, 1, 4}).
	Magnitudes []float64
	// Trials per (kind, mode, magnitude) cell.
	Trials int
	// Seed fixes every trial: the campaign result is a function of
	// (net, suite, victims, config) with per-trial seeds derived from
	// Seed alone, so tables are bit-identical at any worker count.
	Seed int64
	// Workers bounds the trial-level parallelism (0 = all cores).
	Workers int
	// Decimals is the QuantizedOutputs precision of every quantized
	// cell, and the rounding boundary the subround attacker hides
	// under.
	Decimals int
	// Tol, when positive, relaxes every replay comparison by the given
	// tolerance, and switches the subround attacker to hiding inside
	// it instead of under the rounding boundary.
	Tol float64
}

// DefaultCampaignConfig covers every kind and mode on a coarse grid.
func DefaultCampaignConfig() CampaignConfig {
	return CampaignConfig{
		Kinds:      CampaignKinds,
		Modes:      []validate.CompareMode{validate.ExactOutputs, validate.QuantizedOutputs, validate.LabelsOnly},
		Magnitudes: []float64{0.25, 1, 4},
		Trials:     20,
		Seed:       1,
		Decimals:   3,
	}
}

// CampaignCell is one (kind, mode, magnitude) measurement.
type CampaignCell struct {
	Kind      string  `json:"kind"`
	Mode      string  `json:"mode"`
	Magnitude float64 `json:"magnitude"`
	Trials    int     `json:"trials"`
	// Detected counts trials where replay caught the edit — including
	// Failed trials, where the attacker could not construct an edit at
	// all (e.g. QuantEvade finds no sub-boundary direction): a trial
	// the attacker forfeits is a trial the defence wins.
	Detected int `json:"detected"`
	Failed   int `json:"failed"`
}

// Rate returns the cell's detection rate in [0,1].
func (c CampaignCell) Rate() float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Trials)
}

// CampaignResult is the full sweep: a cell per (kind, mode, magnitude)
// in kinds-major order.
type CampaignResult struct {
	Model     string         `json:"model"`
	SuiteName string         `json:"suite"`
	SuiteSize int            `json:"suite_size"`
	Seed      int64          `json:"seed"`
	Trials    int            `json:"trials"`
	Decimals  int            `json:"decimals"`
	Tol       float64        `json:"tol,omitempty"`
	Cells     []CampaignCell `json:"cells"`
}

// mix64 is the splitmix64 finaliser; trialSeed chains it over the
// attack and trial coordinates so every trial's RNG stream is a pure
// function of (Seed, attack, trial) — independent of how the
// parallel.Pool partitions trials over workers. The attack coordinate
// spans (kind, magnitude) but NOT the mode, so every mode column
// measures the same edit sequence and the mode comparison is per-trial
// apples-to-apples (for every kind but adaptive, whose edit depends on
// the mode it is evading).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func trialSeed(seed int64, attack, trial int) int64 {
	z := mix64(uint64(seed) + 0x9E3779B97F4A7C15*uint64(attack+1))
	z = mix64(z + 0xD1B54A32D192ED03*uint64(trial+1))
	return int64(z)
}

// trialAttack builds and applies one edit. ok=false means the attacker
// forfeited — it could not construct an edit and the network is
// untouched; p is then nil or empty.
type trialAttack func(net *nn.Network, rng *rand.Rand) (p *attack.Perturbation, ok bool, err error)

// campaignAttack maps a kind and magnitude to a trial attack. The
// suite view sv is the cell's comparison (the adaptive attacker
// replays it as its oracle; the subround attacker probes its inputs),
// and victims supplies triggers and GDA targets.
func campaignAttack(kind string, mag float64, sv *validate.Suite, victims *data.Dataset, cfg CampaignConfig) (trialAttack, error) {
	pickVictim := func(n *nn.Network, rng *rand.Rand) (x *tensor.Tensor, label int) {
		// Prefer a correctly classified victim: GDA and the adaptive
		// direction search have nothing to ascend on one the network
		// already gets wrong.
		for tries := 0; tries < 50; tries++ {
			s := victims.Samples[rng.Intn(victims.Len())]
			if n.Predict(s.X) == s.Label {
				return s.X, s.Label
			}
		}
		s := victims.Samples[rng.Intn(victims.Len())]
		return s.X, s.Label
	}
	switch kind {
	case "sba":
		return func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, bool, error) {
			p, err := attack.SBA(n, mag, rng)
			return p, err == nil, err
		}, nil
	case "gda":
		gcfg := attack.GDAConfig{Steps: 15, LR: 0.05 * mag, TopK: 50}
		return func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, bool, error) {
			x, label := pickVictim(n, rng)
			p, _, err := attack.GDA(n, x, label, gcfg, rng)
			return p, err == nil, err
		}, nil
	case "random":
		return func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, bool, error) {
			p, err := attack.RandomNoise(n, 1, mag, rng)
			return p, err == nil, err
		}, nil
	case "bitflip":
		bit := int(math.Round(mag))
		if bit < 0 {
			bit = 0
		}
		if bit > 31 {
			bit = 31
		}
		return func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, bool, error) {
			p, err := attack.TargetedBitFlip(n, 1, uint(bit), rng)
			return p, err == nil, err
		}, nil
	case "trojan":
		tcfg := attack.TrojanConfig{Margin: 0.5 * mag}
		return func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, bool, error) {
			x, _ := pickVictim(n, rng)
			target := (n.Predict(x) + 1) % victims.Classes
			// The suite-aware trojaner preserves predictions on the
			// sealed suite's own inputs — the labels-mode replay set.
			return attack.Trojan(n, x, target, sv.Inputs, tcfg)
		}, nil
	case "subround":
		qcfg := attack.QuantEvadeConfig{
			Decimals: cfg.Decimals, Tol: cfg.Tol, Headroom: mag, Probes: sv.Inputs,
		}
		return func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, bool, error) {
			p, err := attack.QuantEvade(n, qcfg, rng)
			if err != nil {
				// No sub-boundary direction among the candidates: the
				// attacker forfeits, nothing was applied.
				return nil, false, nil
			}
			return p, true, nil
		}, nil
	case "adaptive":
		acfg := attack.AdaptiveConfig{Steps: 5, TopK: 50, MaxScale: mag, Iters: 20}
		opts := validate.ValidateOptions{Tolerance: cfg.Tol}
		return func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, bool, error) {
			x, label := pickVictim(n, rng)
			oracle := func(m *nn.Network) (bool, error) {
				detected, err := sv.DetectsWith(validate.LocalIP{Net: m}, opts)
				return !detected, err
			}
			p, _, err := attack.Adaptive(n, x, label, oracle, acfg, rng)
			if err != nil {
				return nil, false, nil // no damaging direction: forfeit
			}
			// Defeated or not, the attacker's best-effort edit is
			// applied and its detection measured.
			return p, true, nil
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown attack kind %q (have %s)", kind, strings.Join(CampaignKinds, ", "))
	}
}

// RunCampaign sweeps detection rate over kinds × modes × magnitudes.
// The suite must be built on (or opened against) net; victims supplies
// attack triggers. Trials run on a parallel.Pool with per-worker
// network clones; per-trial RNG seeds derive from (Seed, cell, trial)
// and cells aggregate by order-independent counting, so the result is
// bit-identical at any worker count.
func RunCampaign(net *nn.Network, suite *validate.Suite, victims *data.Dataset, cfg CampaignConfig) (*CampaignResult, error) {
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = CampaignKinds
	}
	if len(cfg.Modes) == 0 {
		cfg.Modes = []validate.CompareMode{validate.ExactOutputs, validate.QuantizedOutputs, validate.LabelsOnly}
	}
	if len(cfg.Magnitudes) == 0 {
		cfg.Magnitudes = []float64{0.25, 1, 4}
	}
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: campaign needs positive trials")
	}
	if victims == nil || victims.Len() == 0 {
		return nil, fmt.Errorf("experiments: campaign needs a victim pool")
	}

	// One suite view per mode: same tests, the cell's comparison.
	views := make([]*validate.Suite, len(cfg.Modes))
	for mi, m := range cfg.Modes {
		sv := *suite
		sv.Mode = m
		sv.Decimals = cfg.Decimals
		views[mi] = &sv
	}

	type cellSpec struct {
		kind string
		mode validate.CompareMode
		mag  float64
		atk  trialAttack
		view *validate.Suite
		// attack indexes the (kind, magnitude) pair, shared across
		// modes: it seeds the trials, so every mode replays the same
		// edit sequence.
		attack int
	}
	var cells []cellSpec
	for ki, kind := range cfg.Kinds {
		for mi, m := range cfg.Modes {
			for gi, mag := range cfg.Magnitudes {
				atk, err := campaignAttack(kind, mag, views[mi], victims, cfg)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cellSpec{
					kind: kind, mode: m, mag: mag, atk: atk, view: views[mi],
					attack: ki*len(cfg.Magnitudes) + gi,
				})
			}
		}
	}

	pool := parallel.NewPool(cfg.Workers)
	defer pool.Close()
	workers := pool.Workers()
	nets := make([]*nn.Network, workers)
	for w := range nets {
		nets[w] = net.Clone()
	}

	total := len(cells) * cfg.Trials
	detected := make([]byte, total)
	failed := make([]byte, total)
	errs := make([]error, workers)
	opts := validate.ValidateOptions{Tolerance: cfg.Tol}
	pool.For(total, func(worker, start, end int) {
		wnet := nets[worker] // pinned per-worker clone
		for i := start; i < end; i++ {
			if errs[worker] != nil {
				return
			}
			ci, ti := i/cfg.Trials, i%cfg.Trials
			cell := cells[ci]
			rng := rand.New(rand.NewSource(trialSeed(cfg.Seed, cell.attack, ti)))
			p, ok, err := cell.atk(wnet, rng)
			if err != nil {
				errs[worker] = fmt.Errorf("experiments: %s/%s m=%g trial %d: %w", cell.kind, cell.mode, cell.mag, ti, err)
				return
			}
			if !ok {
				failed[i], detected[i] = 1, 1
				continue
			}
			caught, err := cell.view.DetectsWith(validate.LocalIP{Net: wnet}, opts)
			if rerr := p.Revert(wnet); err == nil {
				err = rerr
			}
			if err != nil {
				errs[worker] = fmt.Errorf("experiments: %s/%s m=%g trial %d: %w", cell.kind, cell.mode, cell.mag, ti, err)
				return
			}
			if caught {
				detected[i] = 1
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &CampaignResult{
		Model:     suite.Name,
		SuiteName: suite.Name,
		SuiteSize: len(suite.Inputs),
		Seed:      cfg.Seed,
		Trials:    cfg.Trials,
		Decimals:  cfg.Decimals,
		Tol:       cfg.Tol,
	}
	for ci, cell := range cells {
		cc := CampaignCell{Kind: cell.kind, Mode: cell.mode.String(), Magnitude: cell.mag, Trials: cfg.Trials}
		for ti := 0; ti < cfg.Trials; ti++ {
			i := ci*cfg.Trials + ti
			cc.Detected += int(detected[i])
			cc.Failed += int(failed[i])
		}
		res.Cells = append(res.Cells, cc)
	}
	return res, nil
}

// Render returns the paperbench-style detection table: one row per
// (kind, magnitude), one column per mode.
func (r *CampaignResult) Render() string {
	modes := r.modes()
	tab := &Table{
		Title:   fmt.Sprintf("Detection rate vs attack magnitude — %s (%d trials/cell, seed %d, decimals %d)", r.Model, r.Trials, r.Seed, r.Decimals),
		Headers: append([]string{"attack"}, modes...),
	}
	type rowKey struct {
		kind string
		mag  float64
	}
	index := map[rowKey]map[string]CampaignCell{}
	var order []rowKey
	for _, c := range r.Cells {
		k := rowKey{c.Kind, c.Magnitude}
		if index[k] == nil {
			index[k] = map[string]CampaignCell{}
			order = append(order, k)
		}
		index[k][c.Mode] = c
	}
	for _, k := range order {
		row := []any{fmt.Sprintf("%s m=%g", k.kind, k.mag)}
		for _, m := range modes {
			c := index[k][m]
			cell := fmt.Sprintf("%.1f%%", 100*c.Rate())
			if c.Failed > 0 {
				cell += fmt.Sprintf(" (%df)", c.Failed)
			}
			row = append(row, cell)
		}
		tab.AddRow(row...)
	}
	return tab.String()
}

// modes returns the distinct mode labels in first-seen order.
func (r *CampaignResult) modes() []string {
	var out []string
	for _, c := range r.Cells {
		found := false
		for _, m := range out {
			if m == c.Mode {
				found = true
				break
			}
		}
		if !found {
			out = append(out, c.Mode)
		}
	}
	return out
}

// JSON returns the machine-readable campaign result.
func (r *CampaignResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// BaselineLines renders the floors file the CI detection-gate checks
// against: one "kind mode magnitude rate%" line per cell, plus a
// header comment. Rates are exact — the campaign is deterministic — so
// a regressing cell compares strictly below its floor.
func (r *CampaignResult) BaselineLines() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# detection-rate floors: kind mode magnitude rate%% (seed %d, %d trials/cell, decimals %d)\n", r.Seed, r.Trials, r.Decimals)
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%s %s %g %.1f\n", c.Kind, c.Mode, c.Magnitude, 100*c.Rate())
	}
	return b.String()
}

// CheckFloors compares the result against a floors file produced by
// BaselineLines: every baseline cell must exist in the result with a
// detection rate no lower than its floor. Cells may exceed their floor
// (the defence improving is not a regression) and extra result cells
// are ignored, so grids can grow without invalidating old floors.
func (r *CampaignResult) CheckFloors(baseline string) error {
	find := func(kind, mode string, mag float64) (CampaignCell, bool) {
		for _, c := range r.Cells {
			if c.Kind == kind && c.Mode == mode && math.Abs(c.Magnitude-mag) < 1e-12 {
				return c, true
			}
		}
		return CampaignCell{}, false
	}
	var failures []string
	lineNo := 0
	for _, line := range strings.Split(baseline, "\n") {
		lineNo++
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return fmt.Errorf("experiments: baseline line %d: want 'kind mode magnitude rate%%', got %q", lineNo, line)
		}
		mag, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return fmt.Errorf("experiments: baseline line %d: bad magnitude %q: %w", lineNo, f[2], err)
		}
		floor, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return fmt.Errorf("experiments: baseline line %d: bad floor %q: %w", lineNo, f[3], err)
		}
		cell, found := find(f[0], f[1], mag)
		if !found {
			failures = append(failures, fmt.Sprintf("%s/%s m=%g: cell missing from campaign", f[0], f[1], mag))
			continue
		}
		// Floors are stored at %.1f, which rounds up rates like 66.66…%;
		// allow half a stored ulp so a bit-identical rerun always passes
		// while any real regression (≥ one trial, ≥ 1/Trials in rate)
		// still fails.
		if pct := 100 * cell.Rate(); pct+0.05+1e-9 < floor {
			failures = append(failures, fmt.Sprintf("%s/%s m=%g: detection %.1f%% below floor %.1f%%", f[0], f[1], mag, pct, floor))
		}
	}
	if len(failures) > 0 {
		sort.Strings(failures)
		return fmt.Errorf("experiments: detection-rate regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
