package experiments

import (
	"fmt"
	"math"

	"repro/internal/tensor"
	"repro/internal/validate"
)

// Precision reports the float32 inference path against the float64
// reference on each testbed: how far the reduced-precision logits
// deviate, whether predictions survive the quantisation, and whether a
// reference suite replays clean under the tolerance the float32
// serving path would be validated with. It is the paperbench-level
// evidence that the -f32 serving mode is sound for replay validation
// (and that the bit-exact float64 mode is the one that is not
// negotiable).
type Precision struct {
	Rows []PrecisionRow
}

// PrecisionRow is one testbed's float32-vs-float64 summary.
type PrecisionRow struct {
	Model string
	// Probes is the number of training samples compared.
	Probes int
	// MaxAbsDev is the largest |f32 − f64| logit deviation observed.
	MaxAbsDev float64
	// ArgmaxAgree is the fraction of probes whose predicted class is
	// unchanged under float32.
	ArgmaxAgree float64
	// Tol is the replay tolerance used for the pass check.
	Tol float64
	// ReplayPass reports whether an ExactOutputs suite of the probes
	// replays clean against the float32 path under Tol.
	ReplayPass bool
}

// RunPrecision compares the float32 inference clone of each setup's
// network against the float64 reference over probes training samples,
// and replays an ExactOutputs suite of those samples against the
// float32 path under tol.
func RunPrecision(setups []*Setup, probes int, tol float64) (*Precision, error) {
	p := &Precision{}
	for _, s := range setups {
		n := min(probes, s.Train.Len())
		xs := make([]*tensor.Tensor, n)
		for i := 0; i < n; i++ {
			xs[i] = s.Train.Samples[i].X
		}
		f32 := s.Net.ConvertF32()
		maxDev, agree := 0.0, 0
		for _, x := range xs {
			want := s.Net.Forward(x)
			got := f32.Forward(x.F32())
			for j := range want.Data() {
				if d := math.Abs(want.Data()[j] - float64(got.Data()[j])); d > maxDev {
					maxDev = d
				}
			}
			if want.Argmax() == got.Argmax() {
				agree++
			}
		}

		suite := validate.BuildSuite(s.Name+"-precision", s.Net, xs, validate.ExactOutputs)
		ip := validate.NewPooledF32IP(s.Net, 1)
		rep, err := suite.ValidateWith(ip, validate.ValidateOptions{Tolerance: tol})
		if err != nil {
			return nil, fmt.Errorf("experiments: precision replay for %s: %w", s.Name, err)
		}
		p.Rows = append(p.Rows, PrecisionRow{
			Model:       s.Name,
			Probes:      n,
			MaxAbsDev:   maxDev,
			ArgmaxAgree: float64(agree) / float64(n),
			Tol:         tol,
			ReplayPass:  rep.Passed,
		})
	}
	return p, nil
}

// Render returns the table text.
func (p *Precision) Render() string {
	tab := &Table{
		Title:   "Precision — float32 inference path vs float64 reference",
		Headers: []string{"model", "probes", "max |Δlogit|", "argmax agree", "tol", "f32 replay"},
	}
	for _, r := range p.Rows {
		pass := "PASS"
		if !r.ReplayPass {
			pass = "FAIL"
		}
		tab.AddRow(r.Model, r.Probes, fmt.Sprintf("%.2e", r.MaxAbsDev),
			r.ArgmaxAgree, fmt.Sprintf("%.0e", r.Tol), pass)
	}
	return tab.String()
}
