package experiments

import (
	"fmt"

	"repro/internal/core"
)

// Fig3 reproduces "Validation coverage of different methods": the
// coverage-vs-suite-size curves of Algorithm 1 (training-set selection),
// Algorithm 2 (gradient-based generation), the combined method, and a
// random-selection reference, plus the coverage ceiling of the whole
// selection pool (the paper finds ~8% of CIFAR parameters never
// activate from training data).
type Fig3 struct {
	Budget      int
	Select      []float64
	Gradient    []float64
	Combined    []float64
	Random      []float64
	SwitchPoint int
	// PoolCeiling is the coverage of the full selection pool via
	// Algorithm 1 — the saturation level training samples cannot pass.
	PoolCeiling float64
}

// RunFig3 generates all four curves with the given test budget.
func RunFig3(s *Setup, budget int) (*Fig3, error) {
	opts := s.GenOptions(budget)
	opts.Coverage = s.Cov
	opts.Seed = s.Params.Seed + 400

	sel, err := core.SelectFromTraining(s.Net, s.Select, opts)
	if err != nil {
		return nil, fmt.Errorf("fig3 select: %w", err)
	}
	grad, err := core.GradientGenerate(s.Net, s.InShape, s.Classes, opts)
	if err != nil {
		return nil, fmt.Errorf("fig3 gradient: %w", err)
	}
	comb, err := core.Combined(s.Net, s.Select, opts)
	if err != nil {
		return nil, fmt.Errorf("fig3 combined: %w", err)
	}
	rnd, err := core.RandomSelect(s.Net, s.Select, opts)
	if err != nil {
		return nil, fmt.Errorf("fig3 random: %w", err)
	}

	ceilOpts := opts
	ceilOpts.MaxTests = s.Select.Len()
	ceilOpts.StopOnZeroGain = true
	ceil, err := core.SelectFromTraining(s.Net, s.Select, ceilOpts)
	if err != nil {
		return nil, fmt.Errorf("fig3 ceiling: %w", err)
	}

	return &Fig3{
		Budget:      budget,
		Select:      sel.Curve,
		Gradient:    grad.Curve,
		Combined:    comb.Curve,
		Random:      rnd.Curve,
		SwitchPoint: comb.SwitchPoint,
		PoolCeiling: ceil.FinalCoverage(),
	}, nil
}

// Render returns the curve table sampled at a handful of suite sizes.
func (f *Fig3) Render() string {
	tab := &Table{
		Title:   fmt.Sprintf("Fig. 3 — validation coverage vs number of tests (switch at %d, pool ceiling %.1f%%)", f.SwitchPoint, 100*f.PoolCeiling),
		Headers: []string{"#tests", "random", "select (Alg1)", "gradient (Alg2)", "combined"},
	}
	at := func(curve []float64, i int) string {
		if i < len(curve) {
			return fmt.Sprintf("%.1f%%", 100*curve[i])
		}
		return "-"
	}
	for _, n := range samplePoints(f.Budget) {
		tab.AddRow(fmt.Sprintf("%d", n), at(f.Random, n-1), at(f.Select, n-1), at(f.Gradient, n-1), at(f.Combined, n-1))
	}
	return tab.String()
}

// samplePoints picks the suite sizes to print for a budget.
func samplePoints(budget int) []int {
	candidates := []int{1, 5, 10, 20, 30, 40, 50, 75, 100, 150, 200}
	var out []int
	for _, c := range candidates {
		if c <= budget {
			out = append(out, c)
		}
	}
	if len(out) == 0 || out[len(out)-1] != budget {
		out = append(out, budget)
	}
	return out
}
