package experiments

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/internal/validate"
)

// campaignBed is a tiny trained testbed shared by the campaign tests:
// network, a suite built on it, and a victim pool.
var campaignBed = sync.OnceValue(func() (bed struct {
	net     *nn.Network
	suite   *validate.Suite
	victims *data.Dataset
}) {
	bed.net = models.Tiny(nn.ReLU, 1, 10, 10, 4, 10, 401)
	bed.victims = data.Digits(80, 10, 10, 402)
	if _, err := train.Fit(bed.net, bed.victims, train.Config{
		Epochs: 4, BatchSize: 16, Optimizer: train.NewAdam(0.003), Seed: 1,
	}); err != nil {
		panic(err)
	}
	tests := make([]*tensor.Tensor, 0, 8)
	for _, s := range data.Digits(8, 10, 10, 403).Samples {
		tests = append(tests, s.X)
	}
	bed.suite = validate.BuildSuite("campaign-test", bed.net, tests, validate.ExactOutputs)
	return bed
})

func testCampaignConfig() CampaignConfig {
	return CampaignConfig{
		Kinds:      CampaignKinds,
		Modes:      []validate.CompareMode{validate.ExactOutputs, validate.QuantizedOutputs, validate.LabelsOnly},
		Magnitudes: []float64{0.5, 2},
		Trials:     3,
		Seed:       7,
		Decimals:   3,
	}
}

func TestCampaignWorkerIndependence(t *testing.T) {
	bed := campaignBed()
	cfg := testCampaignConfig()
	cfg.Workers = 1
	serial, err := RunCampaign(bed.net, bed.suite, bed.victims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallelRes, err := RunCampaign(bed.net, bed.suite, bed.victims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallelRes) {
		t.Fatalf("campaign differs between 1 and 4 workers:\n%s\nvs\n%s", serial.Render(), parallelRes.Render())
	}
	// And the network came back untouched: a fresh run still matches.
	again, err := RunCampaign(bed.net, bed.suite, bed.victims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, again) {
		t.Fatal("campaign not reproducible on a second run")
	}
}

func TestCampaignCellsAndModes(t *testing.T) {
	bed := campaignBed()
	cfg := testCampaignConfig()
	res, err := RunCampaign(bed.net, bed.suite, bed.victims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(cfg.Kinds) * len(cfg.Modes) * len(cfg.Magnitudes)
	if len(res.Cells) != want {
		t.Fatalf("%d cells, want %d", len(res.Cells), want)
	}
	for _, c := range res.Cells {
		if c.Trials != cfg.Trials {
			t.Fatalf("cell %s/%s has %d trials, want %d", c.Kind, c.Mode, c.Trials, cfg.Trials)
		}
		if c.Detected < 0 || c.Detected > c.Trials || c.Failed > c.Trials {
			t.Fatalf("cell %s/%s counts out of range: %+v", c.Kind, c.Mode, c)
		}
	}
	// The mode ordering the defence predicts: exact catches at least as
	// much as quantized, which catches at least as much as labels — per
	// kind and magnitude, since exact-mode divergence is implied by
	// quantised divergence, which is implied by an argmax flip.
	find := func(kind, mode string, mag float64) CampaignCell {
		for _, c := range res.Cells {
			if c.Kind == kind && c.Mode == mode && c.Magnitude == mag {
				return c
			}
		}
		t.Fatalf("cell %s/%s m=%g missing", kind, mode, mag)
		return CampaignCell{}
	}
	for _, kind := range cfg.Kinds {
		for _, mag := range cfg.Magnitudes {
			exact := find(kind, "exact", mag)
			quantized := find(kind, "quantized", mag)
			labels := find(kind, "labels", mag)
			if exact.Detected < quantized.Detected || quantized.Detected < labels.Detected {
				t.Fatalf("%s m=%g: detection not monotone across modes: exact %d, quantized %d, labels %d",
					kind, mag, exact.Detected, quantized.Detected, labels.Detected)
			}
		}
	}
	// The sub-rounding attacker is the reason quantized mode needs the
	// campaign: under the boundary (m<1) exact mode must catch what
	// quantized mode accepts.
	subExact := find("subround", "exact", 0.5)
	subQuant := find("subround", "quantized", 0.5)
	if subExact.Rate() <= subQuant.Rate() {
		t.Fatalf("subround m=0.5: exact %.2f not above quantized %.2f — the evasion class the campaign exists to measure",
			subExact.Rate(), subQuant.Rate())
	}
}

func TestCampaignFloorsRoundTrip(t *testing.T) {
	bed := campaignBed()
	cfg := testCampaignConfig()
	cfg.Kinds = []string{"sba", "subround"}
	res, err := RunCampaign(bed.net, bed.suite, bed.victims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline := res.BaselineLines()
	if err := res.CheckFloors(baseline); err != nil {
		t.Fatalf("deterministic rerun fails its own floors: %v", err)
	}
	// A raised floor must fail.
	raised := strings.ReplaceAll(baseline, " 0.0\n", " 99.9\n")
	if raised == baseline {
		raised = strings.Replace(baseline, "\n", "\nsba exact 0.5 100.1\n", 1)
	}
	if err := res.CheckFloors(raised); err == nil {
		t.Fatal("raised floors accepted")
	}
	// A floor for a cell the campaign no longer runs must fail.
	if err := res.CheckFloors("gda exact 0.5 0.0\n"); err == nil {
		t.Fatal("missing cell accepted")
	}
	// Malformed lines are errors, not silently skipped gates.
	if err := res.CheckFloors("sba exact not-a-number 0.0\n"); err == nil {
		t.Fatal("malformed magnitude accepted")
	}
	if err := res.CheckFloors("sba exact 0.5\n"); err == nil {
		t.Fatal("short line accepted")
	}
	// Comments and blanks are fine.
	if err := res.CheckFloors("# comment\n\n" + baseline); err != nil {
		t.Fatalf("comments rejected: %v", err)
	}
}

func TestCampaignValidation(t *testing.T) {
	bed := campaignBed()
	cfg := testCampaignConfig()
	cfg.Kinds = []string{"no-such-kind"}
	if _, err := RunCampaign(bed.net, bed.suite, bed.victims, cfg); err == nil {
		t.Fatal("unknown kind accepted")
	}
	cfg = testCampaignConfig()
	cfg.Trials = 0
	if _, err := RunCampaign(bed.net, bed.suite, bed.victims, cfg); err == nil {
		t.Fatal("zero trials accepted")
	}
	cfg = testCampaignConfig()
	if _, err := RunCampaign(bed.net, bed.suite, nil, cfg); err == nil {
		t.Fatal("nil victim pool accepted")
	}
}

func TestCampaignRenderAndJSON(t *testing.T) {
	bed := campaignBed()
	cfg := testCampaignConfig()
	cfg.Kinds = []string{"sba", "bitflip"}
	cfg.Magnitudes = []float64{1}
	res, err := RunCampaign(bed.net, bed.suite, bed.victims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	text := res.Render()
	for _, want := range []string{"sba m=1", "bitflip m=1", "exact", "quantized", "labels"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, text)
		}
	}
	raw, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind": "sba"`, `"mode": "labels"`, `"seed": 7`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("JSON missing %q:\n%s", want, raw)
		}
	}
}
