// Package experiments reproduces the paper's evaluation: Fig. 2 (probe
// set coverage), Fig. 3 (coverage vs suite size per method), Fig. 4
// (real vs synthetic samples), Tables II/III (detection rates under
// SBA/GDA/random perturbations for neuron- vs parameter-coverage
// suites), plus the ablations called out in DESIGN.md.
//
// The paper's testbed (MNIST/CIFAR-10 on GPU-trained full-width models)
// is replaced by procedural datasets and width-scaled Table I stacks —
// see DESIGN.md §2. Absolute numbers differ; every driver reports the
// quantities whose *shape* the paper establishes.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/train"
)

// Params sizes one experimental testbed.
type Params struct {
	// H, W is the input geometry (the Table I stacks need ≥ 16).
	H, W int
	// Scale multiplies the Table I layer widths.
	Scale float64
	// TrainN is the training set size; SelectN the pool Algorithm 1
	// selects from.
	TrainN, SelectN int
	// Epochs and LR drive training.
	Epochs int
	LR     float64
	// Seed fixes every random choice.
	Seed int64
	// Parallelism, when positive, bounds the worker goroutines used for
	// training and suite generation (1 forces both fully serial). Zero
	// keeps the defaults: serial training — so a testbed's trained
	// weights are a function of Seed alone, machine-independent — and
	// whole-machine generation, which is bit-identical to serial.
	Parallelism int
	// Batch, when positive, sets the evaluation batch size of suite
	// generation (1 forces the per-sample path). Zero keeps the default
	// batch. Generation is bit-identical at any value.
	Batch int
}

// DefaultMNISTParams returns the experiment-quality MNIST-substitute
// testbed: the Table I Tanh stack at quarter width on 20×20 procedural
// digits.
func DefaultMNISTParams() Params {
	return Params{H: 20, W: 20, Scale: 0.25, TrainN: 800, SelectN: 300, Epochs: 6, LR: 0.002, Seed: 1}
}

// DefaultCIFARParams returns the experiment-quality CIFAR-substitute
// testbed: the Table I ReLU stack at quarter width on 20×20 procedural
// colour objects.
func DefaultCIFARParams() Params {
	return Params{H: 20, W: 20, Scale: 0.25, TrainN: 800, SelectN: 300, Epochs: 8, LR: 0.002, Seed: 2}
}

// FastMNISTParams returns a reduced testbed for tests. 20×20 keeps the
// dense head non-degenerate (a 16×16 input collapses the Table I stack
// to a 1×1 spatial bottleneck).
func FastMNISTParams() Params {
	return Params{H: 20, W: 20, Scale: 0.12, TrainN: 250, SelectN: 60, Epochs: 5, LR: 0.003, Seed: 1}
}

// FastCIFARParams returns a reduced testbed for tests.
func FastCIFARParams() Params {
	return Params{H: 20, W: 20, Scale: 0.12, TrainN: 250, SelectN: 60, Epochs: 6, LR: 0.003, Seed: 2}
}

// Setup is a trained testbed shared by the experiment drivers.
type Setup struct {
	Name     string
	Net      *nn.Network
	Arch     models.Arch
	Train    *data.Dataset // full training set
	Select   *data.Dataset // pool Algorithm 1 selects from
	Classes  int
	InShape  []int
	Cov      coverage.Config
	Accuracy float64
	Params   Params
}

// GenOptions returns the generator options every experiment driver
// starts from: the setup's budgeted defaults, honouring the testbed's
// Parallelism and Batch overrides. Generation is bit-identical at any
// worker count and batch size, so the knobs only change wall-clock time.
func (s *Setup) GenOptions(maxTests int) core.Options {
	opts := core.DefaultOptions(maxTests)
	if s.Params.Parallelism > 0 {
		opts.Parallelism = s.Params.Parallelism
	}
	if s.Params.Batch > 0 {
		opts.Batch = s.Params.Batch
	}
	return opts
}

// NewMNISTSetup trains the MNIST-substitute testbed.
func NewMNISTSetup(p Params) (*Setup, error) {
	arch := models.MNIST(p.H, p.W, p.Scale)
	ds := data.Digits(p.TrainN, p.H, p.W, p.Seed+100)
	return newSetup("mnist", arch, ds, p)
}

// NewCIFARSetup trains the CIFAR-substitute testbed.
func NewCIFARSetup(p Params) (*Setup, error) {
	arch := models.CIFAR(p.H, p.W, p.Scale)
	ds := data.Objects(p.TrainN, p.H, p.W, p.Seed+200)
	return newSetup("cifar", arch, ds, p)
}

func newSetup(name string, arch models.Arch, ds *data.Dataset, p Params) (*Setup, error) {
	net, err := arch.Build(p.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: build %s: %w", name, err)
	}
	res, err := train.Fit(net, ds, train.Config{
		Epochs:      p.Epochs,
		BatchSize:   16,
		Optimizer:   train.NewAdam(p.LR),
		Seed:        p.Seed,
		Parallelism: p.Parallelism,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: train %s: %w", name, err)
	}
	sel := ds.Subset(p.SelectN)
	return &Setup{
		Name:     name,
		Net:      net,
		Arch:     arch,
		Train:    ds,
		Select:   sel,
		Classes:  ds.Classes,
		InShape:  []int{ds.C, ds.H, ds.W},
		Cov:      coverage.DefaultConfig(net),
		Accuracy: res.TrainAccuracy,
		Params:   p,
	}, nil
}
