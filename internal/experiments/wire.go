package experiments

import (
	"fmt"
	"net"

	"repro/internal/tensor"
	"repro/internal/validate"
)

// Wire reports the replay bandwidth of each wire-protocol dialect on
// each testbed: the same QuantizedOutputs suite replayed over real
// loopback TCP as v2 (gob float64 frames), v3 (float32 frames), and v4
// (quantised delta-encoded frames), with the traffic measured on the
// client connection. It is the paperbench-level evidence behind the
// dialects' bandwidth claims — the compression ratios are measured on
// the same suite the verdicts come from, not quoted.
type Wire struct {
	Rows []WireRow
}

// WireRow is one (testbed, dialect) measurement.
type WireRow struct {
	Model   string
	Dialect string
	// Queries is the suite length the bytes are averaged over.
	Queries int
	// BytesPerQuery is the steady-state total traffic (both directions,
	// one warm replay excluded) divided by the suite length.
	BytesPerQuery float64
	// Ratio is the v2 dialect's bytes/query divided by this row's —
	// how many times less traffic the dialect needs (1.0 for v2).
	Ratio float64
	// ReplayPass reports whether the replay verdict passed (against the
	// intact network it must).
	ReplayPass bool
}

// RunWire replays a QuantizedOutputs suite of probes training samples
// against each setup's network served over loopback TCP, once per
// dialect, and measures the steady-state bytes per query. One warm-up
// replay is excluded from the measurement: validation traffic is the
// same sealed suite replayed over and over, and the v4 replay-frame
// cache makes the second and later replays the representative cost.
// The v3 row replays under tol (float32 evaluation cannot match the
// float64 references' rounding exactly); v2 and v4 replay at the
// suite's own quantised comparison.
func RunWire(setups []*Setup, probes int, tol float64) (*Wire, error) {
	w := &Wire{}
	for _, s := range setups {
		n := min(probes, s.Train.Len())
		xs := make([]*tensor.Tensor, n)
		for i := 0; i < n; i++ {
			xs[i] = s.Train.Samples[i].X
		}
		suite := validate.BuildSuite(s.Name+"-wire", s.Net, xs, validate.QuantizedOutputs)

		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("experiments: wire listener: %w", err)
		}
		srv := validate.ServeWith(l, s.Net, validate.ServerOptions{Workers: 2, F32: true})

		dialects := []struct {
			name string
			opts validate.DialOptions
			tol  float64
		}{
			{"v2 gob float64", validate.DialOptions{}, 0},
			{"v3 float32", validate.DialOptions{F32: true}, tol},
			{"v4 quant delta", validate.DialOptions{Quant: true}, 0},
		}
		var v2Bytes float64
		for _, d := range dialects {
			bpq, pass, err := measureDialect(suite, srv.Addr(), d.opts, d.tol)
			if err != nil {
				srv.Close()
				return nil, fmt.Errorf("experiments: wire %s %s: %w", s.Name, d.name, err)
			}
			if v2Bytes == 0 {
				v2Bytes = bpq
			}
			w.Rows = append(w.Rows, WireRow{
				Model:         s.Name,
				Dialect:       d.name,
				Queries:       n,
				BytesPerQuery: bpq,
				Ratio:         v2Bytes / bpq,
				ReplayPass:    pass,
			})
		}
		srv.Close()
	}
	return w, nil
}

// measureDialect replays suite once to warm the session (and the v4
// replay-frame cache), then measures the traffic of a second replay.
func measureDialect(suite *validate.Suite, addr string, opts validate.DialOptions, tol float64) (float64, bool, error) {
	ip, err := validate.DialWith(addr, opts)
	if err != nil {
		return 0, false, err
	}
	defer ip.Close()
	vopts := validate.ValidateOptions{Batch: 16, Tolerance: tol}
	if _, err := suite.ValidateWith(ip, vopts); err != nil {
		return 0, false, err
	}
	before := ip.WireStats()
	rep, err := suite.ValidateWith(ip, vopts)
	if err != nil {
		return 0, false, err
	}
	used := ip.WireStats().Sub(before)
	return float64(used.Total()) / float64(suite.Len()), rep.Passed, nil
}

// Render returns the table text.
func (w *Wire) Render() string {
	tab := &Table{
		Title:   "Wire bandwidth — bytes/query per replay dialect (loopback, steady state)",
		Headers: []string{"model", "wire", "queries", "bytes/query", "vs v2", "replay"},
	}
	for _, r := range w.Rows {
		pass := "PASS"
		if !r.ReplayPass {
			pass = "FAIL"
		}
		tab.AddRow(r.Model, r.Dialect, r.Queries,
			fmt.Sprintf("%.1f", r.BytesPerQuery),
			fmt.Sprintf("%.1fx", r.Ratio), pass)
	}
	return tab.String()
}
