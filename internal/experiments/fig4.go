package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/render"
	"repro/internal/tensor"
)

// Fig4 reproduces "training samples vs. synthetic samples": for each
// digit class, one real procedural sample next to one sample synthesised
// by Algorithm 2 on the trained model — showing that the synthetic
// inputs carry class features (the paper points at the circle of the
// generated 0).
type Fig4 struct {
	Real      []*tensor.Tensor
	Synthetic []*tensor.Tensor
	Classes   []int
	// Agreement is the fraction of synthetic samples the model
	// classifies as their target class.
	Agreement float64
}

// RunFig4 synthesises one sample per class on the setup's network.
func RunFig4(s *Setup, steps int) *Fig4 {
	rng := rand.New(rand.NewSource(s.Params.Seed + 500))
	opts := s.GenOptions(1)
	opts.Steps = steps
	opts.Coverage = s.Cov

	out := &Fig4{}
	hits := 0
	for c := 0; c < s.Classes; c++ {
		real := data.RenderDigit(c, s.InShape[1], s.InShape[2], rng)
		if s.InShape[0] != 1 {
			real = s.Train.Samples[indexOfClass(s, c)].X
		}
		synth := core.Synthesize(s.Net, s.InShape, c, opts, rng)
		if s.Net.Predict(synth) == c {
			hits++
		}
		out.Real = append(out.Real, real)
		out.Synthetic = append(out.Synthetic, synth)
		out.Classes = append(out.Classes, c)
	}
	out.Agreement = float64(hits) / float64(s.Classes)
	return out
}

func indexOfClass(s *Setup, c int) int {
	for i, sm := range s.Train.Samples {
		if sm.Label == c {
			return i
		}
	}
	return 0
}

// Render returns ASCII panels of up to maxClasses classes.
func (f *Fig4) Render(maxClasses int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — real (left) vs synthetic (right) samples; %.0f%% of synthetic classified as target\n\n", 100*f.Agreement)
	n := len(f.Classes)
	if maxClasses > 0 && n > maxClasses {
		n = maxClasses
	}
	for i := 0; i < n; i++ {
		c := f.Classes[i]
		b.WriteString(render.SideBySide(
			[]string{fmt.Sprintf("real %d", c), fmt.Sprintf("synth %d", c)},
			[]*tensor.Tensor{f.Real[i], f.Synthetic[i]},
		))
		b.WriteByte('\n')
	}
	return b.String()
}
