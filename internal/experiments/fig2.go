package experiments

import (
	"repro/internal/coverage"
	"repro/internal/data"
	"repro/internal/tensor"
)

// Fig2 reproduces "Validation Coverage of Different Image Sets": the
// average single-image validation coverage of Gaussian noise probes,
// out-of-distribution natural-image probes (the paper uses ImageNet),
// and training-set probes, for each model. The paper's finding is the
// ordering training ≫ natural ≫ noise (46%/22%/13% on MNIST,
// 36%/18%/12% on CIFAR).
type Fig2 struct {
	Rows []Fig2Row
}

// Fig2Row is the mean per-image coverage of one (model, probe set) pair.
type Fig2Row struct {
	Model    string
	ProbeSet string
	MeanVC   float64
	N        int
}

// RunFig2 measures nProbes random probes per image set on the setup.
func RunFig2(s *Setup, nProbes int) *Fig2 {
	c, h, w := s.InShape[0], s.InShape[1], s.InShape[2]
	probeSets := []struct {
		name string
		ds   *data.Dataset
	}{
		{"noise", data.Noise(nProbes, c, h, w, s.Params.Seed+300)},
		{"natural", data.Natural(nProbes, c, h, w, s.Params.Seed+301)},
		{"training", trainingProbes(s, nProbes)},
	}
	out := &Fig2{}
	for _, ps := range probeSets {
		fr := make([]float64, 0, ps.ds.Len())
		for _, sample := range ps.ds.Samples {
			fr = append(fr, coverage.ParamActivation(s.Net, sample.X, s.Cov).Fraction())
		}
		out.Rows = append(out.Rows, Fig2Row{
			Model:    s.Name,
			ProbeSet: ps.name,
			MeanVC:   tensor.Sum(fr) / float64(ps.ds.Len()),
			N:        ps.ds.Len(),
		})
	}
	return out
}

// trainingProbes returns up to n samples drawn from the training set
// (fresh renders from the same generator when n exceeds it).
func trainingProbes(s *Setup, n int) *data.Dataset {
	if n <= s.Train.Len() {
		return s.Train.Subset(n)
	}
	return s.Train
}

// Render returns the Fig. 2 table text.
func (f *Fig2) Render() string {
	tab := &Table{
		Title:   "Fig. 2 — mean single-image validation coverage per probe set",
		Headers: []string{"model", "probe set", "probes", "mean VC"},
	}
	for _, r := range f.Rows {
		tab.AddRow(r.Model, r.ProbeSet, r.N, r.MeanVC)
	}
	return tab.String()
}

// Ordered reports whether the paper's strict ordering (training >
// natural > noise) holds for these rows.
func (f *Fig2) Ordered() bool {
	byName := f.byProbe()
	return byName["training"] > byName["natural"] && byName["natural"] > byName["noise"]
}

// NoiseLowest reports the robust half of the paper's finding: both
// image-like probe sets activate more parameters than Gaussian noise.
// (In this reproduction the OOD set shares the training renderer, so it
// can edge slightly above the training set — see EXPERIMENTS.md.)
func (f *Fig2) NoiseLowest() bool {
	byName := f.byProbe()
	return byName["training"] > byName["noise"] && byName["natural"] > byName["noise"]
}

func (f *Fig2) byProbe() map[string]float64 {
	byName := map[string]float64{}
	for _, r := range f.Rows {
		byName[r.ProbeSet] = r.MeanVC
	}
	return byName
}
