package experiments

import (
	"strings"
	"sync"
	"testing"
)

// Shared fast setups: training is the expensive part, so build each
// testbed once for the whole package.
var fastMNIST = sync.OnceValue(func() *Setup {
	s, err := NewMNISTSetup(FastMNISTParams())
	if err != nil {
		panic(err)
	}
	return s
})

var fastCIFAR = sync.OnceValue(func() *Setup {
	s, err := NewCIFARSetup(FastCIFARParams())
	if err != nil {
		panic(err)
	}
	return s
})

func TestSetupsTrainToUsefulAccuracy(t *testing.T) {
	m, c := fastMNIST(), fastCIFAR()
	if m.Accuracy < 0.6 {
		t.Fatalf("fast MNIST setup accuracy %.3f", m.Accuracy)
	}
	if c.Accuracy < 0.4 {
		t.Fatalf("fast CIFAR setup accuracy %.3f", c.Accuracy)
	}
	// The MNIST model is Tanh → relative ε; the CIFAR model ReLU →
	// exact-nonzero.
	if !m.Cov.Relative || m.Cov.Epsilon == 0 {
		t.Fatalf("MNIST coverage config %+v", m.Cov)
	}
	if c.Cov.Relative || c.Cov.Epsilon != 0 {
		t.Fatalf("CIFAR coverage config %+v", c.Cov)
	}
}

func TestTable1Render(t *testing.T) {
	tb := RunTable1(fastMNIST(), fastCIFAR())
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	out := tb.Render()
	for _, want := range []string{"mnist", "cifar", "tanh", "relu", "train acc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I output missing %q:\n%s", want, out)
		}
	}
}

func TestFig2OrderingHolds(t *testing.T) {
	// The robust half of the paper's Fig. 2 finding: image-like probes
	// (training and OOD-natural) activate far more parameters than
	// Gaussian noise. The strict training>natural half does not hold in
	// this testbed because the OOD set shares the training renderer —
	// see EXPERIMENTS.md.
	for _, s := range []*Setup{fastMNIST(), fastCIFAR()} {
		f := RunFig2(s, 20)
		if len(f.Rows) != 3 {
			t.Fatalf("%s: %d rows", s.Name, len(f.Rows))
		}
		for _, r := range f.Rows {
			if r.MeanVC <= 0 || r.MeanVC >= 1 {
				t.Errorf("%s/%s: degenerate coverage %.4f", s.Name, r.ProbeSet, r.MeanVC)
			}
		}
		if !f.NoiseLowest() {
			// The separation needs the experiment-quality setups; the
			// fast testbeds are too small and undertrained to show it,
			// so just record the values here.
			t.Logf("%s (fast setup): noise not lowest: %+v", s.Name, f.Rows)
		}
		out := f.Render()
		if !strings.Contains(out, "training") || !strings.Contains(out, "noise") {
			t.Fatalf("Fig. 2 render missing rows:\n%s", out)
		}
	}
}

func TestFig3CurvesShape(t *testing.T) {
	s := fastCIFAR()
	f, err := RunFig3(s, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Select) != 20 || len(f.Gradient) != 20 || len(f.Combined) != 20 || len(f.Random) != 20 {
		t.Fatalf("curve lengths %d/%d/%d/%d", len(f.Select), len(f.Gradient), len(f.Combined), len(f.Random))
	}
	// All curves monotone.
	for name, c := range map[string][]float64{"select": f.Select, "gradient": f.Gradient, "combined": f.Combined, "random": f.Random} {
		for i := 1; i < len(c); i++ {
			if c[i] < c[i-1]-1e-12 {
				t.Fatalf("%s curve decreased at %d", name, i)
			}
		}
	}
	// Greedy selection dominates random selection pointwise.
	for i := range f.Select {
		if f.Select[i] < f.Random[i]-1e-9 {
			t.Fatalf("select below random at %d: %.4f < %.4f", i, f.Select[i], f.Random[i])
		}
	}
	// Combined ends at least as high as pure selection (Fig. 3's story).
	if f.Combined[len(f.Combined)-1] < f.Select[len(f.Select)-1]-0.02 {
		t.Fatalf("combined %.4f well below select %.4f", f.Combined[len(f.Combined)-1], f.Select[len(f.Select)-1])
	}
	if f.PoolCeiling <= 0 || f.PoolCeiling > 1 {
		t.Fatalf("pool ceiling %.4f", f.PoolCeiling)
	}
	out := f.Render()
	if !strings.Contains(out, "combined") {
		t.Fatalf("Fig. 3 render:\n%s", out)
	}
}

func TestFig4PanelAndAgreement(t *testing.T) {
	s := fastMNIST()
	f := RunFig4(s, 25)
	if len(f.Real) != s.Classes || len(f.Synthetic) != s.Classes {
		t.Fatalf("panel sizes %d/%d", len(f.Real), len(f.Synthetic))
	}
	if f.Agreement < 0.5 {
		t.Fatalf("synthetic agreement %.2f; Algorithm 2 samples should mostly classify as target", f.Agreement)
	}
	out := f.Render(3)
	if !strings.Contains(out, "real 0") || !strings.Contains(out, "synth 0") {
		t.Fatalf("Fig. 4 render missing captions:\n%s", out)
	}
	// Only 3 classes rendered.
	if strings.Contains(out, "real 3") {
		t.Fatal("maxClasses not respected")
	}
}

func TestDetectionTableFast(t *testing.T) {
	s := fastCIFAR()
	p := DefaultDetectionParams()
	p.Sizes = []int{5, 15}
	p.Trials = 60
	d, err := RunDetection(s, p)
	if err != nil {
		t.Fatal(err)
	}
	for si := 0; si < 2; si++ {
		for ai := 0; ai < 3; ai++ {
			if len(d.Cells[si][ai]) != 2 {
				t.Fatalf("cell [%d][%d] has %d sizes", si, ai, len(d.Cells[si][ai]))
			}
			// Detection monotone in suite size (paired trials).
			if d.Cells[si][ai][1].Rate() < d.Cells[si][ai][0].Rate() {
				t.Errorf("%s/%s: rate fell with more tests: %.2f -> %.2f",
					SuiteNames[si], AttackNames[ai], d.Cells[si][ai][0].Rate(), d.Cells[si][ai][1].Rate())
			}
		}
	}
	// Proposed should do at least as well as the neuron baseline in the
	// aggregate (per-cell it may tie at small trial counts).
	var neu, prop float64
	for ai := 0; ai < 3; ai++ {
		for i := range d.Sizes {
			neu += d.Cells[0][ai][i].Rate()
			prop += d.Cells[1][ai][i].Rate()
		}
	}
	if prop < neu-0.02 {
		t.Fatalf("proposed aggregate %.3f below neuron-baseline %.3f", prop, neu)
	}
	out := d.Render()
	if !strings.Contains(out, "N=5") || !strings.Contains(out, "prop GDA") {
		t.Fatalf("detection render:\n%s", out)
	}
}

func TestDetectionValidation(t *testing.T) {
	s := fastCIFAR()
	if _, err := RunDetection(s, DetectionParams{}); err == nil {
		t.Fatal("empty detection params accepted")
	}
}

func TestAblationSwitch(t *testing.T) {
	s := fastCIFAR()
	a, err := RunAblationSwitch(s, 15, []int{3, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 5 { // adaptive, never, immediate, k=3, k=8
		t.Fatalf("%d rows", len(a.Rows))
	}
	// The adaptive policy should not be far below the best policy.
	best := 0.0
	var adaptive float64
	for _, r := range a.Rows {
		if r.FinalVC > best {
			best = r.FinalVC
		}
		if r.Policy == "adaptive (paper)" {
			adaptive = r.FinalVC
		}
	}
	// The adaptive criterion is myopic (it compares marginal gains); on
	// tiny testbeds a fixed or pure policy can beat it by a few points,
	// so assert it stays within a band of the best.
	if adaptive < best-0.12 {
		t.Fatalf("adaptive %.4f far below best policy %.4f", adaptive, best)
	}
	if !strings.Contains(a.Render(), "adaptive") {
		t.Fatal("A1 render missing policy")
	}
}

func TestAblationInit(t *testing.T) {
	s := fastCIFAR()
	a, err := RunAblationInit(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.ZeroVC <= 0 || a.GaussVC <= 0 {
		t.Fatalf("degenerate ablation: %+v", a)
	}
	if !strings.Contains(a.Render(), "zeros (paper)") {
		t.Fatal("A2 render missing rows")
	}
}

func TestAblationEpsilonMonotone(t *testing.T) {
	s := fastMNIST() // Tanh model: ε matters
	eps := []float64{1e-8, 1e-4, 1e-2, 1e-1}
	a := RunAblationEpsilon(s, eps, 10)
	if len(a.MeanVC) != len(eps) {
		t.Fatalf("%d results", len(a.MeanVC))
	}
	for i := 1; i < len(a.MeanVC); i++ {
		if a.MeanVC[i] > a.MeanVC[i-1]+1e-9 {
			t.Fatalf("coverage rose with larger ε: %v", a.MeanVC)
		}
	}
	if !strings.Contains(a.Render(), "epsilon") {
		t.Fatal("A3 render missing header")
	}
}

func TestAblationCompareOrdering(t *testing.T) {
	s := fastCIFAR()
	a, err := RunAblationCompare(s, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 3 {
		t.Fatalf("%d rows", len(a.Rows))
	}
	// Exact ≥ quantized ≥ labels: each coarsening can only hide faults.
	if a.Rows[0].Rate < a.Rows[1].Rate-1e-9 || a.Rows[1].Rate < a.Rows[2].Rate-1e-9 {
		t.Fatalf("comparison-mode ordering violated: %+v", a.Rows)
	}
	if !strings.Contains(a.Render(), "exact") {
		t.Fatal("A4 render missing modes")
	}
}

func TestTableFormatter(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tab.AddRow("x", 0.5)
	tab.AddRow("longer", 42)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "50.0%") || !strings.Contains(out, "42") {
		t.Fatalf("cell formatting:\n%s", out)
	}
}

func TestSamplePoints(t *testing.T) {
	pts := samplePoints(30)
	if pts[len(pts)-1] != 30 {
		t.Fatalf("budget not included: %v", pts)
	}
	for _, p := range pts {
		if p > 30 {
			t.Fatalf("point beyond budget: %v", pts)
		}
	}
	if got := samplePoints(3); got[len(got)-1] != 3 {
		t.Fatalf("small budget: %v", got)
	}
}

func TestWireBandwidthTable(t *testing.T) {
	w, err := RunWire([]*Setup{fastMNIST()}, 8, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Rows) != 3 {
		t.Fatalf("%d rows for 3 dialects", len(w.Rows))
	}
	var v2, v4 WireRow
	for _, r := range w.Rows {
		if !r.ReplayPass {
			t.Fatalf("%s %s: replay of the intact network failed", r.Model, r.Dialect)
		}
		if r.BytesPerQuery <= 0 {
			t.Fatalf("%s %s: measured %v bytes/query", r.Model, r.Dialect, r.BytesPerQuery)
		}
		switch r.Dialect {
		case "v2 gob float64":
			v2 = r
		case "v4 quant delta":
			v4 = r
		}
	}
	// The acceptance bar of the v4 dialect, measured on a live replay:
	// at least 4x fewer bytes per query than the v2 gob frames.
	if v4.BytesPerQuery*4 > v2.BytesPerQuery {
		t.Fatalf("v4 replay used %.1f bytes/query vs %.1f on v2 — less than the 4x bar",
			v4.BytesPerQuery, v2.BytesPerQuery)
	}
	out := w.Render()
	for _, want := range []string{"bytes/query", "vs v2", "v4 quant delta", "PASS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("wire table missing %q:\n%s", want, out)
		}
	}
}
