package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/validate"
)

// AblationSwitch (A1) compares switch-point policies at a fixed budget:
// the paper's adaptive criterion, fixed switch points, and the two pure
// methods. It isolates the value of §IV-D's marginal-gain comparison.
type AblationSwitch struct {
	Budget int
	Rows   []AblationSwitchRow
}

// AblationSwitchRow is one policy's outcome.
type AblationSwitchRow struct {
	Policy      string
	SwitchPoint int
	FinalVC     float64
}

// RunAblationSwitch evaluates adaptive, never (pure Algorithm 1),
// immediate (pure Algorithm 2) and fixed-k policies.
func RunAblationSwitch(s *Setup, budget int, fixed []int) (*AblationSwitch, error) {
	opts := s.GenOptions(budget)
	opts.Coverage = s.Cov
	opts.Seed = s.Params.Seed + 700

	out := &AblationSwitch{Budget: budget}

	comb, err := core.Combined(s.Net, s.Select, opts)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, AblationSwitchRow{"adaptive (paper)", comb.SwitchPoint, comb.FinalCoverage()})

	sel, err := core.SelectFromTraining(s.Net, s.Select, opts)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, AblationSwitchRow{"never (pure Alg1)", -1, sel.FinalCoverage()})

	grad, err := core.GradientGenerate(s.Net, s.InShape, s.Classes, opts)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, AblationSwitchRow{"immediate (pure Alg2)", 0, grad.FinalCoverage()})

	for _, k := range fixed {
		if k <= 0 || k >= budget {
			continue
		}
		selOpts := opts
		selOpts.MaxTests = k
		head, err := core.SelectFromTraining(s.Net, s.Select, selOpts)
		if err != nil {
			return nil, err
		}
		tailOpts := opts
		tailOpts.MaxTests = budget - len(head.Tests)
		tail, err := core.SynthesisFrom(s.Net, s.InShape, s.Classes, tailOpts, head.Covered)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AblationSwitchRow{
			Policy:      fmt.Sprintf("fixed k=%d", k),
			SwitchPoint: k,
			FinalVC:     tail.FinalCoverage(),
		})
	}
	return out, nil
}

// Render returns the A1 table text.
func (a *AblationSwitch) Render() string {
	tab := &Table{
		Title:   fmt.Sprintf("Ablation A1 — switch-point policy at budget %d", a.Budget),
		Headers: []string{"policy", "switch", "final VC"},
	}
	for _, r := range a.Rows {
		sw := "-"
		if r.SwitchPoint >= 0 {
			sw = fmt.Sprintf("%d", r.SwitchPoint)
		}
		tab.AddRow(r.Policy, sw, r.FinalVC)
	}
	return tab.String()
}

// AblationInit (A2) compares Algorithm 2's zero initialisation (paper)
// against Gaussian initialisation at a fixed budget.
type AblationInit struct {
	Budget  int
	ZeroVC  float64
	GaussVC float64
}

// RunAblationInit evaluates both initialisation modes.
func RunAblationInit(s *Setup, budget int) (*AblationInit, error) {
	opts := s.GenOptions(budget)
	opts.Coverage = s.Cov
	opts.Seed = s.Params.Seed + 800

	z, err := core.GradientGenerate(s.Net, s.InShape, s.Classes, opts)
	if err != nil {
		return nil, err
	}
	gOpts := opts
	gOpts.Init = core.GaussianInit
	g, err := core.GradientGenerate(s.Net, s.InShape, s.Classes, gOpts)
	if err != nil {
		return nil, err
	}
	return &AblationInit{Budget: budget, ZeroVC: z.FinalCoverage(), GaussVC: g.FinalCoverage()}, nil
}

// Render returns the A2 table text.
func (a *AblationInit) Render() string {
	tab := &Table{
		Title:   fmt.Sprintf("Ablation A2 — Algorithm 2 initialisation at budget %d", a.Budget),
		Headers: []string{"init", "final VC"},
	}
	tab.AddRow("zeros (paper)", a.ZeroVC)
	tab.AddRow("gaussian", a.GaussVC)
	return tab.String()
}

// AblationEpsilon (A3) sweeps the relative activation threshold ε on a
// saturating-activation (Tanh) model: larger ε counts near-saturated
// parameters as un-activated, shrinking measured coverage (paper §IV-A).
type AblationEpsilon struct {
	Epsilons []float64
	MeanVC   []float64 // mean single-probe coverage per ε
}

// RunAblationEpsilon measures mean probe coverage at each relative ε.
func RunAblationEpsilon(s *Setup, epsilons []float64, nProbes int) *AblationEpsilon {
	out := &AblationEpsilon{Epsilons: epsilons}
	probes := s.Train.Subset(nProbes)
	for _, eps := range epsilons {
		cfg := coverage.Config{Epsilon: eps, Relative: true}
		fr := make([]float64, 0, probes.Len())
		for _, sm := range probes.Samples {
			fr = append(fr, coverage.ParamActivation(s.Net, sm.X, cfg).Fraction())
		}
		out.MeanVC = append(out.MeanVC, tensor.Sum(fr)/float64(probes.Len()))
	}
	return out
}

// Render returns the A3 table text.
func (a *AblationEpsilon) Render() string {
	tab := &Table{
		Title:   "Ablation A3 — relative ε threshold vs measured coverage (Tanh model)",
		Headers: []string{"epsilon", "mean probe VC"},
	}
	for i, e := range a.Epsilons {
		tab.AddRow(fmt.Sprintf("%.0e", e), a.MeanVC[i])
	}
	return tab.String()
}

// AblationCompare (A4) measures how the user-side comparison mode
// changes detection: exact outputs (paper), quantised outputs, and
// labels only, under the random perturbation attack.
type AblationCompare struct {
	SuiteSize int
	Rows      []AblationCompareRow
}

// AblationCompareRow is one comparison mode's detection rate.
type AblationCompareRow struct {
	Mode validate.CompareMode
	Rate float64
}

// RunAblationCompare builds one combined suite and replays the same
// attack population under each comparison mode.
func RunAblationCompare(s *Setup, suiteSize, trials int) (*AblationCompare, error) {
	opts := s.GenOptions(suiteSize)
	opts.Coverage = s.Cov
	opts.Seed = s.Params.Seed + 900
	res, err := core.Combined(s.Net, s.Select, opts)
	if err != nil {
		return nil, err
	}
	atk := func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, error) {
		return attack.RandomNoise(n, 5, 0.5, rng)
	}
	out := &AblationCompare{SuiteSize: suiteSize}
	for _, mode := range []validate.CompareMode{validate.ExactOutputs, validate.QuantizedOutputs, validate.LabelsOnly} {
		suite := validate.BuildSuite("ablation", s.Net, res.Tests, mode)
		suite.Decimals = 3
		dr, err := validate.DetectionRate(s.Net, suite, atk, trials, s.Params.Seed+901)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AblationCompareRow{Mode: mode, Rate: dr.Rate()})
	}
	return out, nil
}

// Render returns the A4 table text.
func (a *AblationCompare) Render() string {
	tab := &Table{
		Title:   fmt.Sprintf("Ablation A4 — comparison mode vs detection rate (%d tests, random perturbations)", a.SuiteSize),
		Headers: []string{"compare mode", "detection"},
	}
	for _, r := range a.Rows {
		tab.AddRow(r.Mode.String(), r.Rate)
	}
	return tab.String()
}
