package experiments

import "fmt"

// Table1 reports the two architectures and their training quality — the
// reproduction of Table I plus the accuracy claims of §V-A (98.9% MNIST
// / 84.26% CIFAR on the paper's full-scale testbed).
type Table1 struct {
	Rows []Table1Row
}

// Table1Row is one model's summary.
type Table1Row struct {
	Model      string
	Activation string
	Chans      [4]int
	Hidden     int
	InputHW    int
	NumParams  int
	Accuracy   float64
}

// RunTable1 summarises both trained setups.
func RunTable1(mnist, cifar *Setup) *Table1 {
	row := func(s *Setup) Table1Row {
		return Table1Row{
			Model:      s.Name,
			Activation: s.Arch.Act.String(),
			Chans:      s.Arch.Chans,
			Hidden:     s.Arch.Hidden,
			InputHW:    s.Params.H,
			NumParams:  s.Net.NumParams(),
			Accuracy:   s.Accuracy,
		}
	}
	return &Table1{Rows: []Table1Row{row(mnist), row(cifar)}}
}

// Render returns the table text.
func (t *Table1) Render() string {
	tab := &Table{
		Title:   "Table I — architectures and training accuracy (scaled testbeds)",
		Headers: []string{"model", "act", "conv channels", "hidden", "input", "params", "train acc"},
	}
	for _, r := range t.Rows {
		tab.AddRow(r.Model, r.Activation,
			fmt.Sprintf("%d/%d/%d/%d", r.Chans[0], r.Chans[1], r.Chans[2], r.Chans[3]),
			r.Hidden, fmt.Sprintf("%dx%d", r.InputHW, r.InputHW), r.NumParams, r.Accuracy)
	}
	return tab.String()
}
