package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/nn"
	"repro/internal/validate"
)

// DetectionTable reproduces Table II (MNIST) and Table III (CIFAR):
// detection rates under SBA, GDA and random perturbations, at suite
// sizes N ∈ {10..50}, for the neuron-coverage baseline suite versus the
// proposed parameter-coverage (combined) suite.
type DetectionTable struct {
	Model string
	Sizes []int
	// Cells[suite][attack][sizeIdx] with suite ∈ {0: neuron, 1:
	// proposed} and attack ∈ {0: SBA, 1: GDA, 2: random}.
	Cells [2][3][]validate.DetectionResult
}

// AttackNames label the attack columns.
var AttackNames = [3]string{"SBA", "GDA", "Random"}

// SuiteNames label the two generation criteria.
var SuiteNames = [2]string{"neuron coverage", "proposed (param coverage)"}

// DetectionParams controls the campaign size.
type DetectionParams struct {
	Sizes  []int // suite sizes (paper: 10,20,30,40,50)
	Trials int   // perturbation trials per cell (paper: 10000)
	// SBAMagnitude is the injected bias offset.
	SBAMagnitude float64
	// RandomCount / RandomSigma parameterise the Gaussian perturbation.
	RandomCount int
	RandomSigma float64
	// GDA holds the gradient-descent-attack configuration.
	GDA attack.GDAConfig
	// Mode is the user-side output comparison. ExactOutputs suits the
	// ReLU model (the paper's bit-identical check); the Tanh model needs
	// QuantizedOutputs, since with saturating activations virtually
	// every parameter moves the float64 output and exact comparison
	// detects everything trivially.
	Mode validate.CompareMode
	// Decimals applies to QuantizedOutputs.
	Decimals int
	// Batch, when positive, groups that many queries per batched
	// forward pass during each trial's detection replay. Rates are
	// identical at any value (batched evaluation is bit-identical);
	// purely a throughput knob.
	Batch int
}

// DefaultDetectionParams mirrors the paper's setting at reduced trial
// count.
func DefaultDetectionParams() DetectionParams {
	return DetectionParams{
		Sizes:        []int{10, 20, 30, 40, 50},
		Trials:       200,
		SBAMagnitude: 5,
		RandomCount:  1,
		RandomSigma:  0.5,
		GDA:          attack.GDAConfig{Steps: 15, LR: 0.05, TopK: 20},
		Mode:         validate.ExactOutputs,
		Decimals:     3,
	}
}

// RunDetection builds one neuron-coverage suite and one combined suite
// at the largest requested size, then measures every (suite prefix,
// attack) cell. Greedy generation is prefix-consistent, so the N-test
// suite is exactly the first N tests of the largest run — matching how
// the paper grows N.
func RunDetection(s *Setup, p DetectionParams) (*DetectionTable, error) {
	if len(p.Sizes) == 0 || p.Trials <= 0 {
		return nil, fmt.Errorf("experiments: detection needs sizes and positive trials")
	}
	maxN := 0
	for _, n := range p.Sizes {
		if n > maxN {
			maxN = n
		}
	}

	opts := s.GenOptions(maxN)
	opts.Coverage = s.Cov
	opts.Seed = s.Params.Seed + 600

	proposed, err := core.Combined(s.Net, s.Select, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: proposed suite: %w", err)
	}
	// The baseline generates its tests by neuron-coverage fuzzing over
	// mutated training seeds, as the cited hardware-testing tools do; a
	// limited seed pool keeps the precomputation tractable.
	seedPool := s.Select.Subset(50)
	neuron, err := core.NeuronFuzz(s.Net, seedPool, coverage.NeuronConfig{}, core.DefaultMutationConfig(), opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: neuron suite: %w", err)
	}

	victims := s.Select
	attacks := [3]validate.AttackFn{
		func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, error) {
			return attack.SBA(n, p.SBAMagnitude, rng)
		},
		func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, error) {
			// The attacker targets a victim the IP currently classifies
			// correctly; on a misclassified input GDA has nothing to do
			// and would return an empty perturbation.
			for tries := 0; tries < 50; tries++ {
				v := victims.Samples[rng.Intn(victims.Len())]
				if n.Predict(v.X) != v.Label {
					continue
				}
				pert, _, err := attack.GDA(n, v.X, v.Label, p.GDA, rng)
				return pert, err
			}
			v := victims.Samples[rng.Intn(victims.Len())]
			pert, _, err := attack.GDA(n, v.X, v.Label, p.GDA, rng)
			return pert, err
		},
		func(n *nn.Network, rng *rand.Rand) (*attack.Perturbation, error) {
			return attack.RandomNoise(n, p.RandomCount, p.RandomSigma, rng)
		},
	}

	// One perturbation population per attack, shared by every (suite,
	// size) cell: paired trials keep the cells comparable and run the
	// expensive attacks once instead of once per cell.
	var populations [3][]*attack.Perturbation
	for ai, atk := range attacks {
		perts, err := validate.Perturbations(s.Net, atk, p.Trials, s.Params.Seed+int64(100*ai))
		if err != nil {
			return nil, fmt.Errorf("experiments: %s population: %w", AttackNames[ai], err)
		}
		populations[ai] = perts
	}

	out := &DetectionTable{Model: s.Name, Sizes: p.Sizes}
	for si, res := range []*core.Result{neuron, proposed} {
		full := validate.BuildSuite(
			fmt.Sprintf("%s-%s", s.Name, SuiteNames[si]), s.Net, res.Tests, p.Mode)
		full.Decimals = p.Decimals
		for ai := range attacks {
			for _, n := range p.Sizes {
				dr, err := validate.DetectionRateOverWith(s.Net, full.Prefix(n), populations[ai], validate.ValidateOptions{Batch: p.Batch})
				if err != nil {
					return nil, fmt.Errorf("experiments: %s/%s/N=%d: %w", SuiteNames[si], AttackNames[ai], n, err)
				}
				out.Cells[si][ai] = append(out.Cells[si][ai], dr)
			}
		}
	}
	return out, nil
}

// Render returns the Table II/III style text.
func (d *DetectionTable) Render() string {
	tab := &Table{
		Title: fmt.Sprintf("Detection rate under perturbations — %s model (%d trials/cell)", d.Model, d.trials()),
		Headers: []string{"#tests",
			"neuron SBA", "neuron GDA", "neuron Rand",
			"prop SBA", "prop GDA", "prop Rand"},
	}
	for i, n := range d.Sizes {
		tab.AddRow(fmt.Sprintf("N=%d", n),
			d.Cells[0][0][i].Rate(), d.Cells[0][1][i].Rate(), d.Cells[0][2][i].Rate(),
			d.Cells[1][0][i].Rate(), d.Cells[1][1][i].Rate(), d.Cells[1][2][i].Rate())
	}
	return tab.String()
}

func (d *DetectionTable) trials() int {
	if len(d.Cells[0][0]) == 0 {
		return 0
	}
	return d.Cells[0][0][0].Trials
}

// ProposedWins reports whether the proposed suite's detection rate is at
// least the neuron suite's in every cell — the paper's headline claim.
func (d *DetectionTable) ProposedWins() bool {
	for ai := 0; ai < 3; ai++ {
		for i := range d.Sizes {
			if d.Cells[1][ai][i].Rate() < d.Cells[0][ai][i].Rate() {
				return false
			}
		}
	}
	return true
}
