package experiments

import (
	"fmt"
	"strings"
)

// Table is a minimal aligned text table for experiment reports.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells, formatting non-strings with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f%%", 100*v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
			if i < cols-1 {
				b.WriteString("  ")
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range width {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
