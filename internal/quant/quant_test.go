package quant_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/train"
	"repro/internal/validate"
)

var quantNet = sync.OnceValue(func() *nn.Network {
	net := models.Tiny(nn.ReLU, 1, 10, 10, 4, 10, 401)
	ds := data.Digits(150, 10, 10, 402)
	if _, err := train.Fit(net, ds, train.Config{
		Epochs: 5, BatchSize: 16, Optimizer: train.NewAdam(0.003), Seed: 1,
	}); err != nil {
		panic(err)
	}
	return net
})

func cloneNet(t *testing.T, net *nn.Network) *nn.Network {
	t.Helper()
	m := quant.Quantize(net) // cheap way to get an arch clone? No — use encode/decode.
	_ = m
	var buf memBuffer
	if err := net.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := nn.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// memBuffer is a minimal in-memory io.ReadWriter.
type memBuffer struct{ data []byte }

func (b *memBuffer) Write(p []byte) (int, error) { b.data = append(b.data, p...); return len(p), nil }
func (b *memBuffer) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		return 0, errEOF
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}

var errEOF = eofError{}

type eofError struct{}

func (eofError) Error() string { return "EOF" }

func TestQuantizeRoundTripError(t *testing.T) {
	net := quantNet()
	m := quant.Quantize(net)
	if m.NumParams() != net.NumParams() {
		t.Fatalf("quantised %d of %d params", m.NumParams(), net.NumParams())
	}
	worst, err := m.MaxError(net)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric int8: error bounded by half a step of the widest tensor.
	maxScale := 0.0
	for _, tq := range m.Tensors {
		if tq.Scale > maxScale {
			maxScale = tq.Scale
		}
	}
	if worst > maxScale/2+1e-12 {
		t.Fatalf("round-trip error %v exceeds half step %v", worst, maxScale/2)
	}
}

func TestQuantizedModelKeepsAccuracy(t *testing.T) {
	net := quantNet()
	test := data.Digits(100, 10, 10, 403)
	accFloat := train.Accuracy(net, test)

	deployed := cloneNet(t, net)
	m := quant.Quantize(net)
	if err := m.Dequantize(deployed); err != nil {
		t.Fatal(err)
	}
	accQuant := train.Accuracy(deployed, test)
	if accQuant < accFloat-0.1 {
		t.Fatalf("int8 accuracy %.3f far below float %.3f", accQuant, accFloat)
	}
}

func TestDequantizeShapeMismatch(t *testing.T) {
	net := quantNet()
	m := quant.Quantize(net)
	other := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 404)
	if err := m.Dequantize(other); err == nil {
		t.Fatal("mismatched architecture accepted")
	}
	if _, err := m.MaxError(other); err == nil {
		t.Fatal("mismatched architecture accepted by MaxError")
	}
}

func TestAllZeroTensorQuantizes(t *testing.T) {
	net := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 405)
	// Fresh biases are zero: their tensors must survive quantisation.
	m := quant.Quantize(net)
	deployed := models.Tiny(nn.ReLU, 1, 8, 8, 2, 10, 406)
	if err := m.Dequantize(deployed); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < net.NumParams(); i++ {
		if math.Abs(deployed.ParamAt(i)-net.ParamAt(i)) > 0.1 {
			t.Fatalf("param %d: %v vs %v", i, deployed.ParamAt(i), net.ParamAt(i))
		}
	}
}

func TestFlipBitsAndRevert(t *testing.T) {
	net := quantNet()
	m := quant.Quantize(net)
	before := make([]int8, len(m.Tensors[0].Q))
	copy(before, m.Tensors[0].Q)

	rng := rand.New(rand.NewSource(7))
	faults, err := m.FlipBits(5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 5 {
		t.Fatalf("%d faults", len(faults))
	}
	changed := 0
	for _, f := range faults {
		if m.Tensors[f.Tensor].Q[f.Index] != f.Old {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("no stored byte changed")
	}
	m.Revert(faults)
	worst, err := m.MaxError(net)
	if err != nil {
		t.Fatal(err)
	}
	maxScale := 0.0
	for _, tq := range m.Tensors {
		if tq.Scale > maxScale {
			maxScale = tq.Scale
		}
	}
	if worst > maxScale/2+1e-12 {
		t.Fatal("revert did not restore the image")
	}
}

func TestFlipBitsValidation(t *testing.T) {
	m := quant.Quantize(quantNet())
	rng := rand.New(rand.NewSource(8))
	if _, err := m.FlipBits(0, rng); err == nil {
		t.Fatal("count=0 accepted")
	}
	if _, err := m.FlipBits(m.NumParams()+1, rng); err == nil {
		t.Fatal("oversized count accepted")
	}
}

func TestSuiteDetectsMemoryFaults(t *testing.T) {
	// End to end: a suite generated on the vendor's float model detects
	// bit flips injected into the deployed accelerator's int8 weight
	// memory. The reference outputs must come from the *deployed*
	// (quantised) model — vendor and user compare the same fixed-point
	// IP (the paper's Fig. 1 ships Y computed on the released IP).
	net := quantNet()
	ds := data.Digits(60, 10, 10, 409)
	opts := core.DefaultOptions(10)
	res, err := core.SelectFromTraining(net, ds, opts)
	if err != nil {
		t.Fatal(err)
	}

	deployed := cloneNet(t, net)
	m := quant.Quantize(net)
	if err := m.Dequantize(deployed); err != nil {
		t.Fatal(err)
	}
	suite := validate.BuildSuite("quant", deployed, res.Tests, validate.ExactOutputs)

	// Intact deployment passes.
	rep, err := suite.Validate(validate.LocalIP{Net: deployed})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatal("intact quantised IP failed validation")
	}

	// Memory faults: flip bits, re-deploy, validate.
	rng := rand.New(rand.NewSource(9))
	detected := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		faults, err := m.FlipBits(3, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Dequantize(deployed); err != nil {
			t.Fatal(err)
		}
		got, err := suite.Detects(validate.LocalIP{Net: deployed})
		if err != nil {
			t.Fatal(err)
		}
		if got {
			detected++
		}
		m.Revert(faults)
	}
	if err := m.Dequantize(deployed); err != nil {
		t.Fatal(err)
	}
	if detected < trials/2 {
		t.Fatalf("only %d/%d memory-fault trials detected", detected, trials)
	}
}
