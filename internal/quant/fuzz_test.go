package quant

import (
	"math"
	"testing"
)

// FuzzDecodeFrame drives the v4 frame decoder with arbitrary bytes: it
// must never panic, and whatever it accepts must re-encode and decode
// back to the same frame (the codec is a bijection on its accepted
// set). CI runs this natively (go test -fuzz) for a smoke interval on
// every PR; the seed corpus under testdata/fuzz pins the interesting
// shapes (zero deltas, raw escapes, multi-byte varints).
func FuzzDecodeFrame(f *testing.F) {
	scale, _ := Scale(6)
	seedFrames := []Frame{
		QuantizeFrame([]float64{0, 0, 0, 0}, scale),
		QuantizeFrame([]float64{1.25, -3.5, math.NaN(), math.Inf(1), 1e300}, scale),
		QuantizeFrame([]float64{1e9, -1e9, 0.0000005}, scale),
	}
	base := QuantizeFrame([]float64{1.25, -3.5, 17, 17, 17}, scale)
	for _, fr := range seedFrames {
		f.Add(AppendFrame(nil, fr, nil), len(fr), false)
		f.Add(AppendFrame(nil, fr, base), len(fr), true)
	}
	f.Add([]byte{rawEscape}, 1, false)              // truncated escape
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, 1, false) // varint torture

	f.Fuzz(func(t *testing.T, data []byte, n int, useBase bool) {
		if n < 0 || n > 1<<12 {
			return // cap allocation, not semantics
		}
		var b Frame
		if useBase {
			b = base
		}
		frame, rest, err := DecodeFrame(data, n, b)
		if err != nil {
			return
		}
		if len(frame) != n {
			t.Fatalf("decoded %d values, asked for %d", len(frame), n)
		}
		if len(rest) > len(data) {
			t.Fatalf("rest grew: %d > %d", len(rest), len(data))
		}
		again, rest2, err := DecodeFrame(AppendFrame(nil, frame, b), n, b)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-encode of an accepted frame failed: err=%v rest=%d", err, len(rest2))
		}
		if !framesEqual(frame, again) {
			t.Fatal("decode∘encode∘decode changed the frame")
		}
	})
}
