package quant

import (
	"math"
	"math/rand"
	"testing"
)

func TestScaleBounds(t *testing.T) {
	for _, d := range []int{0, 1, 6, MaxDecimals} {
		s, err := Scale(d)
		if err != nil || s != math.Pow(10, float64(d)) {
			t.Fatalf("Scale(%d) = (%v, %v)", d, s, err)
		}
	}
	for _, d := range []int{-1, MaxDecimals + 1, 100} {
		if _, err := Scale(d); err == nil {
			t.Fatalf("Scale(%d) accepted", d)
		}
	}
}

// TestQuantizeValueDomains: ordinary values land in the fixed domain,
// specials and out-of-range magnitudes take the raw escape with the
// original bits preserved.
func TestQuantizeValueDomains(t *testing.T) {
	scale, _ := Scale(6)
	for _, v := range []float64{0, 1, -1, 0.1234565, -273.625, 1e9} {
		f := QuantizeValue(v, scale)
		if f.Raw {
			t.Fatalf("QuantizeValue(%v) escaped to raw", v)
		}
		if want := math.Round(v * scale); float64(f.Q) != want {
			t.Fatalf("QuantizeValue(%v).Q = %d, want %v", v, f.Q, want)
		}
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e300, -1e300} {
		f := QuantizeValue(v, scale)
		if !f.Raw {
			t.Fatalf("QuantizeValue(%v) = fixed %d, want raw escape", v, f.Q)
		}
		if math.Float64bits(f.F) != math.Float64bits(v) {
			t.Fatalf("raw escape of %v lost the original bits", v)
		}
	}
}

// TestMatchesAgreesWithQuantizedCompare: Fixed.Matches must answer
// exactly what the QuantizedOutputs comparison
// round(want·scale) == round(got·scale) answers, including for NaN and
// infinities on either side.
func TestMatchesAgreesWithQuantizedCompare(t *testing.T) {
	vals := []float64{
		0, 1, -1, 0.12345649, 0.12345651, -7.5, 3.1400004, 3.1399996,
		math.NaN(), math.Inf(1), math.Inf(-1), 1e300, 5e-9, -5e-9,
	}
	for _, decimals := range []int{0, 1, 6, 8} {
		scale, _ := Scale(decimals)
		for _, want := range vals {
			for _, got := range vals {
				local := math.Round(want*scale) == math.Round(got*scale)
				if math.IsNaN(want) || math.IsNaN(got) {
					local = false
				}
				wire := QuantizeValue(got, scale).Matches(want, scale)
				if wire != local {
					t.Fatalf("decimals=%d want=%v got=%v: wire verdict %v, local %v",
						decimals, want, got, wire, local)
				}
			}
		}
	}
}

func randomVals(rng *rand.Rand, n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		switch rng.Intn(10) {
		case 0:
			vals[i] = math.NaN()
		case 1:
			vals[i] = math.Inf(1 - 2*rng.Intn(2))
		case 2:
			vals[i] = (rng.Float64() - 0.5) * 1e300
		default:
			vals[i] = (rng.Float64() - 0.5) * 40 // logit-like
		}
	}
	return vals
}

func framesEqual(a, b Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Raw != b[i].Raw || a[i].Q != b[i].Q ||
			math.Float64bits(a[i].F) != math.Float64bits(b[i].F) {
			return false
		}
	}
	return true
}

// TestFrameRoundTrip: encode→decode is the identity for random frames
// at every precision, against a nil base, a matching base, a short
// base, and a base containing raw-escaped values.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, decimals := range []int{0, 1, 6, MaxDecimals} {
		scale, _ := Scale(decimals)
		for trial := 0; trial < 50; trial++ {
			n := rng.Intn(40)
			f := QuantizeFrame(randomVals(rng, n), scale)
			bases := []Frame{
				nil,
				QuantizeFrame(randomVals(rng, n), scale),
				QuantizeFrame(randomVals(rng, n/2), scale), // shorter than f
			}
			for bi, base := range bases {
				enc := AppendFrame(nil, f, base)
				got, rest, err := DecodeFrame(enc, n, base)
				if err != nil {
					t.Fatalf("decimals=%d trial=%d base=%d: %v", decimals, trial, bi, err)
				}
				if len(rest) != 0 {
					t.Fatalf("decimals=%d trial=%d base=%d: %d trailing bytes", decimals, trial, bi, len(rest))
				}
				if !framesEqual(got, f) {
					t.Fatalf("decimals=%d trial=%d base=%d: round trip changed the frame", decimals, trial, bi)
				}
			}
		}
	}
}

// TestFrameDeltaCompression: a frame equal to its base must cost about
// one byte per value; the same frame against no base costs several.
func TestFrameDeltaCompression(t *testing.T) {
	scale, _ := Scale(6)
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = (rng.Float64() - 0.5) * 40
	}
	f := QuantizeFrame(vals, scale)
	vsBase := AppendFrame(nil, f, f)
	if len(vsBase) != len(f) {
		t.Fatalf("zero-delta frame costs %d bytes for %d values, want 1 byte/value", len(vsBase), len(f))
	}
	raw := AppendFrame(nil, f, nil)
	if len(raw) < 3*len(f) {
		t.Fatalf("no-base frame of ~1e7-scale values costs %d bytes for %d values; encoding suspiciously dense", len(raw), len(f))
	}
}

// TestDecodeFrameRejectsGarbage: truncated streams and short raw
// escapes are descriptive errors, and a frame is decoded back-to-back
// with a following one via the rest return.
func TestDecodeFrameRejectsGarbage(t *testing.T) {
	scale, _ := Scale(3)
	f := QuantizeFrame([]float64{1.5, math.NaN(), -2.25}, scale)
	enc := AppendFrame(nil, f, nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeFrame(enc[:cut], len(f), nil); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded", cut, len(enc))
		}
	}
	if _, _, err := DecodeFrame(enc, -1, nil); err == nil {
		t.Fatal("negative length accepted")
	}
	// Two frames in one buffer: rest threads through.
	two := AppendFrame(enc, f, f)
	first, rest, err := DecodeFrame(two, len(f), nil)
	if err != nil {
		t.Fatal(err)
	}
	second, rest, err := DecodeFrame(rest, len(f), first)
	if err != nil || len(rest) != 0 {
		t.Fatalf("second frame: err=%v rest=%d", err, len(rest))
	}
	if !framesEqual(first, f) || !framesEqual(second, f) {
		t.Fatal("back-to-back frames decoded wrong")
	}
}

// TestDequantizeValue: the generic tensor path recovers Q/scale for
// fixed values and the escaped original for raw ones.
func TestDequantizeValue(t *testing.T) {
	scale, _ := Scale(2)
	if got := QuantizeValue(1.234, scale).Value(scale); got != 1.23 {
		t.Fatalf("Value = %v, want 1.23", got)
	}
	if got := QuantizeValue(math.Inf(1), scale).Value(scale); !math.IsInf(got, 1) {
		t.Fatalf("Value of +Inf escape = %v", got)
	}
}
