package quant

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file is the wire-protocol-v4 frame codec: output tensors of a
// QuantizedOutputs replay are shipped as fixed-point integers at the
// suite's decimal precision instead of full float64 payloads. A
// QuantizedOutputs verdict only ever looks at round(v·10^decimals), so
// the fixed-point integer IS the compared value — the client checks the
// wire representation against its own quantised references directly,
// with no dequantise-then-round round trip, and v4 verdicts are the
// QuantizedOutputs verdicts by construction.
//
// Values are delta-encoded against a base frame (the suite's quantised
// reference outputs when the requester shipped them, the previous
// output frame of the exchange otherwise) and the deltas written as
// zig-zag varints, so an intact IP's outputs — deltas of zero against
// the references — cost about one byte per value instead of nine.
//
// The fixed-point domain cannot represent every float64 (NaN, ±Inf, or
// magnitudes whose rounded value leaves the safe integer range), and
// faulted networks do produce such outputs (divergence is exactly what
// replay wants to catch). Those values ride an 8-byte raw-bits escape:
// the comparison then quantises the escaped float64 on the client,
// which is the identical computation the local replay would have done,
// so the verdict still matches bit for bit.

// MaxDecimals bounds the fixed-point precision the codec accepts: 10^18
// is the largest power of ten below 2^62, so every in-range rounded
// value of a sane logit fits the fixed domain with headroom.
const MaxDecimals = 18

// maxFixed bounds the fixed-point integers; rounded magnitudes beyond
// it take the raw escape. Far below MaxInt64 so delta arithmetic
// between two in-range values cannot overflow int64.
const maxFixed = int64(1) << 62

// Scale returns the comparison scale 10^decimals, or an error for a
// precision outside [0, MaxDecimals].
func Scale(decimals int) (float64, error) {
	if decimals < 0 || decimals > MaxDecimals {
		return 0, fmt.Errorf("quant: decimals %d out of range [0,%d]", decimals, MaxDecimals)
	}
	return math.Pow(10, float64(decimals)), nil
}

// Fixed is one value of a quantised frame: the fixed-point integer
// round(v·scale) when Raw is false, or the escaped original float64
// when the value has no fixed-point form.
type Fixed struct {
	Q   int64
	F   float64
	Raw bool
}

// Frame is one tensor's worth of quantised output values.
type Frame []Fixed

// QuantizeValue quantises v at the given scale.
func QuantizeValue(v, scale float64) Fixed {
	r := math.Round(v * scale)
	// NaN fails every ordered comparison, so the bounds checks below
	// reject it along with ±Inf and out-of-range magnitudes.
	if r >= float64(-maxFixed) && r <= float64(maxFixed) {
		return Fixed{Q: int64(r)}
	}
	return Fixed{F: v, Raw: true}
}

// QuantizeFrame quantises every value of vals at the given scale.
func QuantizeFrame(vals []float64, scale float64) Frame {
	f := make(Frame, len(vals))
	for i, v := range vals {
		f[i] = QuantizeValue(v, scale)
	}
	return f
}

// Matches reports whether this wire value equals the quantised form of
// ref at the given scale — the QuantizedOutputs per-value verdict,
// computed on the wire representation. round(x) of an in-range value is
// an integral float64, so float64(f.Q) == round(ref·scale) is exact; a
// raw-escaped value is compared by quantising it here, exactly as a
// local replay would have. NaN on either side compares unequal, i.e. a
// diverged output is always a mismatch, as locally.
func (f Fixed) Matches(ref, scale float64) bool {
	want := math.Round(ref * scale)
	if !f.Raw {
		return float64(f.Q) == want
	}
	return math.Round(f.F*scale) == want
}

// Value returns the float64 this wire value dequantises to: Q/scale for
// fixed-point values, the escaped original otherwise. Only the generic
// tensor path uses it — verdicts go through Matches and never
// dequantise.
func (f Fixed) Value(scale float64) float64 {
	if !f.Raw {
		return float64(f.Q) / scale
	}
	return f.F
}

// Wire tokens. Each value is one uvarint: rawEscape introduces 8
// little-endian bytes of IEEE float64 bits; anything else is
// zigzag(delta)+tokenBias, so the common zero delta costs one byte.
const (
	rawEscape = 0
	tokenBias = 1
)

// baseAt returns the delta base for element i of a frame: the base
// frame's fixed value when it has one, zero otherwise (missing base,
// short base, or a raw-escaped base value).
func baseAt(base Frame, i int) int64 {
	if i < len(base) && !base[i].Raw {
		return base[i].Q
	}
	return 0
}

// AppendFrame appends the wire encoding of f, delta-encoded against
// base (nil for no base), to dst and returns the extended slice. The
// value count is not part of the encoding — framing above carries it.
func AppendFrame(dst []byte, f Frame, base Frame) []byte {
	for i, v := range f {
		if v.Raw {
			dst = append(dst, rawEscape)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
			continue
		}
		delta := uint64(v.Q - baseAt(base, i))
		zz := (delta << 1) ^ uint64(int64(delta)>>63)
		dst = binary.AppendUvarint(dst, zz+tokenBias)
	}
	return dst
}

// DecodeFrame decodes n values from src, delta-decoding against base
// (nil for no base), and returns the frame and the remaining bytes. It
// is safe on arbitrary input: truncation, varint overflow, and deltas
// that leave the fixed domain are errors, never panics.
func DecodeFrame(src []byte, n int, base Frame) (Frame, []byte, error) {
	if n < 0 {
		return nil, nil, fmt.Errorf("quant: negative frame length %d", n)
	}
	if n > len(src) {
		// Every value costs at least one byte, so this cannot decode —
		// reject before n can drive an allocation.
		return nil, nil, fmt.Errorf("quant: frame of %d values cannot fit %d bytes", n, len(src))
	}
	f := make(Frame, 0, n)
	for i := 0; i < n; i++ {
		tok, used := binary.Uvarint(src)
		if used <= 0 {
			return nil, nil, fmt.Errorf("quant: truncated or malformed frame at value %d", i)
		}
		src = src[used:]
		if tok == rawEscape {
			if len(src) < 8 {
				return nil, nil, fmt.Errorf("quant: truncated raw escape at value %d", i)
			}
			f = append(f, Fixed{F: math.Float64frombits(binary.LittleEndian.Uint64(src)), Raw: true})
			src = src[8:]
			continue
		}
		zz := tok - tokenBias
		delta := int64(zz>>1) ^ -int64(zz&1)
		q := delta + baseAt(base, i)
		if q > maxFixed || q < -maxFixed {
			return nil, nil, fmt.Errorf("quant: value %d decodes outside the fixed-point domain", i)
		}
		f = append(f, Fixed{Q: q})
	}
	return f, src, nil
}
