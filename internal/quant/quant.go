// Package quant models the fixed-point weight storage of a hardware DNN
// accelerator. The attacks the paper defends against strike the
// *stored* representation (off-chip weight memory, per Liu et al. [5]
// and the reverse-engineering attacks [6]); this package provides the
// int8 per-tensor affine quantisation such IPs use, a dequantised
// inference path, and the memory-image fault model that flips bits in
// the stored bytes.
//
// The validation scheme is representation-agnostic — the user only sees
// outputs — so suites generated on the float model detect faults
// injected into the quantised image exactly as they detect float
// perturbations, which the tests verify.
package quant

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nn"
)

// TensorQ is one parameter tensor in int8 affine quantisation:
// value ≈ Scale·(q − Zero).
type TensorQ struct {
	Name  string
	Q     []int8
	Scale float64
	Zero  int8
}

// Model is a fully quantised parameter image of a network, in the
// network's flat parameter order.
type Model struct {
	Tensors []TensorQ
	total   int
}

// Quantize converts every parameter tensor of net to int8 with
// symmetric per-tensor scaling (zero point 0), the common choice for
// weights in integer accelerators.
func Quantize(net *nn.Network) *Model {
	m := &Model{}
	for _, p := range net.Params() {
		vals := p.W.Data()
		maxAbs := 0.0
		for _, v := range vals {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		if scale == 0 {
			scale = 1 // all-zero tensor: any scale round-trips zeros
		}
		q := make([]int8, len(vals))
		for i, v := range vals {
			r := math.Round(v / scale)
			if r > 127 {
				r = 127
			} else if r < -128 {
				r = -128
			}
			q[i] = int8(r)
		}
		m.Tensors = append(m.Tensors, TensorQ{Name: p.Name, Q: q, Scale: scale})
		m.total += len(q)
	}
	return m
}

// NumParams returns the total number of quantised scalars.
func (m *Model) NumParams() int { return m.total }

// Dequantize writes the quantised parameters back into net (which must
// have the same architecture), producing the model a fixed-point
// accelerator actually evaluates.
func (m *Model) Dequantize(net *nn.Network) error {
	params := net.Params()
	if len(params) != len(m.Tensors) {
		return fmt.Errorf("quant: model has %d tensors, network has %d", len(m.Tensors), len(params))
	}
	for i, t := range m.Tensors {
		if params[i].W.Size() != len(t.Q) {
			return fmt.Errorf("quant: tensor %s has %d values, parameter expects %d", t.Name, len(t.Q), params[i].W.Size())
		}
		dst := params[i].W.Data()
		for j, q := range t.Q {
			dst[j] = t.Scale * float64(int(q)-int(t.Zero))
		}
	}
	return nil
}

// MaxError returns the largest absolute difference between the float
// parameters of net and the dequantised image; bounded by Scale/2 per
// tensor for in-range values.
func (m *Model) MaxError(net *nn.Network) (float64, error) {
	params := net.Params()
	if len(params) != len(m.Tensors) {
		return 0, fmt.Errorf("quant: model has %d tensors, network has %d", len(m.Tensors), len(params))
	}
	worst := 0.0
	for i, t := range m.Tensors {
		if params[i].W.Size() != len(t.Q) {
			return 0, fmt.Errorf("quant: tensor %s has %d values, parameter expects %d", t.Name, len(t.Q), params[i].W.Size())
		}
		src := params[i].W.Data()
		for j, q := range t.Q {
			deq := t.Scale * float64(int(q)-int(t.Zero))
			if d := math.Abs(deq - src[j]); d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}

// Fault records one bit flip in the stored image.
type Fault struct {
	Tensor int // index into Tensors
	Index  int // element within the tensor
	Bit    uint
	Old    int8
}

// FlipBits injects count random single-bit faults into the stored int8
// image — the rowhammer-style memory fault model. Revert undoes them.
func (m *Model) FlipBits(count int, rng *rand.Rand) ([]Fault, error) {
	if count <= 0 || count > m.total {
		return nil, fmt.Errorf("quant: count %d out of range [1,%d]", count, m.total)
	}
	faults := make([]Fault, 0, count)
	for len(faults) < count {
		flat := rng.Intn(m.total)
		ti, idx := m.locate(flat)
		bit := uint(rng.Intn(8))
		old := m.Tensors[ti].Q[idx]
		m.Tensors[ti].Q[idx] = old ^ int8(1<<bit) //nolint:gosec // 8-bit flip
		faults = append(faults, Fault{Tensor: ti, Index: idx, Bit: bit, Old: old})
	}
	return faults, nil
}

// Revert undoes faults injected by FlipBits (apply in any order; last
// writer wins, so pass the original slice).
func (m *Model) Revert(faults []Fault) {
	for i := len(faults) - 1; i >= 0; i-- {
		f := faults[i]
		m.Tensors[f.Tensor].Q[f.Index] = f.Old
	}
}

func (m *Model) locate(flat int) (tensor, index int) {
	for ti, t := range m.Tensors {
		if flat < len(t.Q) {
			return ti, flat
		}
		flat -= len(t.Q)
	}
	panic(fmt.Sprintf("quant: flat index %d out of range", flat))
}
