// Package tensor implements the dense numeric arrays underlying the DNN
// engine: shape-checked float64 tensors with the operations the network
// layers need (elementwise arithmetic, matrix multiplication, im2col for
// convolution lowering, reductions and random initialisation).
//
// Layout is row-major; images use NCHW (batch, channel, height, width).
// float64 is used throughout so that the numerical gradient checks in
// internal/nn can verify the analytic backward passes tightly.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float64 array with an explicit shape.
// The zero value is an empty tensor; use New or FromSlice.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. A call with no
// dimensions returns a scalar tensor of one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in %v", shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it panics if the length does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// SetAt stores v at the given multi-index.
func (t *Tensor) SetAt(v float64, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of t with a new shape of the same total size.
// The view shares the backing data.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}
}

// Sample returns a view of block b along the leading dimension: for a
// [B, d1, d2, ...] tensor it is the [d1, d2, ...] slice of sample b,
// sharing the backing data. Row-major layout makes every such block
// contiguous, so the view allocates only a header.
func (t *Tensor) Sample(b int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: Sample of a scalar tensor")
	}
	n := t.shape[0]
	if b < 0 || b >= n {
		panic(fmt.Sprintf("tensor: sample %d out of range for shape %v", b, t.shape))
	}
	sz := 1
	for _, d := range t.shape[1:] {
		sz *= d
	}
	s := make([]int, len(t.shape)-1)
	copy(s, t.shape[1:])
	return &Tensor{shape: s, data: t.data[b*sz : (b+1)*sz : (b+1)*sz]}
}

// Stack copies the given same-shaped tensors into one new batch tensor
// with a leading dimension of len(xs); the entry point of every batched
// forward pass. It panics on an empty list or a shape mismatch.
func Stack(xs []*Tensor) *Tensor {
	if len(xs) == 0 {
		panic("tensor: Stack of no tensors")
	}
	shape := append([]int{len(xs)}, xs[0].shape...)
	out := New(shape...)
	sz := xs[0].Size()
	for b, x := range xs {
		if !x.SameShape(xs[0]) {
			panic(fmt.Sprintf("tensor: Stack shape mismatch %v vs %v", x.shape, xs[0].shape))
		}
		copy(out.data[b*sz:(b+1)*sz], x.data)
	}
	return out
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i, d := range t.shape {
		if u.shape[i] != d {
			return false
		}
	}
	return true
}

func (t *Tensor) mustSameShape(u *Tensor, op string) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, u.shape))
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// AddInPlace sets t += u elementwise.
func (t *Tensor) AddInPlace(u *Tensor) {
	t.mustSameShape(u, "add")
	for i, v := range u.data {
		t.data[i] += v
	}
}

// SubInPlace sets t -= u elementwise.
func (t *Tensor) SubInPlace(u *Tensor) {
	t.mustSameShape(u, "sub")
	for i, v := range u.data {
		t.data[i] -= v
	}
}

// MulInPlace sets t *= u elementwise (Hadamard product).
func (t *Tensor) MulInPlace(u *Tensor) {
	t.mustSameShape(u, "mul")
	for i, v := range u.data {
		t.data[i] *= v
	}
}

// Scale multiplies every element by a.
func (t *Tensor) Scale(a float64) {
	for i := range t.data {
		t.data[i] *= a
	}
}

// AddScaled sets t += a*u elementwise; the axpy of SGD updates.
func (t *Tensor) AddScaled(a float64, u *Tensor) {
	t.mustSameShape(u, "addScaled")
	for i, v := range u.data {
		t.data[i] += a * v
	}
}

// Add returns t + u as a new tensor.
func Add(t, u *Tensor) *Tensor {
	c := t.Clone()
	c.AddInPlace(u)
	return c
}

// Sub returns t - u as a new tensor.
func Sub(t, u *Tensor) *Tensor {
	c := t.Clone()
	c.SubInPlace(u)
	return c
}

// Apply replaces every element x with fn(x).
func (t *Tensor) Apply(fn func(float64) float64) {
	for i, v := range t.data {
		t.data[i] = fn(v)
	}
}

// Map returns a new tensor whose elements are fn applied to t's.
func (t *Tensor) Map(fn func(float64) float64) *Tensor {
	c := t.Clone()
	c.Apply(fn)
	return c
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Argmax returns the flat index of the maximum element.
func (t *Tensor) Argmax() int {
	if len(t.data) == 0 {
		panic("tensor: Argmax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the maximum absolute element value (L∞ norm), 0 if empty.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Clamp limits every element to [lo, hi].
func (t *Tensor) Clamp(lo, hi float64) {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
}

// HasNaN reports whether any element is NaN or infinite.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer with a compact summary.
func (t *Tensor) String() string {
	return fmt.Sprintf("tensor%v", t.shape)
}
