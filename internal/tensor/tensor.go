// Package tensor implements the dense numeric arrays underlying the DNN
// engine: shape-checked tensors with the operations the network layers
// need (elementwise arithmetic, matrix multiplication, im2col for
// convolution lowering, reductions and random initialisation).
//
// Layout is row-major; images use NCHW (batch, channel, height, width).
// Storage and kernels are generic over the element type through the Num
// constraint (float32 | float64). The float64 instantiation T64 is the
// engine's reference precision — aliased as Tensor, it is what the
// numerical gradient checks in internal/nn verify the analytic backward
// passes against, and its kernels are bit-identical to the pre-generic
// float64 implementation. The float32 instantiation T32 halves memory
// traffic on the bandwidth-bound inference hot loops; it backs the
// reduced-precision serving path in internal/nn and internal/validate,
// whose replay comparisons run under an explicit tolerance instead of
// bit-exactness.
package tensor

import (
	"fmt"
	"math"
)

// Num constrains the element types the tensor kernels support.
type Num interface {
	float32 | float64
}

// Dense is a dense row-major array of E with an explicit shape.
// The zero value is an empty tensor; use NewOf or FromSliceOf.
type Dense[E Num] struct {
	shape []int
	data  []E
}

// T64 is the float64 tensor, the engine's reference precision.
type T64 = Dense[float64]

// T32 is the float32 tensor of the reduced-precision inference path.
type T32 = Dense[float32]

// Tensor is the engine's default tensor type — the float64
// instantiation, so every pre-existing float64 API and guarantee is
// untouched by the generic storage underneath.
type Tensor = T64

// NewOf returns a zero-filled tensor of E with the given shape. A call
// with no dimensions returns a scalar tensor of one element.
func NewOf[E Num](shape ...int) *Dense[E] {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in %v", shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Dense[E]{shape: s, data: make([]E, n)}
}

// New returns a zero-filled float64 tensor with the given shape.
func New(shape ...int) *Tensor { return NewOf[float64](shape...) }

// New32 returns a zero-filled float32 tensor with the given shape.
func New32(shape ...int) *T32 { return NewOf[float32](shape...) }

// FromSliceOf wraps data in a tensor of the given shape. The slice is
// used directly (not copied); it panics if the length does not match the
// shape.
func FromSliceOf[E Num](data []E, shape ...int) *Dense[E] {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Dense[E]{shape: s, data: data}
}

// FromSlice wraps float64 data in a tensor of the given shape.
func FromSlice(data []float64, shape ...int) *Tensor { return FromSliceOf(data, shape...) }

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Dense[E]) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Dense[E]) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Dense[E]) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Dense[E]) Size() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Dense[E]) Data() []E { return t.data }

// At returns the element at the given multi-index.
func (t *Dense[E]) At(idx ...int) E { return t.data[t.offset(idx)] }

// SetAt stores v at the given multi-index.
func (t *Dense[E]) SetAt(v E, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Dense[E]) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy of t.
func (t *Dense[E]) Clone() *Dense[E] {
	c := NewOf[E](t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of t with a new shape of the same total size.
// The view shares the backing data.
func (t *Dense[E]) Reshape(shape ...int) *Dense[E] {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Dense[E]{shape: s, data: t.data}
}

// Sample returns a view of block b along the leading dimension: for a
// [B, d1, d2, ...] tensor it is the [d1, d2, ...] slice of sample b,
// sharing the backing data. Row-major layout makes every such block
// contiguous, so the view allocates only a header.
func (t *Dense[E]) Sample(b int) *Dense[E] {
	if len(t.shape) == 0 {
		panic("tensor: Sample of a scalar tensor")
	}
	n := t.shape[0]
	if b < 0 || b >= n {
		panic(fmt.Sprintf("tensor: sample %d out of range for shape %v", b, t.shape))
	}
	sz := 1
	for _, d := range t.shape[1:] {
		sz *= d
	}
	s := make([]int, len(t.shape)-1)
	copy(s, t.shape[1:])
	return &Dense[E]{shape: s, data: t.data[b*sz : (b+1)*sz : (b+1)*sz]}
}

// Stack copies the given same-shaped tensors into one new batch tensor
// with a leading dimension of len(xs); the entry point of every batched
// forward pass. It panics on an empty list or a shape mismatch.
func Stack[E Num](xs []*Dense[E]) *Dense[E] {
	if len(xs) == 0 {
		panic("tensor: Stack of no tensors")
	}
	shape := append([]int{len(xs)}, xs[0].shape...)
	out := NewOf[E](shape...)
	sz := xs[0].Size()
	for b, x := range xs {
		if !x.SameShape(xs[0]) {
			panic(fmt.Sprintf("tensor: Stack shape mismatch %v vs %v", x.shape, xs[0].shape))
		}
		copy(out.data[b*sz:(b+1)*sz], x.data)
	}
	return out
}

// SameShape reports whether t and u have identical shapes.
func (t *Dense[E]) SameShape(u *Dense[E]) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i, d := range t.shape {
		if u.shape[i] != d {
			return false
		}
	}
	return true
}

func (t *Dense[E]) mustSameShape(u *Dense[E], op string) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, u.shape))
	}
}

// Fill sets every element to v.
func (t *Dense[E]) Fill(v E) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Dense[E]) Zero() { t.Fill(0) }

// AddInPlace sets t += u elementwise.
func (t *Dense[E]) AddInPlace(u *Dense[E]) {
	t.mustSameShape(u, "add")
	for i, v := range u.data {
		t.data[i] += v
	}
}

// SubInPlace sets t -= u elementwise.
func (t *Dense[E]) SubInPlace(u *Dense[E]) {
	t.mustSameShape(u, "sub")
	for i, v := range u.data {
		t.data[i] -= v
	}
}

// MulInPlace sets t *= u elementwise (Hadamard product).
func (t *Dense[E]) MulInPlace(u *Dense[E]) {
	t.mustSameShape(u, "mul")
	for i, v := range u.data {
		t.data[i] *= v
	}
}

// Scale multiplies every element by a.
func (t *Dense[E]) Scale(a E) {
	for i := range t.data {
		t.data[i] *= a
	}
}

// AddScaled sets t += a*u elementwise; the axpy of SGD updates.
func (t *Dense[E]) AddScaled(a E, u *Dense[E]) {
	t.mustSameShape(u, "addScaled")
	for i, v := range u.data {
		t.data[i] += a * v
	}
}

// Add returns t + u as a new tensor.
func Add[E Num](t, u *Dense[E]) *Dense[E] {
	c := t.Clone()
	c.AddInPlace(u)
	return c
}

// Sub returns t - u as a new tensor.
func Sub[E Num](t, u *Dense[E]) *Dense[E] {
	c := t.Clone()
	c.SubInPlace(u)
	return c
}

// Apply replaces every element x with fn(x).
func (t *Dense[E]) Apply(fn func(E) E) {
	for i, v := range t.data {
		t.data[i] = fn(v)
	}
}

// Map returns a new tensor whose elements are fn applied to t's.
func (t *Dense[E]) Map(fn func(E) E) *Dense[E] {
	c := t.Clone()
	c.Apply(fn)
	return c
}

// Sum returns the sum of all elements.
func (t *Dense[E]) Sum() E {
	var s E
	for _, v := range t.data {
		s += v
	}
	return s
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Dense[E]) Max() E {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Argmax returns the flat index of the maximum element.
func (t *Dense[E]) Argmax() int {
	if len(t.data) == 0 {
		panic("tensor: Argmax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Norm2 returns the Euclidean norm of the flattened tensor, accumulated
// in float64 at any element type.
func (t *Dense[E]) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the maximum absolute element value (L∞ norm), 0 if empty.
func (t *Dense[E]) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return m
}

// Clamp limits every element to [lo, hi].
func (t *Dense[E]) Clamp(lo, hi E) {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
}

// HasNaN reports whether any element is NaN or infinite.
func (t *Dense[E]) HasNaN() bool {
	for _, v := range t.data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer with a compact summary.
func (t *Dense[E]) String() string {
	return fmt.Sprintf("tensor%v", t.shape)
}
