package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 || x.Rank() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("bad tensor: %v size=%d", x.Shape(), x.Size())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(2, -1)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with bad length did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetAt(t *testing.T) {
	x := New(2, 3, 4)
	x.SetAt(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// row-major order: offset of [1,2,3] in [2,3,4] is 1*12+2*4+3 = 23
	if x.Data()[23] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	x.At(0, 2)
}

func TestAtWrongRankPanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-rank At did not panic")
		}
	}()
	x.At(1)
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.SetAt(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape should share backing data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad Reshape did not panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data()[0] = 42
	if x.Data()[0] != 1 {
		t.Fatal("Clone shares data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	sum := Add(a, b)
	for i, want := range []float64{5, 7, 9} {
		if sum.Data()[i] != want {
			t.Fatalf("Add[%d] = %v, want %v", i, sum.Data()[i], want)
		}
	}
	diff := Sub(b, a)
	for i, want := range []float64{3, 3, 3} {
		if diff.Data()[i] != want {
			t.Fatalf("Sub[%d] = %v, want %v", i, diff.Data()[i], want)
		}
	}
	c := a.Clone()
	c.MulInPlace(b)
	for i, want := range []float64{4, 10, 18} {
		if c.Data()[i] != want {
			t.Fatalf("Mul[%d] = %v, want %v", i, c.Data()[i], want)
		}
	}
	d := a.Clone()
	d.Scale(2)
	d.AddScaled(-1, a)
	for i := range a.Data() {
		if d.Data()[i] != a.Data()[i] {
			t.Fatalf("2a - a != a at %d", i)
		}
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a, b := New(2), New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	a.AddInPlace(b)
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{3, -7, 2, 5}, 4)
	if x.Sum() != 3 {
		t.Errorf("Sum = %v", x.Sum())
	}
	if x.Max() != 5 {
		t.Errorf("Max = %v", x.Max())
	}
	if x.Argmax() != 3 {
		t.Errorf("Argmax = %v", x.Argmax())
	}
	if x.MaxAbs() != 7 {
		t.Errorf("MaxAbs = %v", x.MaxAbs())
	}
	want := math.Sqrt(9 + 49 + 4 + 25)
	if math.Abs(x.Norm2()-want) > 1e-12 {
		t.Errorf("Norm2 = %v, want %v", x.Norm2(), want)
	}
}

func TestArgmaxFirstOfTies(t *testing.T) {
	x := FromSlice([]float64{1, 5, 5, 2}, 4)
	if x.Argmax() != 1 {
		t.Fatalf("Argmax of tie = %d, want 1 (first)", x.Argmax())
	}
}

func TestClamp(t *testing.T) {
	x := FromSlice([]float64{-2, 0.5, 3}, 3)
	x.Clamp(0, 1)
	for i, want := range []float64{0, 0.5, 1} {
		if x.Data()[i] != want {
			t.Fatalf("Clamp[%d] = %v, want %v", i, x.Data()[i], want)
		}
	}
}

func TestHasNaN(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	if x.HasNaN() {
		t.Fatal("finite tensor reported NaN")
	}
	x.Data()[1] = math.NaN()
	if !x.HasNaN() {
		t.Fatal("NaN not detected")
	}
	x.Data()[1] = math.Inf(1)
	if !x.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestApplyMap(t *testing.T) {
	x := FromSlice([]float64{1, 4, 9}, 3)
	y := x.Map(math.Sqrt)
	for i, want := range []float64{1, 2, 3} {
		if y.Data()[i] != want {
			t.Fatalf("Map[%d] = %v", i, y.Data()[i])
		}
	}
	if x.Data()[1] != 4 {
		t.Fatal("Map mutated the source")
	}
	x.Apply(func(v float64) float64 { return -v })
	if x.Data()[2] != -9 {
		t.Fatal("Apply failed")
	}
}

func TestMatMulHandChecked(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestMatMulIntoAccumulate(t *testing.T) {
	a := FromSlice([]float64{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	c := New(2, 2)
	MatMulInto(c, a, b, false)
	MatMulInto(c, a, b, true)
	for i, w := range []float64{2, 4, 6, 8} {
		if c.Data()[i] != w {
			t.Fatalf("accumulated MatMul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul mismatch did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulTAMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := New(4, 3), New(4, 5)
	a.FillNormal(rng, 0, 1)
	b.FillNormal(rng, 0, 1)
	got := MatMulTA(a, b)
	at := transpose(a)
	want := MatMul(at, b)
	assertClose(t, got, want, 1e-12)
}

func TestMatMulTBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := New(4, 3), New(5, 3)
	a.FillNormal(rng, 0, 1)
	b.FillNormal(rng, 0, 1)
	got := MatMulTB(a, b)
	want := MatMul(a, transpose(b))
	assertClose(t, got, want, 1e-12)
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, 1, 1}, 3)
	y := MatVec(a, x)
	if y.Data()[0] != 6 || y.Data()[1] != 15 {
		t.Fatalf("MatVec = %v", y.Data())
	}
}

func transpose(a *Tensor) *Tensor {
	m, n := a.Dim(0), a.Dim(1)
	at := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			at.SetAt(a.At(i, j), j, i)
		}
	}
	return at
}

func assertClose(t *testing.T, got, want *Tensor, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("shape %v, want %v", got.Shape(), want.Shape())
	}
	for i := range got.Data() {
		if math.Abs(got.Data()[i]-want.Data()[i]) > tol {
			t.Fatalf("element %d: got %v, want %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestQuickMatMulLinearity(t *testing.T) {
	// (A+B)·C = A·C + B·C
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b, c := New(m, k), New(m, k), New(k, n)
		a.FillNormal(rng, 0, 1)
		b.FillNormal(rng, 0, 1)
		c.FillNormal(rng, 0, 1)
		left := MatMul(Add(a, b), c)
		right := Add(MatMul(a, c), MatMul(b, c))
		for i := range left.Data() {
			if math.Abs(left.Data()[i]-right.Data()[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMatMulIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := New(n, n)
		a.FillNormal(rng, 0, 1)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.SetAt(1, i, i)
		}
		got := MatMul(a, id)
		for i := range got.Data() {
			if got.Data()[i] != a.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFillDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := New(10000)
	x.FillUniform(rng, -1, 1)
	if x.Max() > 1 || -x.Map(func(v float64) float64 { return -v }).Max() < -1 {
		t.Fatal("FillUniform out of range")
	}
	mean := x.Sum() / float64(x.Size())
	if math.Abs(mean) > 0.05 {
		t.Fatalf("uniform mean = %v, want ≈0", mean)
	}
	x.FillNormal(rng, 2, 0.5)
	mean = x.Sum() / float64(x.Size())
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("normal mean = %v, want ≈2", mean)
	}
}

func TestGlorotHeRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := New(5000)
	x.GlorotUniform(rng, 100, 100)
	limit := math.Sqrt(6.0 / 200.0)
	if x.MaxAbs() > limit {
		t.Fatalf("Glorot exceeded limit: %v > %v", x.MaxAbs(), limit)
	}
	y := New(50000)
	y.HeNormal(rng, 128)
	var ss float64
	for _, v := range y.Data() {
		ss += v * v
	}
	std := math.Sqrt(ss / float64(y.Size()))
	want := math.Sqrt(2.0 / 128.0)
	if math.Abs(std-want)/want > 0.1 {
		t.Fatalf("He std = %v, want ≈%v", std, want)
	}
}
