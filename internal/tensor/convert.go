package tensor

import "fmt"

// Precision conversion between the float64 reference tensors and the
// float32 inference path. Conversions are elementwise Go numeric
// conversions: float64→float32 rounds to nearest (the quantisation the
// reduced-precision serving path accepts under an explicit tolerance),
// float32→float64 is exact.

// F32 returns a float32 copy of t.
func (t *Dense[E]) F32() *T32 {
	c := NewOf[float32](t.shape...)
	for i, v := range t.data {
		c.data[i] = float32(v)
	}
	return c
}

// F64 returns a float64 copy of t.
func (t *Dense[E]) F64() *T64 {
	c := NewOf[float64](t.shape...)
	for i, v := range t.data {
		c.data[i] = float64(v)
	}
	return c
}

// ConvertInto copies src into dst elementwise, converting between
// precisions without allocating — the hot path of a serving fleet
// re-quantising its float32 clones from the float64 master. It panics
// on a shape mismatch.
func ConvertInto[D, S Num](dst *Dense[D], src *Dense[S]) {
	if len(dst.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: ConvertInto size mismatch %v vs %v", dst.shape, src.shape))
	}
	for i, v := range src.data {
		dst.data[i] = D(v)
	}
}
