package tensor

// Approved scalar reduction kernels. These are the only places the
// engine folds floating-point values into a scalar: every fold is a
// strict left-to-right accumulation, so a reduction routed through this
// file produces bit-identical results to the ad-hoc loop it replaces —
// and, more importantly, the SAME bits on every run, because the
// element order is the caller's slice order, never a map walk or a
// racing goroutine. The detlint floatreduce analyzer flags scalar FP
// accumulation everywhere outside this package; the fix is to call one
// of these kernels (or annotate with a justification).

// Sum returns the strict left-to-right sum of xs. An empty slice sums
// to zero.
func Sum[E Num](xs []E) E {
	var s E
	for _, v := range xs {
		s += v
	}
	return s
}

// SumSquares returns the strict left-to-right sum of squares of xs —
// the inner fold of MSE losses and L2 norms.
func SumSquares[E Num](xs []E) E {
	var s E
	for _, v := range xs {
		s += v * v
	}
	return s
}

// Dot returns the strict left-to-right inner product of x and y over
// the first min(len(x), len(y)) elements.
func Dot[E Num](x, y []E) E {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	var s E
	for i := 0; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// Mean returns Sum(xs)/len(xs): the same fold and the same single
// division an ad-hoc mean loop performs. Mean of an empty slice is
// zero, not NaN, matching the guarded means in the experiment code.
func Mean[E Num](xs []E) E {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / E(len(xs))
}

// SumStrided sums n elements of xs starting at offset, stepping by
// stride, in ascending index order. It is the approved kernel for
// folds over a non-contiguous axis — e.g. summing the channel values
// of one pixel in a CHW image, where consecutive channels are h*w
// elements apart.
func SumStrided[E Num](xs []E, offset, stride, n int) E {
	var s E
	for i, j := 0, offset; i < n; i, j = i+1, j+stride {
		s += xs[j]
	}
	return s
}
