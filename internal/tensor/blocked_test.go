package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// These are the blocked-kernel property tests: for every kernel in the
// GEMM family, the cache-blocked packed path must be bit-identical to an
// independent reference that states the per-element contract directly —
// element (i,j) accumulates its k terms one at a time in ascending k,
// with the skip-on-zero-A test where the kernel has one — across odd and
// degenerate shapes, both precisions, a worker grid, and blocking
// parameters forced down to degenerate tiny tiles.

// forceBlocking pins the blocking parameters and drops the packing
// threshold to zero so every product (even a 1×1×1) takes the blocked
// packed path, restoring the production values on cleanup. Kernel
// globals are package-level, so these tests must not run in parallel
// with each other.
func forceBlocking(t *testing.T, cols, kTile, rows int) {
	t.Helper()
	prevCols, prevK, prevRows, prevMin := gemmBlockCols, gemmBlockK, gemmBlockRows, gemmPackMinElems
	gemmBlockCols, gemmBlockK, gemmBlockRows, gemmPackMinElems = cols, kTile, rows, 0
	t.Cleanup(func() {
		gemmBlockCols, gemmBlockK, gemmBlockRows, gemmPackMinElems = prevCols, prevK, prevRows, prevMin
	})
}

func randMatOf[E Num](rng *rand.Rand, rows, cols int) *Dense[E] {
	m := NewOf[E](rows, cols)
	for i := range m.Data() {
		// Include exact zeros so the av==0 skip is exercised.
		if rng.Intn(5) == 0 {
			continue
		}
		m.Data()[i] = E(rng.NormFloat64())
	}
	return m
}

func denseEqualBitwise[E Num](t *testing.T, name string, got, want *Dense[E]) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("%s: size %d vs %d", name, got.Size(), want.Size())
	}
	for i := range want.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("%s: element %d = %v, want %v (blocked path must be bit-identical)",
				name, i, got.Data()[i], want.Data()[i])
		}
	}
}

// refMatMul is the independent reference for C = A·B: a scalar
// accumulator per element, terms in ascending k, same zero-skip. Scalar
// accumulation in E rounds exactly like the kernel's in-memory
// accumulation, so reference ≡ kernel bit for bit.
func refMatMul[E Num](a, b *Dense[E], m, k, n int) *Dense[E] {
	c := NewOf[E](m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc E
			for kk := 0; kk < k; kk++ {
				if av := a.Data()[i*k+kk]; av != 0 {
					acc += av * b.Data()[kk*n+j]
				}
			}
			c.Data()[i*n+j] = acc
		}
	}
	return c
}

// refMatMulTA is the reference for C = Aᵀ·B (A is [k,m]).
func refMatMulTA[E Num](a, b *Dense[E], k, m, n int) *Dense[E] {
	c := NewOf[E](m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc E
			for kk := 0; kk < k; kk++ {
				if av := a.Data()[kk*m+i]; av != 0 {
					acc += av * b.Data()[kk*n+j]
				}
			}
			c.Data()[i*n+j] = acc
		}
	}
	return c
}

// refMatMulTB is the reference for C = A·Bᵀ (B is [n,k]); the TB kernel
// has no zero-skip, so neither does the reference.
func refMatMulTB[E Num](a, b *Dense[E], m, k, n int) *Dense[E] {
	c := NewOf[E](m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc E
			for kk := 0; kk < k; kk++ {
				acc += a.Data()[i*k+kk] * b.Data()[j*k+kk]
			}
			c.Data()[i*n+j] = acc
		}
	}
	return c
}

// blockGrids are the forced blocking parameters the property tests sweep:
// degenerate 1-wide tiles, tiny odd tiles, and the production shape.
var blockGrids = []struct{ cols, k, rows int }{
	{1, 1, 1},
	{2, 3, 2},
	{5, 2, 3},
	{8, 8, 4},
	{512, 128, 64},
}

func testBlockedGEMM[E Num](t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, g := range blockGrids {
		forceBlocking(t, g.cols, g.k, g.rows)
		for _, workers := range []int{1, 3} {
			forceParallel(t, workers)
			for _, s := range gemmShapes {
				a := randMatOf[E](rng, s.m, s.k)
				b := randMatOf[E](rng, s.k, s.n)
				denseEqualBitwise(t, "MatMul/blocked", MatMul(a, b), refMatMul(a, b, s.m, s.k, s.n))

				at := randMatOf[E](rng, s.k, s.m)
				denseEqualBitwise(t, "MatMulTA/blocked", MatMulTA(at, b), refMatMulTA(at, b, s.k, s.m, s.n))

				bt := randMatOf[E](rng, s.n, s.k)
				denseEqualBitwise(t, "MatMulTB/blocked", MatMulTB(a, bt), refMatMulTB(a, bt, s.m, s.k, s.n))

				// Accumulating Into form: the destination value seeds the
				// accumulator BEFORE the ascending-k terms, exactly the
				// kernel's in-memory order.
				seedC := randMatOf[E](rng, s.m, s.n)
				want := seedC.Clone()
				for i := 0; i < s.m; i++ {
					for j := 0; j < s.n; j++ {
						acc := want.Data()[i*s.n+j]
						for kk := 0; kk < s.k; kk++ {
							if av := a.Data()[i*s.k+kk]; av != 0 {
								acc += av * b.Data()[kk*s.n+j]
							}
						}
						want.Data()[i*s.n+j] = acc
					}
				}
				got := seedC.Clone()
				MatMulInto(got, a, b, true)
				denseEqualBitwise(t, "MatMulInto/blocked accumulate", got, want)
			}
		}
	}
}

func TestBlockedGEMMMatchesReferenceF64(t *testing.T) { testBlockedGEMM[float64](t, 71) }
func TestBlockedGEMMMatchesReferenceF32(t *testing.T) { testBlockedGEMM[float32](t, 72) }

// TestBlockedMatchesDirect pins blocked ≡ direct on a shape where tiles
// are larger than, equal to, and smaller than the dimensions, with the
// production tile sizes: only the threshold differs between the runs.
func TestBlockedMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	a := randMatOf[float64](rng, 37, 149)
	b := randMatOf[float64](rng, 149, 273)
	direct := MatMul(a, b) // 149*273 < production threshold → direct path
	forceBlocking(t, 512, 128, 64)
	tensorsEqualBitwise(t, "blocked vs direct", MatMul(a, b), direct)
}

func testStridedGEMM[E Num](t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, g := range blockGrids {
		forceBlocking(t, g.cols, g.k, g.rows)
		for _, workers := range []int{1, 3} {
			forceParallel(t, workers)
			for _, s := range gemmShapes {
				a := randMatOf[E](rng, s.m, s.k)
				bias := randMatOf[E](rng, 1, s.m).Data()

				// B lives as a column block inside a 3×-wide matrix; dst as
				// a row-strided block inside a larger buffer.
				wideB := randMatOf[E](rng, s.k, 3*s.n)
				bview := Mat[E]{Data: wideB.Data()[s.n:], Rows: s.k, Cols: s.n, Stride: 3 * s.n}
				dstBuf := make([]E, s.m*(s.n+4)+s.n)
				dview := Mat[E]{Data: dstBuf, Rows: s.m, Cols: s.n, Stride: s.n + 4}

				// Reference: gather B contiguously, MatMul, then the old
				// separate bias pass.
				bc := NewOf[E](s.k, s.n)
				for kk := 0; kk < s.k; kk++ {
					copy(bc.Data()[kk*s.n:(kk+1)*s.n], wideB.Data()[kk*3*s.n+s.n:kk*3*s.n+2*s.n])
				}
				want := MatMul(a, bc)
				for i := 0; i < s.m; i++ {
					row := want.Data()[i*s.n : (i+1)*s.n]
					for j := range row {
						row[j] += bias[i]
					}
				}

				MatMulIntoStrided(dview, a, bview, bias, false)
				for i := 0; i < s.m; i++ {
					for j := 0; j < s.n; j++ {
						if got := dstBuf[i*(s.n+4)+j]; got != want.Data()[i*s.n+j] {
							t.Fatalf("MatMulIntoStrided: (%d,%d) = %v, want %v", i, j, got, want.Data()[i*s.n+j])
						}
					}
				}
				// The gap columns between strided rows must stay untouched.
				for i := 0; i < s.m-1; i++ {
					for j := s.n; j < s.n+4; j++ {
						if dstBuf[i*(s.n+4)+j] != 0 {
							t.Fatalf("MatMulIntoStrided wrote outside its view at row %d gap %d", i, j-s.n)
						}
					}
				}

				// TB against a strided row view ≡ TB against the gathered
				// contiguous block, both accumulate modes.
				wideBT := randMatOf[E](rng, s.n, 3*s.k)
				btview := Mat[E]{Data: wideBT.Data()[s.k:], Rows: s.n, Cols: s.k, Stride: 3 * s.k}
				btc := NewOf[E](s.n, s.k)
				for j := 0; j < s.n; j++ {
					copy(btc.Data()[j*s.k:(j+1)*s.k], wideBT.Data()[j*3*s.k+s.k:j*3*s.k+2*s.k])
				}
				for _, accumulate := range []bool{false, true} {
					seedC := randMatOf[E](rng, s.m, s.n)
					want := seedC.Clone()
					MatMulTBInto(want, a, btc, accumulate)
					got := seedC.Clone()
					MatMulTBIntoStrided(got, a, btview, accumulate)
					denseEqualBitwise(t, "MatMulTBIntoStrided", got, want)
				}
			}
		}
	}
}

func TestStridedGEMMMatchesContiguousF64(t *testing.T) { testStridedGEMM[float64](t, 81) }
func TestStridedGEMMMatchesContiguousF32(t *testing.T) { testStridedGEMM[float32](t, 82) }

// TestMatMulIntoStridedBatchMatchesLoop pins the sample-parallel batched
// entry point against a serial loop of single-sample calls: same views,
// any worker count, bit-identical.
func TestMatMulIntoStridedBatchMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	const m, k, n, samples = 7, 11, 13, 5
	a := randMatOf[float64](rng, m, k)
	bias := randMatOf[float64](rng, 1, m).Data()
	// Samples share one wide column matrix, im2col-batch style.
	wide := randMatOf[float64](rng, k, samples*n)
	mkViews := func(dst []float64) (dsts, cols []Mat[float64]) {
		for s := 0; s < samples; s++ {
			dsts = append(dsts, Mat[float64]{Data: dst[s*m*n : (s+1)*m*n], Rows: m, Cols: n, Stride: n})
			cols = append(cols, Mat[float64]{Data: wide.Data()[s*n:], Rows: k, Cols: n, Stride: samples * n})
		}
		return dsts, cols
	}

	want := make([]float64, samples*m*n)
	dsts, cols := mkViews(want)
	serialOnly(func() {
		for s := 0; s < samples; s++ {
			MatMulIntoStrided(dsts[s], a, cols[s], bias, false)
		}
	})

	for _, workers := range []int{1, 2, 8} {
		forceParallel(t, workers)
		got := make([]float64, samples*m*n)
		dsts, cols := mkViews(got)
		MatMulIntoStridedBatch(dsts, cols, a, bias, false)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: element %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestPackedGEMMSteadyStateZeroAlloc pins the scratch-arena contract:
// once the pack pools are warm, the serial blocked kernels allocate
// nothing per call. The budget of 0.5 tolerates a rare pool eviction by
// a concurrent GC without ever accepting a per-call allocation.
func TestPackedGEMMSteadyStateZeroAlloc(t *testing.T) {
	forceBlocking(t, 16, 8, 8)
	rng := rand.New(rand.NewSource(91))
	const m, k, n = 12, 33, 47
	a := randMatOf[float64](rng, m, k)
	b := randMatOf[float64](rng, k, n)
	c := NewOf[float64](m, n)
	bias := randMatOf[float64](rng, 1, m).Data()
	dview := Mat[float64]{Data: c.Data(), Rows: m, Cols: n, Stride: n}
	bview := MatOf(b)
	serialOnly(func() {
		MatMulInto(c, a, b, false) // warm the pack pool
		if avg := testing.AllocsPerRun(100, func() {
			MatMulInto(c, a, b, false)
		}); avg > 0.5 {
			t.Errorf("steady-state blocked MatMulInto allocates %.2f objects per call, want 0", avg)
		}
		if avg := testing.AllocsPerRun(100, func() {
			MatMulIntoStrided(dview, a, bview, bias, false)
		}); avg > 0.5 {
			t.Errorf("steady-state fused strided GEMM allocates %.2f objects per call, want 0", avg)
		}
	})
}

// TestKernelWorkersOverflowProofFlops is the regression test for the
// saturating flop sizing: an m*k*n product that overflows int must not
// collapse the worker count to 1 (the old raw multiply went negative and
// silently forced huge products onto the serial path).
func TestKernelWorkersOverflowProofFlops(t *testing.T) {
	if gemmFlops(1<<21, 1<<21, 1<<21) != math.MaxInt {
		t.Fatalf("gemmFlops must saturate at MaxInt on overflow, got %d", gemmFlops(1<<21, 1<<21, 1<<21))
	}
	dim := 1 << 21
	if raw := dim * dim * dim; raw >= 0 {
		t.Fatalf("test shape no longer overflows int (raw=%d); pick a bigger one", raw)
	}
	if gemmFlops(0, 5, 5) != 0 || gemmFlops(5, 0, 5) != 0 {
		t.Fatalf("gemmFlops of an empty product must be 0")
	}
	if satMul(math.MaxInt, 2) != math.MaxInt {
		t.Fatalf("satMul must saturate")
	}
	prev := Parallelism()
	SetParallelism(8)
	defer SetParallelism(prev)
	if w := kernelWorkers(1024, gemmFlops(1<<21, 1<<21, 1<<21)); w != 8 {
		t.Fatalf("overflowing flop count sized %d workers, want the full 8", w)
	}
}
