package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// The generic kernel layer's contract: the float64 instantiation is the
// reference (its bit-identity tests live in matmul_parallel_test.go and
// tensor_test.go, running against Tensor = T64), the float32
// instantiation must (a) agree with float64 within float32 rounding and
// (b) keep the precision-independent parallel guarantee — panels
// bit-identical to serial at any worker count.

func randMat32(rng *rand.Rand, rows, cols int) *T32 {
	m := New32(rows, cols)
	for i := range m.Data() {
		if rng.Intn(5) == 0 {
			continue // keep exact zeros so the av==0 skip is exercised
		}
		m.Data()[i] = float32(rng.NormFloat64())
	}
	return m
}

func t32EqualBitwise(t *testing.T, name string, got, want *T32) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v, want %v", name, got.Shape(), want.Shape())
	}
	for i := range want.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("%s: element %d = %x, want %x", name, i, got.Data()[i], want.Data()[i])
		}
	}
}

// TestF32KernelsMatchF64 checks every float32 kernel against the
// float64 reference on the property-test shapes: converting the
// operands down, running the float32 kernel, and comparing against the
// float64 product must agree to float32 rounding accumulated over k
// terms.
func TestF32KernelsMatchF64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range gemmShapes {
		a64, b64 := randMat(rng, s.m, s.k), randMat(rng, s.k, s.n)
		check := func(name string, got32 *T32, want64 *Tensor, k int) {
			t.Helper()
			tol := 1e-5 * float64(k+1)
			for i := range want64.Data() {
				if d := math.Abs(float64(got32.Data()[i]) - want64.Data()[i]); d > tol {
					t.Fatalf("%s %dx%dx%d: element %d off by %g (tol %g)", name, s.m, s.k, s.n, i, d, tol)
				}
			}
		}
		check("MatMul", MatMul(a64.F32(), b64.F32()), MatMul(a64, b64), s.k)
		at64 := randMat(rng, s.k, s.m)
		check("MatMulTA", MatMulTA(at64.F32(), b64.F32()), MatMulTA(at64, b64), s.k)
		bt64 := randMat(rng, s.n, s.k)
		check("MatMulTB", MatMulTB(a64.F32(), bt64.F32()), MatMulTB(a64, bt64), s.k)
		x64 := randMat(rng, s.k, 1).Reshape(s.k)
		check("MatVec", MatVec(a64.F32(), x64.F32()), MatVec(a64, x64), s.k)
	}
}

// TestF32ParallelBitIdentical: the row-panel parallel path of the
// float32 kernels must be bit-identical to their serial path, exactly
// as the float64 tests in matmul_parallel_test.go pin for T64.
func TestF32ParallelBitIdentical(t *testing.T) {
	for _, workers := range []int{2, 3, 8} {
		forceParallel(t, workers)
		rng := rand.New(rand.NewSource(11))
		for _, s := range gemmShapes {
			a, b := randMat32(rng, s.m, s.k), randMat32(rng, s.k, s.n)
			var want *T32
			serialOnly(func() { want = MatMul(a, b) })
			t32EqualBitwise(t, "MatMul/f32", MatMul(a, b), want)

			at := randMat32(rng, s.k, s.m)
			var wantTA *T32
			serialOnly(func() { wantTA = MatMulTA(at, b) })
			t32EqualBitwise(t, "MatMulTA/f32", MatMulTA(at, b), wantTA)

			bt := randMat32(rng, s.n, s.k)
			var wantTB *T32
			serialOnly(func() { wantTB = MatMulTB(a, bt) })
			t32EqualBitwise(t, "MatMulTB/f32", MatMulTB(a, bt), wantTB)
		}
	}
}

// TestIm2ColF32MatchesF64: the lowering is pure data movement, so the
// float32 path must produce exactly the converted float64 matrix.
func TestIm2ColF32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := Geom(2, 6, 6, 3, 3, 1, 1)
	x := New(2, 6, 6)
	x.FillNormal(rng, 0, 1)
	want := Im2Col(x, g).F32()
	got := Im2Col(x.F32(), g)
	t32EqualBitwise(t, "Im2Col/f32", got, want)

	xb := New(3, 2, 6, 6)
	xb.FillNormal(rng, 0, 1)
	wantB := Im2ColBatch(xb, g).F32()
	gotB := Im2ColBatch(xb.F32(), g)
	t32EqualBitwise(t, "Im2ColBatch/f32", gotB, wantB)
}

// TestConvertRoundTrip: float32→float64 is exact, so a value that
// started as float32 survives a round trip bitwise; ConvertInto matches
// the allocating forms.
func TestConvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := New(4, 5)
	a.FillNormal(rng, 0, 1)

	a32 := a.F32()
	if rt := a32.F64().F32(); true {
		t32EqualBitwise(t, "roundtrip", rt, a32)
	}

	dst32 := New32(4, 5)
	ConvertInto(dst32, a)
	t32EqualBitwise(t, "ConvertInto", dst32, a32)

	dst64 := New(4, 5)
	ConvertInto(dst64, a32)
	want64 := a32.F64()
	for i := range want64.Data() {
		if dst64.Data()[i] != want64.Data()[i] {
			t.Fatalf("ConvertInto f64: element %d = %v, want %v", i, dst64.Data()[i], want64.Data()[i])
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("ConvertInto with mismatched sizes did not panic")
		}
	}()
	ConvertInto(New32(2, 2), a)
}
