package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// This file is the strided face of the GEMM family: Mat views let the
// kernels read operands from — and write results into — rectangular
// sub-blocks of larger buffers, which is what deletes the convolution
// path's extra memory passes (the [OutC, B*hw] → [B, OutC, hw] permute
// after the batched forward GEMM and the per-sample column-block scratch
// gathers in the backward). The strided kernels are the SAME kernels as
// the contiguous ones — MatMul/MatMulInto/MatMulTB delegate here with
// Stride == Cols — so there is one serial kernel site and one
// bit-identity argument for the whole family.

// Mat is a strided rank-2 view over a flat element slice: row i occupies
// Data[i*Stride : i*Stride+Cols]. Stride == Cols is an ordinary
// contiguous matrix; Stride > Cols selects a column block of a wider
// matrix (a sample's columns inside an Im2ColBatch block) or a row block
// of a larger tensor (a sample's [OutC, OHW] slab inside a batched
// [B, OutC, OH, OW] output).
type Mat[E Num] struct {
	Data   []E
	Rows   int
	Cols   int
	Stride int
}

// MatOf returns the contiguous Mat view of a rank-2 tensor.
func MatOf[E Num](t *Dense[E]) Mat[E] {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatOf needs a rank-2 tensor, got %v", t.Shape()))
	}
	return Mat[E]{Data: t.Data(), Rows: t.Dim(0), Cols: t.Dim(1), Stride: t.Dim(1)}
}

// check panics if the view is malformed or its last row overruns Data.
// name and operand stay separate arguments (joined only inside the
// panic branches) so the hot path performs no string concatenation.
func (m Mat[E]) check(name, operand string) {
	if m.Rows < 0 || m.Cols < 0 || m.Stride < m.Cols {
		panic(fmt.Sprintf("tensor: %s %s view [%d×%d stride %d] malformed", name, operand, m.Rows, m.Cols, m.Stride))
	}
	if m.Rows > 0 {
		if need := satMul(m.Rows-1, m.Stride) + m.Cols; len(m.Data) < need {
			panic(fmt.Sprintf("tensor: %s %s view [%d×%d stride %d] needs %d elements, data holds %d", name, operand, m.Rows, m.Cols, m.Stride, need, len(m.Data)))
		}
	}
}

func stridedDims[E Num](a *Dense[E], name string) (m, k int) {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s needs a rank-2 A operand, got %v", name, a.Shape()))
	}
	return a.Dim(0), a.Dim(1)
}

func checkStridedGemm[E Num](dst, b Mat[E], bias []E, m, k int, name string) {
	dst.check(name, "dst")
	b.check(name, "b")
	if b.Rows != k || dst.Rows != m || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch: A [%d %d] × B %d×%d → dst %d×%d", name, m, k, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if bias != nil && len(bias) != m {
		panic(fmt.Sprintf("tensor: %s bias length %d, want %d", name, len(bias), m))
	}
}

// MatMulIntoStrided computes dst (+)= A·B with an optional fused bias
// epilogue. A is a dense [m,k] matrix; b (b.Rows == k) and dst
// (dst.Rows == m, dst.Cols == b.Cols) are strided views. When bias is
// non-nil (length m), bias[i] is added to every element of dst row i
// after that element's full-k accumulation — the exact operation order
// of running a separate bias pass after the GEMM, so fusing changes no
// bits. Row panels fan out across the kernel worker pool exactly like
// MatMul; every panel runs the serial kernel sequence, so results are
// bit-identical at any worker count.
func MatMulIntoStrided[E Num](dst Mat[E], a *Dense[E], b Mat[E], bias []E, accumulate bool) {
	m, k := stridedDims(a, "MatMulIntoStrided")
	checkStridedGemm(dst, b, bias, m, k, "MatMulIntoStrided")
	workers := kernelWorkers(m, gemmFlops(m, k, dst.Cols))
	if workers <= 1 {
		// Serial fast path without the parallel.ForUncounted closure, so
		// steady-state packed GEMM performs zero allocations.
		gemmPanel(dst, a.data, b, bias, 0, m, k, accumulate)
		return
	}
	parallel.ForUncounted(m, workers, func(_, lo, hi int) {
		gemmPanel(dst, a.data, b, bias, lo, hi, k, accumulate)
	})
}

// MatMulIntoStridedBatch runs dst[s] (+)= A·b[s] — with the same fused
// bias epilogue — for every sample s, fanning whole samples out across
// the kernel worker pool (the batched convolution forward: one shared
// weight matrix against per-sample column views). Workers own disjoint
// sample ranges and each sample's product runs the full serial kernel
// sequence over all of its rows, so the results are bit-identical to a
// serial loop of MatMulIntoStrided calls at any worker count.
func MatMulIntoStridedBatch[E Num](dst, b []Mat[E], a *Dense[E], bias []E, accumulate bool) {
	if len(dst) != len(b) {
		panic(fmt.Sprintf("tensor: MatMulIntoStridedBatch got %d dst views, %d b views", len(dst), len(b)))
	}
	if len(dst) == 0 {
		return
	}
	if len(dst) == 1 {
		// A single sample parallelises over row panels instead.
		MatMulIntoStrided(dst[0], a, b[0], bias, accumulate)
		return
	}
	m, k := stridedDims(a, "MatMulIntoStridedBatch")
	for s := range dst {
		checkStridedGemm(dst[s], b[s], bias, m, k, "MatMulIntoStridedBatch")
	}
	samples := len(dst)
	workers := kernelWorkers(samples, satMul(samples, gemmFlops(m, k, dst[0].Cols)))
	if workers <= 1 {
		for s := range dst {
			gemmPanel(dst[s], a.data, b[s], bias, 0, m, k, accumulate)
		}
		return
	}
	parallel.ForUncounted(samples, workers, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			gemmPanel(dst[s], a.data, b[s], bias, 0, m, k, accumulate)
		}
	})
}

// MatMulTBIntoStrided computes C += A·Bᵀ (or C = A·Bᵀ when accumulate is
// false) where B is a strided view whose rows are the k-vectors being
// dotted (b.Cols == k). The convolution backward uses it to read a
// sample's column block straight out of the wide Im2ColBatch matrix,
// with no gather copy. Every output cell is the same single scalar dot
// product — k terms in ascending order, one write — as the contiguous
// MatMulTBInto kernel, so strided ≡ contiguous bit for bit.
func MatMulTBIntoStrided[E Num](c, a *Dense[E], b Mat[E], accumulate bool) {
	m, k := stridedDims(a, "MatMulTBIntoStrided")
	b.check("MatMulTBIntoStrided", "b")
	if b.Cols != k {
		panic(fmt.Sprintf("tensor: MatMulTBIntoStrided inner dimension mismatch: A [%d %d] × Bᵀ of %d×%d", m, k, b.Rows, b.Cols))
	}
	n := b.Rows
	if c.Rank() != 2 || c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulTBIntoStrided dst shape %v, want [%d %d]", c.Shape(), m, n))
	}
	gemmTBMat(c.data, a.data, b, m, k, n, accumulate)
}

// --- serial panel kernels ---
//
// Bit-identity invariant (the contract every kernel below preserves, and
// blocked_test pins property-style): for each output element (i,j), the
// k products a[i,kk]*b[kk,j] are accumulated ONE AT A TIME IN ASCENDING
// kk ORDER into that element's own accumulator, with the same
// skip-when-a[i,kk]==0 test. Row/column/k tiling only re-orders WHICH
// element is advanced next — never the order of terms within an element
// — and floating-point addition is deterministic for a fixed order, so
// blocked ≡ unblocked ≡ serial ≡ parallel, bit for bit, for any blocking
// parameters and any worker count.

// gemmPanel computes rows [lo,hi) of dst (+)= A·B (+ bias): the single
// serial kernel site behind MatMul, MatMulInto and the strided fused
// variants. It zeroes the panel when not accumulating, then routes to
// the packed blocked kernel when B is too large to stay cache-resident.
func gemmPanel[E Num](dst Mat[E], a []E, b Mat[E], bias []E, lo, hi, k int, accumulate bool) {
	n := dst.Cols
	if !accumulate {
		for i := lo; i < hi; i++ {
			row := dst.Data[i*dst.Stride : i*dst.Stride+n]
			for j := range row {
				row[j] = 0
			}
		}
	}
	if satMul(k, n) > gemmPackMinElems {
		gemmPanelBlocked(dst, a, b, bias, lo, hi, k)
		return
	}
	gemmPanelDirect(dst, a, b, bias, lo, hi, k)
}

// gemmPanelDirect is the in-cache kernel: the historical i-k-j loop (B
// walked row-contiguously) plus the fused bias epilogue after each row's
// full-k accumulation.
func gemmPanelDirect[E Num](dst Mat[E], a []E, b Mat[E], bias []E, lo, hi, k int) {
	n := dst.Cols
	for i := lo; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := dst.Data[i*dst.Stride : i*dst.Stride+n]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[kk*b.Stride : kk*b.Stride+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
		if bias != nil {
			bv := bias[i]
			for j := range crow {
				crow[j] += bv
			}
		}
	}
}

// gemmPanelBlocked is the out-of-cache kernel: output columns are tiled
// by gemmBlockCols and k by gemmBlockK, and each [kb×nb] B tile is
// packed into a contiguous pooled buffer that stays L2-resident while
// the row loop streams over it. Tiles are visited in ascending (jc, kc)
// order and the inner loop is ascending kk, so each output element still
// receives its k terms in ascending order — see the invariant above.
// The bias epilogue runs per column tile after ALL of its k tiles, i.e.
// after each element's full-k accumulation, matching the direct kernel.
func gemmPanelBlocked[E Num](dst Mat[E], a []E, b Mat[E], bias []E, lo, hi, k int) {
	n := dst.Cols
	nbMax := min(gemmBlockCols, n)
	kbMax := min(gemmBlockK, k)
	bufp := packGet[E](nbMax * kbMax)
	pack := (*bufp)[:nbMax*kbMax]
	for jc := 0; jc < n; jc += nbMax {
		nb := min(nbMax, n-jc)
		for kc := 0; kc < k; kc += kbMax {
			kb := min(kbMax, k-kc)
			for kk := 0; kk < kb; kk++ {
				src := b.Data[(kc+kk)*b.Stride+jc : (kc+kk)*b.Stride+jc+nb]
				copy(pack[kk*nb:kk*nb+nb], src)
			}
			for i := lo; i < hi; i++ {
				arow := a[i*k+kc : i*k+kc+kb]
				crow := dst.Data[i*dst.Stride+jc : i*dst.Stride+jc+nb]
				for kk, av := range arow {
					if av == 0 {
						continue
					}
					prow := pack[kk*nb : kk*nb+nb]
					for j, bv := range prow {
						crow[j] += av * bv
					}
				}
			}
		}
		if bias != nil {
			for i := lo; i < hi; i++ {
				bv := bias[i]
				crow := dst.Data[i*dst.Stride+jc : i*dst.Stride+jc+nb]
				for j := range crow {
					crow[j] += bv
				}
			}
		}
	}
	packPut(bufp)
}

// gemmTBMat fans row panels of C (+)= A·Bᵀ out across the worker pool,
// with B a strided row view.
func gemmTBMat[E Num](c, a []E, b Mat[E], m, k, n int, accumulate bool) {
	workers := kernelWorkers(m, gemmFlops(m, k, n))
	if workers <= 1 {
		gemmTBPanel(c, a, b, 0, m, k, n, accumulate)
		return
	}
	parallel.ForUncounted(m, workers, func(_, lo, hi int) {
		gemmTBPanel(c, a, b, lo, hi, k, n, accumulate)
	})
}

// gemmTBPanel computes rows [lo,hi) of C (+)= A·Bᵀ. Every output cell is
// one scalar dot product over ascending k followed by a single
// write/add, so the j tiling of the blocked branch (which only keeps a
// stripe of B rows cache-resident across the row panel) cannot change
// any bits.
func gemmTBPanel[E Num](c, a []E, b Mat[E], lo, hi, k, n int, accumulate bool) {
	if satMul(n, k) <= gemmPackMinElems {
		for i := lo; i < hi; i++ {
			arow := a[i*k : i*k+k]
			crow := c[i*n : i*n+n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*b.Stride : j*b.Stride+k]
				var s E
				for kk, av := range arow {
					s += av * brow[kk]
				}
				if accumulate {
					crow[j] += s
				} else {
					crow[j] = s
				}
			}
		}
		return
	}
	// Stripe height sized so one stripe of B rows matches the packed
	// panel footprint the MatMul kernel uses.
	jb := (gemmBlockCols * gemmBlockK) / k
	if jb < 1 {
		jb = 1
	}
	for j0 := 0; j0 < n; j0 += jb {
		j1 := min(j0+jb, n)
		for i := lo; i < hi; i++ {
			arow := a[i*k : i*k+k]
			crow := c[i*n : i*n+n]
			for j := j0; j < j1; j++ {
				brow := b.Data[j*b.Stride : j*b.Stride+k]
				var s E
				for kk, av := range arow {
					s += av * brow[kk]
				}
				if accumulate {
					crow[j] += s
				} else {
					crow[j] = s
				}
			}
		}
	}
}

// gemmTAPanel computes rows [lo,hi) of C += Aᵀ·B. The blocked branch
// tiles the panel's C rows and columns so the C tile stays cache-hot
// across the kk sweep; within a tile kk still ascends for every element,
// preserving the invariant.
func gemmTAPanel[E Num](c, a, b []E, lo, hi, k, m, n int) {
	if satMul(hi-lo, n) <= gemmPackMinElems {
		for kk := 0; kk < k; kk++ {
			arow := a[kk*m : kk*m+m]
			brow := b[kk*n : kk*n+n]
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				crow := c[i*n : i*n+n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
		return
	}
	for i0 := lo; i0 < hi; i0 += gemmBlockRows {
		i1 := min(i0+gemmBlockRows, hi)
		for j0 := 0; j0 < n; j0 += gemmBlockCols {
			j1 := min(j0+gemmBlockCols, n)
			for kk := 0; kk < k; kk++ {
				arow := a[kk*m : kk*m+m]
				brow := b[kk*n+j0 : kk*n+j1]
				for i := i0; i < i1; i++ {
					av := arow[i]
					if av == 0 {
						continue
					}
					crow := c[i*n+j0 : i*n+j1]
					for j, bv := range brow {
						crow[j] += av * bv
					}
				}
			}
		}
	}
}
