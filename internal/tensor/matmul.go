package tensor

import (
	"fmt"
	"sync/atomic"

	"repro/internal/parallel"
)

// Parallelism of the matrix kernels. Every product here is partitioned
// into disjoint row panels of the output, and each panel is computed
// with exactly the instruction sequence of the serial kernel, so the
// parallel results are bit-identical to serial at any worker count. The
// knob therefore defaults to the whole machine.
var matmulWorkers atomic.Int64

// gemmMinFlopsPerWorker is the serial-fallback threshold: a product is
// split only into panels worth at least this many multiply-adds, so
// small products (where goroutine handoff would dominate) stay on the
// inline serial path. A var, not a const, so tests can force the
// parallel path on tiny shapes.
var gemmMinFlopsPerWorker = 64 * 1024

func init() { matmulWorkers.Store(int64(parallel.Auto())) }

// SetParallelism bounds the worker goroutines the matrix kernels may
// use. Values below 1 force the serial path. It is safe to call
// concurrently with running kernels; in-flight products finish with the
// worker count they started with.
func SetParallelism(n int) { matmulWorkers.Store(int64(parallel.Workers(n))) }

// Parallelism returns the current matrix-kernel worker bound.
func Parallelism() int { return int(matmulWorkers.Load()) }

// kernelWorkers sizes the pool for an [m,n] output costing flops
// multiply-adds: never more workers than output rows, at least
// gemmMinFlopsPerWorker of work per worker, and — when the product runs
// inside an already fanned-out worker pool (batched evaluation inside a
// coverage or training worker) — no more than this kernel's share of the
// machine, so nested fan-out cannot oversubscribe the CPU. Worker count
// never changes results (panels are bit-identical to serial), so the
// sizing is purely a throughput decision.
func kernelWorkers(rows, flops int) int {
	w := Parallelism()
	if outer := parallel.Active(); outer > 1 {
		if w = w / outer; w < 1 {
			w = 1
		}
	}
	if byWork := flops / gemmMinFlopsPerWorker; byWork < w {
		w = byWork
	}
	if w > rows {
		w = rows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// The kernels below are generic over the element type: each
// instantiation accumulates in its own precision (float64 kernels are
// instruction-for-instruction the pre-generic float64 kernels; float32
// kernels multiply, add and skip zeros in float32, halving memory
// traffic on bandwidth-bound products). The row-panel parallel
// guarantee is precision-independent: panels are disjoint and each row
// runs the serial kernel's operation sequence, so results never depend
// on the worker count.

// MatMul returns C = A·B for A of shape [m,k] and B of shape [k,n].
// The inner loop is ordered i-k-j so B is walked row-contiguously, which
// is the standard cache-friendly pure-Go GEMM arrangement.
func MatMul[E Num](a, b *Dense[E]) *Dense[E] {
	m, k, n := gemmDims(a, b)
	c := NewOf[E](m, n)
	gemm(c.data, a.data, b.data, m, k, n, false)
	return c
}

// MatMulInto computes C = A·B into an existing [m,n] tensor, avoiding the
// allocation. If accumulate is true it computes C += A·B instead.
func MatMulInto[E Num](c, a, b *Dense[E], accumulate bool) {
	m, k, n := gemmDims(a, b)
	if c.Rank() != 2 || c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", c.Shape(), m, n))
	}
	gemm(c.data, a.data, b.data, m, k, n, accumulate)
}

func gemmDims[E Num](a, b *Dense[E]) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v × %v", a.Shape(), b.Shape()))
	}
	m, k = a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.Shape(), b.Shape()))
	}
	return m, k, b.Dim(1)
}

// gemm computes C (+)= A·B, fanning row panels of C out across the
// worker pool when the product is large enough to pay for it. Workers
// own disjoint row panels and each row is produced by the same
// operation sequence as the serial kernel, so results do not depend on
// the worker count. The panel kernel itself (gemmPanel, strided.go)
// routes large products through the cache-blocked packed path, which is
// bit-identical to the direct path for any blocking parameters.
func gemm[E Num](c, a, b []E, m, k, n int, accumulate bool) {
	cv := Mat[E]{Data: c, Rows: m, Cols: n, Stride: n}
	bv := Mat[E]{Data: b, Rows: k, Cols: n, Stride: n}
	workers := kernelWorkers(m, gemmFlops(m, k, n))
	if workers <= 1 {
		// Serial fast path without the fan-out closure, so steady-state
		// packed GEMM performs zero allocations.
		gemmPanel(cv, a, bv, nil, 0, m, k, accumulate)
		return
	}
	parallel.ForUncounted(m, workers, func(_, lo, hi int) {
		gemmPanel(cv, a, bv, nil, lo, hi, k, accumulate)
	})
}

// MatMulTA returns C = Aᵀ·B for A of shape [k,m] and B of shape [k,n];
// the weight-gradient product of a dense layer backward pass. Row panels
// of C (columns of A) are independent, and every C row accumulates its
// kk terms in ascending order exactly as the serial kernel does, so the
// parallel path is bit-identical.
func MatMulTA[E Num](a, b *Dense[E]) *Dense[E] {
	k, m, n := gemmTADims(a, b)
	c := NewOf[E](m, n)
	gemmTA(c, a, b, k, m, n)
	return c
}

// MatMulTAInto computes C += Aᵀ·B into an existing [m,n] tensor (or
// C = Aᵀ·B when accumulate is false). The batched dense backward uses the
// accumulate form: with A = dOut [B,Out] and B = X [B,In], every weight
// gradient cell receives its per-sample terms in ascending sample order,
// exactly the sequence of the per-sample accumulation loop, so the
// batched gradients are bit-identical to the serial path.
func MatMulTAInto[E Num](c, a, b *Dense[E], accumulate bool) {
	k, m, n := gemmTADims(a, b)
	if c.Rank() != 2 || c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulTAInto dst shape %v, want [%d %d]", c.Shape(), m, n))
	}
	if !accumulate {
		c.Zero()
	}
	gemmTA(c, a, b, k, m, n)
}

func gemmTADims[E Num](a, b *Dense[E]) (k, m, n int) {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(0) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMulTA shape mismatch %v × %v", a.Shape(), b.Shape()))
	}
	return a.Dim(0), a.Dim(1), b.Dim(1)
}

// gemmTA accumulates Aᵀ·B into c, which holds the starting values. The
// panel kernel tiles large products so the C panel stays cache-hot
// across the kk sweep; per element the kk terms still arrive in
// ascending order, so tiled ≡ untiled bit for bit.
func gemmTA[E Num](c, a, b *Dense[E], k, m, n int) {
	workers := kernelWorkers(m, gemmFlops(m, k, n))
	if workers <= 1 {
		gemmTAPanel(c.data, a.data, b.data, 0, m, k, m, n)
		return
	}
	parallel.ForUncounted(m, workers, func(_, lo, hi int) {
		gemmTAPanel(c.data, a.data, b.data, lo, hi, k, m, n)
	})
}

// MatMulTB returns C = A·Bᵀ for A of shape [m,k] and B of shape [n,k];
// the input-gradient product of a dense layer backward pass.
func MatMulTB[E Num](a, b *Dense[E]) *Dense[E] {
	m, k, n := gemmTBDims(a, b)
	c := NewOf[E](m, n)
	gemmTB(c, a, b, m, k, n, false)
	return c
}

// MatMulTBInto computes C += A·Bᵀ into an existing [m,n] tensor (or
// C = A·Bᵀ when accumulate is false). Every output cell is one scalar
// dot product added to the destination in a single operation — the same
// sequence as MatMulTB followed by an elementwise add — so accumulating
// layer gradients through it is bit-identical to the allocate-then-add
// form.
func MatMulTBInto[E Num](c, a, b *Dense[E], accumulate bool) {
	m, k, n := gemmTBDims(a, b)
	if c.Rank() != 2 || c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulTBInto dst shape %v, want [%d %d]", c.Shape(), m, n))
	}
	gemmTB(c, a, b, m, k, n, accumulate)
}

func gemmTBDims[E Num](a, b *Dense[E]) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(1) != b.Dim(1) {
		panic(fmt.Sprintf("tensor: MatMulTB shape mismatch %v × %v", a.Shape(), b.Shape()))
	}
	return a.Dim(0), a.Dim(1), b.Dim(0)
}

func gemmTB[E Num](c, a, b *Dense[E], m, k, n int, accumulate bool) {
	gemmTBMat(c.data, a.data, Mat[E]{Data: b.data, Rows: n, Cols: k, Stride: k}, m, k, n, accumulate)
}

// MatVec returns y = A·x for A of shape [m,n] and x of length n.
func MatVec[E Num](a, x *Dense[E]) *Dense[E] {
	if a.Rank() != 2 || x.Size() != a.Dim(1) {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch %v × %v", a.Shape(), x.Shape()))
	}
	m, n := a.Dim(0), a.Dim(1)
	y := NewOf[E](m)
	workers := kernelWorkers(m, satMul(m, n))
	parallel.ForUncounted(m, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.data[i*n : i*n+n]
			var s E
			for j, v := range row {
				s += v * x.data[j]
			}
			y.data[i] = s
		}
	})
	return y
}
