package tensor

import "fmt"

// MatMul returns C = A·B for A of shape [m,k] and B of shape [k,n].
// The inner loop is ordered i-k-j so B is walked row-contiguously, which
// is the standard cache-friendly pure-Go GEMM arrangement.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := gemmDims(a, b)
	c := New(m, n)
	gemm(c.data, a.data, b.data, m, k, n, false)
	return c
}

// MatMulInto computes C = A·B into an existing [m,n] tensor, avoiding the
// allocation. If accumulate is true it computes C += A·B instead.
func MatMulInto(c, a, b *Tensor, accumulate bool) {
	m, k, n := gemmDims(a, b)
	if c.Rank() != 2 || c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", c.Shape(), m, n))
	}
	gemm(c.data, a.data, b.data, m, k, n, accumulate)
}

func gemmDims(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v × %v", a.Shape(), b.Shape()))
	}
	m, k = a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.Shape(), b.Shape()))
	}
	return m, k, b.Dim(1)
}

func gemm(c, a, b []float64, m, k, n int, accumulate bool) {
	if !accumulate {
		for i := range c[:m*n] {
			c[i] = 0
		}
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[kk*n : kk*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTA returns C = Aᵀ·B for A of shape [k,m] and B of shape [k,n];
// the weight-gradient product of a dense layer backward pass.
func MatMulTA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(0) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMulTA shape mismatch %v × %v", a.Shape(), b.Shape()))
	}
	k, m, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.data[kk*m : kk*m+m]
		brow := b.data[kk*n : kk*n+n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c.data[i*n : i*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MatMulTB returns C = A·Bᵀ for A of shape [m,k] and B of shape [n,k];
// the input-gradient product of a dense layer backward pass.
func MatMulTB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(1) != b.Dim(1) {
		panic(fmt.Sprintf("tensor: MatMulTB shape mismatch %v × %v", a.Shape(), b.Shape()))
	}
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(0)
	c := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : i*k+k]
		crow := c.data[i*n : i*n+n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : j*k+k]
			s := 0.0
			for kk, av := range arow {
				s += av * brow[kk]
			}
			crow[j] = s
		}
	}
	return c
}

// MatVec returns y = A·x for A of shape [m,n] and x of length n.
func MatVec(a, x *Tensor) *Tensor {
	if a.Rank() != 2 || x.Size() != a.Dim(1) {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch %v × %v", a.Shape(), x.Shape()))
	}
	m, n := a.Dim(0), a.Dim(1)
	y := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : i*n+n]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		y.data[i] = s
	}
	return y
}
